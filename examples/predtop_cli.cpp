// predtop_cli — command-line inspection tool over the library:
//
//   predtop_cli print-stage  <model> <first> <last>    jaxpr-style listing
//   predtop_cli dot          <model> <first> <last>    GraphViz DOT of the pruned DAG
//   predtop_cli simulate     <model> <first> <last> [platform] [mesh]
//                                                      optimal stage latency per config
//   predtop_cli stats        <model> <first> <last>    FLOPs / bytes / liveness
//   predtop_cli plan         <model> [platform] [B]    full pipeline plan search
//
// <model> is gpt3 | moe | wrn; [platform] is 1 | 2; [mesh] is NxG (e.g. 1x2).

#include <cstring>
#include <map>
#include <memory>
#include <iostream>

#include "core/dataset.h"
#include "graph/dot.h"
#include "ir/liveness.h"
#include "ir/printer.h"
#include "ir/resnet.h"
#include "ir/to_dag.h"
#include "parallel/inter_op.h"
#include "parallel/intra_op.h"
#include "util/table.h"

using namespace predtop;

namespace {

core::BenchmarkModel ModelByName(const std::string& name) {
  if (name == "gpt3") return core::Gpt3Benchmark(ir::Gpt3Config{});
  if (name == "moe") return core::MoeBenchmark(ir::MoeConfig{});
  if (name == "wrn") {
    ir::WideResNetConfig config;
    core::BenchmarkModel model;
    model.name = "WideResNet";
    model.num_layers = static_cast<std::int32_t>(config.num_blocks);
    model.build_stage = [config](ir::StageSlice slice) {
      return ir::BuildWideResNetStage(config, slice);
    };
    return model;
  }
  throw std::invalid_argument("unknown model '" + name + "' (gpt3 | moe | wrn)");
}

sim::ClusterSpec PlatformByIndex(const std::string& index) {
  if (index == "1") return sim::Platform1();
  if (index == "2") return sim::Platform2();
  throw std::invalid_argument("unknown platform '" + index + "' (1 | 2)");
}

sim::Mesh ParseMesh(const std::string& text) {
  const auto x = text.find('x');
  if (x == std::string::npos) throw std::invalid_argument("mesh must look like 1x2");
  return sim::Mesh{std::stoi(text.substr(0, x)), std::stoi(text.substr(x + 1))};
}

int Usage() {
  std::cerr << "usage: predtop_cli <print-stage|dot|simulate|stats|plan> <model> ...\n"
               "  print-stage <model> <first> <last>\n"
               "  dot         <model> <first> <last>\n"
               "  simulate    <model> <first> <last> [platform=1] [mesh=1x2]\n"
               "  stats       <model> <first> <last>\n"
               "  plan        <model> [platform=2] [microbatches=8]\n";
  return 2;
}

int CmdPrintStage(const core::BenchmarkModel& model, ir::StageSlice slice) {
  std::cout << ir::PrintProgram(model.build_stage(slice), 120);
  return 0;
}

int CmdDot(const core::BenchmarkModel& model, ir::StageSlice slice) {
  std::cout << graph::ToDot(ir::BuildPrunedOpDag(model.build_stage(slice)),
                            model.name + "_stage");
  return 0;
}

int CmdSimulate(const core::BenchmarkModel& model, ir::StageSlice slice,
                const sim::ClusterSpec& cluster, sim::Mesh mesh) {
  const parallel::IntraOpCompiler compiler(cluster, mesh);
  const auto program = model.build_stage(slice);
  util::TablePrinter table({"parallel configuration", "simulated stage latency"});
  table.SetTitle(program.name + " on " + cluster.name + ", mesh " +
                 std::to_string(mesh.num_nodes) + "x" + std::to_string(mesh.gpus_per_node));
  for (const auto& config : parallel::PaperConfigs(mesh)) {
    const auto plan = compiler.Compile(program, config);
    table.AddRow({config.ToString(),
                  plan.Valid() ? util::FormatSeconds(plan.latency_s) : "out of memory"});
  }
  table.Print(std::cout);
  return 0;
}

int CmdStats(const core::BenchmarkModel& model, ir::StageSlice slice) {
  const auto program = model.build_stage(slice);
  const auto raw = ir::BuildOpDag(program);
  const auto pruned = ir::BuildPrunedOpDag(program);
  util::TablePrinter table({"quantity", "value"});
  table.SetTitle(program.name);
  table.AddRow({"equations", std::to_string(program.NumEquations())});
  table.AddRow({"total FLOPs (fwd)", util::FormatF(ir::TotalFlops(program) / 1e9, 2) + " G"});
  table.AddRow({"weight bytes", util::FormatF(program.LiteralBytes() / 1e6, 1) + " MB"});
  table.AddRow({"peak live activations",
                util::FormatF(ir::PeakActivationBytes(program) / 1e6, 1) + " MB"});
  table.AddRow({"DAG nodes (raw)", std::to_string(raw.NumNodes())});
  table.AddRow({"DAG nodes (pruned)", std::to_string(pruned.NumNodes())});
  table.Print(std::cout);
  return 0;
}

int CmdPlan(const core::BenchmarkModel& model, const sim::ClusterSpec& cluster,
            std::int32_t microbatches) {
  const auto meshes = sim::PaperMeshes(cluster);
  std::vector<std::unique_ptr<parallel::IntraOpCompiler>> compilers;
  for (const sim::Mesh mesh : meshes) {
    compilers.push_back(std::make_unique<parallel::IntraOpCompiler>(cluster, mesh));
  }
  std::map<std::tuple<int, int, int>, parallel::StageLatencyResult> cache;
  const parallel::StageLatencyOracle oracle = [&](ir::StageSlice slice, sim::Mesh mesh) {
    for (std::size_t m = 0; m < meshes.size(); ++m) {
      if (!(meshes[m] == mesh)) continue;
      const auto key = std::make_tuple(slice.first_layer, slice.last_layer, static_cast<int>(m));
      auto it = cache.find(key);
      if (it == cache.end()) {
        const auto configs = parallel::PaperConfigs(mesh);
        const auto plan = compilers[m]->CompileBest(model.build_stage(slice), configs);
        it = cache.emplace(key, parallel::StageLatencyResult{plan.latency_s, plan.config}).first;
      }
      return it->second;
    }
    return parallel::StageLatencyResult{std::numeric_limits<double>::infinity(), {}};
  };
  parallel::InterOpOptions options;
  options.num_layers = model.num_layers;
  options.num_microbatches = microbatches;
  options.submeshes = meshes;
  const auto plan = parallel::InterOpOptimizer(cluster, options).Optimize(oracle);
  if (!plan.Valid()) {
    std::cerr << "no feasible plan\n";
    return 1;
  }
  util::TablePrinter table({"stage", "layers", "mesh", "config", "latency / microbatch"});
  table.SetTitle(model.name + " on " + cluster.name + ": optimal plan, iteration latency " +
                 util::FormatSeconds(plan.iteration_latency_s));
  for (std::size_t s = 0; s < plan.stages.size(); ++s) {
    const auto& stage = plan.stages[s];
    table.AddRow({std::to_string(s),
                  "[" + std::to_string(stage.slice.first_layer) + "," +
                      std::to_string(stage.slice.last_layer) + ")",
                  std::to_string(stage.mesh.num_nodes) + "x" +
                      std::to_string(stage.mesh.gpus_per_node),
                  stage.config.ToString(), util::FormatSeconds(stage.latency_s)});
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  try {
    const std::string command = argv[1];
    const core::BenchmarkModel model = ModelByName(argv[2]);
    if (command == "plan") {
      const sim::ClusterSpec cluster = PlatformByIndex(argc > 3 ? argv[3] : "2");
      const std::int32_t microbatches = argc > 4 ? std::stoi(argv[4]) : 8;
      return CmdPlan(model, cluster, microbatches);
    }
    if (argc < 5) return Usage();
    const ir::StageSlice slice{std::stoi(argv[3]), std::stoi(argv[4])};
    if (command == "print-stage") return CmdPrintStage(model, slice);
    if (command == "dot") return CmdDot(model, slice);
    if (command == "stats") return CmdStats(model, slice);
    if (command == "simulate") {
      const sim::ClusterSpec cluster = PlatformByIndex(argc > 5 ? argv[5] : "1");
      const sim::Mesh mesh = argc > 6 ? ParseMesh(argv[6]) : sim::Mesh{1, 2};
      return CmdSimulate(model, slice, cluster, mesh);
    }
    return Usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}

// Compare the three black-box stage-latency predictors — DAG Transformer,
// GCN and GAT (paper §VII-D) — on one (mesh, configuration) scenario of a
// scaled-down GPT-3 benchmark, reporting the held-out MRE of each.
//
// Environment knobs:
//   PREDTOP_EX_LAYERS   model depth            (default 10)
//   PREDTOP_EX_EPOCHS   max training epochs    (default 200)

#include <iostream>

#include "core/regressor.h"
#include "nn/trainer.h"
#include "util/env.h"
#include "util/table.h"
#include "util/timer.h"

using namespace predtop;

int main() {
  ir::Gpt3Config model_config;
  model_config.seq_len = 64;
  model_config.hidden = 64;
  model_config.num_layers = util::EnvInt("PREDTOP_EX_LAYERS", 10);
  model_config.num_heads = 4;
  model_config.vocab = 512;
  model_config.microbatch = 2;
  const core::BenchmarkModel benchmark = core::Gpt3Benchmark(model_config);

  const sim::ClusterSpec cluster = sim::Platform2();
  const sim::Mesh mesh{1, 2};
  const parallel::ParallelConfig config{1, 2, 1};  // 2-way model parallel
  const parallel::IntraOpCompiler compiler(cluster, mesh);

  sim::Profiler profiler({}, 3);
  core::DatasetBuildConfig build;
  build.max_span = 5;
  const core::StageDataset dataset =
      core::BuildStageDataset(benchmark, compiler, config, profiler, build);
  std::cout << "Profiled " << dataset.Size() << " stages of " << benchmark.name << " on "
            << cluster.name << ", " << config.ToString() << "\n\n";

  util::Rng rng(11);
  const nn::DataSplit split = nn::SplitDataset(dataset.Size(), 0.7, 0.1, rng);

  nn::TrainConfig train;
  train.max_epochs = util::EnvInt("PREDTOP_EX_EPOCHS", 200);
  train.patience = train.max_epochs;  // full cosine schedule
  train.batch_size = 8;
  train.base_lr = 2e-3f;

  core::PredictorOptions options;
  options.feature_dim = core::StageFeatureDim();
  options.dagt_dim = 16;
  options.dagt_layers = 2;
  options.dagt_heads = 2;
  options.gcn_dim = 64;
  options.gcn_layers = 4;
  options.gat_dim = 16;
  options.gat_layers = 4;

  util::TablePrinter table({"predictor", "epochs", "train wall", "held-out MRE"});
  for (const core::PredictorKind kind :
       {core::PredictorKind::kGcn, core::PredictorKind::kGat,
        core::PredictorKind::kDagTransformer}) {
    core::LatencyRegressor regressor(kind, options);
    util::Stopwatch watch;
    const nn::TrainResult result =
        regressor.Fit(dataset, split.train, split.validation, train);
    const double wall = watch.ElapsedSeconds();
    const double mre = regressor.MrePercent(dataset, split.test);
    table.AddRow({core::PredictorKindName(kind), std::to_string(result.epochs_run),
                  util::FormatSeconds(wall), util::FormatF(mre, 2) + " %"});
  }
  table.SetTitle("Held-out stage-latency prediction error (lower is better)");
  table.Print(std::cout);
  std::cout << "\nThe DAG Transformer's reachability-masked attention (DAGRA) and depth\n"
               "positional encodings (DAGPE) give it the paper's edge on DAG-shaped\n"
               "inputs; GCN/GAT need deep stacks to propagate information that far.\n";
  return 0;
}

// Automatic parallelization-plan search (paper §VIII-B): generate the
// optimal pipeline plan for a scaled-down GPT-3 on Platform 2 with all five
// approaches — Alpa-style full/partial profiling and PredTOP with each of
// the three predictors — and compare optimization cost against the quality
// of the produced plan.
//
// Environment knobs:
//   PREDTOP_EX_LAYERS   model depth (default 8)
//   PREDTOP_EX_EPOCHS   max predictor training epochs (default 150)

#include <iostream>

#include "core/plan_search.h"
#include "util/env.h"
#include "util/table.h"

using namespace predtop;
using core::PlanApproach;

int main() {
  ir::Gpt3Config model_config;
  model_config.seq_len = 64;
  model_config.hidden = 64;
  model_config.num_layers = util::EnvInt("PREDTOP_EX_LAYERS", 8);
  model_config.num_heads = 4;
  model_config.vocab = 512;
  model_config.microbatch = 2;

  core::PlanSearchConfig config;
  config.num_microbatches = 8;
  config.sample_fraction = 0.3;
  config.max_span = 5;
  config.train.max_epochs = util::EnvInt("PREDTOP_EX_EPOCHS", 150);
  config.train.patience = config.train.max_epochs;
  config.train.batch_size = 8;
  config.train.base_lr = 2e-3f;
  config.predictor.dagt_dim = 16;
  config.predictor.dagt_layers = 2;
  config.predictor.dagt_heads = 2;
  config.predictor.gcn_dim = 64;
  config.predictor.gcn_layers = 4;
  config.predictor.gat_dim = 16;
  config.predictor.gat_layers = 4;

  core::PlanSearch search(core::Gpt3Benchmark(model_config), sim::Platform2(), config);

  util::TablePrinter table({"approach", "opt. cost", "stages profiled", "plan stages",
                            "iteration latency", "vs full profiling"});
  double baseline = 0.0;
  for (const PlanApproach approach :
       {PlanApproach::kFullProfiling, PlanApproach::kPartialProfiling,
        PlanApproach::kPredTopGcn, PlanApproach::kPredTopGat,
        PlanApproach::kPredTopDagTransformer}) {
    std::cout << "running " << core::PlanApproachName(approach) << "...\n";
    const core::PlanSearchResult result = search.Run(approach);
    if (approach == PlanApproach::kFullProfiling) baseline = result.plan_true_latency_s;
    const double delta = 100.0 * (result.plan_true_latency_s - baseline) / baseline;
    table.AddRow({core::PlanApproachName(approach),
                  util::FormatSeconds(result.optimization_cost_s),
                  std::to_string(result.stages_profiled),
                  std::to_string(result.plan.stages.size()),
                  util::FormatSeconds(result.plan_true_latency_s),
                  (delta >= 0 ? "+" : "") + util::FormatF(delta, 1) + " %"});
  }
  std::cout << '\n';
  table.SetTitle("Parallelization-plan search (scaled-down GPT-3, Platform 2)");
  table.Print(std::cout);
  return 0;
}

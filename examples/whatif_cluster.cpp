// What-if cluster analysis — a use case the paper's introduction motivates
// (resource allocation / scheduling insight without running the workload):
// sweep hypothetical cluster variants and report the best parallelization
// plan and iteration latency the inter-operator optimizer finds on each,
// using the simulator's stage-latency oracle. No profiling of real hardware
// and no predictor training needed — this exercises the white-box side.

#include <iostream>

#include "core/dataset.h"
#include "parallel/inter_op.h"
#include "parallel/intra_op.h"
#include "util/env.h"
#include "util/table.h"

using namespace predtop;

namespace {

/// Best plan for the benchmark on the given cluster (simulated truth oracle).
parallel::PipelinePlan OptimizePlan(const core::BenchmarkModel& benchmark,
                                    const sim::ClusterSpec& cluster,
                                    std::int32_t num_microbatches) {
  std::vector<std::unique_ptr<parallel::IntraOpCompiler>> compilers;
  const auto meshes = sim::PaperMeshes(cluster);
  for (const sim::Mesh mesh : meshes) {
    compilers.push_back(std::make_unique<parallel::IntraOpCompiler>(cluster, mesh));
  }
  const parallel::StageLatencyOracle oracle = [&](ir::StageSlice slice, sim::Mesh mesh) {
    for (std::size_t m = 0; m < meshes.size(); ++m) {
      if (meshes[m] == mesh) {
        const auto configs = parallel::PaperConfigs(mesh);
        const auto plan = compilers[m]->CompileBest(benchmark.build_stage(slice), configs);
        return parallel::StageLatencyResult{plan.latency_s, plan.config};
      }
    }
    return parallel::StageLatencyResult{std::numeric_limits<double>::infinity(), {}};
  };
  parallel::InterOpOptions options;
  options.num_layers = benchmark.num_layers;
  options.num_microbatches = num_microbatches;
  options.submeshes = meshes;
  return parallel::InterOpOptimizer(cluster, options).Optimize(oracle);
}

std::string DescribePlan(const parallel::PipelinePlan& plan) {
  std::string out;
  for (const auto& stage : plan.stages) {
    if (!out.empty()) out += " | ";
    out += "[" + std::to_string(stage.slice.first_layer) + "," +
           std::to_string(stage.slice.last_layer) + ") on " +
           std::to_string(stage.mesh.num_nodes) + "x" +
           std::to_string(stage.mesh.gpus_per_node) + " (" + stage.config.ToString() + ")";
  }
  return out;
}

}  // namespace

int main() {
  ir::Gpt3Config model_config;
  model_config.seq_len = 128;
  model_config.hidden = 128;
  model_config.num_layers = util::EnvInt("PREDTOP_EX_LAYERS", 12);
  model_config.num_heads = 8;
  model_config.vocab = 2048;
  model_config.microbatch = 4;
  const core::BenchmarkModel benchmark = core::Gpt3Benchmark(model_config);
  const std::int32_t microbatches = 8;

  // Cluster variants to compare.
  struct Variant {
    std::string label;
    sim::ClusterSpec cluster;
  };
  std::vector<Variant> variants;
  variants.push_back({"Platform 1 (1 node x 2 A40)", sim::Platform1()});
  variants.push_back({"Platform 2 (2 nodes x 2 A5500)", sim::Platform2()});
  {
    sim::ClusterSpec fast_net = sim::Platform2();
    fast_net.name += "+100GbE";
    fast_net.interconnect.inter_node_gbps = 12.5;  // 100 GbE upgrade
    fast_net.interconnect.inter_node_latency_us = 10.0;
    variants.push_back({"Platform 2 with 100 GbE uplink", fast_net});
  }
  {
    sim::ClusterSpec single = sim::Platform2();
    single.name += "-1node";
    single.num_nodes = 1;  // half the cluster
    variants.push_back({"Platform 2, single node only", single});
  }

  util::TablePrinter table({"cluster variant", "iteration latency", "best plan"});
  for (const Variant& v : variants) {
    const parallel::PipelinePlan plan = OptimizePlan(benchmark, v.cluster, microbatches);
    table.AddRow({v.label,
                  plan.Valid() ? util::FormatSeconds(plan.iteration_latency_s) : "infeasible",
                  plan.Valid() ? DescribePlan(plan) : "-"});
  }
  table.SetTitle("What-if analysis: " + benchmark.name + " (" +
                 std::to_string(model_config.num_layers) + " layers, " +
                 std::to_string(microbatches) + " microbatches)");
  table.Print(std::cout);
  std::cout << "\nInterconnect and node-count changes shift both the chosen pipeline cut\n"
               "points and the per-stage parallelism, quantified without touching GPUs.\n";
  return 0;
}

// predtop::serve quickstart: the full checkpoint-and-serve lifecycle.
//   1. profile + train one DAG-Transformer predictor per mesh (paper §VI
//      phases 1-2) for a scaled-down GPT-3 on Platform 2;
//   2. checkpoint each predictor to a `.ptck` file and reload it in a fresh
//      LatencyRegressor, verifying the reload predicts bit-identically;
//   3. register the reloaded models in a ModelRegistry and stand up a
//      PredictionService in front of it;
//   4. run the inter-op plan search through the service (ServingOracle) and
//      check it returns the same plan as querying the predictors directly;
//   5. serve a repeated query stream and report throughput + cache hit rate.
//
// Environment knobs:
//   PREDTOP_EX_LAYERS   model depth (default 8)
//   PREDTOP_EX_EPOCHS   max predictor training epochs (default 120)

#include <filesystem>
#include <iostream>
#include <vector>

#include "core/plan_search.h"
#include "ir/stages.h"
#include "serve/oracle.h"
#include "serve/service.h"
#include "util/env.h"
#include "util/table.h"
#include "util/timer.h"

using namespace predtop;

int main() {
  ir::Gpt3Config model_config;
  model_config.seq_len = 64;
  model_config.hidden = 64;
  model_config.num_layers = util::EnvInt("PREDTOP_EX_LAYERS", 8);
  model_config.num_heads = 4;
  model_config.vocab = 512;
  model_config.microbatch = 2;

  core::PlanSearchConfig config;
  config.num_microbatches = 8;
  config.sample_fraction = 0.3;
  config.max_span = 5;
  config.train.max_epochs = util::EnvInt("PREDTOP_EX_EPOCHS", 120);
  config.train.patience = config.train.max_epochs;
  config.train.batch_size = 8;
  config.train.base_lr = 2e-3f;
  config.predictor.dagt_dim = 16;
  config.predictor.dagt_layers = 2;
  config.predictor.dagt_heads = 2;

  core::PlanSearch search(core::Gpt3Benchmark(model_config), sim::Platform2(), config);
  const auto& meshes = search.Meshes();

  // --- 1. Train one predictor per mesh. -----------------------------------
  std::cout << "training " << meshes.size() << " per-mesh predictors...\n";
  const core::TrainedMeshPredictors trained =
      search.TrainPredictors(core::PredictorKind::kDagTransformer);

  // --- 2. Checkpoint to .ptck and reload; predictions must be bit-identical.
  const auto all_slices =
      ir::EnumerateStageSlices(search.Benchmark().num_layers, search.EffectiveMaxSpan());
  const std::filesystem::path ckpt_dir =
      std::filesystem::temp_directory_path() / "predtop_serve_demo";
  std::filesystem::create_directories(ckpt_dir);
  auto registry = std::make_shared<serve::ModelRegistry>();
  std::vector<serve::ModelKey> keys;
  for (std::size_t m = 0; m < meshes.size(); ++m) {
    const std::string path =
        (ckpt_dir / ("gpt3_mesh" + std::to_string(m) + ".ptck")).string();
    trained.per_mesh[m]->Save(path);
    serve::ModelKey key{"gpt3", "platform2", meshes[m], {}};
    registry->RegisterFromFile(key, path);
    keys.push_back(key);

    const auto reloaded = registry->Find(key);
    for (const ir::StageSlice slice : all_slices) {
      const auto& g = search.EncodedFor(slice);
      if (reloaded->PredictSeconds(g) != trained.per_mesh[m]->PredictSeconds(g)) {
        std::cerr << "FAIL: reloaded checkpoint diverged on mesh " << m << "\n";
        return 1;
      }
    }
    std::cout << "checkpoint " << path << " reloads bit-identically ("
              << all_slices.size() << " stages checked)\n";
  }

  // --- 3+4. Plan search through the service vs the raw predictors. --------
  serve::ServiceOptions service_options;
  service_options.threads = 2;
  serve::PredictionService service(registry, service_options);
  serve::ServingOracle oracle(
      service, meshes, keys, [&](ir::StageSlice s) -> const graph::EncodedGraph& {
        return search.EncodedFor(s);
      },
      search.EffectiveMaxSpan());

  const parallel::InterOpOptimizer optimizer = search.MakeOptimizer();
  util::Stopwatch served_watch;
  const parallel::PipelinePlan served_plan = optimizer.Optimize(oracle.AsOracle());
  const double served_s = served_watch.ElapsedSeconds();

  constexpr double kInf = std::numeric_limits<double>::infinity();
  const parallel::StageLatencyOracle direct = [&](ir::StageSlice slice, sim::Mesh mesh) {
    if (slice.NumLayers() > search.EffectiveMaxSpan())
      return parallel::StageLatencyResult{kInf, {}};
    for (std::size_t m = 0; m < meshes.size(); ++m) {
      if (meshes[m] == mesh) {
        return parallel::StageLatencyResult{
            trained.per_mesh[m]->PredictSeconds(search.EncodedFor(slice)), {}};
      }
    }
    return parallel::StageLatencyResult{kInf, {}};
  };
  util::Stopwatch direct_watch;
  const parallel::PipelinePlan direct_plan = optimizer.Optimize(direct);
  const double direct_s = direct_watch.ElapsedSeconds();

  bool same = served_plan.stages.size() == direct_plan.stages.size() &&
              served_plan.iteration_latency_s == direct_plan.iteration_latency_s;
  for (std::size_t i = 0; same && i < served_plan.stages.size(); ++i) {
    same = served_plan.stages[i].slice.first_layer == direct_plan.stages[i].slice.first_layer &&
           served_plan.stages[i].slice.last_layer == direct_plan.stages[i].slice.last_layer &&
           served_plan.stages[i].mesh == direct_plan.stages[i].mesh;
  }
  std::cout << (same ? "plan search via the service matches direct predictor calls"
                     : "WARNING: served plan differs from direct plan")
            << " (" << served_plan.stages.size() << " stages)\n";
  if (!same) return 1;

  // --- 5. Serve a repeated query stream. ----------------------------------
  service.ResetStats();
  service.ClearCache();
  constexpr int kRounds = 20;
  util::Stopwatch stream_watch;
  double checksum = 0.0;
  for (int round = 0; round < kRounds; ++round) {
    for (std::size_t m = 0; m < meshes.size(); ++m) {
      std::vector<const graph::EncodedGraph*> batch;
      batch.reserve(all_slices.size());
      for (const ir::StageSlice slice : all_slices) batch.push_back(&search.EncodedFor(slice));
      for (const double v : service.PredictMany(keys[m], batch)) checksum += v;
    }
  }
  const double stream_s = stream_watch.ElapsedSeconds();
  const serve::ServiceStats stats = service.Stats();

  util::TablePrinter table({"metric", "value"});
  table.SetTitle("predtop::serve query stream (" + std::to_string(kRounds) + " rounds)");
  table.AddRow({"queries", std::to_string(stats.queries)});
  table.AddRow({"model forwards", std::to_string(stats.forwards)});
  table.AddRow({"cache hit rate", util::FormatF(100.0 * stats.cache.HitRate(), 1) + " %"});
  table.AddRow({"throughput", util::FormatF(static_cast<double>(stats.queries) / stream_s, 0) +
                                  " queries/s"});
  table.AddRow({"plan search (served)", util::FormatF(1e3 * served_s, 1) + " ms"});
  table.AddRow({"plan search (direct)", util::FormatF(1e3 * direct_s, 1) + " ms"});
  table.Print(std::cout);
  std::cout << "(checksum " << checksum << ")\n";
  return 0;
}

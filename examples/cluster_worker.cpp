// Standalone prediction-cluster worker: loads one or more `.ptck` mesh
// checkpoints and serves the framed wire protocol on a Unix or TCP socket.
// Start one per shard, then point a Router (see examples/cluster_demo) at
// the listen endpoints:
//
//   ./cluster_worker --listen unix:/tmp/predtop_w0.sock \
//       --benchmark gpt3 --platform platform1 \
//       --model mesh=1x1,path=ckpts/mesh_1x1.ptck \
//       --model mesh=1x2,path=ckpts/mesh_1x2.ptck
//
// Startup is fail-fast with a typed status: a missing or corrupt checkpoint
// exits with code 10 + StatusCode (and the message on stderr) instead of
// serving a shard that cannot answer.

#include "cluster/worker.h"

int main(int argc, char** argv) { return predtop::cluster::WorkerMain(argc, argv); }

// Prediction-cluster walkthrough: shard a trained latency predictor across
// three workers, run the inter-op plan search through the router, then kill
// one replica and show the search still returning the identical plan.
//
//   1. train one tiny DAG-Transformer predictor per device mesh;
//   2. start a LocalCluster (three Worker replicas on Unix sockets — same
//      wire protocol and failover paths as separate processes; see
//      examples/cluster_worker for the standalone binary);
//   3. health-check the ring and run the DP plan search via ClusterOracle;
//   4. StopWorker(0) — the in-process analogue of SIGKILL — and search
//      again: queries owned by the dead shard fail over to its replica;
//   5. print the router's request/coalesce/failover counters.
//
// Build and run:
//   cmake -B build -S . && cmake --build build --target cluster_demo
//   ./build/examples/cluster_demo

#include <cmath>
#include <iostream>
#include <memory>

#include "cluster/local.h"
#include "cluster/oracle.h"
#include "cluster/router.h"
#include "core/plan_search.h"
#include "serve/fallback.h"
#include "serve/oracle.h"
#include "util/table.h"

using namespace predtop;

namespace {

core::PlanSearchConfig DemoPlanConfig() {
  core::PlanSearchConfig config;
  config.num_microbatches = 4;
  config.sample_fraction = 0.6;
  config.max_span = 3;
  config.train.max_epochs = 20;
  config.train.patience = 20;
  config.train.batch_size = 4;
  config.predictor.dagt_dim = 16;
  config.predictor.dagt_layers = 2;
  config.predictor.dagt_heads = 2;
  return config;
}

std::string PlanToString(const parallel::PipelinePlan& plan) {
  std::string out;
  for (std::size_t i = 0; i < plan.stages.size(); ++i) {
    const parallel::PipelineStageChoice& stage = plan.stages[i];
    if (i) out += " | ";
    out += "L" + std::to_string(stage.slice.first_layer) + "-" +
           std::to_string(stage.slice.last_layer) + "@" +
           std::to_string(stage.mesh.num_nodes) + "x" +
           std::to_string(stage.mesh.gpus_per_node);
  }
  return out;
}

}  // namespace

int main() {
  // A 6-layer GPT keeps training in a couple of seconds while still giving
  // the ring multiple distinct stage fingerprints to shard.
  ir::Gpt3Config model;
  model.seq_len = 64;
  model.hidden = 64;
  model.num_layers = 6;
  model.num_heads = 4;
  model.vocab = 512;
  model.microbatch = 2;

  core::PlanSearch search(core::Gpt3Benchmark(model), sim::Platform1(),
                          DemoPlanConfig());
  std::cout << "[1/5] training one DAG-Transformer predictor per mesh...\n";
  const core::TrainedMeshPredictors trained =
      search.TrainPredictors(core::PredictorKind::kDagTransformer);
  auto registry = std::make_shared<serve::ModelRegistry>();
  const std::vector<serve::ModelKey> keys = serve::RegisterMeshPredictors(
      *registry, "gpt3-demo", "platform1", search.Meshes(), trained);
  const serve::StageEncoder encoder =
      [&search](ir::StageSlice s) -> const graph::EncodedGraph& {
    return search.EncodedFor(s);
  };

  std::cout << "[2/5] starting 3 shard workers + router (R=2 replicas/key)...\n";
  cluster::LocalClusterOptions worker_options;
  worker_options.num_workers = 3;
  worker_options.service.threads = 2;
  cluster::LocalCluster workers(search.Benchmark(), registry, worker_options);
  cluster::RouterOptions router_options;
  router_options.replicas = 2;
  router_options.revive_after_ms = 60000.0;
  cluster::Router router(workers.Endpoints(), router_options);

  const std::vector<bool> health = router.Health();
  std::cout << "      health:";
  for (std::size_t i = 0; i < health.size(); ++i)
    std::cout << " worker" << i << "=" << (health[i] ? "up" : "DOWN");
  std::cout << "\n";

  cluster::ClusterOracleOptions oracle_options;
  oracle_options.fallback = std::make_shared<serve::FallbackOracle>(
      sim::Platform1().device, [&search](ir::StageSlice s) -> const ir::StageProgram& {
        return search.ProgramFor(s);
      });
  const cluster::ClusterOracle oracle(router, search.Meshes(), keys, encoder,
                                      search.EffectiveMaxSpan(), oracle_options);
  const parallel::InterOpOptimizer optimizer = search.MakeOptimizer();

  std::cout << "[3/5] inter-op plan search through the cluster...\n";
  const parallel::PipelinePlan plan = optimizer.Optimize(oracle.AsBatchOracle());
  std::cout << "      plan: " << PlanToString(plan) << "  ("
            << util::FormatSeconds(plan.iteration_latency_s) << "/iter)\n";

  std::cout << "[4/5] killing worker 0, searching again (failover to replicas)...\n";
  workers.StopWorker(0);
  const parallel::PipelinePlan after_kill = optimizer.Optimize(oracle.AsBatchOracle());
  const bool same = after_kill.Valid() && plan.Valid() &&
                    after_kill.iteration_latency_s == plan.iteration_latency_s &&
                    after_kill.stages.size() == plan.stages.size();
  std::cout << "      plan: " << PlanToString(after_kill) << "  ("
            << util::FormatSeconds(after_kill.iteration_latency_s) << "/iter)  "
            << (same ? "[identical to pre-kill plan]" : "[DIVERGED]") << "\n";

  const cluster::RouterStats stats = router.Stats();
  const serve::OracleStats oracle_stats = oracle.Stats();
  std::cout << "[5/5] router counters\n";
  util::TablePrinter table({"requests", "queries", "coalesced", "failovers",
                            "worker failures", "unanswered", "degraded"});
  table.AddRow({std::to_string(stats.requests), std::to_string(stats.queries),
                std::to_string(stats.coalesced), std::to_string(stats.failovers),
                std::to_string(stats.worker_failures), std::to_string(stats.unanswered),
                std::to_string(oracle_stats.degraded)});
  table.Print(std::cout);

  router.ShutdownWorkers();
  return same && std::isfinite(after_kill.iteration_latency_s) ? 0 : 1;
}

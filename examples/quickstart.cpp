// Quickstart: the end-to-end PredTOP loop in ~100 lines.
//
//   1. Define a benchmark model (a scaled-down GPT-3) and a cluster.
//   2. Profiling phase — sample pipeline-stage candidates, compile each with
//      the intra-operator optimizer and profile its latency on the mesh.
//   3. Training phase — fit a DAG Transformer regressor on the profiled
//      stages (paper §IV).
//   4. Prediction phase — predict unseen stages, and compose the white-box
//      pipeline formula (Eqn. 4) into an end-to-end iteration estimate.
//
// Run:  ./quickstart        (about half a minute on a laptop core)

#include <cstdio>
#include <iostream>

#include "core/greybox.h"
#include "core/plan_search.h"
#include "nn/trainer.h"
#include "parallel/pipeline_model.h"
#include "util/table.h"

using namespace predtop;
using core::BenchmarkModel;

int main() {
  // A GPT-3-shaped model small enough for a quick demo.
  ir::Gpt3Config model_config;
  model_config.seq_len = 64;
  model_config.hidden = 64;
  model_config.num_layers = 10;
  model_config.num_heads = 4;
  model_config.vocab = 512;
  model_config.microbatch = 2;
  const BenchmarkModel benchmark = core::Gpt3Benchmark(model_config);

  // Platform 1 from the paper: one node with two NVIDIA A40s (simulated).
  const sim::ClusterSpec cluster = sim::Platform1();
  const sim::Mesh mesh{1, 2};
  const parallel::IntraOpCompiler compiler(cluster, mesh);
  const auto configs = parallel::PaperConfigs(mesh);

  std::printf("== Phase 1: profiling sampled stages on %s, mesh (%d node x %d GPU)\n",
              cluster.name.c_str(), mesh.num_nodes, mesh.gpus_per_node);
  sim::Profiler profiler({}, /*seed=*/1);
  core::DatasetBuildConfig build;
  build.max_span = 5;  // stages of 1..5 layers -> 40 candidates
  const core::StageDataset dataset =
      core::BuildStageDatasetBestConfig(benchmark, compiler, configs, profiler, build);
  std::printf("   profiled %zu stages (modeled profiling cost: %s)\n", dataset.Size(),
              util::FormatSeconds(profiler.TotalCostSeconds()).c_str());

  std::printf("== Phase 2: training the DAG Transformer stage-latency predictor\n");
  core::PredictorOptions options;
  options.feature_dim = core::StageFeatureDim();
  options.dagt_dim = 16;
  options.dagt_layers = 2;
  options.dagt_heads = 2;
  auto regressor = std::make_shared<core::LatencyRegressor>(
      core::PredictorKind::kDagTransformer, options);

  util::Rng rng(7);
  const nn::DataSplit split = nn::SplitDataset(dataset.Size(), 0.7, 0.1, rng);
  nn::TrainConfig train;
  train.max_epochs = 200;
  train.patience = 60;
  train.batch_size = 8;
  train.base_lr = 2e-3f;
  const nn::TrainResult result =
      regressor->Fit(dataset, split.train, split.validation, train);
  std::printf("   trained %lld epochs (best validation MAE %.4f)\n",
              static_cast<long long>(result.epochs_run), result.best_val_loss);
  std::printf("   held-out stage MRE: %.2f%%\n",
              regressor->MrePercent(dataset, split.test));

  std::printf("== Phase 3: grey-box end-to-end estimation (paper Eqn. 4)\n");
  core::GreyBoxEstimator estimator(benchmark, {{mesh, regressor}});

  // A hand-written 2-stage pipeline plan over the 10 layers.
  parallel::PipelinePlan plan;
  plan.num_microbatches = 8;
  plan.stages.push_back({ir::StageSlice{0, 5}, mesh, configs[0], 0.0});
  plan.stages.push_back({ir::StageSlice{5, 10}, mesh, configs[0], 0.0});

  const double predicted = estimator.EstimateIterationLatency(plan);
  // Ground truth from the simulator for comparison.
  std::vector<double> true_stage_latencies;
  for (const auto& stage : plan.stages) {
    true_stage_latencies.push_back(
        compiler.CompileBest(benchmark.build_stage(stage.slice), configs).latency_s);
  }
  const double actual =
      parallel::PipelineLatency(true_stage_latencies, plan.num_microbatches);

  util::TablePrinter table({"quantity", "value"});
  table.AddRow({"predicted iteration latency", util::FormatSeconds(predicted)});
  table.AddRow({"simulated iteration latency", util::FormatSeconds(actual)});
  table.AddRow({"relative error", util::FormatF(100.0 * std::abs(predicted - actual) / actual, 2) + " %"});
  table.Print(std::cout);
  return 0;
}

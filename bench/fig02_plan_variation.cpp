// Paper Fig. 2: the iteration latency of 100 random parallelization plans
// for each benchmark on Platform 2 — demonstrating that the same model on
// the same hardware spans a wide latency range depending on the plan, which
// is why latency prediction must be plan-aware.

#include <algorithm>
#include <cmath>
#include <iostream>
#include <map>

#include "bench_common.h"
#include "parallel/pipeline_model.h"

using namespace predtop;

namespace {

/// Random plan: contiguous layer partition + per-stage mesh (within the
/// device budget) + per-stage paper config. Returns its simulated iteration
/// latency, or nullopt when the random draw is infeasible.
std::optional<double> RandomPlanLatency(
    const core::BenchmarkModel& benchmark, const sim::ClusterSpec& cluster,
    std::int32_t num_microbatches, util::Rng& rng,
    std::map<std::tuple<int, int, int, int>, double>& cache,
    std::vector<std::unique_ptr<parallel::IntraOpCompiler>>& compilers,
    const std::vector<sim::Mesh>& meshes) {
  const std::int32_t layers = benchmark.num_layers;
  const auto num_stages = static_cast<std::int32_t>(1 + rng.NextBelow(4));
  // Random contiguous cut points.
  std::vector<std::int32_t> cuts{0, layers};
  while (static_cast<std::int32_t>(cuts.size()) < num_stages + 1) {
    const auto c = static_cast<std::int32_t>(1 + rng.NextBelow(
                       static_cast<std::uint64_t>(layers - 1)));
    if (std::find(cuts.begin(), cuts.end(), c) == cuts.end()) cuts.push_back(c);
  }
  std::sort(cuts.begin(), cuts.end());

  std::int32_t devices_left = cluster.TotalDevices();
  std::vector<double> stage_latencies;
  for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
    // Pick a random mesh that still fits the device budget.
    std::vector<std::size_t> feasible;
    for (std::size_t m = 0; m < meshes.size(); ++m) {
      if (meshes[m].NumDevices() <= devices_left) feasible.push_back(m);
    }
    if (feasible.empty()) return std::nullopt;
    const std::size_t m = feasible[rng.NextBelow(feasible.size())];
    devices_left -= meshes[m].NumDevices();
    const auto configs = parallel::PaperConfigs(meshes[m]);
    const auto c = static_cast<int>(rng.NextBelow(configs.size()));

    const auto key = std::make_tuple(cuts[i], cuts[i + 1], static_cast<int>(m), c);
    auto it = cache.find(key);
    if (it == cache.end()) {
      const auto program = benchmark.build_stage({cuts[i], cuts[i + 1]});
      it = cache.emplace(key, compilers[m]->Compile(program, configs[static_cast<std::size_t>(c)])
                                  .latency_s).first;
    }
    if (!std::isfinite(it->second)) return std::nullopt;
    stage_latencies.push_back(it->second);
  }
  return parallel::PipelineLatency(stage_latencies, num_microbatches);
}

void RunBenchmark(const core::BenchmarkModel& benchmark, const sim::ClusterSpec& cluster) {
  const std::int32_t kPlans = 100;
  const std::int32_t microbatches = 8;
  util::Rng rng(0xf19ULL);
  std::map<std::tuple<int, int, int, int>, double> cache;
  const auto meshes = sim::PaperMeshes(cluster);
  std::vector<std::unique_ptr<parallel::IntraOpCompiler>> compilers;
  for (const sim::Mesh mesh : meshes) {
    compilers.push_back(std::make_unique<parallel::IntraOpCompiler>(cluster, mesh));
  }

  std::vector<double> latencies;
  while (static_cast<std::int32_t>(latencies.size()) < kPlans) {
    const auto latency = RandomPlanLatency(benchmark, cluster, microbatches, rng, cache,
                                           compilers, meshes);
    if (latency) latencies.push_back(*latency);
  }
  std::sort(latencies.begin(), latencies.end());

  util::TablePrinter table({"statistic", "iteration latency"});
  table.SetTitle("Fig. 2 — " + benchmark.name + ": latency of " + std::to_string(kPlans) +
                 " random parallelization plans on " + cluster.name);
  table.AddRow({"min", util::FormatSeconds(util::Min(latencies))});
  table.AddRow({"p25", util::FormatSeconds(util::Percentile(latencies, 25))});
  table.AddRow({"median", util::FormatSeconds(util::Percentile(latencies, 50))});
  table.AddRow({"p75", util::FormatSeconds(util::Percentile(latencies, 75))});
  table.AddRow({"max", util::FormatSeconds(util::Max(latencies))});
  table.AddRow({"max / min", util::FormatF(util::Max(latencies) / util::Min(latencies), 2) + "x"});
  table.Print(std::cout);

  // Sorted latency series (the paper plots all 100 plans).
  std::cout << "sorted plan latencies (s):";
  for (std::size_t i = 0; i < latencies.size(); ++i) {
    if (i % 10 == 0) std::cout << "\n  ";
    std::cout << util::FormatF(latencies[i], 4) << ' ';
  }
  std::cout << "\n\n";
}

}  // namespace

int main() {
  const auto cluster = sim::Platform2();
  RunBenchmark(bench::PaperGpt3(), cluster);
  RunBenchmark(bench::PaperMoe(), cluster);
  std::cout << "Shape check vs paper Fig. 2: plan choice changes iteration latency by a\n"
               "large factor for both models, motivating plan-aware prediction.\n";
  return 0;
}

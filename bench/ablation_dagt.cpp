// Ablations of the DAG Transformer's design choices (DESIGN.md):
//   - DAGRA reachability mask vs full attention,
//   - DAGPE depth positional encoding on/off,
//   - MAE vs MSE training loss (paper §IV-B7 picks MAE),
//   - graph pruning on/off (paper §IV-B4), measured on encoding size and
//     accuracy.
// One (benchmark, mesh, config) scenario, largest training fraction.

#include <iostream>

#include "bench_common.h"
#include "ir/to_dag.h"

using namespace predtop;

int main() {
  const bench::GridConfig grid = bench::LoadGridConfig();
  const auto benchmark = bench::PaperGpt3();
  const auto cluster = sim::Platform1();
  const sim::Mesh mesh{1, 2};
  const parallel::ParallelConfig config{1, 2, 1};
  const parallel::IntraOpCompiler compiler(cluster, mesh);

  const bench::StagePool pool =
      bench::BuildStagePool(benchmark, grid.gpt_samples, grid.gpt_max_span, grid.seed);
  sim::Profiler profiler({}, grid.seed);
  const core::StageDataset dataset = bench::LabelPool(pool, compiler, config, profiler);

  util::Rng rng(grid.seed + 5);
  const nn::DataSplit split = nn::SplitDataset(dataset.Size(), 0.7, 0.1, rng);

  struct Variant {
    std::string name;
    bool dagra;
    bool dagpe;
    nn::LossKind loss;
  };
  const std::vector<Variant> variants{
      {"full model (DAGRA + DAGPE, MAE)", true, true, nn::LossKind::kMae},
      {"no DAGRA (unmasked attention)", false, true, nn::LossKind::kMae},
      {"no DAGPE (no depth encoding)", true, false, nn::LossKind::kMae},
      {"MSE loss instead of MAE", true, true, nn::LossKind::kMse},
  };

  util::TablePrinter table({"variant", "held-out MRE (%)"});
  table.SetTitle("DAG Transformer ablations — GPT-3, Platform 1, " + config.ToString());
  for (const Variant& v : variants) {
    core::PredictorOptions options = grid.predictor;
    options.use_dagra = v.dagra;
    options.use_dagpe = v.dagpe;
    nn::TrainConfig train = grid.train;
    train.loss = v.loss;
    core::LatencyRegressor regressor(core::PredictorKind::kDagTransformer, options);
    regressor.Fit(dataset, split.train, split.validation, train);
    table.AddRow({v.name, util::FormatF(regressor.MrePercent(dataset, split.test), 2)});
    std::cerr << "[bench] ablation done: " << v.name << "\n";
  }
  table.Print(std::cout);

  // Pruning ablation: encoding size effect (paper §IV-B4 motivation).
  std::int64_t raw_nodes = 0, pruned_nodes = 0;
  for (const auto& program : pool.programs) {
    raw_nodes += ir::BuildOpDag(program).NumNodes();
    pruned_nodes += ir::BuildPrunedOpDag(program).NumNodes();
  }
  util::TablePrinter prune_table({"graph form", "total nodes", "relative"});
  prune_table.SetTitle("Graph pruning (reshape/broadcast/convert removal)");
  prune_table.AddRow({"raw jaxpr-level DAGs", std::to_string(raw_nodes), "100%"});
  prune_table.AddRow({"pruned DAGs", std::to_string(pruned_nodes),
                      util::FormatF(100.0 * pruned_nodes / raw_nodes, 1) + "%"});
  prune_table.Print(std::cout);
  return 0;
}

// Paper Tbl. VI: MRE (%) of GCN / GAT / DAG Transformer at every (mesh,
// configuration) of Platform 2 (2 nodes x 2 RTX A5500) over training
// fractions, for the GPT-3 (a) and MoE (b) benchmarks.

#include <iostream>

#include "bench_common.h"

using namespace predtop;

int main() {
  const bench::GridConfig grid = bench::LoadGridConfig();
  const auto cluster = sim::Platform2();
  const auto gpt = bench::EnsureMreGrid(grid, cluster, "platform2", bench::PaperGpt3(), "gpt3",
                                        grid.gpt_samples, grid.gpt_max_span);
  bench::PrintMreTable(gpt, "Table VI(a) — GPT-3, Platform 2 (RTX A5500): MRE (%)", std::cout);
  std::cout << '\n';
  const auto moe = bench::EnsureMreGrid(grid, cluster, "platform2", bench::PaperMoe(), "moe",
                                        grid.moe_samples, grid.moe_max_span);
  bench::PrintMreTable(moe, "Table VI(b) — MoE, Platform 2 (RTX A5500): MRE (%)", std::cout);
  std::cout << "\nShape check vs paper Tbl. VI: as on Platform 1, the DAG Transformer's\n"
               "error declines predictably with data across all mesh/parallelism\n"
               "configurations including the cross-node mesh 3 scenarios; the baseline\n"
               "instability the paper observes appears here only in a few MoE cross-node\n"
               "cells (simulated latency is friendlier to additive models) — see\n"
               "EXPERIMENTS.md.\n";
  return 0;
}

// Paper Tbl. V: MRE (%) of GCN / GAT / DAG Transformer at every (mesh,
// configuration) of Platform 1 (2x NVIDIA A40) over training fractions, for
// the GPT-3 (a) and MoE (b) benchmarks. Reuses the cached MRE grid when a
// prior bench binary already computed it.

#include <iostream>

#include "bench_common.h"

using namespace predtop;

int main() {
  const bench::GridConfig grid = bench::LoadGridConfig();
  const auto cluster = sim::Platform1();
  const auto gpt = bench::EnsureMreGrid(grid, cluster, "platform1", bench::PaperGpt3(), "gpt3",
                                        grid.gpt_samples, grid.gpt_max_span);
  bench::PrintMreTable(gpt, "Table V(a) — GPT-3, Platform 1 (A40): MRE (%)", std::cout);
  std::cout << '\n';
  const auto moe = bench::EnsureMreGrid(grid, cluster, "platform1", bench::PaperMoe(), "moe",
                                        grid.moe_samples, grid.moe_max_span);
  bench::PrintMreTable(moe, "Table V(b) — MoE, Platform 1 (A40): MRE (%)", std::cout);
  std::cout << "\nShape check vs paper Tbl. V: the DAG Transformer improves monotonically\n"
               "with training data and reaches the paper's 2-4% band at 80% (which\n"
               "matches the paper's *absolute* training-set sizes); at the scaled-down\n"
               "grid's smallest fractions (4-5 stages) it degrades while the additive\n"
               "baselines stay low on this simulated substrate — see EXPERIMENTS.md.\n";
  return 0;
}

// Overload soak: closed-loop clients hammering LocalCluster workers over
// the real wire protocol, sweeping offered load (client count) twice —
//
//   unprotected — no admission budget, no deadline: every request is
//                 accepted and computed, so queueing pushes tail latency
//                 up with the client count;
//   protected   — per-worker inflight budget + a per-request deadline:
//                 overflow is fast-rejected typed kOverloaded, expired
//                 work is shed before (or mid-) batch, and the admitted
//                 requests keep a near-unloaded tail.
//
// Clients connect directly to workers (one persistent connection each,
// round-robin over the shards) — the many-client ingress regime worker
// admission control exists for; the single-router path is exercised by
// cluster_test and bench/cluster_scaleout.
//
// The drill criteria from the overload-protection PR are evaluated and
// written into the JSON tail:
//   - p99 of *admitted* requests at max load stays within 2x the unloaded
//     p99 (protected run);
//   - zero post-deadline computations: the workers' late_completions
//     counter stays 0 across every protected cell.
//
// Results go to BENCH_overload.json (PREDTOP_BENCH_JSON overrides). Knobs:
//   PREDTOP_OVERLOAD_CLIENTS      max client count, doubling sweep (def 32)
//   PREDTOP_OVERLOAD_SECS         seconds per cell               (def 2)
//   PREDTOP_OVERLOAD_INFLIGHT     protected inflight budget      (def 1)
//   PREDTOP_OVERLOAD_DEADLINE_MS  protected per-request deadline (def 50)
//   PREDTOP_BENCH_SMOKE=1         shrink everything for CI

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/local.h"
#include "cluster/transport.h"
#include "cluster/wire.h"
#include "core/plan_search.h"
#include "fault/injector.h"
#include "fault/status.h"
#include "serve/oracle.h"
#include "util/env.h"
#include "util/table.h"
#include "util/timer.h"

using namespace predtop;

namespace {

struct CellResult {
  std::string mode;  // "unprotected" | "protected"
  std::size_t clients = 0;
  double wall_s = 0.0;
  std::uint64_t offered = 0;   // requests sent
  std::uint64_t admitted = 0;  // requests answered ok
  std::uint64_t shed_overload = 0;
  std::uint64_t shed_expired = 0;
  std::uint64_t late_completions = 0;
  double goodput_qps = 0.0;  // admitted requests per second
  double p50_us = 0.0;       // client-observed, admitted requests
  double p99_us = 0.0;
  std::uint64_t svc_p50_us = 0;  // worker-side service latency (max shard)
  std::uint64_t svc_p99_us = 0;
};

double Percentile(std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  const auto index =
      static_cast<std::size_t>(p * static_cast<double>(sorted_us.size() - 1) + 0.5);
  return sorted_us[std::min(index, sorted_us.size() - 1)];
}

/// Sum one counter across every worker, via real stats frames.
cluster::StatsBody ClusterStats(const std::vector<cluster::Endpoint>& endpoints) {
  using namespace cluster;
  StatsBody total;
  for (const Endpoint& endpoint : endpoints) {
    try {
      Socket socket = ConnectTo(endpoint, 1000.0);
      SendFrame(socket, Frame{MessageType::kStatsRequest, 1, {}});
      const StatsBody body = DecodeStatsBody(RecvFrame(socket, 2000.0).payload);
      total.requests += body.requests;
      total.forwards += body.forwards;
      total.shed_expired += body.shed_expired;
      total.shed_overload += body.shed_overload;
      total.late_completions += body.late_completions;
      // Percentiles cannot be summed across shards; take the worst shard.
      total.svc_p50_us = std::max(total.svc_p50_us, body.svc_p50_us);
      total.svc_p99_us = std::max(total.svc_p99_us, body.svc_p99_us);
    } catch (const std::exception&) {
      // A worker mid-restart just contributes nothing to this snapshot.
    }
  }
  return total;
}

/// One soak cell: `clients` closed-loop threads for `seconds`, each cycling
/// batched predict frames over its own persistent connection.
CellResult RunCell(const std::vector<cluster::Endpoint>& endpoints,
                   const std::vector<serve::ModelKey>& keys,
                   const std::vector<std::vector<cluster::PredictRequest>>& requests,
                   std::size_t clients, double seconds, double deadline_ms,
                   std::string mode) {
  using namespace cluster;
  (void)keys;
  const cluster::StatsBody before = ClusterStats(endpoints);

  std::vector<double> admitted_us;
  std::mutex merge_mutex;
  std::atomic<std::uint64_t> offered{0};
  std::atomic<std::uint64_t> admitted{0};
  std::atomic<std::uint64_t> client_shed{0};
  std::atomic<std::uint64_t> client_expired{0};
  const std::uint64_t stop_at = util::DeadlineAfterMs(seconds * 1000.0);

  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::vector<double> local_us;
      const std::size_t worker = c % endpoints.size();
      const auto& bucket = requests[c % requests.size()];
      Socket socket;
      std::uint64_t request_id = 1;
      std::size_t next = c;  // stagger the start offsets across clients
      double backoff_ms = 1.0;  // doubles per consecutive typed reject
      while (!util::DeadlineExpired(stop_at)) {
        try {
          if (!socket.Valid()) socket = ConnectTo(endpoints[worker], 1000.0);
          Frame frame{MessageType::kPredictRequest, request_id++,
                      EncodePredictRequest(bucket[next++ % bucket.size()])};
          if (deadline_ms > 0.0) frame.deadline_us = util::DeadlineAfterMs(deadline_ms);
          const auto start = std::chrono::steady_clock::now();
          SendFrame(socket, frame);
          const Frame reply = RecvFrame(socket, 10000.0);
          const double us = std::chrono::duration<double, std::micro>(
                                std::chrono::steady_clock::now() - start)
                                .count();
          offered.fetch_add(1, std::memory_order_relaxed);
          if (reply.type == MessageType::kPredictResponse) {
            admitted.fetch_add(1, std::memory_order_relaxed);
            local_us.push_back(us);
            backoff_ms = 1.0;
          } else if (reply.type == MessageType::kError) {
            const ErrorBody error = DecodeErrorBody(reply.payload);
            if (error.code == fault::StatusCode::kOverloaded) {
              client_shed.fetch_add(1, std::memory_order_relaxed);
            } else if (error.code == fault::StatusCode::kDeadlineExceeded) {
              client_expired.fetch_add(1, std::memory_order_relaxed);
            }
            // The point of the *typed* reject: the client can tell overload
            // from failure and respond by exponentially backing off — its
            // load (and its thread) actually leaves the system instead of
            // being re-queued blindly.
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(backoff_ms));
            backoff_ms = std::min(backoff_ms * 2.0, 32.0);
          }
        } catch (const std::exception&) {
          socket = Socket();  // reconnect on the next iteration
        }
      }
      const std::scoped_lock lock(merge_mutex);
      admitted_us.insert(admitted_us.end(), local_us.begin(), local_us.end());
    });
  }
  util::Stopwatch watch;
  for (std::thread& thread : threads) thread.join();
  const double wall_s = watch.ElapsedSeconds() + seconds;  // threads ran `seconds`

  const cluster::StatsBody after = ClusterStats(endpoints);
  CellResult cell;
  cell.mode = std::move(mode);
  cell.clients = clients;
  cell.wall_s = wall_s;
  cell.offered = offered.load();
  cell.admitted = admitted.load();
  cell.shed_overload = after.shed_overload - before.shed_overload;
  cell.shed_expired = after.shed_expired - before.shed_expired;
  cell.late_completions = after.late_completions - before.late_completions;
  cell.svc_p50_us = after.svc_p50_us;
  cell.svc_p99_us = after.svc_p99_us;
  cell.goodput_qps = seconds > 0 ? static_cast<double>(cell.admitted) / seconds : 0.0;
  std::sort(admitted_us.begin(), admitted_us.end());
  cell.p50_us = Percentile(admitted_us, 0.50);
  cell.p99_us = Percentile(admitted_us, 0.99);
  return cell;
}

void WriteJson(const std::string& path, double seconds, std::size_t inflight,
               double deadline_ms, const std::vector<CellResult>& cells,
               double unloaded_p99_us, double loaded_p99_us, bool p99_within_2x,
               std::uint64_t protected_late, bool zero_late) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"overload_soak\",\n"
      << "  \"cell_secs\": " << seconds << ",\n"
      << "  \"protected_inflight\": " << inflight << ",\n"
      << "  \"protected_deadline_ms\": " << deadline_ms << ",\n"
      << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    out << "    {\"mode\": \"" << c.mode << "\", \"clients\": " << c.clients
        << ", \"offered\": " << c.offered << ", \"admitted\": " << c.admitted
        << ", \"goodput_qps\": " << c.goodput_qps << ", \"p50_us\": " << c.p50_us
        << ", \"p99_us\": " << c.p99_us << ", \"svc_p50_us\": " << c.svc_p50_us
        << ", \"svc_p99_us\": " << c.svc_p99_us
        << ", \"shed_overload\": " << c.shed_overload
        << ", \"shed_expired\": " << c.shed_expired
        << ", \"late_completions\": " << c.late_completions << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"criteria\": {\n"
      << "    \"unloaded_p99_us\": " << unloaded_p99_us << ",\n"
      << "    \"max_load_p99_us\": " << loaded_p99_us << ",\n"
      << "    \"admitted_p99_within_2x_unloaded\": " << (p99_within_2x ? "true" : "false")
      << ",\n"
      << "    \"protected_late_completions\": " << protected_late << ",\n"
      << "    \"zero_post_deadline_computations\": " << (zero_late ? "true" : "false")
      << "\n  }\n}\n";
  std::cerr << "[bench] wrote " << path << "\n";
}

}  // namespace

int main() {
  const bool smoke = util::EnvInt("PREDTOP_BENCH_SMOKE", 0) != 0;
  const auto max_clients = static_cast<std::size_t>(
      util::EnvInt("PREDTOP_OVERLOAD_CLIENTS", smoke ? 16 : 32));
  const double seconds = util::EnvDouble("PREDTOP_OVERLOAD_SECS", smoke ? 1.0 : 2.0);
  const auto inflight =
      static_cast<std::size_t>(util::EnvInt("PREDTOP_OVERLOAD_INFLIGHT", 1));
  const double deadline_ms = util::EnvDouble("PREDTOP_OVERLOAD_DEADLINE_MS", 50.0);

  // A small-but-real serving stack: every admitted query that misses the
  // (deliberately tiny) worker cache is a genuine DAG Transformer forward,
  // so concurrency past the core count actually contends.
  ir::Gpt3Config config;
  config.seq_len = 64;
  config.hidden = 64;
  config.num_layers = 8;
  config.num_heads = 4;
  config.vocab = 512;
  config.microbatch = 2;

  core::PlanSearchConfig plan_config;
  plan_config.num_microbatches = 4;
  plan_config.sample_fraction = 0.5;
  plan_config.max_span = 3;
  plan_config.train.max_epochs = smoke ? 5 : 20;
  plan_config.train.patience = 20;
  plan_config.train.batch_size = 4;
  plan_config.predictor.dagt_dim = 16;
  plan_config.predictor.dagt_layers = 2;
  plan_config.predictor.dagt_heads = 2;

  core::PlanSearch search(core::Gpt3Benchmark(config), sim::Platform1(), plan_config);
  std::cerr << "[bench] overload_soak: training predictors\n";
  const core::TrainedMeshPredictors trained =
      search.TrainPredictors(core::PredictorKind::kDagTransformer);
  auto registry = std::make_shared<serve::ModelRegistry>();
  const std::vector<serve::ModelKey> keys = serve::RegisterMeshPredictors(
      *registry, "gpt3", "platform1", search.Meshes(), trained);

  // Pre-built single-query requests cycling the DP table per mesh. Many
  // distinct stages + a tiny worker cache keep the forwards real, and the
  // injected per-forward delay below gives the service a deterministic,
  // machine-independent base cost so the protected/unprotected contrast is
  // about *policy*, not about this host's core count.
  std::vector<std::vector<cluster::PredictRequest>> requests(search.Meshes().size());
  for (std::size_t m = 0; m < search.Meshes().size(); ++m) {
    for (std::int32_t first = 0; first < config.num_layers; ++first) {
      for (std::int32_t last = first + 1;
           last <= config.num_layers && last - first <= search.EffectiveMaxSpan(); ++last) {
        cluster::PredictRequest request;
        request.key = keys[m];
        request.queries.push_back({{first, last}, search.Meshes()[m]});
        requests[m].push_back(std::move(request));
      }
    }
  }
  // Every cache-missing forward costs an extra deterministic 2 ms (on top
  // of the real model forward, which contends for CPU).
  fault::Injector::Global().Configure("predict_delay_ms:2", 1);

  std::vector<CellResult> cells;
  util::TablePrinter table({"mode", "clients", "goodput", "client p99", "svc p99",
                            "shed", "expired", "late"});
  table.SetTitle("Overload soak — 2 shards, " + std::to_string(seconds) + "s cells");

  const auto run_sweep = [&](const std::string& mode, std::size_t budget,
                             double request_deadline_ms) {
    cluster::LocalClusterOptions cluster_options;
    cluster_options.num_workers = 2;
    cluster_options.service.threads = 1;
    cluster_options.service.cache_capacity = 2;  // keep the forwards real
    if (request_deadline_ms > 0.0) {
      // Pre-shed anything that cannot finish comfortably inside its
      // deadline: this is what keeps late_completions at zero.
      cluster_options.service.deadline_margin_us = 20000;
    }
    cluster_options.max_inflight = budget;
    for (std::size_t clients = 1; clients <= max_clients; clients *= 2) {
      std::cerr << "[bench] overload_soak: " << mode << ", " << clients
                << " client(s)\n";
      // A fresh cluster per cell isolates caches, counters, and the
      // service-latency histogram between load levels.
      cluster::LocalCluster workers(search.Benchmark(), registry, cluster_options);
      cells.push_back(RunCell(workers.Endpoints(), keys, requests, clients, seconds,
                              request_deadline_ms, mode));
      const CellResult& c = cells.back();
      table.AddRow({c.mode, std::to_string(c.clients), util::FormatF(c.goodput_qps, 0),
                    util::FormatF(c.p99_us, 0) + " us",
                    std::to_string(c.svc_p99_us) + " us",
                    std::to_string(c.shed_overload), std::to_string(c.shed_expired),
                    std::to_string(c.late_completions)});
    }
  };
  run_sweep("unprotected", 0, 0.0);
  run_sweep("protected", inflight, deadline_ms);
  table.Print(std::cout);

  // Drill criteria over the protected sweep.
  double unloaded_p99 = 0.0, loaded_p99 = 0.0;
  std::uint64_t protected_late = 0;
  for (const CellResult& c : cells) {
    if (c.mode != "protected") continue;
    if (c.clients == 1) unloaded_p99 = static_cast<double>(c.svc_p99_us);
    if (c.clients == max_clients) loaded_p99 = static_cast<double>(c.svc_p99_us);
    protected_late += c.late_completions;
  }
  const bool p99_ok = unloaded_p99 > 0.0 && loaded_p99 <= 2.0 * unloaded_p99;
  const bool zero_late = protected_late == 0;
  std::cout << "[criteria] admitted service p99 " << loaded_p99 << " us vs unloaded "
            << unloaded_p99 << " us (2x bound): " << (p99_ok ? "PASS" : "FAIL") << "\n"
            << "[criteria] zero post-deadline computations: "
            << (zero_late ? "PASS" : "FAIL") << " (late=" << protected_late << ")\n";

  const std::string json_path =
      util::EnvString("PREDTOP_BENCH_JSON").value_or("BENCH_overload.json");
  WriteJson(json_path, seconds, inflight, deadline_ms, cells, unloaded_p99, loaded_p99,
            p99_ok, protected_late, zero_late);
  return 0;
}

// Paper Fig. 3: stage-latency prediction error of GCN vs DAG Transformer
// across runtime configurations (the motivating comparison of §II-C). Cells
// come from the Platform 1 MRE grid (computed here if not already cached by
// another bench binary), reported at the largest training fraction.

#include <iostream>

#include "bench_common.h"

using namespace predtop;
using bench::GridConfig;

namespace {

void Report(const bench::MreGrid& grid_data, const std::string& benchmark_name,
            std::ostream& os) {
  util::TablePrinter table({"configuration", "GCN MRE (%)", "DAG Transformer MRE (%)"});
  table.SetTitle("Fig. 3 — " + benchmark_name + " (Platform 1, " +
                 std::to_string(grid_data.fraction_pcts.back()) + "% training samples)");
  const std::size_t f = grid_data.fraction_pcts.size() - 1;  // largest fraction
  for (std::size_t s = 0; s < grid_data.scenario_names.size(); ++s) {
    const bench::CellResult& cell = grid_data.cells[s][f];
    table.AddRow({grid_data.scenario_names[s], util::FormatF(cell.mre_gcn, 2),
                  util::FormatF(cell.mre_tran, 2)});
  }
  table.Print(os);
}

}  // namespace

int main() {
  const GridConfig grid = bench::LoadGridConfig();
  const auto cluster = sim::Platform1();
  const auto gpt = bench::EnsureMreGrid(grid, cluster, "platform1", bench::PaperGpt3(), "gpt3",
                                        grid.gpt_samples, grid.gpt_max_span);
  Report(gpt, "GPT-3", std::cout);
  const auto moe = bench::EnsureMreGrid(grid, cluster, "platform1", bench::PaperMoe(), "moe",
                                        grid.moe_samples, grid.moe_max_span);
  Report(moe, "MoE", std::cout);
  std::cout << "Shape check vs paper Fig. 3: the DAG Transformer stays usable across\n"
               "every configuration with no blow-ups. NOTE: unlike on the paper's real\n"
               "GPUs, GCN often matches or beats it here because simulated stage latency\n"
               "is close to additive in per-node features (see EXPERIMENTS.md).\n";
  return 0;
}

// Cluster scale-out load generator: N client threads driving a Router over
// M shard workers (in-process LocalCluster — the wire protocol, routing,
// coalescing and failover paths are identical to a multi-process
// deployment), measuring queries/s and p50/p99 per-request latency as the
// shard count grows. Three phases per shard count:
//
//   cold    — first pass, every worker cache empty (real model forwards);
//   warm    — repeated passes against warm shard caches (the repeated
//             what-if plan-search regime);
//   killed  — warm passes with one replica SIGKILL'd (StopWorker), every
//             query it owned failing over to its replica (shards >= 2).
//
// Results go to BENCH_cluster.json (PREDTOP_BENCH_JSON overrides). Knobs:
//   PREDTOP_CLUSTER_CLIENTS  concurrent client threads      (default 4)
//   PREDTOP_CLUSTER_ITERS    warm passes per client         (default 30)
//   PREDTOP_CLUSTER_SHARDS   max shard count, powers of two (default 4)

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/local.h"
#include "cluster/router.h"
#include "core/plan_search.h"
#include "graph/fingerprint.h"
#include "serve/oracle.h"
#include "util/env.h"
#include "util/table.h"
#include "util/timer.h"

using namespace predtop;

namespace {

struct PhaseResult {
  std::size_t shards = 0;
  std::string phase;
  double wall_s = 0.0;
  std::uint64_t requests = 0;  // PredictMany calls issued by clients
  std::uint64_t queries = 0;   // stage queries answered
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  cluster::RouterStats router;
};

double Percentile(std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  const auto index = static_cast<std::size_t>(
      p * static_cast<double>(sorted_us.size() - 1) + 0.5);
  return sorted_us[std::min(index, sorted_us.size() - 1)];
}

/// One measured pass: every client thread sends each per-mesh query bucket
/// through Router::PredictMany `iters` times, timing each call.
PhaseResult RunPhase(cluster::Router& router, const std::vector<serve::ModelKey>& keys,
                     const std::vector<std::vector<parallel::StageQuery>>& buckets,
                     const std::vector<std::vector<std::uint64_t>>& fingerprints,
                     std::size_t clients, std::size_t iters, std::size_t shards,
                     std::string phase) {
  std::vector<double> latencies_us;
  std::mutex latencies_mutex;
  std::uint64_t answered = 0;

  const cluster::RouterStats before = router.Stats();
  util::Stopwatch watch;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      std::vector<double> local_us;
      std::uint64_t local_answered = 0;
      for (std::size_t iteration = 0; iteration < iters; ++iteration) {
        for (std::size_t m = 0; m < buckets.size(); ++m) {
          const auto start = std::chrono::steady_clock::now();
          const std::vector<cluster::Router::Reply> replies =
              router.PredictMany(keys[m], buckets[m], fingerprints[m]);
          local_us.push_back(std::chrono::duration<double, std::micro>(
                                 std::chrono::steady_clock::now() - start)
                                 .count());
          for (const cluster::Router::Reply& reply : replies) {
            if (reply.ok && std::isfinite(reply.latency_s)) ++local_answered;
          }
        }
      }
      const std::scoped_lock lock(latencies_mutex);
      latencies_us.insert(latencies_us.end(), local_us.begin(), local_us.end());
      answered += local_answered;
    });
  }
  for (std::thread& thread : threads) thread.join();

  PhaseResult result;
  result.shards = shards;
  result.phase = std::move(phase);
  result.wall_s = watch.ElapsedSeconds();
  result.requests = latencies_us.size();
  result.queries = answered;
  result.qps = result.wall_s > 0 ? static_cast<double>(answered) / result.wall_s : 0.0;
  std::sort(latencies_us.begin(), latencies_us.end());
  result.p50_us = Percentile(latencies_us, 0.50);
  result.p99_us = Percentile(latencies_us, 0.99);
  const cluster::RouterStats after = router.Stats();
  result.router.requests = after.requests - before.requests;
  result.router.queries = after.queries - before.queries;
  result.router.coalesced = after.coalesced - before.coalesced;
  result.router.failovers = after.failovers - before.failovers;
  result.router.worker_failures = after.worker_failures - before.worker_failures;
  result.router.unanswered = after.unanswered - before.unanswered;
  return result;
}

void WriteJson(const std::string& path, std::size_t clients, std::size_t iters,
               std::size_t total_queries_per_pass,
               const std::vector<PhaseResult>& results) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"cluster_scaleout\",\n"
      << "  \"clients\": " << clients << ",\n"
      << "  \"warm_iters\": " << iters << ",\n"
      << "  \"queries_per_pass\": " << total_queries_per_pass << ",\n"
      << "  \"runs\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const PhaseResult& r = results[i];
    out << "    {\"shards\": " << r.shards << ", \"phase\": \"" << r.phase
        << "\", \"qps\": " << r.qps << ", \"p50_us\": " << r.p50_us
        << ", \"p99_us\": " << r.p99_us << ", \"wall_s\": " << r.wall_s
        << ", \"requests\": " << r.requests << ", \"queries\": " << r.queries
        << ", \"coalesced\": " << r.router.coalesced
        << ", \"failovers\": " << r.router.failovers
        << ", \"worker_failures\": " << r.router.worker_failures
        << ", \"unanswered\": " << r.router.unanswered << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cerr << "[bench] wrote " << path << "\n";
}

}  // namespace

int main() {
  const auto clients =
      static_cast<std::size_t>(util::EnvInt("PREDTOP_CLUSTER_CLIENTS", 4));
  const auto iters = static_cast<std::size_t>(util::EnvInt("PREDTOP_CLUSTER_ITERS", 30));
  const auto max_shards =
      static_cast<std::size_t>(util::EnvInt("PREDTOP_CLUSTER_SHARDS", 4));

  // A small-but-real serving stack: 8 transformer layers give ~21 distinct
  // DP cells per mesh, enough for the ring to spread load, and the trained
  // DAG Transformer makes every cold query a genuine model forward.
  ir::Gpt3Config config;
  config.seq_len = 64;
  config.hidden = 64;
  config.num_layers = 8;
  config.num_heads = 4;
  config.vocab = 512;
  config.microbatch = 2;

  core::PlanSearchConfig plan_config;
  plan_config.num_microbatches = 4;
  plan_config.sample_fraction = 0.5;
  plan_config.max_span = 3;
  plan_config.train.max_epochs = 20;
  plan_config.train.patience = 20;
  plan_config.train.batch_size = 4;
  plan_config.predictor.dagt_dim = 16;
  plan_config.predictor.dagt_layers = 2;
  plan_config.predictor.dagt_heads = 2;

  core::PlanSearch search(core::Gpt3Benchmark(config), sim::Platform1(), plan_config);
  std::cerr << "[bench] cluster_scaleout: training predictors\n";
  const core::TrainedMeshPredictors trained =
      search.TrainPredictors(core::PredictorKind::kDagTransformer);
  auto registry = std::make_shared<serve::ModelRegistry>();
  const std::vector<serve::ModelKey> keys = serve::RegisterMeshPredictors(
      *registry, "gpt3", "platform1", search.Meshes(), trained);

  // The full DP table, bucketed per mesh (one served model per bucket), with
  // fingerprints precomputed — clients must hit the router, not the encoder.
  std::vector<std::vector<parallel::StageQuery>> buckets(search.Meshes().size());
  std::vector<std::vector<std::uint64_t>> fingerprints(search.Meshes().size());
  for (std::int32_t first = 0; first < config.num_layers; ++first) {
    for (std::int32_t last = first + 1;
         last <= config.num_layers && last - first <= search.EffectiveMaxSpan(); ++last) {
      const graph::EncodedGraph& g = search.EncodedFor({first, last});
      const std::uint64_t fp =
          g.fingerprint != 0 ? g.fingerprint : graph::EncodedGraphFingerprint(g);
      for (std::size_t m = 0; m < search.Meshes().size(); ++m) {
        buckets[m].push_back({{first, last}, search.Meshes()[m]});
        fingerprints[m].push_back(fp);
      }
    }
  }
  std::size_t queries_per_pass = 0;
  for (const auto& bucket : buckets) queries_per_pass += bucket.size();

  std::vector<PhaseResult> results;
  util::TablePrinter table(
      {"shards", "phase", "qps", "p50", "p99", "failovers", "unanswered"});
  table.SetTitle("Cluster scale-out — " + std::to_string(clients) + " clients x " +
                 std::to_string(queries_per_pass) + " queries/pass");

  for (std::size_t shards = 1; shards <= max_shards; shards *= 2) {
    cluster::LocalClusterOptions cluster_options;
    cluster_options.num_workers = shards;
    cluster_options.service.threads = 2;
    cluster::LocalCluster workers(search.Benchmark(), registry, cluster_options);
    cluster::RouterOptions router_options;
    router_options.replicas = std::min<std::size_t>(2, shards);
    router_options.connect_timeout_ms = 200.0;
    router_options.revive_after_ms = 60000.0;
    cluster::Router router(workers.Endpoints(), router_options);

    std::cerr << "[bench] cluster_scaleout: " << shards << " shard(s)\n";
    results.push_back(
        RunPhase(router, keys, buckets, fingerprints, clients, 1, shards, "cold"));
    results.push_back(
        RunPhase(router, keys, buckets, fingerprints, clients, iters, shards, "warm"));
    if (shards >= 2) {
      workers.StopWorker(0);
      results.push_back(RunPhase(router, keys, buckets, fingerprints, clients, iters,
                                 shards, "killed"));
    }
    for (const PhaseResult& r : results) {
      if (r.shards != shards) continue;
      table.AddRow({std::to_string(r.shards), r.phase, util::FormatF(r.qps, 0),
                    util::FormatF(r.p50_us, 0) + " us", util::FormatF(r.p99_us, 0) + " us",
                    std::to_string(r.router.failovers),
                    std::to_string(r.router.unanswered)});
    }
  }
  table.Print(std::cout);

  const std::string json_path =
      util::EnvString("PREDTOP_BENCH_JSON").value_or("BENCH_cluster.json");
  WriteJson(json_path, clients, iters, queries_per_pass, results);
  return 0;
}

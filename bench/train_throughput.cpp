// Data-parallel training throughput: trains a synthetic MLP regression
// workload (the shapes of a stage-predictor head: (16, 64) inputs through a
// {64, 256, 256, 1} MLP pooled to a scalar) with Trainer::Fit at a sweep of
// thread counts, and writes per-thread-count epoch time + speedup over the
// serial loop to BENCH_train.json (path overridable via PREDTOP_BENCH_JSON).
//
// The threads=1 row is the original serial batch loop (one loss tree, one
// backward); rows with threads>1 run the sharded path: per-sample
// BackwardInto into per-shard buffers, fixed-order chunked reduction, one
// Adam step. Speedups are only meaningful on multicore hardware — on a
// single hardware thread the sweep still validates the machinery and
// records ~1x. PREDTOP_BENCH_SMOKE=1 shrinks the workload so CI exercises
// the harness in seconds; PREDTOP_TRAIN_BENCH_THREADS overrides the sweep
// (comma-separated).

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "autograd/functions.h"
#include "nn/linear.h"
#include "nn/trainer.h"
#include "util/env.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace predtop;

namespace {

struct Workload {
  std::vector<tensor::Tensor> inputs;  // (16, 64) feature blocks
  std::vector<float> targets;
  std::vector<std::size_t> train_idx;
};

Workload BuildWorkload(std::size_t samples) {
  util::Rng rng(31);
  Workload w;
  for (std::size_t i = 0; i < samples; ++i) {
    tensor::Tensor x = tensor::Tensor::Randn({16, 64}, rng);
    // Learnable target: mean feature value (kept in the MLP's easy range).
    double sum = 0.0;
    for (const float v : x.data()) sum += v;
    w.targets.push_back(static_cast<float>(sum / static_cast<double>(x.numel())));
    w.inputs.push_back(std::move(x));
    w.train_idx.push_back(i);
  }
  return w;
}

struct Row {
  int threads = 0;
  double epoch_s = 0.0;
  double speedup_vs_serial = 0.0;
  double final_train_loss = 0.0;
};

/// One measured training run: fresh identically-seeded model, `epochs`
/// epochs, no validation set (isolates the training loop itself).
Row RunOnce(const Workload& w, int threads, std::int64_t epochs, int reps) {
  Row row;
  row.threads = threads;
  row.epoch_s = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    util::Rng rng(77);
    nn::Mlp mlp({64, 256, 256, 1}, rng);
    nn::TrainConfig config;
    config.max_epochs = epochs;
    config.patience = epochs;
    config.batch_size = 32;
    config.base_lr = 1e-3f;
    config.threads = threads;
    const nn::Trainer trainer(config);
    const auto forward = [&](std::size_t i) {
      return autograd::GlobalAddPool(mlp.Forward(autograd::Variable(w.inputs[i])));
    };
    util::Stopwatch timer;
    const nn::TrainResult result =
        trainer.Fit(mlp, forward, w.targets, w.train_idx, {});
    const double elapsed = timer.ElapsedSeconds();
    if (elapsed / static_cast<double>(epochs) < row.epoch_s) {
      row.epoch_s = elapsed / static_cast<double>(epochs);
      row.final_train_loss = result.train_loss_history.back();
    }
  }
  return row;
}

void WriteJson(const std::string& path, const Workload& w, std::int64_t epochs,
               const std::vector<Row>& rows, bool smoke) {
  std::ofstream out(path);
  out << "{\n  \"smoke\": " << (smoke ? "true" : "false")
      << ",\n  \"samples\": " << w.inputs.size() << ",\n  \"input_shape\": [16, 64]"
      << ",\n  \"mlp\": [64, 256, 256, 1]" << ",\n  \"epochs\": " << epochs
      << ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    out << "    {\"threads\": " << row.threads << ", \"epoch_s\": " << row.epoch_s
        << ", \"speedup_vs_serial\": " << row.speedup_vs_serial
        << ", \"final_train_loss\": " << row.final_train_loss << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cerr << "[bench] wrote " << path << "\n";
}

}  // namespace

int main() {
  const bool smoke = util::EnvInt("PREDTOP_BENCH_SMOKE", 0) != 0;
  const std::string json_path =
      util::EnvString("PREDTOP_BENCH_JSON").value_or("BENCH_train.json");
  const std::size_t samples = smoke ? 64 : 256;
  const std::int64_t epochs = smoke ? 2 : 3;
  const int reps = smoke ? 1 : 2;
  const std::vector<int> sweep = util::EnvIntList(
      "PREDTOP_TRAIN_BENCH_THREADS", smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8});

  const Workload w = BuildWorkload(samples);

  // Serial baseline first; every row's speedup is measured against it.
  const Row serial = RunOnce(w, 1, epochs, reps);
  std::vector<Row> rows;
  for (const int threads : sweep) {
    Row row = threads == 1 ? serial : RunOnce(w, threads, epochs, reps);
    row.speedup_vs_serial = serial.epoch_s / row.epoch_s;
    std::cerr << "[bench] threads=" << row.threads << " epoch_s=" << row.epoch_s
              << " speedup_vs_serial=" << row.speedup_vs_serial
              << " final_train_loss=" << row.final_train_loss << "\n";
    rows.push_back(row);
  }
  WriteJson(json_path, w, epochs, rows, smoke);
  return 0;
}

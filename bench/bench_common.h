#pragma once
// Shared infrastructure for the experiment harnesses that regenerate the
// paper's tables and figures.
//
// Sizing: the paper's grid (409 GPT / 205 MoE stages, 8 training fractions,
// 500 epochs, DAG Transformer 4x64 / GCN 6x256 / GAT 6x32) takes GPU-days;
// the default here is a faithful but scaled-down grid that completes on one
// laptop core. PREDTOP_FULL=1 restores the paper-size hyperparameters, and
// individual knobs override specific sizes:
//   PREDTOP_FRACTIONS    comma list of training percentages (default 10,30,50,80)
//   PREDTOP_GPT_SAMPLES  stages sampled from GPT-3   (default 56)
//   PREDTOP_MOE_SAMPLES  stages sampled from MoE     (default 44)
//   PREDTOP_EPOCHS       max training epochs         (default 200)
//   PREDTOP_RESULTS_DIR  cell-result CSV cache       (default ./predtop_results)
//
// Computed MRE grids are cached as CSV in PREDTOP_RESULTS_DIR so that
// fig08_fig09 (which needs both platforms' grids) and the table binaries
// share work across processes.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/regressor.h"
#include "ir/stages.h"
#include "nn/trainer.h"
#include "util/env.h"
#include "util/logging.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

namespace predtop::bench {

struct GridConfig {
  bool full = false;
  std::vector<int> fraction_pcts{10, 30, 50, 80};
  std::size_t gpt_samples = 56;
  std::size_t moe_samples = 44;
  std::int32_t gpt_max_span = 6;
  std::int32_t moe_max_span = 4;
  nn::TrainConfig train;
  core::PredictorOptions predictor;
  std::string results_dir = "predtop_results";
  std::uint64_t seed = 0xbe9cULL;
};

inline GridConfig LoadGridConfig() {
  GridConfig g;
  g.full = util::EnvBool("PREDTOP_FULL", false);
  if (g.full) {
    // Paper-size grid (paper §IV-B6, §VII-D, §VIII).
    g.fraction_pcts = {10, 20, 30, 40, 50, 60, 70, 80};
    g.gpt_samples = 409;
    g.moe_samples = 205;
    g.gpt_max_span = 0;  // unbounded
    g.moe_max_span = 0;
    g.train.max_epochs = 500;
    g.train.patience = 200;
    g.train.base_lr = 1e-3f;
    g.train.batch_size = 32;
    g.predictor.dagt_dim = 64;
    g.predictor.dagt_layers = 4;
    g.predictor.dagt_heads = 4;
    g.predictor.gcn_dim = 256;
    g.predictor.gcn_layers = 6;
    g.predictor.gat_dim = 32;
    g.predictor.gat_layers = 6;
  } else {
    g.train.max_epochs = 200;
    g.train.patience = 200;  // rely on the cosine schedule
    g.train.base_lr = 5e-3f;
    g.train.batch_size = 8;
    g.predictor.dagt_dim = 16;
    g.predictor.dagt_layers = 2;
    g.predictor.dagt_heads = 2;
    g.predictor.gcn_dim = 64;
    g.predictor.gcn_layers = 4;
    g.predictor.gat_dim = 16;
    g.predictor.gat_layers = 4;
  }
  g.predictor.feature_dim = core::StageFeatureDim();
  g.fraction_pcts = util::EnvIntList("PREDTOP_FRACTIONS", g.fraction_pcts);
  g.gpt_samples = static_cast<std::size_t>(
      util::EnvInt("PREDTOP_GPT_SAMPLES", static_cast<long>(g.gpt_samples)));
  g.moe_samples = static_cast<std::size_t>(
      util::EnvInt("PREDTOP_MOE_SAMPLES", static_cast<long>(g.moe_samples)));
  g.train.max_epochs = util::EnvInt("PREDTOP_EPOCHS", g.train.max_epochs);
  g.train.patience = g.train.max_epochs;
  if (const auto dir = util::EnvString("PREDTOP_RESULTS_DIR")) g.results_dir = *dir;
  return g;
}

/// One (mesh, parallel-config) scenario of paper Tbls. II/III.
struct Scenario {
  std::string name;  // e.g. "Mesh 2 / Conf 1"
  sim::Mesh mesh;
  parallel::ParallelConfig config;
};

/// The per-platform scenario columns of paper Tbls. V and VI.
inline std::vector<Scenario> PlatformScenarios(const sim::ClusterSpec& cluster) {
  std::vector<Scenario> out;
  const auto meshes = sim::PaperMeshes(cluster);
  for (std::size_t m = 0; m < meshes.size(); ++m) {
    const auto configs = parallel::PaperConfigs(meshes[m]);
    for (std::size_t c = 0; c < configs.size(); ++c) {
      out.push_back({"Mesh " + std::to_string(m + 1) + " Conf " + std::to_string(c + 1),
                     meshes[m], configs[c]});
    }
  }
  return out;
}

/// The two paper benchmarks at their Tbl. IV shapes.
inline core::BenchmarkModel PaperGpt3() { return core::Gpt3Benchmark(ir::Gpt3Config{}); }
inline core::BenchmarkModel PaperMoe() { return core::MoeBenchmark(ir::MoeConfig{}); }

/// MRE of each predictor for one (scenario, fraction) cell.
struct CellResult {
  double mre_gcn = 0.0;
  double mre_gat = 0.0;
  double mre_tran = 0.0;
  [[nodiscard]] double Of(core::PredictorKind kind) const {
    switch (kind) {
      case core::PredictorKind::kGcn: return mre_gcn;
      case core::PredictorKind::kGat: return mre_gat;
      case core::PredictorKind::kDagTransformer: return mre_tran;
    }
    return 0.0;
  }
};

/// Full MRE grid for one (platform, benchmark): grid[scenario][fraction].
struct MreGrid {
  std::vector<std::string> scenario_names;
  std::vector<int> fraction_pcts;
  std::vector<std::vector<CellResult>> cells;
};

/// Pre-encoded stage pool shared across a benchmark's scenarios (the
/// encoding is mesh/config independent; only labels change).
struct StagePool {
  std::vector<ir::StageSlice> slices;
  std::vector<graph::EncodedGraph> encoded;
  std::vector<ir::StageProgram> programs;
};

inline StagePool BuildStagePool(const core::BenchmarkModel& benchmark, std::size_t num_samples,
                                std::int32_t max_span, std::uint64_t seed) {
  StagePool pool;
  const std::int32_t span = max_span > 0 ? max_span : benchmark.num_layers;
  const auto all = ir::EnumerateStageSlices(benchmark.num_layers, span);
  util::Rng rng(seed);
  pool.slices = num_samples > 0 && num_samples < all.size()
                    ? ir::SampleStageSlices(all, num_samples, rng)
                    : all;
  pool.programs.reserve(pool.slices.size());
  pool.encoded.reserve(pool.slices.size());
  for (const ir::StageSlice slice : pool.slices) {
    pool.programs.push_back(benchmark.build_stage(slice));
    pool.encoded.push_back(core::EncodeStage(pool.programs.back()));
  }
  return pool;
}

/// Label the pool for one scenario (compile + noisy profiling) and package
/// it as a core::StageDataset (encodings are copied from the pool).
inline core::StageDataset LabelPool(const StagePool& pool,
                                    const parallel::IntraOpCompiler& compiler,
                                    parallel::ParallelConfig config, sim::Profiler& profiler) {
  core::StageDataset dataset;
  for (std::size_t i = 0; i < pool.slices.size(); ++i) {
    const parallel::StagePlan plan = compiler.Compile(pool.programs[i], config);
    if (!plan.Valid()) continue;
    core::StageSample sample;
    sample.slice = pool.slices[i];
    sample.name = pool.programs[i].name;
    sample.num_equations = pool.programs[i].NumEquations();
    sample.true_latency_s = plan.latency_s;
    sample.measured_latency_s = static_cast<float>(
        profiler.ProfileStage(plan.latency_s, pool.programs[i].NumEquations()));
    sample.encoded = pool.encoded[i];
    dataset.labels.push_back(sample.measured_latency_s);
    dataset.samples.push_back(std::move(sample));
  }
  return dataset;
}

/// Train + evaluate one predictor on one labeled scenario at one training
/// fraction (paper protocol: `fraction` train, 10% validation, rest test).
inline double CellMre(const core::StageDataset& dataset, core::PredictorKind kind,
                      const GridConfig& grid, double fraction, std::uint64_t split_seed) {
  util::Rng rng(split_seed);
  const nn::DataSplit split = nn::SplitDataset(dataset.Size(), fraction, 0.10, rng);
  if (split.train.empty() || split.test.empty()) return 0.0;
  core::LatencyRegressor regressor(kind, grid.predictor);
  regressor.Fit(dataset, split.train, split.validation, grid.train);
  return regressor.MrePercent(dataset, split.test);
}

// ---- grid computation with CSV cache ----

inline std::string GridCsvPath(const GridConfig& grid, const std::string& platform_id,
                               const std::string& benchmark_id) {
  return grid.results_dir + "/mre_" + platform_id + "_" + benchmark_id +
         (grid.full ? "_full" : "") + ".csv";
}

inline void SaveGrid(const MreGrid& grid_data, const std::string& path) {
  std::filesystem::create_directories(std::filesystem::path(path).parent_path());
  std::ofstream out(path);
  out << "scenario,fraction_pct,gcn,gat,tran\n";
  for (std::size_t s = 0; s < grid_data.scenario_names.size(); ++s) {
    for (std::size_t f = 0; f < grid_data.fraction_pcts.size(); ++f) {
      const CellResult& cell = grid_data.cells[s][f];
      out << grid_data.scenario_names[s] << ',' << grid_data.fraction_pcts[f] << ','
          << cell.mre_gcn << ',' << cell.mre_gat << ',' << cell.mre_tran << '\n';
    }
  }
}

inline std::optional<MreGrid> LoadGrid(const std::string& path,
                                       const std::vector<int>& expected_fractions) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string line;
  std::getline(in, line);  // header
  std::map<std::string, std::map<int, CellResult>> by_scenario;
  std::vector<std::string> scenario_order;
  while (std::getline(in, line)) {
    std::stringstream ss(line);
    std::string scenario, field;
    std::getline(ss, scenario, ',');
    CellResult cell;
    int pct = 0;
    std::getline(ss, field, ',');
    pct = std::stoi(field);
    std::getline(ss, field, ',');
    cell.mre_gcn = std::stod(field);
    std::getline(ss, field, ',');
    cell.mre_gat = std::stod(field);
    std::getline(ss, field, ',');
    cell.mre_tran = std::stod(field);
    if (by_scenario.find(scenario) == by_scenario.end()) scenario_order.push_back(scenario);
    by_scenario[scenario][pct] = cell;
  }
  MreGrid grid_data;
  grid_data.fraction_pcts = expected_fractions;
  for (const std::string& name : scenario_order) {
    std::vector<CellResult> row;
    for (const int pct : expected_fractions) {
      const auto it = by_scenario[name].find(pct);
      if (it == by_scenario[name].end()) return std::nullopt;  // stale cache
      row.push_back(it->second);
    }
    grid_data.scenario_names.push_back(name);
    grid_data.cells.push_back(std::move(row));
  }
  return grid_data.scenario_names.empty() ? std::nullopt : std::make_optional(grid_data);
}

/// Load the (platform, benchmark) MRE grid from the results cache, or
/// compute it (profiling + training the three predictors for every cell)
/// and save it.
inline MreGrid EnsureMreGrid(const GridConfig& grid, const sim::ClusterSpec& cluster,
                             const std::string& platform_id,
                             const core::BenchmarkModel& benchmark,
                             const std::string& benchmark_id, std::size_t num_samples,
                             std::int32_t max_span) {
  const std::string path = GridCsvPath(grid, platform_id, benchmark_id);
  if (const auto cached = LoadGrid(path, grid.fraction_pcts)) {
    std::cerr << "[bench] using cached grid " << path << "\n";
    return *cached;
  }
  util::Stopwatch total;
  const StagePool pool = BuildStagePool(benchmark, num_samples, max_span, grid.seed);
  const auto scenarios = PlatformScenarios(cluster);
  MreGrid grid_data;
  grid_data.fraction_pcts = grid.fraction_pcts;
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    const Scenario& scenario = scenarios[s];
    const parallel::IntraOpCompiler compiler(cluster, scenario.mesh);
    sim::Profiler profiler({}, grid.seed ^ (0x51ULL * (s + 1)));
    const core::StageDataset dataset = LabelPool(pool, compiler, scenario.config, profiler);
    std::vector<CellResult> row;
    for (std::size_t f = 0; f < grid.fraction_pcts.size(); ++f) {
      const double fraction = grid.fraction_pcts[f] / 100.0;
      const std::uint64_t split_seed = grid.seed + 1013ULL * s + 7ULL * f;
      CellResult cell;
      cell.mre_gcn = CellMre(dataset, core::PredictorKind::kGcn, grid, fraction, split_seed);
      cell.mre_gat = CellMre(dataset, core::PredictorKind::kGat, grid, fraction, split_seed);
      cell.mre_tran =
          CellMre(dataset, core::PredictorKind::kDagTransformer, grid, fraction, split_seed);
      std::cerr << "[bench] " << benchmark_id << " " << platform_id << " " << scenario.name
                << " " << grid.fraction_pcts[f] << "%: GCN=" << util::FormatF(cell.mre_gcn, 2)
                << " GAT=" << util::FormatF(cell.mre_gat, 2)
                << " Tran=" << util::FormatF(cell.mre_tran, 2) << "\n";
      row.push_back(cell);
    }
    grid_data.scenario_names.push_back(scenario.name);
    grid_data.cells.push_back(std::move(row));
  }
  SaveGrid(grid_data, path);
  std::cerr << "[bench] grid " << path << " computed in "
            << util::FormatSeconds(total.ElapsedSeconds()) << "\n";
  return grid_data;
}

/// Print an MRE grid in the layout of paper Tbls. V/VI: one row per training
/// fraction (descending), scenario-major columns of GCN | GAT | Tran.
inline void PrintMreTable(const MreGrid& grid_data, const std::string& title,
                          std::ostream& os) {
  std::vector<std::string> header{"# of Samples"};
  for (const std::string& name : grid_data.scenario_names) {
    header.push_back(name + " GCN");
    header.push_back(name + " GAT");
    header.push_back(name + " Tran");
  }
  util::TablePrinter table(header);
  table.SetTitle(title);
  // Paper rows run 80% down to 10%.
  for (std::size_t f = grid_data.fraction_pcts.size(); f-- > 0;) {
    std::vector<std::string> row{std::to_string(grid_data.fraction_pcts[f]) + "%"};
    for (std::size_t s = 0; s < grid_data.scenario_names.size(); ++s) {
      const CellResult& cell = grid_data.cells[s][f];
      row.push_back(util::FormatF(cell.mre_gcn, 2));
      row.push_back(util::FormatF(cell.mre_gat, 2));
      row.push_back(util::FormatF(cell.mre_tran, 2));
    }
    table.AddRow(std::move(row));
  }
  table.Print(os);
}

}  // namespace predtop::bench

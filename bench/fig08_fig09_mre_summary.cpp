// Paper Figs. 8 and 9: for each (platform, benchmark), the MRE of every
// prediction model averaged over all (mesh, configuration) scenarios per
// training fraction (Fig. 8), and the standard deviation of those MREs over
// scenarios (Fig. 9 — the stability claim). Consumes the full MRE grids,
// computing and caching any that the table binaries have not produced yet.

#include <iostream>

#include "bench_common.h"

using namespace predtop;
using bench::GridConfig;

namespace {

void Summarize(const bench::MreGrid& grid_data, const std::string& label, std::ostream& os) {
  util::TablePrinter avg_table(
      {"# of Samples", "GCN avg", "GAT avg", "Tran avg", "GCN std", "GAT std", "Tran std"});
  avg_table.SetTitle("Figs. 8/9 — " + label +
                     ": MRE (%) mean / std-dev over scenarios per training fraction");
  for (std::size_t f = grid_data.fraction_pcts.size(); f-- > 0;) {
    std::vector<double> gcn, gat, tran;
    for (std::size_t s = 0; s < grid_data.scenario_names.size(); ++s) {
      gcn.push_back(grid_data.cells[s][f].mre_gcn);
      gat.push_back(grid_data.cells[s][f].mre_gat);
      tran.push_back(grid_data.cells[s][f].mre_tran);
    }
    avg_table.AddRow({std::to_string(grid_data.fraction_pcts[f]) + "%",
                      util::FormatF(util::Mean(gcn), 2), util::FormatF(util::Mean(gat), 2),
                      util::FormatF(util::Mean(tran), 2), util::FormatF(util::StdDev(gcn), 2),
                      util::FormatF(util::StdDev(gat), 2),
                      util::FormatF(util::StdDev(tran), 2)});
  }
  avg_table.Print(os);
  os << '\n';
}

}  // namespace

int main() {
  const GridConfig grid = bench::LoadGridConfig();
  struct Job {
    sim::ClusterSpec cluster;
    std::string platform_id;
    core::BenchmarkModel benchmark;
    std::string benchmark_id;
    std::size_t samples;
    std::int32_t max_span;
  };
  const std::vector<Job> jobs{
      {sim::Platform1(), "platform1", bench::PaperGpt3(), "gpt3", grid.gpt_samples,
       grid.gpt_max_span},
      {sim::Platform1(), "platform1", bench::PaperMoe(), "moe", grid.moe_samples,
       grid.moe_max_span},
      {sim::Platform2(), "platform2", bench::PaperGpt3(), "gpt3", grid.gpt_samples,
       grid.gpt_max_span},
      {sim::Platform2(), "platform2", bench::PaperMoe(), "moe", grid.moe_samples,
       grid.moe_max_span},
  };
  // Aggregate over everything for the overall Fig. 8/9 view per model.
  std::vector<double> all_gcn, all_gat, all_tran;
  for (const Job& job : jobs) {
    const auto grid_data = bench::EnsureMreGrid(grid, job.cluster, job.platform_id,
                                                job.benchmark, job.benchmark_id, job.samples,
                                                job.max_span);
    Summarize(grid_data, job.benchmark.name + " / " + job.cluster.name, std::cout);
    for (const auto& row : grid_data.cells) {
      for (const auto& cell : row) {
        all_gcn.push_back(cell.mre_gcn);
        all_gat.push_back(cell.mre_gat);
        all_tran.push_back(cell.mre_tran);
      }
    }
  }
  util::TablePrinter overall({"model", "mean MRE (%)", "std-dev (%)", "max (%)"});
  overall.SetTitle("Overall across platforms, benchmarks, scenarios and fractions");
  overall.AddRow({"GCN", util::FormatF(util::Mean(all_gcn), 2),
                  util::FormatF(util::StdDev(all_gcn), 2), util::FormatF(util::Max(all_gcn), 2)});
  overall.AddRow({"GAT", util::FormatF(util::Mean(all_gat), 2),
                  util::FormatF(util::StdDev(all_gat), 2), util::FormatF(util::Max(all_gat), 2)});
  overall.AddRow({"Tran", util::FormatF(util::Mean(all_tran), 2),
                  util::FormatF(util::StdDev(all_tran), 2),
                  util::FormatF(util::Max(all_tran), 2)});
  overall.Print(std::cout);
  std::cout << "Shape check vs paper Figs. 8/9: expect the DAG Transformer's MRE to\n"
               "decline monotonically with training data and reach the paper's 2-4%\n"
               "band at the largest fraction, with no catastrophic cells. NOTE: on this\n"
               "simulated substrate the additive GCN/GAT baselines are stronger than on\n"
               "the paper's real GPUs — see EXPERIMENTS.md for the analysis of this\n"
               "deviation.\n";
  return 0;
}

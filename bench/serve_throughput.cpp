// Throughput of the predtop::serve PredictionService: queries/sec for a
// stream of stage-latency queries against a DAG-Transformer model, cold
// (every query pays a model forward) vs warm (the fingerprint cache absorbs
// repeats), at 1/2/4 service threads. The warm path is the regime a plan
// search exercises — the inter-op DP asks for the same (stage, mesh) latency
// from many enumeration branches.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/dataset.h"
#include "ir/stages.h"
#include "serve/service.h"

using namespace predtop;

namespace {

constexpr std::int32_t kLayers = 8;
constexpr std::int32_t kMaxSpan = 4;

struct ServeFixture {
  std::vector<graph::EncodedGraph> graphs;
  std::vector<const graph::EncodedGraph*> batch;
  std::shared_ptr<serve::ModelRegistry> registry;
  serve::ModelKey key;

  ServeFixture() {
    const core::BenchmarkModel benchmark = core::Gpt3Benchmark([] {
      ir::Gpt3Config config;
      config.seq_len = 64;
      config.hidden = 64;
      config.num_layers = kLayers;
      config.num_heads = 4;
      config.vocab = 512;
      config.microbatch = 2;
      return config;
    }());
    for (const ir::StageSlice slice : ir::EnumerateStageSlices(kLayers, kMaxSpan)) {
      graphs.push_back(core::EncodeStage(benchmark.build_stage(slice)));
    }
    for (const auto& g : graphs) batch.push_back(&g);

    // Serving throughput does not depend on trained weights; a freshly
    // initialized predictor exercises the same forward path.
    core::PredictorOptions options;
    options.feature_dim = core::StageFeatureDim();
    options.dagt_dim = 32;
    options.dagt_layers = 2;
    options.dagt_heads = 2;
    registry = std::make_shared<serve::ModelRegistry>();
    key = serve::ModelKey{"gpt3", "platform2", sim::Mesh{1, 2}, {}};
    registry->Register(key, std::make_shared<core::LatencyRegressor>(
                                core::PredictorKind::kDagTransformer, options));
  }
};

ServeFixture& Fixture() {
  static ServeFixture fixture;
  return fixture;
}

void BM_ServeCold(benchmark::State& state) {
  ServeFixture& f = Fixture();
  serve::ServiceOptions options;
  options.threads = static_cast<std::size_t>(state.range(0));
  serve::PredictionService service(f.registry, options);
  for (auto _ : state) {
    state.PauseTiming();
    service.ClearCache();
    state.ResumeTiming();
    benchmark::DoNotOptimize(service.PredictMany(f.key, f.batch));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(f.batch.size()));
  const serve::ServiceStats stats = service.Stats();
  state.SetLabel("hit rate " + std::to_string(100.0 * stats.cache.HitRate()) + " %");
}
BENCHMARK(BM_ServeCold)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_ServeWarm(benchmark::State& state) {
  ServeFixture& f = Fixture();
  serve::ServiceOptions options;
  options.threads = static_cast<std::size_t>(state.range(0));
  serve::PredictionService service(f.registry, options);
  benchmark::DoNotOptimize(service.PredictMany(f.key, f.batch));  // prewarm
  service.ResetStats();
  for (auto _ : state) {
    benchmark::DoNotOptimize(service.PredictMany(f.key, f.batch));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(f.batch.size()));
  const serve::ServiceStats stats = service.Stats();
  state.SetLabel("hit rate " + std::to_string(100.0 * stats.cache.HitRate()) + " %");
}
BENCHMARK(BM_ServeWarm)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

// Paper Fig. 10: the plan-search use case. For GPT-3 and MoE on Platform 2,
// generate a parallelization plan with (a) vanilla Alpa full profiling,
// (b) vanilla Alpa partial profiling, and (c-e) PredTOP with the GCN / GAT /
// DAG Transformer predictors; report the optimization cost (Fig. 10a) and
// the ground-truth iteration latency of each plan (Fig. 10b).

// PREDTOP_SERVE_MODE=1 additionally runs the plan search through the
// predtop::serve PredictionService on both paper platforms, comparing the
// serial per-cell query path against the batched PredictMany path (cold
// cache), plus a warm repeat search — the speedups batching and the
// fingerprint cache buy.
//
// PREDTOP_CLUSTER_MODE=1 runs the plan search end-to-end against a real
// prediction cluster: the trained predictors served by shard workers behind
// the predtop::cluster Router (consistent-hash sharding + replication), via
// ClusterOracle — then kills one replica and searches again. Passes when
// the cluster-served plan equals the in-process ServingOracle plan and the
// post-kill search still completes. PREDTOP_CLUSTER_SHARDS sets the worker
// count (default 2).
//
// PREDTOP_FAULT_DRILL=1 runs the fault drill instead of the approach grid:
// train the DAG Transformer predictors, checkpoint them, corrupt one
// checkpoint on disk, reload under fault injection (bounded retries +
// quarantine), then run the plan search through the hardened ServingOracle
// with the analytical FallbackOracle as the bottom rung. The drill passes
// when both platforms produce a finite, valid plan and it reports the
// degraded-query fraction. PREDTOP_FAULT overrides the injected spec;
// PREDTOP_FAULT_SEED replays a specific decision sequence.
//
// PREDTOP_COMPILE_DRILL=1 runs the plan search with compiled inference
// programs disabled then enabled on both paper platforms and asserts the
// chosen plans are equal — the compiled path must change latency, never
// predictions (within the 1e-6 fp32 parity contract).
//
// PREDTOP_BATCH_DRILL=1 runs the plan search with the batch-compiled
// executors disabled (sequential compiled replay) then enabled on both paper
// platforms and asserts the chosen plans are BIT-equal — stacking and
// interleaving are exact transformations, so unlike the compile drill there
// is no tolerance: any divergence is a bug. Also asserts the batch executors
// actually engaged (their process-wide query counters moved).

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "cluster/local.h"
#include "compile/batch.h"
#include "compile/cache.h"
#include "cluster/oracle.h"
#include "cluster/router.h"
#include "core/plan_search.h"
#include "fault/injector.h"
#include "serve/fallback.h"
#include "serve/oracle.h"
#include "serve/service.h"

using namespace predtop;
using core::PlanApproach;

namespace {

core::PlanSearchConfig MakePlanConfig(const core::BenchmarkModel& benchmark,
                                      const sim::ClusterSpec& cluster, std::int32_t max_span,
                                      const bench::GridConfig& grid) {
  // The span cap must leave a real plan space: covering all layers with at
  // most one stage per device requires spans of at least
  // ceil(layers / devices), and meaningful search needs headroom above that.
  const std::int32_t devices = cluster.TotalDevices();
  const std::int32_t min_span = (benchmark.num_layers + devices - 1) / devices;
  max_span = std::max(max_span, std::min(benchmark.num_layers, min_span + 3));

  core::PlanSearchConfig config;
  config.num_microbatches = 8;
  config.sample_fraction = 0.12;
  config.max_span = max_span;
  config.train = grid.train;
  config.train.max_epochs = std::min<std::int64_t>(config.train.max_epochs, 150);
  config.train.patience = config.train.max_epochs;
  config.predictor = grid.predictor;
  config.seed = grid.seed;
  return config;
}

// Serving mode: the same trained predictors, but every stage-latency query
// goes through the PredictionService. Three passes per platform:
//   serial cold    — one Predict() per DP table cell, cold cache (the seed
//                    repo's only path);
//   batched cold   — the whole table through ServingOracle::AsBatchOracle /
//                    PredictMany, cold cache (dedupes + fans the distinct
//                    forwards out across the service pool);
//   batched warm   — repeat search against the warm fingerprint cache, the
//                    regime of repeated what-if plan searches.
void RunServingMode(const core::BenchmarkModel& benchmark, const sim::ClusterSpec& cluster,
                    const std::string& platform_label, std::int32_t max_span,
                    const bench::GridConfig& grid) {
  core::PlanSearch search(benchmark, cluster,
                          MakePlanConfig(benchmark, cluster, max_span, grid));
  std::cerr << "[bench] fig10 " << benchmark.name << ": serving mode (train, "
            << platform_label << ")\n";
  const core::TrainedMeshPredictors trained =
      search.TrainPredictors(core::PredictorKind::kDagTransformer);

  auto registry = std::make_shared<serve::ModelRegistry>();
  const std::vector<serve::ModelKey> keys = serve::RegisterMeshPredictors(
      *registry, benchmark.name, platform_label, search.Meshes(), trained);
  serve::ServiceOptions service_options;
  service_options.threads = 0;  // 0 = hardware_concurrency
  serve::PredictionService service(registry, service_options);
  const serve::ServingOracle oracle(
      service, search.Meshes(), keys,
      [&search](ir::StageSlice s) -> const graph::EncodedGraph& {
        return search.EncodedFor(s);
      },
      search.EffectiveMaxSpan());
  const parallel::InterOpOptimizer optimizer = search.MakeOptimizer();

  util::Stopwatch serial_watch;
  const parallel::PipelinePlan serial_plan = optimizer.Optimize(oracle.AsOracle());
  const double serial_s = serial_watch.ElapsedSeconds();

  service.ClearCache();
  service.ResetStats();
  util::Stopwatch batched_watch;
  const parallel::PipelinePlan batched_plan = optimizer.Optimize(oracle.AsBatchOracle());
  const double batched_s = batched_watch.ElapsedSeconds();

  service.ResetStats();
  util::Stopwatch warm_watch;
  const parallel::PipelinePlan warm_plan = optimizer.Optimize(oracle.AsBatchOracle());
  const double warm_s = warm_watch.ElapsedSeconds();
  const serve::ServiceStats warm_stats = service.Stats();

  util::TablePrinter table({"pass", "optimize wall", "cache hit rate", "plan latency"});
  table.SetTitle("Fig. 10 serving mode — " + benchmark.name + " on " + platform_label +
                 " (PredTOP DAG Transformer via PredictionService)");
  table.AddRow({"serial cold", util::FormatSeconds(serial_s), "0.0 %",
                util::FormatSeconds(serial_plan.iteration_latency_s)});
  table.AddRow({"batched cold", util::FormatSeconds(batched_s), "0.0 %",
                util::FormatSeconds(batched_plan.iteration_latency_s)});
  table.AddRow({"batched warm", util::FormatSeconds(warm_s),
                util::FormatF(100.0 * warm_stats.cache.HitRate(), 1) + " %",
                util::FormatSeconds(warm_plan.iteration_latency_s)});
  table.Print(std::cout);
  std::cout << "batched cold search: " << util::FormatF(serial_s / batched_s, 2)
            << "x vs serial cold (" << service.Pool().ThreadCount()
            << " service threads); warm repeat: " << util::FormatF(serial_s / warm_s, 1)
            << "x vs serial cold\n\n";
}

// Compile drill: the same plan search twice on one platform — compiled
// inference programs disabled, then enabled — asserting the two plans are
// equal (same stage slices and meshes, iteration latency within the
// documented 1e-6-per-forward parity contract) and that the compiled path
// actually engaged (programs were built into the global cache). Returns
// true when the plans agree.
bool RunCompileDrill(const core::BenchmarkModel& benchmark, const sim::ClusterSpec& cluster,
                     const std::string& platform_label, std::int32_t max_span,
                     const bench::GridConfig& grid) {
  core::PlanSearch search(benchmark, cluster,
                          MakePlanConfig(benchmark, cluster, max_span, grid));
  std::cerr << "[bench] fig10 " << benchmark.name << ": compile drill (train, "
            << platform_label << ")\n";
  const core::TrainedMeshPredictors trained =
      search.TrainPredictors(core::PredictorKind::kDagTransformer);

  auto registry = std::make_shared<serve::ModelRegistry>();
  const std::vector<serve::ModelKey> keys = serve::RegisterMeshPredictors(
      *registry, benchmark.name, platform_label, search.Meshes(), trained);
  serve::ServiceOptions service_options;
  service_options.threads = 0;
  serve::PredictionService service(registry, service_options);
  const serve::ServingOracle oracle(
      service, search.Meshes(), keys,
      [&search](ir::StageSlice s) -> const graph::EncodedGraph& {
        return search.EncodedFor(s);
      },
      search.EffectiveMaxSpan());
  const parallel::InterOpOptimizer optimizer = search.MakeOptimizer();

  compile::SetCompileEnabled(false);
  util::Stopwatch off_watch;
  const parallel::PipelinePlan plan_off = optimizer.Optimize(oracle.AsBatchOracle());
  const double off_s = off_watch.ElapsedSeconds();

  // Fresh caches so the compiled pass builds its programs and answers every
  // query through them rather than replaying fingerprint-cached results.
  service.ClearCache();
  compile::ProgramCache::Global().Clear();
  compile::SetCompileEnabled(true);
  util::Stopwatch on_watch;
  const parallel::PipelinePlan plan_on = optimizer.Optimize(oracle.AsBatchOracle());
  const double on_s = on_watch.ElapsedSeconds();
  const std::size_t programs = compile::ProgramCache::Global().Size();

  bool structural = plan_on.Valid() && plan_off.Valid() &&
                    plan_on.stages.size() == plan_off.stages.size();
  if (structural) {
    for (std::size_t i = 0; i < plan_on.stages.size(); ++i) {
      if (!(plan_on.stages[i].mesh == plan_off.stages[i].mesh) ||
          plan_on.stages[i].slice.first_layer != plan_off.stages[i].slice.first_layer ||
          plan_on.stages[i].slice.last_layer != plan_off.stages[i].slice.last_layer) {
        structural = false;
        break;
      }
    }
  }
  const double lat_gap =
      std::abs(plan_on.iteration_latency_s - plan_off.iteration_latency_s);
  const bool latency_ok =
      lat_gap <= 1e-4 * std::max(1.0, std::abs(plan_off.iteration_latency_s));
  const bool ok = structural && latency_ok && programs > 0;

  util::TablePrinter table({"pass", "optimize wall", "plan latency", "plan equal"});
  table.SetTitle("Fig. 10 compile drill — " + benchmark.name + " on " + platform_label +
                 " (PREDTOP_COMPILE off vs on)");
  table.AddRow({"compile off", util::FormatSeconds(off_s),
                util::FormatSeconds(plan_off.iteration_latency_s), "reference"});
  table.AddRow({"compile on", util::FormatSeconds(on_s),
                util::FormatSeconds(plan_on.iteration_latency_s),
                ok ? "yes" : "NO"});
  table.Print(std::cout);
  std::cout << "compiled programs built: " << programs
            << "; plan latency gap: " << lat_gap << " s\n\n";
  if (!ok) {
    std::cerr << "[bench] compile drill " << platform_label
              << ": structural=" << structural << " latency_ok=" << latency_ok
              << " programs=" << programs << "\n";
  }
  return ok;
}

// Batch drill: the same plan search twice on one platform — batch-compiled
// execution disabled (every query replays the sequential compiled program,
// the pre-batch path) then enabled (same-shape query groups run through the
// stacked/interleaved executors) — asserting the two plans are bit-equal:
// identical stage slices and meshes, and iteration latencies equal to the
// last bit. Returns true when they are and the batch executors engaged.
bool RunBatchDrill(const core::BenchmarkModel& benchmark, const sim::ClusterSpec& cluster,
                   const std::string& platform_label, std::int32_t max_span,
                   const bench::GridConfig& grid) {
  core::PlanSearch search(benchmark, cluster,
                          MakePlanConfig(benchmark, cluster, max_span, grid));
  std::cerr << "[bench] fig10 " << benchmark.name << ": batch drill (train, "
            << platform_label << ")\n";
  const core::TrainedMeshPredictors trained =
      search.TrainPredictors(core::PredictorKind::kDagTransformer);

  auto registry = std::make_shared<serve::ModelRegistry>();
  const std::vector<serve::ModelKey> keys = serve::RegisterMeshPredictors(
      *registry, benchmark.name, platform_label, search.Meshes(), trained);
  serve::ServiceOptions service_options;
  service_options.threads = 0;
  serve::PredictionService service(registry, service_options);
  const serve::ServingOracle oracle(
      service, search.Meshes(), keys,
      [&search](ir::StageSlice s) -> const graph::EncodedGraph& {
        return search.EncodedFor(s);
      },
      search.EffectiveMaxSpan());
  const parallel::InterOpOptimizer optimizer = search.MakeOptimizer();

  compile::SetCompileEnabled(true);
  compile::SetBatchCompileEnabled(false);
  util::Stopwatch off_watch;
  const parallel::PipelinePlan plan_off = optimizer.Optimize(oracle.AsBatchOracle());
  const double off_s = off_watch.ElapsedSeconds();

  // Fresh prediction cache so the batched pass answers every query through
  // the batch executors instead of replaying fingerprint-cached results (the
  // compiled programs themselves can and should be reused).
  service.ClearCache();
  compile::SetBatchCompileEnabled(true);
  const std::uint64_t batch_queries_before =
      compile::BatchedForwards() + compile::InterleavedForwards();
  util::Stopwatch on_watch;
  const parallel::PipelinePlan plan_on = optimizer.Optimize(oracle.AsBatchOracle());
  const double on_s = on_watch.ElapsedSeconds();
  const std::uint64_t batch_queries =
      compile::BatchedForwards() + compile::InterleavedForwards() - batch_queries_before;

  bool structural = plan_on.Valid() && plan_off.Valid() &&
                    plan_on.stages.size() == plan_off.stages.size();
  if (structural) {
    for (std::size_t i = 0; i < plan_on.stages.size(); ++i) {
      if (!(plan_on.stages[i].mesh == plan_off.stages[i].mesh) ||
          plan_on.stages[i].slice.first_layer != plan_off.stages[i].slice.first_layer ||
          plan_on.stages[i].slice.last_layer != plan_off.stages[i].slice.last_layer) {
        structural = false;
        break;
      }
    }
  }
  // Bit-equality, not a tolerance: the batch executors are exact.
  const bool latency_ok =
      plan_on.iteration_latency_s == plan_off.iteration_latency_s;
  const bool ok = structural && latency_ok && batch_queries > 0;

  util::TablePrinter table({"pass", "optimize wall", "plan latency", "plan bit-equal"});
  table.SetTitle("Fig. 10 batch drill — " + benchmark.name + " on " + platform_label +
                 " (PREDTOP_BATCH_COMPILE off vs on)");
  table.AddRow({"batch off", util::FormatSeconds(off_s),
                util::FormatSeconds(plan_off.iteration_latency_s), "reference"});
  table.AddRow({"batch on", util::FormatSeconds(on_s),
                util::FormatSeconds(plan_on.iteration_latency_s), ok ? "yes" : "NO"});
  table.Print(std::cout);
  std::cout << "queries through the batch executors: " << batch_queries << "\n\n";
  if (!ok) {
    std::cerr << "[bench] batch drill " << platform_label << ": structural=" << structural
              << " latency_bit_equal=" << latency_ok
              << " batch_queries=" << batch_queries << "\n";
  }
  return ok;
}

// Cluster mode: the same plan search, but every stage-latency query crosses
// the wire to a shard worker. Three searches per platform:
//   in-process     — ServingOracle over a local PredictionService (the
//                    reference the cluster must reproduce bit-identically);
//   cluster cold   — ClusterOracle -> Router -> N workers, cold caches;
//   cluster killed — one replica stopped, warm repeat (failover path).
// Returns true when the cluster-served plans equal the in-process plan.
bool RunClusterMode(const core::BenchmarkModel& benchmark, const sim::ClusterSpec& cluster,
                    const std::string& platform_label, std::int32_t max_span,
                    const bench::GridConfig& grid) {
  core::PlanSearch search(benchmark, cluster,
                          MakePlanConfig(benchmark, cluster, max_span, grid));
  std::cerr << "[bench] fig10 " << benchmark.name << ": cluster mode (train, "
            << platform_label << ")\n";
  const core::TrainedMeshPredictors trained =
      search.TrainPredictors(core::PredictorKind::kDagTransformer);
  auto registry = std::make_shared<serve::ModelRegistry>();
  const std::vector<serve::ModelKey> keys = serve::RegisterMeshPredictors(
      *registry, benchmark.name, platform_label, search.Meshes(), trained);
  const serve::StageEncoder encoder =
      [&search](ir::StageSlice s) -> const graph::EncodedGraph& {
    return search.EncodedFor(s);
  };
  const parallel::InterOpOptimizer optimizer = search.MakeOptimizer();

  // In-process reference.
  serve::ServiceOptions service_options;
  service_options.threads = 0;
  serve::PredictionService service(registry, service_options);
  const serve::ServingOracle in_process(service, search.Meshes(), keys, encoder,
                                        search.EffectiveMaxSpan());
  util::Stopwatch in_process_watch;
  const parallel::PipelinePlan reference = optimizer.Optimize(in_process.AsBatchOracle());
  const double in_process_s = in_process_watch.ElapsedSeconds();

  // Shard workers + router. The workers replicate the registry's models and
  // re-encode slices themselves; only compact queries cross the wire.
  const auto shards =
      static_cast<std::size_t>(std::max(2L, util::EnvInt("PREDTOP_CLUSTER_SHARDS", 2)));
  cluster::LocalClusterOptions worker_options;
  worker_options.num_workers = shards;
  worker_options.service.threads = 2;
  cluster::LocalCluster workers(search.Benchmark(), registry, worker_options);
  cluster::RouterOptions router_options;
  router_options.replicas = 2;
  router_options.connect_timeout_ms = 300.0;
  router_options.revive_after_ms = 60000.0;
  cluster::Router router(workers.Endpoints(), router_options);
  cluster::ClusterOracleOptions oracle_options;
  oracle_options.fallback = std::make_shared<serve::FallbackOracle>(
      cluster.device, [&search](ir::StageSlice s) -> const ir::StageProgram& {
        return search.ProgramFor(s);
      });
  const cluster::ClusterOracle oracle(router, search.Meshes(), keys, encoder,
                                      search.EffectiveMaxSpan(), oracle_options);

  util::Stopwatch cold_watch;
  const parallel::PipelinePlan cold_plan = optimizer.Optimize(oracle.AsBatchOracle());
  const double cold_s = cold_watch.ElapsedSeconds();

  workers.StopWorker(0);
  util::Stopwatch killed_watch;
  const parallel::PipelinePlan killed_plan = optimizer.Optimize(oracle.AsBatchOracle());
  const double killed_s = killed_watch.ElapsedSeconds();
  const cluster::RouterStats stats = router.Stats();
  const serve::OracleStats oracle_stats = oracle.Stats();

  const auto plans_equal = [&](const parallel::PipelinePlan& plan) {
    if (!plan.Valid() || plan.stages.size() != reference.stages.size()) return false;
    if (plan.iteration_latency_s != reference.iteration_latency_s) return false;
    for (std::size_t i = 0; i < plan.stages.size(); ++i) {
      if (!(plan.stages[i].mesh == reference.stages[i].mesh) ||
          plan.stages[i].slice.first_layer != reference.stages[i].slice.first_layer ||
          plan.stages[i].slice.last_layer != reference.stages[i].slice.last_layer) {
        return false;
      }
    }
    return true;
  };
  const bool cold_ok = plans_equal(cold_plan);
  // After the kill the surviving replicas still hold every model, so the
  // plan stays equal as long as replication covered the dead shard.
  const bool killed_ok = plans_equal(killed_plan) &&
                         std::isfinite(killed_plan.iteration_latency_s);

  util::TablePrinter table({"pass", "optimize wall", "plan latency", "plan == in-process"});
  table.SetTitle("Fig. 10 cluster mode — " + benchmark.name + " on " + platform_label +
                 " (" + std::to_string(shards) + " shard workers, R=2)");
  table.AddRow({"in-process", util::FormatSeconds(in_process_s),
                util::FormatSeconds(reference.iteration_latency_s), "--"});
  table.AddRow({"cluster cold", util::FormatSeconds(cold_s),
                util::FormatSeconds(cold_plan.iteration_latency_s),
                cold_ok ? "yes" : "NO"});
  table.AddRow({"cluster killed-replica", util::FormatSeconds(killed_s),
                util::FormatSeconds(killed_plan.iteration_latency_s),
                killed_ok ? "yes" : "NO"});
  table.Print(std::cout);
  std::cout << "router: " << stats.queries << " queries, " << stats.coalesced
            << " coalesced, " << stats.failovers << " failovers, " << stats.unanswered
            << " unanswered, " << oracle_stats.degraded << " degraded\n\n";
  return cold_ok && killed_ok;
}

// Fault drill: the degradation ladder end to end on one platform.
//   1. train + checkpoint one DAG Transformer predictor per mesh;
//   2. truncate the last mesh's checkpoint mid-frame (a torn write);
//   3. reload every checkpoint with TryRegisterFromFile under ckpt_read
//      injection — the torn file quarantines, transient faults retry;
//   4. search with predict_nan / predict_delay injection live, degrading to
//      the analytical FallbackOracle wherever the ladder bottoms out.
// Returns true when the plan is valid and finite despite all of the above.
bool RunFaultDrill(const core::BenchmarkModel& benchmark, const sim::ClusterSpec& cluster,
                   const std::string& platform_label, std::int32_t max_span,
                   const bench::GridConfig& grid) {
  namespace fs = std::filesystem;
  core::PlanSearch search(benchmark, cluster,
                          MakePlanConfig(benchmark, cluster, max_span, grid));
  std::cerr << "[bench] fig10 " << benchmark.name << ": fault drill (train, "
            << platform_label << ")\n";
  const core::TrainedMeshPredictors trained =
      search.TrainPredictors(core::PredictorKind::kDagTransformer);

  // Checkpoint every mesh predictor, then tear the last one mid-frame.
  const fs::path ckpt_dir = fs::temp_directory_path() / "predtop_fault_drill";
  fs::create_directories(ckpt_dir);
  serve::ModelRegistry trained_registry;
  const std::vector<serve::ModelKey> keys = serve::RegisterMeshPredictors(
      trained_registry, benchmark.name, platform_label, search.Meshes(), trained);
  std::vector<std::string> paths;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    paths.push_back(
        (ckpt_dir / (platform_label + "_mesh" + std::to_string(i) + ".ptck")).string());
    trained_registry.SaveToFile(keys[i], paths.back());
  }
  const auto torn_size = static_cast<std::uintmax_t>(fs::file_size(paths.back()) / 2);
  fs::resize_file(paths.back(), torn_size);

  // Everything below runs under injection: PREDTOP_FAULT's spec when set
  // (it configured the global injector at bootstrap), the drill's default
  // storm otherwise. Reconfiguring per platform restarts every site's
  // decision sequence from PREDTOP_FAULT_SEED, so each platform's drill is
  // independently replayable.
  auto& injector = fault::Injector::Global();
  const std::string spec =
      injector.Enabled() ? injector.SpecString()
                         : "ckpt_read:0.3;predict_nan:0.05;predict_delay_ms:2;"
                           "predict_delay_p:0.02";
  const auto seed = static_cast<std::uint64_t>(util::EnvInt(
      "PREDTOP_FAULT_SEED", static_cast<long>(fault::Injector::kDefaultSeed)));
  injector.Configure(spec, seed);

  // Reload from disk the way a serving process would: bounded retries,
  // quarantine on exhaustion, never an exception.
  auto registry = std::make_shared<serve::ModelRegistry>();
  serve::ModelRegistry::RetryPolicy retry;
  retry.max_attempts = 4;
  std::size_t reloaded = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const fault::Status status = registry->TryRegisterFromFile(keys[i], paths[i], retry);
    if (status.ok()) {
      ++reloaded;
    } else {
      std::cerr << "[bench] fault drill: " << paths[i] << " -> " << status.ToString()
                << "\n";
    }
  }
  const std::size_t quarantined = registry->Quarantined().size();

  serve::ServiceOptions service_options;
  service_options.threads = 0;
  serve::PredictionService service(registry, service_options);
  serve::ServingOracleOptions oracle_options;
  oracle_options.max_attempts = 3;
  oracle_options.deadline_ms = 250.0;
  oracle_options.fallback = std::make_shared<serve::FallbackOracle>(
      cluster.device, [&search](ir::StageSlice s) -> const ir::StageProgram& {
        return search.ProgramFor(s);
      });
  const serve::ServingOracle oracle(
      service, search.Meshes(), keys,
      [&search](ir::StageSlice s) -> const graph::EncodedGraph& {
        return search.EncodedFor(s);
      },
      search.EffectiveMaxSpan(), oracle_options);

  util::Stopwatch watch;
  const parallel::PipelinePlan plan =
      search.MakeOptimizer().Optimize(oracle.AsBatchOracle());
  const double search_s = watch.ElapsedSeconds();
  const serve::OracleStats stats = oracle.Stats();

  std::size_t degraded_stages = 0;
  for (const parallel::PipelineStageChoice& stage : plan.stages) {
    if (stage.degraded) ++degraded_stages;
  }
  const bool ok = plan.Valid() && std::isfinite(plan.iteration_latency_s);
  const double degraded_fraction =
      stats.queries > 0 ? static_cast<double>(stats.degraded) / stats.queries : 0.0;

  util::TablePrinter table({"metric", "value"});
  table.SetTitle("Fig. 10 fault drill — " + benchmark.name + " on " + platform_label +
                 " (PREDTOP_FAULT=\"" + injector.SpecString() + "\")");
  table.AddRow({"checkpoints reloaded",
                std::to_string(reloaded) + " / " + std::to_string(keys.size())});
  table.AddRow({"checkpoints quarantined", std::to_string(quarantined)});
  table.AddRow({"plan valid + finite", ok ? "yes" : "NO"});
  table.AddRow({"plan latency", util::FormatSeconds(plan.iteration_latency_s)});
  table.AddRow({"degraded stages", std::to_string(degraded_stages) + " / " +
                                       std::to_string(plan.stages.size())});
  table.AddRow({"degraded queries",
                std::to_string(stats.degraded) + " / " + std::to_string(stats.queries) +
                    " (" + util::FormatF(100.0 * degraded_fraction, 1) + " %)"});
  table.AddRow({"search wall", util::FormatSeconds(search_s)});
  table.Print(std::cout);
  std::cout << '\n';

  fs::remove_all(ckpt_dir);
  return ok;
}

void RunBenchmark(const core::BenchmarkModel& benchmark, std::int32_t max_span,
                  const bench::GridConfig& grid) {
  core::PlanSearch search(benchmark, sim::Platform2(),
                          MakePlanConfig(benchmark, sim::Platform2(), max_span, grid));

  util::TablePrinter table({"approach", "optimization cost", "vs full profiling cost",
                            "iteration latency", "latency vs baseline"});
  table.SetTitle("Fig. 10 — " + benchmark.name + " on Platform 2");
  double baseline_cost = 0.0;
  double baseline_latency = 0.0;
  for (const PlanApproach approach :
       {PlanApproach::kFullProfiling, PlanApproach::kPartialProfiling,
        PlanApproach::kPredTopGcn, PlanApproach::kPredTopGat,
        PlanApproach::kPredTopDagTransformer}) {
    std::cerr << "[bench] fig10 " << benchmark.name << ": "
              << core::PlanApproachName(approach) << "\n";
    const core::PlanSearchResult result = search.Run(approach);
    if (approach == PlanApproach::kFullProfiling) {
      baseline_cost = result.optimization_cost_s;
      baseline_latency = result.plan_true_latency_s;
    }
    const double cost_delta =
        100.0 * (result.optimization_cost_s - baseline_cost) / baseline_cost;
    const double lat_delta =
        100.0 * (result.plan_true_latency_s - baseline_latency) / baseline_latency;
    table.AddRow({core::PlanApproachName(approach),
                  util::FormatSeconds(result.optimization_cost_s),
                  (cost_delta >= 0 ? "+" : "") + util::FormatF(cost_delta, 1) + " %",
                  util::FormatSeconds(result.plan_true_latency_s),
                  (lat_delta >= 0 ? "+" : "") + util::FormatF(lat_delta, 1) + " %"});
  }
  table.Print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  const bench::GridConfig grid = bench::LoadGridConfig();
  // PREDTOP_FAULT_DRILL=1 runs only the fault drill (both platforms) and
  // exits non-zero if either platform fails to produce a valid finite plan.
  if (util::EnvBool("PREDTOP_FAULT_DRILL", false)) {
    bool ok = RunFaultDrill(bench::PaperGpt3(), sim::Platform1(), "platform1",
                            grid.gpt_max_span, grid);
    ok &= RunFaultDrill(bench::PaperGpt3(), sim::Platform2(), "platform2",
                        grid.gpt_max_span, grid);
    fault::Injector::Global().Disable();
    std::cout << (ok ? "fault drill PASSED: plan search completed with a valid finite "
                       "plan on both platforms under injection\n"
                     : "fault drill FAILED\n");
    return ok ? 0 : 1;
  }
  // PREDTOP_CLUSTER_MODE=1 runs only the cluster-serving comparison and
  // exits non-zero if a cluster-served plan diverges from the in-process
  // plan on either platform.
  if (util::EnvBool("PREDTOP_CLUSTER_MODE", false)) {
    bool ok = RunClusterMode(bench::PaperGpt3(), sim::Platform1(), "platform1",
                             grid.gpt_max_span, grid);
    ok &= RunClusterMode(bench::PaperGpt3(), sim::Platform2(), "platform2",
                         grid.gpt_max_span, grid);
    std::cout << (ok ? "cluster mode PASSED: cluster-served plans match the in-process "
                       "plans, including with a killed replica\n"
                     : "cluster mode FAILED\n");
    return ok ? 0 : 1;
  }
  // PREDTOP_COMPILE_DRILL=1 runs only the compiled-vs-uncompiled plan
  // comparison on both paper platforms and exits non-zero if the plans
  // diverge or the compiled path never engaged.
  if (util::EnvBool("PREDTOP_COMPILE_DRILL", false)) {
    bool ok = RunCompileDrill(bench::PaperGpt3(), sim::Platform1(), "platform1",
                              grid.gpt_max_span, grid);
    ok &= RunCompileDrill(bench::PaperGpt3(), sim::Platform2(), "platform2",
                          grid.gpt_max_span, grid);
    std::cout << (ok ? "compile drill PASSED: compiled and uncompiled searches chose "
                       "equal plans on both platforms\n"
                     : "compile drill FAILED\n");
    return ok ? 0 : 1;
  }
  // PREDTOP_BATCH_DRILL=1 runs only the batched-vs-sequential compiled plan
  // comparison on both paper platforms and exits non-zero if the plans are
  // not bit-equal or the batch executors never engaged.
  if (util::EnvBool("PREDTOP_BATCH_DRILL", false)) {
    bool ok = RunBatchDrill(bench::PaperGpt3(), sim::Platform1(), "platform1",
                            grid.gpt_max_span, grid);
    ok &= RunBatchDrill(bench::PaperGpt3(), sim::Platform2(), "platform2",
                        grid.gpt_max_span, grid);
    std::cout << (ok ? "batch drill PASSED: batched and sequential compiled searches "
                       "chose bit-equal plans on both platforms\n"
                     : "batch drill FAILED\n");
    return ok ? 0 : 1;
  }
  // PREDTOP_SERVE_ONLY=1 skips the (slow) approach grid and measures just
  // the serving-mode passes — implies PREDTOP_SERVE_MODE.
  const bool serve_only = util::EnvBool("PREDTOP_SERVE_ONLY", false);
  if (!serve_only) {
    RunBenchmark(bench::PaperGpt3(), grid.gpt_max_span, grid);
    RunBenchmark(bench::PaperMoe(), grid.moe_max_span, grid);
  }
  if (serve_only || util::EnvBool("PREDTOP_SERVE_MODE", false)) {
    RunServingMode(bench::PaperGpt3(), sim::Platform1(), "platform1", grid.gpt_max_span, grid);
    RunServingMode(bench::PaperGpt3(), sim::Platform2(), "platform2", grid.gpt_max_span, grid);
  }
  std::cout << "Shape check vs paper Fig. 10: PredTOP cuts the optimization cost well\n"
               "below profiling-based Alpa (paper: -46.6% GPT-3 / -41.6% MoE vs partial\n"
               "profiling) while the chosen plan's iteration latency stays within a few\n"
               "percent of the full-profiling baseline (paper: +2.1% worst case for the\n"
               "DAG Transformer variant).\n";
  return 0;
}

// google-benchmark microbenchmarks for the performance-critical components:
// the NN kernels behind predictor training, graph encoding, and the two
// optimizers. Guards against regressions in the pieces that dominate the
// experiment harnesses' wall time.

#include <benchmark/benchmark.h>

#include "core/dataset.h"
#include "core/predictors.h"
#include "graph/reachability.h"
#include "ir/to_dag.h"
#include "parallel/inter_op.h"
#include "parallel/intra_op.h"
#include "tensor/ops.h"
#include "util/rng.h"

using namespace predtop;

namespace {

void BM_MatMul(benchmark::State& state) {
  const auto m = state.range(0), k = state.range(1), n = state.range(2);
  util::Rng rng(1);
  const tensor::Tensor a = tensor::Tensor::Randn({m, k}, rng);
  const tensor::Tensor b = tensor::Tensor::Randn({k, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * m * k * n);
}
BENCHMARK(BM_MatMul)->Args({256, 8, 256})->Args({256, 256, 8})->Args({256, 64, 64});

void BM_MaskedSoftmax(benchmark::State& state) {
  const auto n = state.range(0);
  util::Rng rng(2);
  const tensor::Tensor logits = tensor::Tensor::Randn({n, n}, rng);
  tensor::Tensor mask({n, n});
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      if ((i + j) % 3 == 0) mask.at(i, j) = -std::numeric_limits<float>::infinity();
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::RowSoftmax(logits, &mask));
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_MaskedSoftmax)->Arg(128)->Arg(256)->Arg(512);

const ir::StageProgram& SampleStage() {
  static const ir::StageProgram program = [] {
    ir::Gpt3Config config;
    return ir::BuildGpt3Stage(config, {0, 4});
  }();
  return program;
}

void BM_ReachabilityClosure(benchmark::State& state) {
  const graph::OpDag dag = ir::BuildPrunedOpDag(SampleStage());
  for (auto _ : state) {
    const graph::ReachabilityClosure closure(dag);
    benchmark::DoNotOptimize(closure.CountReachablePairs());
  }
  state.SetLabel(std::to_string(dag.NumNodes()) + " nodes");
}
BENCHMARK(BM_ReachabilityClosure);

void BM_EncodeStage(benchmark::State& state) {
  const ir::StageProgram& program = SampleStage();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::EncodeStage(program).num_nodes);
  }
}
BENCHMARK(BM_EncodeStage);

void BM_IntraOpCompile(benchmark::State& state) {
  const parallel::IntraOpCompiler compiler(sim::Platform2(), sim::Mesh{1, 2});
  const ir::StageProgram& program = SampleStage();
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiler.Compile(program, {1, 2, 1}).latency_s);
  }
  state.SetLabel(std::to_string(program.NumEquations()) + " equations");
}
BENCHMARK(BM_IntraOpCompile);

void BM_InterOpDp(benchmark::State& state) {
  // Synthetic oracle isolates the DP itself from stage compilation.
  const parallel::StageLatencyOracle oracle = [](ir::StageSlice slice, sim::Mesh mesh) {
    const double d = mesh.NumDevices();
    return parallel::StageLatencyResult{slice.NumLayers() * (0.4 + 0.6 * d) / d, {}};
  };
  parallel::InterOpOptions options;
  options.num_layers = static_cast<std::int32_t>(state.range(0));
  options.num_microbatches = 8;
  const parallel::InterOpOptimizer optimizer(sim::Platform2(), options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimizer.Optimize(oracle).iteration_latency_s);
  }
}
BENCHMARK(BM_InterOpDp)->Arg(12)->Arg(24);

void BM_DagTransformerForward(benchmark::State& state) {
  const graph::EncodedGraph encoded = core::EncodeStage(SampleStage());
  core::PredictorOptions options;
  options.feature_dim = core::StageFeatureDim();
  options.dagt_dim = 32;
  options.dagt_layers = 2;
  options.dagt_heads = 2;
  auto model = core::MakePredictor(core::PredictorKind::kDagTransformer, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->Forward(encoded).value().data()[0]);
  }
  state.SetLabel(std::to_string(encoded.num_nodes) + " nodes");
}
BENCHMARK(BM_DagTransformerForward);

void BM_GcnForward(benchmark::State& state) {
  const graph::EncodedGraph encoded = core::EncodeStage(SampleStage());
  core::PredictorOptions options;
  options.feature_dim = core::StageFeatureDim();
  options.gcn_dim = 64;
  options.gcn_layers = 4;
  auto model = core::MakePredictor(core::PredictorKind::kGcn, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->Forward(encoded).value().data()[0]);
  }
}
BENCHMARK(BM_GcnForward);

}  // namespace

BENCHMARK_MAIN();

// Microbenchmarks for the performance-critical kernels. Two layers:
//
//  1. A headline comparison suite (runs first, always) that times the GEMM
//     tiers (naive i-k-j vs packed vs packed+threads), arena vs malloc
//     allocation, and warm tape vs tape-free PredictSeconds on a real GPT-3
//     stage graph, and writes the results to BENCH_kernels.json (path
//     overridable via PREDTOP_BENCH_JSON). PREDTOP_BENCH_SMOKE=1 shrinks
//     repetitions so CI can exercise the harness in seconds.
//  2. The google-benchmark registrations kept from the original harness
//     (softmax, encoding, compilation, DP, forwards), skipped in smoke mode.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "compile/batch.h"
#include "compile/cache.h"
#include "compile/tune.h"
#include "core/dataset.h"
#include "core/predictors.h"
#include "core/regressor.h"
#include "graph/reachability.h"
#include "ir/to_dag.h"
#include "nn/infer.h"
#include "parallel/inter_op.h"
#include "parallel/intra_op.h"
#include "tensor/arena.h"
#include "tensor/ops.h"
#include "tensor/quant.h"
#include "util/env.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace predtop;

namespace {

// ---- headline comparisons -> BENCH_kernels.json ----

/// Best-of-N wall time of `fn` (seconds); one warm-up call first.
template <typename Fn>
double BestOf(int reps, Fn&& fn) {
  fn();
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    util::Stopwatch timer;
    fn();
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

struct GemmRow {
  std::int64_t size = 0;  // m = k = n
  double naive_s = 0.0;
  double packed_s = 0.0;
  double threaded_s = 0.0;
};

std::vector<GemmRow> RunGemmSweep(bool smoke) {
  const std::vector<std::int64_t> sizes =
      smoke ? std::vector<std::int64_t>{64, 256} : std::vector<std::int64_t>{64, 128, 256, 512};
  const int reps = smoke ? 3 : 10;
  std::vector<GemmRow> rows;
  util::Rng rng(21);
  for (const std::int64_t s : sizes) {
    const tensor::Tensor a = tensor::Tensor::Randn({s, s}, rng);
    const tensor::Tensor b = tensor::Tensor::Randn({s, s}, rng);
    const tensor::PackedB packed = tensor::PackB(b);
    tensor::Tensor c({s, s});
    GemmRow row;
    row.size = s;
    row.naive_s = BestOf(reps, [&] { benchmark::DoNotOptimize(tensor::MatMulNaive(a, b)); });
    row.packed_s = BestOf(reps, [&] {
      tensor::MatMulPackedInto(a.data().data(), s, packed, c.data().data(),
                               /*allow_threads=*/false);
      benchmark::DoNotOptimize(c.data().data());
    });
    row.threaded_s = BestOf(reps, [&] {
      tensor::MatMulPackedInto(a.data().data(), s, packed, c.data().data(),
                               /*allow_threads=*/true);
      benchmark::DoNotOptimize(c.data().data());
    });
    const double gflop = 2.0 * static_cast<double>(s) * s * s * 1e-9;
    std::cerr << "[bench] gemm " << s << "^3: naive " << gflop / row.naive_s
              << " GFLOP/s, packed " << gflop / row.packed_s << " GFLOP/s ("
              << row.naive_s / row.packed_s << "x), +threads " << gflop / row.threaded_s
              << " GFLOP/s (" << row.naive_s / row.threaded_s << "x)\n";
    rows.push_back(row);
  }
  return rows;
}

struct ArenaResult {
  std::int64_t allocs_per_epoch = 0;
  std::int64_t floats_per_alloc = 0;
  double arena_s = 0.0;
  double malloc_s = 0.0;
};

ArenaResult RunArenaVsMalloc(bool smoke) {
  // Shape mimics one DAG Transformer forward: dozens of medium matrices whose
  // lifetimes end together.
  ArenaResult result;
  result.allocs_per_epoch = 64;
  result.floats_per_alloc = 200 * 32;
  const int reps = smoke ? 20 : 200;
  tensor::Arena arena;
  result.arena_s = BestOf(reps, [&] {
    arena.Reset();
    for (std::int64_t i = 0; i < result.allocs_per_epoch; ++i) {
      float* p = arena.AllocFloats(result.floats_per_alloc);
      p[0] = static_cast<float>(i);  // touch so the alloc is not elided
      benchmark::DoNotOptimize(p);
    }
  });
  result.malloc_s = BestOf(reps, [&] {
    std::vector<std::vector<float>> live;
    live.reserve(static_cast<std::size_t>(result.allocs_per_epoch));
    for (std::int64_t i = 0; i < result.allocs_per_epoch; ++i) {
      live.emplace_back(static_cast<std::size_t>(result.floats_per_alloc));
      live.back()[0] = static_cast<float>(i);
      benchmark::DoNotOptimize(live.back().data());
    }
  });
  std::cerr << "[bench] arena epoch " << result.arena_s * 1e6 << " us vs malloc "
            << result.malloc_s * 1e6 << " us (" << result.malloc_s / result.arena_s << "x)\n";
  return result;
}

const ir::StageProgram& SampleStage() {
  static const ir::StageProgram program = [] {
    ir::Gpt3Config config;
    return ir::BuildGpt3Stage(config, {0, 4});
  }();
  return program;
}

struct PredictResult {
  std::int64_t graph_nodes = 0;
  double tape_s = 0.0;      // autograd Forward, packed-GEMM dispatch (today's tape)
  double tape_ikj_s = 0.0;  // autograd Forward forced onto the i-k-j kernel (pre-PR path)
  double fast_s = 0.0;      // tape-free InferScalar, compilation disabled
  double fast_pr5_s = 0.0;  // fast path with the 6x16 GEMM tile (the PR 5 build)
  double compiled_s = 0.0;       // compiled InferProgram (fused + planned arena)
  double compiled_bf16_s = 0.0;  // compiled, bf16 weight tier
  double compiled_int8_s = 0.0;  // compiled, int8 weight tier
};

PredictResult RunPredictComparison(bool smoke) {
  // Paper-size DAG Transformer (4 x 64, 4 heads) on a real GPT-3 stage graph:
  // the shape the prediction service actually serves.
  const graph::EncodedGraph encoded = core::EncodeStage(SampleStage());
  core::PredictorOptions options;
  options.feature_dim = core::StageFeatureDim();
  core::LatencyRegressor regressor(core::PredictorKind::kDagTransformer, options);
  const int reps = smoke ? 3 : 20;
  PredictResult result;
  result.graph_nodes = encoded.num_nodes;
  result.tape_s = BestOf(reps, [&] {
    benchmark::DoNotOptimize(regressor.PredictSecondsTape(encoded));
  });
  // The autograd path as it stood before this optimization pass: same tape,
  // i-k-j GEMM kernel (the packed tier landed together with the fast path).
  tensor::SetPackedGemmEnabled(false);
  result.tape_ikj_s = BestOf(reps, [&] {
    benchmark::DoNotOptimize(regressor.PredictSecondsTape(encoded));
  });
  tensor::SetPackedGemmEnabled(true);
  compile::SetCompileEnabled(false);
  result.fast_s = BestOf(reps, [&] {
    benchmark::DoNotOptimize(regressor.PredictSeconds(encoded));
  });
  // The fast path exactly as PR 5 shipped it: no compiled programs AND the
  // historical 6x16 two-vector register tile (the wide 12x16 tile landed with
  // this PR). This is the baseline the compiled-speedup acceptance is against.
  const bool wide_before = tensor::GemmWideTiles();
  tensor::SetGemmWideTiles(false);
  result.fast_pr5_s = BestOf(reps, [&] {
    benchmark::DoNotOptimize(regressor.PredictSeconds(encoded));
  });
  tensor::SetGemmWideTiles(wide_before);
  compile::SetCompileEnabled(true);
  result.compiled_s = BestOf(reps, [&] {
    benchmark::DoNotOptimize(regressor.PredictSeconds(encoded));
  });
  tensor::SetWeightPrec(tensor::GemmPrec::kBf16);
  result.compiled_bf16_s = BestOf(reps, [&] {
    benchmark::DoNotOptimize(regressor.PredictSeconds(encoded));
  });
  tensor::SetWeightPrec(tensor::GemmPrec::kInt8);
  result.compiled_int8_s = BestOf(reps, [&] {
    benchmark::DoNotOptimize(regressor.PredictSeconds(encoded));
  });
  tensor::SetWeightPrec(tensor::GemmPrec::kFp32);
  std::cerr << "[bench] warm PredictSeconds (" << result.graph_nodes << " nodes): tape "
            << result.tape_s * 1e3 << " ms, tape(i-k-j) " << result.tape_ikj_s * 1e3
            << " ms, fast " << result.fast_s * 1e3 << " ms ("
            << result.tape_s / result.fast_s << "x vs tape), fast(PR5 tile) "
            << result.fast_pr5_s * 1e3 << " ms, compiled "
            << result.compiled_s * 1e3 << " ms ("
            << result.fast_s / result.compiled_s << "x vs fast, "
            << result.fast_pr5_s / result.compiled_s << "x vs PR5), bf16 "
            << result.compiled_bf16_s * 1e3 << " ms, int8 "
            << result.compiled_int8_s * 1e3 << " ms\n";
  return result;
}

struct BatchRow {
  std::int64_t batch = 0;
  double sequential_s = 0.0;   // B sequential compiled forwards (the PR 9 replay)
  double batched_s = 0.0;      // one stacked pass over the whole batch
  double interleaved_s = 0.0;  // independent forwards fanned across a pool
  double auto_s = 0.0;         // whatever ExecuteBatch's kAuto heuristic picks
};

std::vector<BatchRow> RunBatchSweep(bool smoke) {
  // Same-shape batches of the paper-size stage with per-query feature
  // perturbations (so the stacked path cannot cheat by deduplicating), run
  // through the compiled executor sequentially, stacked, and interleaved.
  const graph::EncodedGraph base = core::EncodeStage(SampleStage());
  core::PredictorOptions options;
  options.feature_dim = core::StageFeatureDim();
  auto model = core::MakePredictor(core::PredictorKind::kDagTransformer, options);
  const std::vector<std::int64_t> batches =
      smoke ? std::vector<std::int64_t>{4, 16} : std::vector<std::int64_t>{1, 4, 16, 64};
  const int reps = smoke ? 3 : 10;
  const std::int64_t max_batch = batches.back();

  std::vector<graph::EncodedGraph> graphs(static_cast<std::size_t>(max_batch), base);
  for (std::size_t q = 0; q < graphs.size(); ++q) {
    const float scale = 1.0f + 0.02f * static_cast<float>(q % 17);
    for (float& x : graphs[q].features.data()) x *= scale;
  }
  std::vector<const graph::EncodedGraph*> ptrs;
  for (const auto& g : graphs) ptrs.push_back(&g);

  util::ThreadPool pool(tensor::GemmThreads());
  nn::InferenceContext& ctx = nn::ThreadLocalInferenceContext();
  compile::SetCompileEnabled(true);
  std::vector<BatchRow> rows;
  for (const std::int64_t b : batches) {
    BatchRow row;
    row.batch = b;
    std::vector<float> out(static_cast<std::size_t>(b));
    row.sequential_s = BestOf(reps, [&] {
      for (std::int64_t q = 0; q < b; ++q) {
        benchmark::DoNotOptimize(model->InferScalar(graphs[static_cast<std::size_t>(q)], ctx));
      }
    });
    compile::BatchOptions stacked;
    stacked.mode = compile::BatchMode::kBatched;
    row.batched_s = BestOf(reps, [&] {
      (void)model->TryInferCompiledBatch(ptrs.data(), static_cast<std::size_t>(b),
                                         out.data(), stacked);
      benchmark::DoNotOptimize(out.data());
    });
    compile::BatchOptions interleaved;
    interleaved.mode = compile::BatchMode::kInterleaved;
    interleaved.pool = &pool;
    row.interleaved_s = BestOf(reps, [&] {
      (void)model->TryInferCompiledBatch(ptrs.data(), static_cast<std::size_t>(b),
                                         out.data(), interleaved);
      benchmark::DoNotOptimize(out.data());
    });
    row.auto_s = BestOf(reps, [&] {
      (void)model->TryInferCompiledBatch(ptrs.data(), static_cast<std::size_t>(b),
                                         out.data(), compile::BatchOptions{});
      benchmark::DoNotOptimize(out.data());
    });
    std::cerr << "[bench] batch " << b << ": sequential "
              << row.sequential_s / static_cast<double>(b) * 1e6 << " us/query, stacked "
              << row.batched_s / static_cast<double>(b) * 1e6 << " us/query ("
              << row.sequential_s / row.batched_s << "x), interleaved "
              << row.interleaved_s / static_cast<double>(b) * 1e6 << " us/query ("
              << row.sequential_s / row.interleaved_s << "x), auto "
              << row.auto_s / static_cast<double>(b) * 1e6 << " us/query\n";
    rows.push_back(row);
  }
  return rows;
}

void WriteJson(const std::string& path, const std::vector<GemmRow>& gemm,
               const ArenaResult& arena, const PredictResult& predict,
               const std::vector<BatchRow>& batch, bool smoke) {
  std::ofstream out(path);
  out << "{\n  \"smoke\": " << (smoke ? "true" : "false") << ",\n  \"gemm\": [\n";
  for (std::size_t i = 0; i < gemm.size(); ++i) {
    const GemmRow& row = gemm[i];
    out << "    {\"size\": " << row.size << ", \"naive_s\": " << row.naive_s
        << ", \"packed_s\": " << row.packed_s << ", \"packed_threads_s\": " << row.threaded_s
        << ", \"speedup_packed\": " << row.naive_s / row.packed_s
        << ", \"speedup_packed_threads\": " << row.naive_s / row.threaded_s << "}"
        << (i + 1 < gemm.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"arena\": {\"allocs_per_epoch\": " << arena.allocs_per_epoch
      << ", \"floats_per_alloc\": " << arena.floats_per_alloc
      << ", \"arena_s\": " << arena.arena_s << ", \"malloc_s\": " << arena.malloc_s
      << ", \"speedup\": " << arena.malloc_s / arena.arena_s << "},\n";
  out << "  \"predict_gpt3_stage\": {\"graph_nodes\": " << predict.graph_nodes
      << ", \"tape_s\": " << predict.tape_s << ", \"tape_ikj_s\": " << predict.tape_ikj_s
      << ", \"fast_s\": " << predict.fast_s
      << ", \"fast_pr5_s\": " << predict.fast_pr5_s
      << ", \"compiled_s\": " << predict.compiled_s
      << ", \"compiled_bf16_s\": " << predict.compiled_bf16_s
      << ", \"compiled_int8_s\": " << predict.compiled_int8_s
      << ", \"speedup_vs_tape\": " << predict.tape_s / predict.fast_s
      << ", \"speedup_vs_ikj_tape\": " << predict.tape_ikj_s / predict.fast_s
      << ", \"speedup_compiled_vs_fast\": " << predict.fast_s / predict.compiled_s
      << ", \"speedup_compiled_vs_fast_pr5\": " << predict.fast_pr5_s / predict.compiled_s
      << ", \"speedup_compiled_vs_tape\": " << predict.tape_s / predict.compiled_s << "},\n";
  out << "  \"batch_predict\": [\n";
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const BatchRow& row = batch[i];
    const double b = static_cast<double>(row.batch);
    out << "    {\"batch\": " << row.batch << ", \"sequential_s\": " << row.sequential_s
        << ", \"batched_s\": " << row.batched_s
        << ", \"interleaved_s\": " << row.interleaved_s << ", \"auto_s\": " << row.auto_s
        << ", \"sequential_per_query_us\": " << row.sequential_s / b * 1e6
        << ", \"batched_per_query_us\": " << row.batched_s / b * 1e6
        << ", \"interleaved_per_query_us\": " << row.interleaved_s / b * 1e6
        << ", \"speedup_batched\": " << row.sequential_s / row.batched_s
        << ", \"speedup_interleaved\": " << row.sequential_s / row.interleaved_s
        << ", \"speedup_auto\": " << row.sequential_s / row.auto_s << "}"
        << (i + 1 < batch.size() ? "," : "") << "\n";
  }
  const compile::TuneTable& tune = compile::ResolvedTuneTable();
  out << "  ],\n  \"tune\": {\"wide_tiles\": " << (tune.wide_tiles ? "true" : "false")
      << ", \"par_min_elems\": " << tune.par_min_elems
      << ", \"interleave_min_batch\": " << tune.interleave_min_batch
      << ", \"interleave_min_flops\": " << tune.interleave_min_flops
      << ", \"autotuned\": " << (tune.autotuned ? "true" : "false")
      << ", \"sweeps\": " << compile::AutotuneSweeps()
      << ", \"gemm_threads\": " << tensor::GemmThreads() << "}\n}\n";
  std::cerr << "[bench] wrote " << path << "\n";
}

// ---- google-benchmark registrations (full mode only) ----

void BM_MatMul(benchmark::State& state) {
  const auto m = state.range(0), k = state.range(1), n = state.range(2);
  util::Rng rng(1);
  const tensor::Tensor a = tensor::Tensor::Randn({m, k}, rng);
  const tensor::Tensor b = tensor::Tensor::Randn({k, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * m * k * n);
}
BENCHMARK(BM_MatMul)->Args({256, 8, 256})->Args({256, 256, 8})->Args({256, 64, 64});

void BM_MaskedSoftmax(benchmark::State& state) {
  const auto n = state.range(0);
  util::Rng rng(2);
  const tensor::Tensor logits = tensor::Tensor::Randn({n, n}, rng);
  tensor::Tensor mask({n, n});
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      if ((i + j) % 3 == 0) mask.at(i, j) = -std::numeric_limits<float>::infinity();
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::RowSoftmax(logits, &mask));
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_MaskedSoftmax)->Arg(128)->Arg(256)->Arg(512);

void BM_ReachabilityClosure(benchmark::State& state) {
  const graph::OpDag dag = ir::BuildPrunedOpDag(SampleStage());
  for (auto _ : state) {
    const graph::ReachabilityClosure closure(dag);
    benchmark::DoNotOptimize(closure.CountReachablePairs());
  }
  state.SetLabel(std::to_string(dag.NumNodes()) + " nodes");
}
BENCHMARK(BM_ReachabilityClosure);

void BM_EncodeStage(benchmark::State& state) {
  const ir::StageProgram& program = SampleStage();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::EncodeStage(program).num_nodes);
  }
}
BENCHMARK(BM_EncodeStage);

void BM_IntraOpCompile(benchmark::State& state) {
  const parallel::IntraOpCompiler compiler(sim::Platform2(), sim::Mesh{1, 2});
  const ir::StageProgram& program = SampleStage();
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiler.Compile(program, {1, 2, 1}).latency_s);
  }
  state.SetLabel(std::to_string(program.NumEquations()) + " equations");
}
BENCHMARK(BM_IntraOpCompile);

void BM_InterOpDp(benchmark::State& state) {
  // Synthetic oracle isolates the DP itself from stage compilation.
  const parallel::StageLatencyOracle oracle = [](ir::StageSlice slice, sim::Mesh mesh) {
    const double d = mesh.NumDevices();
    return parallel::StageLatencyResult{slice.NumLayers() * (0.4 + 0.6 * d) / d, {}};
  };
  parallel::InterOpOptions options;
  options.num_layers = static_cast<std::int32_t>(state.range(0));
  options.num_microbatches = 8;
  const parallel::InterOpOptimizer optimizer(sim::Platform2(), options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimizer.Optimize(oracle).iteration_latency_s);
  }
}
BENCHMARK(BM_InterOpDp)->Arg(12)->Arg(24);

void BM_DagTransformerForward(benchmark::State& state) {
  const graph::EncodedGraph encoded = core::EncodeStage(SampleStage());
  core::PredictorOptions options;
  options.feature_dim = core::StageFeatureDim();
  options.dagt_dim = 32;
  options.dagt_layers = 2;
  options.dagt_heads = 2;
  auto model = core::MakePredictor(core::PredictorKind::kDagTransformer, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->Forward(encoded).value().data()[0]);
  }
  state.SetLabel(std::to_string(encoded.num_nodes) + " nodes");
}
BENCHMARK(BM_DagTransformerForward);

void BM_DagTransformerInferForward(benchmark::State& state) {
  const graph::EncodedGraph encoded = core::EncodeStage(SampleStage());
  core::PredictorOptions options;
  options.feature_dim = core::StageFeatureDim();
  options.dagt_dim = 32;
  options.dagt_layers = 2;
  options.dagt_heads = 2;
  auto model = core::MakePredictor(core::PredictorKind::kDagTransformer, options);
  auto& ctx = nn::ThreadLocalInferenceContext();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->InferScalar(encoded, ctx));
  }
  state.SetLabel(std::to_string(encoded.num_nodes) + " nodes");
}
BENCHMARK(BM_DagTransformerInferForward);

void BM_GcnForward(benchmark::State& state) {
  const graph::EncodedGraph encoded = core::EncodeStage(SampleStage());
  core::PredictorOptions options;
  options.feature_dim = core::StageFeatureDim();
  options.gcn_dim = 64;
  options.gcn_layers = 4;
  auto model = core::MakePredictor(core::PredictorKind::kGcn, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->Forward(encoded).value().data()[0]);
  }
}
BENCHMARK(BM_GcnForward);

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = util::EnvInt("PREDTOP_BENCH_SMOKE", 0) != 0;
  const std::string json_path =
      util::EnvString("PREDTOP_BENCH_JSON").value_or("BENCH_kernels.json");
  const std::vector<GemmRow> gemm = RunGemmSweep(smoke);
  const ArenaResult arena = RunArenaVsMalloc(smoke);
  const PredictResult predict = RunPredictComparison(smoke);
  const std::vector<BatchRow> batch = RunBatchSweep(smoke);
  WriteJson(json_path, gemm, arena, predict, batch, smoke);
  if (smoke) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

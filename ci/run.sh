#!/usr/bin/env bash
# Tier-1 verification via the CMake presets (CMakePresets.json):
#   ci/run.sh            Release build + ctest
#   ci/run.sh sanitize   additional ASan/UBSan build + ctest (build-asan/)
#   ci/run.sh tsan       additional TSan build of the concurrency-sensitive
#                        suites (thread pool, prediction service, plan
#                        search) run directly — the full suite is too slow
#                        under TSan and the other suites are single-threaded
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset default >/dev/null
cmake --build --preset default -j "$(nproc)"
ctest --preset default -j "$(nproc)"

if [[ "${1:-}" == "sanitize" ]]; then
  cmake --preset asan >/dev/null
  cmake --build --preset asan -j "$(nproc)"
  ctest --preset asan -j "$(nproc)"
fi

if [[ "${1:-}" == "tsan" ]]; then
  cmake --preset tsan >/dev/null
  cmake --build --preset tsan -j "$(nproc)" --target util_test serve_test parallel_test
  export TSAN_OPTIONS="halt_on_error=1"
  ./build-tsan/tests/util_test
  ./build-tsan/tests/parallel_test
  ./build-tsan/tests/serve_test --gtest_filter='LruCache.*:Service.*:ServingOracle.PredictBatchMatchesScalarQueries:ThreadPool.*'
fi

#!/usr/bin/env bash
# Tier-1 verification via the CMake presets (CMakePresets.json):
#   ci/run.sh            Release build + ctest
#   ci/run.sh sanitize   additional ASan/UBSan build + ctest (build-asan/)
#   ci/run.sh tsan       additional TSan build of the concurrency-sensitive
#                        suites (thread pool, prediction service, plan
#                        search, parallel backward engine, data-parallel
#                        trainer, online refresh) run directly — the full
#                        suite is too slow under TSan and the other suites
#                        are single-threaded
#   ci/run.sh fault      additional ASan/UBSan build of the fault/serving/
#                        plan-search suites plus the fig10 fault drill
#                        (checkpoint corruption + quarantine + injected
#                        NaN/delay faults during a real plan search, which
#                        must still produce a valid finite plan)
#   ci/run.sh perf       additional -march=native build (build-native/), the
#                        fast-path parity + tensor suites under it, and a
#                        smoke micro_kernels run recording GEMM / arena /
#                        warm-predict speedups to build-native/BENCH_kernels.json
#   ci/run.sh train      training lane: the parallel-backward / trainer /
#                        online-refresh suites plus a smoke train_throughput
#                        run recording epoch time vs thread count (and
#                        speedup over the serial loop) to build/BENCH_train.json
#   ci/run.sh cluster    additional ASan/UBSan build of the cluster suite:
#                        wire-codec fuzz, router + shard workers over Unix
#                        sockets, fork/exec worker processes, and the SIGKILL
#                        mid-plan-search failover drill
#   ci/run.sh compile    compiled-inference lane: ASan/UBSan build of the
#                        compile suite (fp32 plan-vs-tape parity, planner
#                        properties, allocation-free warm forwards, bf16/int8
#                        tier parity + MRE neutrality, program-cache LRU and
#                        owner eviction) plus the fast-path parity suites,
#                        then the fig10 compile drill (plan search with
#                        PREDTOP_COMPILE off vs on on both paper platforms,
#                        asserting the chosen plans are equal)
#   ci/run.sh batch      batch-compiled-execution lane: ASan/UBSan build of
#                        the compile + serve suites (stacked/interleaved
#                        bit-parity across batch sizes and thread counts,
#                        mixed-shape grouping, batched warm-buffer reuse,
#                        tune-table resolution, PredictMany batch-vs-legacy
#                        parity), then the fig10 batch drill with
#                        PREDTOP_AUTOTUNE=1 (plan search with
#                        PREDTOP_BATCH_COMPILE off vs on on both paper
#                        platforms, asserting bit-equal plans)
#   ci/run.sh overload   overload-protection lane: the deadline / admission /
#                        router-timeout / reaping suites, the supervisor
#                        fork/exec suite (crash-loop quarantine, hung-worker
#                        SIGKILL, the kill+stop+overload plan-search drill),
#                        and a smoke overload_soak run recording the
#                        protected-vs-unprotected client sweep (admitted
#                        service p99 bound + zero post-deadline forwards) to
#                        build/BENCH_overload.json
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset default >/dev/null
cmake --build --preset default -j "$(nproc)"
ctest --preset default -j "$(nproc)"

if [[ "${1:-}" == "sanitize" ]]; then
  cmake --preset asan >/dev/null
  cmake --build --preset asan -j "$(nproc)"
  ctest --preset asan -j "$(nproc)"
fi

if [[ "${1:-}" == "fault" ]]; then
  cmake --preset asan >/dev/null
  cmake --build --preset asan -j "$(nproc)" \
    --target fault_test serve_test parallel_test fig10_optimization
  # The suites configure injection themselves (and must also pass clean).
  ./build-asan/tests/fault_test
  ./build-asan/tests/serve_test
  ./build-asan/tests/parallel_test
  # Full drill under ASan with an env-driven fault storm: torn checkpoint,
  # flaky reads, NaN forwards, delayed forwards, delayed pool dispatch.
  PREDTOP_FAULT="ckpt_read:0.3;predict_nan:0.1;predict_delay_ms:2;predict_delay_p:0.05;pool_delay_ms:1;pool_delay_p:0.02" \
    PREDTOP_FAULT_SEED=7 PREDTOP_FAULT_DRILL=1 PREDTOP_EPOCHS=40 \
    ./build-asan/bench/fig10_optimization
fi

if [[ "${1:-}" == "compile" ]]; then
  cmake --preset asan >/dev/null
  cmake --build --preset asan -j "$(nproc)" \
    --target compile_test infer_test fig10_optimization
  # Full compile suite under ASan/UBSan: fp32 parity for every predictor,
  # planner properties, the arena high-water-mark (allocation-free warm
  # forward) assertion, bf16/int8 parity + MRE bounds, cache LRU/eviction,
  # and concurrent compiled forwards. The parity filter re-drives every fast
  # kernel the compiled programs call into.
  ./build-asan/tests/compile_test
  ./build-asan/tests/infer_test --gtest_filter='InferParity.*:PackedGemm.*'
  # Plan search with compiled programs off then on, both paper platforms:
  # the plans must be equal and the compiled path must actually engage.
  PREDTOP_COMPILE_DRILL=1 PREDTOP_EPOCHS=40 ./build-asan/bench/fig10_optimization
fi

if [[ "${1:-}" == "batch" ]]; then
  cmake --preset asan >/dev/null
  cmake --build --preset asan -j "$(nproc)" \
    --target compile_test serve_test fig10_optimization
  # Batch executors under ASan/UBSan: stacked + interleaved bit-parity for
  # every predictor across batch sizes {1,2,7,64} and pool widths {1,2,8},
  # mixed-shape regressor grouping, the batched warm-buffer (zero-allocation)
  # pins, program-cache hit/miss counters, and tune-table resolution.
  ./build-asan/tests/compile_test \
    --gtest_filter='CompiledBatch*.*:TuneTableResolution.*:ProgramCache.*'
  # PredictMany's batch path vs the legacy fan-out path, plus the exported
  # compiled-path counters.
  ./build-asan/tests/serve_test --gtest_filter='Service.*'
  # Plan search with the batch executors off then on, both paper platforms,
  # with the runtime autotuner enabled for the drill: the chosen plans must
  # be BIT-equal (the executors are exact) and the batch path must engage.
  PREDTOP_AUTOTUNE=1 PREDTOP_BATCH_DRILL=1 PREDTOP_EPOCHS=40 \
    ./build-asan/bench/fig10_optimization
fi

if [[ "${1:-}" == "tsan" ]]; then
  cmake --preset tsan >/dev/null
  cmake --build --preset tsan -j "$(nproc)" \
    --target util_test serve_test parallel_test infer_test cluster_test \
    autograd_test nn_test online_test compile_test
  export TSAN_OPTIONS="halt_on_error=1"
  ./build-tsan/tests/util_test
  ./build-tsan/tests/parallel_test
  # Parallel backward engine (staged deterministic accumulation, concurrent
  # BackwardInto on shared parameters) and the data-parallel trainer.
  ./build-tsan/tests/autograd_test --gtest_filter='Engine.*'
  ./build-tsan/tests/nn_test --gtest_filter='ParallelTrainer.*'
  # Background fine-tune thread hot-swapping checkpoints under live serving.
  ./build-tsan/tests/online_test
  ./build-tsan/tests/serve_test --gtest_filter='LruCache.*:Service.*:ServingOracle.PredictBatchMatchesScalarQueries:ThreadPool.*'
  # Concurrent tape-free forwards on one shared model (arena-per-thread,
  # lazy packed-weight cache) plus the parity suites that drive every fast
  # kernel at least once under TSan.
  ./build-tsan/tests/infer_test --gtest_filter='InferConcurrency.*:InferParity.*'
  # Concurrent *compiled* forwards on one shared model: the program cache's
  # build-once-per-shape race, per-thread plan buffers, and the packed
  # weight tiers under simultaneous readers — sequential and batched (the
  # stacked executor's snapshot/cache/mask-run sharing across threads).
  ./build-tsan/tests/compile_test \
    --gtest_filter='CompiledConcurrency.*:CompiledBatchConcurrency.*:ProgramCache.*:CompiledParity.AllPredictorsMatchTapeAndFastPath'
  # Router concurrency: the cluster-wide coalescing map, per-worker
  # connection locking and failover counters under concurrent clients, plus
  # the overload-protection suites (deadline shedding, admission budgets,
  # per-attempt timeouts / breaker trips, connection-thread reaping).
  # ClusterProcess/SupervisorProcess are excluded — fork/exec and TSan do
  # not mix; the in-process LocalCluster drives identical code paths on
  # threads.
  ./build-tsan/tests/cluster_test \
    --gtest_filter='ClusterE2E.*:Ring.*:Deadline.*:Admission.*:RouterTimeout.*:WorkerReap.*'
fi

if [[ "${1:-}" == "perf" ]]; then
  cmake --preset native >/dev/null
  cmake --build --preset native -j "$(nproc)" \
    --target infer_test tensor_test nn_test micro_kernels
  ./build-native/tests/tensor_test
  ./build-native/tests/nn_test
  ./build-native/tests/infer_test
  PREDTOP_BENCH_SMOKE=1 PREDTOP_BENCH_JSON=build-native/BENCH_kernels.json \
    ./build-native/bench/micro_kernels
fi

if [[ "${1:-}" == "train" ]]; then
  cmake --build --preset default -j "$(nproc)" \
    --target autograd_test nn_test online_test train_throughput
  ./build/tests/autograd_test --gtest_filter='Engine.*'
  ./build/tests/nn_test --gtest_filter='ParallelTrainer.*:Adam.*:CosineDecay.*:SplitDataset.*'
  ./build/tests/online_test
  # Thread sweep over the data-parallel Fit path; the serial row is the
  # baseline, so the JSON records speedup directly.
  PREDTOP_BENCH_SMOKE=1 PREDTOP_BENCH_JSON=build/BENCH_train.json \
    ./build/bench/train_throughput
fi

if [[ "${1:-}" == "cluster" ]]; then
  cmake --preset asan >/dev/null
  cmake --build --preset asan -j "$(nproc)" --target cluster_test
  # The full cluster suite under ASan/UBSan: wire-codec round-trip + fuzz
  # rejection, router + 2 shard workers over Unix sockets (plan-search
  # parity with the in-process oracle), fork/exec worker processes with
  # typed startup failures, and the SIGKILL mid-PredictMany failover drill.
  ./build-asan/tests/cluster_test
fi

if [[ "${1:-}" == "overload" ]]; then
  cmake --build --preset default -j "$(nproc)" \
    --target cluster_test serve_test overload_soak
  # Deadline propagation + shedding, admission budgets (in-flight and
  # connection), per-attempt router timeouts / circuit breaker / retry
  # budget, and connection-thread reaping — all in-process.
  ./build/tests/cluster_test \
    --gtest_filter='Deadline.*:Admission.*:RouterTimeout.*:WorkerReap.*'
  ./build/tests/serve_test --gtest_filter='Service.*'
  # Supervisor over real fork/exec workers: crash-loop backoff + quarantine,
  # corrupt-checkpoint permanent failure, heartbeat-drop hung detection, and
  # the full drill (SIGKILL + SIGSTOP + injected overload during plan
  # search, which must still match the in-process plan exactly).
  ./build/tests/cluster_test --gtest_filter='SupervisorProcess.*'
  # Protected-vs-unprotected closed-loop client sweep against a live
  # cluster; asserts the two drill criteria (admitted service p99 within 2x
  # unloaded, zero post-deadline completions) and records the table.
  PREDTOP_BENCH_SMOKE=1 PREDTOP_BENCH_JSON=build/BENCH_overload.json \
    ./build/bench/overload_soak
fi

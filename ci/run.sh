#!/usr/bin/env bash
# Tier-1 verification via the CMake presets (CMakePresets.json):
#   ci/run.sh            Release build + ctest
#   ci/run.sh sanitize   additional ASan/UBSan build + ctest (build-asan/)
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset default >/dev/null
cmake --build --preset default -j "$(nproc)"
ctest --preset default -j "$(nproc)"

if [[ "${1:-}" == "sanitize" ]]; then
  cmake --preset asan >/dev/null
  cmake --build --preset asan -j "$(nproc)"
  ctest --preset asan -j "$(nproc)"
fi

// Tests for the predtop::fault subsystem and the degradation ladder it
// enables: deterministic injection, CRC32-hardened checkpoint frames (bit
// flips and truncation in every region), hostile length prefixes, registry
// quarantine with bounded retries, the ThreadPool dispatch hook, and the
// ServingOracle's graceful degradation to the analytical fallback.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <utility>

#include "core/dataset.h"
#include "core/regressor.h"
#include "fault/crc32.h"
#include "fault/injector.h"
#include "fault/status.h"
#include "nn/serialize.h"
#include "parallel/inter_op.h"
#include "serve/fallback.h"
#include "serve/oracle.h"
#include "serve/service.h"
#include "util/thread_pool.h"

namespace predtop {
namespace {

/// Every test that configures the global injector goes through this guard so
/// a failing assertion cannot leak injection into later tests.
struct InjectorGuard {
  InjectorGuard(const std::string& spec, std::uint64_t seed = fault::Injector::kDefaultSeed) {
    fault::Injector::Global().Configure(spec, seed);
    fault::Injector::Global().ResetCounters();
  }
  ~InjectorGuard() { fault::Injector::Global().Disable(); }
};

ir::Gpt3Config TinyGptConfig() {
  ir::Gpt3Config config;
  config.seq_len = 64;
  config.hidden = 64;
  config.num_layers = 4;
  config.num_heads = 4;
  config.vocab = 512;
  config.microbatch = 2;
  return config;
}

core::PredictorOptions TinyOptions() {
  core::PredictorOptions options;
  options.feature_dim = core::StageFeatureDim();
  options.dagt_dim = 16;
  options.dagt_layers = 1;
  options.dagt_heads = 2;
  options.gcn_dim = 16;
  options.gcn_layers = 2;
  options.gat_dim = 16;
  options.gat_layers = 2;
  return options;
}

/// Serialized tiny (untrained — initialization is deterministic) checkpoint.
std::string TinyCheckpointBytes(core::PredictorKind kind = core::PredictorKind::kGcn) {
  core::LatencyRegressor regressor(kind, TinyOptions());
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  regressor.Save(buffer);
  return buffer.str();
}

void ExpectLoadThrows(const std::string& bytes, const char* context) {
  std::stringstream in(bytes, std::ios::in | std::ios::binary);
  EXPECT_THROW((void)core::LatencyRegressor::Load(in), std::runtime_error) << context;
}

// ---- status / error types ----

TEST(Status, DefaultIsOkAndCodesName) {
  EXPECT_TRUE(fault::Status().ok());
  const fault::Status s(fault::StatusCode::kCorruption, "bad crc");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), fault::StatusCode::kCorruption);
  EXPECT_NE(s.ToString().find("bad crc"), std::string::npos);
  EXPECT_STREQ(fault::StatusCodeName(fault::StatusCode::kDeadlineExceeded),
               "DEADLINE_EXCEEDED");
}

TEST(Status, FromCurrentExceptionKeepsTypedCode) {
  const auto capture = [](auto&& thrower) {
    try {
      thrower();
    } catch (...) {
      return fault::StatusFromCurrentException();
    }
    return fault::Status::Ok();
  };
  EXPECT_EQ(capture([] { throw fault::CorruptionError("x"); }).code(),
            fault::StatusCode::kCorruption);
  EXPECT_EQ(capture([] { throw fault::IoError("x"); }).code(), fault::StatusCode::kIoError);
  EXPECT_EQ(capture([] { throw std::runtime_error("x"); }).code(),
            fault::StatusCode::kInternal);
}

// ---- crc32 ----

TEST(Crc32, MatchesKnownVectors) {
  // IEEE 802.3 reference value for the "check" string.
  EXPECT_EQ(fault::Crc32(std::string_view("123456789")), 0xCBF43926u);
  EXPECT_EQ(fault::Crc32(std::string_view("")), 0u);
  // Incremental == one-shot.
  const std::string_view s("the quick brown fox");
  const std::uint32_t partial = fault::Crc32(s.substr(0, 7));
  EXPECT_EQ(fault::Crc32(s.data() + 7, s.size() - 7, partial), fault::Crc32(s));
}

// ---- injector ----

TEST(Injector, SpecRoundTripAndValidation) {
  const InjectorGuard guard("ckpt_read:0.25;predict_delay_ms:50;predict_delay_p:0.5");
  auto& injector = fault::Injector::Global();
  EXPECT_TRUE(injector.Enabled());
  EXPECT_EQ(injector.SpecString(), "ckpt_read:0.25;predict_delay_ms:50;predict_delay_p:0.5");
  EXPECT_EQ(injector.Value(fault::sites::kPredictDelayMs), 50.0);
  EXPECT_EQ(injector.Value(fault::sites::kPoolDelayMs, -1.0), -1.0);  // absent

  EXPECT_THROW(injector.Configure("not_a_site:0.5"), std::invalid_argument);
  EXPECT_THROW(injector.Configure("ckpt_read"), std::invalid_argument);
  EXPECT_THROW(injector.Configure("ckpt_read:nope"), std::invalid_argument);
  EXPECT_THROW(injector.Configure("ckpt_read:-0.5"), std::invalid_argument);
  EXPECT_THROW(injector.Configure("ckpt_read:0.5;ckpt_read:0.7"), std::invalid_argument);

  injector.Disable();
  EXPECT_FALSE(injector.Enabled());
  EXPECT_EQ(injector.SpecString(), "");
  EXPECT_FALSE(injector.ShouldInject(fault::sites::kCkptRead));
}

TEST(Injector, DecisionsAreDeterministicPerSeed) {
  auto& injector = fault::Injector::Global();
  const auto roll = [&](std::uint64_t seed, int n) {
    const InjectorGuard guard("ckpt_read:0.5", seed);
    std::string fires;
    for (int i = 0; i < n; ++i) {
      fires.push_back(injector.ShouldInject(fault::sites::kCkptRead) ? '1' : '0');
    }
    return fires;
  };
  const std::string a = roll(7, 64);
  EXPECT_EQ(a, roll(7, 64));       // replayable from the seed
  EXPECT_NE(a, roll(8, 64));       // and seed-sensitive
  EXPECT_NE(a.find('1'), std::string::npos);  // p=0.5 over 64 rolls fires...
  EXPECT_NE(a.find('0'), std::string::npos);  // ...and also passes
}

TEST(Injector, CountsEvaluationsAndFires) {
  const InjectorGuard guard("ckpt_read:1.0;ckpt_write:0.0");
  auto& injector = fault::Injector::Global();
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(injector.ShouldInject(fault::sites::kCkptRead));
    EXPECT_FALSE(injector.ShouldInject(fault::sites::kCkptWrite));
  }
  EXPECT_EQ(injector.Stats(fault::sites::kCkptRead).evaluations, 10u);
  EXPECT_EQ(injector.Stats(fault::sites::kCkptRead).fires, 10u);
  EXPECT_EQ(injector.Stats(fault::sites::kCkptWrite).fires, 0u);
}

TEST(Injector, PoolDelayHookFiresOnDispatch) {
  const InjectorGuard guard("pool_delay_ms:0.01;pool_delay_p:1.0");
  std::atomic<int> count{0};
  {
    util::ThreadPool pool(2);
    pool.ParallelFor(16, [&](std::size_t) { count.fetch_add(1); });
    // Check stats after the pool drains: the hook runs when a *worker*
    // dequeues a task, and the caller may finish the loop body first.
  }
  EXPECT_EQ(count.load(), 16);
  EXPECT_GT(fault::Injector::Global().Stats(fault::sites::kPoolDelayMs).fires, 0u);
}

// ---- hardened checkpoint frames ----

TEST(CheckpointFuzz, AnySingleBitFlipIsDetected) {
  // Flip one bit in every frame region — magic, version, length prefix,
  // payload head (kind tag/options), payload middle (weights), payload tail,
  // and the CRC footer. Every flip must surface as a typed failure; none may
  // load "successfully" with silently wrong weights.
  const std::string bytes = TinyCheckpointBytes();
  ASSERT_GT(bytes.size(), 64u);
  const std::size_t offsets[] = {
      0, 2,                              // magic
      4, 7,                              // version
      8, 12, 15,                         // payload length prefix
      16, 20,                            // payload head: transform + stats
      16 + 36,                           // predictor kind tag / options
      bytes.size() / 2,                  // weights
      bytes.size() - 6,                  // payload tail
      bytes.size() - 4, bytes.size() - 1 // CRC footer
  };
  for (const std::size_t offset : offsets) {
    for (const int bit : {0, 6}) {
      std::string corrupt = bytes;
      corrupt[offset] = static_cast<char>(corrupt[offset] ^ (1 << bit));
      std::stringstream in(corrupt, std::ios::in | std::ios::binary);
      try {
        (void)core::LatencyRegressor::Load(in);
        FAIL() << "bit " << bit << " at offset " << offset << " loaded cleanly";
      } catch (const fault::FaultError&) {
        // Expected: typed corruption/IO error.
      }
    }
  }
}

TEST(CheckpointFuzz, TruncationAtEveryRegionIsDetected) {
  const std::string bytes = TinyCheckpointBytes(core::PredictorKind::kGat);
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{1}, std::size_t{4}, std::size_t{8}, std::size_t{12},
        std::size_t{16}, std::size_t{40}, bytes.size() / 4, bytes.size() / 2,
        bytes.size() - 5, bytes.size() - 1}) {
    ExpectLoadThrows(bytes.substr(0, keep), "truncated frame");
  }
}

TEST(CheckpointFuzz, HostileLengthPrefixesAreRejectedBeforeAllocation) {
  // A frame claiming a payload of 2^62 bytes (far beyond the stream) must be
  // rejected by the length-vs-remaining check, not by an allocation attempt.
  std::string bytes = TinyCheckpointBytes();
  const std::uint64_t hostile = std::uint64_t{1} << 62;
  std::memcpy(bytes.data() + 8, &hostile, sizeof hostile);
  ExpectLoadThrows(bytes, "hostile payload length");

  // Claiming *less* than the real payload leaves trailing bytes / fails the
  // CRC — also rejected.
  std::string short_claim = TinyCheckpointBytes();
  const std::uint64_t too_small = 8;
  std::memcpy(short_claim.data() + 8, &too_small, sizeof too_small);
  ExpectLoadThrows(short_claim, "undersized payload length");
}

TEST(CheckpointFuzz, SerializeGuardsRejectHostileTensorClaims) {
  // nn::ReadTensor validates rank and per-dimension sizes against the
  // remaining stream before allocating.
  std::stringstream hostile_rank(std::ios::in | std::ios::out | std::ios::binary);
  const std::uint32_t rank = 1000;
  hostile_rank.write(reinterpret_cast<const char*>(&rank), sizeof rank);
  EXPECT_THROW((void)nn::ReadTensor(hostile_rank), std::runtime_error);

  // Two plausible dims whose product claims terabytes the stream lacks.
  std::stringstream hostile_dims(std::ios::in | std::ios::out | std::ios::binary);
  const std::uint32_t rank2 = 2;
  const std::int64_t dim = std::int64_t{1} << 20;
  hostile_dims.write(reinterpret_cast<const char*>(&rank2), sizeof rank2);
  hostile_dims.write(reinterpret_cast<const char*>(&dim), sizeof dim);
  hostile_dims.write(reinterpret_cast<const char*>(&dim), sizeof dim);
  EXPECT_THROW((void)nn::ReadTensor(hostile_dims), std::runtime_error);

  // A dim whose running product overflows u64 outright.
  std::stringstream overflow_dims(std::ios::in | std::ios::out | std::ios::binary);
  const std::int64_t huge = std::int64_t{1} << 62;
  overflow_dims.write(reinterpret_cast<const char*>(&rank2), sizeof rank2);
  overflow_dims.write(reinterpret_cast<const char*>(&huge), sizeof huge);
  overflow_dims.write(reinterpret_cast<const char*>(&huge), sizeof huge);
  EXPECT_THROW((void)nn::ReadTensor(overflow_dims), std::runtime_error);

  // A string length under the plausibility cap but beyond the stream's end.
  std::stringstream hostile_name(std::ios::in | std::ios::out | std::ios::binary);
  const std::uint32_t name_len = 1u << 19;
  hostile_name.write(reinterpret_cast<const char*>(&name_len), sizeof name_len);
  EXPECT_THROW((void)nn::ReadString(hostile_name), std::runtime_error);
  // And one over the cap entirely.
  std::stringstream huge_name(std::ios::in | std::ios::out | std::ios::binary);
  const std::uint32_t over_cap = 1u << 24;
  huge_name.write(reinterpret_cast<const char*>(&over_cap), sizeof over_cap);
  EXPECT_THROW((void)nn::ReadString(huge_name), std::runtime_error);
}

TEST(Checkpoint, InjectedWriteFaultLeavesNoTornFile) {
  namespace fs = std::filesystem;
  const std::string path = (fs::temp_directory_path() / "predtop_fault_write.ptck").string();
  core::LatencyRegressor regressor(core::PredictorKind::kGcn, TinyOptions());
  regressor.Save(path);  // healthy baseline on disk
  const auto baseline_size = fs::file_size(path);

  {
    const InjectorGuard guard("ckpt_write:1.0");
    EXPECT_THROW(regressor.Save(path), fault::IoError);
  }
  // The failed save removed its temp file and never touched the target.
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  ASSERT_TRUE(fs::exists(path));
  EXPECT_EQ(fs::file_size(path), baseline_size);
  (void)core::LatencyRegressor::Load(path);  // still a valid frame
  std::remove(path.c_str());
}

TEST(Checkpoint, InjectedReadFaultIsTypedIoError) {
  namespace fs = std::filesystem;
  const std::string path = (fs::temp_directory_path() / "predtop_fault_read.ptck").string();
  core::LatencyRegressor regressor(core::PredictorKind::kGcn, TinyOptions());
  regressor.Save(path);
  {
    const InjectorGuard guard("ckpt_read:1.0");
    EXPECT_THROW((void)core::LatencyRegressor::Load(path), fault::IoError);
  }
  (void)core::LatencyRegressor::Load(path);  // fine once injection is off
  std::remove(path.c_str());
}

// ---- registry quarantine + retries ----

TEST(RegistryQuarantine, CorruptPathQuarantinesAfterBoundedRetries) {
  namespace fs = std::filesystem;
  const std::string good = (fs::temp_directory_path() / "predtop_q_good.ptck").string();
  const std::string corrupt = (fs::temp_directory_path() / "predtop_q_bad.ptck").string();
  core::LatencyRegressor regressor(core::PredictorKind::kGcn, TinyOptions());
  regressor.Save(good);
  {
    std::ifstream in(good, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
    std::ofstream out(corrupt, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  serve::ModelRegistry registry;
  const serve::ModelKey key{"gpt3", "platform1", sim::Mesh{1, 2}, {}};
  serve::ModelRegistry::RetryPolicy retry;
  retry.max_attempts = 3;
  retry.initial_backoff = std::chrono::milliseconds(0);

  const fault::Status first = registry.TryRegisterFromFile(key, corrupt, retry);
  EXPECT_EQ(first.code(), fault::StatusCode::kCorruption);
  EXPECT_EQ(registry.Find(key), nullptr);  // strong guarantee: nothing registered
  ASSERT_EQ(registry.Quarantined().size(), 1u);
  EXPECT_EQ(registry.Quarantined()[0].first, corrupt);

  // Quarantined: refused immediately with kUnavailable, no further retries.
  const fault::Status second = registry.TryRegisterFromFile(key, corrupt, retry);
  EXPECT_EQ(second.code(), fault::StatusCode::kUnavailable);

  // The good path is unaffected, and clearing the quarantine re-admits the
  // (now repaired) bad path.
  EXPECT_TRUE(registry.TryRegisterFromFile(key, good, retry).ok());
  EXPECT_NE(registry.Find(key), nullptr);
  registry.ClearQuarantine();
  fs::copy_file(good, corrupt, fs::copy_options::overwrite_existing);
  EXPECT_TRUE(registry.TryRegisterFromFile(key, corrupt, retry).ok());
  std::remove(good.c_str());
  std::remove(corrupt.c_str());
}

TEST(RegistryQuarantine, RetriesExactlyMaxAttemptsUnderInjection) {
  namespace fs = std::filesystem;
  const std::string path = (fs::temp_directory_path() / "predtop_q_retry.ptck").string();
  core::LatencyRegressor regressor(core::PredictorKind::kGcn, TinyOptions());
  regressor.Save(path);

  const InjectorGuard guard("ckpt_read:1.0");  // every read attempt fails
  serve::ModelRegistry registry;
  const serve::ModelKey key{"gpt3", "platform1", sim::Mesh{1, 1}, {}};
  serve::ModelRegistry::RetryPolicy retry;
  retry.max_attempts = 4;
  retry.initial_backoff = std::chrono::milliseconds(0);
  const fault::Status status = registry.TryRegisterFromFile(key, path, retry);
  EXPECT_EQ(status.code(), fault::StatusCode::kIoError);
  EXPECT_EQ(fault::Injector::Global().Stats(fault::sites::kCkptRead).evaluations, 4u);
  std::remove(path.c_str());
}

TEST(RegistryQuarantine, TransientInjectedFaultSucceedsWithinRetryBudget) {
  // p=0.5: with 8 attempts the odds every read fails are 1/256 per seed, and
  // the decision sequence is deterministic — seed 3 is known to pass within
  // the budget (asserted, so a future sequence change fails loudly here).
  namespace fs = std::filesystem;
  const std::string path = (fs::temp_directory_path() / "predtop_q_transient.ptck").string();
  core::LatencyRegressor regressor(core::PredictorKind::kGcn, TinyOptions());
  regressor.Save(path);

  const InjectorGuard guard("ckpt_read:0.5", /*seed=*/3);
  serve::ModelRegistry registry;
  const serve::ModelKey key{"gpt3", "platform1", sim::Mesh{1, 1}, {}};
  serve::ModelRegistry::RetryPolicy retry;
  retry.max_attempts = 8;
  retry.initial_backoff = std::chrono::milliseconds(0);
  EXPECT_TRUE(registry.TryRegisterFromFile(key, path, retry).ok());
  EXPECT_NE(registry.Find(key), nullptr);
  EXPECT_TRUE(registry.Quarantined().empty());
  std::remove(path.c_str());
}

// ---- service injection + degradation ladder ----

/// Shared serving fixture: one registered (untrained) model, one encoded
/// stage per slice, and a fallback oracle over the benchmark's programs.
struct ServingFixture {
  ServingFixture() : benchmark(core::Gpt3Benchmark(TinyGptConfig())) {
    registry = std::make_shared<serve::ModelRegistry>();
    key = serve::ModelKey{"gpt3", "platform1", sim::Mesh{1, 2}, {}};
    registry->Register(key, std::make_shared<core::LatencyRegressor>(
                                core::PredictorKind::kGcn, TinyOptions()));
    service = std::make_unique<serve::PredictionService>(registry);
    fallback = std::make_shared<serve::FallbackOracle>(
        sim::Platform1().device, [this](ir::StageSlice s) -> const ir::StageProgram& {
          return Program(s);
        });
  }

  const ir::StageProgram& Program(ir::StageSlice s) {
    const auto k = std::make_pair(s.first_layer, s.last_layer);
    if (const auto it = programs.find(k); it != programs.end()) return it->second;
    return programs.emplace(k, benchmark.build_stage(s)).first->second;
  }
  const graph::EncodedGraph& Encoded(ir::StageSlice s) {
    const auto k = std::make_pair(s.first_layer, s.last_layer);
    if (const auto it = encoded.find(k); it != encoded.end()) return it->second;
    return encoded.emplace(k, core::EncodeStage(Program(s))).first->second;
  }
  serve::StageEncoder Encoder() {
    return [this](ir::StageSlice s) -> const graph::EncodedGraph& { return Encoded(s); };
  }

  core::BenchmarkModel benchmark;
  std::shared_ptr<serve::ModelRegistry> registry;
  serve::ModelKey key;
  std::unique_ptr<serve::PredictionService> service;
  std::shared_ptr<serve::FallbackOracle> fallback;
  std::map<std::pair<std::int32_t, std::int32_t>, ir::StageProgram> programs;
  std::map<std::pair<std::int32_t, std::int32_t>, graph::EncodedGraph> encoded;
};

TEST(Service, InjectedNanIsNeverCached) {
  ServingFixture fx;
  const graph::EncodedGraph& g = fx.Encoded({0, 2});
  {
    const InjectorGuard guard("predict_nan:1.0");
    EXPECT_TRUE(std::isnan(fx.service->Predict(fx.key, g)));
  }
  // The poisoned answer was not cached, so the next query re-forwards and
  // succeeds.
  const double healthy = fx.service->Predict(fx.key, g);
  EXPECT_TRUE(std::isfinite(healthy));
  EXPECT_EQ(fx.service->Stats().forwards, 2u);
  // And a healthy value *is* cached.
  EXPECT_EQ(fx.service->Predict(fx.key, g), healthy);
  EXPECT_EQ(fx.service->Stats().forwards, 2u);
}

TEST(FallbackOracle, AnalyticalEstimateIsFiniteAndTagged) {
  ServingFixture fx;
  const parallel::StageLatencyResult estimate =
      fx.fallback->Estimate(ir::StageSlice{0, 2}, sim::Mesh{1, 2});
  EXPECT_TRUE(std::isfinite(estimate.latency_s));
  EXPECT_GT(estimate.latency_s, 0.0);
  EXPECT_TRUE(estimate.degraded);
  EXPECT_EQ(estimate.config.Degree(), 2);  // a concrete config for the mesh
}

TEST(ServingOracle, MissingModelDegradesToFallback) {
  ServingFixture fx;
  serve::ServingOracleOptions options;
  options.fallback = fx.fallback;
  // No model registered for mesh {1,1}: the learned rung throws, the ladder
  // answers analytically.
  const serve::ModelKey missing{"gpt3", "platform1", sim::Mesh{1, 1}, {}};
  const serve::ServingOracle oracle(*fx.service, {sim::Mesh{1, 1}}, {missing}, fx.Encoder(),
                                    /*max_span=*/0, options);
  const parallel::StageLatencyResult result = oracle(ir::StageSlice{0, 2}, sim::Mesh{1, 1});
  EXPECT_TRUE(std::isfinite(result.latency_s));
  EXPECT_TRUE(result.degraded);
  const serve::OracleStats stats = oracle.Stats();
  EXPECT_EQ(stats.queries, 1u);
  EXPECT_EQ(stats.degraded, 1u);
}

TEST(ServingOracle, NanPredictionRetriesThenDegrades) {
  ServingFixture fx;
  serve::ServingOracleOptions options;
  options.max_attempts = 3;
  options.fallback = fx.fallback;
  const serve::ServingOracle oracle(*fx.service, {fx.key.mesh}, {fx.key}, fx.Encoder(),
                                    /*max_span=*/0, options);
  {
    const InjectorGuard guard("predict_nan:1.0");  // all three attempts poisoned
    const parallel::StageLatencyResult result = oracle(ir::StageSlice{0, 2}, fx.key.mesh);
    EXPECT_TRUE(std::isfinite(result.latency_s));
    EXPECT_TRUE(result.degraded);
    EXPECT_EQ(oracle.Stats().degraded, 1u);
  }
  // After the outage the same query answers cleanly at the top rung — the
  // poisoned answers were never cached, so nothing sticky remains.
  const parallel::StageLatencyResult healthy = oracle(ir::StageSlice{0, 2}, fx.key.mesh);
  EXPECT_FALSE(healthy.degraded);
  EXPECT_TRUE(std::isfinite(healthy.latency_s));
}

TEST(ServingOracle, DeadlineOverrunDegrades) {
  ServingFixture fx;
  serve::ServingOracleOptions options;
  options.deadline_ms = 0.5;
  options.fallback = fx.fallback;
  const serve::ServingOracle oracle(*fx.service, {fx.key.mesh}, {fx.key}, fx.Encoder(),
                                    /*max_span=*/0, options);
  {
    const InjectorGuard guard("predict_delay_ms:20;predict_delay_p:1.0");
    const parallel::StageLatencyResult late = oracle(ir::StageSlice{0, 2}, fx.key.mesh);
    EXPECT_TRUE(late.degraded);
    EXPECT_TRUE(std::isfinite(late.latency_s));
    EXPECT_EQ(oracle.Stats().degraded, 1u);
  }
  // A cached (fast) answer afterwards meets the deadline.
  const parallel::StageLatencyResult fast = oracle(ir::StageSlice{0, 2}, fx.key.mesh);
  EXPECT_FALSE(fast.degraded);
}

TEST(ServingOracle, PlanSearchCompletesUnderInjectionAndReportsDegradedFraction) {
  // The fig10-style drill in miniature: a 4-layer search with every
  // prediction poisoned must still complete with a finite, valid plan priced
  // entirely by the analytical fallback.
  ServingFixture fx;
  serve::ServingOracleOptions options;
  options.fallback = fx.fallback;
  const std::vector<sim::Mesh> meshes{sim::Mesh{1, 1}, sim::Mesh{1, 2}};
  const serve::ModelKey missing{"gpt3", "platform1", sim::Mesh{1, 1}, {}};
  const serve::ServingOracle oracle(*fx.service, meshes, {missing, fx.key}, fx.Encoder(),
                                    /*max_span=*/0, options);

  parallel::InterOpOptions opt;
  opt.num_layers = 4;
  opt.num_microbatches = 4;
  opt.submeshes = meshes;
  const parallel::InterOpOptimizer optimizer(sim::Platform1(), opt);

  const InjectorGuard guard("predict_nan:1.0");  // the learned rung never answers
  const parallel::PipelinePlan plan = optimizer.Optimize(oracle.AsBatchOracle());
  ASSERT_TRUE(plan.Valid());
  EXPECT_TRUE(std::isfinite(plan.iteration_latency_s));
  for (const parallel::PipelineStageChoice& stage : plan.stages) {
    EXPECT_TRUE(stage.degraded);  // every priced cell came from the fallback
  }
  const serve::OracleStats stats = oracle.Stats();
  EXPECT_GT(stats.queries, 0u);
  EXPECT_EQ(stats.degraded, stats.queries);  // degraded fraction = 100%
}

TEST(ServingOracle, DisabledInjectionIsBitIdenticalToLegacyPath) {
  // With no options and no injection, the hardened oracle must answer
  // exactly like the seed implementation: same values, exceptions propagate.
  ServingFixture fx;
  const serve::ServingOracle hardened(*fx.service, {fx.key.mesh}, {fx.key}, fx.Encoder());
  const double direct = fx.registry->Find(fx.key)->PredictSeconds(fx.Encoded({0, 2}));
  EXPECT_EQ(hardened(ir::StageSlice{0, 2}, fx.key.mesh).latency_s, direct);
  EXPECT_FALSE(hardened(ir::StageSlice{0, 2}, fx.key.mesh).degraded);

  const serve::ModelKey missing{"gpt3", "platform1", sim::Mesh{1, 1}, {}};
  const serve::ServingOracle no_fallback(*fx.service, {sim::Mesh{1, 1}}, {missing},
                                         fx.Encoder());
  EXPECT_THROW((void)no_fallback(ir::StageSlice{0, 2}, sim::Mesh{1, 1}),
               std::runtime_error);
}

}  // namespace
}  // namespace predtop

// Gradient checks for every autograd primitive: analytic VJPs are compared
// against central finite differences through a generic harness.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstring>
#include <functional>
#include <thread>

#include "autograd/engine.h"
#include "autograd/functions.h"
#include "autograd/variable.h"
#include "tensor/sparse.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace predtop::autograd {
namespace {

using tensor::Csr;
using tensor::Tensor;
using util::Rng;

/// Reduce an arbitrary 2-D output to a scalar with fixed random weights so
/// the checker exercises non-uniform upstream gradients:
///   s = sum(out o W) computed via Mul + GlobalAddPool + Transpose.
Variable ToScalar(const Variable& out, const Tensor& weights) {
  const Variable weighted = Mul(out, Variable(weights));
  const Variable pooled = GlobalAddPool(weighted);            // (1, c)
  return GlobalAddPool(Transpose(pooled));                    // (1, 1)
}

/// Central-difference gradient check: `build` constructs a scalar loss from
/// freshly-wrapped leaf Variables; analytic gradients from one Backward()
/// pass are compared against (L(x+eps) - L(x-eps)) / 2eps per element.
void CheckGradientsV(const std::function<Variable(std::vector<Variable>&)>& build,
                     std::vector<Tensor> leaf_values, float eps = 1e-3f,
                     float tolerance = 2e-2f) {
  // Analytic gradients.
  std::vector<Variable> leaves;
  leaves.reserve(leaf_values.size());
  for (const Tensor& t : leaf_values) leaves.emplace_back(t, /*requires_grad=*/true);
  Variable loss = build(leaves);
  ASSERT_EQ(loss.value().numel(), 1);
  Backward(loss);

  for (std::size_t l = 0; l < leaves.size(); ++l) {
    const Tensor analytic = leaves[l].grad();
    for (std::int64_t i = 0; i < leaf_values[l].numel(); ++i) {
      const float saved = leaf_values[l][i];
      const auto eval = [&](float v) {
        leaf_values[l][i] = v;
        std::vector<Variable> fresh;
        fresh.reserve(leaf_values.size());
        for (const Tensor& t : leaf_values) fresh.emplace_back(t, true);
        return static_cast<double>(build(fresh).value().data()[0]);
      };
      const double numeric = (eval(saved + eps) - eval(saved - eps)) / (2.0 * eps);
      leaf_values[l][i] = saved;
      const double a = static_cast<double>(analytic[i]);
      EXPECT_NEAR(a, numeric, tolerance * std::max(1.0, std::fabs(numeric)))
          << "leaf " << l << " element " << i;
    }
  }
}

Tensor RandT(tensor::Shape shape, std::uint64_t seed, float stddev = 1.0f) {
  Rng rng(seed);
  return Tensor::Randn(std::move(shape), rng, stddev);
}

TEST(Autograd, MatMulGradients) {
  const Tensor w = RandT({3, 4}, 100);
  CheckGradientsV(
      [&](std::vector<Variable>& v) { return ToScalar(MatMul(v[0], v[1]), w); },
      {RandT({3, 2}, 1), RandT({2, 4}, 2)});
}

TEST(Autograd, AddSubMulScaleGradients) {
  const Tensor w = RandT({2, 3}, 101);
  CheckGradientsV(
      [&](std::vector<Variable>& v) {
        return ToScalar(Scale(Add(Sub(v[0], v[1]), Mul(v[0], v[1])), 0.7f), w);
      },
      {RandT({2, 3}, 3), RandT({2, 3}, 4)});
}

TEST(Autograd, AddRowVectorGradients) {
  const Tensor w = RandT({3, 4}, 102);
  CheckGradientsV(
      [&](std::vector<Variable>& v) { return ToScalar(AddRowVector(v[0], v[1]), w); },
      {RandT({3, 4}, 5), RandT({4}, 6)});
}

TEST(Autograd, ActivationGradients) {
  const Tensor w = RandT({2, 5}, 103);
  // Shift inputs away from the ReLU kink for a stable finite difference.
  Tensor x = RandT({2, 5}, 7);
  for (float& v : x.data()) v += (v >= 0.0f ? 0.3f : -0.3f);
  CheckGradientsV([&](std::vector<Variable>& v) { return ToScalar(Relu(v[0]), w); }, {x});
  CheckGradientsV(
      [&](std::vector<Variable>& v) { return ToScalar(LeakyRelu(v[0], 0.2f), w); }, {x});
  CheckGradientsV([&](std::vector<Variable>& v) { return ToScalar(Gelu(v[0]), w); }, {x});
  CheckGradientsV([&](std::vector<Variable>& v) { return ToScalar(Tanh(v[0]), w); }, {x});
}

TEST(Autograd, SoftmaxGradients) {
  const Tensor w = RandT({3, 4}, 104);
  CheckGradientsV([&](std::vector<Variable>& v) { return ToScalar(RowSoftmax(v[0]), w); },
                  {RandT({3, 4}, 8)});
}

TEST(Autograd, MaskedSoftmaxGradients) {
  const float inf = std::numeric_limits<float>::infinity();
  Tensor mask({3, 3});
  mask.at(0, 2) = -inf;
  mask.at(2, 0) = -inf;
  const Tensor w = RandT({3, 3}, 105);
  CheckGradientsV(
      [&](std::vector<Variable>& v) { return ToScalar(MaskedRowSoftmax(v[0], mask), w); },
      {RandT({3, 3}, 9)});
}

TEST(Autograd, LayerNormGradients) {
  const Tensor w = RandT({3, 6}, 106);
  CheckGradientsV(
      [&](std::vector<Variable>& v) { return ToScalar(LayerNorm(v[0], v[1], v[2]), w); },
      {RandT({3, 6}, 10), RandT({6}, 11, 0.5f), RandT({6}, 12, 0.5f)}, 1e-3f, 4e-2f);
}

TEST(Autograd, TransposeSliceConcatGradients) {
  const Tensor w = RandT({2, 6}, 107);
  CheckGradientsV(
      [&](std::vector<Variable>& v) {
        const Variable a = SliceCols(v[0], 0, 2);
        const Variable b = SliceCols(v[0], 2, 4);
        const std::vector<Variable> parts{b, a};
        return ToScalar(ConcatCols(parts), w);
      },
      {RandT({2, 6}, 13)});
}

TEST(Autograd, RowScaleGradients) {
  const Tensor w = RandT({4, 3}, 108);
  CheckGradientsV(
      [&](std::vector<Variable>& v) { return ToScalar(RowScale(v[0], v[1]), w); },
      {RandT({4, 3}, 14), RandT({4, 1}, 15)});
}

TEST(Autograd, SpMMGradients) {
  auto adj = std::make_shared<Csr>(
      Csr::FromCoo(3, 3, {0, 1, 2, 0}, {1, 2, 0, 0}, {0.5f, 1.5f, -1.0f, 2.0f}));
  auto adj_t = std::make_shared<Csr>(adj->Transposed());
  const Tensor w = RandT({3, 4}, 109);
  CheckGradientsV(
      [&](std::vector<Variable>& v) { return ToScalar(SpMM(adj, adj_t, v[0]), w); },
      {RandT({3, 4}, 16)});
}

TEST(Autograd, IndexSelectRowsGradients) {
  const std::vector<std::int32_t> idx{2, 0, 2, 1};
  const Tensor w = RandT({4, 3}, 110);
  CheckGradientsV(
      [&](std::vector<Variable>& v) { return ToScalar(IndexSelectRows(v[0], idx), w); },
      {RandT({3, 3}, 17)});
}

TEST(Autograd, SegmentSumGradients) {
  const std::vector<std::int32_t> seg{0, 1, 0, 2, 1};
  const Tensor w = RandT({3, 2}, 111);
  CheckGradientsV(
      [&](std::vector<Variable>& v) { return ToScalar(SegmentSum(v[0], seg, 3), w); },
      {RandT({5, 2}, 18)});
}

TEST(Autograd, SegmentSoftmaxGradients) {
  const std::vector<std::int32_t> seg{0, 0, 1, 1, 1};
  const Tensor w = RandT({5, 2}, 112);
  CheckGradientsV(
      [&](std::vector<Variable>& v) { return ToScalar(SegmentSoftmax(v[0], seg, 2), w); },
      {RandT({5, 2}, 19)});
}

TEST(Autograd, GlobalAddPoolGradients) {
  const Tensor w = RandT({1, 4}, 113);
  CheckGradientsV(
      [&](std::vector<Variable>& v) { return ToScalar(GlobalAddPool(v[0]), w); },
      {RandT({5, 4}, 20)});
}

TEST(Autograd, LossGradients) {
  Tensor pred({1, 1});
  pred[0] = 1.7f;  // away from the |.| kink at target
  CheckGradientsV([&](std::vector<Variable>& v) { return AbsError(v[0], 0.4f); }, {pred});
  CheckGradientsV([&](std::vector<Variable>& v) { return SquaredError(v[0], 0.4f); }, {pred});
}

TEST(Autograd, SharedSubexpressionAccumulates) {
  // loss = sum(x + x): dx should be 2 everywhere.
  const Variable x(Tensor({2, 2}, 1.0f), true);
  const Variable loss = GlobalAddPool(Transpose(GlobalAddPool(Add(x, x))));
  Backward(loss);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(x.grad()[i], 2.0f);
}

TEST(Autograd, RequiresGradGatesPropagation) {
  const Variable x(Tensor({2, 2}, 1.0f), false);
  const Variable y(Tensor({2, 2}, 2.0f), true);
  const Variable loss = GlobalAddPool(Transpose(GlobalAddPool(Mul(x, y))));
  Backward(loss);
  // x never requested gradients: stays zero (lazily materialized).
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(x.grad()[i], 0.0f);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(y.grad()[i], 1.0f);
}

TEST(Autograd, ZeroGradResets) {
  const Variable x(Tensor({1, 1}, 3.0f), true);
  Variable loss = SquaredError(x, 0.0f);
  Backward(loss);
  EXPECT_FLOAT_EQ(x.grad()[0], 6.0f);
  const_cast<Variable&>(x).ZeroGrad();
  loss = SquaredError(x, 0.0f);
  Backward(loss);
  EXPECT_FLOAT_EQ(x.grad()[0], 6.0f);  // not 12: accumulation was reset
}

TEST(Autograd, BackwardOnUndefinedThrows) {
  const Variable undefined;
  EXPECT_THROW(Backward(undefined), std::invalid_argument);
}

// ---- parallel engine ----

void ExpectBitIdentical(const Tensor& a, const Tensor& b, const char* label) {
  ASSERT_EQ(a.numel(), b.numel()) << label;
  EXPECT_EQ(std::memcmp(a.data().data(), b.data().data(),
                        static_cast<std::size_t>(a.numel()) * sizeof(float)),
            0)
      << label;
}

/// A graph with branching, a join, duplicate parents (Mul(t, t)) and a long
/// spine — enough structure for the ready-queue to actually reorder work.
Variable BuildDeepGraph(std::vector<Variable>& v) {
  const Variable h = Gelu(AddRowVector(MatMul(v[0], v[1]), v[2]));
  const Variable t = Tanh(MatMul(h, v[3]));
  const Variable s = Add(t, Scale(Mul(t, t), 0.5f));
  return GlobalAddPool(Transpose(GlobalAddPool(s)));
}

std::vector<Tensor> DeepGraphLeaves() {
  return {RandT({6, 4}, 31), RandT({4, 8}, 32), RandT({8}, 33), RandT({8, 4}, 34)};
}

TEST(Engine, BitIdenticalToSerialBackward) {
  const std::vector<Tensor> values = DeepGraphLeaves();
  const auto run = [&](const std::function<void(const Variable&)>& backward) {
    std::vector<Variable> leaves;
    for (const Tensor& t : values) leaves.emplace_back(t, /*requires_grad=*/true);
    backward(BuildDeepGraph(leaves));
    std::vector<Tensor> grads;
    for (const Variable& l : leaves) grads.push_back(l.grad());
    return grads;
  };
  const std::vector<Tensor> serial = run([](const Variable& l) { Backward(l); });
  util::ThreadPool pool(4);
  for (util::ThreadPool* p : {static_cast<util::ThreadPool*>(nullptr), &pool}) {
    const std::vector<Tensor> parallel =
        run([&](const Variable& l) { BackwardParallel(l, {p}); });
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      ExpectBitIdentical(parallel[i], serial[i], p == nullptr ? "no pool" : "pool(4)");
    }
  }
}

TEST(Engine, DuplicateParentsAccumulateLikeSerial) {
  // loss = sum(x * x): dx = 2x — both closure contributions to the same
  // parent must land, in the serial order.
  const Tensor value = RandT({3, 3}, 35);
  const Variable sx(value, true);
  Backward(GlobalAddPool(Transpose(GlobalAddPool(Mul(sx, sx)))));
  util::ThreadPool pool(3);
  const Variable px(value, true);
  BackwardParallel(GlobalAddPool(Transpose(GlobalAddPool(Mul(px, px)))), {&pool});
  ExpectBitIdentical(px.grad(), sx.grad(), "Mul(x, x)");
}

TEST(Engine, BackwardIntoRedirectsListedLeaves) {
  const std::vector<Tensor> values = DeepGraphLeaves();
  std::vector<Variable> ref;
  for (const Tensor& t : values) ref.emplace_back(t, true);
  Backward(BuildDeepGraph(ref));

  std::vector<Variable> leaves;
  for (const Tensor& t : values) leaves.emplace_back(t, true);
  const Variable loss = BuildDeepGraph(leaves);
  std::vector<Variable*> listed;
  for (Variable& l : leaves) listed.push_back(&l);
  std::vector<Tensor> buffers(listed.size());  // empty: assigned on first use
  util::ThreadPool pool(2);
  BackwardInto(loss, listed, buffers, {&pool});

  for (std::size_t i = 0; i < listed.size(); ++i) {
    ExpectBitIdentical(buffers[i], ref[i].grad(), "external buffer");
    // The listed leaves' own gradients were never written.
    for (std::int64_t j = 0; j < leaves[i].grad().numel(); ++j) {
      ASSERT_EQ(leaves[i].grad()[j], 0.0f);
    }
  }
}

TEST(Engine, BackwardIntoAccumulatesAcrossCalls) {
  const std::vector<Tensor> values = DeepGraphLeaves();
  std::vector<Variable> ref;
  for (const Tensor& t : values) ref.emplace_back(t, true);
  Backward(BuildDeepGraph(ref));
  Backward(BuildDeepGraph(ref));  // serial double-accumulate

  std::vector<Variable> leaves;
  for (const Tensor& t : values) leaves.emplace_back(t, true);
  std::vector<Variable*> listed;
  for (Variable& l : leaves) listed.push_back(&l);
  std::vector<Tensor> buffers(listed.size());
  BackwardInto(BuildDeepGraph(leaves), listed, buffers);
  BackwardInto(BuildDeepGraph(leaves), listed, buffers);  // adds in place

  for (std::size_t i = 0; i < listed.size(); ++i) {
    ExpectBitIdentical(buffers[i], ref[i].grad(), "accumulated buffer");
  }
}

TEST(Engine, ConcurrentBackwardsOnSharedParametersAreRaceFree) {
  // Data-parallel shape: many tapes share the same parameter leaves; each
  // thread differentiates its own tape into a private buffer. The fixed-order
  // reduction of those buffers must equal sequential serial accumulation.
  constexpr std::size_t kTapes = 8;
  const Tensor w1v = RandT({4, 8}, 40);
  const Tensor w2v = RandT({8, 4}, 41);
  std::vector<Tensor> inputs;
  for (std::size_t t = 0; t < kTapes; ++t) inputs.push_back(RandT({5, 4}, 100 + t));
  const auto build = [](const Tensor& x, Variable& w1, Variable& w2) {
    const Variable h = Tanh(MatMul(Variable(x), w1));
    return GlobalAddPool(Transpose(GlobalAddPool(MatMul(h, w2))));
  };

  Variable rw1(w1v, true), rw2(w2v, true);
  for (std::size_t t = 0; t < kTapes; ++t) Backward(build(inputs[t], rw1, rw2));

  Variable w1(w1v, true), w2(w2v, true);
  std::vector<std::array<Tensor, 2>> buffers(kTapes);
  std::vector<std::thread> threads;
  threads.reserve(kTapes);
  for (std::size_t t = 0; t < kTapes; ++t) {
    threads.emplace_back([&, t] {
      const Variable loss = build(inputs[t], w1, w2);
      const std::array<Variable*, 2> listed{&w1, &w2};
      BackwardInto(loss, listed, buffers[t]);
    });
  }
  for (std::thread& th : threads) th.join();

  Tensor g1 = buffers[0][0], g2 = buffers[0][1];
  for (std::size_t t = 1; t < kTapes; ++t) {
    g1.AddInPlace(buffers[t][0]);
    g2.AddInPlace(buffers[t][1]);
  }
  ExpectBitIdentical(g1, rw1.grad(), "w1 reduced");
  ExpectBitIdentical(g2, rw2.grad(), "w2 reduced");
  // Shared leaves stayed untouched throughout.
  for (std::int64_t j = 0; j < w1.grad().numel(); ++j) ASSERT_EQ(w1.grad()[j], 0.0f);
}

TEST(Engine, UndefinedRootThrows) {
  const Variable undefined;
  EXPECT_THROW(BackwardParallel(undefined), std::invalid_argument);
}

}  // namespace
}  // namespace predtop::autograd

// Gradient checks for every autograd primitive: analytic VJPs are compared
// against central finite differences through a generic harness.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "autograd/functions.h"
#include "autograd/variable.h"
#include "tensor/sparse.h"
#include "util/rng.h"

namespace predtop::autograd {
namespace {

using tensor::Csr;
using tensor::Tensor;
using util::Rng;

/// Reduce an arbitrary 2-D output to a scalar with fixed random weights so
/// the checker exercises non-uniform upstream gradients:
///   s = sum(out o W) computed via Mul + GlobalAddPool + Transpose.
Variable ToScalar(const Variable& out, const Tensor& weights) {
  const Variable weighted = Mul(out, Variable(weights));
  const Variable pooled = GlobalAddPool(weighted);            // (1, c)
  return GlobalAddPool(Transpose(pooled));                    // (1, 1)
}

/// Central-difference gradient check: `build` constructs a scalar loss from
/// freshly-wrapped leaf Variables; analytic gradients from one Backward()
/// pass are compared against (L(x+eps) - L(x-eps)) / 2eps per element.
void CheckGradientsV(const std::function<Variable(std::vector<Variable>&)>& build,
                     std::vector<Tensor> leaf_values, float eps = 1e-3f,
                     float tolerance = 2e-2f) {
  // Analytic gradients.
  std::vector<Variable> leaves;
  leaves.reserve(leaf_values.size());
  for (const Tensor& t : leaf_values) leaves.emplace_back(t, /*requires_grad=*/true);
  Variable loss = build(leaves);
  ASSERT_EQ(loss.value().numel(), 1);
  Backward(loss);

  for (std::size_t l = 0; l < leaves.size(); ++l) {
    const Tensor analytic = leaves[l].grad();
    for (std::int64_t i = 0; i < leaf_values[l].numel(); ++i) {
      const float saved = leaf_values[l][i];
      const auto eval = [&](float v) {
        leaf_values[l][i] = v;
        std::vector<Variable> fresh;
        fresh.reserve(leaf_values.size());
        for (const Tensor& t : leaf_values) fresh.emplace_back(t, true);
        return static_cast<double>(build(fresh).value().data()[0]);
      };
      const double numeric = (eval(saved + eps) - eval(saved - eps)) / (2.0 * eps);
      leaf_values[l][i] = saved;
      const double a = static_cast<double>(analytic[i]);
      EXPECT_NEAR(a, numeric, tolerance * std::max(1.0, std::fabs(numeric)))
          << "leaf " << l << " element " << i;
    }
  }
}

Tensor RandT(tensor::Shape shape, std::uint64_t seed, float stddev = 1.0f) {
  Rng rng(seed);
  return Tensor::Randn(std::move(shape), rng, stddev);
}

TEST(Autograd, MatMulGradients) {
  const Tensor w = RandT({3, 4}, 100);
  CheckGradientsV(
      [&](std::vector<Variable>& v) { return ToScalar(MatMul(v[0], v[1]), w); },
      {RandT({3, 2}, 1), RandT({2, 4}, 2)});
}

TEST(Autograd, AddSubMulScaleGradients) {
  const Tensor w = RandT({2, 3}, 101);
  CheckGradientsV(
      [&](std::vector<Variable>& v) {
        return ToScalar(Scale(Add(Sub(v[0], v[1]), Mul(v[0], v[1])), 0.7f), w);
      },
      {RandT({2, 3}, 3), RandT({2, 3}, 4)});
}

TEST(Autograd, AddRowVectorGradients) {
  const Tensor w = RandT({3, 4}, 102);
  CheckGradientsV(
      [&](std::vector<Variable>& v) { return ToScalar(AddRowVector(v[0], v[1]), w); },
      {RandT({3, 4}, 5), RandT({4}, 6)});
}

TEST(Autograd, ActivationGradients) {
  const Tensor w = RandT({2, 5}, 103);
  // Shift inputs away from the ReLU kink for a stable finite difference.
  Tensor x = RandT({2, 5}, 7);
  for (float& v : x.data()) v += (v >= 0.0f ? 0.3f : -0.3f);
  CheckGradientsV([&](std::vector<Variable>& v) { return ToScalar(Relu(v[0]), w); }, {x});
  CheckGradientsV(
      [&](std::vector<Variable>& v) { return ToScalar(LeakyRelu(v[0], 0.2f), w); }, {x});
  CheckGradientsV([&](std::vector<Variable>& v) { return ToScalar(Gelu(v[0]), w); }, {x});
  CheckGradientsV([&](std::vector<Variable>& v) { return ToScalar(Tanh(v[0]), w); }, {x});
}

TEST(Autograd, SoftmaxGradients) {
  const Tensor w = RandT({3, 4}, 104);
  CheckGradientsV([&](std::vector<Variable>& v) { return ToScalar(RowSoftmax(v[0]), w); },
                  {RandT({3, 4}, 8)});
}

TEST(Autograd, MaskedSoftmaxGradients) {
  const float inf = std::numeric_limits<float>::infinity();
  Tensor mask({3, 3});
  mask.at(0, 2) = -inf;
  mask.at(2, 0) = -inf;
  const Tensor w = RandT({3, 3}, 105);
  CheckGradientsV(
      [&](std::vector<Variable>& v) { return ToScalar(MaskedRowSoftmax(v[0], mask), w); },
      {RandT({3, 3}, 9)});
}

TEST(Autograd, LayerNormGradients) {
  const Tensor w = RandT({3, 6}, 106);
  CheckGradientsV(
      [&](std::vector<Variable>& v) { return ToScalar(LayerNorm(v[0], v[1], v[2]), w); },
      {RandT({3, 6}, 10), RandT({6}, 11, 0.5f), RandT({6}, 12, 0.5f)}, 1e-3f, 4e-2f);
}

TEST(Autograd, TransposeSliceConcatGradients) {
  const Tensor w = RandT({2, 6}, 107);
  CheckGradientsV(
      [&](std::vector<Variable>& v) {
        const Variable a = SliceCols(v[0], 0, 2);
        const Variable b = SliceCols(v[0], 2, 4);
        const std::vector<Variable> parts{b, a};
        return ToScalar(ConcatCols(parts), w);
      },
      {RandT({2, 6}, 13)});
}

TEST(Autograd, RowScaleGradients) {
  const Tensor w = RandT({4, 3}, 108);
  CheckGradientsV(
      [&](std::vector<Variable>& v) { return ToScalar(RowScale(v[0], v[1]), w); },
      {RandT({4, 3}, 14), RandT({4, 1}, 15)});
}

TEST(Autograd, SpMMGradients) {
  auto adj = std::make_shared<Csr>(
      Csr::FromCoo(3, 3, {0, 1, 2, 0}, {1, 2, 0, 0}, {0.5f, 1.5f, -1.0f, 2.0f}));
  auto adj_t = std::make_shared<Csr>(adj->Transposed());
  const Tensor w = RandT({3, 4}, 109);
  CheckGradientsV(
      [&](std::vector<Variable>& v) { return ToScalar(SpMM(adj, adj_t, v[0]), w); },
      {RandT({3, 4}, 16)});
}

TEST(Autograd, IndexSelectRowsGradients) {
  const std::vector<std::int32_t> idx{2, 0, 2, 1};
  const Tensor w = RandT({4, 3}, 110);
  CheckGradientsV(
      [&](std::vector<Variable>& v) { return ToScalar(IndexSelectRows(v[0], idx), w); },
      {RandT({3, 3}, 17)});
}

TEST(Autograd, SegmentSumGradients) {
  const std::vector<std::int32_t> seg{0, 1, 0, 2, 1};
  const Tensor w = RandT({3, 2}, 111);
  CheckGradientsV(
      [&](std::vector<Variable>& v) { return ToScalar(SegmentSum(v[0], seg, 3), w); },
      {RandT({5, 2}, 18)});
}

TEST(Autograd, SegmentSoftmaxGradients) {
  const std::vector<std::int32_t> seg{0, 0, 1, 1, 1};
  const Tensor w = RandT({5, 2}, 112);
  CheckGradientsV(
      [&](std::vector<Variable>& v) { return ToScalar(SegmentSoftmax(v[0], seg, 2), w); },
      {RandT({5, 2}, 19)});
}

TEST(Autograd, GlobalAddPoolGradients) {
  const Tensor w = RandT({1, 4}, 113);
  CheckGradientsV(
      [&](std::vector<Variable>& v) { return ToScalar(GlobalAddPool(v[0]), w); },
      {RandT({5, 4}, 20)});
}

TEST(Autograd, LossGradients) {
  Tensor pred({1, 1});
  pred[0] = 1.7f;  // away from the |.| kink at target
  CheckGradientsV([&](std::vector<Variable>& v) { return AbsError(v[0], 0.4f); }, {pred});
  CheckGradientsV([&](std::vector<Variable>& v) { return SquaredError(v[0], 0.4f); }, {pred});
}

TEST(Autograd, SharedSubexpressionAccumulates) {
  // loss = sum(x + x): dx should be 2 everywhere.
  const Variable x(Tensor({2, 2}, 1.0f), true);
  const Variable loss = GlobalAddPool(Transpose(GlobalAddPool(Add(x, x))));
  Backward(loss);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(x.grad()[i], 2.0f);
}

TEST(Autograd, RequiresGradGatesPropagation) {
  const Variable x(Tensor({2, 2}, 1.0f), false);
  const Variable y(Tensor({2, 2}, 2.0f), true);
  const Variable loss = GlobalAddPool(Transpose(GlobalAddPool(Mul(x, y))));
  Backward(loss);
  // x never requested gradients: stays zero (lazily materialized).
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(x.grad()[i], 0.0f);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(y.grad()[i], 1.0f);
}

TEST(Autograd, ZeroGradResets) {
  const Variable x(Tensor({1, 1}, 3.0f), true);
  Variable loss = SquaredError(x, 0.0f);
  Backward(loss);
  EXPECT_FLOAT_EQ(x.grad()[0], 6.0f);
  const_cast<Variable&>(x).ZeroGrad();
  loss = SquaredError(x, 0.0f);
  Backward(loss);
  EXPECT_FLOAT_EQ(x.grad()[0], 6.0f);  // not 12: accumulation was reset
}

TEST(Autograd, BackwardOnUndefinedThrows) {
  const Variable undefined;
  EXPECT_THROW(Backward(undefined), std::invalid_argument);
}

}  // namespace
}  // namespace predtop::autograd

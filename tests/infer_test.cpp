// Tests for the tape-free inference fast path: packed-GEMM numerics, the
// tensor arena, InferForward/Forward parity for every predictor (including
// after parameter mutation, which must invalidate the cached packed
// weights), and concurrent fast-path prediction (run under TSan by
// ci/run.sh tsan).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "core/dataset.h"
#include "core/predictors.h"
#include "core/regressor.h"
#include "graph/fingerprint.h"
#include "nn/infer.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "tensor/arena.h"
#include "tensor/ops.h"
#include "tensor/quant.h"
#include "util/rng.h"

namespace predtop::core {
namespace {

// ---- packed GEMM ----

void ExpectTensorsClose(const tensor::Tensor& a, const tensor::Tensor& b, float tol) {
  ASSERT_EQ(a.numel(), b.numel());
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    const float x = a.data()[i];
    const float y = b.data()[i];
    ASSERT_LE(std::abs(x - y), tol * std::max(1.0f, std::abs(x))) << "element " << i;
  }
}

TEST(PackedGemm, MatchesNaiveAcrossShapes) {
  // Full panels, ragged panels, ragged row blocks, single rows.
  const struct { std::int64_t m, k, n; } shapes[] = {
      {1, 8, 16},  {6, 8, 16},   {7, 33, 16},  {13, 17, 40},
      {3, 100, 17}, {50, 20, 100}, {64, 64, 64}, {61, 47, 129},
  };
  util::Rng rng(11);
  for (const auto& s : shapes) {
    const tensor::Tensor a = tensor::Tensor::Randn({s.m, s.k}, rng);
    const tensor::Tensor b = tensor::Tensor::Randn({s.k, s.n}, rng);
    const tensor::Tensor packed = tensor::MatMulPacked(a, tensor::PackB(b));
    ExpectTensorsClose(packed, tensor::MatMulNaive(a, b), 1e-5f);
  }
}

TEST(PackedGemm, PackTransposedMatchesPackOfTranspose) {
  util::Rng rng(12);
  const tensor::Tensor bt = tensor::Tensor::Randn({40, 23}, rng);  // (n, k)
  const tensor::Tensor b = tensor::Transpose2D(bt);                // (k, n)
  tensor::PackedB from_t;
  tensor::PackBTransposedInto(bt.data().data(), b.dim(0), b.dim(1), from_t);
  const tensor::PackedB direct = tensor::PackB(b);
  ASSERT_EQ(from_t.data.size(), direct.data.size());
  for (std::size_t i = 0; i < direct.data.size(); ++i) {
    ASSERT_EQ(from_t.data[i], direct.data[i]) << "panel element " << i;
  }
}

TEST(PackedGemm, ThreadedIsBitIdenticalToSingleThread) {
  // Above the default PREDTOP_GEMM_PAR_MIN_ELEMS threshold so the threaded
  // path actually engages (when more than one hardware thread exists).
  const std::int64_t m = 600, k = 64, n = 128;
  util::Rng rng(13);
  const tensor::Tensor a = tensor::Tensor::Randn({m, k}, rng);
  const tensor::PackedB b = tensor::PackB(tensor::Tensor::Randn({k, n}, rng));
  const tensor::Tensor single = tensor::MatMulPacked(a, b, /*allow_threads=*/false);
  const tensor::Tensor threaded = tensor::MatMulPacked(a, b, /*allow_threads=*/true);
  for (std::int64_t i = 0; i < single.numel(); ++i) {
    ASSERT_EQ(single.data()[i], threaded.data()[i]) << "element " << i;
  }
}

TEST(PackedGemm, WideTileIsBitIdenticalToNarrowTile) {
  // The 12x16 single-vector tile and the historical 6x16 two-vector tile must
  // agree bit-for-bit in every precision tier: each output lane accumulates in
  // ascending-k order regardless of tile shape, and the compiled-program
  // parity contract (<= 1e-6 vs the tape) depends on that.
  const bool wide_before = tensor::GemmWideTiles();
  const struct { std::int64_t m, k, n; } shapes[] = {
      {1, 16, 16}, {6, 16, 16}, {7, 33, 16}, {12, 17, 40}, {13, 20, 100}, {61, 47, 129},
  };
  util::Rng rng(17);
  for (const auto& s : shapes) {
    const tensor::Tensor a = tensor::Tensor::Randn({s.m, s.k}, rng);
    const tensor::Tensor b = tensor::Tensor::Randn({s.k, s.n}, rng);
    const tensor::PackedB bp = tensor::PackB(b);
    tensor::PackedB16 b16;
    tensor::PackB16Into(b.data().data(), s.k, s.n, b16);
    tensor::PackedB8 b8;
    tensor::PackB8Into(b.data().data(), s.k, s.n, b8);
    std::vector<float> wide_f(s.m * s.n), narrow_f(s.m * s.n);
    std::vector<float> wide_16(s.m * s.n), narrow_16(s.m * s.n);
    std::vector<float> wide_8(s.m * s.n), narrow_8(s.m * s.n);
    tensor::SetGemmWideTiles(true);
    tensor::MatMulPackedInto(a.data().data(), s.m, bp, wide_f.data());
    tensor::MatMulPackedB16Into(a.data().data(), s.m, b16, wide_16.data());
    tensor::MatMulPackedB8Into(a.data().data(), s.m, b8, wide_8.data());
    tensor::SetGemmWideTiles(false);
    tensor::MatMulPackedInto(a.data().data(), s.m, bp, narrow_f.data());
    tensor::MatMulPackedB16Into(a.data().data(), s.m, b16, narrow_16.data());
    tensor::MatMulPackedB8Into(a.data().data(), s.m, b8, narrow_8.data());
    tensor::SetGemmWideTiles(wide_before);
    for (std::int64_t i = 0; i < s.m * s.n; ++i) {
      ASSERT_EQ(wide_f[i], narrow_f[i]) << "fp32 element " << i;
      ASSERT_EQ(wide_16[i], narrow_16[i]) << "bf16 element " << i;
      ASSERT_EQ(wide_8[i], narrow_8[i]) << "int8 element " << i;
    }
  }
}

TEST(PackedGemm, DispatchPredicatesMatchDocumentedShapeFloor) {
  EXPECT_FALSE(tensor::UsePackedGemm(6, 8, 8));     // n below one panel
  EXPECT_FALSE(tensor::UsePackedGemm(6, 4, 64));    // k too small
  EXPECT_FALSE(tensor::UsePackedGemm(2, 64, 64));   // m below one row block
  EXPECT_FALSE(tensor::UsePackedGemm(16, 16, 16));  // under the work floor
  EXPECT_TRUE(tensor::UsePackedGemm(64, 64, 64));
}

// ---- arena ----

TEST(Arena, AllocationsAreAlignedAndReset) {
  tensor::Arena arena;
  const tensor::MatRef a = arena.Alloc(3, 5);
  const tensor::MatRef b = arena.AllocZeroed(2, 7);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a.data) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data) % 64, 0u);
  for (std::int64_t i = 0; i < b.rows * b.cols; ++i) EXPECT_EQ(b.data[i], 0.0f);
  arena.Reset();
  const tensor::MatRef c = arena.Alloc(3, 5);
  EXPECT_EQ(c.data, a.data);  // bump pointer rewound
}

TEST(Arena, OverflowCoalescesOnReset) {
  tensor::Arena arena;
  const std::int64_t big = static_cast<std::int64_t>(arena.CapacityFloats()) + 1000;
  (void)arena.AllocFloats(big);  // spills into a second block
  (void)arena.AllocFloats(big);
  const std::int64_t epoch = arena.EpochFloats();
  EXPECT_GE(epoch, 2 * big);
  arena.Reset();
  EXPECT_EQ(arena.EpochFloats(), 0);
  EXPECT_GE(arena.CapacityFloats(), epoch);  // one block now fits the epoch
  (void)arena.AllocFloats(2 * big);          // no further growth needed
  EXPECT_EQ(arena.EpochFloats(), 2 * big);
}

// ---- predictor parity ----

ir::Gpt3Config TinyGptConfig() {
  ir::Gpt3Config config;
  config.seq_len = 64;
  config.hidden = 64;
  config.num_layers = 4;
  config.num_heads = 4;
  config.vocab = 512;
  config.microbatch = 2;
  return config;
}

PredictorOptions TinyOptions() {
  PredictorOptions options;
  options.feature_dim = StageFeatureDim();
  options.dagt_dim = 16;
  options.dagt_layers = 2;
  options.dagt_heads = 2;
  options.gcn_dim = 32;
  options.gcn_layers = 3;
  options.gat_dim = 16;
  options.gat_layers = 3;
  return options;
}

graph::EncodedGraph TinyEncodedStage(std::int32_t first = 1, std::int32_t last = 2) {
  return EncodeStage(ir::BuildGpt3Stage(TinyGptConfig(), {first, last}));
}

constexpr PredictorKind kAllKinds[] = {PredictorKind::kDagTransformer, PredictorKind::kGcn,
                                       PredictorKind::kGat};

void ExpectParity(StagePredictor& model, const graph::EncodedGraph& g) {
  const float tape = model.Forward(g).value().data()[0];
  const float fast = model.InferScalar(g, nn::ThreadLocalInferenceContext());
  ASSERT_TRUE(std::isfinite(fast)) << model.Name();
  EXPECT_LE(std::abs(fast - tape), 1e-6f * std::max(1.0f, std::abs(tape)))
      << model.Name() << ": tape=" << tape << " fast=" << fast;
}

TEST(InferParity, FreshModelMatchesTape) {
  const graph::EncodedGraph g = TinyEncodedStage();
  for (const PredictorKind kind : kAllKinds) {
    auto model = MakePredictor(kind, TinyOptions());
    ExpectParity(*model, g);
  }
}

TEST(InferParity, DagTransformerAblationsMatchTape) {
  const graph::EncodedGraph g = TinyEncodedStage();
  for (const bool use_dagra : {true, false}) {
    for (const bool use_dagpe : {true, false}) {
      PredictorOptions options = TinyOptions();
      options.use_dagra = use_dagra;
      options.use_dagpe = use_dagpe;
      auto model = MakePredictor(PredictorKind::kDagTransformer, options);
      ExpectParity(*model, g);
    }
  }
}

TEST(InferParity, MatchesTapeAfterOptimizerStep) {
  const graph::EncodedGraph g = TinyEncodedStage();
  for (const PredictorKind kind : kAllKinds) {
    auto model = MakePredictor(kind, TinyOptions());
    // Warm the packed-weight caches, then mutate the parameters: the epoch
    // bump inside Adam::Step must invalidate every cached pack.
    (void)model->InferScalar(g, nn::ThreadLocalInferenceContext());
    const float before = model->Forward(g).value().data()[0];
    nn::Adam adam(*model);
    model->ZeroGrad();
    autograd::Backward(model->Forward(g));
    adam.Step(0.05f);
    const float after = model->Forward(g).value().data()[0];
    ASSERT_NE(before, after) << model->Name() << ": step did not move the output";
    ExpectParity(*model, g);
  }
}

TEST(InferParity, MatchesTapeAfterStateDictLoad) {
  const graph::EncodedGraph g = TinyEncodedStage();
  for (const PredictorKind kind : kAllKinds) {
    PredictorOptions options = TinyOptions();
    auto source = MakePredictor(kind, options);
    options.seed = 0x999ULL;  // different init so the load visibly changes B
    auto target = MakePredictor(kind, options);
    // Populate target's caches with its own (soon stale) weights first.
    (void)target->InferScalar(g, nn::ThreadLocalInferenceContext());
    std::stringstream buffer;
    nn::WriteStateDict(buffer, *source);
    nn::ReadStateDict(buffer, *target);
    ExpectParity(*target, g);
    const float from_source = source->Forward(g).value().data()[0];
    const float from_target = target->InferScalar(g, nn::ThreadLocalInferenceContext());
    EXPECT_LE(std::abs(from_source - from_target),
              1e-6f * std::max(1.0f, std::abs(from_source)))
        << PredictorKindName(kind);
  }
}

TEST(InferParity, RegressorFastPathMatchesTapePath) {
  const graph::EncodedGraph g = TinyEncodedStage();
  for (const PredictorKind kind : kAllKinds) {
    LatencyRegressor regressor(kind, TinyOptions());
    const double tape = regressor.PredictSecondsTape(g);
    const double fast = regressor.PredictSeconds(g);
    EXPECT_LE(std::abs(fast - tape), 1e-6 * std::max(1.0, std::abs(tape)));
    const std::vector<graph::EncodedGraph> graphs{g, g};
    const std::vector<double> batch = regressor.PredictBatch(graphs);
    ASSERT_EQ(batch.size(), 2u);
    EXPECT_EQ(batch[0], fast);
    EXPECT_EQ(batch[1], fast);
  }
}

// ---- fingerprint caching ----

TEST(InferParity, EncodeGraphCachesFingerprint) {
  graph::EncodedGraph g = TinyEncodedStage();
  EXPECT_NE(g.fingerprint, 0u);
  const std::uint64_t cached = graph::EncodedGraphFingerprint(g);
  EXPECT_EQ(cached, g.fingerprint);
  g.fingerprint = 0;  // force recompute: must agree with the cached value
  EXPECT_EQ(graph::EncodedGraphFingerprint(g), cached);
}

// ---- deferred softmax masked retry (regression) ----

TEST(InferKernels, RowSoftmaxDeferredMaskedRetryHasNoNaN) {
  nn::InferenceContext& ctx = nn::ThreadLocalInferenceContext();
  ctx.BeginForward();
  const float inf = std::numeric_limits<float>::infinity();
  tensor::Tensor logits = tensor::Tensor::Zeros({3, 4});
  tensor::Tensor mask = tensor::Tensor::Zeros({3, 4});
  // Row 0: an overflowed +inf logit sits under a -inf mask lane. The shift
  // max (taken over *unmasked* logits) is +inf, so every open lane's exp
  // underflows to zero and the row takes the retry path; a retry that adds
  // the mask to the logits turns this lane into inf + -inf = NaN.
  logits.data()[0] = inf;
  mask.data()[0] = -inf;
  // Row 1: fully masked.
  for (int j = 0; j < 4; ++j) mask.data()[4 + j] = -inf;
  // Row 2: ordinary open row.
  for (int j = 0; j < 4; ++j) logits.data()[8 + j] = static_cast<float>(j);
  const nn::infer::DeferredSoftmax soft =
      nn::infer::RowSoftmaxDeferred(ctx, nn::infer::View(logits), &mask);
  for (std::int64_t i = 0; i < 12; ++i) {
    ASSERT_TRUE(std::isfinite(soft.weights.data[i])) << "weight " << i;
  }
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(std::isfinite(soft.inv_sum.data[i])) << "row " << i;
  // Row 0 renormalizes over its three open lanes.
  EXPECT_EQ(soft.weights.data[0], 0.0f);  // the masked lane contributes nothing
  for (int j = 1; j < 4; ++j) {
    EXPECT_FLOAT_EQ(soft.weights.data[j] * soft.inv_sum.data[0], 1.0f / 3.0f);
  }
  // Row 1 is fully masked: all-zero weights with inv_sum exactly 0.
  EXPECT_EQ(soft.inv_sum.data[1], 0.0f);
  for (int j = 0; j < 4; ++j) EXPECT_EQ(soft.weights.data[4 + j], 0.0f);
  // Row 2 behaves like an ordinary softmax row.
  float total = 0.0f;
  for (int j = 0; j < 4; ++j) total += soft.weights.data[8 + j] * soft.inv_sum.data[2];
  EXPECT_NEAR(total, 1.0f, 1e-6f);
}

// ---- concurrency (exercised under TSan via ci/run.sh tsan) ----

TEST(InferConcurrency, SharedModelConcurrentInferScalarIsStable) {
  // Distinct graphs stress the DAG Transformer's fingerprint-keyed
  // positional-encoding cache from many threads at once.
  const std::vector<graph::EncodedGraph> graphs{
      TinyEncodedStage(0, 1), TinyEncodedStage(1, 2), TinyEncodedStage(2, 3),
      TinyEncodedStage(0, 3)};
  auto model = MakePredictor(PredictorKind::kDagTransformer, TinyOptions());
  std::vector<float> expected;
  for (const auto& g : graphs) {
    expected.push_back(model->InferScalar(g, nn::ThreadLocalInferenceContext()));
  }
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      nn::InferenceContext ctx;  // one arena per thread, as in serving
      for (int iter = 0; iter < 25; ++iter) {
        const std::size_t i = static_cast<std::size_t>(t + iter) % graphs.size();
        if (model->InferScalar(graphs[i], ctx) != expected[i]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace predtop::core

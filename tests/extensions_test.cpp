// Tests for the extension modules: the discrete-event 1F1B pipeline
// executor (cross-validating Eqn. 4), checkpoint serialization, the jaxpr
// printer, liveness analysis, DOT export, the analytical baseline and the
// Wide-ResNet benchmark builder.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/analytical.h"
#include "core/dataset.h"
#include "core/regressor.h"
#include "graph/dot.h"
#include "ir/liveness.h"
#include "ir/printer.h"
#include "ir/resnet.h"
#include "ir/to_dag.h"
#include "nn/serialize.h"
#include "nn/trainer.h"
#include "parallel/pipeline_executor.h"
#include "parallel/pipeline_model.h"
#include "util/stats.h"

namespace predtop {
namespace {

// ---- pipeline executor vs Eqn. 4 ----

TEST(PipelineExecutor, MatchesEqn4ForConstantTimes) {
  util::Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const auto stages = static_cast<std::size_t>(1 + rng.NextBelow(6));
    const auto microbatches = static_cast<std::int32_t>(1 + rng.NextBelow(12));
    std::vector<double> times;
    for (std::size_t s = 0; s < stages; ++s) times.push_back(rng.Uniform(0.1, 2.0));
    const double closed_form = parallel::PipelineLatency(times, microbatches);
    const double simulated = parallel::ExecutePipelineMakespan(times, microbatches);
    EXPECT_NEAR(simulated, closed_form, 1e-9 * closed_form)
        << stages << " stages, " << microbatches << " microbatches";
  }
}

TEST(PipelineExecutor, TraceIntervalsRespectDependencies) {
  const std::vector<double> times{1.0, 2.0, 1.0};
  const parallel::PipelineTrace trace = parallel::ExecutePipeline(times, 3);
  ASSERT_EQ(trace.NumStages(), 3u);
  ASSERT_EQ(trace.NumMicrobatches(), 3u);
  for (std::size_t s = 0; s < 3; ++s) {
    for (std::size_t m = 0; m < 3; ++m) {
      const auto& iv = trace.intervals[s][m];
      EXPECT_LT(iv.start_s, iv.end_s);
      if (m > 0) {
        EXPECT_GE(iv.start_s, trace.intervals[s][m - 1].end_s - 1e-12);
      }
      if (s > 0) {
        EXPECT_GE(iv.start_s, trace.intervals[s - 1][m].end_s - 1e-12);
      }
    }
  }
  EXPECT_DOUBLE_EQ(trace.makespan_s, parallel::PipelineLatency(times, 3));
}

TEST(PipelineExecutor, MakespanRespectsLowerBounds) {
  // Flow-shop bounds: the makespan is at least each stage's total work and
  // at least the chain through the first and last microbatches.
  util::Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t stages = 2 + rng.NextBelow(4);
    const std::size_t microbatches = 2 + rng.NextBelow(6);
    std::vector<std::vector<double>> times(stages, std::vector<double>(microbatches));
    for (auto& row : times) {
      for (double& t : row) t = rng.Uniform(0.1, 2.0);
    }
    const double makespan = parallel::ExecutePipeline(times).makespan_s;
    for (const auto& row : times) {
      double stage_total = 0.0;
      for (const double t : row) stage_total += t;
      EXPECT_GE(makespan, stage_total - 1e-12);
    }
    double first_chain = 0.0, last_chain = 0.0;
    for (std::size_t s = 0; s < stages; ++s) {
      first_chain += times[s][0];
      last_chain += times[s][microbatches - 1];
    }
    EXPECT_GE(makespan, first_chain - 1e-12);
    EXPECT_GE(makespan, last_chain - 1e-12);
  }
}

TEST(PipelineExecutor, BubbleAccountingIsConsistent) {
  const std::vector<double> times{1.0, 3.0};
  const parallel::PipelineTrace trace = parallel::ExecutePipeline(times, 4);
  // Total stage-time + bubbles == stages * makespan.
  double busy = 0.0;
  for (const auto& stage : trace.intervals) {
    for (const auto& iv : stage) busy += iv.end_s - iv.start_s;
  }
  EXPECT_NEAR(busy + trace.BubbleSeconds(),
              static_cast<double>(trace.NumStages()) * trace.makespan_s, 1e-9);
}

TEST(PipelineExecutor, RejectsBadInput) {
  EXPECT_THROW(parallel::ExecutePipeline({{1.0, 2.0}, {1.0}}), std::invalid_argument);
  EXPECT_THROW(parallel::ExecutePipeline({{-1.0}}), std::invalid_argument);
}

// ---- serialization ----

ir::Gpt3Config TinyGpt() {
  ir::Gpt3Config c;
  c.seq_len = 64;
  c.hidden = 64;
  c.num_layers = 4;
  c.num_heads = 4;
  c.vocab = 512;
  c.microbatch = 2;
  return c;
}

core::PredictorOptions TinyOptions() {
  core::PredictorOptions o;
  o.feature_dim = core::StageFeatureDim();
  o.dagt_dim = 16;
  o.dagt_layers = 2;
  o.dagt_heads = 2;
  o.gcn_dim = 32;
  o.gcn_layers = 3;
  return o;
}

TEST(Serialize, TensorRoundTrip) {
  util::Rng rng(2);
  const tensor::Tensor t = tensor::Tensor::Randn({3, 5}, rng);
  std::stringstream buffer;
  nn::WriteTensor(buffer, t);
  const tensor::Tensor back = nn::ReadTensor(buffer);
  EXPECT_EQ(tensor::MaxAbsDiff(t, back), 0.0f);
}

TEST(Serialize, ModuleParametersRoundTrip) {
  util::Rng rng(3);
  nn::Mlp a({4, 8, 1}, rng);
  nn::Mlp b({4, 8, 1}, rng);  // different weights (rng advanced)
  std::stringstream buffer;
  nn::WriteParameters(buffer, a);
  nn::ReadParameters(buffer, b);
  auto pa = a.Parameters();
  auto pb = b.Parameters();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(tensor::MaxAbsDiff(pa[i]->value(), pb[i]->value()), 0.0f);
  }
}

TEST(Serialize, ShapeMismatchRejected) {
  util::Rng rng(4);
  nn::Mlp a({4, 8, 1}, rng);
  nn::Mlp wrong({4, 9, 1}, rng);
  std::stringstream buffer;
  nn::WriteParameters(buffer, a);
  EXPECT_THROW(nn::ReadParameters(buffer, wrong), std::invalid_argument);
}

TEST(Serialize, RegressorCheckpointRoundTrip) {
  // Train briefly, save, load, and require identical predictions.
  const auto benchmark = core::Gpt3Benchmark(TinyGpt());
  const parallel::IntraOpCompiler compiler(sim::Platform1(), sim::Mesh{1, 2});
  sim::Profiler profiler({}, 5);
  core::DatasetBuildConfig build;
  const core::StageDataset dataset =
      core::BuildStageDataset(benchmark, compiler, {2, 1, 1}, profiler, build);
  core::LatencyRegressor trained(core::PredictorKind::kDagTransformer, TinyOptions());
  nn::TrainConfig train;
  train.max_epochs = 20;
  train.patience = 20;
  std::vector<std::size_t> all(dataset.Size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  trained.Fit(dataset, all, all, train);

  const std::string path =
      (std::filesystem::temp_directory_path() / "predtop_ckpt_test.bin").string();
  trained.Save(path);
  core::LatencyRegressor loaded = core::LatencyRegressor::Load(path);
  std::remove(path.c_str());

  EXPECT_EQ(loaded.Kind(), trained.Kind());
  EXPECT_EQ(loaded.Transform(), trained.Transform());
  for (const auto& sample : dataset.samples) {
    EXPECT_DOUBLE_EQ(loaded.PredictSeconds(sample.encoded),
                     trained.PredictSeconds(sample.encoded));
  }
}

TEST(Serialize, LoadRejectsGarbage) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "predtop_garbage_test.bin").string();
  std::ofstream(path) << "not a checkpoint";
  EXPECT_THROW(core::LatencyRegressor::Load(path), std::runtime_error);
  std::remove(path.c_str());
}

// ---- printer ----

TEST(Printer, RendersEquationsAndBoundaries) {
  ir::StageProgram p;
  const auto x = p.AddInput({ir::DType::kF16, {2, 3}});
  const auto w = p.AddLiteral({ir::DType::kF16, {3, 4}});
  const auto y = p.AddEquation(ir::OpType::kDot, {x, w}, {ir::DType::kF16, {2, 4}}, 3);
  p.MarkOutput(y);
  const std::string text = ir::PrintProgram(p);
  EXPECT_NE(text.find("lambda"), std::string::npos);
  EXPECT_NE(text.find("v0:f16[2,3]"), std::string::npos);
  EXPECT_NE(text.find("= dot v0 v1"), std::string::npos);
  EXPECT_NE(text.find("{k=3}"), std::string::npos);
  EXPECT_NE(text.find("in (v2,)"), std::string::npos);
}

TEST(Printer, TruncatesLongPrograms) {
  const auto stage = ir::BuildGpt3Stage(TinyGpt(), {0, 4});
  const std::string text = ir::PrintProgram(stage, 5);
  EXPECT_NE(text.find("more equations"), std::string::npos);
}

// ---- liveness ----

TEST(Liveness, IntervalsCoverDefsAndUses) {
  ir::StageProgram p;
  const auto x = p.AddInput({ir::DType::kF32, {4}});
  const auto a = p.AddEquation(ir::OpType::kExp, {x}, {ir::DType::kF32, {4}});    // eqn 0
  const auto b = p.AddEquation(ir::OpType::kTanh, {a}, {ir::DType::kF32, {4}});   // eqn 1
  const auto c = p.AddEquation(ir::OpType::kAdd, {a, b}, {ir::DType::kF32, {4}}); // eqn 2
  p.MarkOutput(c);
  const auto intervals = ir::ComputeLiveIntervals(p);
  EXPECT_EQ(intervals[static_cast<std::size_t>(x)].def, -1);
  EXPECT_EQ(intervals[static_cast<std::size_t>(x)].last_use, 0);
  EXPECT_EQ(intervals[static_cast<std::size_t>(a)].def, 0);
  EXPECT_EQ(intervals[static_cast<std::size_t>(a)].last_use, 2);  // used by eqn 2
  EXPECT_EQ(intervals[static_cast<std::size_t>(c)].last_use, 2);  // output stays live
}

TEST(Liveness, PeakBytesBoundedBySumAndAboveMax) {
  const auto stage = ir::BuildGpt3Stage(TinyGpt(), {1, 3});
  const std::int64_t peak = ir::PeakActivationBytes(stage);
  std::int64_t max_single = 0;
  std::int64_t total = 0;
  for (const auto& eqn : stage.equations()) {
    const std::int64_t bytes = stage.value(eqn.result).spec.Bytes();
    max_single = std::max(max_single, bytes);
    total += bytes;
  }
  EXPECT_GE(peak, max_single);
  EXPECT_LT(peak, total);  // liveness frees dead intermediates
}

TEST(Liveness, EmptyProgramIsZero) {
  const ir::StageProgram p;
  EXPECT_EQ(ir::PeakActivationBytes(p), 0);
}

// ---- DOT export ----

TEST(Dot, EmitsNodesAndEdges) {
  graph::OpDag dag;
  const auto a = dag.AddNode({graph::NodeKind::kInput, 0, 0, {1, 1, 1, 1}});
  const auto b = dag.AddNode({graph::NodeKind::kOperator, 3, 1, {1, 1, 2, 2}});
  dag.AddEdge(a, b);
  const std::string dot = graph::ToDot(dag, "test");
  EXPECT_NE(dot.find("digraph \"test\""), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("shape=invhouse"), std::string::npos);  // input marker
}

TEST(Dot, CustomLabels) {
  graph::OpDag dag;
  dag.AddNode({});
  const std::string dot =
      graph::ToDot(dag, "g", [](std::int32_t, const graph::DagNode&) { return "CUSTOM"; });
  EXPECT_NE(dot.find("CUSTOM"), std::string::npos);
}

// ---- analytical baseline ----

TEST(Analytical, ScalesWithStageSizeAndDevices) {
  const core::AnalyticalEstimator one(sim::Platform1().device, {1, 1, 1});
  const core::AnalyticalEstimator two(sim::Platform1().device, {2, 1, 1});
  const auto small = ir::BuildGpt3Stage(TinyGpt(), {1, 2});
  const auto large = ir::BuildGpt3Stage(TinyGpt(), {0, 4});
  EXPECT_LT(one.EstimateStageSeconds(small), one.EstimateStageSeconds(large));
  EXPECT_NEAR(two.EstimateStageSeconds(small), one.EstimateStageSeconds(small) / 2.0, 1e-12);
}

TEST(Analytical, IsBiasedAgainstSimulatedTruth) {
  // The analytical model ignores fusion/quirks/scheduling, so its relative
  // error against the simulator ground truth is substantial — the motivation
  // for black-box stage prediction (paper §II-B).
  const auto benchmark = core::Gpt3Benchmark(TinyGpt());
  const parallel::IntraOpCompiler compiler(sim::Platform1(), sim::Mesh{1, 1});
  const core::AnalyticalEstimator analytical(sim::Platform1().device, {1, 1, 1});
  std::vector<double> predicted, actual;
  for (std::int32_t first = 0; first < 4; ++first) {
    const auto program = benchmark.build_stage({first, static_cast<std::int32_t>(first + 1)});
    predicted.push_back(analytical.EstimateStageSeconds(program));
    actual.push_back(compiler.Compile(program, {1, 1, 1}).latency_s);
  }
  EXPECT_GT(util::MeanRelativeErrorPct(predicted, actual), 10.0);
}

// ---- Wide-ResNet builder ----

TEST(WideResNet, StageStructure) {
  ir::WideResNetConfig config;
  const auto stage = ir::BuildWideResNetStage(config, {0, 12});
  EXPECT_TRUE(stage.has_embedding);
  EXPECT_TRUE(stage.has_lm_head);
  bool has_conv = false;
  for (const auto& eqn : stage.equations()) {
    has_conv = has_conv || eqn.op == ir::OpType::kConv2d;
  }
  EXPECT_TRUE(has_conv);
  EXPECT_EQ(stage.outputs().size(), 1u);
  const auto dag = ir::BuildPrunedOpDag(stage);
  EXPECT_TRUE(dag.IsAcyclic());
}

TEST(WideResNet, ChannelsWidenAndSpatialShrinks) {
  ir::WideResNetConfig config;
  // Later stages have more FLOPs per block only until downsampling balances
  // them; just verify both slices build and differ.
  const auto early = ir::BuildWideResNetStage(config, {0, 4});
  const auto late = ir::BuildWideResNetStage(config, {8, 12});
  EXPECT_NE(ir::TotalFlops(early), ir::TotalFlops(late));
  EXPECT_GT(late.LiteralBytes(), early.LiteralBytes());  // wider channels
}

TEST(WideResNet, RejectsInvalidSlices) {
  ir::WideResNetConfig config;
  EXPECT_THROW(ir::BuildWideResNetStage(config, {5, 5}), std::invalid_argument);
  EXPECT_THROW(ir::BuildWideResNetStage(config, {0, 13}), std::invalid_argument);
}

TEST(WideResNet, CompilesAndEncodesLikeOtherBenchmarks) {
  ir::WideResNetConfig config;
  const auto stage = ir::BuildWideResNetStage(config, {2, 6});
  const parallel::IntraOpCompiler compiler(sim::Platform1(), sim::Mesh{1, 2});
  const parallel::StagePlan plan = compiler.Compile(stage, {2, 1, 1});
  EXPECT_TRUE(plan.Valid());
  EXPECT_GT(plan.latency_s, 0.0);
  const graph::EncodedGraph encoded = core::EncodeStage(stage);
  EXPECT_GT(encoded.num_nodes, 20);
  EXPECT_EQ(encoded.features.dim(1), core::StageFeatureDim());
}

}  // namespace
}  // namespace predtop

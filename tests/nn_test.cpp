// Tests for NN layers, optimizer, schedule and the trainer: shape checks,
// end-to-end gradient checks through whole layers, optimization convergence
// on toy problems, and the early-stopping protocol.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <set>

#include "autograd/functions.h"
#include "fault/injector.h"
#include "nn/attention.h"
#include "nn/dag_transformer.h"
#include "nn/gat.h"
#include "nn/gcn.h"
#include "nn/linear.h"
#include "nn/optimizer.h"
#include "nn/trainer.h"
#include "tensor/sparse.h"

namespace predtop::nn {
namespace {

using autograd::Variable;
using tensor::Csr;
using tensor::Tensor;
using util::Rng;

/// Whole-module gradient check: compares each parameter's analytic gradient
/// against central differences of a scalar loss.
void CheckModuleGradients(Module& module, const std::function<Variable()>& loss_fn,
                          float eps = 1e-2f, float tolerance = 5e-2f) {
  module.ZeroGrad();
  Variable loss = loss_fn();
  ASSERT_EQ(loss.value().numel(), 1);
  autograd::Backward(loss);
  auto params = module.Parameters();
  for (std::size_t p = 0; p < params.size(); ++p) {
    const Tensor analytic = params[p]->grad();
    // Spot-check a few elements of each parameter to keep runtime bounded.
    const std::int64_t count = std::min<std::int64_t>(3, analytic.numel());
    for (std::int64_t e = 0; e < count; ++e) {
      const std::int64_t i = e * std::max<std::int64_t>(1, analytic.numel() / count);
      float& slot = params[p]->mutable_value().data()[static_cast<std::size_t>(i)];
      const float saved = slot;
      slot = saved + eps;
      const double up = loss_fn().value().data()[0];
      slot = saved - eps;
      const double down = loss_fn().value().data()[0];
      slot = saved;
      const double numeric = (up - down) / (2.0 * eps);
      const double a = analytic.data()[static_cast<std::size_t>(i)];
      EXPECT_NEAR(a, numeric, tolerance * std::max(1.0, std::fabs(numeric)))
          << "param " << p << " elem " << i;
    }
  }
}

Variable ScalarLoss(const Variable& out) {
  return autograd::GlobalAddPool(autograd::Transpose(autograd::GlobalAddPool(out)));
}

TEST(Linear, ShapesAndBias) {
  Rng rng(1);
  const Linear layer(4, 3, rng);
  const Variable x(Tensor::Randn({5, 4}, rng));
  const Variable y = layer.Forward(x);
  EXPECT_EQ(y.value().dim(0), 5);
  EXPECT_EQ(y.value().dim(1), 3);
}

TEST(Linear, NoBiasVariantHasOneParameter) {
  Rng rng(2);
  Linear with(4, 3, rng, true);
  Linear without(4, 3, rng, false);
  EXPECT_EQ(with.Parameters().size(), 2u);
  EXPECT_EQ(without.Parameters().size(), 1u);
}

TEST(Linear, RejectsNonPositiveDims) {
  Rng rng(3);
  EXPECT_THROW(Linear(0, 3, rng), std::invalid_argument);
}

TEST(Linear, GradientsCheckOut) {
  Rng rng(4);
  Linear layer(3, 2, rng);
  const Variable x(Tensor::Randn({4, 3}, rng));
  CheckModuleGradients(layer, [&] { return ScalarLoss(layer.Forward(x)); });
}

TEST(Mlp, BuildsChainAndCounts) {
  Rng rng(5);
  Mlp mlp({8, 16, 4, 1}, rng);
  EXPECT_EQ(mlp.Parameters().size(), 6u);  // 3 layers x (W, b)
  EXPECT_EQ(mlp.ParameterCount(), 8u * 16 + 16 + 16 * 4 + 4 + 4 * 1 + 1);
  const Variable y = mlp.Forward(Variable(Tensor::Randn({2, 8}, rng)));
  EXPECT_EQ(y.value().dim(1), 1);
}

TEST(Attention, OutputShapeMatchesInput) {
  Rng rng(6);
  const MultiheadMaskedAttention attn(16, 4, rng);
  const Tensor mask({6, 6});
  const Variable y = attn.Forward(Variable(Tensor::Randn({6, 16}, rng)), mask);
  EXPECT_EQ(y.value().dim(0), 6);
  EXPECT_EQ(y.value().dim(1), 16);
}

TEST(Attention, DimMustDivideHeads) {
  Rng rng(7);
  EXPECT_THROW(MultiheadMaskedAttention(10, 4, rng), std::invalid_argument);
}

TEST(Attention, MaskedNodesDoNotInfluenceOutput) {
  // Node 0's output must be identical whether masked-out node 2's features
  // change or not.
  Rng rng(8);
  const MultiheadMaskedAttention attn(8, 2, rng);
  const float inf = std::numeric_limits<float>::infinity();
  Tensor mask({3, 3});
  // Nodes 0 and 1 cannot see node 2 (and vice versa), like a DAGRA mask
  // for a disconnected component.
  mask.at(0, 2) = -inf;
  mask.at(2, 0) = -inf;
  mask.at(1, 2) = -inf;
  mask.at(2, 1) = -inf;
  Tensor x = Tensor::Randn({3, 8}, rng);
  const Variable y1 = attn.Forward(Variable(x), mask);
  for (std::int64_t j = 0; j < 8; ++j) x.at(2, j) += 5.0f;  // perturb node 2
  const Variable y2 = attn.Forward(Variable(x), mask);
  for (std::int64_t j = 0; j < 8; ++j) {
    EXPECT_NEAR(y1.value().at(0, j), y2.value().at(0, j), 1e-5f);
    EXPECT_NEAR(y1.value().at(1, j), y2.value().at(1, j), 1e-5f);
  }
}

TEST(Attention, GradientsCheckOut) {
  Rng rng(9);
  MultiheadMaskedAttention attn(8, 2, rng);
  const float inf = std::numeric_limits<float>::infinity();
  Tensor mask({4, 4});
  mask.at(0, 3) = -inf;
  mask.at(3, 0) = -inf;
  const Variable x(Tensor::Randn({4, 8}, rng));
  CheckModuleGradients(attn, [&] { return ScalarLoss(attn.Forward(x, mask)); });
}

TEST(DagTransformerLayer, ShapeAndGradients) {
  Rng rng(10);
  DagTransformerLayer layer(8, 2, 2, rng);
  const Tensor mask({5, 5});
  const Variable x(Tensor::Randn({5, 8}, rng));
  const Variable y = layer.Forward(x, mask);
  EXPECT_EQ(y.value().dim(0), 5);
  EXPECT_EQ(y.value().dim(1), 8);
  CheckModuleGradients(layer, [&] { return ScalarLoss(layer.Forward(x, mask)); }, 1e-2f, 8e-2f);
}

TEST(GcnConv, MatchesManualComputation) {
  Rng rng(11);
  GcnConv conv(3, 2, rng);
  // Identity adjacency: output = X W + b exactly.
  auto eye = std::make_shared<Csr>(Csr::FromCoo(4, 4, {0, 1, 2, 3}, {0, 1, 2, 3},
                                                {1.0f, 1.0f, 1.0f, 1.0f}));
  const Variable x(Tensor::Randn({4, 3}, rng));
  const Variable y = conv.Forward(x, eye, eye);
  auto params = conv.Parameters();
  const Variable expected =
      autograd::AddRowVector(autograd::MatMul(x, *params[0]), *params[1]);
  EXPECT_LT(tensor::MaxAbsDiff(y.value(), expected.value()), 1e-5f);
}

TEST(GcnConv, GradientsCheckOut) {
  Rng rng(12);
  GcnConv conv(3, 2, rng);
  auto adj = std::make_shared<Csr>(
      Csr::FromCoo(3, 3, {0, 1, 2, 1}, {1, 0, 2, 2}, {0.5f, 0.5f, 1.0f, 0.3f}));
  auto adj_t = std::make_shared<Csr>(adj->Transposed());
  const Variable x(Tensor::Randn({3, 3}, rng));
  CheckModuleGradients(conv, [&] { return ScalarLoss(conv.Forward(x, adj, adj_t)); });
}

TEST(GatConv, AttentionWeightsAreConvex) {
  // With a single incoming edge plus self-loop, output is a convex blend:
  // verify the layer runs and produces finite values.
  Rng rng(13);
  const GatConv conv(4, 4, rng);
  const std::vector<std::int32_t> src{0, 1, 0, 1};
  const std::vector<std::int32_t> dst{1, 0, 0, 1};
  const Variable y = conv.Forward(Variable(Tensor::Randn({2, 4}, rng)), src, dst);
  EXPECT_EQ(y.value().dim(0), 2);
  for (const float v : y.value().data()) EXPECT_TRUE(std::isfinite(v));
}

TEST(GatConv, GradientsCheckOut) {
  Rng rng(14);
  GatConv conv(3, 2, rng);
  const std::vector<std::int32_t> src{0, 1, 2, 0, 1, 2};
  const std::vector<std::int32_t> dst{1, 2, 0, 0, 1, 2};
  const Variable x(Tensor::Randn({3, 3}, rng));
  CheckModuleGradients(conv, [&] { return ScalarLoss(conv.Forward(x, src, dst)); }, 1e-2f,
                       8e-2f);
}

TEST(GatConv, EdgeArrayLengthMismatchThrows) {
  Rng rng(15);
  const GatConv conv(3, 2, rng);
  EXPECT_THROW(conv.Forward(Variable(Tensor::Randn({3, 3}, rng)), {0, 1}, {1}),
               std::invalid_argument);
}

// ---- optimizer / schedule ----

TEST(Adam, ConvergesOnQuadratic) {
  // Minimize ||x - target||^2 for a single parameter tensor.
  class OneParam : public Module {
   public:
    explicit OneParam(Tensor init) : p_(std::move(init), true) {}
    std::vector<Variable*> Parameters() override { return {&p_}; }
    Variable p_;
  };
  Rng rng(16);
  OneParam model(Tensor::Randn({1, 1}, rng, 3.0f));
  Adam adam(model);
  for (int step = 0; step < 600; ++step) {
    model.ZeroGrad();
    Variable loss = autograd::SquaredError(model.p_, 1.5f);
    autograd::Backward(loss);
    adam.Step(0.05f);
  }
  EXPECT_NEAR(model.p_.value().data()[0], 1.5f, 1e-2f);
}

TEST(Adam, RefusesNonFiniteGradientsBeforeTouchingState) {
  class OneParam : public Module {
   public:
    explicit OneParam(Tensor init) : p_(std::move(init), true) {}
    std::vector<Variable*> Parameters() override { return {&p_}; }
    Variable p_;
  };
  OneParam model(Tensor({1, 2}, 1.0f));
  Adam adam(model);

  Tensor poisoned({1, 2}, 0.5f);
  poisoned[1] = std::numeric_limits<float>::quiet_NaN();
  model.p_.SetGrad(poisoned);
  EXPECT_FALSE(adam.Step(0.1f));
  EXPECT_EQ(adam.StepCount(), 0);  // t_ untouched: bias correction unharmed
  EXPECT_FLOAT_EQ(model.p_.value()[0], 1.0f);
  EXPECT_FLOAT_EQ(model.p_.value()[1], 1.0f);

  Tensor inf_grad({1, 2}, 0.5f);
  inf_grad[0] = std::numeric_limits<float>::infinity();
  model.p_.SetGrad(inf_grad);
  EXPECT_FALSE(adam.Step(0.1f));

  // A finite gradient after the poisoned ones must behave as step #1: the
  // refused steps left the moment buffers exactly zero.
  model.p_.SetGrad(Tensor({1, 2}, 0.5f));
  EXPECT_TRUE(adam.Step(0.1f));
  EXPECT_EQ(adam.StepCount(), 1);
  // First Adam step moves by ~lr * sign(g) regardless of magnitude.
  EXPECT_NEAR(model.p_.value()[0], 1.0f - 0.1f, 1e-5f);
  EXPECT_NEAR(model.p_.value()[1], 1.0f - 0.1f, 1e-5f);
}

TEST(CosineDecay, EndpointsAndMonotonicity) {
  EXPECT_FLOAT_EQ(CosineDecayLr(1e-3f, 0, 500), 1e-3f);
  EXPECT_NEAR(CosineDecayLr(1e-3f, 499, 500), 0.0f, 1e-8f);
  float prev = 2.0f;
  for (int e = 0; e < 500; e += 25) {
    const float lr = CosineDecayLr(1e-3f, e, 500);
    EXPECT_LT(lr, prev);
    prev = lr;
  }
}

TEST(CosineDecay, PinsFirstMidpointAndFinalEpoch) {
  // Regression for the off-by-one denominator: with 101 epochs the schedule
  // must hit base at epoch 0, exactly half at the midpoint (epoch 50), and
  // ~0 at the FINAL epoch (100) — not one epoch past the end.
  const float base = 1e-3f;
  EXPECT_FLOAT_EQ(CosineDecayLr(base, 0, 101), base);
  EXPECT_NEAR(CosineDecayLr(base, 50, 101), 0.5f * base, 1e-9f);
  EXPECT_NEAR(CosineDecayLr(base, 100, 101), 0.0f, 1e-9f);
  // The buggy total-epochs denominator left the last epoch visibly above 0.
  EXPECT_LT(CosineDecayLr(base, 100, 101), 1e-6f);
}

// ---- trainer ----

/// Tiny regression problem: predict sum of 2 inputs with an MLP.
struct ToyProblem {
  std::vector<Tensor> inputs;
  std::vector<float> targets;
  ToyProblem(std::size_t n, Rng& rng) {
    for (std::size_t i = 0; i < n; ++i) {
      Tensor x = Tensor::Randn({1, 2}, rng);
      targets.push_back(x[0] + x[1]);
      inputs.push_back(std::move(x));
    }
  }
};

TEST(Trainer, LearnsToyRegression) {
  Rng rng(17);
  const ToyProblem problem(64, rng);
  Mlp mlp({2, 16, 1}, rng);
  TrainConfig config;
  config.max_epochs = 150;
  config.patience = 150;
  config.base_lr = 5e-3f;
  config.batch_size = 16;
  const Trainer trainer(config);
  std::vector<std::size_t> train_idx, val_idx;
  for (std::size_t i = 0; i < 64; ++i) (i < 52 ? train_idx : val_idx).push_back(i);
  const auto forward = [&](std::size_t i) { return mlp.Forward(Variable(problem.inputs[i])); };
  const TrainResult result = trainer.Fit(mlp, forward, problem.targets, train_idx, val_idx);
  EXPECT_GT(result.epochs_run, 10);
  EXPECT_LT(result.best_val_loss, 0.15);
  EXPECT_LT(result.train_loss_history.back(), result.train_loss_history.front());
}

TEST(Trainer, EarlyStoppingRestoresBestWeights) {
  Rng rng(18);
  const ToyProblem problem(32, rng);
  Mlp mlp({2, 8, 1}, rng);
  TrainConfig config;
  config.max_epochs = 400;
  config.patience = 10;  // aggressive: will trigger early stopping
  config.base_lr = 2e-2f;
  const Trainer trainer(config);
  std::vector<std::size_t> train_idx, val_idx;
  for (std::size_t i = 0; i < 32; ++i) (i < 24 ? train_idx : val_idx).push_back(i);
  const auto forward = [&](std::size_t i) { return mlp.Forward(Variable(problem.inputs[i])); };
  const TrainResult result = trainer.Fit(mlp, forward, problem.targets, train_idx, val_idx);
  EXPECT_LT(result.epochs_run, 400);  // stopped early
  // Restored weights should reproduce the recorded best validation loss.
  const double val = trainer.Evaluate(forward, problem.targets, val_idx);
  EXPECT_NEAR(val, result.best_val_loss, 1e-6);
}

TEST(Trainer, EmptyTrainingSetThrows) {
  Rng rng(19);
  Mlp mlp({2, 1}, rng);
  const Trainer trainer({});
  const std::vector<float> targets;
  EXPECT_THROW(trainer.Fit(
                   mlp, [&](std::size_t) { return Variable(); }, targets, {}, {}),
               std::invalid_argument);
}

// ---- data-parallel trainer ----

struct ToyRun {
  std::vector<double> train_history;
  std::vector<double> val_history;
  std::vector<Tensor> weights;
  double final_val = 0.0;
  std::int64_t skipped_steps = 0;
};

/// Train the toy problem from identical seeds with the given thread count.
ToyRun RunToyTraining(std::int64_t threads, bool inject_nan = false) {
  Rng rng(21);
  const ToyProblem problem(48, rng);
  Mlp mlp({2, 8, 1}, rng);
  TrainConfig config;
  config.max_epochs = 80;
  config.patience = 80;
  config.base_lr = 5e-3f;
  config.batch_size = 12;
  config.threads = threads;
  const Trainer trainer(config);
  std::vector<std::size_t> train_idx, val_idx;
  for (std::size_t i = 0; i < 48; ++i) (i < 40 ? train_idx : val_idx).push_back(i);
  const auto forward = [&](std::size_t i) {
    Variable pred = mlp.Forward(Variable(problem.inputs[i]));
    if (inject_nan &&
        fault::Injector::Global().ShouldInject(fault::sites::kPredictNan)) {
      pred = autograd::Scale(pred, std::numeric_limits<float>::quiet_NaN());
    }
    return pred;
  };
  const TrainResult result = trainer.Fit(mlp, forward, problem.targets, train_idx, val_idx);
  ToyRun run;
  run.train_history = result.train_loss_history;
  run.val_history = result.val_loss_history;
  run.weights = mlp.SnapshotParameters();
  run.final_val = trainer.Evaluate(
      [&](std::size_t i) { return mlp.Forward(Variable(problem.inputs[i])); },
      problem.targets, val_idx);
  run.skipped_steps = result.skipped_steps;
  return run;
}

bool BitIdenticalWeights(const std::vector<Tensor>& a, const std::vector<Tensor>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].numel() != b[i].numel()) return false;
    if (std::memcmp(a[i].data().data(), b[i].data().data(),
                    static_cast<std::size_t>(a[i].numel()) * sizeof(float)) != 0) {
      return false;
    }
  }
  return true;
}

TEST(ParallelTrainer, BitIdenticalAcrossRunsForFixedThreadCount) {
  // Same seed + same thread count => the sharded backward, the fixed-order
  // reduction and the single Adam step must reproduce the run exactly.
  const ToyRun first = RunToyTraining(4);
  const ToyRun second = RunToyTraining(4);
  EXPECT_TRUE(BitIdenticalWeights(first.weights, second.weights));
  EXPECT_EQ(first.train_history, second.train_history);
  EXPECT_EQ(first.val_history, second.val_history);
}

TEST(ParallelTrainer, MatchesSerialWithinTolerance) {
  // Serial sums the batch loss before one backward; the sharded path scales
  // per sample and reduces across shards, so float rounding differs by
  // O(batch * eps) per step. Both must land on the same solution: final
  // validation losses within 10% relative (documented tolerance), and both
  // must actually have learned the toy mapping.
  const ToyRun serial = RunToyTraining(1);
  const ToyRun parallel = RunToyTraining(4);
  EXPECT_EQ(serial.skipped_steps, 0);
  EXPECT_EQ(parallel.skipped_steps, 0);
  EXPECT_LT(serial.final_val, 0.2);
  EXPECT_LT(parallel.final_val, 0.2);
  const double tolerance = 0.1 * std::max(serial.final_val, parallel.final_val) + 1e-3;
  EXPECT_NEAR(parallel.final_val, serial.final_val, tolerance);
}

TEST(ParallelTrainer, NanInjectionDrillKeepsWeightsFinite) {
  // Drive training with predict_nan firing on ~25% of forwards (the
  // PREDTOP_FAULT=predict_nan:... drill): poisoned batches must be skipped
  // and counted, and no NaN may ever reach the weights — in both the serial
  // and the data-parallel path.
  for (const std::int64_t threads : {std::int64_t{1}, std::int64_t{3}}) {
    fault::Injector::Global().Configure("predict_nan:0.25", 9);
    const ToyRun run = RunToyTraining(threads, /*inject_nan=*/true);
    fault::Injector::Global().Disable();
    EXPECT_GT(run.skipped_steps, 0) << threads << " threads";
    for (const Tensor& w : run.weights) {
      for (const float v : w.data()) {
        ASSERT_TRUE(std::isfinite(v)) << threads << " threads";
      }
    }
    EXPECT_TRUE(std::isfinite(run.final_val)) << threads << " threads";
  }
}

TEST(SplitDataset, PartitionsWithoutOverlap) {
  Rng rng(20);
  const DataSplit split = SplitDataset(100, 0.6, 0.1, rng);
  EXPECT_EQ(split.train.size(), 60u);
  EXPECT_EQ(split.validation.size(), 10u);
  EXPECT_EQ(split.test.size(), 30u);
  std::set<std::size_t> all;
  for (const auto& part : {split.train, split.validation, split.test}) {
    for (const std::size_t i : part) EXPECT_TRUE(all.insert(i).second) << "duplicate " << i;
  }
  EXPECT_EQ(all.size(), 100u);
}

TEST(SplitDataset, SmallDatasetsNeverRoundToEmptyTrainSet) {
  // Regression: llround(0.1 * 4) == 0 used to hand Trainer::Fit an empty
  // training set. A positive fraction must always keep >= 1 train sample.
  Rng rng(22);
  const std::tuple<std::size_t, double, double> cases[] = {
      {4, 0.1, 0.1}, {1, 0.5, 0.0}, {2, 0.1, 0.5}, {3, 0.2, 0.2}};
  for (const auto& [n, train_frac, val_frac] : cases) {
    const DataSplit split = SplitDataset(n, train_frac, val_frac, rng);
    EXPECT_GE(split.train.size(), 1u) << "n=" << n << " frac=" << train_frac;
    EXPECT_EQ(split.train.size() + split.validation.size() + split.test.size(), n);
    std::set<std::size_t> all;
    for (const auto& part : {split.train, split.validation, split.test}) {
      for (const std::size_t i : part) EXPECT_TRUE(all.insert(i).second);
    }
  }
  // A zero fraction still legitimately yields an empty train set.
  const DataSplit none = SplitDataset(4, 0.0, 0.5, rng);
  EXPECT_TRUE(none.train.empty());
  // And n = 0 stays all-empty without tripping the guarantee.
  const DataSplit empty = SplitDataset(0, 0.8, 0.1, rng);
  EXPECT_TRUE(empty.train.empty());
  EXPECT_TRUE(empty.test.empty());
}

TEST(SplitDataset, InvalidFractionsThrow) {
  Rng rng(21);
  EXPECT_THROW(SplitDataset(10, 0.8, 0.3, rng), std::invalid_argument);
}

TEST(Module, SnapshotRestoreRoundTrips) {
  Rng rng(22);
  Mlp mlp({3, 4, 1}, rng);
  const auto snapshot = mlp.SnapshotParameters();
  for (auto* p : mlp.Parameters()) p->mutable_value().Fill(0.0f);
  mlp.RestoreParameters(snapshot);
  auto params = mlp.Parameters();
  for (std::size_t i = 0; i < params.size(); ++i) {
    EXPECT_EQ(tensor::MaxAbsDiff(params[i]->value(), snapshot[i]), 0.0f);
  }
}

}  // namespace
}  // namespace predtop::nn

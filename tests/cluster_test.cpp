// Tests for predtop::cluster: the framed wire codec (round-trip properties,
// truncation/bit-flip fuzz rejected by the CRC footer, hostile-length
// hardening), the consistent-hash ring, the socket transport and its fault
// injection sites, worker startup fail-fast semantics, and the end-to-end
// acceptance criteria — a router over >= 2 shard workers serving the fig10
// plan search with a plan equal to the direct in-process ServingOracle
// result, including with one worker killed mid-run.
//
// This binary doubles as the worker executable of its own multi-process
// tests: main() intercepts --cluster-worker and re-enters WorkerMain, so a
// test can fork + exec /proc/self/exe to get a genuinely separate worker
// process (and SIGKILL it for the failover drill).

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/local.h"
#include "cluster/oracle.h"
#include "cluster/ring.h"
#include "cluster/router.h"
#include "cluster/supervisor.h"
#include "cluster/transport.h"
#include "cluster/wire.h"
#include "cluster/worker.h"
#include "core/plan_search.h"
#include "fault/injector.h"
#include "graph/fingerprint.h"
#include "serve/fallback.h"
#include "serve/oracle.h"
#include "serve/service.h"
#include "util/timer.h"

extern char** environ;

namespace predtop::cluster {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Turns injection off again even when an assertion throws mid-test.
struct InjectorGuard {
  explicit InjectorGuard(const std::string& spec, std::uint64_t seed = 1) {
    fault::Injector::Global().Configure(spec, seed);
  }
  ~InjectorGuard() { fault::Injector::Global().Disable(); }
};

ir::Gpt3Config TinyGptConfig() {
  ir::Gpt3Config config;
  config.seq_len = 64;
  config.hidden = 64;
  config.num_layers = 4;
  config.num_heads = 4;
  config.vocab = 512;
  config.microbatch = 2;
  return config;
}

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          ("predtop_cluster_test_" + std::to_string(::getpid()) + "_" + name))
      .string();
}

// ---- wire codec ----

PredictRequest SampleRequest() {
  PredictRequest request;
  request.key = {"gpt3", "platform1", sim::Mesh{1, 2}, parallel::ParallelConfig{2, 1, 1}};
  request.queries = {{{0, 2}, sim::Mesh{1, 2}}, {{2, 4}, sim::Mesh{1, 1}}};
  return request;
}

TEST(WireCodec, FrameRoundTripAllTypes) {
  for (const MessageType type :
       {MessageType::kError, MessageType::kPredictRequest, MessageType::kPredictResponse,
        MessageType::kHealthRequest, MessageType::kHealthResponse, MessageType::kStatsRequest,
        MessageType::kStatsResponse, MessageType::kShutdownRequest,
        MessageType::kShutdownResponse}) {
    const Frame frame{type, 0xfeedface12345678ull, "payload for " +
                                                       std::string(MessageTypeName(type))};
    const std::string bytes = EncodeFrame(frame);
    const auto [decoded, consumed] = DecodeFrame(bytes);
    EXPECT_EQ(consumed, bytes.size());
    EXPECT_EQ(decoded.type, frame.type);
    EXPECT_EQ(decoded.request_id, frame.request_id);
    EXPECT_EQ(decoded.payload, frame.payload);
  }
}

TEST(WireCodec, PredictRequestRoundTripProperty) {
  std::mt19937_64 rng(0xc1a5733d);
  for (int iteration = 0; iteration < 50; ++iteration) {
    PredictRequest request;
    const std::size_t name_len = rng() % 24;
    for (std::size_t i = 0; i < name_len; ++i) {
      request.key.benchmark.push_back(static_cast<char>('a' + rng() % 26));
    }
    request.key.platform = "platform" + std::to_string(rng() % 4);
    request.key.mesh = {static_cast<std::int32_t>(rng() % 16 + 1),
                        static_cast<std::int32_t>(rng() % 16 + 1)};
    request.key.config = {static_cast<std::int32_t>(rng() % 8 + 1),
                          static_cast<std::int32_t>(rng() % 8 + 1),
                          static_cast<std::int32_t>(rng() % 8 + 1)};
    const std::size_t num_queries = rng() % 40;
    for (std::size_t q = 0; q < num_queries; ++q) {
      const auto first = static_cast<std::int32_t>(rng() % 30);
      request.queries.push_back(
          {{first, first + static_cast<std::int32_t>(rng() % 6 + 1)},
           {static_cast<std::int32_t>(rng() % 8 + 1),
            static_cast<std::int32_t>(rng() % 8 + 1)}});
    }
    const PredictRequest decoded = DecodePredictRequest(EncodePredictRequest(request));
    EXPECT_EQ(decoded.key, request.key);
    ASSERT_EQ(decoded.queries.size(), request.queries.size());
    for (std::size_t q = 0; q < num_queries; ++q) {
      EXPECT_EQ(decoded.queries[q].slice.first_layer, request.queries[q].slice.first_layer);
      EXPECT_EQ(decoded.queries[q].slice.last_layer, request.queries[q].slice.last_layer);
      EXPECT_EQ(decoded.queries[q].mesh, request.queries[q].mesh);
    }
  }
}

TEST(WireCodec, PredictResponseRoundTripIsBitIdentical) {
  PredictResponse response;
  response.results = {
      {1.5e-3, {2, 1, 1}, false},
      {kInf, {}, true},
      {-kInf, {1, 2, 1}, false},
      {std::numeric_limits<double>::quiet_NaN(), {}, true},
      {std::numeric_limits<double>::denorm_min(), {1, 1, 2}, false},
      {-0.0, {}, false},
  };
  const PredictResponse decoded = DecodePredictResponse(EncodePredictResponse(response));
  ASSERT_EQ(decoded.results.size(), response.results.size());
  for (std::size_t i = 0; i < response.results.size(); ++i) {
    // Compare the bit patterns, not the values: NaN != NaN, and the whole
    // point of shipping IEEE-754 bits is that the wire changes nothing.
    EXPECT_EQ(std::memcmp(&decoded.results[i].latency_s, &response.results[i].latency_s,
                          sizeof(double)),
              0);
    EXPECT_EQ(decoded.results[i].config, response.results[i].config);
    EXPECT_EQ(decoded.results[i].degraded, response.results[i].degraded);
  }
}

TEST(WireCodec, HealthStatsAndErrorBodiesRoundTrip) {
  const HealthBody health{true, 3, "gpt3 worker at unix:/tmp/w0.sock"};
  const HealthBody health2 = DecodeHealthBody(EncodeHealthBody(health));
  EXPECT_EQ(health2.ok, health.ok);
  EXPECT_EQ(health2.num_models, health.num_models);
  EXPECT_EQ(health2.detail, health.detail);

  StatsBody stats;
  stats.requests = 7;
  stats.queries = 100;
  stats.forwards = 42;
  stats.coalesced = 13;
  stats.batches = 5;
  stats.batched_queries = 90;
  stats.cache_hits = 58;
  stats.cache_misses = 42;
  stats.program_cache_hits = 21;
  stats.program_cache_misses = 4;
  stats.batched_forwards = 33;
  stats.interleaved_forwards = 9;
  stats.autotune_sweeps = 2;
  const StatsBody stats2 = DecodeStatsBody(EncodeStatsBody(stats));
  EXPECT_EQ(stats2.requests, stats.requests);
  EXPECT_EQ(stats2.queries, stats.queries);
  EXPECT_EQ(stats2.forwards, stats.forwards);
  EXPECT_EQ(stats2.coalesced, stats.coalesced);
  EXPECT_EQ(stats2.batches, stats.batches);
  EXPECT_EQ(stats2.batched_queries, stats.batched_queries);
  EXPECT_EQ(stats2.cache_hits, stats.cache_hits);
  EXPECT_EQ(stats2.cache_misses, stats.cache_misses);
  EXPECT_EQ(stats2.program_cache_hits, stats.program_cache_hits);
  EXPECT_EQ(stats2.program_cache_misses, stats.program_cache_misses);
  EXPECT_EQ(stats2.batched_forwards, stats.batched_forwards);
  EXPECT_EQ(stats2.interleaved_forwards, stats.interleaved_forwards);
  EXPECT_EQ(stats2.autotune_sweeps, stats.autotune_sweeps);

  const ErrorBody error{fault::StatusCode::kNotFound, "no model registered"};
  const ErrorBody error2 = DecodeErrorBody(EncodeErrorBody(error));
  EXPECT_EQ(error2.code, error.code);
  EXPECT_EQ(error2.message, error.message);
  EXPECT_EQ(error2.ToStatus().code(), fault::StatusCode::kNotFound);
}

TEST(WireCodec, TruncatedFramesRejected) {
  const Frame frame{MessageType::kPredictRequest, 42,
                    EncodePredictRequest(SampleRequest())};
  const std::string bytes = EncodeFrame(frame);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW((void)DecodeFrame(std::string_view(bytes.data(), len)),
                 fault::CorruptionError)
        << "prefix of " << len << " bytes decoded";
  }
}

TEST(WireCodec, EveryBitFlipRejected) {
  const Frame frame{MessageType::kPredictRequest, 7, EncodePredictRequest(SampleRequest())};
  const std::string bytes = EncodeFrame(frame);
  for (std::size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = bytes;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      // Header flips fail their own validation (magic/version/type/length);
      // everything else fails the CRC footer. Either way: a typed
      // CorruptionError, never a silently different frame.
      EXPECT_THROW((void)DecodeFrame(corrupt), fault::CorruptionError)
          << "bit " << bit << " of byte " << byte << " flipped undetected";
    }
  }
}

TEST(WireCodec, HostileLengthRejectedBeforeAllocation) {
  std::string bytes = EncodeFrame({MessageType::kHealthRequest, 1, {}});
  const std::uint64_t hostile = 1ull << 60;  // would be a 1 EiB allocation
  std::memcpy(bytes.data() + 16, &hostile, sizeof hostile);
  try {
    (void)DecodeFrame(bytes);
    FAIL() << "hostile length accepted";
  } catch (const fault::CorruptionError& e) {
    EXPECT_NE(std::string(e.what()).find("exceeds"), std::string::npos) << e.what();
  }
  EXPECT_THROW((void)DecodeFrameHeader(std::string_view(bytes.data(), kFrameHeaderBytes)),
               fault::CorruptionError);
}

TEST(WireCodec, HostileQueryCountRejectedBeforeAllocation) {
  PredictRequest request = SampleRequest();
  request.queries.clear();
  std::string payload = EncodePredictRequest(request);
  // The (empty) query count is the last u32; claim a billion queries with
  // zero bytes behind them.
  const std::uint32_t hostile = 1u << 30;
  std::memcpy(payload.data() + payload.size() - sizeof hostile, &hostile, sizeof hostile);
  try {
    (void)DecodePredictRequest(payload);
    FAIL() << "hostile count accepted";
  } catch (const fault::CorruptionError& e) {
    EXPECT_NE(std::string(e.what()).find("count"), std::string::npos) << e.what();
  }
}

TEST(WireCodec, TrailingBytesRejected) {
  std::string payload = EncodePredictResponse({{{1.0, {}, false}}});
  payload.push_back('\0');
  EXPECT_THROW((void)DecodePredictResponse(payload), fault::CorruptionError);
  std::string request = EncodePredictRequest(SampleRequest());
  request.append("xx");
  EXPECT_THROW((void)DecodePredictRequest(request), fault::CorruptionError);
}

TEST(WireCodec, DeadlineFreeFramesStayLegacyVersion1) {
  // deadline_us == 0 must encode the exact legacy v1 frame: a pre-deadline
  // decoder on the other end of the wire keeps working unmodified.
  const Frame frame{MessageType::kPredictRequest, 7, "payload"};
  const std::string bytes = EncodeFrame(frame);
  EXPECT_EQ(bytes.size(), kFrameHeaderBytes + 7 + kFrameFooterBytes);
  const FrameHeader header =
      DecodeFrameHeader(std::string_view(bytes.data(), kFrameHeaderBytes));
  EXPECT_EQ(header.version, kWireVersion);
  EXPECT_EQ(header.ExtraHeaderBytes(), 0u);
  EXPECT_EQ(DecodeFrame(bytes).first.deadline_us, 0u);
}

TEST(WireCodec, DeadlineRoundTripsInVersion2Frames) {
  const Frame frame{MessageType::kPredictRequest, 7,
                    EncodePredictRequest(SampleRequest()), 0x0123456789abcdefull};
  const std::string bytes = EncodeFrame(frame);
  const FrameHeader header =
      DecodeFrameHeader(std::string_view(bytes.data(), kFrameHeaderBytes));
  EXPECT_EQ(header.version, kWireVersionDeadline);
  EXPECT_EQ(header.ExtraHeaderBytes(), kFrameDeadlineBytes);
  const auto [decoded, consumed] = DecodeFrame(bytes);
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(decoded.deadline_us, frame.deadline_us);
  EXPECT_EQ(decoded.payload, frame.payload);
  EXPECT_EQ(decoded.request_id, frame.request_id);
}

TEST(WireCodec, EveryBitFlipOfADeadlineFrameRejected) {
  // The CRC footer covers the v2 deadline bytes too: no flip anywhere in the
  // extended header survives.
  const Frame frame{MessageType::kPredictRequest, 7,
                    EncodePredictRequest(SampleRequest()), 123456789ull};
  const std::string bytes = EncodeFrame(frame);
  for (std::size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = bytes;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      EXPECT_THROW((void)DecodeFrame(corrupt), fault::CorruptionError)
          << "bit " << bit << " of byte " << byte << " flipped undetected";
    }
  }
}

TEST(WireCodec, StatsBodyCarriesShedCounters) {
  StatsBody stats;
  stats.requests = 1;
  stats.shed_expired = 11;
  stats.shed_overload = 22;
  stats.late_completions = 33;
  const StatsBody decoded = DecodeStatsBody(EncodeStatsBody(stats));
  EXPECT_EQ(decoded.shed_expired, 11u);
  EXPECT_EQ(decoded.shed_overload, 22u);
  EXPECT_EQ(decoded.late_completions, 33u);
}

TEST(WireCodec, OverloadedErrorBodyRoundTrips) {
  const ErrorBody error{fault::StatusCode::kOverloaded, "admission shed"};
  const ErrorBody decoded = DecodeErrorBody(EncodeErrorBody(error));
  EXPECT_EQ(decoded.code, fault::StatusCode::kOverloaded);
  EXPECT_EQ(decoded.ToStatus().code(), fault::StatusCode::kOverloaded);
}

// ---- consistent-hash ring ----

TEST(Ring, RoutesAreDeterministicDistinctAndOwnerFirst) {
  const HashRing ring(5);
  std::mt19937_64 rng(99);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t fp = rng();
    const std::vector<std::size_t> route = ring.Route(fp, 3);
    ASSERT_EQ(route.size(), 3u);
    EXPECT_EQ(route, ring.Route(fp, 3));  // deterministic
    EXPECT_EQ(route[0], ring.Owner(fp));  // owner first
    const std::set<std::size_t> distinct(route.begin(), route.end());
    EXPECT_EQ(distinct.size(), route.size());
    for (const std::size_t worker : route) EXPECT_LT(worker, 5u);
  }
}

TEST(Ring, ReplicasCappedAtClusterSize) {
  const HashRing ring(2);
  const std::vector<std::size_t> route = ring.Route(123456789, 5);
  ASSERT_EQ(route.size(), 2u);
  EXPECT_NE(route[0], route[1]);
}

TEST(Ring, OwnershipIsReasonablyBalanced) {
  const std::size_t workers = 4;
  const HashRing ring(workers);
  std::vector<std::size_t> owned(workers, 0);
  std::mt19937_64 rng(7);
  const std::size_t samples = 20000;
  for (std::size_t i = 0; i < samples; ++i) ++owned[ring.Owner(rng())];
  for (std::size_t w = 0; w < workers; ++w) {
    // Perfect balance would be 25% each; 64 vnodes keeps every shard within
    // a loose band of it.
    EXPECT_GT(owned[w], samples / 10) << "worker " << w << " starved";
    EXPECT_LT(owned[w], samples / 2) << "worker " << w << " overloaded";
  }
}

TEST(Ring, AddingAWorkerRemapsOnlyAMinorityOfKeys) {
  const HashRing before(4);
  const HashRing after(5);
  std::mt19937_64 rng(13);
  const std::size_t samples = 10000;
  std::size_t moved = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    const std::uint64_t fp = rng();
    if (before.Owner(fp) != after.Owner(fp)) ++moved;
  }
  // Consistent hashing moves ~1/5 of the space to the new worker; naive
  // modulo hashing would move ~4/5.
  EXPECT_LT(moved, samples / 2);
  EXPECT_GT(moved, 0u);
}

// ---- transport ----

TEST(Transport, EndpointParseAndToString) {
  const Endpoint unix_ep = Endpoint::Parse("unix:/tmp/predtop.sock");
  EXPECT_EQ(unix_ep.kind, Endpoint::Kind::kUnix);
  EXPECT_EQ(unix_ep.path, "/tmp/predtop.sock");
  EXPECT_EQ(unix_ep.ToString(), "unix:/tmp/predtop.sock");

  const Endpoint tcp_ep = Endpoint::Parse("tcp:127.0.0.1:9100");
  EXPECT_EQ(tcp_ep.kind, Endpoint::Kind::kTcp);
  EXPECT_EQ(tcp_ep.host, "127.0.0.1");
  EXPECT_EQ(tcp_ep.port, 9100);
  EXPECT_EQ(tcp_ep.ToString(), "tcp:127.0.0.1:9100");

  EXPECT_THROW((void)Endpoint::Parse("http://nope"), std::invalid_argument);
  EXPECT_THROW((void)Endpoint::Parse("tcp:no-port"), std::invalid_argument);
  EXPECT_THROW((void)Endpoint::Parse(""), std::invalid_argument);
}

/// Echo server: accepts one connection, echoes frames with request_id + 1
/// until the peer hangs up.
class EchoServer {
 public:
  explicit EchoServer(const Endpoint& endpoint) : listener_(endpoint) {
    thread_ = std::thread([this] {
      while (true) {  // serve connections sequentially until Close()
        Socket client = listener_.Accept();
        if (!client.Valid()) return;
        while (true) {
          Frame frame;
          try {
            frame = RecvFrame(client);
          } catch (const std::exception&) {
            break;  // peer hung up; accept the next connection
          }
          frame.request_id += 1;
          try {
            SendFrame(client, frame);
          } catch (const std::exception&) {
            break;
          }
        }
      }
    });
  }
  ~EchoServer() {
    listener_.Close();
    if (thread_.joinable()) thread_.join();
  }
  [[nodiscard]] const Endpoint& BoundEndpoint() const { return listener_.BoundEndpoint(); }

 private:
  Listener listener_;
  std::thread thread_;
};

TEST(Transport, UnixFrameRoundTrip) {
  const std::string path = TempPath("echo.sock");
  EchoServer server(Endpoint::Unix(path));
  Socket client = ConnectTo(server.BoundEndpoint());
  SendFrame(client, {MessageType::kHealthRequest, 41, "ping"});
  const Frame reply = RecvFrame(client, /*deadline_ms=*/2000.0);
  EXPECT_EQ(reply.request_id, 42u);
  EXPECT_EQ(reply.payload, "ping");
  std::remove(path.c_str());
}

TEST(Transport, TcpFrameRoundTripOnEphemeralPort) {
  EchoServer server(Endpoint::Tcp("127.0.0.1", 0));
  ASSERT_NE(server.BoundEndpoint().port, 0) << "port 0 not resolved";
  Socket client = ConnectTo(server.BoundEndpoint());
  SendFrame(client, {MessageType::kStatsRequest, 7, std::string(2048, 'x')});
  const Frame reply = RecvFrame(client, /*deadline_ms=*/2000.0);
  EXPECT_EQ(reply.request_id, 8u);
  EXPECT_EQ(reply.payload.size(), 2048u);
}

TEST(Transport, RecvDeadlineExceededIsTyped) {
  const std::string path = TempPath("deadline.sock");
  Listener listener(Endpoint::Unix(path));
  Socket client = ConnectTo(listener.BoundEndpoint());
  Socket served = listener.Accept(1000.0);
  ASSERT_TRUE(served.Valid());
  // Nobody ever sends: the read must give up on its own.
  try {
    (void)RecvFrame(client, /*deadline_ms=*/60.0);
    FAIL() << "deadline did not fire";
  } catch (const fault::FaultError& e) {
    EXPECT_EQ(e.code(), fault::StatusCode::kDeadlineExceeded);
  }
  listener.Close();
  std::remove(path.c_str());
}

TEST(Transport, NetDropInjectionKillsTheConnection) {
  const std::string path = TempPath("drop.sock");
  EchoServer server(Endpoint::Unix(path));
  Socket client = ConnectTo(server.BoundEndpoint());
  {
    InjectorGuard guard("net_drop:1");
    EXPECT_THROW(SendFrame(client, {MessageType::kHealthRequest, 1, {}}), fault::IoError);
    EXPECT_FALSE(client.Valid()) << "net_drop must close the socket";
  }
  // With injection off a fresh connection works again.
  Socket again = ConnectTo(server.BoundEndpoint());
  SendFrame(again, {MessageType::kHealthRequest, 1, {}});
  EXPECT_EQ(RecvFrame(again, 2000.0).request_id, 2u);
  std::remove(path.c_str());
}

TEST(Transport, NetDelayInjectionDelaysFrames) {
  const std::string path = TempPath("delay.sock");
  EchoServer server(Endpoint::Unix(path));
  Socket client = ConnectTo(server.BoundEndpoint());
  InjectorGuard guard("net_delay_ms:40");
  const auto start = std::chrono::steady_clock::now();
  SendFrame(client, {MessageType::kHealthRequest, 1, {}});
  (void)RecvFrame(client, 5000.0);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
          .count();
  // Send and recv sides each sleep 40 ms (the echo server's sides do too);
  // assert well under the sum to stay robust on slow machines.
  EXPECT_GE(elapsed_ms, 60.0);
  std::remove(path.c_str());
}

// ---- worker startup fail-fast ----

TEST(WorkerStartup, MissingCheckpointFailsTypedAndQuarantines) {
  auto registry = std::make_shared<serve::ModelRegistry>();
  serve::ModelRegistry::RetryPolicy retry;
  retry.initial_backoff = std::chrono::milliseconds(0);

  WorkerOptions options;
  options.listen = Endpoint::Unix(TempPath("missing.sock"));
  options.benchmark = core::Gpt3Benchmark(TinyGptConfig());
  options.registry = registry;
  options.retry = retry;
  options.models.push_back(
      {serve::ModelKey{"gpt3", "platform1", sim::Mesh{1, 1}, {}}, TempPath("no_such.ptck")});

  Worker worker(std::move(options));
  const fault::Status status = worker.Init();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), fault::StatusCode::kIoError) << status.ToString();

  // The registry quarantined the path: a second worker sharing it is
  // refused without re-reading the file.
  WorkerOptions second;
  second.listen = Endpoint::Unix(TempPath("missing2.sock"));
  second.benchmark = core::Gpt3Benchmark(TinyGptConfig());
  second.registry = registry;
  second.retry = retry;
  second.models.push_back(
      {serve::ModelKey{"gpt3", "platform1", sim::Mesh{1, 1}, {}}, TempPath("no_such.ptck")});
  Worker worker2(std::move(second));
  const fault::Status quarantined = worker2.Init();
  ASSERT_FALSE(quarantined.ok());
  EXPECT_EQ(quarantined.code(), fault::StatusCode::kUnavailable) << quarantined.ToString();
}

TEST(WorkerStartup, CorruptCheckpointFailsTyped) {
  const std::string path = TempPath("corrupt.ptck");
  {
    std::ofstream out(path, std::ios::binary);
    out << "PTCKgarbage-that-is-not-a-checkpoint";
  }
  serve::ModelRegistry::RetryPolicy retry;
  retry.initial_backoff = std::chrono::milliseconds(0);
  WorkerOptions options;
  options.listen = Endpoint::Unix(TempPath("corrupt.sock"));
  options.benchmark = core::Gpt3Benchmark(TinyGptConfig());
  options.retry = retry;
  options.models.push_back(
      {serve::ModelKey{"gpt3", "platform1", sim::Mesh{1, 1}, {}}, path});
  Worker worker(std::move(options));
  const fault::Status status = worker.Init();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), fault::StatusCode::kCorruption) << status.ToString();
  std::remove(path.c_str());
}

TEST(WorkerStartup, NoModelsIsInvalidArgument) {
  WorkerOptions options;
  options.listen = Endpoint::Unix(TempPath("empty.sock"));
  options.benchmark = core::Gpt3Benchmark(TinyGptConfig());
  Worker worker(std::move(options));
  const fault::Status status = worker.Init();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), fault::StatusCode::kInvalidArgument);
}

// ---- multi-process helpers ----

/// fork + exec this test binary as a cluster worker (main() routes
/// --cluster-worker to WorkerMain). `extra_env` entries are appended to the
/// child's environment.
pid_t SpawnWorkerProcess(const std::vector<std::string>& args,
                         const std::vector<std::string>& extra_env = {}) {
  std::vector<std::string> argv_storage;
  argv_storage.emplace_back("/proc/self/exe");
  argv_storage.emplace_back("--cluster-worker");
  argv_storage.insert(argv_storage.end(), args.begin(), args.end());
  std::vector<char*> argv;
  argv.reserve(argv_storage.size() + 1);
  for (std::string& arg : argv_storage) argv.push_back(arg.data());
  argv.push_back(nullptr);

  std::vector<std::string> env_storage;
  for (char** e = environ; *e != nullptr; ++e) env_storage.emplace_back(*e);
  env_storage.insert(env_storage.end(), extra_env.begin(), extra_env.end());
  std::vector<char*> envp;
  envp.reserve(env_storage.size() + 1);
  for (std::string& e : env_storage) envp.push_back(e.data());
  envp.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execve("/proc/self/exe", argv.data(), envp.data());
    ::_exit(127);  // exec failed
  }
  return pid;
}

int WaitForExit(pid_t pid) {
  int wstatus = 0;
  ::waitpid(pid, &wstatus, 0);
  return wstatus;
}

TEST(WorkerStartup, ProcessExitCodeEncodesTheTypedStatus) {
  const pid_t pid = SpawnWorkerProcess({
      "--listen", "unix:" + TempPath("typed_exit.sock"),
      "--benchmark", "gpt3",
      "--model", "mesh=1x1,path=" + TempPath("definitely_missing.ptck"),
  });
  ASSERT_GT(pid, 0);
  const int wstatus = WaitForExit(pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  // WorkerMain maps a failed Init to 10 + StatusCode so a supervisor can
  // tell a corrupt checkpoint from a transient IO failure from outside.
  EXPECT_EQ(WEXITSTATUS(wstatus),
            10 + static_cast<int>(fault::StatusCode::kIoError));
}

// ---- end-to-end: trained predictors behind a real cluster ----

/// One trained serving stack shared by the end-to-end suites (training is
/// the slow part; everything downstream reuses it). Mirrors serve_test's
/// PlanSearch fixture so the cluster-vs-in-process comparison is apples to
/// apples.
struct TrainedStack {
  TrainedStack()
      : search(core::Gpt3Benchmark(TinyGptConfig()), sim::Platform1(), MakeConfig()),
        trained(search.TrainPredictors(core::PredictorKind::kDagTransformer)),
        registry(std::make_shared<serve::ModelRegistry>()),
        keys(serve::RegisterMeshPredictors(*registry, "gpt3", "platform1", search.Meshes(),
                                           trained)) {
    for (std::size_t m = 0; m < search.Meshes().size(); ++m) {
      const sim::Mesh mesh = search.Meshes()[m];
      const std::string path = TempPath("mesh_" + std::to_string(mesh.num_nodes) + "x" +
                                        std::to_string(mesh.gpus_per_node) + ".ptck");
      trained.per_mesh[m]->Save(path);
      ptck_paths.push_back(path);
    }
  }

  static core::PlanSearchConfig MakeConfig() {
    core::PlanSearchConfig config;
    config.num_microbatches = 4;
    config.sample_fraction = 0.6;
    config.max_span = 3;
    config.train.max_epochs = 20;
    config.train.patience = 20;
    config.train.batch_size = 4;
    config.predictor.dagt_dim = 16;
    config.predictor.dagt_layers = 2;
    config.predictor.dagt_heads = 2;
    return config;
  }

  /// Every (slice, mesh) cell of the inter-op DP table under max_span.
  [[nodiscard]] std::vector<parallel::StageQuery> FullTable() {
    std::vector<parallel::StageQuery> queries;
    const std::int32_t layers = search.Benchmark().num_layers;
    for (std::int32_t first = 0; first < layers; ++first) {
      for (std::int32_t last = first + 1;
           last <= layers && last - first <= search.EffectiveMaxSpan(); ++last) {
        for (const sim::Mesh mesh : search.Meshes()) {
          queries.push_back({{first, last}, mesh});
        }
      }
    }
    return queries;
  }

  [[nodiscard]] serve::StageEncoder Encoder() {
    return [this](ir::StageSlice s) -> const graph::EncodedGraph& {
      return search.EncodedFor(s);
    };
  }

  /// Ground truth: the trained per-mesh predictor called directly, exactly
  /// like serve_test's direct oracle.
  [[nodiscard]] parallel::StageLatencyResult Direct(ir::StageSlice slice, sim::Mesh mesh) {
    if (slice.NumLayers() > search.EffectiveMaxSpan()) return {kInf, {}};
    for (std::size_t m = 0; m < search.Meshes().size(); ++m) {
      if (search.Meshes()[m] == mesh) {
        return {trained.per_mesh[m]->PredictSeconds(search.EncodedFor(slice)), {}};
      }
    }
    return {kInf, {}};
  }

  core::PlanSearch search;
  core::TrainedMeshPredictors trained;
  std::shared_ptr<serve::ModelRegistry> registry;
  std::vector<serve::ModelKey> keys;
  std::vector<std::string> ptck_paths;
};

TrainedStack& Stack() {
  static TrainedStack stack;
  return stack;
}

LocalClusterOptions Workers(std::size_t n) {
  LocalClusterOptions options;
  options.num_workers = n;
  return options;
}

void ExpectPlansEqual(const parallel::PipelinePlan& got,
                      const parallel::PipelinePlan& want) {
  ASSERT_TRUE(got.Valid());
  ASSERT_TRUE(want.Valid());
  EXPECT_EQ(got.iteration_latency_s, want.iteration_latency_s);
  ASSERT_EQ(got.stages.size(), want.stages.size());
  for (std::size_t i = 0; i < got.stages.size(); ++i) {
    EXPECT_EQ(got.stages[i].slice.first_layer, want.stages[i].slice.first_layer);
    EXPECT_EQ(got.stages[i].slice.last_layer, want.stages[i].slice.last_layer);
    EXPECT_EQ(got.stages[i].mesh, want.stages[i].mesh);
  }
}

TEST(ClusterE2E, RouterHealthStatsAndShutdown) {
  TrainedStack& stack = Stack();
  LocalCluster cluster(stack.search.Benchmark(), stack.registry, Workers(2));
  RouterOptions options;
  options.connect_timeout_ms = 300.0;
  Router router(cluster.Endpoints(), options);

  const std::vector<bool> health = router.Health();
  ASSERT_EQ(health.size(), 2u);
  EXPECT_TRUE(health[0]);
  EXPECT_TRUE(health[1]);

  const std::uint64_t fp = graph::EncodedGraphFingerprint(stack.search.EncodedFor({0, 2}));
  const Router::Reply reply =
      router.Predict(stack.keys[0], {{0, 2}, stack.search.Meshes()[0]}, fp);
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.latency_s, stack.Direct({0, 2}, stack.search.Meshes()[0]).latency_s);

  const auto worker_stats = router.WorkerStats();
  ASSERT_EQ(worker_stats.size(), 2u);
  std::uint64_t forwards = 0;
  for (const auto& stats : worker_stats) {
    ASSERT_TRUE(stats.has_value());
    forwards += stats->forwards;
  }
  EXPECT_EQ(forwards, 1u);

  router.ShutdownWorkers();
  const std::vector<bool> after = router.Health();
  EXPECT_FALSE(after[0]);
  EXPECT_FALSE(after[1]);
}

TEST(ClusterE2E, UnknownModelKeyFailsWithoutFailover) {
  TrainedStack& stack = Stack();
  LocalCluster cluster(stack.search.Benchmark(), stack.registry, Workers(2));
  Router router(cluster.Endpoints(), {});
  const serve::ModelKey bogus{"gpt3", "platform1", sim::Mesh{7, 7}, {}};
  const Router::Reply reply = router.Predict(bogus, {{0, 1}, sim::Mesh{7, 7}}, 0x1234);
  EXPECT_FALSE(reply.ok);
  // kNotFound is definitive on a homogeneous model set: no replica retries,
  // no worker marked dead.
  EXPECT_EQ(router.Stats().failovers, 0u);
  EXPECT_EQ(router.Stats().worker_failures, 0u);
  EXPECT_TRUE(router.WorkerAlive(0));
  EXPECT_TRUE(router.WorkerAlive(1));
}

TEST(ClusterE2E, PlanSearchThroughClusterMatchesInProcessServing) {
  TrainedStack& stack = Stack();
  LocalCluster cluster(stack.search.Benchmark(), stack.registry, Workers(2));
  RouterOptions router_options;
  router_options.replicas = 2;
  Router router(cluster.Endpoints(), router_options);
  const ClusterOracle oracle(router, stack.search.Meshes(), stack.keys, stack.Encoder(),
                             stack.search.EffectiveMaxSpan());

  // The in-process reference: the same registry behind a PredictionService,
  // wrapped by ServingOracle — the fig10 serving path.
  serve::PredictionService service(stack.registry);
  const serve::ServingOracle in_process(service, stack.search.Meshes(), stack.keys,
                                        stack.Encoder(), stack.search.EffectiveMaxSpan());

  const parallel::InterOpOptimizer optimizer = stack.search.MakeOptimizer();
  const parallel::PipelinePlan cluster_plan = optimizer.Optimize(oracle.AsBatchOracle());
  const parallel::PipelinePlan in_process_plan = optimizer.Optimize(in_process.AsBatchOracle());
  const parallel::PipelinePlan scalar_plan = optimizer.Optimize(oracle.AsOracle());

  ExpectPlansEqual(cluster_plan, in_process_plan);
  ExpectPlansEqual(scalar_plan, in_process_plan);
  EXPECT_EQ(oracle.Stats().degraded, 0u);
  EXPECT_GT(router.Stats().queries, 0u);

  // Pruning matches the serving oracle: unknown meshes and over-span slices
  // are +inf without touching the wire.
  EXPECT_EQ(oracle({0, 4}, stack.search.Meshes()[0]).latency_s, kInf);
  EXPECT_EQ(oracle({0, 1}, sim::Mesh{8, 8}).latency_s, kInf);

  // Both workers actually served shards of the table (the ring spread it).
  const auto worker_stats = router.WorkerStats();
  for (const auto& stats : worker_stats) {
    ASSERT_TRUE(stats.has_value());
    EXPECT_GT(stats->queries, 0u);
  }
}

TEST(ClusterE2E, CoalescesConcurrentDuplicateQueriesClusterWide) {
  TrainedStack& stack = Stack();
  LocalCluster cluster(stack.search.Benchmark(), stack.registry, Workers(2));
  Router router(cluster.Endpoints(), {});

  // Pre-encode outside the threads: PlanSearch::EncodedFor memoizes without
  // a lock, and the whole point here is hitting the *router* concurrently.
  const sim::Mesh mesh = stack.search.Meshes()[0];
  std::vector<parallel::StageQuery> batch;
  std::vector<std::uint64_t> fingerprints;
  for (std::int32_t layer = 0; layer < 4; ++layer) {
    batch.push_back({{layer, layer + 1}, mesh});
    const graph::EncodedGraph& g = stack.search.EncodedFor({layer, layer + 1});
    fingerprints.push_back(g.fingerprint != 0 ? g.fingerprint
                                              : graph::EncodedGraphFingerprint(g));
  }

  // Slow every forward so all threads genuinely overlap one in-flight RPC.
  InjectorGuard guard("predict_delay_ms:60");
  constexpr int kThreads = 6;
  std::vector<std::vector<Router::Reply>> replies(kThreads);
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      replies[t] = router.PredictMany(stack.keys[0], batch, fingerprints);
    });
  }
  for (std::thread& thread : threads) thread.join();

  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(replies[t].size(), batch.size());
    for (std::size_t q = 0; q < batch.size(); ++q) {
      ASSERT_TRUE(replies[t][q].ok);
      EXPECT_EQ(replies[t][q].latency_s, replies[0][q].latency_s);
    }
  }
  // Cluster-wide dedup: 6 threads x 4 queries, but each distinct stage was
  // forwarded through a model exactly once across the whole cluster. The
  // interior transformer layers of a homogeneous GPT share one DAG
  // fingerprint, so "distinct" is counted in fingerprints, not slices.
  const std::set<std::uint64_t> distinct(fingerprints.begin(), fingerprints.end());
  std::uint64_t forwards = 0;
  for (std::size_t w = 0; w < cluster.NumWorkers(); ++w) {
    forwards += cluster.WorkerAt(w).Service()->Stats().forwards;
  }
  EXPECT_EQ(forwards, distinct.size());
  EXPECT_GT(router.Stats().coalesced, 0u);
}

TEST(ClusterE2E, FailoverToReplicaAfterWorkerDeath) {
  TrainedStack& stack = Stack();
  LocalCluster cluster(stack.search.Benchmark(), stack.registry, Workers(3));
  RouterOptions options;
  options.replicas = 2;
  options.connect_timeout_ms = 150.0;
  options.revive_after_ms = 60000.0;  // stay dead for the whole test
  Router router(cluster.Endpoints(), options);
  const ClusterOracle oracle(router, stack.search.Meshes(), stack.keys, stack.Encoder(),
                             stack.search.EffectiveMaxSpan());

  // Kill one replica before anything was sent; every query it owned must
  // silently fail over to its second replica.
  cluster.StopWorker(0);

  const std::vector<parallel::StageQuery> table = stack.FullTable();
  std::size_t owned_by_dead = 0;
  for (const parallel::StageQuery& query : table) {
    const graph::EncodedGraph& g = stack.search.EncodedFor(query.slice);
    const std::uint64_t fp =
        g.fingerprint != 0 ? g.fingerprint : graph::EncodedGraphFingerprint(g);
    if (router.Ring().Route(fp, options.replicas)[0] == 0) ++owned_by_dead;
  }
  ASSERT_GT(owned_by_dead, 0u) << "fixture: no query owned by the dead worker";

  const std::vector<parallel::StageLatencyResult> results = oracle.PredictBatch(table);
  ASSERT_EQ(results.size(), table.size());
  for (std::size_t q = 0; q < table.size(); ++q) {
    EXPECT_EQ(results[q].latency_s, stack.Direct(table[q].slice, table[q].mesh).latency_s);
    EXPECT_FALSE(results[q].degraded);
  }
  EXPECT_EQ(oracle.Stats().degraded, 0u);
  // Duplicate fingerprints coalesce into one owner slot each, so the
  // failover count tracks distinct in-flight queries, not table cells —
  // assert the path fired, not an exact tally.
  EXPECT_GE(router.Stats().failovers, 1u);
  EXPECT_GE(router.Stats().worker_failures, 1u);
  EXPECT_FALSE(router.WorkerAlive(0));
}

TEST(ClusterE2E, MidFlightKillDegradesToFallbackWithFinitePlan) {
  TrainedStack& stack = Stack();
  LocalCluster cluster(stack.search.Benchmark(), stack.registry, Workers(2));
  RouterOptions options;
  options.replicas = 1;  // no replica: the dead worker's shard must degrade
  options.connect_timeout_ms = 50.0;
  options.revive_after_ms = 60000.0;
  Router router(cluster.Endpoints(), options);

  ClusterOracleOptions oracle_options;
  oracle_options.fallback = std::make_shared<serve::FallbackOracle>(
      sim::Platform1().device, [&stack](ir::StageSlice s) -> const ir::StageProgram& {
        return stack.search.ProgramFor(s);
      });
  const ClusterOracle oracle(router, stack.search.Meshes(), stack.keys, stack.Encoder(),
                             stack.search.EffectiveMaxSpan(), oracle_options);

  // Pre-warm the memoized encoder/program caches (not thread-safe) so the
  // background optimize thread only reads them.
  for (const parallel::StageQuery& query : stack.FullTable()) {
    (void)stack.search.EncodedFor(query.slice);
    (void)stack.search.ProgramFor(query.slice);
  }

  ASSERT_GT([&] {
    std::size_t owned = 0;
    for (const parallel::StageQuery& query : stack.FullTable()) {
      const graph::EncodedGraph& g = stack.search.EncodedFor(query.slice);
      const std::uint64_t fp =
          g.fingerprint != 0 ? g.fingerprint : graph::EncodedGraphFingerprint(g);
      if (router.Ring().Owner(fp) == 0) ++owned;
    }
    return owned;
  }(), 0u) << "fixture: nothing routed to the worker being killed";

  // Every forward sleeps 40 ms, so worker 0 is guaranteed to still be
  // mid-PredictMany when the kill lands 20 ms in.
  InjectorGuard guard("predict_delay_ms:40");
  const parallel::InterOpOptimizer optimizer = stack.search.MakeOptimizer();
  parallel::PipelinePlan plan;
  std::thread optimize([&] { plan = optimizer.Optimize(oracle.AsBatchOracle()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  cluster.StopWorker(0);
  optimize.join();

  // The drill contract: a valid, finite plan, with the dead shard's queries
  // answered by the analytical fallback and tagged degraded.
  ASSERT_TRUE(plan.Valid());
  EXPECT_TRUE(std::isfinite(plan.iteration_latency_s));
  EXPECT_GT(oracle.Stats().degraded, 0u);
  EXPECT_GE(router.Stats().unanswered, 1u);
  EXPECT_GE(router.Stats().worker_failures, 1u);
}

// ---- deadline propagation (thread-only; in the tsan lane) ----

/// Fingerprint of a stage slice as the router computes it.
std::uint64_t FingerprintOf(TrainedStack& stack, ir::StageSlice slice) {
  const graph::EncodedGraph& g = stack.search.EncodedFor(slice);
  return g.fingerprint != 0 ? g.fingerprint : graph::EncodedGraphFingerprint(g);
}

TEST(Deadline, WorkerShedsExpiredPredictBeforeAnyWork) {
  TrainedStack& stack = Stack();
  LocalCluster cluster(stack.search.Benchmark(), stack.registry, Workers(1));
  Socket client = ConnectTo(cluster.Endpoints()[0]);

  PredictRequest request;
  request.key = stack.keys[0];
  request.queries = {{{0, 1}, stack.search.Meshes()[0]}};
  // A deadline one second in the past: the worker must shed before decoding
  // the payload or touching a model.
  Frame frame{MessageType::kPredictRequest, 1, EncodePredictRequest(request),
              util::SteadyNowUs() - 1'000'000};
  SendFrame(client, frame);
  const Frame reply = RecvFrame(client, 2000.0);
  ASSERT_EQ(reply.type, MessageType::kError);
  EXPECT_EQ(DecodeErrorBody(reply.payload).code, fault::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(cluster.WorkerAt(0).ShedExpired(), 1u);
  EXPECT_EQ(cluster.WorkerAt(0).Service()->Stats().forwards, 0u);

  // The same request under a generous deadline is served normally.
  frame.request_id = 2;
  frame.deadline_us = util::DeadlineAfterMs(30000.0);
  SendFrame(client, frame);
  const Frame served = RecvFrame(client, 30000.0);
  EXPECT_EQ(served.type, MessageType::kPredictResponse);
  EXPECT_EQ(cluster.WorkerAt(0).ShedExpired(), 1u);

  // The shed surfaces in the worker's stats frame.
  SendFrame(client, {MessageType::kStatsRequest, 3, {}});
  const Frame stats_reply = RecvFrame(client, 2000.0);
  ASSERT_EQ(stats_reply.type, MessageType::kStatsResponse);
  const StatsBody stats = DecodeStatsBody(stats_reply.payload);
  EXPECT_GE(stats.shed_expired, 1u);
  EXPECT_EQ(stats.late_completions, 0u);
}

TEST(Deadline, RouterGatesExpiredBatchesWithoutDispatch) {
  TrainedStack& stack = Stack();
  LocalCluster cluster(stack.search.Benchmark(), stack.registry, Workers(2));
  Router router(cluster.Endpoints(), {});

  const Router::Reply reply =
      router.Predict(stack.keys[0], {{0, 2}, stack.search.Meshes()[0]},
                     FingerprintOf(stack, {0, 2}), util::SteadyNowUs() - 1'000'000);
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.code, fault::StatusCode::kDeadlineExceeded);
  EXPECT_GE(router.Stats().expired, 1u);
  // Nothing was dispatched, and an expired deadline is the caller's fault,
  // not the workers': both stay alive.
  EXPECT_EQ(cluster.WorkerAt(0).RequestsServed() + cluster.WorkerAt(1).RequestsServed(), 0u);
  EXPECT_TRUE(router.WorkerAlive(0));
  EXPECT_TRUE(router.WorkerAlive(1));

  // With a live deadline the same query answers exactly.
  const Router::Reply served =
      router.Predict(stack.keys[0], {{0, 2}, stack.search.Meshes()[0]},
                     FingerprintOf(stack, {0, 2}), util::DeadlineAfterMs(30000.0));
  ASSERT_TRUE(served.ok);
  EXPECT_EQ(served.latency_s, stack.Direct({0, 2}, stack.search.Meshes()[0]).latency_s);
}

TEST(Deadline, RouterDefaultDeadlineComesFromEnv) {
  ::setenv("PREDTOP_DEADLINE_MS", "1500", 1);
  const RouterOptions from_env = RouterOptions::FromEnv();
  ::unsetenv("PREDTOP_DEADLINE_MS");
  EXPECT_EQ(from_env.default_deadline_ms, 1500.0);
  // Plain RouterOptions{} stays env-free: existing constructions are
  // unaffected unless they opt in via FromEnv().
  const RouterOptions plain;
  EXPECT_EQ(plain.default_deadline_ms, 0.0);
}

// ---- admission control (thread-only; in the tsan lane) ----

TEST(Admission, InflightBudgetShedsTypedOverload) {
  TrainedStack& stack = Stack();
  LocalClusterOptions local = Workers(1);
  local.max_inflight = 1;
  LocalCluster cluster(stack.search.Benchmark(), stack.registry, local);

  PredictRequest request;
  request.key = stack.keys[0];
  request.queries = {{{0, 1}, stack.search.Meshes()[0]}};
  const std::string payload = EncodePredictRequest(request);

  // Hold the worker's only predict slot with a slow forward...
  InjectorGuard guard("predict_delay_ms:250");
  Socket slow = ConnectTo(cluster.Endpoints()[0]);
  SendFrame(slow, {MessageType::kPredictRequest, 1, payload});
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // ...and a second predict fast-rejects typed instead of queueing.
  Socket rejected = ConnectTo(cluster.Endpoints()[0]);
  SendFrame(rejected, {MessageType::kPredictRequest, 1, payload});
  const Frame fast = RecvFrame(rejected, 2000.0);
  ASSERT_EQ(fast.type, MessageType::kError);
  EXPECT_EQ(DecodeErrorBody(fast.payload).code, fault::StatusCode::kOverloaded);
  EXPECT_EQ(cluster.WorkerAt(0).ShedOverload(), 1u);

  // Admitted work completes untouched.
  const Frame slow_reply = RecvFrame(slow, 10000.0);
  EXPECT_EQ(slow_reply.type, MessageType::kPredictResponse);
}

TEST(Admission, ConnectionBudgetKeepsHealthServedWhileSheddingPredicts) {
  TrainedStack& stack = Stack();
  LocalClusterOptions local = Workers(1);
  local.max_connections = 1;
  LocalCluster cluster(stack.search.Benchmark(), stack.registry, local);

  // First connection: within budget, fully served.
  Socket first = ConnectTo(cluster.Endpoints()[0]);
  SendFrame(first, {MessageType::kHealthRequest, 1, {}});
  ASSERT_EQ(RecvFrame(first, 2000.0).type, MessageType::kHealthResponse);

  // Second connection is over budget: predicts shed typed...
  PredictRequest request;
  request.key = stack.keys[0];
  request.queries = {{{0, 1}, stack.search.Meshes()[0]}};
  Socket second = ConnectTo(cluster.Endpoints()[0]);
  SendFrame(second, {MessageType::kPredictRequest, 1, EncodePredictRequest(request)});
  const Frame shed = RecvFrame(second, 2000.0);
  ASSERT_EQ(shed.type, MessageType::kError);
  EXPECT_EQ(DecodeErrorBody(shed.payload).code, fault::StatusCode::kOverloaded);
  EXPECT_GE(cluster.WorkerAt(0).ShedOverload(), 1u);

  // ...but health — the supervisor's heartbeat — still answers, so an
  // overloaded worker never looks dead to its supervisor.
  SendFrame(second, {MessageType::kHealthRequest, 2, {}});
  const Frame health = RecvFrame(second, 2000.0);
  ASSERT_EQ(health.type, MessageType::kHealthResponse);
  EXPECT_TRUE(DecodeHealthBody(health.payload).ok);
}

TEST(Admission, RouterFailsOverOverloadedWorkerToReplica) {
  TrainedStack& stack = Stack();
  LocalClusterOptions local = Workers(2);
  local.max_inflight = 1;
  LocalCluster cluster(stack.search.Benchmark(), stack.registry, local);
  RouterOptions options;
  options.replicas = 2;
  Router router(cluster.Endpoints(), options);

  // Find a (slice, mesh) owned by worker 0.
  std::size_t mesh_index = stack.search.Meshes().size();
  ir::StageSlice slice{0, 1};
  for (const parallel::StageQuery& query : stack.FullTable()) {
    if (router.Ring().Owner(FingerprintOf(stack, query.slice)) != 0) continue;
    slice = query.slice;
    for (std::size_t m = 0; m < stack.search.Meshes().size(); ++m) {
      if (stack.search.Meshes()[m] == query.mesh) mesh_index = m;
    }
    break;
  }
  ASSERT_LT(mesh_index, stack.search.Meshes().size())
      << "fixture: no query owned by worker 0";
  const sim::Mesh mesh = stack.search.Meshes()[mesh_index];

  // Occupy worker 0's only predict slot with a slow direct request.
  PredictRequest hog_request;
  hog_request.key = stack.keys[mesh_index];
  hog_request.queries = {{slice, mesh}};
  InjectorGuard guard("predict_delay_ms:250");
  Socket hog = ConnectTo(cluster.Endpoints()[0]);
  SendFrame(hog, {MessageType::kPredictRequest, 1, EncodePredictRequest(hog_request)});
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // The routed query hits the overloaded owner, gets the typed kOverloaded
  // fast-reject, and fails over to the replica — same exact answer.
  const Router::Reply reply = router.Predict(stack.keys[mesh_index], {slice, mesh},
                                             FingerprintOf(stack, slice));
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.latency_s, stack.Direct(slice, mesh).latency_s);
  EXPECT_GE(router.Stats().overloaded, 1u);
  EXPECT_GE(router.Stats().failovers, 1u);
  // A single overload sample is not an error *rate*: the breaker stays
  // closed and the worker stays routable.
  EXPECT_TRUE(router.WorkerAlive(0));
  EXPECT_EQ(router.WorkerBreaker(0), BreakerState::kClosed);

  (void)RecvFrame(hog, 10000.0);  // let the hog finish cleanly
}

// ---- router timeout / circuit breaker (thread-only; in the tsan lane) ----

TEST(RouterTimeout, AbandonedReplyReconnectsInsteadOfDesyncing) {
  TrainedStack& stack = Stack();
  LocalCluster cluster(stack.search.Benchmark(), stack.registry, Workers(1));
  RouterOptions options;
  options.replicas = 1;
  options.request_timeout_ms = 60.0;
  options.revive_after_ms = 150.0;
  Router router(cluster.Endpoints(), options);

  const sim::Mesh mesh = stack.search.Meshes()[0];
  const std::uint64_t fp = FingerprintOf(stack, {0, 2});

  Router::Reply reply;
  {
    InjectorGuard guard("predict_delay_ms:250");  // way past the 60 ms budget
    reply = router.Predict(stack.keys[0], {{0, 2}, mesh}, fp);
  }
  // The attempt was abandoned: typed failure, breaker open.
  EXPECT_FALSE(reply.ok);
  EXPECT_GE(router.Stats().worker_failures, 1u);
  EXPECT_GE(router.Stats().breaker_trips, 1u);
  EXPECT_EQ(router.WorkerBreaker(0), BreakerState::kOpen);

  // The abandoned reply lands on a connection the router already closed. A
  // fresh attempt after the breaker half-opens reconnects and sees only its
  // own reply — the regression was reading the stale frame on the old
  // stream and desyncing every request after it.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  EXPECT_EQ(router.WorkerBreaker(0), BreakerState::kHalfOpen);
  const Router::Reply retry = router.Predict(stack.keys[0], {{0, 2}, mesh}, fp);
  ASSERT_TRUE(retry.ok);
  EXPECT_EQ(retry.latency_s, stack.Direct({0, 2}, mesh).latency_s);
  // The successful half-open probe closed the breaker.
  EXPECT_TRUE(router.WorkerAlive(0));
  EXPECT_EQ(router.WorkerBreaker(0), BreakerState::kClosed);
}

TEST(RouterTimeout, RetryBudgetDeniesFailoverStorms) {
  TrainedStack& stack = Stack();
  LocalCluster cluster(stack.search.Benchmark(), stack.registry, Workers(2));
  RouterOptions options;
  options.replicas = 2;
  options.connect_timeout_ms = 100.0;
  options.revive_after_ms = 60000.0;
  options.retry_budget_initial = 0.0;  // dry bucket: every failover denied
  options.retry_budget_per_query = 0.0;
  Router router(cluster.Endpoints(), options);

  // Find a query owned by worker 0, then kill worker 0.
  ir::StageSlice slice{0, 1};
  std::size_t mesh_index = 0;
  for (const parallel::StageQuery& query : stack.FullTable()) {
    if (router.Ring().Owner(FingerprintOf(stack, query.slice)) != 0) continue;
    slice = query.slice;
    for (std::size_t m = 0; m < stack.search.Meshes().size(); ++m) {
      if (stack.search.Meshes()[m] == query.mesh) mesh_index = m;
    }
    break;
  }
  cluster.StopWorker(0);

  const Router::Reply reply =
      router.Predict(stack.keys[mesh_index], {slice, stack.search.Meshes()[mesh_index]},
                     FingerprintOf(stack, slice));
  // The transport failure would normally fail over to worker 1 — but the
  // bucket is dry, so the retry is denied and the query fails fast.
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.code, fault::StatusCode::kUnavailable);
  EXPECT_GE(router.Stats().retries_denied, 1u);
  EXPECT_EQ(router.Stats().failovers, 0u);
}

// ---- connection-thread reaping (thread-only; in the tsan lane) ----

TEST(WorkerReap, ShortLivedConnectionsAreReapedNotAccumulated) {
  TrainedStack& stack = Stack();
  LocalCluster cluster(stack.search.Benchmark(), stack.registry, Workers(1));

  // The regression: every connection left a joinable thread in the worker
  // until shutdown. 40 short-lived connections must not pile up 40 threads.
  for (int i = 0; i < 40; ++i) {
    Socket client = ConnectTo(cluster.Endpoints()[0]);
    SendFrame(client, {MessageType::kHealthRequest, 1, {}});
    (void)RecvFrame(client, 2000.0);
  }
  // Give the 40 serving threads a beat to notice the hangups, then poke one
  // more connection: its accept reaps everything already finished.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  Socket last = ConnectTo(cluster.Endpoints()[0]);
  SendFrame(last, {MessageType::kHealthRequest, 1, {}});
  (void)RecvFrame(last, 2000.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_LE(cluster.WorkerAt(0).ActiveConnectionThreads(), 3u)
      << "finished connection threads must be reaped as the worker serves";
  EXPECT_EQ(cluster.WorkerAt(0).RequestsServed(), 41u);
}

// ---- multi-process acceptance: real workers, real SIGKILL ----

TEST(ClusterProcess, PlanSearchSurvivesSigkilledWorker) {
  TrainedStack& stack = Stack();
  const ir::Gpt3Config config = TinyGptConfig();

  std::vector<std::string> model_flags;
  for (std::size_t m = 0; m < stack.search.Meshes().size(); ++m) {
    const sim::Mesh mesh = stack.search.Meshes()[m];
    model_flags.push_back("--model");
    model_flags.push_back("mesh=" + std::to_string(mesh.num_nodes) + "x" +
                          std::to_string(mesh.gpus_per_node) +
                          ",path=" + stack.ptck_paths[m]);
  }

  std::vector<Endpoint> endpoints;
  std::vector<pid_t> pids;
  for (int w = 0; w < 2; ++w) {
    const std::string socket_path = TempPath("proc_worker" + std::to_string(w) + ".sock");
    std::remove(socket_path.c_str());
    std::vector<std::string> args{
        "--listen",    "unix:" + socket_path,
        "--benchmark", "gpt3",
        "--platform",  "platform1",
        "--layers",    std::to_string(config.num_layers),
        "--seq",       std::to_string(config.seq_len),
        "--hidden",    std::to_string(config.hidden),
        "--heads",     std::to_string(config.num_heads),
        "--vocab",     std::to_string(config.vocab),
        "--micro",     std::to_string(config.microbatch),
    };
    args.insert(args.end(), model_flags.begin(), model_flags.end());
    // Slow the children's forwards so the SIGKILL below reliably lands
    // mid-PredictMany.
    const pid_t pid = SpawnWorkerProcess(args, {"PREDTOP_FAULT=predict_delay_ms:10"});
    ASSERT_GT(pid, 0);
    pids.push_back(pid);
    endpoints.push_back(Endpoint::Unix(socket_path));
  }

  RouterOptions router_options;
  router_options.replicas = 2;
  router_options.connect_timeout_ms = 10000.0;  // children load checkpoints first
  router_options.revive_after_ms = 60000.0;
  Router router(endpoints, router_options);
  const std::vector<bool> health = router.Health();
  ASSERT_TRUE(health[0]) << "worker process 0 never came up";
  ASSERT_TRUE(health[1]) << "worker process 1 never came up";

  const ClusterOracle oracle(router, stack.search.Meshes(), stack.keys, stack.Encoder(),
                             stack.search.EffectiveMaxSpan());
  // Pre-warm the (not thread-safe) encoder cache before the worker thread.
  for (const parallel::StageQuery& query : stack.FullTable()) {
    (void)stack.search.EncodedFor(query.slice);
  }

  const parallel::InterOpOptimizer optimizer = stack.search.MakeOptimizer();
  parallel::PipelinePlan cluster_plan;
  std::thread optimize([&] { cluster_plan = optimizer.Optimize(oracle.AsBatchOracle()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ::kill(pids[0], SIGKILL);
  optimize.join();

  int wstatus = WaitForExit(pids[0]);
  EXPECT_TRUE(WIFSIGNALED(wstatus));
  EXPECT_EQ(WTERMSIG(wstatus), SIGKILL);

  // Replication factor 2 with a homogeneous model set: the surviving worker
  // answers every query the dead one owned, bit-identically, so the plan
  // equals the direct in-process result despite the kill.
  const parallel::PipelinePlan direct_plan = optimizer.Optimize(
      [&stack](ir::StageSlice slice, sim::Mesh mesh) { return stack.Direct(slice, mesh); });
  ExpectPlansEqual(cluster_plan, direct_plan);
  EXPECT_EQ(oracle.Stats().degraded, 0u);
  EXPECT_GE(router.Stats().worker_failures, 1u);
  EXPECT_FALSE(router.WorkerAlive(0));

  router.ShutdownWorkers();
  wstatus = WaitForExit(pids[1]);
  EXPECT_TRUE(WIFEXITED(wstatus));
  EXPECT_EQ(WEXITSTATUS(wstatus), 0);
}

// ---- supervisor: self-healing worker processes ----
// (fork/exec based — named SupervisorProcess.* so the tsan lane, which
// cannot follow fork, never selects them.)

/// Full worker argv tail (for Supervisor specs) serving the trained stack's
/// checkpoints on `socket_path`. `extra` appends worker flags.
std::vector<std::string> SupervisedWorkerArgs(TrainedStack& stack,
                                              const std::string& socket_path,
                                              const std::vector<std::string>& extra = {}) {
  const ir::Gpt3Config config = TinyGptConfig();
  std::vector<std::string> args{
      "--cluster-worker",
      "--listen",    "unix:" + socket_path,
      "--benchmark", "gpt3",
      "--platform",  "platform1",
      "--layers",    std::to_string(config.num_layers),
      "--seq",       std::to_string(config.seq_len),
      "--hidden",    std::to_string(config.hidden),
      "--heads",     std::to_string(config.num_heads),
      "--vocab",     std::to_string(config.vocab),
      "--micro",     std::to_string(config.microbatch),
  };
  for (std::size_t m = 0; m < stack.search.Meshes().size(); ++m) {
    const sim::Mesh mesh = stack.search.Meshes()[m];
    args.push_back("--model");
    args.push_back("mesh=" + std::to_string(mesh.num_nodes) + "x" +
                   std::to_string(mesh.gpus_per_node) + ",path=" + stack.ptck_paths[m]);
  }
  args.insert(args.end(), extra.begin(), extra.end());
  return args;
}

/// Poll `predicate` every 20 ms until it holds or `timeout_ms` passes.
bool PollFor(double timeout_ms, const std::function<bool()>& predicate) {
  const std::uint64_t deadline = util::DeadlineAfterMs(timeout_ms);
  while (!predicate()) {
    if (util::DeadlineExpired(deadline)) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return true;
}

TEST(SupervisorProcess, CrashLoopBacksOffThenQuarantines) {
  // A worker whose checkpoint is missing exits typed 10 + kIoError — a
  // restartable failure. The supervisor retries with backoff; the crash
  // loop parks it in quarantine instead of respawning forever.
  const std::string socket_path = TempPath("crash_loop.sock");
  SupervisedWorkerSpec spec;
  spec.endpoint = Endpoint::Unix(socket_path);
  spec.args = {"--cluster-worker",
               "--listen", "unix:" + socket_path,
               "--benchmark", "gpt3",
               "--model", "mesh=1x1,path=" + TempPath("never_existed.ptck")};
  SupervisorOptions options;
  options.backoff_initial_ms = 20.0;
  options.backoff_max_ms = 100.0;
  options.crash_loop_threshold = 3;
  options.crash_loop_window_ms = 60000.0;
  options.quarantine_ms = 60000.0;  // park and stay parked for the assert
  Supervisor supervisor({spec}, options);
  supervisor.Start();

  ASSERT_TRUE(PollFor(20000.0, [&] {
    return supervisor.Status(0).phase == WorkerPhase::kQuarantined;
  })) << "crash loop never reached quarantine; phase="
      << WorkerPhaseName(supervisor.Status(0).phase);
  const SupervisedWorkerStatus status = supervisor.Status(0);
  EXPECT_GE(status.restarts, 3u);
  EXPECT_EQ(status.last_exit.code(), fault::StatusCode::kIoError)
      << status.last_exit.ToString();
  supervisor.Stop();
  EXPECT_EQ(supervisor.Status(0).phase, WorkerPhase::kStopped);
}

TEST(SupervisorProcess, CorruptCheckpointIsPermanentFailure) {
  // kCorruption says a restart would fail identically: no crash loop, the
  // worker is marked failed on the first exit.
  const std::string ptck = TempPath("supervisor_corrupt.ptck");
  {
    std::ofstream out(ptck, std::ios::binary);
    out << "PTCKgarbage-that-is-not-a-checkpoint";
  }
  const std::string socket_path = TempPath("corrupt_sup.sock");
  SupervisedWorkerSpec spec;
  spec.endpoint = Endpoint::Unix(socket_path);
  spec.args = {"--cluster-worker",
               "--listen", "unix:" + socket_path,
               "--benchmark", "gpt3",
               "--model", "mesh=1x1,path=" + ptck};
  SupervisorOptions options;
  options.backoff_initial_ms = 20.0;
  Supervisor supervisor({spec}, options);
  supervisor.Start();

  ASSERT_TRUE(PollFor(20000.0, [&] {
    return supervisor.Status(0).phase == WorkerPhase::kFailed;
  }));
  const SupervisedWorkerStatus status = supervisor.Status(0);
  EXPECT_EQ(status.restarts, 0u);
  EXPECT_EQ(status.pid, -1);
  EXPECT_EQ(status.last_exit.code(), fault::StatusCode::kCorruption)
      << status.last_exit.ToString();
  // It stays failed — no respawn attempts accumulate.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_EQ(supervisor.Status(0).phase, WorkerPhase::kFailed);
  EXPECT_EQ(supervisor.Status(0).restarts, 0u);
  supervisor.Stop();
  std::remove(ptck.c_str());
}

TEST(SupervisorProcess, HeartbeatDropInjectionDeclaresHealthyWorkerHung) {
  // The hb_drop site makes every probe report a miss without touching the
  // socket: hung-worker detection drills deterministically, no SIGSTOP
  // timing games.
  TrainedStack& stack = Stack();
  const std::string socket_path = TempPath("hb_drop.sock");
  std::remove(socket_path.c_str());
  SupervisedWorkerSpec spec;
  spec.endpoint = Endpoint::Unix(socket_path);
  spec.args = SupervisedWorkerArgs(stack, socket_path);
  SupervisorOptions options;
  options.heartbeat_interval_ms = 50.0;
  options.heartbeat_timeout_ms = 150.0;
  options.max_heartbeat_misses = 2;
  options.startup_grace_ms = 60000.0;
  options.backoff_initial_ms = 50.0;
  Supervisor supervisor({spec}, options);
  supervisor.Start();
  ASSERT_TRUE(supervisor.WaitUntilUp(0, 60000.0));
  const pid_t first_pid = supervisor.Status(0).pid;

  {
    InjectorGuard guard("hb_drop:1");
    ASSERT_TRUE(PollFor(20000.0, [&] { return supervisor.Status(0).hung_kills >= 1; }))
        << "dropped heartbeats never tripped the hung-worker deadline";
  }
  // Probes heal after the drill: the replacement process comes up.
  ASSERT_TRUE(supervisor.WaitUntilUp(0, 60000.0));
  EXPECT_NE(supervisor.Status(0).pid, first_pid);
  EXPECT_GE(supervisor.Status(0).restarts, 1u);
  EXPECT_EQ(supervisor.Status(0).last_exit.code(), fault::StatusCode::kUnavailable);
  supervisor.Stop();
}

TEST(SupervisorProcess, DrillPlanSearchSurvivesKillStopAndOverload) {
  // The end-to-end overload drill: a fig10-shaped plan search over a
  // supervised cluster stays correct while one worker is SIGKILLed, a
  // second is SIGSTOPped (hung, not dead), and injected overload sheds
  // traffic — and the supervisor brings every casualty back.
  TrainedStack& stack = Stack();
  std::vector<SupervisedWorkerSpec> specs;
  for (int w = 0; w < 3; ++w) {
    const std::string socket_path = TempPath("drill_worker" + std::to_string(w) + ".sock");
    std::remove(socket_path.c_str());
    SupervisedWorkerSpec spec;
    spec.endpoint = Endpoint::Unix(socket_path);
    // Tight admission + a small cache + slowed forwards so the overload
    // phase genuinely saturates the predict slots.
    spec.args = SupervisedWorkerArgs(stack, socket_path,
                                     {"--max-inflight", "2", "--cache", "8"});
    spec.extra_env = {"PREDTOP_FAULT=predict_delay_ms:5"};
    specs.push_back(std::move(spec));
  }
  SupervisorOptions sup_options;
  sup_options.heartbeat_interval_ms = 100.0;
  sup_options.heartbeat_timeout_ms = 200.0;
  sup_options.max_heartbeat_misses = 2;
  sup_options.startup_grace_ms = 60000.0;
  sup_options.backoff_initial_ms = 50.0;
  Supervisor supervisor(specs, sup_options);

  RouterOptions router_options;
  router_options.replicas = 2;
  router_options.connect_timeout_ms = 1000.0;
  router_options.request_timeout_ms = 1500.0;
  router_options.revive_after_ms = 60000.0;  // only the supervisor revives
  std::mutex router_mutex;
  std::unique_ptr<Router> router;
  // Close the loop: a restarted worker re-enters routing immediately.
  supervisor.SetOnWorkerUp([&](std::size_t index) {
    const std::scoped_lock lock(router_mutex);
    if (router) router->MarkRevived(index);
  });

  supervisor.Start();
  ASSERT_TRUE(supervisor.WaitAllUp(120000.0));
  {
    const std::scoped_lock lock(router_mutex);
    router = std::make_unique<Router>(supervisor.Endpoints(), router_options);
  }
  const ClusterOracle oracle(*router, stack.search.Meshes(), stack.keys, stack.Encoder(),
                             stack.search.EffectiveMaxSpan());
  // Pre-warm the memoized (not thread-safe) caches read by worker threads.
  for (const parallel::StageQuery& query : stack.FullTable()) {
    (void)stack.search.EncodedFor(query.slice);
    (void)stack.search.ProgramFor(query.slice);
  }
  const parallel::InterOpOptimizer optimizer = stack.search.MakeOptimizer();
  const parallel::PipelinePlan direct_plan = optimizer.Optimize(
      [&stack](ir::StageSlice slice, sim::Mesh mesh) { return stack.Direct(slice, mesh); });

  // --- Phase 1: SIGKILL worker 0 mid-search. Replication keeps the plan
  // exactly equal to the in-process result; the supervisor restarts it.
  {
    parallel::PipelinePlan plan;
    std::thread optimize_thread([&] { plan = optimizer.Optimize(oracle.AsBatchOracle()); });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const pid_t victim = supervisor.Status(0).pid;
    ASSERT_GT(victim, 0);
    ::kill(victim, SIGKILL);
    optimize_thread.join();
    ExpectPlansEqual(plan, direct_plan);
    ASSERT_TRUE(supervisor.WaitUntilUp(0, 60000.0));
    EXPECT_GE(supervisor.Status(0).restarts, 1u);
    EXPECT_NE(supervisor.Status(0).pid, victim);
    // The on-up hook marked it revived: routing returns without waiting out
    // the breaker backoff.
    ASSERT_TRUE(PollFor(10000.0, [&] { return router->WorkerAlive(0); }));
  }

  // --- Phase 2: SIGSTOP worker 1 mid-search — alive to the kernel, hung to
  // everyone else. The router's per-attempt timeout trips the breaker and
  // fails over (plan still exact); the supervisor's heartbeat deadline
  // detects the hang, SIGKILLs and restarts it.
  {
    const std::uint64_t trips_before = router->Stats().breaker_trips;
    // Stop the worker before the search starts: phase 1 warmed the other
    // workers' caches, so a mid-flight stop could land after the victim
    // already answered its share. Hung-for-the-whole-search is the harder
    // case anyway — every query it owns must time out and fail over.
    const pid_t victim = supervisor.Status(1).pid;
    ASSERT_GT(victim, 0);
    ::kill(victim, SIGSTOP);
    parallel::PipelinePlan plan;
    std::thread optimize_thread([&] { plan = optimizer.Optimize(oracle.AsBatchOracle()); });
    optimize_thread.join();
    ExpectPlansEqual(plan, direct_plan);
    EXPECT_GE(router->Stats().breaker_trips, trips_before + 1)
        << "the stalled worker never tripped the breaker";
    ASSERT_TRUE(PollFor(30000.0, [&] { return supervisor.Status(1).hung_kills >= 1; }))
        << "heartbeat deadline never declared the SIGSTOPped worker hung";
    ASSERT_TRUE(supervisor.WaitUntilUp(1, 60000.0));
    EXPECT_NE(supervisor.Status(1).pid, victim);
    // Restart closes the breaker.
    ASSERT_TRUE(PollFor(10000.0, [&] { return router->WorkerAlive(1); }));
    EXPECT_EQ(router->WorkerBreaker(1), BreakerState::kClosed);
  }

  // --- Phase 3: injected overload. Hog threads saturate every worker's two
  // predict slots while the search runs with the analytical fallback: shed
  // traffic fails over or degrades, and the plan stays valid and finite.
  {
    ClusterOracleOptions oracle_options;
    oracle_options.fallback = std::make_shared<serve::FallbackOracle>(
        sim::Platform1().device, [&stack](ir::StageSlice s) -> const ir::StageProgram& {
          return stack.search.ProgramFor(s);
        });
    const ClusterOracle overloaded_oracle(*router, stack.search.Meshes(), stack.keys,
                                          stack.Encoder(), stack.search.EffectiveMaxSpan(),
                                          oracle_options);
    PredictRequest hog_request;
    hog_request.key = stack.keys[0];
    for (std::int32_t layer = 0; layer < 4; ++layer) {
      hog_request.queries.push_back({{layer, layer + 1}, stack.search.Meshes()[0]});
    }
    const std::string hog_payload = EncodePredictRequest(hog_request);
    std::atomic<bool> stop_hogs{false};
    std::vector<std::thread> hogs;
    for (std::size_t w = 0; w < supervisor.NumWorkers(); ++w) {
      for (int h = 0; h < 4; ++h) {
        hogs.emplace_back([&, w] {
          std::uint64_t id = 1;
          while (!stop_hogs.load(std::memory_order_acquire)) {
            try {
              Socket socket = ConnectTo(supervisor.Endpoints()[w], 200.0);
              SendFrame(socket, {MessageType::kPredictRequest, id++, hog_payload});
              (void)RecvFrame(socket, 2000.0);
            } catch (const std::exception&) {
              // Shed or timed out — the point of the drill.
            }
          }
        });
      }
    }
    parallel::PipelinePlan plan;
    std::thread optimize_thread(
        [&] { plan = optimizer.Optimize(overloaded_oracle.AsBatchOracle()); });
    optimize_thread.join();
    stop_hogs.store(true, std::memory_order_release);
    for (std::thread& hog : hogs) hog.join();

    ASSERT_TRUE(plan.Valid());
    EXPECT_TRUE(std::isfinite(plan.iteration_latency_s));
    // Admission control actually fired somewhere under 12 hog threads
    // against 2-slot workers.
    std::uint64_t total_shed = 0;
    for (const auto& stats : router->WorkerStats()) {
      if (stats.has_value()) total_shed += stats->shed_overload;
    }
    EXPECT_GE(total_shed, 1u) << "the overload phase never shed anything";
  }

  supervisor.Stop();
  for (std::size_t w = 0; w < supervisor.NumWorkers(); ++w) {
    EXPECT_EQ(supervisor.Status(w).phase, WorkerPhase::kStopped);
  }
}

}  // namespace
}  // namespace predtop::cluster

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--cluster-worker") == 0) {
      return predtop::cluster::WorkerMain(argc, argv);
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}

// Tests for the predtop::serve subsystem: checkpoint round-trips (and their
// failure modes), DAG fingerprints, the sharded LRU cache, the model
// registry, the prediction service, and the serving-backed plan search.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <limits>
#include <map>
#include <sstream>
#include <thread>
#include <utility>

#include "compile/batch.h"
#include "compile/program.h"
#include "core/plan_search.h"
#include "fault/injector.h"
#include "nn/infer.h"
#include "fault/status.h"
#include "graph/fingerprint.h"
#include "ir/stages.h"
#include "nn/linear.h"
#include "serve/lru_cache.h"
#include "serve/oracle.h"
#include "serve/service.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace predtop::serve {
namespace {

ir::Gpt3Config TinyGptConfig() {
  ir::Gpt3Config config;
  config.seq_len = 64;
  config.hidden = 64;
  config.num_layers = 4;
  config.num_heads = 4;
  config.vocab = 512;
  config.microbatch = 2;
  return config;
}

core::PredictorOptions TinyOptions() {
  core::PredictorOptions options;
  options.feature_dim = core::StageFeatureDim();
  options.dagt_dim = 16;
  options.dagt_layers = 2;
  options.dagt_heads = 2;
  options.gcn_dim = 32;
  options.gcn_layers = 3;
  options.gat_dim = 16;
  options.gat_layers = 3;
  return options;
}

/// One labeled tiny dataset shared by the checkpoint tests (built once —
/// compilation is the slow part).
const core::StageDataset& TinyDataset() {
  static const core::StageDataset dataset = [] {
    const core::BenchmarkModel benchmark = core::Gpt3Benchmark(TinyGptConfig());
    const parallel::IntraOpCompiler compiler(sim::Platform1(), sim::Mesh{1, 2});
    sim::Profiler profiler({}, 21);
    core::DatasetBuildConfig build;  // all 10 stages of the 4-layer model
    return BuildStageDataset(benchmark, compiler, {2, 1, 1}, profiler, build);
  }();
  return dataset;
}

core::LatencyRegressor TrainTinyRegressor(core::PredictorKind kind) {
  const core::StageDataset& dataset = TinyDataset();
  core::LatencyRegressor regressor(kind, TinyOptions());
  nn::TrainConfig train;
  train.max_epochs = 30;
  train.patience = 30;
  train.batch_size = 4;
  std::vector<std::size_t> idx{0, 1, 2, 3, 4, 5, 6, 7};
  regressor.Fit(dataset, idx, idx, train);
  return regressor;
}

// ---- checkpoint round-trip ----

TEST(Checkpoint, RoundTripIsBitIdenticalForAllPredictorKinds) {
  for (const core::PredictorKind kind :
       {core::PredictorKind::kDagTransformer, core::PredictorKind::kGcn,
        core::PredictorKind::kGat}) {
    core::LatencyRegressor trained = TrainTinyRegressor(kind);
    std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
    trained.Save(buffer);
    core::LatencyRegressor reloaded = core::LatencyRegressor::Load(buffer);
    EXPECT_EQ(reloaded.Kind(), kind);
    for (const core::StageSample& sample : TinyDataset().samples) {
      // Bit-identical, not approximately equal: the state dict stores exact
      // f32 weights and f64 normalization stats.
      EXPECT_EQ(reloaded.PredictSeconds(sample.encoded),
                trained.PredictSeconds(sample.encoded))
          << core::PredictorKindName(kind);
    }
  }
}

TEST(Checkpoint, FileRoundTripMatches) {
  core::LatencyRegressor trained = TrainTinyRegressor(core::PredictorKind::kDagTransformer);
  const std::string path =
      (std::filesystem::temp_directory_path() / "predtop_serve_test.ptck").string();
  trained.Save(path);
  core::LatencyRegressor reloaded = core::LatencyRegressor::Load(path);
  for (const core::StageSample& sample : TinyDataset().samples) {
    EXPECT_EQ(reloaded.PredictSeconds(sample.encoded), trained.PredictSeconds(sample.encoded));
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsBadMagic) {
  core::LatencyRegressor trained = TrainTinyRegressor(core::PredictorKind::kGcn);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  trained.Save(buffer);
  std::string bytes = buffer.str();
  bytes[0] = 'X';
  std::stringstream corrupt(bytes, std::ios::in | std::ios::binary);
  EXPECT_THROW((void)core::LatencyRegressor::Load(corrupt), std::runtime_error);
}

TEST(Checkpoint, RejectsUnsupportedVersion) {
  core::LatencyRegressor trained = TrainTinyRegressor(core::PredictorKind::kGcn);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  trained.Save(buffer);
  std::string bytes = buffer.str();
  bytes[4] = static_cast<char>(0x7f);  // version field follows the u32 magic
  std::stringstream corrupt(bytes, std::ios::in | std::ios::binary);
  EXPECT_THROW((void)core::LatencyRegressor::Load(corrupt), std::runtime_error);
}

TEST(Checkpoint, RejectsTruncation) {
  core::LatencyRegressor trained = TrainTinyRegressor(core::PredictorKind::kGat);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  trained.Save(buffer);
  const std::string bytes = buffer.str();
  // Cut at several depths: inside the header, the options, and the weights.
  for (const std::size_t keep :
       {std::size_t{3}, std::size_t{9}, bytes.size() / 2, bytes.size() - 5}) {
    std::stringstream truncated(bytes.substr(0, keep), std::ios::in | std::ios::binary);
    EXPECT_THROW((void)core::LatencyRegressor::Load(truncated), std::runtime_error)
        << "kept " << keep << " of " << bytes.size() << " bytes";
  }
}

TEST(Checkpoint, StateDictRejectsShapeMismatch) {
  util::Rng rng(7);
  nn::Linear small(4, 2, rng);
  nn::Linear large(4, 3, rng);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  small.Save(buffer);
  EXPECT_THROW(large.Load(buffer), std::runtime_error);
}

// ---- fingerprints ----

graph::OpDag DiamondDag(std::int32_t perturb_op = 0, bool extra_edge = false) {
  graph::OpDag dag;
  graph::DagNode a{graph::NodeKind::kInput, 0, 0, {8, 1, 1, 1}};
  graph::DagNode b{graph::NodeKind::kOperator, 3, 0, {8, 4, 1, 1}};
  graph::DagNode c{graph::NodeKind::kOperator, 5 + perturb_op, 0, {8, 4, 1, 1}};
  graph::DagNode d{graph::NodeKind::kOutput, 0, 0, {8, 4, 1, 1}};
  const auto ia = dag.AddNode(a), ib = dag.AddNode(b), ic = dag.AddNode(c),
             id = dag.AddNode(d);
  dag.AddEdge(ia, ib);
  dag.AddEdge(ia, ic);
  dag.AddEdge(ib, id);
  dag.AddEdge(ic, id);
  if (extra_edge) dag.AddEdge(ib, ic);
  return dag;
}

TEST(Fingerprint, InsertionOrderIndependent) {
  // The same diamond with its middle nodes inserted in swapped order (and
  // edges remapped accordingly) must fingerprint identically.
  graph::OpDag permuted;
  graph::DagNode a{graph::NodeKind::kInput, 0, 0, {8, 1, 1, 1}};
  graph::DagNode b{graph::NodeKind::kOperator, 3, 0, {8, 4, 1, 1}};
  graph::DagNode c{graph::NodeKind::kOperator, 5, 0, {8, 4, 1, 1}};
  graph::DagNode d{graph::NodeKind::kOutput, 0, 0, {8, 4, 1, 1}};
  const auto id = permuted.AddNode(d), ic = permuted.AddNode(c), ib = permuted.AddNode(b),
             ia = permuted.AddNode(a);
  permuted.AddEdge(ia, ib);
  permuted.AddEdge(ia, ic);
  permuted.AddEdge(ib, id);
  permuted.AddEdge(ic, id);
  EXPECT_EQ(graph::DagFingerprint(DiamondDag()), graph::DagFingerprint(permuted));
}

TEST(Fingerprint, SensitiveToNodeAndEdgePerturbations) {
  const std::uint64_t base = graph::DagFingerprint(DiamondDag());
  EXPECT_NE(base, graph::DagFingerprint(DiamondDag(/*perturb_op=*/1)));
  EXPECT_NE(base, graph::DagFingerprint(DiamondDag(0, /*extra_edge=*/true)));

  graph::OpDag bigger_dims = DiamondDag();
  bigger_dims.Node(1).out_dims[1] = 16;
  EXPECT_NE(base, graph::DagFingerprint(bigger_dims));

  graph::OpDag other_kind = DiamondDag();
  other_kind.Node(2).kind = graph::NodeKind::kLiteral;
  EXPECT_NE(base, graph::DagFingerprint(other_kind));
}

TEST(Fingerprint, EncodedGraphEqualStagesHashEqual) {
  const core::BenchmarkModel benchmark = core::Gpt3Benchmark(TinyGptConfig());
  const graph::EncodedGraph g1 = core::EncodeStage(benchmark.build_stage({1, 3}));
  const graph::EncodedGraph g2 = core::EncodeStage(benchmark.build_stage({1, 3}));
  const graph::EncodedGraph other = core::EncodeStage(benchmark.build_stage({0, 3}));
  EXPECT_EQ(graph::EncodedGraphFingerprint(g1), graph::EncodedGraphFingerprint(g2));
  EXPECT_NE(graph::EncodedGraphFingerprint(g1), graph::EncodedGraphFingerprint(other));
}

// ---- LRU cache ----

TEST(LruCache, HitsMissesAndEviction) {
  ShardedLruCache cache(/*capacity=*/4, /*shards=*/1);
  EXPECT_FALSE(cache.Get(1).has_value());
  for (std::uint64_t k = 1; k <= 4; ++k) cache.Put(k, static_cast<double>(k));
  EXPECT_EQ(cache.Get(1), 1.0);
  cache.Put(5, 5.0);  // evicts 2, the least recently used
  EXPECT_FALSE(cache.Get(2).has_value());
  EXPECT_EQ(cache.Get(1), 1.0);
  EXPECT_EQ(cache.Get(5), 5.0);
  const CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 4u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 2u);
}

TEST(LruCache, PutUpdatesExistingKey) {
  ShardedLruCache cache(4, 2);
  cache.Put(42, 1.0);
  cache.Put(42, 2.0);
  EXPECT_EQ(cache.Get(42), 2.0);
  EXPECT_EQ(cache.Stats().entries, 1u);
}

TEST(LruCache, CapacityReportsEnforcedBudget) {
  // Regression: per-shard budgets used to be rounded up and multiplied back,
  // so ShardedLruCache(10, 8).Capacity() reported 16 while the requested
  // budget was 10. Capacity() now equals the sum of per-shard budgets.
  EXPECT_EQ(ShardedLruCache(10, 8).Capacity(), 10u);
  EXPECT_EQ(ShardedLruCache(16, 8).Capacity(), 16u);
  EXPECT_EQ(ShardedLruCache(100, 1).Capacity(), 100u);
  // A shard never drops below one entry, so tiny budgets round up to the
  // shard count — the one case where Capacity() may exceed the request.
  EXPECT_EQ(ShardedLruCache(3, 8).Capacity(), 8u);
}

TEST(LruCache, EvictsLeastRecentlyUsedInOrder) {
  // Single shard so the global LRU order is observable: shard selection uses
  // key bits 48-63, so with multiple shards small keys would all collide in
  // shard 0 anyway — but we pin shards=1 to make the budget exact too.
  ShardedLruCache cache(/*capacity=*/3, /*shards=*/1);
  cache.Put(1, 1.0);
  cache.Put(2, 2.0);
  cache.Put(3, 3.0);
  EXPECT_EQ(cache.Get(1), 1.0);  // refresh 1: order now (LRU) 2, 3, 1 (MRU)
  cache.Put(4, 4.0);             // evicts 2
  EXPECT_FALSE(cache.Get(2).has_value());
  cache.Put(5, 5.0);  // evicts 3
  EXPECT_FALSE(cache.Get(3).has_value());
  EXPECT_EQ(cache.Get(1), 1.0);  // the refreshed key survived both evictions
  EXPECT_EQ(cache.Get(4), 4.0);
  EXPECT_EQ(cache.Get(5), 5.0);
  EXPECT_EQ(cache.Stats().evictions, 2u);
  EXPECT_EQ(cache.Stats().entries, 3u);
}

// ---- registry ----

TEST(Registry, RegisterFindAndKeys) {
  ModelRegistry registry;
  const ModelKey key{"gpt3", "platform1", sim::Mesh{1, 2}, {}};
  EXPECT_EQ(registry.Find(key), nullptr);
  registry.Register(key, std::make_shared<core::LatencyRegressor>(
                             core::PredictorKind::kGcn, TinyOptions()));
  EXPECT_NE(registry.Find(key), nullptr);
  EXPECT_EQ(registry.Size(), 1u);
  ASSERT_EQ(registry.Keys().size(), 1u);
  EXPECT_EQ(registry.Keys()[0], key);

  const ModelKey other{"gpt3", "platform1", sim::Mesh{2, 2}, {}};
  EXPECT_EQ(registry.Find(other), nullptr);
  EXPECT_NE(key.Hash(), other.Hash());
  EXPECT_THROW(registry.Register(key, nullptr), std::invalid_argument);
}

TEST(Registry, RegisterFromFileIsStrongExceptionSafe) {
  // A reload that hits a truncated checkpoint must throw and leave the
  // previously registered model in place — never a half-registered or
  // evicted entry.
  ModelRegistry registry;
  const ModelKey key{"gpt3", "platform1", sim::Mesh{1, 2}, {}};
  const auto original = std::make_shared<core::LatencyRegressor>(
      core::PredictorKind::kGcn, TinyOptions());
  registry.Register(key, original);

  const auto dir = std::filesystem::temp_directory_path();
  const std::string good = (dir / "predtop_registry_good.ptck").string();
  const std::string corrupt = (dir / "predtop_registry_corrupt.ptck").string();
  registry.SaveToFile(key, good);
  {
    std::ifstream in(good, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    std::ofstream out(corrupt, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }

  EXPECT_THROW(registry.RegisterFromFile(key, corrupt), std::runtime_error);
  EXPECT_EQ(registry.Find(key), original);  // untouched, same instance
  EXPECT_EQ(registry.Size(), 1u);

  EXPECT_THROW(registry.RegisterFromFile(key, (dir / "predtop_no_such.ptck").string()),
               std::runtime_error);
  EXPECT_EQ(registry.Find(key), original);

  registry.RegisterFromFile(key, good);  // a healthy reload still replaces
  EXPECT_NE(registry.Find(key), nullptr);
  EXPECT_NE(registry.Find(key), original);
  std::remove(good.c_str());
  std::remove(corrupt.c_str());
}

// ---- prediction service ----

TEST(Service, CachesRepeatQueriesAndCountsForwards) {
  auto registry = std::make_shared<ModelRegistry>();
  const ModelKey key{"gpt3", "platform1", sim::Mesh{1, 1}, {}};
  registry->Register(key, std::make_shared<core::LatencyRegressor>(
                              core::PredictorKind::kDagTransformer, TinyOptions()));
  PredictionService service(registry);

  const core::BenchmarkModel benchmark = core::Gpt3Benchmark(TinyGptConfig());
  const graph::EncodedGraph g = core::EncodeStage(benchmark.build_stage({0, 2}));
  const double first = service.Predict(key, g);
  const double second = service.Predict(key, g);
  EXPECT_EQ(first, second);
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_EQ(stats.forwards, 1u);
  EXPECT_EQ(stats.cache.hits, 1u);

  service.ClearCache();
  EXPECT_EQ(service.Predict(key, g), first);
  EXPECT_EQ(service.Stats().forwards, 2u);
}

TEST(Service, UnknownModelThrows) {
  PredictionService service(std::make_shared<ModelRegistry>());
  const core::BenchmarkModel benchmark = core::Gpt3Benchmark(TinyGptConfig());
  const graph::EncodedGraph g = core::EncodeStage(benchmark.build_stage({0, 1}));
  EXPECT_THROW((void)service.Predict({"gpt3", "p1", sim::Mesh{1, 1}, {}}, g),
               std::runtime_error);
}

TEST(Service, ShedsQueriesWhoseDeadlineAlreadyPassed) {
  auto registry = std::make_shared<ModelRegistry>();
  const ModelKey key{"gpt3", "platform1", sim::Mesh{1, 1}, {}};
  registry->Register(key, std::make_shared<core::LatencyRegressor>(
                              core::PredictorKind::kDagTransformer, TinyOptions()));
  PredictionService service(registry);
  const core::BenchmarkModel benchmark = core::Gpt3Benchmark(TinyGptConfig());
  const graph::EncodedGraph g = core::EncodeStage(benchmark.build_stage({0, 2}));

  // A deadline one second in the past: shed typed, before any forward runs.
  const std::uint64_t expired = util::SteadyNowUs() - 1'000'000;
  try {
    (void)service.Predict(key, g, expired);
    FAIL() << "expired deadline not shed";
  } catch (const fault::FaultError& e) {
    EXPECT_EQ(e.code(), fault::StatusCode::kDeadlineExceeded);
  }
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.forwards, 0u);

  // Cached answers still serve under an expired deadline — the work is
  // already done, so shedding it would save nothing.
  const double value = service.Predict(key, g, util::DeadlineAfterMs(5000.0));
  EXPECT_EQ(service.Predict(key, g, expired), value);
  stats = service.Stats();
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.forwards, 1u);

  // PredictMany sheds the whole batch the same way — using a graph that is
  // not already cached (cached batches, like cached singles, still serve).
  const graph::EncodedGraph uncached = core::EncodeStage(benchmark.build_stage({1, 3}));
  const std::vector<const graph::EncodedGraph*> batch{&uncached, &uncached};
  EXPECT_THROW((void)service.PredictMany(key, batch, expired), fault::FaultError);
}

TEST(Service, DeadlineMarginShedsForwardsThatCannotFinishInTime) {
  auto registry = std::make_shared<ModelRegistry>();
  const ModelKey key{"gpt3", "platform1", sim::Mesh{1, 1}, {}};
  registry->Register(key, std::make_shared<core::LatencyRegressor>(
                              core::PredictorKind::kDagTransformer, TinyOptions()));
  ServiceOptions options;
  options.deadline_margin_us = 60'000'000;  // a minute of required headroom
  PredictionService service(registry, options);
  const core::BenchmarkModel benchmark = core::Gpt3Benchmark(TinyGptConfig());
  const graph::EncodedGraph g = core::EncodeStage(benchmark.build_stage({0, 2}));

  // The deadline is comfortably in the future, but inside the margin: the
  // service predicts the forward cannot finish in time and sheds it.
  try {
    (void)service.Predict(key, g, util::DeadlineAfterMs(1000.0));
    FAIL() << "margin did not shed";
  } catch (const fault::FaultError& e) {
    EXPECT_EQ(e.code(), fault::StatusCode::kDeadlineExceeded);
  }
  EXPECT_EQ(service.Stats().expired, 1u);
  EXPECT_EQ(service.Stats().forwards, 0u);
}

TEST(Service, CountsForwardsThatCompleteLate) {
  auto registry = std::make_shared<ModelRegistry>();
  const ModelKey key{"gpt3", "platform1", sim::Mesh{1, 1}, {}};
  registry->Register(key, std::make_shared<core::LatencyRegressor>(
                              core::PredictorKind::kDagTransformer, TinyOptions()));
  PredictionService service(registry);
  const core::BenchmarkModel benchmark = core::Gpt3Benchmark(TinyGptConfig());
  const graph::EncodedGraph g = core::EncodeStage(benchmark.build_stage({0, 2}));

  // The deadline is alive when the forward starts but the (injected) forward
  // outlives it: the answer still returns — late, and counted as such.
  struct Guard {
    Guard() { fault::Injector::Global().Configure("predict_delay_ms:120", 1); }
    ~Guard() { fault::Injector::Global().Disable(); }
  } guard;
  (void)service.Predict(key, g, util::DeadlineAfterMs(30.0));
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.late, 1u);
  EXPECT_EQ(stats.expired, 0u);
  EXPECT_EQ(stats.forwards, 1u);
}

TEST(Service, PredictManyDedupesAndFansOut) {
  auto registry = std::make_shared<ModelRegistry>();
  const ModelKey key{"gpt3", "platform1", sim::Mesh{1, 1}, {}};
  registry->Register(key, std::make_shared<core::LatencyRegressor>(
                              core::PredictorKind::kGcn, TinyOptions()));
  ServiceOptions options;
  options.threads = 2;
  PredictionService service(registry, options);

  const core::BenchmarkModel benchmark = core::Gpt3Benchmark(TinyGptConfig());
  const graph::EncodedGraph g1 = core::EncodeStage(benchmark.build_stage({0, 2}));
  const graph::EncodedGraph g2 = core::EncodeStage(benchmark.build_stage({2, 4}));
  const std::vector<const graph::EncodedGraph*> batch{&g1, &g2, &g1, &g2, &g1};
  const std::vector<double> results = service.PredictMany(key, batch);
  ASSERT_EQ(results.size(), 5u);
  EXPECT_EQ(results[0], results[2]);
  EXPECT_EQ(results[0], results[4]);
  EXPECT_EQ(results[1], results[3]);
  EXPECT_NE(results[0], results[1]);

  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.batched_queries, 5u);
  EXPECT_EQ(stats.forwards, 2u);  // the three duplicates never reach a model
}

TEST(Service, ConcurrentIdenticalQueriesCoalesceOrHitCache) {
  auto registry = std::make_shared<ModelRegistry>();
  const ModelKey key{"gpt3", "platform1", sim::Mesh{1, 1}, {}};
  registry->Register(key, std::make_shared<core::LatencyRegressor>(
                              core::PredictorKind::kGat, TinyOptions()));
  PredictionService service(registry);
  const core::BenchmarkModel benchmark = core::Gpt3Benchmark(TinyGptConfig());
  const graph::EncodedGraph g = core::EncodeStage(benchmark.build_stage({0, 3}));

  constexpr int kThreads = 8;
  std::vector<double> values(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] { values[static_cast<std::size_t>(t)] = service.Predict(key, g); });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(values[0], values[static_cast<std::size_t>(t)]);
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.queries, static_cast<std::uint64_t>(kThreads));
  EXPECT_EQ(stats.forwards, 1u);  // everyone else hit the cache or coalesced
  EXPECT_EQ(stats.cache.hits + stats.coalesced, static_cast<std::uint64_t>(kThreads - 1));
}

TEST(Service, ConcurrentPredictManyWithOverlappingKeys) {
  // Two callers batch overlapping query sets concurrently. The shared stage
  // must be forwarded exactly once: either one caller's owner coalesces the
  // other, or the second owner's double-checked cache probe catches the
  // Put-before-erase window. Total forwards == number of distinct stages,
  // deterministically.
  auto registry = std::make_shared<ModelRegistry>();
  const ModelKey key{"gpt3", "platform1", sim::Mesh{1, 1}, {}};
  registry->Register(key, std::make_shared<core::LatencyRegressor>(
                              core::PredictorKind::kGcn, TinyOptions()));
  ServiceOptions options;
  options.threads = 2;
  PredictionService service(registry, options);

  const core::BenchmarkModel benchmark = core::Gpt3Benchmark(TinyGptConfig());
  const graph::EncodedGraph g1 = core::EncodeStage(benchmark.build_stage({0, 2}));
  const graph::EncodedGraph shared = core::EncodeStage(benchmark.build_stage({1, 3}));
  const graph::EncodedGraph g3 = core::EncodeStage(benchmark.build_stage({2, 4}));

  std::vector<double> a, b;
  std::thread ta([&] {
    a = service.PredictMany(key, std::vector<const graph::EncodedGraph*>{&g1, &shared});
  });
  std::thread tb([&] {
    b = service.PredictMany(key, std::vector<const graph::EncodedGraph*>{&shared, &g3});
  });
  ta.join();
  tb.join();

  ASSERT_EQ(a.size(), 2u);
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(a[1], b[0]);  // both callers see the same value for the shared stage
  EXPECT_NE(a[0], b[1]);
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.batches, 2u);
  EXPECT_EQ(stats.batched_queries, 4u);
  EXPECT_EQ(stats.forwards, 3u);  // g1, shared (once), g3
}

// ---- batch-compiled PredictMany ----

/// Restores the process-wide batch-path switch on scope exit so a failing
/// assertion cannot leak a disabled batch path into later tests.
struct ScopedBatchCompile {
  explicit ScopedBatchCompile(bool enabled) { compile::SetBatchCompileEnabled(enabled); }
  ~ScopedBatchCompile() { compile::SetBatchCompileEnabled(true); }
};

TEST(Service, PredictManyBatchPathMatchesLegacyPath) {
  auto registry = std::make_shared<ModelRegistry>();
  const ModelKey key{"gpt3", "platform1", sim::Mesh{1, 1}, {}};
  registry->Register(key, std::make_shared<core::LatencyRegressor>(
                              core::PredictorKind::kDagTransformer, TinyOptions()));
  const core::BenchmarkModel benchmark = core::Gpt3Benchmark(TinyGptConfig());
  const graph::EncodedGraph g1 = core::EncodeStage(benchmark.build_stage({0, 2}));
  const graph::EncodedGraph g2 = core::EncodeStage(benchmark.build_stage({2, 4}));
  const graph::EncodedGraph g3 = core::EncodeStage(benchmark.build_stage({1, 3}));
  const std::vector<const graph::EncodedGraph*> batch{&g1, &g2, &g1, &g3, &g2};

  std::vector<double> batched;
  {
    ScopedBatchCompile on(true);
    PredictionService service(registry);
    batched = service.PredictMany(key, batch);
    const ServiceStats stats = service.Stats();
    EXPECT_EQ(stats.batches, 1u);
    EXPECT_EQ(stats.batched_queries, 5u);
    EXPECT_EQ(stats.forwards, 3u);  // duplicates still collapse on the batch path
  }
  std::vector<double> legacy;
  {
    ScopedBatchCompile off(false);
    PredictionService service(registry);
    legacy = service.PredictMany(key, batch);
    EXPECT_EQ(service.Stats().forwards, 3u);
  }
  ASSERT_EQ(batched.size(), legacy.size());
  for (std::size_t i = 0; i < batched.size(); ++i) {
    EXPECT_EQ(batched[i], legacy[i]) << "PREDTOP_BATCH_COMPILE must not change bits, i=" << i;
  }
}

TEST(Service, PredictManyWarmBatchReusesPlanBuffers) {
  // Regression pin for the per-call buffer reuse fix: once a batch's shapes
  // have been served, re-serving the same batch (cache cleared, so the
  // forwards genuinely run) must not grow this thread's sequential plan
  // buffer or batched plan buffer, and must not touch the dynamic arena.
  ScopedBatchCompile on(true);
  auto registry = std::make_shared<ModelRegistry>();
  const ModelKey key{"gpt3", "platform1", sim::Mesh{1, 1}, {}};
  registry->Register(key, std::make_shared<core::LatencyRegressor>(
                              core::PredictorKind::kDagTransformer, TinyOptions()));
  PredictionService service(registry);
  const core::BenchmarkModel benchmark = core::Gpt3Benchmark(TinyGptConfig());
  const graph::EncodedGraph g1 = core::EncodeStage(benchmark.build_stage({0, 2}));
  const graph::EncodedGraph g2 = core::EncodeStage(benchmark.build_stage({2, 4}));
  const graph::EncodedGraph g3 = core::EncodeStage(benchmark.build_stage({1, 3}));
  const std::vector<const graph::EncodedGraph*> batch{&g1, &g2, &g1, &g3, &g2};

  (void)service.PredictMany(key, batch);  // cold: compile + grow buffers
  service.ClearCache();
  (void)service.PredictMany(key, batch);  // second pass settles every buffer
  const std::int64_t plan_floats = compile::ThreadPlanBufferFloats();
  const std::int64_t batch_floats = compile::ThreadBatchBufferFloats();
  EXPECT_GT(plan_floats + batch_floats, 0) << "compiled batch path never engaged";

  nn::InferenceContext& ctx = nn::ThreadLocalInferenceContext();
  ctx.BeginForward();  // rewind the arena so its epoch counter reads zero
  for (int i = 0; i < 3; ++i) {
    service.ClearCache();
    (void)service.PredictMany(key, batch);
  }
  EXPECT_EQ(ctx.arena().EpochFloats(), 0) << "warm batch touched the dynamic arena";
  EXPECT_EQ(compile::ThreadPlanBufferFloats(), plan_floats);
  EXPECT_EQ(compile::ThreadBatchBufferFloats(), batch_floats);
}

TEST(Service, StatsExposeCompiledBatchCounters) {
  ScopedBatchCompile on(true);
  auto registry = std::make_shared<ModelRegistry>();
  const ModelKey key{"gpt3", "platform1", sim::Mesh{1, 1}, {}};
  registry->Register(key, std::make_shared<core::LatencyRegressor>(
                              core::PredictorKind::kDagTransformer, TinyOptions()));
  PredictionService service(registry);
  const core::BenchmarkModel benchmark = core::Gpt3Benchmark(TinyGptConfig());
  const graph::EncodedGraph g1 = core::EncodeStage(benchmark.build_stage({0, 2}));
  const graph::EncodedGraph g2 = core::EncodeStage(benchmark.build_stage({2, 4}));
  const graph::EncodedGraph g3 = core::EncodeStage(benchmark.build_stage({1, 3}));

  // The compiled-path counters are process-wide snapshots, so assert deltas.
  const ServiceStats before = service.Stats();
  const std::vector<const graph::EncodedGraph*> batch{&g1, &g2, &g3};
  (void)service.PredictMany(key, batch);
  const ServiceStats after = service.Stats();
  EXPECT_GT(after.program_cache_hits + after.program_cache_misses,
            before.program_cache_hits + before.program_cache_misses);
  EXPECT_GE(after.batched_forwards + after.interleaved_forwards,
            before.batched_forwards + before.interleaved_forwards + 3)
      << "all three distinct queries should run through the batch executors";
  // Monotonic across ResetStats: the compile layer is process-wide.
  service.ResetStats();
  const ServiceStats reset = service.Stats();
  EXPECT_EQ(reset.forwards, 0u);
  EXPECT_GE(reset.batched_forwards + reset.interleaved_forwards,
            after.batched_forwards + after.interleaved_forwards);
}

// ---- thread pool failure propagation ----

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  util::ThreadPool pool(2);
  EXPECT_THROW(
      pool.ParallelFor(64,
                       [](std::size_t i) {
                         if (i == 13) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool survives a failed loop and keeps serving work.
  std::atomic<int> count{0};
  pool.ParallelFor(8, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
}

// ---- serving-backed plan search ----

TEST(ServingOracle, PlanSearchMatchesDirectPredictorCalls) {
  core::PlanSearchConfig config;
  config.num_microbatches = 4;
  config.sample_fraction = 0.6;
  config.max_span = 3;
  config.train.max_epochs = 20;
  config.train.patience = 20;
  config.train.batch_size = 4;
  core::PlanSearch search(core::Gpt3Benchmark(TinyGptConfig()), sim::Platform1(), config);
  const core::TrainedMeshPredictors trained =
      search.TrainPredictors(core::PredictorKind::kDagTransformer);

  auto registry = std::make_shared<ModelRegistry>();
  const std::vector<ModelKey> keys =
      RegisterMeshPredictors(*registry, "gpt3", "platform1", search.Meshes(), trained);
  PredictionService service(registry);
  const ServingOracle oracle(
      service, search.Meshes(), keys,
      [&search](ir::StageSlice s) -> const graph::EncodedGraph& { return search.EncodedFor(s); },
      search.EffectiveMaxSpan());

  constexpr double kInf = std::numeric_limits<double>::infinity();
  const parallel::StageLatencyOracle direct = [&](ir::StageSlice slice, sim::Mesh mesh) {
    if (slice.NumLayers() > search.EffectiveMaxSpan())
      return parallel::StageLatencyResult{kInf, {}};
    for (std::size_t m = 0; m < search.Meshes().size(); ++m) {
      if (search.Meshes()[m] == mesh) {
        return parallel::StageLatencyResult{
            trained.per_mesh[m]->PredictSeconds(search.EncodedFor(slice)), {}};
      }
    }
    return parallel::StageLatencyResult{kInf, {}};
  };

  const parallel::InterOpOptimizer optimizer = search.MakeOptimizer();
  const parallel::PipelinePlan served = optimizer.Optimize(oracle.AsOracle());
  const parallel::PipelinePlan direct_plan = optimizer.Optimize(direct);

  ASSERT_TRUE(served.Valid());
  EXPECT_EQ(served.iteration_latency_s, direct_plan.iteration_latency_s);
  ASSERT_EQ(served.stages.size(), direct_plan.stages.size());
  for (std::size_t i = 0; i < served.stages.size(); ++i) {
    EXPECT_EQ(served.stages[i].slice.first_layer, direct_plan.stages[i].slice.first_layer);
    EXPECT_EQ(served.stages[i].slice.last_layer, direct_plan.stages[i].slice.last_layer);
    EXPECT_EQ(served.stages[i].mesh, direct_plan.stages[i].mesh);
  }
  // Unknown meshes and over-span slices are pruned exactly like the direct path.
  EXPECT_EQ(oracle({0, 4}, sim::Mesh{1, 1}).latency_s, kInf);
  EXPECT_EQ(oracle({0, 1}, sim::Mesh{8, 8}).latency_s, kInf);
  EXPECT_GT(service.Stats().cache.hits, 0u);
}

TEST(ServingOracle, PredictBatchMatchesScalarQueries) {
  auto registry = std::make_shared<ModelRegistry>();
  const std::vector<sim::Mesh> meshes{sim::Mesh{1, 1}, sim::Mesh{1, 2}};
  // Distinct predictor kinds so the two mesh models predict distinct values
  // (two untrained regressors of the same kind initialize identically).
  const core::PredictorKind kinds[] = {core::PredictorKind::kGcn, core::PredictorKind::kGat};
  std::vector<ModelKey> keys;
  for (std::size_t m = 0; m < meshes.size(); ++m) {
    ModelKey key{"gpt3", "platform1", meshes[m], {}};
    registry->Register(key,
                       std::make_shared<core::LatencyRegressor>(kinds[m], TinyOptions()));
    keys.push_back(std::move(key));
  }
  ServiceOptions options;
  options.threads = 2;
  PredictionService service(registry, options);

  const core::BenchmarkModel benchmark = core::Gpt3Benchmark(TinyGptConfig());
  std::map<std::pair<std::int32_t, std::int32_t>, graph::EncodedGraph> encoded;
  const auto encoder = [&](ir::StageSlice s) -> const graph::EncodedGraph& {
    const auto key = std::make_pair(s.first_layer, s.last_layer);
    if (const auto it = encoded.find(key); it != encoded.end()) return it->second;
    return encoded.emplace(key, core::EncodeStage(benchmark.build_stage(s))).first->second;
  };
  const ServingOracle oracle(service, meshes, keys, encoder, /*max_span=*/2);

  constexpr double kInf = std::numeric_limits<double>::infinity();
  const std::vector<parallel::StageQuery> queries{
      {{0, 2}, sim::Mesh{1, 1}},  //
      {{0, 2}, sim::Mesh{1, 2}},  // same slice, other mesh model
      {{2, 4}, sim::Mesh{1, 1}},  //
      {{0, 3}, sim::Mesh{1, 1}},  // over max_span -> +inf, never queried
      {{1, 2}, sim::Mesh{8, 8}},  // unknown mesh -> +inf, never queried
      {{0, 2}, sim::Mesh{1, 1}},  // duplicate of queries[0]
  };
  const std::vector<parallel::StageLatencyResult> batch = oracle.PredictBatch(queries);
  ASSERT_EQ(batch.size(), queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const parallel::StageLatencyResult scalar = oracle(queries[q].slice, queries[q].mesh);
    EXPECT_EQ(batch[q].latency_s, scalar.latency_s) << "query " << q;
  }
  EXPECT_EQ(batch[3].latency_s, kInf);
  EXPECT_EQ(batch[4].latency_s, kInf);
  EXPECT_EQ(batch[0].latency_s, batch[5].latency_s);
  EXPECT_NE(batch[0].latency_s, batch[1].latency_s);

  // The batch ran before the scalar re-queries, so it did all the forwards:
  // one per distinct resolvable (slice, mesh) pair — the duplicate, the
  // over-span slice and the unknown mesh never reached a model.
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.batches, 2u);  // one PredictMany per mesh model
  EXPECT_EQ(stats.forwards, 3u);

  // AsBatchOracle adapts the same path for InterOpOptimizer::Optimize.
  const parallel::StageLatencyBatchOracle fn = oracle.AsBatchOracle();
  const std::vector<parallel::StageLatencyResult> again = fn(queries);
  ASSERT_EQ(again.size(), queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    EXPECT_EQ(again[q].latency_s, batch[q].latency_s);
  }
  EXPECT_EQ(service.Stats().forwards, 3u);  // all cache hits the second time
}

}  // namespace
}  // namespace predtop::serve

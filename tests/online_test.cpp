// Tests for serve::OnlineTrainer: the refresh drill (hot-swap a fine-tuned
// checkpoint into a registry while predictions stream against it), drift
// detection, and failure handling. The drill asserts the three invariants
// the online path owes serving: no prediction ever fails mid-swap, the
// global parameter epoch advances (packed-weight caches cannot go stale),
// and the registry ends up holding a different model instance.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <vector>

#include "compile/cache.h"
#include "nn/infer.h"
#include "serve/online.h"
#include "serve/service.h"

namespace predtop::serve {
namespace {

ir::Gpt3Config TinyGptConfig() {
  ir::Gpt3Config config;
  config.seq_len = 64;
  config.hidden = 64;
  config.num_layers = 4;
  config.num_heads = 4;
  config.vocab = 512;
  config.microbatch = 2;
  return config;
}

core::PredictorOptions TinyOptions() {
  core::PredictorOptions options;
  options.feature_dim = core::StageFeatureDim();
  options.gcn_dim = 32;
  options.gcn_layers = 3;
  return options;
}

/// Base pool of compiled stages; each round's "fresh" samples are drawn from
/// it with new measurement noise (compilation is the slow part, so do it once).
const core::StageDataset& BaseDataset() {
  static const core::StageDataset dataset = [] {
    const core::BenchmarkModel benchmark = core::Gpt3Benchmark(TinyGptConfig());
    const parallel::IntraOpCompiler compiler(sim::Platform1(), sim::Mesh{1, 2});
    sim::Profiler profiler({}, 23);
    return BuildStageDataset(benchmark, compiler, {2, 1, 1}, profiler, {});
  }();
  return dataset;
}

ModelKey TestKey() {
  ModelKey key;
  key.benchmark = "gpt3-tiny";
  key.platform = "platform1";
  key.mesh = sim::Mesh{1, 2};
  key.config = parallel::ParallelConfig{2, 1, 1};
  return key;
}

std::shared_ptr<core::LatencyRegressor> TrainInitialModel() {
  const core::StageDataset& dataset = BaseDataset();
  auto model = std::make_shared<core::LatencyRegressor>(core::PredictorKind::kGcn,
                                                        TinyOptions());
  nn::TrainConfig train;
  train.max_epochs = 20;
  train.patience = 20;
  train.batch_size = 4;
  std::vector<std::size_t> idx(dataset.Size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  model->Fit(dataset, idx, idx, train);
  return model;
}

/// Fresh samples = random base stages with new multiplicative measurement
/// noise; `latency_scale` simulates workload drift (the platform got slower).
SampleSource NoisySource(double latency_scale = 1.0) {
  return [latency_scale](std::size_t count, util::Rng& rng) {
    const core::StageDataset& base = BaseDataset();
    core::StageDataset fresh;
    for (std::size_t i = 0; i < count; ++i) {
      core::StageSample sample =
          base.samples[static_cast<std::size_t>(rng.NextBelow(base.Size()))];
      sample.true_latency_s *= latency_scale;
      sample.measured_latency_s =
          static_cast<float>(sample.true_latency_s * rng.LogNormal(1.0, 0.03));
      fresh.labels.push_back(sample.measured_latency_s);
      fresh.samples.push_back(std::move(sample));
    }
    return fresh;
  };
}

OnlineTrainerOptions DrillOptions(const std::string& checkpoint) {
  OnlineTrainerOptions options;
  options.samples_per_round = 8;
  options.val_fraction = 0.25;
  options.train.max_epochs = 4;
  options.train.patience = 4;
  options.train.batch_size = 4;
  options.train.threads = 2;  // fine-tune through the data-parallel path
  options.checkpoint_path = checkpoint;
  options.poll_interval = std::chrono::milliseconds(2);
  return options;
}

std::string TempCheckpoint(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(OnlineTrainer, RefreshDrillHotSwapsUnderLiveServing) {
  auto registry = std::make_shared<ModelRegistry>();
  const ModelKey key = TestKey();
  const std::shared_ptr<core::LatencyRegressor> initial = TrainInitialModel();
  registry->Register(key, initial);

  ServiceOptions service_options;
  service_options.cache_capacity = 1024;
  service_options.cache_shards = 2;
  service_options.threads = 2;
  PredictionService service(registry, service_options);

  const std::uint64_t epoch_before = nn::ParameterEpoch();
  const std::string checkpoint = TempCheckpoint("predtop_online_drill.ptck");

  OnlineTrainerOptions options = DrillOptions(checkpoint);
  options.refresh_always = true;  // drill: swap every round
  OnlineTrainer trainer(registry, key, NoisySource(), options);
  std::atomic<int> swaps{0};
  trainer.OnSwap([&] {
    service.ClearCache();  // cached predictions of the old version are stale
    ++swaps;
  });

  // Stream predictions from two client threads while refreshes land.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> predictions{0};
  std::atomic<std::uint64_t> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        for (const core::StageSample& sample : BaseDataset().samples) {
          double latency = -1.0;
          try {
            latency = service.Predict(key, sample.encoded);
          } catch (...) {
            // A hot swap must never surface as a failed prediction.
          }
          ++predictions;
          if (!(std::isfinite(latency) && latency > 0.0)) ++failures;
        }
      }
    });
  }

  trainer.Start();
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (swaps.load() < 2 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  trainer.Stop();
  stop = true;
  for (std::thread& t : clients) t.join();

  const OnlineTrainerStats stats = trainer.Stats();
  EXPECT_GE(swaps.load(), 2);
  EXPECT_GE(stats.refreshes, 2u);
  EXPECT_GE(stats.rounds, stats.refreshes);
  EXPECT_GT(predictions.load(), 0u);
  EXPECT_EQ(failures.load(), 0u);  // no failed predictions through any swap
  EXPECT_GT(nn::ParameterEpoch(), epoch_before);  // checkpoint loads bumped it
  // The registry now serves a different model instance than the original.
  EXPECT_NE(registry->Find(key).get(), initial.get());
  std::remove(checkpoint.c_str());
}

TEST(OnlineTrainer, DriftTriggersRefreshStableDoesNot) {
  auto registry = std::make_shared<ModelRegistry>();
  const ModelKey key = TestKey();
  registry->Register(key, TrainInitialModel());

  const std::string checkpoint = TempCheckpoint("predtop_online_drift.ptck");
  OnlineTrainerOptions options = DrillOptions(checkpoint);
  options.drift_threshold = 1.2;

  // The workload's latency scale is mutable mid-test: 1.0 = the world the
  // model was trained in, larger = the platform drifted slower.
  std::atomic<double> scale{1.0};
  const SampleSource source = [&scale](std::size_t count, util::Rng& rng) {
    return NoisySource(scale.load())(count, rng);
  };
  OnlineTrainer trainer(registry, key, source, options);

  // Round 1 seeds the baseline; round 2 is stable — no drift, no refresh.
  EXPECT_FALSE(trainer.RunRound());
  EXPECT_FALSE(trainer.RunRound());
  OnlineTrainerStats stats = trainer.Stats();
  EXPECT_EQ(stats.refreshes, 0u);
  EXPECT_EQ(stats.drift_detected, 0u);
  EXPECT_GT(stats.baseline_mre, 0.0);

  // Platform drifts 5x slower: the served model's MRE explodes past
  // baseline * threshold, and fine-tuning (which refits the target scale to
  // the drifted labels) produces a candidate good enough to swap.
  scale.store(5.0);
  bool swapped = false;
  for (int round = 0; round < 3 && !swapped; ++round) swapped = trainer.RunRound();
  EXPECT_TRUE(swapped);
  stats = trainer.Stats();
  EXPECT_GE(stats.drift_detected, 1u);
  EXPECT_EQ(stats.refreshes, 1u);
  EXPECT_GT(stats.last_fresh_mre, stats.baseline_mre);  // baseline now post-swap
  std::remove(checkpoint.c_str());
}

TEST(OnlineTrainer, HotSwapDoesNotLeakCompiledPrograms) {
  // Regression for the hot-swap leak: compiled programs (and the packed /
  // quantized weight snapshots they pin) are keyed by predictor instance, so
  // every swapped-out model must evict its own entries on destruction. With
  // compilation enabled, repeated registry swaps must keep the global
  // program cache bounded by the *live* model's shape classes.
  auto& cache = compile::ProgramCache::Global();
  cache.Clear();
  auto registry = std::make_shared<ModelRegistry>();
  const ModelKey key = TestKey();
  const core::StageDataset& base = BaseDataset();
  const std::size_t shapes = std::min<std::size_t>(base.Size(), 3);
  for (int round = 0; round < 6; ++round) {
    core::PredictorOptions options = TinyOptions();
    options.seed = 0x100ULL + static_cast<std::uint64_t>(round);
    registry->Register(key, std::make_shared<core::LatencyRegressor>(
                                core::PredictorKind::kGcn, options));
    const auto model = registry->Find(key);
    for (std::size_t i = 0; i < shapes; ++i) {
      const double latency = model->PredictSeconds(base.samples[i].encoded);
      EXPECT_TRUE(std::isfinite(latency));
    }
    // Only the current model's programs may remain cached; the previous
    // rounds' entries died with their predictors.
    EXPECT_LE(cache.Size(), shapes) << "round " << round;
  }
  registry->Register(key, std::make_shared<core::LatencyRegressor>(
                              core::PredictorKind::kGcn, TinyOptions()));
  EXPECT_EQ(cache.Size(), 0u);  // final swap evicted the last active model
}

TEST(OnlineTrainer, NoModelRegisteredIsANoOp) {
  auto registry = std::make_shared<ModelRegistry>();
  OnlineTrainer trainer(registry, TestKey(), NoisySource(),
                        DrillOptions(TempCheckpoint("predtop_online_none.ptck")));
  EXPECT_FALSE(trainer.RunRound());
  EXPECT_EQ(trainer.Stats().refreshes, 0u);
  EXPECT_EQ(trainer.Stats().rounds, 1u);
}

}  // namespace
}  // namespace predtop::serve

// Unit tests for RNG, statistics, tables, env parsing and the thread pool.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <sstream>

#include "util/env.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace predtop::util {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.NextU64(), b.NextU64());
  EXPECT_NE(a.NextU64(), c.NextU64());
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(7), 7u);
  }
  EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NormalHasRoughlyUnitMoments) {
  Rng rng(7);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.Add(rng.Normal());
  EXPECT_NEAR(stats.Mean(), 0.0, 0.05);
  EXPECT_NEAR(stats.StdDev(), 1.0, 0.05);
}

TEST(Rng, LogNormalMedianIsParameter) {
  Rng rng(8);
  std::vector<double> xs;
  for (int i = 0; i < 20001; ++i) xs.push_back(rng.LogNormal(5.0, 0.3));
  EXPECT_NEAR(Percentile(xs, 50.0), 5.0, 0.15);
  for (const double x : xs) EXPECT_GT(x, 0.0);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.Shuffle(std::span<int>(v));
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(10);
  const auto s = rng.SampleWithoutReplacement(20, 8);
  EXPECT_EQ(s.size(), 8u);
  const std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 8u);
  for (const std::size_t i : s) EXPECT_LT(i, 20u);
}

TEST(Rng, SampleAllReturnsEverything) {
  Rng rng(11);
  const auto s = rng.SampleWithoutReplacement(5, 5);
  const std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 5u);
}

TEST(Rng, ForkDiverges) {
  Rng a(12);
  Rng b = a.Fork();
  EXPECT_NE(a.NextU64(), b.NextU64());
}

TEST(SplitMix, IsPureFunction) {
  EXPECT_EQ(SplitMix64(42), SplitMix64(42));
  EXPECT_NE(SplitMix64(42), SplitMix64(43));
}

// ---- stats ----

TEST(Stats, MeanAndStdDev) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(Mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(StdDev(xs), 2.0);
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_EQ(StdDev({}), 0.0);
}

TEST(Stats, MinMaxPercentile) {
  const std::vector<double> xs{3, 1, 4, 1, 5, 9, 2, 6};
  EXPECT_DOUBLE_EQ(Min(xs), 1.0);
  EXPECT_DOUBLE_EQ(Max(xs), 9.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), 9.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 3.5);
}

TEST(Stats, RunningMatchesBatch) {
  Rng rng(13);
  std::vector<double> xs;
  RunningStats rs;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.Normal(3.0, 2.0);
    xs.push_back(x);
    rs.Add(x);
  }
  EXPECT_NEAR(rs.Mean(), Mean(xs), 1e-9);
  EXPECT_NEAR(rs.StdDev(), StdDev(xs), 1e-9);
  EXPECT_DOUBLE_EQ(rs.Min(), Min(xs));
  EXPECT_DOUBLE_EQ(rs.Max(), Max(xs));
}

TEST(Stats, MreMatchesPaperFormula) {
  // Eqn. 5: MRE = 100/N sum |(pred - true)/true|.
  const std::vector<double> pred{11, 9, 20};
  const std::vector<double> truth{10, 10, 10};
  EXPECT_NEAR(MeanRelativeErrorPct(pred, truth), 100.0 * (0.1 + 0.1 + 1.0) / 3.0, 1e-9);
}

TEST(Stats, MreSkipsZeroTruth) {
  const std::vector<double> pred{11, 123};
  const std::vector<double> truth{10, 0};
  EXPECT_NEAR(MeanRelativeErrorPct(pred, truth), 10.0, 1e-9);
}

// ---- table ----

TEST(Table, AlignsAndCounts) {
  TablePrinter t({"a", "bbbb"});
  t.AddRow({"xx", "y"});
  t.AddRow({"1", "2"});
  EXPECT_EQ(t.RowCount(), 2u);
  std::ostringstream os;
  t.Print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("| xx"), std::string::npos);
  EXPECT_NE(s.find("bbbb"), std::string::npos);
}

TEST(Table, CsvEscapesCommasAndQuotes) {
  TablePrinter t({"name", "value"});
  t.AddRow({"a,b", "say \"hi\""});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_NE(os.str().find("\"a,b\""), std::string::npos);
  EXPECT_NE(os.str().find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(FormatF(3.14159, 2), "3.14");
  EXPECT_EQ(FormatSeconds(0.5), "500.00 ms");
  EXPECT_EQ(FormatSeconds(2.0), "2.00 s");
  EXPECT_EQ(FormatSeconds(5e-6), "5.0 us");
}

// ---- env ----

TEST(Env, ParsesTypes) {
  ::setenv("PREDTOP_TEST_INT", "42", 1);
  ::setenv("PREDTOP_TEST_DBL", "2.5", 1);
  ::setenv("PREDTOP_TEST_BOOL", "1", 1);
  ::setenv("PREDTOP_TEST_LIST", "10,30,80", 1);
  EXPECT_EQ(EnvInt("PREDTOP_TEST_INT", 0), 42);
  EXPECT_DOUBLE_EQ(EnvDouble("PREDTOP_TEST_DBL", 0.0), 2.5);
  EXPECT_TRUE(EnvBool("PREDTOP_TEST_BOOL", false));
  EXPECT_EQ(EnvIntList("PREDTOP_TEST_LIST", {}), (std::vector<int>{10, 30, 80}));
}

TEST(Env, FallsBackWhenUnsetOrInvalid) {
  ::unsetenv("PREDTOP_TEST_MISSING");
  EXPECT_EQ(EnvInt("PREDTOP_TEST_MISSING", 7), 7);
  EXPECT_FALSE(EnvString("PREDTOP_TEST_MISSING").has_value());
  ::setenv("PREDTOP_TEST_BADINT", "abc", 1);
  EXPECT_EQ(EnvInt("PREDTOP_TEST_BADINT", 7), 7);
  EXPECT_EQ(EnvIntList("PREDTOP_TEST_BADINT", {1}), (std::vector<int>{1}));
}

// ---- thread pool ----

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  auto f = pool.Submit([] { return 40 + 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelFor(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForWorksSingleThreaded) {
  ThreadPool pool(1);
  std::atomic<int> total{0};
  pool.ParallelFor(37, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 37);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // Regression: a worker running an outer ParallelFor iteration used to
  // block in f.get() on inner helper tasks that no thread was left to run.
  // Depth 2 on a 1-thread pool is the worst case: the single worker must
  // finish the inner loop itself and skip its queued-but-unstarted helpers.
  ThreadPool pool(1);
  std::atomic<int> total{0};
  pool.ParallelFor(3, [&](std::size_t) {
    pool.ParallelFor(4, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 12);

  // Same shape with contention across several workers.
  ThreadPool wide(4);
  std::atomic<int> wide_total{0};
  wide.ParallelFor(8, [&](std::size_t) {
    wide.ParallelFor(8, [&](std::size_t) { wide_total.fetch_add(1); });
  });
  EXPECT_EQ(wide_total.load(), 64);
}

TEST(ThreadPool, NestedParallelForPropagatesInnerExceptions) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.ParallelFor(2,
                                [&](std::size_t) {
                                  pool.ParallelFor(2, [](std::size_t j) {
                                    if (j == 1) throw std::runtime_error("inner");
                                  });
                                }),
               std::runtime_error);
  // The pool survives and keeps serving work.
  std::atomic<int> count{0};
  pool.ParallelFor(5, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 5);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(1);
  auto f = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(Stopwatch, MeasuresForwardProgress) {
  Stopwatch w;
  const double t1 = w.ElapsedSeconds();
  const double t2 = w.ElapsedSeconds();
  EXPECT_GE(t2, t1);
  w.Restart();
  EXPECT_LT(w.ElapsedSeconds(), 1.0);
}

}  // namespace
}  // namespace predtop::util

// Tests for the cluster simulator: platform specs, collective model,
// roofline op cost model and the profiler's noise/cost ledger.

#include <gtest/gtest.h>

#include <cmath>

#include "ir/models.h"
#include "sim/cluster.h"
#include "sim/collective.h"
#include "sim/cost_model.h"
#include "sim/profiler.h"
#include "util/stats.h"

namespace predtop::sim {
namespace {

TEST(Cluster, PaperPlatformSpecs) {
  const ClusterSpec p1 = Platform1();
  EXPECT_EQ(p1.num_nodes, 1);
  EXPECT_EQ(p1.gpus_per_node, 2);
  EXPECT_EQ(p1.TotalDevices(), 2);
  EXPECT_EQ(p1.device.memory_gib, 48);  // A40
  const ClusterSpec p2 = Platform2();
  EXPECT_EQ(p2.TotalDevices(), 4);
  EXPECT_EQ(p2.device.memory_gib, 24);  // RTX A5500
  EXPECT_LT(p2.interconnect.inter_node_gbps, p2.interconnect.intra_node_gbps);
}

TEST(Cluster, PaperMeshesFitPlatforms) {
  // Platform 1 supports meshes (1,1) and (1,2); Platform 2 adds (2,2).
  EXPECT_EQ(PaperMeshes(Platform1()).size(), 2u);
  EXPECT_EQ(PaperMeshes(Platform2()).size(), 3u);
  for (const Mesh m : PaperMeshes(Platform2())) {
    EXPECT_TRUE(m.FitsIn(Platform2()));
  }
}

TEST(Mesh, SpanProperties) {
  EXPECT_FALSE((Mesh{1, 2}).SpansNodes());
  EXPECT_TRUE((Mesh{2, 2}).SpansNodes());
  EXPECT_EQ((Mesh{2, 2}).NumDevices(), 4);
}

// ---- collectives ----

TEST(Collective, AllReduceScalesWithBytes) {
  const CollectiveModel model(Platform1(), Mesh{1, 2});
  const double t1 = model.AllReduceSeconds(1e6, 2);
  const double t2 = model.AllReduceSeconds(2e6, 2);
  const double t3 = model.AllReduceSeconds(3e6, 2);
  EXPECT_GT(t2, t1);
  EXPECT_NEAR(t3 - t2, t2 - t1, 1e-12);  // linear in bytes
}

TEST(Collective, SingleParticipantIsFree) {
  const CollectiveModel model(Platform1(), Mesh{1, 2});
  EXPECT_EQ(model.AllReduceSeconds(1e9, 1), 0.0);
  EXPECT_EQ(model.AllGatherSeconds(1e9, 1), 0.0);
}

TEST(Collective, InterNodeMeshIsSlower) {
  const CollectiveModel intra(Platform2(), Mesh{1, 2});
  const CollectiveModel inter(Platform2(), Mesh{2, 2});
  EXPECT_GT(inter.AllReduceSeconds(1e8, 2), intra.AllReduceSeconds(1e8, 2));
  EXPECT_GT(intra.BottleneckBandwidth(), inter.BottleneckBandwidth());
}

TEST(Collective, RingAllReduceFormula) {
  // t = 2(p-1)/p * bytes/bw + 2(p-1) * latency.
  const CollectiveModel model(Platform1(), Mesh{1, 2});
  const double bytes = 1e8;
  const double expected = 2.0 * 0.5 * bytes / model.BottleneckBandwidth() +
                          2.0 * model.LinkLatencySeconds();
  EXPECT_NEAR(model.AllReduceSeconds(bytes, 2), expected, 1e-12);
}

TEST(Collective, AllGatherCheaperThanAllReduce) {
  const CollectiveModel model(Platform2(), Mesh{2, 2});
  EXPECT_LT(model.AllGatherSeconds(1e8, 4), model.AllReduceSeconds(1e8, 4));
}

// ---- op cost model ----

ir::StageProgram DotProgram(std::int64_t m, std::int64_t k, std::int64_t n,
                            ir::DType dtype = ir::DType::kF16) {
  ir::StageProgram p;
  const auto x = p.AddInput({dtype, {m, k}});
  const auto w = p.AddLiteral({dtype, {k, n}});
  p.AddEquation(ir::OpType::kDot, {x, w}, {dtype, {m, n}}, k);
  return p;
}

TEST(OpCostModel, MonotoneInWork) {
  const OpCostModel model(Platform1().device, 7);
  const auto small = DotProgram(256, 256, 256);
  const auto large = DotProgram(1024, 1024, 1024);
  EXPECT_LT(model.EquationSeconds(small, small.equations()[0]),
            model.EquationSeconds(large, large.equations()[0]));
}

TEST(OpCostModel, ShardingScaleReducesTime) {
  const OpCostModel model(Platform1().device, 7);
  const auto p = DotProgram(1024, 1024, 1024);
  const double full = model.EquationSeconds(p, p.equations()[0], 1.0, 1.0);
  const double half = model.EquationSeconds(p, p.equations()[0], 0.5, 0.5);
  EXPECT_LT(half, full);
  EXPECT_GT(half, full / 2.2);  // launch overhead keeps it above perfect scaling
}

TEST(OpCostModel, F16FasterThanF32ForComputeBound) {
  const OpCostModel model(Platform1().device, 7);
  const auto f16 = DotProgram(2048, 2048, 2048, ir::DType::kF16);
  const auto f32 = DotProgram(2048, 2048, 2048, ir::DType::kF32);
  EXPECT_LT(model.EquationSeconds(f16, f16.equations()[0]),
            model.EquationSeconds(f32, f32.equations()[0]));
}

TEST(OpCostModel, LaunchOverheadBoundsTinyOps) {
  const OpCostModel model(Platform1().device, 7);
  const auto tiny = DotProgram(1, 1, 1);
  EXPECT_GE(model.EquationSeconds(tiny, tiny.equations()[0]),
            Platform1().device.kernel_launch_us * 1e-6);
}

TEST(OpCostModel, QuirksAreDeterministicAndSeedDependent) {
  const OpCostModel a(Platform1().device, 7);
  const OpCostModel b(Platform1().device, 7);
  const OpCostModel c(Platform1().device, 8);
  const auto p = DotProgram(512, 512, 512);
  const double ta = a.EquationSeconds(p, p.equations()[0]);
  EXPECT_DOUBLE_EQ(ta, b.EquationSeconds(p, p.equations()[0]));
  EXPECT_NE(ta, c.EquationSeconds(p, p.equations()[0]));
}

TEST(OpCostModel, TrainingFactorsPerOpClass) {
  EXPECT_DOUBLE_EQ(OpCostModel::TrainingFactor(ir::OpType::kDot), 3.0);
  EXPECT_DOUBLE_EQ(OpCostModel::TrainingFactor(ir::OpType::kBatchedDot), 3.0);
  EXPECT_DOUBLE_EQ(OpCostModel::TrainingFactor(ir::OpType::kAdd), 2.0);
  EXPECT_DOUBLE_EQ(OpCostModel::TrainingFactor(ir::OpType::kTopK), 1.0);
  EXPECT_DOUBLE_EQ(OpCostModel::TrainingFactor(ir::OpType::kNone), 0.0);
}

TEST(OpCostModel, WeightUpdateScalesWithBytes) {
  const OpCostModel model(Platform1().device, 7);
  EXPECT_NEAR(model.WeightUpdateSeconds(2'000'000'000) /
                  model.WeightUpdateSeconds(1'000'000'000),
              2.0, 1e-9);
}

// ---- profiler ----

TEST(Profiler, NoiseIsCenteredOnTruth) {
  Profiler profiler({}, 42);
  util::RunningStats stats;
  for (int i = 0; i < 5000; ++i) stats.Add(profiler.Observe(0.1));
  EXPECT_NEAR(stats.Mean(), 0.1, 0.002);
  EXPECT_GT(stats.StdDev(), 0.0005);  // sigma ~1.5% of 0.1
  EXPECT_LT(stats.StdDev(), 0.004);
}

TEST(Profiler, LedgerChargesCompileAndRuns) {
  ProfilerConfig config;
  Profiler profiler(config, 1);
  EXPECT_EQ(profiler.TotalCostSeconds(), 0.0);
  (void)profiler.ProfileStage(0.2, 100);
  const double expected = config.compile_base_s + 100 * config.compile_per_equation_s +
                          config.setup_s +
                          (config.warmup_iters + config.measure_iters) * 0.2;
  EXPECT_NEAR(profiler.TotalCostSeconds(), expected, 1e-12);
  EXPECT_EQ(profiler.StagesProfiled(), 1);
  profiler.ResetLedger();
  EXPECT_EQ(profiler.TotalCostSeconds(), 0.0);
}

TEST(Profiler, ObserveDoesNotCharge) {
  Profiler profiler({}, 2);
  (void)profiler.Observe(1.0);
  EXPECT_EQ(profiler.TotalCostSeconds(), 0.0);
}

}  // namespace
}  // namespace predtop::sim

// Unit tests for the dense tensor type, numeric kernels and sparse CSR.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>

#include "tensor/ops.h"
#include "tensor/sparse.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace predtop::tensor {
namespace {

using util::Rng;

TEST(Tensor, ZeroInitialized) {
  const Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.rank(), 2u);
  for (const float v : t.data()) EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, FillAndScale) {
  Tensor t({4}, 2.0f);
  t.ScaleInPlace(2.5f);
  for (const float v : t.data()) EXPECT_FLOAT_EQ(v, 5.0f);
  t.Fill(-1.0f);
  for (const float v : t.data()) EXPECT_FLOAT_EQ(v, -1.0f);
}

TEST(Tensor, ConstructFromDataValidatesShape) {
  EXPECT_NO_THROW(Tensor({2, 2}, std::vector<float>{1, 2, 3, 4}));
  EXPECT_THROW(Tensor({2, 2}, std::vector<float>{1, 2, 3}), std::invalid_argument);
}

TEST(Tensor, ReshapePreservesData) {
  const Tensor t({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  const Tensor r = t.Reshaped({3, 2});
  EXPECT_EQ(r.dim(0), 3);
  EXPECT_FLOAT_EQ(r.at(2, 1), 6.0f);
  EXPECT_THROW(t.Reshaped({4, 2}), std::invalid_argument);
}

TEST(Tensor, AddInPlaceShapeMismatchThrows) {
  Tensor a({2, 2});
  const Tensor b({4});
  EXPECT_THROW(a.AddInPlace(b), std::invalid_argument);
}

TEST(Tensor, RandnIsDeterministicPerSeed) {
  Rng r1(42), r2(42);
  const Tensor a = Tensor::Randn({8}, r1);
  const Tensor b = Tensor::Randn({8}, r2);
  EXPECT_EQ(MaxAbsDiff(a, b), 0.0f);
}

// ---- matmul ----

Tensor NaiveMatMul(const Tensor& a, const Tensor& b) {
  Tensor c({a.dim(0), b.dim(1)});
  for (std::int64_t i = 0; i < a.dim(0); ++i) {
    for (std::int64_t j = 0; j < b.dim(1); ++j) {
      double acc = 0.0;
      for (std::int64_t k = 0; k < a.dim(1); ++k) {
        acc += static_cast<double>(a.at(i, k)) * b.at(k, j);
      }
      c.at(i, j) = static_cast<float>(acc);
    }
  }
  return c;
}

class MatMulShapes : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatMulShapes, MatchesNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(7);
  const Tensor a = Tensor::Randn({m, k}, rng);
  const Tensor b = Tensor::Randn({k, n}, rng);
  EXPECT_LT(MaxAbsDiff(MatMul(a, b), NaiveMatMul(a, b)), 1e-3f);
}

TEST_P(MatMulShapes, TransAMatchesExplicitTranspose) {
  const auto [m, k, n] = GetParam();
  Rng rng(8);
  const Tensor at = Tensor::Randn({k, m}, rng);  // A^T stored
  const Tensor b = Tensor::Randn({k, n}, rng);
  EXPECT_LT(MaxAbsDiff(MatMulTransA(at, b), MatMul(Transpose2D(at), b)), 1e-3f);
}

TEST_P(MatMulShapes, TransBMatchesExplicitTranspose) {
  const auto [m, k, n] = GetParam();
  Rng rng(9);
  const Tensor a = Tensor::Randn({m, k}, rng);
  const Tensor bt = Tensor::Randn({n, k}, rng);  // B^T stored
  EXPECT_LT(MaxAbsDiff(MatMulTransB(a, bt), MatMul(a, Transpose2D(bt))), 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatMulShapes,
                         ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 4),
                                           std::make_tuple(5, 1, 7), std::make_tuple(16, 16, 16),
                                           std::make_tuple(33, 17, 9),
                                           std::make_tuple(64, 48, 32)));

TEST(MatMul, InnerDimensionMismatchThrows) {
  const Tensor a({2, 3});
  const Tensor b({4, 2});
  EXPECT_THROW(MatMul(a, b), std::invalid_argument);
}

// ---- elementwise ----

TEST(Elementwise, AddSubMul) {
  const Tensor a({2}, std::vector<float>{1, 2});
  const Tensor b({2}, std::vector<float>{3, 5});
  EXPECT_FLOAT_EQ(Add(a, b)[0], 4.0f);
  EXPECT_FLOAT_EQ(Sub(a, b)[1], -3.0f);
  EXPECT_FLOAT_EQ(Mul(a, b)[1], 10.0f);
  EXPECT_FLOAT_EQ(Scale(a, -2.0f)[0], -2.0f);
}

TEST(Elementwise, AddRowVectorBroadcasts) {
  const Tensor m({2, 3}, std::vector<float>{0, 0, 0, 1, 1, 1});
  const Tensor bias({3}, std::vector<float>{10, 20, 30});
  const Tensor out = AddRowVector(m, bias);
  EXPECT_FLOAT_EQ(out.at(0, 2), 30.0f);
  EXPECT_FLOAT_EQ(out.at(1, 0), 11.0f);
}

TEST(Elementwise, Activations) {
  const Tensor x({4}, std::vector<float>{-2, -0.5f, 0, 3});
  const Tensor r = Relu(x);
  EXPECT_FLOAT_EQ(r[0], 0.0f);
  EXPECT_FLOAT_EQ(r[3], 3.0f);
  const Tensor l = LeakyRelu(x, 0.1f);
  EXPECT_FLOAT_EQ(l[0], -0.2f);
  const Tensor t = Tanh(x);
  EXPECT_NEAR(t[3], std::tanh(3.0f), 1e-6f);
  const Tensor g = Gelu(x);
  EXPECT_NEAR(g[2], 0.0f, 1e-6f);
  EXPECT_GT(g[3], 2.9f);  // gelu(3) ~ 2.996
}

// ---- softmax ----

TEST(RowSoftmax, RowsSumToOne) {
  Rng rng(3);
  const Tensor x = Tensor::Randn({5, 7}, rng, 3.0f);
  const Tensor s = RowSoftmax(x);
  for (std::int64_t i = 0; i < 5; ++i) {
    float sum = 0.0f;
    for (std::int64_t j = 0; j < 7; ++j) {
      EXPECT_GE(s.at(i, j), 0.0f);
      sum += s.at(i, j);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(RowSoftmax, MaskBlocksEntries) {
  const float inf = std::numeric_limits<float>::infinity();
  const Tensor x({1, 3}, std::vector<float>{1, 2, 3});
  const Tensor mask({1, 3}, std::vector<float>{0, -inf, 0});
  const Tensor s = RowSoftmax(x, &mask);
  EXPECT_FLOAT_EQ(s.at(0, 1), 0.0f);
  EXPECT_NEAR(s.at(0, 0) + s.at(0, 2), 1.0f, 1e-6f);
}

TEST(RowSoftmax, FullyMaskedRowIsZeroNotNan) {
  const float inf = std::numeric_limits<float>::infinity();
  const Tensor x({1, 2}, std::vector<float>{1, 2});
  const Tensor mask({1, 2}, std::vector<float>{-inf, -inf});
  const Tensor s = RowSoftmax(x, &mask);
  EXPECT_FLOAT_EQ(s.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(s.at(0, 1), 0.0f);
}

TEST(RowSoftmax, InvariantToConstantShift) {
  Rng rng(11);
  const Tensor x = Tensor::Randn({3, 4}, rng);
  Tensor shifted = x;
  for (float& v : shifted.data()) v += 100.0f;
  EXPECT_LT(MaxAbsDiff(RowSoftmax(x), RowSoftmax(shifted)), 1e-5f);
}

// ---- reductions / transpose ----

TEST(Reductions, SumRowsColsAll) {
  const Tensor m({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  const Tensor rows = SumRows(m);
  EXPECT_FLOAT_EQ(rows[0], 5.0f);
  EXPECT_FLOAT_EQ(rows[2], 9.0f);
  const Tensor cols = SumCols(m);
  EXPECT_FLOAT_EQ(cols[0], 6.0f);
  EXPECT_FLOAT_EQ(cols[1], 15.0f);
  EXPECT_FLOAT_EQ(SumAll(m), 21.0f);
}

TEST(Transpose, RoundTrips) {
  Rng rng(5);
  const Tensor m = Tensor::Randn({3, 5}, rng);
  EXPECT_EQ(MaxAbsDiff(Transpose2D(Transpose2D(m)), m), 0.0f);
}

// ---- sparse ----

TEST(Csr, FromCooSumsDuplicates) {
  const Csr a = Csr::FromCoo(2, 2, {0, 0, 1}, {1, 1, 0}, {1.0f, 2.0f, 5.0f});
  EXPECT_EQ(a.Nnz(), 2u);
  EXPECT_FLOAT_EQ(a.values[0], 3.0f);  // (0,1) summed
  EXPECT_FLOAT_EQ(a.values[1], 5.0f);
}

TEST(Csr, OutOfRangeThrows) {
  EXPECT_THROW(Csr::FromCoo(2, 2, {2}, {0}, {1.0f}), std::out_of_range);
}

TEST(Csr, TransposeTwiceIsIdentity) {
  Rng rng(6);
  std::vector<std::int32_t> r, c;
  std::vector<float> v;
  for (int i = 0; i < 30; ++i) {
    r.push_back(static_cast<std::int32_t>(rng.NextBelow(7)));
    c.push_back(static_cast<std::int32_t>(rng.NextBelow(9)));
    v.push_back(static_cast<float>(rng.Normal()));
  }
  const Csr a = Csr::FromCoo(7, 9, r, c, v);
  const Csr att = a.Transposed().Transposed();
  EXPECT_EQ(a.row_ptr, att.row_ptr);
  EXPECT_EQ(a.col_idx, att.col_idx);
  for (std::size_t i = 0; i < a.values.size(); ++i) {
    EXPECT_FLOAT_EQ(a.values[i], att.values[i]);
  }
}

TEST(SpMM, MatchesDenseMatMul) {
  Rng rng(12);
  Tensor dense({6, 5});
  std::vector<std::int32_t> r, c;
  std::vector<float> v;
  for (int i = 0; i < 12; ++i) {
    const auto ri = static_cast<std::int32_t>(rng.NextBelow(6));
    const auto ci = static_cast<std::int32_t>(rng.NextBelow(5));
    const auto vi = static_cast<float>(rng.Normal());
    r.push_back(ri);
    c.push_back(ci);
    v.push_back(vi);
    dense.at(ri, ci) += vi;
  }
  const Csr sparse = Csr::FromCoo(6, 5, r, c, v);
  const Tensor x = Tensor::Randn({5, 4}, rng);
  EXPECT_LT(MaxAbsDiff(SpMM(sparse, x), MatMul(dense, x)), 1e-4f);
}

TEST(SpMM, ShapeMismatchThrows) {
  const Csr a = Csr::FromCoo(2, 3, {0}, {0}, {1.0f});
  const Tensor x({2, 2});
  EXPECT_THROW(SpMM(a, x), std::invalid_argument);
}

}  // namespace
}  // namespace predtop::tensor

// Tests for the explicit-SIMD helpers against scalar references: these
// kernels sit under every hot path of predictor training, so they get their
// own exhaustive sweeps (lengths crossing vector-width boundaries, subnormal
// and -inf inputs for the exp approximation).

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "tensor/simd.h"
#include "util/rng.h"

namespace predtop::tensor::simd {
namespace {

class SimdLengths : public ::testing::TestWithParam<int> {};

TEST_P(SimdLengths, DotMatchesScalar) {
  const int n = GetParam();
  util::Rng rng(n + 1);
  std::vector<float> a(static_cast<std::size_t>(n)), b(static_cast<std::size_t>(n));
  double expected = 0.0;
  for (int i = 0; i < n; ++i) {
    a[static_cast<std::size_t>(i)] = static_cast<float>(rng.Normal());
    b[static_cast<std::size_t>(i)] = static_cast<float>(rng.Normal());
    expected += static_cast<double>(a[static_cast<std::size_t>(i)]) *
                b[static_cast<std::size_t>(i)];
  }
  EXPECT_NEAR(Dot(a.data(), b.data(), n), expected, 1e-4 * std::max(1.0, std::fabs(expected)));
}

TEST_P(SimdLengths, SumMatchesScalar) {
  const int n = GetParam();
  util::Rng rng(n + 2);
  std::vector<float> a(static_cast<std::size_t>(n));
  double expected = 0.0;
  for (int i = 0; i < n; ++i) {
    a[static_cast<std::size_t>(i)] = static_cast<float>(rng.Normal());
    expected += a[static_cast<std::size_t>(i)];
  }
  EXPECT_NEAR(Sum(a.data(), n), expected, 1e-4 * std::max(1.0, std::fabs(expected)));
}

TEST_P(SimdLengths, ExpMatchesStdExp) {
  const int n = GetParam();
  util::Rng rng(n + 3);
  std::vector<float> x(static_cast<std::size_t>(n)), out(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    x[static_cast<std::size_t>(i)] = static_cast<float>(-rng.Uniform(0.0, 40.0));
  }
  ExpNonPositiveN(x.data(), out.data(), n);
  for (int i = 0; i < n; ++i) {
    const double reference = std::exp(static_cast<double>(x[static_cast<std::size_t>(i)]));
    EXPECT_NEAR(out[static_cast<std::size_t>(i)], reference, 5e-4 * reference + 1e-30)
        << "x=" << x[static_cast<std::size_t>(i)];
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, SimdLengths,
                         ::testing::Values(0, 1, 7, 8, 9, 15, 16, 17, 31, 64, 100, 257));

TEST(SimdExp, HandlesBoundaryInputs) {
  const float inf = std::numeric_limits<float>::infinity();
  const std::vector<float> x{0.0f, -1e-8f, -87.0f, -100.0f, -1000.0f, -inf, -0.5f, -20.0f};
  std::vector<float> out(x.size());
  ExpNonPositiveN(x.data(), out.data(), static_cast<std::int64_t>(x.size()));
  EXPECT_NEAR(out[0], 1.0f, 2e-6f);
  EXPECT_NEAR(out[1], 1.0f, 2e-6f);
  EXPECT_EQ(out[4], 0.0f);  // deep underflow clamps to zero
  EXPECT_EQ(out[5], 0.0f);  // -inf (masked attention) is exactly zero
  for (const float v : out) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, 0.0f);
  }
}

TEST(SimdExp, ScalarVariantAgreesWithVector) {
  std::vector<float> x, vec_out;
  for (float v = -50.0f; v <= 0.0f; v += 0.37f) x.push_back(v);
  vec_out.resize(x.size());
  ExpNonPositiveN(x.data(), vec_out.data(), static_cast<std::int64_t>(x.size()));
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(ExpNonPositive(x[i]), vec_out[i], 1e-5f * std::max(1e-20f, vec_out[i]));
  }
}

TEST(SimdDot, ZeroLengthIsZero) {
  EXPECT_EQ(Dot(nullptr, nullptr, 0), 0.0f);
  EXPECT_EQ(Sum(nullptr, 0), 0.0f);
}

}  // namespace
}  // namespace predtop::tensor::simd

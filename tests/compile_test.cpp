// Tests for the compiled-inference subsystem (predtop::compile): fp32
// plan-vs-tape parity for every predictor, static-arena planner properties
// (no overlapping offsets for live-range-intersecting values, deterministic
// layouts), allocation-free warm forwards, reduced-precision (bf16 / int8)
// parity and MRE neutrality, program-cache LRU bounds and owner eviction,
// and concurrent compiled forwards (run under TSan by ci/run.sh tsan).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "compile/batch.h"
#include "compile/cache.h"
#include "compile/planner.h"
#include "compile/program.h"
#include "compile/tune.h"
#include "core/dataset.h"
#include "core/predictors.h"
#include "core/regressor.h"
#include "ir/stages.h"
#include "nn/infer.h"
#include "nn/optimizer.h"
#include "sim/cluster.h"
#include "sim/profiler.h"
#include "tensor/arena.h"
#include "tensor/ops.h"
#include "tensor/quant.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace predtop::core {
namespace {

ir::Gpt3Config TinyGptConfig() {
  ir::Gpt3Config config;
  config.seq_len = 64;
  config.hidden = 64;
  config.num_layers = 4;
  config.num_heads = 4;
  config.vocab = 512;
  config.microbatch = 2;
  return config;
}

PredictorOptions TinyOptions() {
  PredictorOptions options;
  options.feature_dim = StageFeatureDim();
  options.dagt_dim = 16;
  options.dagt_layers = 2;
  options.dagt_heads = 2;
  options.gcn_dim = 32;
  options.gcn_layers = 3;
  options.gat_dim = 16;
  options.gat_layers = 3;
  return options;
}

graph::EncodedGraph TinyEncodedStage(std::int32_t first = 1, std::int32_t last = 2) {
  return EncodeStage(ir::BuildGpt3Stage(TinyGptConfig(), {first, last}));
}

constexpr PredictorKind kAllKinds[] = {PredictorKind::kDagTransformer, PredictorKind::kGcn,
                                       PredictorKind::kGat};

/// Restores the compile/batch flags and weight precision on scope exit so a
/// failing assertion cannot leak a disabled/quantized state into later tests.
struct ScopedInferenceConfig {
  ~ScopedInferenceConfig() {
    compile::SetCompileEnabled(true);
    compile::SetBatchCompileEnabled(true);
    tensor::SetWeightPrec(tensor::GemmPrec::kFp32);
  }
};

/// The compiled prediction for g, asserting the compiled path actually ran
/// (the plan buffer is touched only by compile::Execute).
float CompiledScalar(StagePredictor& model, const graph::EncodedGraph& g) {
  compile::SetCompileEnabled(true);
  const float y = model.InferScalar(g, nn::ThreadLocalInferenceContext());
  EXPECT_GT(compile::ThreadPlanBufferFloats(), 0) << model.Name() << ": fell back";
  return y;
}

// ---- fp32 parity: compiled program vs autograd tape vs op-by-op path ----

TEST(CompiledParity, AllPredictorsMatchTapeAndFastPath) {
  ScopedInferenceConfig guard;
  const graph::EncodedGraph g = TinyEncodedStage();
  for (const PredictorKind kind : kAllKinds) {
    auto model = MakePredictor(kind, TinyOptions());
    const float tape = model->Forward(g).value().data()[0];
    const float compiled = CompiledScalar(*model, g);
    ASSERT_TRUE(std::isfinite(compiled)) << model->Name();
    EXPECT_LE(std::abs(compiled - tape), 1e-6f * std::max(1.0f, std::abs(tape)))
        << model->Name() << ": tape=" << tape << " compiled=" << compiled;
    compile::SetCompileEnabled(false);
    const float fast = model->InferScalar(g, nn::ThreadLocalInferenceContext());
    compile::SetCompileEnabled(true);
    EXPECT_LE(std::abs(compiled - fast), 1e-6f * std::max(1.0f, std::abs(fast)))
        << model->Name() << ": fast=" << fast << " compiled=" << compiled;
  }
}

TEST(CompiledParity, DagTransformerAblationsMatchTape) {
  ScopedInferenceConfig guard;
  const graph::EncodedGraph g = TinyEncodedStage();
  for (const bool use_dagra : {true, false}) {
    for (const bool use_dagpe : {true, false}) {
      PredictorOptions options = TinyOptions();
      options.use_dagra = use_dagra;
      options.use_dagpe = use_dagpe;
      auto model = MakePredictor(PredictorKind::kDagTransformer, options);
      const float tape = model->Forward(g).value().data()[0];
      const float compiled = CompiledScalar(*model, g);
      EXPECT_LE(std::abs(compiled - tape), 1e-6f * std::max(1.0f, std::abs(tape)))
          << "dagra=" << use_dagra << " dagpe=" << use_dagpe;
    }
  }
}

TEST(CompiledParity, SnapshotTracksOptimizerStep) {
  ScopedInferenceConfig guard;
  const graph::EncodedGraph g = TinyEncodedStage();
  for (const PredictorKind kind : kAllKinds) {
    auto model = MakePredictor(kind, TinyOptions());
    const float before = CompiledScalar(*model, g);
    nn::Adam adam(*model);
    model->ZeroGrad();
    autograd::Backward(model->Forward(g));
    adam.Step(0.05f);
    const float tape = model->Forward(g).value().data()[0];
    const float compiled = CompiledScalar(*model, g);
    ASSERT_NE(before, tape) << model->Name() << ": step did not move the output";
    EXPECT_LE(std::abs(compiled - tape), 1e-6f * std::max(1.0f, std::abs(tape)))
        << model->Name() << ": stale snapshot after epoch bump";
  }
}

TEST(CompiledParity, MultipleShapeClassesCoexist) {
  ScopedInferenceConfig guard;
  const std::vector<graph::EncodedGraph> graphs{
      TinyEncodedStage(0, 1), TinyEncodedStage(1, 2), TinyEncodedStage(0, 3)};
  auto model = MakePredictor(PredictorKind::kDagTransformer, TinyOptions());
  for (const auto& g : graphs) {
    const float tape = model->Forward(g).value().data()[0];
    const float compiled = CompiledScalar(*model, g);
    EXPECT_LE(std::abs(compiled - tape), 1e-6f * std::max(1.0f, std::abs(tape)))
        << "n=" << g.num_nodes;
  }
}

// ---- determinism and the allocation-free warm forward ----

TEST(CompiledDeterminism, RepeatedExecuteIsBitIdentical) {
  ScopedInferenceConfig guard;
  const graph::EncodedGraph g = TinyEncodedStage();
  for (const PredictorKind kind : kAllKinds) {
    auto model = MakePredictor(kind, TinyOptions());
    const float first = CompiledScalar(*model, g);
    for (int i = 0; i < 5; ++i) {
      ASSERT_EQ(CompiledScalar(*model, g), first) << model->Name() << " run " << i;
    }
  }
}

TEST(CompiledArena, WarmForwardAllocatesNothing) {
  ScopedInferenceConfig guard;
  const graph::EncodedGraph g = TinyEncodedStage();
  for (const PredictorKind kind : kAllKinds) {
    auto model = MakePredictor(kind, TinyOptions());
    nn::InferenceContext& ctx = nn::ThreadLocalInferenceContext();
    (void)CompiledScalar(*model, g);  // cold: builds program, grows plan buffer
    const std::int64_t plan_floats = compile::ThreadPlanBufferFloats();
    ctx.BeginForward();  // rewind the arena so its epoch counter reads zero
    for (int i = 0; i < 3; ++i) (void)CompiledScalar(*model, g);
    EXPECT_EQ(ctx.arena().EpochFloats(), 0)
        << model->Name() << ": compiled forward touched the dynamic arena";
    EXPECT_EQ(compile::ThreadPlanBufferFloats(), plan_floats)
        << model->Name() << ": warm forward grew the plan buffer";
  }
}

// ---- planner properties ----

std::vector<compile::Lifetime> RandomLifetimes(util::Rng& rng, int count, int max_steps) {
  std::vector<compile::Lifetime> lifetimes;
  lifetimes.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    compile::Lifetime lt;
    lt.floats = static_cast<std::int64_t>(rng.NextU64() % 400);  // zero-size allowed
    lt.first = static_cast<std::int32_t>(rng.NextU64() % static_cast<std::uint64_t>(max_steps));
    lt.last = lt.first + static_cast<std::int32_t>(rng.NextU64() %
                                                   static_cast<std::uint64_t>(max_steps));
    lifetimes.push_back(lt);
  }
  return lifetimes;
}

TEST(Planner, LiveRangeIntersectingValuesNeverOverlap) {
  util::Rng rng(0x9141ULL);
  for (int round = 0; round < 50; ++round) {
    const auto lifetimes = RandomLifetimes(rng, 40, 24);
    const compile::PlanLayout layout = compile::PlanOffsets(lifetimes);
    ASSERT_EQ(layout.offsets.size(), lifetimes.size());
    for (std::size_t i = 0; i < lifetimes.size(); ++i) {
      if (lifetimes[i].floats <= 0) continue;
      EXPECT_EQ(layout.offsets[i] % compile::kPlanAlign, 0) << "round " << round;
      EXPECT_LE(layout.offsets[i] + lifetimes[i].floats, layout.total_floats);
      for (std::size_t j = i + 1; j < lifetimes.size(); ++j) {
        if (lifetimes[j].floats <= 0) continue;
        const bool live_overlap = lifetimes[i].first <= lifetimes[j].last &&
                                  lifetimes[j].first <= lifetimes[i].last;
        if (!live_overlap) continue;
        const bool mem_overlap = layout.offsets[i] < layout.offsets[j] + lifetimes[j].floats &&
                                 layout.offsets[j] < layout.offsets[i] + lifetimes[i].floats;
        EXPECT_FALSE(mem_overlap)
            << "round " << round << ": values " << i << " and " << j
            << " are live together at offsets " << layout.offsets[i] << "/"
            << layout.offsets[j];
      }
    }
  }
}

TEST(Planner, ReusesMemoryAcrossDisjointLifetimes) {
  // A chain a->b->c->d where each value dies as the next is defined: the
  // planner must reuse slots instead of laying the four out end to end.
  std::vector<compile::Lifetime> chain;
  for (int i = 0; i < 4; ++i) chain.push_back({.floats = 256, .first = i, .last = i + 1});
  const compile::PlanLayout layout = compile::PlanOffsets(chain);
  EXPECT_LT(layout.total_floats, 4 * 256);
  EXPECT_EQ(layout.offsets[0], layout.offsets[2]);  // a and c never coexist
  EXPECT_EQ(layout.offsets[1], layout.offsets[3]);
}

TEST(Planner, LayoutIsDeterministic) {
  util::Rng rng(77);
  const auto lifetimes = RandomLifetimes(rng, 30, 16);
  const compile::PlanLayout a = compile::PlanOffsets(lifetimes);
  const compile::PlanLayout b = compile::PlanOffsets(lifetimes);
  EXPECT_EQ(a.total_floats, b.total_floats);
  EXPECT_EQ(a.offsets, b.offsets);
}

// ---- fused attention at production scale ----

/// A real paper-size GPT-3 stage graph (the shape the prediction service
/// serves, ~230 nodes): large enough that every attention GEMM takes the
/// packed tier and the fuser emits kFusedAttention steps.
const graph::EncodedGraph& PaperScaleStage() {
  static const graph::EncodedGraph g =
      EncodeStage(ir::BuildGpt3Stage(ir::Gpt3Config{}, {0, 4}));
  return g;
}

PredictorOptions PaperOptions() {
  PredictorOptions options;  // defaults: DAG Transformer 4 x 64, 4 heads
  options.feature_dim = StageFeatureDim();
  return options;
}

TEST(FusedParity, PaperScaleGraphTakesFusedKernelAndMatchesTape) {
  ScopedInferenceConfig guard;
  const graph::EncodedGraph& g = PaperScaleStage();
  const std::int64_t n = g.num_nodes;
  // Preconditions for the fused kernel (dim 64, head_dim 16).
  ASSERT_TRUE(tensor::UsePackedGemm(n, 64, 64));
  ASSERT_TRUE(tensor::UsePackedGemm(n, 16, n));
  ASSERT_TRUE(tensor::UsePackedGemm(n, n, 16));
  for (const bool use_dagra : {true, false}) {
    PredictorOptions options = PaperOptions();
    options.use_dagra = use_dagra;
    auto model = MakePredictor(PredictorKind::kDagTransformer, options);
    const float tape = model->Forward(g).value().data()[0];
    const float compiled = CompiledScalar(*model, g);
    const auto hit = compile::ProgramCache::Global().Lookup(
        model->InstanceId(), n, static_cast<std::int64_t>(g.edge_src.size()));
    ASSERT_TRUE(hit.has_value());
    ASSERT_NE(*hit, nullptr);
    int fused = 0;
    for (const compile::Step& s : (*hit)->steps) {
      fused += s.kind == compile::OpKind::kFusedAttention ? 1 : 0;
    }
    EXPECT_EQ(fused, 4) << "expected every layer's attention to fuse";
    EXPECT_LE(std::abs(compiled - tape), 1e-6f * std::max(1.0f, std::abs(tape)))
        << "dagra=" << use_dagra << ": tape=" << tape << " compiled=" << compiled;
    compile::SetCompileEnabled(false);
    const float fast = model->InferScalar(g, nn::ThreadLocalInferenceContext());
    compile::SetCompileEnabled(true);
    EXPECT_LE(std::abs(compiled - fast), 1e-6f * std::max(1.0f, std::abs(fast)))
        << "dagra=" << use_dagra << ": fast=" << fast << " compiled=" << compiled;
  }
}

TEST(FusedParity, QuantTiersEngageAtPaperScale) {
  ScopedInferenceConfig guard;
  const graph::EncodedGraph& g = PaperScaleStage();
  auto model = MakePredictor(PredictorKind::kDagTransformer, PaperOptions());
  tensor::SetWeightPrec(tensor::GemmPrec::kFp32);
  const float fp32 = CompiledScalar(*model, g);
  for (const tensor::GemmPrec prec : {tensor::GemmPrec::kBf16, tensor::GemmPrec::kInt8}) {
    tensor::SetWeightPrec(prec);
    const float quant = CompiledScalar(*model, g);
    ASSERT_TRUE(std::isfinite(quant));
    // The packed tier runs at this scale, so the reduced-precision panels
    // genuinely engage: the output must move, but stay within the 1e-2
    // relative parity contract.
    EXPECT_NE(quant, fp32) << tensor::GemmPrecName(prec) << " tier never engaged";
    EXPECT_LE(std::abs(quant - fp32), 1e-2f * std::max(1.0f, std::abs(fp32)))
        << tensor::GemmPrecName(prec) << ": fp32=" << fp32 << " quant=" << quant;
  }
}

// ---- reduced-precision tiers ----

TEST(CompiledQuant, Bf16AndInt8TrackFp32) {
  ScopedInferenceConfig guard;
  const graph::EncodedGraph g = TinyEncodedStage();
  for (const PredictorKind kind : kAllKinds) {
    auto model = MakePredictor(kind, TinyOptions());
    tensor::SetWeightPrec(tensor::GemmPrec::kFp32);
    const float fp32 = CompiledScalar(*model, g);
    for (const tensor::GemmPrec prec : {tensor::GemmPrec::kBf16, tensor::GemmPrec::kInt8}) {
      tensor::SetWeightPrec(prec);
      const float quant = CompiledScalar(*model, g);
      ASSERT_TRUE(std::isfinite(quant)) << model->Name();
      EXPECT_LE(std::abs(quant - fp32), 1e-2f * std::max(1.0f, std::abs(fp32)))
          << model->Name() << " prec=" << tensor::GemmPrecName(prec) << ": fp32=" << fp32
          << " quant=" << quant;
    }
    tensor::SetWeightPrec(tensor::GemmPrec::kFp32);
    // Returning to fp32 must drop the quantized snapshot, not serve it.
    EXPECT_EQ(CompiledScalar(*model, g), fp32) << model->Name();
  }
}

namespace {

struct QuantSuite {
  StageDataset dataset;
  std::vector<std::size_t> idx;
  std::unique_ptr<LatencyRegressor> regressor;
};

/// Builds a scaled-down Table V cell (GPT-3 on Platform 1) and fits a DAG
/// transformer of the given width to it.
QuantSuite TrainedQuantSuite(std::int64_t dagt_dim, std::int64_t heads,
                             int epochs) {
  QuantSuite s;
  const BenchmarkModel benchmark = Gpt3Benchmark(ir::Gpt3Config{});
  const parallel::IntraOpCompiler compiler(sim::Platform1(), sim::Mesh{1, 2});
  sim::Profiler profiler({}, 14);
  DatasetBuildConfig build;
  build.num_samples = 8;
  build.max_span = 5;
  s.dataset = BuildStageDataset(benchmark, compiler, {2, 1, 1}, profiler, build);
  s.idx.resize(s.dataset.Size());
  for (std::size_t i = 0; i < s.idx.size(); ++i) s.idx[i] = i;
  PredictorOptions options = PaperOptions();
  options.dagt_dim = dagt_dim;
  options.dagt_heads = heads;
  options.dagt_layers = 2;
  s.regressor =
      std::make_unique<LatencyRegressor>(PredictorKind::kDagTransformer, options);
  nn::TrainConfig train;
  train.max_epochs = epochs;
  train.patience = epochs;
  train.batch_size = 4;
  (void)s.regressor->Fit(s.dataset, s.idx, s.idx, train);
  return s;
}

}  // namespace

TEST(CompiledQuant, MreNeutralOnTinyTable5Suite) {
  // Satellite: the Table V/VI suites run the bench-default transformer width
  // (dagt_dim = 16). At that width every GEMM in the trunk sits below the
  // packed-tier floor (m*k*n >= 2^18), so the tier-selection rule keeps all
  // of them in fp32 regardless of PREDTOP_GEMM_PREC — the floor doubles as
  // the precision fallback rule, and reduced precision is exactly
  // accuracy-neutral where the tables are produced. Asserted per tier:
  // MRE degrades < 0.1pp (it is bit-identical, in fact).
  ScopedInferenceConfig guard;
  QuantSuite s = TrainedQuantSuite(/*dagt_dim=*/16, /*heads=*/4, /*epochs=*/60);
  tensor::SetWeightPrec(tensor::GemmPrec::kFp32);
  const double fp32_mre = s.regressor->MrePercent(s.dataset, s.idx);
  for (const tensor::GemmPrec prec : {tensor::GemmPrec::kBf16, tensor::GemmPrec::kInt8}) {
    tensor::SetWeightPrec(prec);
    const double quant_mre = s.regressor->MrePercent(s.dataset, s.idx);
    EXPECT_LE(std::abs(quant_mre - fp32_mre), 0.1)
        << tensor::GemmPrecName(prec) << ": fp32 MRE=" << fp32_mre
        << "% quant MRE=" << quant_mre << "%";
  }
}

TEST(CompiledQuant, QuantCostBoundedAtDim64) {
  // Stress regime: a dim-64 trunk on paper-size graphs, where the packed
  // tier (and so the quantized kernels) carries the bulk of the arithmetic.
  // A trained DAG transformer amplifies weight rounding through its sharp
  // attention softmax (a 0.4% bf16 weight error can move a prediction by a
  // few percent), so the reduced tiers are NOT free here; this test pins the
  // measured ceiling so a regression in the quantized kernels can't hide:
  // bf16 ~0.9pp / int8 ~4pp MRE on this fixed-seed suite, asserted with
  // margin, and the compiled program must track the op-by-op fast path under
  // both tiers (same packs, same tier dispatch; the residual 1e-5-scale gap
  // is the same amplification applied to 1e-6-scale kernel differences).
  ScopedInferenceConfig guard;
  QuantSuite s = TrainedQuantSuite(/*dagt_dim=*/64, /*heads=*/4, /*epochs=*/120);
  tensor::SetWeightPrec(tensor::GemmPrec::kFp32);
  const double fp32_mre = s.regressor->MrePercent(s.dataset, s.idx);
  std::vector<double> fp32_pred(s.dataset.Size());
  for (std::size_t i = 0; i < s.dataset.Size(); ++i) {
    fp32_pred[i] = s.regressor->PredictSeconds(s.dataset.samples[i].encoded);
  }
  struct TierBound {
    tensor::GemmPrec prec;
    double rel_pred;  // max per-prediction relative deviation vs fp32
    double mre_pp;    // max MRE degradation, percentage points
  };
  for (const TierBound tier : {TierBound{tensor::GemmPrec::kBf16, 0.15, 1.5},
                               TierBound{tensor::GemmPrec::kInt8, 0.40, 5.0}}) {
    tensor::SetWeightPrec(tier.prec);
    for (std::size_t i = 0; i < s.dataset.Size(); ++i) {
      const double quant = s.regressor->PredictSeconds(s.dataset.samples[i].encoded);
      compile::SetCompileEnabled(false);
      const double quant_ref = s.regressor->PredictSeconds(s.dataset.samples[i].encoded);
      compile::SetCompileEnabled(true);
      EXPECT_NEAR(quant, quant_ref, 1e-4 * quant_ref)
          << tensor::GemmPrecName(tier.prec) << " sample " << i;
      EXPECT_LE(std::abs(quant - fp32_pred[i]), tier.rel_pred * fp32_pred[i])
          << tensor::GemmPrecName(tier.prec) << " sample " << i << ": fp32="
          << fp32_pred[i] << "s quant=" << quant << "s";
    }
    const double quant_mre = s.regressor->MrePercent(s.dataset, s.idx);
    EXPECT_LE(quant_mre - fp32_mre, tier.mre_pp)
        << tensor::GemmPrecName(tier.prec) << ": fp32 MRE=" << fp32_mre
        << "% quant MRE=" << quant_mre << "%";
  }
}

// ---- program cache ----

TEST(ProgramCache, EntriesAreEvictedWhenOwnerDies) {
  ScopedInferenceConfig guard;
  auto& cache = compile::ProgramCache::Global();
  cache.Clear();
  const graph::EncodedGraph g = TinyEncodedStage();
  {
    auto model = MakePredictor(PredictorKind::kDagTransformer, TinyOptions());
    (void)CompiledScalar(*model, g);
    EXPECT_GE(cache.Size(), 1u);
  }
  EXPECT_EQ(cache.Size(), 0u);  // ~StagePredictor evicted its programs
}

TEST(ProgramCache, LruStaysWithinCapacity) {
  ScopedInferenceConfig guard;
  auto& cache = compile::ProgramCache::Global();
  cache.Clear();
  cache.SetCapacity(2);
  const std::vector<graph::EncodedGraph> graphs{
      TinyEncodedStage(0, 1), TinyEncodedStage(1, 2), TinyEncodedStage(2, 3),
      TinyEncodedStage(0, 3)};
  auto model = MakePredictor(PredictorKind::kDagTransformer, TinyOptions());
  for (const auto& g : graphs) {
    const float tape = model->Forward(g).value().data()[0];
    const float compiled = CompiledScalar(*model, g);  // recompiles on eviction
    EXPECT_LE(std::abs(compiled - tape), 1e-6f * std::max(1.0f, std::abs(tape)));
    EXPECT_LE(cache.Size(), 2u);
  }
  cache.SetCapacity(128);
}

TEST(ProgramCache, DisabledFlagFallsBackToFastPath) {
  ScopedInferenceConfig guard;
  auto& cache = compile::ProgramCache::Global();
  cache.Clear();
  compile::SetCompileEnabled(false);
  const graph::EncodedGraph g = TinyEncodedStage();
  auto model = MakePredictor(PredictorKind::kGcn, TinyOptions());
  const float tape = model->Forward(g).value().data()[0];
  const float fast = model->InferScalar(g, nn::ThreadLocalInferenceContext());
  EXPECT_LE(std::abs(fast - tape), 1e-6f * std::max(1.0f, std::abs(tape)));
  EXPECT_EQ(cache.Size(), 0u);  // the gate short-circuits before compiling
}

// ---- concurrency (exercised under TSan via ci/run.sh tsan) ----

TEST(CompiledConcurrency, SharedModelConcurrentCompiledForwardIsStable) {
  ScopedInferenceConfig guard;
  const std::vector<graph::EncodedGraph> graphs{
      TinyEncodedStage(0, 1), TinyEncodedStage(1, 2), TinyEncodedStage(2, 3),
      TinyEncodedStage(0, 3)};
  auto model = MakePredictor(PredictorKind::kDagTransformer, TinyOptions());
  std::vector<float> expected;
  for (const auto& g : graphs) expected.push_back(CompiledScalar(*model, g));
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 16; ++i) {
        const std::size_t which = static_cast<std::size_t>(t + i) % graphs.size();
        const float y =
            model->InferScalar(graphs[which], nn::ThreadLocalInferenceContext());
        if (y != expected[which]) mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// ---- batch-compiled execution ----

/// A same-shape batch with genuinely distinct inputs: copies of `g` whose
/// feature tensors are scaled per query. Shape class, depths, adjacency, and
/// DAGRA mask stay shared, so every copy routes to one compiled program while
/// each query's numbers differ — a wrong stacked offset shows up as a
/// cross-query value swap, not a silent pass.
std::vector<graph::EncodedGraph> DistinctSameShapeBatch(const graph::EncodedGraph& g,
                                                        std::size_t count) {
  std::vector<graph::EncodedGraph> graphs(count, g);
  for (std::size_t q = 0; q < count; ++q) {
    const float scale = 1.0f + 0.05f * static_cast<float>(q % 11);
    for (float& x : graphs[q].features.data()) x *= scale;
  }
  return graphs;
}

/// Pointer view + per-query sequential-compiled expectations for a batch.
struct BatchFixture {
  std::vector<graph::EncodedGraph> graphs;
  std::vector<const graph::EncodedGraph*> ptrs;
  std::vector<float> expected;  // sequential compiled scalar per query
};

BatchFixture MakeBatchFixture(StagePredictor& model, const graph::EncodedGraph& base,
                              std::size_t count) {
  BatchFixture f;
  f.graphs = DistinctSameShapeBatch(base, count);
  for (const auto& g : f.graphs) {
    f.ptrs.push_back(&g);
    f.expected.push_back(CompiledScalar(model, g));
  }
  return f;
}

/// Runs the first `batch` queries of `f` through TryInferCompiledBatch under
/// `opts` and asserts bit-exact agreement with the sequential expectations.
void ExpectBatchParity(StagePredictor& model, const BatchFixture& f, std::size_t batch,
                       const compile::BatchOptions& opts, const char* what) {
  std::vector<float> out(batch, -1.0f);
  ASSERT_TRUE(model.TryInferCompiledBatch(f.ptrs.data(), batch, out.data(), opts))
      << model.Name() << " " << what << " batch=" << batch << ": fell back";
  for (std::size_t q = 0; q < batch; ++q) {
    ASSERT_EQ(out[q], f.expected[q])
        << model.Name() << " " << what << " batch=" << batch << " q=" << q;
  }
}

constexpr std::size_t kBatchSizes[] = {1, 2, 7, 64};

TEST(CompiledBatch, StackedModeMatchesSequentialBitExact) {
  ScopedInferenceConfig guard;
  const graph::EncodedGraph base = TinyEncodedStage();
  for (const PredictorKind kind : kAllKinds) {
    auto model = MakePredictor(kind, TinyOptions());
    const BatchFixture f = MakeBatchFixture(*model, base, 64);
    compile::BatchOptions opts;
    opts.mode = compile::BatchMode::kBatched;
    for (const std::size_t batch : kBatchSizes) {
      ExpectBatchParity(*model, f, batch, opts, "stacked");
      if (HasFatalFailure()) return;
    }
  }
}

TEST(CompiledBatch, InterleavedModeMatchesAcrossThreadCounts) {
  ScopedInferenceConfig guard;
  const graph::EncodedGraph base = TinyEncodedStage();
  for (const PredictorKind kind : kAllKinds) {
    auto model = MakePredictor(kind, TinyOptions());
    const BatchFixture f = MakeBatchFixture(*model, base, 64);
    for (const std::size_t threads : {1u, 2u, 8u}) {
      util::ThreadPool pool(threads);
      compile::BatchOptions opts;
      opts.mode = compile::BatchMode::kInterleaved;
      opts.pool = &pool;
      for (const std::size_t batch : kBatchSizes) {
        ExpectBatchParity(*model, f, batch, opts, "interleaved");
        if (HasFatalFailure()) return;
      }
    }
  }
}

TEST(CompiledBatch, DagTransformerAblationsMatchInBatch) {
  ScopedInferenceConfig guard;
  const graph::EncodedGraph base = TinyEncodedStage();
  for (const bool use_dagra : {true, false}) {
    for (const bool use_dagpe : {true, false}) {
      PredictorOptions options = TinyOptions();
      options.use_dagra = use_dagra;
      options.use_dagpe = use_dagpe;
      auto model = MakePredictor(PredictorKind::kDagTransformer, options);
      const BatchFixture f = MakeBatchFixture(*model, base, 7);
      compile::BatchOptions opts;
      opts.mode = compile::BatchMode::kBatched;
      ExpectBatchParity(*model, f, 7, opts, "ablation");
      if (HasFatalFailure()) return;
    }
  }
}

TEST(CompiledBatch, AutoModeCountsEveryQuery) {
  ScopedInferenceConfig guard;
  const graph::EncodedGraph base = TinyEncodedStage();
  auto model = MakePredictor(PredictorKind::kDagTransformer, TinyOptions());
  const BatchFixture f = MakeBatchFixture(*model, base, 5);
  const std::uint64_t before =
      compile::BatchedForwards() + compile::InterleavedForwards();
  ExpectBatchParity(*model, f, 5, compile::BatchOptions{}, "auto");
  EXPECT_EQ(compile::BatchedForwards() + compile::InterleavedForwards(), before + 5)
      << "every query must land in exactly one batch-path counter";
}

TEST(CompiledBatch, RegressorBatchMatchesSequentialAcrossShapes) {
  ScopedInferenceConfig guard;
  // Three shape classes, interleaved and with same-shape duplicates: the
  // regressor must split per shape, run each group batched, and scatter the
  // results back in caller order.
  std::vector<graph::EncodedGraph> graphs{TinyEncodedStage(0, 1), TinyEncodedStage(1, 2),
                                          TinyEncodedStage(0, 3), TinyEncodedStage(1, 2),
                                          TinyEncodedStage(0, 1), TinyEncodedStage(1, 2)};
  for (const PredictorKind kind : kAllKinds) {
    LatencyRegressor regressor(kind, TinyOptions());
    std::vector<double> expected;
    for (const auto& g : graphs) expected.push_back(regressor.PredictSeconds(g));
    const std::vector<double> batched =
        regressor.PredictBatch(std::span<const graph::EncodedGraph>(graphs));
    ASSERT_EQ(batched.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(batched[i], expected[i]) << regressor.Model().Name() << " i=" << i;
    }
    // The kill switch reverts to sequential replay — still bit-identical.
    compile::SetBatchCompileEnabled(false);
    const std::vector<double> fallback =
        regressor.PredictBatch(std::span<const graph::EncodedGraph>(graphs));
    compile::SetBatchCompileEnabled(true);
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(fallback[i], expected[i]) << regressor.Model().Name() << " i=" << i;
    }
  }
}

TEST(CompiledBatchArena, WarmBatchAllocatesNothing) {
  ScopedInferenceConfig guard;
  const graph::EncodedGraph base = TinyEncodedStage();
  auto model = MakePredictor(PredictorKind::kDagTransformer, TinyOptions());
  const BatchFixture f = MakeBatchFixture(*model, base, 8);
  std::vector<float> out(8);
  compile::BatchOptions opts;
  opts.mode = compile::BatchMode::kBatched;
  // Cold: compiles the program (if needed) and grows the batched plan buffer.
  ASSERT_TRUE(model->TryInferCompiledBatch(f.ptrs.data(), 8, out.data(), opts));
  const std::int64_t batch_floats = compile::ThreadBatchBufferFloats();
  EXPECT_GT(batch_floats, 0);
  nn::InferenceContext& ctx = nn::ThreadLocalInferenceContext();
  ctx.BeginForward();  // rewind the arena so its epoch counter reads zero
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(model->TryInferCompiledBatch(f.ptrs.data(), 8, out.data(), opts));
  }
  EXPECT_EQ(ctx.arena().EpochFloats(), 0)
      << "warm batched forward touched the dynamic arena";
  EXPECT_EQ(compile::ThreadBatchBufferFloats(), batch_floats)
      << "warm batched forward grew the plan buffer";
}

TEST(ProgramCache, HitAndMissCountersAreMonotonic) {
  ScopedInferenceConfig guard;
  auto& cache = compile::ProgramCache::Global();
  cache.Clear();
  const graph::EncodedGraph g = TinyEncodedStage();
  auto model = MakePredictor(PredictorKind::kGcn, TinyOptions());
  const std::uint64_t misses0 = cache.Misses();
  (void)CompiledScalar(*model, g);  // cold: misses, then compiles and inserts
  EXPECT_GT(cache.Misses(), misses0);
  const std::uint64_t hits1 = cache.Hits();
  const std::uint64_t misses1 = cache.Misses();
  (void)CompiledScalar(*model, g);  // warm: pure hit
  EXPECT_GT(cache.Hits(), hits1);
  EXPECT_EQ(cache.Misses(), misses1);
}

TEST(TuneTableResolution, EnvOverridesWinAndResolutionIsSticky) {
  ScopedInferenceConfig guard;
  const bool wide0 = tensor::GemmWideTiles();
  const std::int64_t pme0 = tensor::GemmParMinElems();
  const std::uint64_t sweeps0 = compile::AutotuneSweeps();
  setenv("PREDTOP_TUNE_WIDE_TILES", "0", 1);
  setenv("PREDTOP_TUNE_PAR_MIN_ELEMS", "123456", 1);
  setenv("PREDTOP_TUNE_INTERLEAVE_MIN_BATCH", "9", 1);
  setenv("PREDTOP_TUNE_INTERLEAVE_MIN_FLOPS", "77", 1);
  compile::detail::ResetTuneTableForTest();
  const compile::TuneTable& t = compile::ResolvedTuneTable();
  EXPECT_FALSE(t.wide_tiles);
  EXPECT_EQ(t.par_min_elems, 123456);
  EXPECT_EQ(t.interleave_min_batch, 9);
  EXPECT_EQ(t.interleave_min_flops, 77);
  EXPECT_FALSE(t.autotuned);  // env resolution runs no timing sweeps...
  EXPECT_EQ(compile::AutotuneSweeps(), sweeps0);
  // ...but explicit overrides do propagate to the tensor layer.
  EXPECT_FALSE(tensor::GemmWideTiles());
  EXPECT_EQ(tensor::GemmParMinElems(), 123456);
  // Sticky: once resolved, env changes are ignored until a reset.
  setenv("PREDTOP_TUNE_PAR_MIN_ELEMS", "999", 1);
  EXPECT_EQ(compile::ResolvedTuneTable().par_min_elems, 123456);
  unsetenv("PREDTOP_TUNE_WIDE_TILES");
  unsetenv("PREDTOP_TUNE_PAR_MIN_ELEMS");
  unsetenv("PREDTOP_TUNE_INTERLEAVE_MIN_BATCH");
  unsetenv("PREDTOP_TUNE_INTERLEAVE_MIN_FLOPS");
  tensor::SetGemmWideTiles(wide0);
  tensor::SetGemmParMinElems(pme0);
  compile::detail::ResetTuneTableForTest();
}

TEST(TuneTableResolution, DefaultResolutionNeverMovesTensorKnobs) {
  ScopedInferenceConfig guard;
  const bool wide0 = tensor::GemmWideTiles();
  const std::int64_t pme0 = tensor::GemmParMinElems();
  tensor::SetGemmWideTiles(!wide0);  // pretend a test manages this global
  compile::detail::ResetTuneTableForTest();
  const compile::TuneTable& t = compile::ResolvedTuneTable();
  EXPECT_EQ(t.wide_tiles, !wide0);  // defaults mirror the current state...
  EXPECT_EQ(tensor::GemmWideTiles(), !wide0);  // ...and never stomp it
  EXPECT_EQ(tensor::GemmParMinElems(), pme0);
  tensor::SetGemmWideTiles(wide0);
  compile::detail::ResetTuneTableForTest();
}

// Exercised under TSan via ci/run.sh tsan: concurrent stacked batches on one
// shared model hit the program cache, the weight snapshot, and the per-thread
// batch buffers from many threads at once.
TEST(CompiledBatchConcurrency, SharedModelConcurrentBatchForwardIsStable) {
  ScopedInferenceConfig guard;
  const graph::EncodedGraph base = TinyEncodedStage();
  auto model = MakePredictor(PredictorKind::kDagTransformer, TinyOptions());
  const BatchFixture f = MakeBatchFixture(*model, base, 6);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      compile::BatchOptions opts;
      opts.mode = compile::BatchMode::kBatched;
      std::vector<float> out(f.ptrs.size());
      for (int i = 0; i < 16; ++i) {
        if (!model->TryInferCompiledBatch(f.ptrs.data(), f.ptrs.size(), out.data(),
                                          opts)) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        for (std::size_t q = 0; q < f.ptrs.size(); ++q) {
          if (out[q] != f.expected[q]) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace predtop::core

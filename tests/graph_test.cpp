// Tests for the operator-DAG representation and its predictor-facing
// encodings: reachability (DAGRA), depth (DAGPE), pruning, features.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "graph/depth.h"
#include "graph/encode.h"
#include "graph/op_dag.h"
#include "graph/prune.h"
#include "graph/reachability.h"
#include "util/rng.h"

namespace predtop::graph {
namespace {

using util::Rng;

OpDag ChainDag(std::int32_t n) {
  OpDag dag;
  for (std::int32_t i = 0; i < n; ++i) dag.AddNode({});
  for (std::int32_t i = 0; i + 1 < n; ++i) dag.AddEdge(i, i + 1);
  return dag;
}

/// Random DAG: edges only from lower to higher indices (guaranteed acyclic).
OpDag RandomDag(std::int32_t n, double edge_prob, Rng& rng) {
  OpDag dag;
  for (std::int32_t i = 0; i < n; ++i) dag.AddNode({});
  for (std::int32_t u = 0; u < n; ++u) {
    for (std::int32_t v = u + 1; v < n; ++v) {
      if (rng.NextDouble() < edge_prob) dag.AddEdge(u, v);
    }
  }
  return dag;
}

TEST(OpDag, AddNodesAndEdges) {
  OpDag dag;
  const auto a = dag.AddNode({});
  const auto b = dag.AddNode({});
  dag.AddEdge(a, b);
  dag.AddEdge(a, b);  // duplicate ignored
  EXPECT_EQ(dag.NumNodes(), 2);
  EXPECT_EQ(dag.NumEdges(), 1);
  EXPECT_EQ(dag.Successors(a).size(), 1u);
  EXPECT_EQ(dag.Predecessors(b).size(), 1u);
}

TEST(OpDag, RejectsSelfLoopsAndBadIndices) {
  OpDag dag;
  const auto a = dag.AddNode({});
  EXPECT_THROW(dag.AddEdge(a, a), std::invalid_argument);
  EXPECT_THROW(dag.AddEdge(a, 5), std::out_of_range);
}

TEST(OpDag, TopologicalOrderRespectsEdges) {
  Rng rng(1);
  const OpDag dag = RandomDag(30, 0.15, rng);
  const auto order = dag.TopologicalOrder();
  ASSERT_TRUE(order.has_value());
  std::vector<std::int32_t> position(30);
  for (std::size_t i = 0; i < order->size(); ++i) position[(*order)[i]] = static_cast<std::int32_t>(i);
  for (const auto& [u, v] : dag.Edges()) EXPECT_LT(position[u], position[v]);
}

TEST(ReachabilityClosure, SelfAndDirectEdges) {
  const OpDag dag = ChainDag(4);
  const ReachabilityClosure closure(dag);
  for (std::int32_t i = 0; i < 4; ++i) EXPECT_TRUE(closure.Reaches(i, i));
  EXPECT_TRUE(closure.Reaches(0, 3));   // transitive
  EXPECT_FALSE(closure.Reaches(3, 0));  // directed
}

TEST(ReachabilityClosure, MatchesDfsOnRandomDags) {
  Rng rng(2);
  for (int trial = 0; trial < 5; ++trial) {
    const OpDag dag = RandomDag(24, 0.12, rng);
    const ReachabilityClosure closure(dag);
    // Reference: DFS from each node.
    for (std::int32_t s = 0; s < 24; ++s) {
      std::set<std::int32_t> visited{s};
      std::vector<std::int32_t> stack{s};
      while (!stack.empty()) {
        const std::int32_t u = stack.back();
        stack.pop_back();
        for (const std::int32_t v : dag.Successors(u)) {
          if (visited.insert(v).second) stack.push_back(v);
        }
      }
      for (std::int32_t t = 0; t < 24; ++t) {
        EXPECT_EQ(closure.Reaches(s, t), visited.count(t) > 0) << s << "->" << t;
      }
    }
  }
}

TEST(ReachabilityClosure, TransitivityProperty) {
  Rng rng(3);
  const OpDag dag = RandomDag(20, 0.2, rng);
  const ReachabilityClosure closure(dag);
  for (std::int32_t a = 0; a < 20; ++a) {
    for (std::int32_t b = 0; b < 20; ++b) {
      if (!closure.Reaches(a, b)) continue;
      for (std::int32_t c = 0; c < 20; ++c) {
        if (closure.Reaches(b, c)) {
          EXPECT_TRUE(closure.Reaches(a, c));
        }
      }
    }
  }
}

TEST(DagraMask, SymmetricAndCoversEdges) {
  Rng rng(4);
  const OpDag dag = RandomDag(16, 0.2, rng);
  const tensor::Tensor mask = BuildDagraMask(dag);
  for (std::int32_t u = 0; u < 16; ++u) {
    EXPECT_EQ(mask.at(u, u), 0.0f);  // self-attention always allowed
    for (std::int32_t v = 0; v < 16; ++v) {
      EXPECT_EQ(mask.at(u, v), mask.at(v, u));  // mutual relevance
    }
  }
  for (const auto& [u, v] : dag.Edges()) EXPECT_EQ(mask.at(u, v), 0.0f);
}

TEST(DagraMask, BlocksParallelBranches) {
  // Diamond: 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3. Nodes 1 and 2 are not on a
  // common path, so they must not attend to each other.
  OpDag dag;
  for (int i = 0; i < 4; ++i) dag.AddNode({});
  dag.AddEdge(0, 1);
  dag.AddEdge(0, 2);
  dag.AddEdge(1, 3);
  dag.AddEdge(2, 3);
  const tensor::Tensor mask = BuildDagraMask(dag);
  EXPECT_TRUE(std::isinf(mask.at(1, 2)));
  EXPECT_TRUE(std::isinf(mask.at(2, 1)));
  EXPECT_EQ(mask.at(0, 3), 0.0f);
}

TEST(FullAttentionMask, IsAllZero) {
  const tensor::Tensor mask = BuildFullAttentionMask(5);
  for (const float v : mask.data()) EXPECT_EQ(v, 0.0f);
}

TEST(NodeDepths, LongestPathSemantics) {
  // 0 -> 1 -> 3 and 0 -> 3: depth(3) must be 2 (longest path).
  OpDag dag;
  for (int i = 0; i < 4; ++i) dag.AddNode({});
  dag.AddEdge(0, 1);
  dag.AddEdge(1, 3);
  dag.AddEdge(0, 3);
  dag.AddEdge(0, 2);
  const auto depths = NodeDepths(dag);
  EXPECT_EQ(depths[0], 0);
  EXPECT_EQ(depths[1], 1);
  EXPECT_EQ(depths[2], 1);
  EXPECT_EQ(depths[3], 2);
}

TEST(NodeDepths, MonotoneAlongEdges) {
  Rng rng(5);
  const OpDag dag = RandomDag(25, 0.15, rng);
  const auto depths = NodeDepths(dag);
  for (const auto& [u, v] : dag.Edges()) {
    EXPECT_LT(depths[u], depths[v]);
  }
}

TEST(SinusoidalEncoding, ShapeAndRange) {
  const tensor::Tensor pe = SinusoidalEncoding({0, 1, 5, 100}, 16);
  EXPECT_EQ(pe.dim(0), 4);
  EXPECT_EQ(pe.dim(1), 16);
  for (const float v : pe.data()) {
    EXPECT_GE(v, -1.0f);
    EXPECT_LE(v, 1.0f);
  }
  // Position 0: sin terms are 0, cos terms are 1.
  EXPECT_FLOAT_EQ(pe.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(pe.at(0, 1), 1.0f);
}

TEST(SinusoidalEncoding, RequiresEvenDim) {
  EXPECT_THROW(SinusoidalEncoding({0}, 7), std::invalid_argument);
}

// ---- pruning ----

DagNode OpNode(std::int32_t op_type) {
  DagNode node;
  node.kind = NodeKind::kOperator;
  node.op_type = op_type;
  return node;
}

TEST(Prune, CollapsesChainsOfRemovableNodes) {
  // in -> A -> r1 -> r2 -> B -> out, where r1/r2 are prunable: expect
  // A -> B directly in the result.
  OpDag dag;
  const auto in = dag.AddNode({NodeKind::kInput, 0, 0, {1, 1, 1, 1}});
  const auto a = dag.AddNode(OpNode(1));
  const auto r1 = dag.AddNode(OpNode(99));
  const auto r2 = dag.AddNode(OpNode(99));
  const auto b = dag.AddNode(OpNode(2));
  const auto out = dag.AddNode({NodeKind::kOutput, 0, 0, {1, 1, 1, 1}});
  dag.AddEdge(in, a);
  dag.AddEdge(a, r1);
  dag.AddEdge(r1, r2);
  dag.AddEdge(r2, b);
  dag.AddEdge(b, out);
  const PruneResult result =
      PruneDag(dag, [](const DagNode& n) { return n.op_type == 99; });
  EXPECT_EQ(result.removed, 2);
  EXPECT_EQ(result.dag.NumNodes(), 4);
  EXPECT_TRUE(result.dag.IsAcyclic());
  // A -> B edge exists through the collapsed chain.
  const std::int32_t new_a = result.remap[static_cast<std::size_t>(a)];
  const std::int32_t new_b = result.remap[static_cast<std::size_t>(b)];
  const auto& succ = result.dag.Successors(new_a);
  EXPECT_NE(std::find(succ.begin(), succ.end(), new_b), succ.end());
  EXPECT_EQ(result.remap[static_cast<std::size_t>(r1)], -1);
}

TEST(Prune, NeverRemovesInputsOrOutputs) {
  OpDag dag;
  const auto in = dag.AddNode({NodeKind::kInput, 99, 0, {1, 1, 1, 1}});
  const auto out = dag.AddNode({NodeKind::kOutput, 99, 0, {1, 1, 1, 1}});
  dag.AddEdge(in, out);
  const PruneResult result = PruneDag(dag, [](const DagNode&) { return true; });
  EXPECT_EQ(result.dag.NumNodes(), 2);
  EXPECT_EQ(result.removed, 0);
}

TEST(Prune, PreservesReachabilityAmongSurvivors) {
  Rng rng(6);
  for (int trial = 0; trial < 4; ++trial) {
    OpDag dag;
    for (int i = 0; i < 30; ++i) {
      dag.AddNode(OpNode(static_cast<std::int32_t>(rng.NextBelow(4))));
    }
    for (std::int32_t u = 0; u < 30; ++u) {
      for (std::int32_t v = u + 1; v < 30; ++v) {
        if (rng.NextDouble() < 0.1) dag.AddEdge(u, v);
      }
    }
    const ReachabilityClosure before(dag);
    const PruneResult result =
        PruneDag(dag, [](const DagNode& n) { return n.op_type == 0; });
    ASSERT_TRUE(result.dag.IsAcyclic());
    const ReachabilityClosure after(result.dag);
    for (std::int32_t u = 0; u < 30; ++u) {
      if (result.remap[static_cast<std::size_t>(u)] < 0) continue;
      for (std::int32_t v = 0; v < 30; ++v) {
        if (result.remap[static_cast<std::size_t>(v)] < 0) continue;
        EXPECT_EQ(after.Reaches(result.remap[static_cast<std::size_t>(u)],
                                result.remap[static_cast<std::size_t>(v)]),
                  before.Reaches(u, v))
            << u << "->" << v;
      }
    }
  }
}

// ---- features / encoding ----

TEST(Features, OneHotLayoutPerPaperTable1) {
  OpDag dag;
  DagNode node;
  node.kind = NodeKind::kLiteral;
  node.op_type = 2;
  node.dtype = 1;
  node.out_dims = {1, 1, 3, 7};
  dag.AddNode(node);
  const std::int32_t ops = 5, dtypes = 3;
  const tensor::Tensor f = EncodeNodeFeatures(dag, ops, dtypes);
  EXPECT_EQ(f.dim(1), NodeFeatureWidth(ops, dtypes));
  // op one-hot at index 2
  EXPECT_EQ(f.at(0, 2), 1.0f);
  EXPECT_EQ(f.at(0, 0), 0.0f);
  // log-scaled dims after the op block
  EXPECT_FLOAT_EQ(f.at(0, ops + 2), std::log2(4.0f));
  EXPECT_FLOAT_EQ(f.at(0, ops + 3), std::log2(8.0f));
  // dtype one-hot
  EXPECT_EQ(f.at(0, ops + 4 + 1), 1.0f);
  // node-kind one-hot (literal = 1)
  EXPECT_EQ(f.at(0, ops + 4 + dtypes + 1), 1.0f);
}

TEST(Features, RejectsOutOfVocabulary) {
  OpDag dag;
  DagNode node;
  node.op_type = 9;
  dag.AddNode(node);
  EXPECT_THROW(EncodeNodeFeatures(dag, 5, 3), std::out_of_range);
}

TEST(EncodeGraph, ProducesConsistentArtifacts) {
  Rng rng(7);
  const OpDag dag = RandomDag(12, 0.2, rng);
  const EncodedGraph g = EncodeGraph(dag, 4, 3);
  EXPECT_EQ(g.num_nodes, 12);
  EXPECT_EQ(g.features.dim(0), 12);
  EXPECT_EQ(g.dagra_mask.dim(0), 12);
  EXPECT_EQ(g.dagra_mask.dim(1), 12);
  EXPECT_EQ(g.depths.size(), 12u);
  // GCN adjacency: symmetric and rows indexable.
  ASSERT_NE(g.adj_norm, nullptr);
  EXPECT_EQ(g.adj_norm->rows, 12);
  // GAT edges: 2 per DAG edge + self-loops.
  EXPECT_EQ(g.edge_src.size(), static_cast<std::size_t>(2 * dag.NumEdges() + 12));
  EXPECT_EQ(g.edge_src.size(), g.edge_dst.size());
}

TEST(EncodeGraph, GcnAdjacencyIsSymmetricallyNormalized) {
  // Path 0 - 1: degrees with self-loops are 2 and 2; entry = 1/2.
  OpDag dag;
  dag.AddNode({});
  dag.AddNode({});
  dag.AddEdge(0, 1);
  const EncodedGraph g = EncodeGraph(dag, 1, 1);
  // Row 0: entries (0,0) = 1/2, (0,1) = 1/2.
  const auto& adj = *g.adj_norm;
  EXPECT_EQ(adj.Nnz(), 4u);
  for (const float v : adj.values) EXPECT_NEAR(v, 0.5f, 1e-6f);
}

}  // namespace
}  // namespace predtop::graph

// Tests for parallelization configs, the intra-op compiler/scheduler, the
// pipeline formula (Eqn. 4) and the inter-op DP optimizer (vs brute force).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <utility>

#include "parallel/config.h"
#include "parallel/inter_op.h"
#include "parallel/intra_op.h"
#include "parallel/pipeline_model.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace predtop::parallel {
namespace {

TEST(Config, PaperTable3Configurations) {
  const auto mesh1 = PaperConfigs(sim::Mesh{1, 1});
  ASSERT_EQ(mesh1.size(), 1u);
  EXPECT_EQ(mesh1[0].Degree(), 1);

  const auto mesh2 = PaperConfigs(sim::Mesh{1, 2});
  ASSERT_EQ(mesh2.size(), 2u);
  EXPECT_EQ(mesh2[0], (ParallelConfig{2, 1, 1}));  // 2-way DP
  EXPECT_EQ(mesh2[1], (ParallelConfig{1, 2, 1}));  // 2-way MP

  const auto mesh3 = PaperConfigs(sim::Mesh{2, 2});
  ASSERT_EQ(mesh3.size(), 3u);
  EXPECT_EQ(mesh3[0], (ParallelConfig{4, 1, 1}));
  EXPECT_EQ(mesh3[1], (ParallelConfig{2, 2, 1}));
  EXPECT_EQ(mesh3[2], (ParallelConfig{1, 4, 1}));
}

TEST(Config, AllConfigsEnumeratesFactorizations) {
  const auto configs = AllConfigs(sim::Mesh{2, 2});
  // Factorizations of 4 into (dp, mp, tp): 4 = 1*1*4,1*2*2,1*4*1,2*1*2,
  // 2*2*1,4*1*1 -> 6 total.
  EXPECT_EQ(configs.size(), 6u);
  for (const auto& c : configs) EXPECT_EQ(c.Degree(), 4);
}

TEST(Config, ToStringReadable) {
  EXPECT_EQ((ParallelConfig{1, 1, 1}).ToString(), "no parallelism");
  EXPECT_EQ((ParallelConfig{2, 1, 1}).ToString(), "2-way DP");
  EXPECT_EQ((ParallelConfig{2, 2, 1}).ToString(), "2-way DP x 2-way MP");
}

// ---- pipeline formula ----

TEST(PipelineModel, MatchesEqn4) {
  const std::vector<double> t{1.0, 3.0, 2.0};
  // T = sum + (B-1) * max = 6 + 2*3 = 12.
  EXPECT_DOUBLE_EQ(PipelineLatency(t, 3), 12.0);
}

TEST(PipelineModel, SingleMicrobatchIsSum) {
  const std::vector<double> t{1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(PipelineLatency(t, 1), 6.0);
}

TEST(PipelineModel, PermutationInvariant) {
  const std::vector<double> a{1.0, 3.0, 2.0};
  const std::vector<double> b{3.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(PipelineLatency(a, 5), PipelineLatency(b, 5));
}

TEST(PipelineModel, BottleneckDominatesAtManyMicrobatches) {
  const std::vector<double> balanced{2.0, 2.0};
  const std::vector<double> skewed{1.0, 3.0};  // same sum, worse bottleneck
  EXPECT_LT(PipelineLatency(balanced, 100), PipelineLatency(skewed, 100));
}

TEST(PipelineModel, EmptyAndDegenerate) {
  EXPECT_EQ(PipelineLatency({}, 4), 0.0);
  const std::vector<double> one{5.0};
  EXPECT_DOUBLE_EQ(PipelineLatency(one, 4), 5.0 + 3.0 * 5.0);
}

TEST(PipelineModel, MicrobatchCountIsClampedToOne) {
  // Regression: B < 1 used to return 0.0 for non-empty pipelines, making any
  // plan scored with an unset microbatch count look free.
  const std::vector<double> t{1.0, 2.0};
  EXPECT_DOUBLE_EQ(PipelineLatency(t, 0), 3.0);
  EXPECT_DOUBLE_EQ(PipelineLatency(t, -3), 3.0);
  EXPECT_DOUBLE_EQ(PipelineLatency(t, 1), 3.0);
  EXPECT_EQ(PipelineLatency({}, 0), 0.0);  // empty still costs nothing
}

// ---- intra-op compiler ----

/// Small synthetic stage: a chain with a parallel branch, sized so compute
/// dominates launch overhead.
ir::StageProgram BranchyProgram() {
  ir::StageProgram p;
  const auto x = p.AddInput({ir::DType::kF16, {64, 1024}});
  const auto w1 = p.AddLiteral({ir::DType::kF16, {1024, 1024}});
  const auto w2 = p.AddLiteral({ir::DType::kF16, {1024, 1024}});
  const auto a = p.AddEquation(ir::OpType::kDot, {x, w1}, {ir::DType::kF16, {64, 1024}}, 1024);
  const auto b = p.AddEquation(ir::OpType::kDot, {x, w2}, {ir::DType::kF16, {64, 1024}}, 1024);
  const auto sum = p.AddEquation(ir::OpType::kAdd, {a, b}, {ir::DType::kF16, {64, 1024}});
  p.MarkOutput(sum);
  return p;
}

TEST(IntraOp, ConfigDegreeMustMatchMesh) {
  const IntraOpCompiler compiler(sim::Platform1(), sim::Mesh{1, 2});
  const auto program = BranchyProgram();
  EXPECT_THROW(compiler.Compile(program, {1, 1, 1}), std::invalid_argument);
  EXPECT_NO_THROW(compiler.Compile(program, {2, 1, 1}));
}

TEST(IntraOp, MeshMustFitCluster) {
  EXPECT_THROW(IntraOpCompiler(sim::Platform1(), sim::Mesh{2, 2}), std::invalid_argument);
}

TEST(IntraOp, PlanAssignsEveryEquationToValidGroup) {
  const IntraOpCompiler compiler(sim::Platform1(), sim::Mesh{1, 2});
  const auto program = BranchyProgram();
  const StagePlan plan = compiler.Compile(program, {1, 2, 1});
  ASSERT_TRUE(plan.Valid());
  ASSERT_EQ(plan.group_of_equation.size(),
            static_cast<std::size_t>(program.NumEquations()));
  for (const std::int32_t g : plan.group_of_equation) {
    EXPECT_GE(g, 0);
    EXPECT_LT(g, 2);
  }
}

TEST(IntraOp, GreedyBeatsOrMatchesSingleGroup) {
  // Assigning everything to group 0 wastes the second lane; greedy must not
  // be worse.
  const IntraOpCompiler compiler(sim::Platform1(), sim::Mesh{1, 2});
  const auto program = BranchyProgram();
  const StagePlan greedy = compiler.Compile(program, {1, 2, 1});
  const std::vector<std::int32_t> all_zero(
      static_cast<std::size_t>(program.NumEquations()), 0);
  const double single = compiler.SimulateLatency(program, {1, 2, 1}, all_zero);
  EXPECT_LE(greedy.latency_s, single + 1e-12);
}

TEST(IntraOp, GreedyWithinFactorOfBruteForceOnSmallPrograms) {
  const IntraOpCompiler compiler(sim::Platform1(), sim::Mesh{1, 2});
  const auto program = BranchyProgram();
  const std::size_t n = static_cast<std::size_t>(program.NumEquations());
  double best = std::numeric_limits<double>::infinity();
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    std::vector<std::int32_t> groups(n);
    for (std::size_t i = 0; i < n; ++i) groups[i] = (mask >> i) & 1u;
    best = std::min(best, compiler.SimulateLatency(program, {1, 2, 1}, groups));
  }
  const StagePlan greedy = compiler.Compile(program, {1, 2, 1});
  EXPECT_LE(greedy.latency_s, 1.2 * best);
}

TEST(IntraOp, DataParallelSpeedsUpComputeBoundStages) {
  const IntraOpCompiler mesh1(sim::Platform1(), sim::Mesh{1, 1});
  const IntraOpCompiler mesh2(sim::Platform1(), sim::Mesh{1, 2});
  ir::Gpt3Config config;
  const auto stage = ir::BuildGpt3Stage(config, {4, 8});
  const double single = mesh1.Compile(stage, {1, 1, 1}).latency_s;
  const double dp2 = mesh2.Compile(stage, {2, 1, 1}).latency_s;
  EXPECT_LT(dp2, single);
  EXPECT_GT(dp2, single / 2.0);  // all-reduce + overheads prevent ideal scaling
}

TEST(IntraOp, SimulateMatchesCompileForSamePlan) {
  const IntraOpCompiler compiler(sim::Platform1(), sim::Mesh{1, 2});
  ir::Gpt3Config config;
  const auto stage = ir::BuildGpt3Stage(config, {0, 2});
  const StagePlan plan = compiler.Compile(stage, {1, 2, 1});
  const double replay = compiler.SimulateLatency(stage, {1, 2, 1}, plan.group_of_equation);
  EXPECT_NEAR(replay, plan.latency_s, 1e-9);
}

TEST(IntraOp, OutOfMemoryStagesAreInvalid) {
  // A stage with enormous weights cannot fit on one 24 GiB A5500.
  ir::StageProgram p;
  const auto x = p.AddInput({ir::DType::kF16, {1, 1024}});
  const auto w = p.AddLiteral({ir::DType::kF32, {1024, 8LL * 1024 * 1024 * 1024}});
  p.AddEquation(ir::OpType::kDot, {x, w}, {ir::DType::kF16, {1, 1024}}, 1024);
  const IntraOpCompiler compiler(sim::Platform2(), sim::Mesh{1, 1});
  EXPECT_FALSE(compiler.MemoryFeasible(p, {1, 1, 1}));
  EXPECT_FALSE(compiler.Compile(p, {1, 1, 1}).Valid());
}

TEST(IntraOp, TensorParallelHelpsHugeDots) {
  // One giant dot: TP-2 halves compute at the cost of an all-reduce; should
  // win for sufficiently large matrices.
  ir::StageProgram p;
  const auto x = p.AddInput({ir::DType::kF16, {8192, 8192}});
  const auto w = p.AddLiteral({ir::DType::kF16, {8192, 8192}});
  const auto y = p.AddEquation(ir::OpType::kDot, {x, w}, {ir::DType::kF16, {8192, 8192}}, 8192);
  p.MarkOutput(y);
  const IntraOpCompiler compiler(sim::Platform1(), sim::Mesh{1, 2});
  const double tp2 = compiler.Compile(p, {1, 1, 2}).latency_s;
  // Compare against MP-2, which cannot split a single operator.
  const double mp2 = compiler.Compile(p, {1, 2, 1}).latency_s;
  EXPECT_LT(tp2, mp2);
}

TEST(IntraOp, CompileBestPicksMinimum) {
  const IntraOpCompiler compiler(sim::Platform1(), sim::Mesh{1, 2});
  ir::Gpt3Config config;
  const auto stage = ir::BuildGpt3Stage(config, {4, 6});
  const auto configs = PaperConfigs(sim::Mesh{1, 2});
  const StagePlan best = compiler.CompileBest(stage, configs);
  for (const auto& c : configs) {
    EXPECT_LE(best.latency_s, compiler.Compile(stage, c).latency_s + 1e-12);
  }
}

// ---- inter-op optimizer ----

TEST(InterOp, RequiresPositiveLayers) {
  InterOpOptions options;
  options.num_layers = 0;
  EXPECT_THROW(InterOpOptimizer(sim::Platform1(), options), std::invalid_argument);
}

/// Synthetic oracle with controllable per-(span, devices) latencies.
StageLatencyOracle MakeSyntheticOracle(double base_per_layer) {
  return [base_per_layer](ir::StageSlice slice, sim::Mesh mesh) {
    // Perfectly divisible work: span layers spread over the mesh.
    const double latency =
        base_per_layer * slice.NumLayers() / mesh.NumDevices();
    return StageLatencyResult{latency, {mesh.NumDevices(), 1, 1}};
  };
}

TEST(InterOp, PlanCoversAllLayersContiguously) {
  InterOpOptions options;
  options.num_layers = 8;
  options.num_microbatches = 4;
  const InterOpOptimizer optimizer(sim::Platform2(), options);
  const PipelinePlan plan = optimizer.Optimize(MakeSyntheticOracle(1.0));
  ASSERT_TRUE(plan.Valid());
  std::int32_t cursor = 0;
  std::int32_t devices = 0;
  for (const auto& stage : plan.stages) {
    EXPECT_EQ(stage.slice.first_layer, cursor);
    cursor = stage.slice.last_layer;
    devices += stage.mesh.NumDevices();
  }
  EXPECT_EQ(cursor, 8);
  EXPECT_LE(devices, sim::Platform2().TotalDevices());
}

TEST(InterOp, MatchesBruteForceOnSmallInstance) {
  // Brute-force all contiguous partitions x mesh assignments for 4 layers on
  // Platform 2 and compare with the DP result.
  InterOpOptions options;
  options.num_layers = 4;
  options.num_microbatches = 6;
  const InterOpOptimizer optimizer(sim::Platform2(), options);

  // Irregular synthetic latencies keyed deterministically.
  const StageLatencyOracle oracle = [](ir::StageSlice slice, sim::Mesh mesh) {
    const std::uint64_t h = util::SplitMix64(
        static_cast<std::uint64_t>(slice.first_layer * 131 + slice.last_layer * 17 +
                                   mesh.NumDevices()));
    const double latency = 0.05 + static_cast<double>(h % 1000) / 1000.0 *
                                      slice.NumLayers() / mesh.NumDevices();
    return StageLatencyResult{latency, {}};
  };

  const PipelinePlan dp_plan = optimizer.Optimize(oracle);
  ASSERT_TRUE(dp_plan.Valid());

  // Brute force: enumerate compositions of 4 layers and mesh choices.
  const auto meshes = sim::PaperMeshes(sim::Platform2());
  double best = std::numeric_limits<double>::infinity();
  std::vector<std::pair<std::int32_t, std::size_t>> stack;  // (cut, mesh idx)
  const std::function<void(std::int32_t, std::int32_t, std::vector<double>&)> recurse =
      [&](std::int32_t layer, std::int32_t devices_left, std::vector<double>& lats) {
        if (layer == 4) {
          best = std::min(best, PipelineLatency(lats, 6));
          return;
        }
        for (std::int32_t next = layer + 1; next <= 4; ++next) {
          for (const sim::Mesh mesh : meshes) {
            if (mesh.NumDevices() > devices_left) continue;
            lats.push_back(oracle(ir::StageSlice{layer, next}, mesh).latency_s);
            recurse(next, devices_left - mesh.NumDevices(), lats);
            lats.pop_back();
          }
        }
      };
  std::vector<double> lats;
  recurse(0, sim::Platform2().TotalDevices(), lats);
  EXPECT_NEAR(dp_plan.iteration_latency_s, best, 1e-9);
}

TEST(InterOp, MoreMicrobatchesFavorMoreStages) {
  // With sub-linear device scaling, B=1 favors one big stage on the largest
  // mesh, while large B's bottleneck term pushes toward a deeper pipeline of
  // small balanced stages.
  const StageLatencyOracle oracle = [](ir::StageSlice slice, sim::Mesh mesh) {
    const double d = mesh.NumDevices();
    const double latency = slice.NumLayers() * (0.5 + 0.5 * d) / d;
    return StageLatencyResult{latency, {}};
  };
  InterOpOptions few;
  few.num_layers = 8;
  few.num_microbatches = 1;
  InterOpOptions many = few;
  many.num_microbatches = 64;
  const PipelinePlan plan_few = InterOpOptimizer(sim::Platform2(), few).Optimize(oracle);
  const PipelinePlan plan_many = InterOpOptimizer(sim::Platform2(), many).Optimize(oracle);
  ASSERT_TRUE(plan_few.Valid());
  ASSERT_TRUE(plan_many.Valid());
  EXPECT_EQ(plan_few.stages.size(), 1u);          // one (2,2) stage: T = 5
  EXPECT_DOUBLE_EQ(plan_few.iteration_latency_s, 5.0);
  EXPECT_EQ(plan_many.stages.size(), 4u);         // 4 x (1,1) stages: T = 8 + 63*2
  EXPECT_DOUBLE_EQ(plan_many.iteration_latency_s, 8.0 + 63.0 * 2.0);
}

TEST(InterOp, EvaluatePlanAppliesEqn4) {
  InterOpOptions options;
  options.num_layers = 4;
  options.num_microbatches = 3;
  const InterOpOptimizer optimizer(sim::Platform2(), options);
  PipelinePlan plan;
  plan.num_microbatches = 3;
  plan.stages.push_back({ir::StageSlice{0, 2}, sim::Mesh{1, 2}, {}, 0.0});
  plan.stages.push_back({ir::StageSlice{2, 4}, sim::Mesh{1, 2}, {}, 0.0});
  const StageLatencyOracle oracle = [](ir::StageSlice slice, sim::Mesh) {
    return StageLatencyResult{slice.first_layer == 0 ? 1.0 : 2.0, {}};
  };
  // T = (1 + 2) + 2 * 2 = 7.
  EXPECT_DOUBLE_EQ(optimizer.EvaluatePlan(plan, oracle), 7.0);
}

TEST(InterOp, MaxStagesBoundRespected) {
  InterOpOptions options;
  options.num_layers = 8;
  options.num_microbatches = 16;
  options.max_stages = 2;
  const InterOpOptimizer optimizer(sim::Platform2(), options);
  const PipelinePlan plan = optimizer.Optimize(MakeSyntheticOracle(1.0));
  ASSERT_TRUE(plan.Valid());
  EXPECT_LE(plan.stages.size(), 2u);
}

/// Verbatim transcription of the seed (pre-rewrite) inter-op DP, including
/// its stages_used side table. For max_stages == 0 it is the correctness
/// baseline the rewritten search must match; for max_stages > 0 it exhibits
/// the bug the rewrite fixes (stale stage counts reject feasible plans).
PipelinePlan SeedReferenceOptimize(const sim::ClusterSpec& cluster,
                                   const InterOpOptions& options,
                                   const StageLatencyOracle& oracle) {
  const std::int32_t layer_count = options.num_layers;
  const std::int32_t device_count = cluster.TotalDevices();
  const auto mesh_count = static_cast<std::int32_t>(options.submeshes.size());
  constexpr double kInf = std::numeric_limits<double>::infinity();

  const auto slice_index = [&](std::int32_t i, std::int32_t j) {
    return (i * (2 * layer_count - i + 1)) / 2 + (j - i - 1);
  };
  const std::int32_t num_slices = layer_count * (layer_count + 1) / 2;
  std::vector<double> lat(static_cast<std::size_t>(num_slices) * mesh_count, kInf);
  std::vector<ParallelConfig> cfg(static_cast<std::size_t>(num_slices) * mesh_count);
  std::vector<double> tmax_candidates;
  for (std::int32_t i = 0; i < layer_count; ++i) {
    for (std::int32_t j = i + 1; j <= layer_count; ++j) {
      for (std::int32_t m = 0; m < mesh_count; ++m) {
        const StageLatencyResult r =
            oracle(ir::StageSlice{i, j}, options.submeshes[static_cast<std::size_t>(m)]);
        const std::size_t idx =
            static_cast<std::size_t>(slice_index(i, j)) * mesh_count + static_cast<std::size_t>(m);
        lat[idx] = r.latency_s;
        cfg[idx] = r.config;
        if (std::isfinite(r.latency_s)) tmax_candidates.push_back(r.latency_s);
      }
    }
  }
  std::sort(tmax_candidates.begin(), tmax_candidates.end());
  tmax_candidates.erase(std::unique(tmax_candidates.begin(), tmax_candidates.end()),
                        tmax_candidates.end());

  PipelinePlan best;
  best.num_microbatches = options.num_microbatches;

  struct Choice {
    std::int32_t prev_layer = -1;
    std::int32_t prev_devices = -1;
    std::int32_t mesh = -1;
  };
  const auto state = [&](std::int32_t k, std::int32_t d) {
    return static_cast<std::size_t>(k) * (device_count + 1) + static_cast<std::size_t>(d);
  };

  for (const double tmax : tmax_candidates) {
    std::vector<double> g(static_cast<std::size_t>(layer_count + 1) * (device_count + 1), kInf);
    std::vector<std::int32_t> stages_used(g.size(), 0);
    std::vector<Choice> choice(g.size());
    g[state(0, 0)] = 0.0;

    for (std::int32_t k = 0; k < layer_count; ++k) {
      for (std::int32_t d = 0; d <= device_count; ++d) {
        const double base = g[state(k, d)];
        if (!std::isfinite(base)) continue;
        if (options.max_stages > 0 && stages_used[state(k, d)] >= options.max_stages) continue;
        for (std::int32_t j = k + 1; j <= layer_count; ++j) {
          for (std::int32_t m = 0; m < mesh_count; ++m) {
            const std::int32_t dev = options.submeshes[static_cast<std::size_t>(m)].NumDevices();
            if (d + dev > device_count) continue;
            const double t = lat[static_cast<std::size_t>(slice_index(k, j)) * mesh_count +
                                 static_cast<std::size_t>(m)];
            if (!std::isfinite(t) || t > tmax) continue;
            const std::size_t next = state(j, d + dev);
            if (base + t < g[next]) {
              g[next] = base + t;
              stages_used[next] = stages_used[state(k, d)] + 1;
              choice[next] = Choice{k, d, m};
            }
          }
        }
      }
    }

    for (std::int32_t d = 1; d <= device_count; ++d) {
      const double total_sum = g[state(layer_count, d)];
      if (!std::isfinite(total_sum)) continue;
      const double iteration =
          total_sum + static_cast<double>(options.num_microbatches - 1) * tmax;
      if (iteration >= best.iteration_latency_s) continue;
      PipelinePlan plan;
      plan.num_microbatches = options.num_microbatches;
      std::int32_t k = layer_count, dd = d;
      std::vector<double> stage_lats;
      while (k > 0) {
        const Choice& c = choice[state(k, dd)];
        const std::size_t idx = static_cast<std::size_t>(slice_index(c.prev_layer, k)) *
                                    mesh_count +
                                static_cast<std::size_t>(c.mesh);
        PipelineStageChoice stage;
        stage.slice = ir::StageSlice{c.prev_layer, k};
        stage.mesh = options.submeshes[static_cast<std::size_t>(c.mesh)];
        stage.config = cfg[idx];
        stage.latency_s = lat[idx];
        stage_lats.push_back(stage.latency_s);
        plan.stages.push_back(stage);
        k = c.prev_layer;
        dd = c.prev_devices;
      }
      std::reverse(plan.stages.begin(), plan.stages.end());
      std::reverse(stage_lats.begin(), stage_lats.end());
      plan.iteration_latency_s = PipelineLatency(stage_lats, options.num_microbatches);
      if (plan.iteration_latency_s < best.iteration_latency_s) best = std::move(plan);
    }
  }
  return best;
}

/// Deterministic, thread-safe, irregular synthetic oracle for equality tests.
StageLatencyOracle IrregularOracle() {
  return [](ir::StageSlice slice, sim::Mesh mesh) {
    const std::uint64_t h = util::SplitMix64(
        static_cast<std::uint64_t>(slice.first_layer * 977 + slice.last_layer * 31 +
                                   mesh.NumDevices() * 7));
    const double latency = 0.02 + static_cast<double>(h % 4096) / 4096.0 *
                                      slice.NumLayers() / mesh.NumDevices();
    return StageLatencyResult{latency, {mesh.NumDevices(), 1, 1}};
  };
}

TEST(InterOp, PrunedSearchMatchesSeedSerialOnBothPlatforms) {
  // The rewritten search (explicit stage dimension, candidate pruning,
  // parallel / batched table fill) must return a plan with the same
  // iteration latency as the serial seed implementation on both paper
  // platforms, through every fill path.
  for (const sim::ClusterSpec& cluster : {sim::Platform1(), sim::Platform2()}) {
    InterOpOptions options;
    options.num_layers = 6;
    options.num_microbatches = 8;
    const InterOpOptimizer optimizer(cluster, options);
    const StageLatencyOracle oracle = IrregularOracle();

    const PipelinePlan seed = SeedReferenceOptimize(cluster, optimizer.Options(), oracle);
    ASSERT_TRUE(seed.Valid()) << cluster.name;

    const PipelinePlan serial = optimizer.Optimize(oracle);
    util::ThreadPool pool(4);
    const PipelinePlan pooled = optimizer.Optimize(oracle, pool);
    const StageLatencyBatchOracle batch = [&](std::span<const StageQuery> queries) {
      std::vector<StageLatencyResult> out(queries.size());
      for (std::size_t q = 0; q < queries.size(); ++q) {
        out[q] = oracle(queries[q].slice, queries[q].mesh);
      }
      return out;
    };
    const PipelinePlan batched = optimizer.Optimize(batch);

    EXPECT_NEAR(serial.iteration_latency_s, seed.iteration_latency_s, 1e-9) << cluster.name;
    EXPECT_NEAR(pooled.iteration_latency_s, seed.iteration_latency_s, 1e-9) << cluster.name;
    EXPECT_NEAR(batched.iteration_latency_s, seed.iteration_latency_s, 1e-9) << cluster.name;
    // The three fill paths are deterministic and identical beyond latency.
    ASSERT_EQ(serial.stages.size(), pooled.stages.size());
    ASSERT_EQ(serial.stages.size(), batched.stages.size());
    for (std::size_t s = 0; s < serial.stages.size(); ++s) {
      EXPECT_EQ(serial.stages[s].mesh, pooled.stages[s].mesh);
      EXPECT_EQ(serial.stages[s].mesh, batched.stages[s].mesh);
      EXPECT_EQ(serial.stages[s].slice.first_layer, batched.stages[s].slice.first_layer);
      EXPECT_EQ(serial.stages[s].slice.last_layer, batched.stages[s].slice.last_layer);
    }
  }
}

TEST(InterOp, MaxStagesAdmitsFeasiblePlanTheSeedDpRejected) {
  // Regression for the stale stages_used pruning: state (layers=2, devices=2)
  // is reached both by two cheap 1-layer stages (sum 2.0) and by one pricier
  // 2-layer stage (sum 2.5). The seed DP keeps only the cheaper path's stage
  // count, so with max_stages = 2 it refuses to extend the state and rejects
  // the only feasible plan [0,2)+[2,3); the stage-dimension DP finds it.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  InterOpOptions options;
  options.num_layers = 3;
  options.num_microbatches = 4;
  options.max_stages = 2;
  options.submeshes = {sim::Mesh{1, 1}, sim::Mesh{1, 2}};
  const StageLatencyOracle oracle = [](ir::StageSlice slice, sim::Mesh mesh) {
    if (slice.NumLayers() == 1) {
      return StageLatencyResult{mesh.NumDevices() == 1 ? 1.0 : 10.0, {}};
    }
    if (slice.NumLayers() == 2 && slice.first_layer == 0) {
      return StageLatencyResult{mesh.NumDevices() == 2 ? 2.5 : kInf, {}};
    }
    return StageLatencyResult{kInf, {}};
  };

  const InterOpOptimizer optimizer(sim::Platform2(), options);
  const PipelinePlan seed =
      SeedReferenceOptimize(sim::Platform2(), optimizer.Options(), oracle);
  EXPECT_FALSE(seed.Valid());  // the seed DP finds no plan at all

  const PipelinePlan plan = optimizer.Optimize(oracle);
  ASSERT_TRUE(plan.Valid());
  ASSERT_EQ(plan.stages.size(), 2u);
  EXPECT_EQ(plan.stages[0].slice.first_layer, 0);
  EXPECT_EQ(plan.stages[0].slice.last_layer, 2);
  EXPECT_EQ(plan.stages[0].mesh, (sim::Mesh{1, 2}));
  EXPECT_EQ(plan.stages[1].slice.first_layer, 2);
  EXPECT_EQ(plan.stages[1].slice.last_layer, 3);
  EXPECT_EQ(plan.stages[1].mesh, (sim::Mesh{1, 1}));
  // T = (2.5 + 1.0) + (4 - 1) * 2.5.
  EXPECT_NEAR(plan.iteration_latency_s, 11.0, 1e-12);
}

TEST(InterOp, NanAndNegativeOracleAnswersBecomeUnusableCells) {
  // A misbehaving oracle (untrained predictor, corrupted weights, injected
  // NaN) must not poison the DP: non-finite and negative latencies sanitize
  // to +inf on every fill path, so the search still returns the best plan
  // over the remaining healthy cells — and identical across all three paths.
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  InterOpOptions options;
  options.num_layers = 4;
  options.num_microbatches = 4;
  options.submeshes = {sim::Mesh{1, 1}, sim::Mesh{1, 2}};
  const StageLatencyOracle oracle = [](ir::StageSlice slice, sim::Mesh mesh) {
    // Poison every multi-layer slice (NaN) and the 2-device single-layer
    // cells (negative); only 1-layer 1-device stages stay healthy.
    if (slice.NumLayers() > 1) return StageLatencyResult{kNan, {}};
    if (mesh.NumDevices() == 2) return StageLatencyResult{-1.0, {}};
    return StageLatencyResult{1.0, {}};
  };
  const InterOpOptimizer optimizer(sim::Platform2(), options);
  const PipelinePlan serial = optimizer.Optimize(oracle);
  util::ThreadPool pool(2);
  const PipelinePlan pooled = optimizer.Optimize(oracle, pool);
  const StageLatencyBatchOracle batch = [&](std::span<const StageQuery> queries) {
    std::vector<StageLatencyResult> results;
    results.reserve(queries.size());
    for (const StageQuery& q : queries) results.push_back(oracle(q.slice, q.mesh));
    return results;
  };
  const PipelinePlan batched = optimizer.Optimize(batch);

  for (const PipelinePlan* plan : {&serial, &pooled, &batched}) {
    ASSERT_TRUE(plan->Valid());
    EXPECT_TRUE(std::isfinite(plan->iteration_latency_s));
    ASSERT_EQ(plan->stages.size(), 4u);  // only the healthy 1-layer cells remain
    for (const PipelineStageChoice& stage : plan->stages) {
      EXPECT_EQ(stage.slice.NumLayers(), 1);
      EXPECT_EQ(stage.mesh.NumDevices(), 1);
      EXPECT_EQ(stage.latency_s, 1.0);
    }
    // T = 4 * 1.0 + (4 - 1) * 1.0.
    EXPECT_NEAR(plan->iteration_latency_s, 7.0, 1e-12);
  }
}

}  // namespace
}  // namespace predtop::parallel

// Tests for the tensor-level IR: types, program construction, FLOP/byte
// accounting, the GPT-3 / MoE stage builders, DAG conversion and stage
// enumeration/sampling.

#include <gtest/gtest.h>

#include <set>

#include "ir/models.h"
#include "ir/program.h"
#include "ir/stages.h"
#include "ir/to_dag.h"
#include "ir/types.h"

namespace predtop::ir {
namespace {

TEST(Types, DTypeBytes) {
  EXPECT_EQ(DTypeBytes(DType::kF32), 4);
  EXPECT_EQ(DTypeBytes(DType::kF16), 2);
  EXPECT_EQ(DTypeBytes(DType::kBF16), 2);
  EXPECT_EQ(DTypeBytes(DType::kI32), 4);
  EXPECT_EQ(DTypeBytes(DType::kBool), 1);
}

TEST(Types, NamesAreUnique) {
  std::set<std::string> names;
  for (std::int32_t i = 0; i < kNumOpTypes; ++i) {
    names.insert(OpTypeName(static_cast<OpType>(i)));
  }
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kNumOpTypes));
}

TEST(Types, PrunableOpsArePaperSection4B4) {
  EXPECT_TRUE(IsPrunableOp(OpType::kReshape));
  EXPECT_TRUE(IsPrunableOp(OpType::kConvert));
  EXPECT_TRUE(IsPrunableOp(OpType::kBroadcast));
  EXPECT_FALSE(IsPrunableOp(OpType::kDot));
  EXPECT_FALSE(IsPrunableOp(OpType::kAdd));
}

TEST(TensorSpec, ElementAndByteCounts) {
  const TensorSpec spec{DType::kF16, {8, 1024, 2048}};
  EXPECT_EQ(spec.NumElements(), 8 * 1024 * 2048);
  EXPECT_EQ(spec.Bytes(), spec.NumElements() * 2);
  EXPECT_EQ(spec.ToString(), "f16[8,1024,2048]");
  const TensorSpec scalar{DType::kF32, {}};
  EXPECT_EQ(scalar.NumElements(), 1);
}

TEST(StageProgram, SsaConstruction) {
  StageProgram p;
  const ValueId x = p.AddInput({DType::kF32, {2, 3}});
  const ValueId w = p.AddLiteral({DType::kF32, {3, 4}});
  const ValueId y = p.AddEquation(OpType::kDot, {x, w}, {DType::kF32, {2, 4}}, 3);
  p.MarkOutput(y);
  EXPECT_EQ(p.NumValues(), 3);
  EXPECT_EQ(p.NumEquations(), 1);
  EXPECT_EQ(p.value(y).kind, ValueKind::kEquationResult);
  EXPECT_EQ(p.value(y).defining_equation, 0);
  EXPECT_EQ(p.outputs().size(), 1u);
  EXPECT_EQ(p.LiteralBytes(), 3 * 4 * 4);
}

TEST(StageProgram, RejectsBadOperands) {
  StageProgram p;
  EXPECT_THROW(p.AddEquation(OpType::kAdd, {5}, {DType::kF32, {1}}), std::out_of_range);
  EXPECT_THROW(p.MarkOutput(9), std::out_of_range);
}

TEST(Flops, DotAccountsMultiplyAdd) {
  StageProgram p;
  const ValueId x = p.AddInput({DType::kF16, {4, 8}});
  const ValueId w = p.AddLiteral({DType::kF16, {8, 16}});
  const ValueId y = p.AddEquation(OpType::kDot, {x, w}, {DType::kF16, {4, 16}}, 8);
  (void)y;
  const Equation& eqn = p.equations()[0];
  EXPECT_EQ(EquationFlops(p, eqn), 2 * 4 * 16 * 8);
  EXPECT_EQ(EquationBytes(p, eqn), (4 * 8 + 8 * 16 + 4 * 16) * 2);
}

TEST(Flops, MovementOpsAreZeroFlops) {
  StageProgram p;
  const ValueId x = p.AddInput({DType::kF16, {4, 8}});
  p.AddEquation(OpType::kReshape, {x}, {DType::kF16, {32}});
  EXPECT_EQ(EquationFlops(p, p.equations()[0]), 0);
  EXPECT_GT(EquationBytes(p, p.equations()[0]), 0);
}

// ---- builders ----

TEST(Gpt3Builder, MiddleStageStructure) {
  Gpt3Config config;
  const StageProgram stage = BuildGpt3Stage(config, {4, 8});
  EXPECT_FALSE(stage.has_embedding);
  EXPECT_FALSE(stage.has_lm_head);
  EXPECT_EQ(stage.first_layer, 4);
  EXPECT_EQ(stage.last_layer, 8);
  EXPECT_GT(stage.NumEquations(), 4 * 25);  // ~35+ tensor ops per layer
  EXPECT_EQ(stage.outputs().size(), 1u);
  // Parameters: 4 layers x ~12 h^2 (attention 4h^2 + FFN 8h^2) in f16.
  const double h = static_cast<double>(config.hidden);
  const double expected = 4 * 12.0 * h * h * 2.0;
  EXPECT_NEAR(static_cast<double>(stage.LiteralBytes()), expected, 0.05 * expected);
}

TEST(Gpt3Builder, BoundaryStagesGetPrologueEpilogue) {
  Gpt3Config config;
  const StageProgram first = BuildGpt3Stage(config, {0, 2});
  EXPECT_TRUE(first.has_embedding);
  EXPECT_FALSE(first.has_lm_head);
  const StageProgram last =
      BuildGpt3Stage(config, {22, static_cast<std::int32_t>(config.num_layers)});
  EXPECT_TRUE(last.has_lm_head);
  // Embedding table dominates the first stage's literal bytes.
  EXPECT_GT(first.LiteralBytes(), config.vocab * config.hidden * 4);
}

TEST(Gpt3Builder, FlopsScaleWithSpan) {
  Gpt3Config config;
  const auto f2 = TotalFlops(BuildGpt3Stage(config, {4, 6}));
  const auto f4 = TotalFlops(BuildGpt3Stage(config, {4, 8}));
  EXPECT_NEAR(static_cast<double>(f4) / static_cast<double>(f2), 2.0, 0.05);
}

TEST(Gpt3Builder, RejectsInvalidSlices) {
  Gpt3Config config;
  EXPECT_THROW(BuildGpt3Stage(config, {3, 3}), std::invalid_argument);
  EXPECT_THROW(BuildGpt3Stage(config, {-1, 3}), std::invalid_argument);
  EXPECT_THROW(BuildGpt3Stage(config, {0, 25}), std::invalid_argument);
}

TEST(MoeBuilder, HasExpertRoutingOps) {
  MoeConfig config;
  const StageProgram stage = BuildMoeStage(config, {0, 4});
  bool has_topk = false, has_onehot = false;
  for (const Equation& eqn : stage.equations()) {
    has_topk = has_topk || eqn.op == OpType::kTopK;
    has_onehot = has_onehot || eqn.op == OpType::kOneHot;
  }
  EXPECT_TRUE(has_topk);
  EXPECT_TRUE(has_onehot);
}

TEST(MoeBuilder, MoeStagesAreLargerThanDenseGpt3PerLayer) {
  // Paper §VIII-A: "MoE stages typically involve larger graphs".
  Gpt3Config gpt;
  MoeConfig moe;
  const auto gpt_eqns = BuildGpt3Stage(gpt, {2, 6}).NumEquations();
  const auto moe_eqns = BuildMoeStage(moe, {2, 6}).NumEquations();
  EXPECT_GT(moe_eqns, gpt_eqns);
}

TEST(MoeBuilder, AlternatesDenseAndMoeLayers) {
  MoeConfig config;
  // A slice with only even layers (dense FFN) has no top_k ops.
  const StageProgram dense_only = BuildMoeStage(config, {2, 3});
  bool has_topk = false;
  for (const Equation& eqn : dense_only.equations()) {
    has_topk = has_topk || eqn.op == OpType::kTopK;
  }
  EXPECT_FALSE(has_topk);
  const StageProgram moe_layer = BuildMoeStage(config, {3, 4});
  has_topk = false;
  for (const Equation& eqn : moe_layer.equations()) {
    has_topk = has_topk || eqn.op == OpType::kTopK;
  }
  EXPECT_TRUE(has_topk);
}

TEST(StageNameFormat, EncodesBoundaries) {
  EXPECT_EQ(StageName("gpt3", {0, 4}, 24), "gpt3[0,4)+embed");
  EXPECT_EQ(StageName("gpt3", {20, 24}, 24), "gpt3[20,24)+head");
  EXPECT_EQ(StageName("moe", {4, 8}, 32), "moe[4,8)");
}

// ---- DAG conversion ----

TEST(ToDag, StructureMirrorsProgram) {
  StageProgram p;
  const ValueId x = p.AddInput({DType::kF32, {2, 3}});
  const ValueId w = p.AddLiteral({DType::kF32, {3, 4}});
  const ValueId y = p.AddEquation(OpType::kDot, {x, w}, {DType::kF32, {2, 4}}, 3);
  p.MarkOutput(y);
  const graph::OpDag dag = BuildOpDag(p);
  // input + literal + 1 equation + 1 output marker.
  EXPECT_EQ(dag.NumNodes(), 4);
  EXPECT_EQ(dag.NumEdges(), 3);
  EXPECT_TRUE(dag.IsAcyclic());
  EXPECT_EQ(dag.Node(0).kind, graph::NodeKind::kInput);
  EXPECT_EQ(dag.Node(1).kind, graph::NodeKind::kLiteral);
  EXPECT_EQ(dag.Node(2).kind, graph::NodeKind::kOperator);
  EXPECT_EQ(dag.Node(2).op_type, static_cast<std::int32_t>(OpType::kDot));
  EXPECT_EQ(dag.Node(3).kind, graph::NodeKind::kOutput);
}

TEST(ToDag, DimsFoldIntoFeatureSlots) {
  StageProgram p;
  const ValueId x = p.AddInput({DType::kF16, {2, 3, 4, 5, 6}});  // rank 5
  (void)x;
  const graph::OpDag dag = BuildOpDag(p);
  const auto& dims = dag.Node(0).out_dims;
  EXPECT_EQ(dims[0] * dims[1] * dims[2] * dims[3], 2 * 3 * 4 * 5 * 6);
  EXPECT_EQ(dims[1], 4);
  EXPECT_EQ(dims[3], 6);
}

TEST(ToDag, PruningShrinksGpt3Graphs) {
  Gpt3Config config;
  const StageProgram stage = BuildGpt3Stage(config, {0, 2});
  const graph::OpDag raw = BuildOpDag(stage);
  const graph::OpDag pruned = BuildPrunedOpDag(stage);
  EXPECT_LT(pruned.NumNodes(), raw.NumNodes());
  EXPECT_TRUE(pruned.IsAcyclic());
  // No prunable ops survive.
  for (std::int32_t i = 0; i < pruned.NumNodes(); ++i) {
    const auto& node = pruned.Node(i);
    if (node.kind == graph::NodeKind::kOperator) {
      EXPECT_FALSE(IsPrunableOp(static_cast<OpType>(node.op_type)));
    }
  }
}

// ---- stage enumeration / sampling ----

TEST(Stages, EnumerationCounts) {
  EXPECT_EQ(EnumerateStageSlices(24).size(), 24u * 25u / 2u);
  EXPECT_EQ(EnumerateStageSlices(32).size(), 32u * 33u / 2u);
  // Span bound: n spans of 1, n-1 of 2, ... n-k+1 of k.
  EXPECT_EQ(EnumerateStageSlices(10, 3).size(), 10u + 9u + 8u);
}

TEST(Stages, SlicesAreValidAndUnique) {
  const auto all = EnumerateStageSlices(12);
  std::set<std::pair<int, int>> seen;
  for (const StageSlice s : all) {
    EXPECT_LT(s.first_layer, s.last_layer);
    EXPECT_LE(s.last_layer, 12);
    EXPECT_TRUE(seen.insert({s.first_layer, s.last_layer}).second);
  }
}

TEST(Stages, SamplingIsStratifiedBySpan) {
  util::Rng rng(1);
  const auto all = EnumerateStageSlices(16);
  const auto sample = SampleStageSlices(all, 32, rng);
  EXPECT_EQ(sample.size(), 32u);
  std::set<std::int32_t> spans;
  for (const StageSlice s : sample) spans.insert(s.NumLayers());
  // Round-robin over spans: at least 8 distinct sizes among 32 draws.
  EXPECT_GE(spans.size(), 8u);
}

TEST(Stages, SamplingMoreThanAvailableReturnsAll) {
  util::Rng rng(2);
  const auto all = EnumerateStageSlices(4);
  EXPECT_EQ(SampleStageSlices(all, 100, rng).size(), all.size());
}

}  // namespace
}  // namespace predtop::ir

// Tests for the PredTOP core: predictor zoo, dataset construction, the
// latency regressor, the grey-box estimator and the plan-search scaffolding.

#include <gtest/gtest.h>

#include <cmath>

#include "core/dataset.h"
#include "core/greybox.h"
#include "core/plan_search.h"
#include "core/predictors.h"
#include "core/regressor.h"

namespace predtop::core {
namespace {

/// Small GPT-3-shaped model so core tests stay fast.
ir::Gpt3Config TinyGptConfig() {
  ir::Gpt3Config config;
  config.seq_len = 64;
  config.hidden = 64;
  config.num_layers = 4;
  config.num_heads = 4;
  config.vocab = 512;
  config.microbatch = 2;
  return config;
}

PredictorOptions TinyOptions() {
  PredictorOptions options;
  options.feature_dim = StageFeatureDim();
  options.dagt_dim = 16;
  options.dagt_layers = 2;
  options.dagt_heads = 2;
  options.gcn_dim = 32;
  options.gcn_layers = 3;
  options.gat_dim = 16;
  options.gat_layers = 3;
  return options;
}

graph::EncodedGraph TinyEncodedStage() {
  return EncodeStage(ir::BuildGpt3Stage(TinyGptConfig(), {1, 2}));
}

TEST(Predictors, KindNamesMatchPaperColumns) {
  EXPECT_STREQ(PredictorKindName(PredictorKind::kDagTransformer), "Tran");
  EXPECT_STREQ(PredictorKindName(PredictorKind::kGcn), "GCN");
  EXPECT_STREQ(PredictorKindName(PredictorKind::kGat), "GAT");
}

TEST(Predictors, AllKindsProduceScalarOutput) {
  const graph::EncodedGraph g = TinyEncodedStage();
  for (const PredictorKind kind :
       {PredictorKind::kDagTransformer, PredictorKind::kGcn, PredictorKind::kGat}) {
    auto model = MakePredictor(kind, TinyOptions());
    const autograd::Variable out = model->Forward(g);
    EXPECT_EQ(out.value().numel(), 1) << model->Name();
    EXPECT_TRUE(std::isfinite(out.value().data()[0])) << model->Name();
    EXPECT_GT(model->ParameterCount(), 100u) << model->Name();
  }
}

TEST(Predictors, RequiresFeatureDim) {
  PredictorOptions options;  // feature_dim unset
  EXPECT_THROW(MakePredictor(PredictorKind::kGcn, options), std::invalid_argument);
}

TEST(Predictors, DagraAblationChangesOutput) {
  const graph::EncodedGraph g = TinyEncodedStage();
  PredictorOptions masked = TinyOptions();
  PredictorOptions unmasked = TinyOptions();
  unmasked.use_dagra = false;
  auto with = MakePredictor(PredictorKind::kDagTransformer, masked);
  auto without = MakePredictor(PredictorKind::kDagTransformer, unmasked);
  // Same seed -> same weights; only the mask differs.
  const float a = with->Forward(g).value().data()[0];
  const float b = without->Forward(g).value().data()[0];
  EXPECT_NE(a, b);
}

TEST(Predictors, DagpeAblationChangesOutput) {
  const graph::EncodedGraph g = TinyEncodedStage();
  PredictorOptions base = TinyOptions();
  PredictorOptions no_pe = TinyOptions();
  no_pe.use_dagpe = false;
  const float a = MakePredictor(PredictorKind::kDagTransformer, base)->Forward(g)
                      .value().data()[0];
  const float b = MakePredictor(PredictorKind::kDagTransformer, no_pe)->Forward(g)
                      .value().data()[0];
  EXPECT_NE(a, b);
}

TEST(Predictors, DeterministicPerSeed) {
  const graph::EncodedGraph g = TinyEncodedStage();
  const float a =
      MakePredictor(PredictorKind::kGat, TinyOptions())->Forward(g).value().data()[0];
  const float b =
      MakePredictor(PredictorKind::kGat, TinyOptions())->Forward(g).value().data()[0];
  EXPECT_EQ(a, b);
}

// ---- dataset ----

TEST(Dataset, BuildsLabeledSamples) {
  const BenchmarkModel benchmark = Gpt3Benchmark(TinyGptConfig());
  const parallel::IntraOpCompiler compiler(sim::Platform1(), sim::Mesh{1, 2});
  sim::Profiler profiler({}, 11);
  DatasetBuildConfig build;
  build.num_samples = 6;
  const StageDataset dataset =
      BuildStageDataset(benchmark, compiler, {2, 1, 1}, profiler, build);
  ASSERT_EQ(dataset.Size(), 6u);
  EXPECT_EQ(dataset.labels.size(), 6u);
  EXPECT_EQ(profiler.StagesProfiled(), 6);
  EXPECT_GT(profiler.TotalCostSeconds(), 0.0);
  for (const StageSample& s : dataset.samples) {
    EXPECT_GT(s.true_latency_s, 0.0);
    // Measurement noise is small (~1.5%).
    EXPECT_NEAR(s.measured_latency_s / s.true_latency_s, 1.0, 0.2);
    EXPECT_GT(s.encoded.num_nodes, 0);
    EXPECT_EQ(s.encoded.features.dim(1), StageFeatureDim());
  }
}

TEST(Dataset, BestConfigLabelsAreMinOverConfigs) {
  const BenchmarkModel benchmark = Gpt3Benchmark(TinyGptConfig());
  const parallel::IntraOpCompiler compiler(sim::Platform1(), sim::Mesh{1, 2});
  const auto configs = parallel::PaperConfigs(sim::Mesh{1, 2});
  sim::Profiler profiler({}, 12);
  DatasetBuildConfig build;
  build.num_samples = 4;
  const StageDataset dataset =
      BuildStageDatasetBestConfig(benchmark, compiler, configs, profiler, build);
  for (const StageSample& s : dataset.samples) {
    const auto program = benchmark.build_stage(s.slice);
    double manual_best = std::numeric_limits<double>::infinity();
    for (const auto& c : configs) {
      manual_best = std::min(manual_best, compiler.Compile(program, c).latency_s);
    }
    EXPECT_NEAR(s.true_latency_s, manual_best, 1e-12);
  }
}

TEST(Dataset, MaxSpanBoundsStageSizes) {
  const BenchmarkModel benchmark = Gpt3Benchmark(TinyGptConfig());
  const parallel::IntraOpCompiler compiler(sim::Platform1(), sim::Mesh{1, 1});
  sim::Profiler profiler({}, 13);
  DatasetBuildConfig build;
  build.max_span = 2;
  const StageDataset dataset =
      BuildStageDataset(benchmark, compiler, {1, 1, 1}, profiler, build);
  for (const StageSample& s : dataset.samples) {
    EXPECT_LE(s.slice.NumLayers(), 2);
  }
}

// ---- regressor ----

TEST(Regressor, FitsTinyDatasetToLowTrainError) {
  const BenchmarkModel benchmark = Gpt3Benchmark(TinyGptConfig());
  const parallel::IntraOpCompiler compiler(sim::Platform1(), sim::Mesh{1, 2});
  sim::Profiler profiler({}, 14);
  DatasetBuildConfig build;  // all 10 stages of the 4-layer model
  const StageDataset dataset =
      BuildStageDataset(benchmark, compiler, {2, 1, 1}, profiler, build);
  ASSERT_EQ(dataset.Size(), 10u);

  LatencyRegressor regressor(PredictorKind::kDagTransformer, TinyOptions());
  nn::TrainConfig train;
  train.max_epochs = 300;
  train.patience = 300;
  train.batch_size = 4;
  std::vector<std::size_t> train_idx{0, 1, 2, 3, 4, 5, 6, 7};
  // Validate on the training set itself so best-weights restore tracks the
  // fit (held-out generalization is covered by the integration tests).
  const nn::TrainResult result = regressor.Fit(dataset, train_idx, train_idx, train);
  EXPECT_GT(result.epochs_run, 0);
  const double train_mre = regressor.MrePercent(dataset, train_idx);
  EXPECT_LT(train_mre, 25.0);
  for (const StageSample& sample : dataset.samples) {
    EXPECT_GT(regressor.PredictSeconds(sample.encoded), 0.0);
  }
}

TEST(Regressor, RejectsEmptyTrainingSet) {
  LatencyRegressor regressor(PredictorKind::kGcn, TinyOptions());
  const StageDataset dataset;
  EXPECT_THROW(regressor.Fit(dataset, {}, {}, {}), std::invalid_argument);
}

// ---- grey box ----

TEST(GreyBox, ComposesPredictionsWithEqn4) {
  const BenchmarkModel benchmark = Gpt3Benchmark(TinyGptConfig());
  auto regressor =
      std::make_shared<LatencyRegressor>(PredictorKind::kDagTransformer, TinyOptions());
  // Untrained is fine: we only check the white-box composition.
  GreyBoxEstimator estimator(benchmark, {{sim::Mesh{1, 2}, regressor}});

  parallel::PipelinePlan plan;
  plan.num_microbatches = 3;
  plan.stages.push_back({ir::StageSlice{0, 2}, sim::Mesh{1, 2}, {}, 0.0});
  plan.stages.push_back({ir::StageSlice{2, 4}, sim::Mesh{1, 2}, {}, 0.0});

  const double s1 = estimator.EstimateStageLatency({0, 2}, sim::Mesh{1, 2});
  const double s2 = estimator.EstimateStageLatency({2, 4}, sim::Mesh{1, 2});
  const double expected = s1 + s2 + 2.0 * std::max(s1, s2);
  EXPECT_NEAR(estimator.EstimateIterationLatency(plan), expected, 1e-9);
}

TEST(GreyBox, UnknownMeshThrows) {
  const BenchmarkModel benchmark = Gpt3Benchmark(TinyGptConfig());
  auto regressor = std::make_shared<LatencyRegressor>(PredictorKind::kGcn, TinyOptions());
  GreyBoxEstimator estimator(benchmark, {{sim::Mesh{1, 1}, regressor}});
  EXPECT_THROW((void)estimator.EstimateStageLatency({0, 1}, sim::Mesh{2, 2}),
               std::invalid_argument);
}

TEST(GreyBox, RequiresAtLeastOneRegressor) {
  EXPECT_THROW(GreyBoxEstimator(Gpt3Benchmark(TinyGptConfig()), {}), std::invalid_argument);
}

// ---- plan search ----

TEST(PlanSearch, ApproachNamesAreDistinct) {
  std::set<std::string> names;
  for (const PlanApproach a :
       {PlanApproach::kFullProfiling, PlanApproach::kPartialProfiling,
        PlanApproach::kPredTopDagTransformer, PlanApproach::kPredTopGcn,
        PlanApproach::kPredTopGat}) {
    names.insert(PlanApproachName(a));
  }
  EXPECT_EQ(names.size(), 5u);
}

TEST(PlanSearch, TrueStageLatencyIsMemoizedAndConfigOptimal) {
  PlanSearchConfig config;
  PlanSearch search(Gpt3Benchmark(TinyGptConfig()), sim::Platform1(), config);
  const auto r1 = search.TrueStageLatency({0, 2}, sim::Mesh{1, 2});
  const auto r2 = search.TrueStageLatency({0, 2}, sim::Mesh{1, 2});
  EXPECT_DOUBLE_EQ(r1.latency_s, r2.latency_s);
  EXPECT_GT(r1.latency_s, 0.0);
  // Must equal the best over the paper configs computed manually.
  const parallel::IntraOpCompiler compiler(sim::Platform1(), sim::Mesh{1, 2});
  const auto program = ir::BuildGpt3Stage(TinyGptConfig(), {0, 2});
  const auto best =
      compiler.CompileBest(program, parallel::PaperConfigs(sim::Mesh{1, 2}));
  EXPECT_DOUBLE_EQ(r1.latency_s, best.latency_s);
}

TEST(PlanSearch, FullProfilingProducesValidPlan) {
  PlanSearchConfig config;
  config.num_microbatches = 4;
  PlanSearch search(Gpt3Benchmark(TinyGptConfig()), sim::Platform1(), config);
  const PlanSearchResult result = search.Run(PlanApproach::kFullProfiling);
  ASSERT_TRUE(result.plan.Valid());
  EXPECT_GT(result.plan_true_latency_s, 0.0);
  EXPECT_GT(result.profiling_cost_s, 0.0);
  EXPECT_EQ(result.optimization_cost_s, result.profiling_cost_s);
  EXPECT_GT(result.stages_profiled, 0);
  // Contiguous cover of all 4 layers.
  std::int32_t cursor = 0;
  for (const auto& stage : result.plan.stages) {
    EXPECT_EQ(stage.slice.first_layer, cursor);
    cursor = stage.slice.last_layer;
  }
  EXPECT_EQ(cursor, 4);
}

TEST(PlanSearch, PartialProfilingIsCheaperThanFull) {
  PlanSearchConfig config;
  config.num_microbatches = 4;
  PlanSearch search(Gpt3Benchmark(TinyGptConfig()), sim::Platform1(), config);
  const PlanSearchResult full = search.Run(PlanApproach::kFullProfiling);
  const PlanSearchResult partial = search.Run(PlanApproach::kPartialProfiling);
  ASSERT_TRUE(partial.plan.Valid());
  EXPECT_LT(partial.stages_profiled, full.stages_profiled);
  EXPECT_LT(partial.optimization_cost_s, full.optimization_cost_s);
  // Heuristic pruning can only degrade (or match) the plan.
  EXPECT_GE(partial.plan_true_latency_s, full.plan_true_latency_s - 1e-9);
}

}  // namespace
}  // namespace predtop::core

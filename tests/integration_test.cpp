// End-to-end integration tests: the full PredTOP workflow (profile a sample
// of stages -> train the DAG Transformer -> predict all stages -> generate a
// pipeline plan) on a scaled-down GPT-3, asserting the paper's qualitative
// claims — usable MRE on held-out stages, and predictor-driven plan search
// that is cheaper than profiling-driven search at small latency degradation.

#include <gtest/gtest.h>

#include <cmath>

#include "core/plan_search.h"
#include "nn/trainer.h"

// Sanitizer instrumentation inflates the *measured* train/infer wall time
// ~20x while the *simulated* profiling budget stays fixed, so wall-clock
// cost comparisons only hold uninstrumented.
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define PREDTOP_SANITIZED 1
#endif
#elif defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define PREDTOP_SANITIZED 1
#endif

namespace predtop::core {
namespace {

ir::Gpt3Config SmallGptConfig() {
  ir::Gpt3Config config;
  config.seq_len = 64;
  config.hidden = 64;
  config.num_layers = 10;
  config.num_heads = 4;
  config.vocab = 512;
  config.microbatch = 2;
  return config;
}

/// Stage spans are capped at 5 layers so the 10-layer model yields 40
/// moderately sized stage graphs — enough training data for a meaningful
/// holdout check at test-suite runtimes.
constexpr std::int32_t kMaxSpan = 5;

PredictorOptions SmallOptions() {
  PredictorOptions options;
  options.feature_dim = StageFeatureDim();
  options.dagt_dim = 16;
  options.dagt_layers = 2;
  options.dagt_heads = 2;
  options.gcn_dim = 32;
  options.gcn_layers = 3;
  options.gat_dim = 16;
  options.gat_layers = 3;
  return options;
}

nn::TrainConfig FastTrain() {
  nn::TrainConfig train;
  train.max_epochs = 200;
  train.patience = 60;
  train.batch_size = 8;
  train.base_lr = 2e-3f;
  return train;
}

TEST(Integration, DagTransformerReachesUsableHoldoutMre) {
  // Profile-train-predict on one (mesh, config) scenario; held-out MRE
  // should be in the usable range (the paper reports a few percent on the
  // real grid; this is a heavily scaled-down run).
  const BenchmarkModel benchmark = Gpt3Benchmark(SmallGptConfig());
  const parallel::IntraOpCompiler compiler(sim::Platform1(), sim::Mesh{1, 2});
  sim::Profiler profiler({}, 21);
  DatasetBuildConfig build;
  build.max_span = kMaxSpan;  // all 40 stages up to 5 layers
  const StageDataset dataset =
      BuildStageDataset(benchmark, compiler, {1, 2, 1}, profiler, build);
  ASSERT_EQ(dataset.Size(), 40u);

  util::Rng rng(7);
  const nn::DataSplit split = nn::SplitDataset(dataset.Size(), 0.7, 0.1, rng);
  LatencyRegressor regressor(PredictorKind::kDagTransformer, SmallOptions());
  regressor.Fit(dataset, split.train, split.validation, FastTrain());
  const double test_mre = regressor.MrePercent(dataset, split.test);
  EXPECT_LT(test_mre, 35.0) << "held-out MRE too high for a usable predictor";
}

TEST(Integration, PredictionsTrackStageSizeOrdering) {
  // A trained predictor must rank a 1-layer stage below a 5-layer stage.
  const BenchmarkModel benchmark = Gpt3Benchmark(SmallGptConfig());
  const parallel::IntraOpCompiler compiler(sim::Platform1(), sim::Mesh{1, 1});
  sim::Profiler profiler({}, 22);
  DatasetBuildConfig build;
  build.max_span = kMaxSpan;
  const StageDataset dataset =
      BuildStageDataset(benchmark, compiler, {1, 1, 1}, profiler, build);
  std::vector<std::size_t> all_idx(dataset.Size());
  for (std::size_t i = 0; i < all_idx.size(); ++i) all_idx[i] = i;
  LatencyRegressor regressor(PredictorKind::kDagTransformer, SmallOptions());
  regressor.Fit(dataset, all_idx, {}, FastTrain());

  const double small =
      regressor.PredictSeconds(EncodeStage(benchmark.build_stage({2, 3})));
  const double large =
      regressor.PredictSeconds(EncodeStage(benchmark.build_stage({1, 6})));
  EXPECT_LT(small, large);
  (void)kMaxSpan;
}

TEST(Integration, PredTopPlanSearchBeatsProfilingOnCost) {
  // The headline trade-off (paper Fig. 10): PredTOP's optimization cost is
  // well below full profiling, with bounded plan-quality degradation.
  PlanSearchConfig config;
  config.num_microbatches = 4;
  config.sample_fraction = 0.5;
  config.max_span = kMaxSpan;
  config.predictor = SmallOptions();
  config.train = FastTrain();
  PlanSearch search(Gpt3Benchmark(SmallGptConfig()), sim::Platform1(), config);

  const PlanSearchResult full = search.Run(PlanApproach::kFullProfiling);
  const PlanSearchResult pred = search.Run(PlanApproach::kPredTopDagTransformer);
  ASSERT_TRUE(full.plan.Valid());
  ASSERT_TRUE(pred.plan.Valid());

  EXPECT_LT(pred.profiling_cost_s, full.profiling_cost_s);
#if !defined(PREDTOP_SANITIZED)
  EXPECT_LT(pred.optimization_cost_s, full.optimization_cost_s);
#endif
  EXPECT_GT(pred.training_wall_s, 0.0);
  EXPECT_GT(pred.inference_wall_s, 0.0);

  // Plan degradation bounded (paper: <= 2.1% on the real grid; allow slack
  // for this heavily scaled-down setup).
  EXPECT_LT(pred.plan_true_latency_s, 2.0 * full.plan_true_latency_s);
}

TEST(Integration, WorkflowIsDeterministicPerSeed) {
  PlanSearchConfig config;
  config.num_microbatches = 4;
  config.sample_fraction = 0.5;
  config.max_span = kMaxSpan;
  config.predictor = SmallOptions();
  config.train = FastTrain();
  PlanSearch s1(Gpt3Benchmark(SmallGptConfig()), sim::Platform1(), config);
  PlanSearch s2(Gpt3Benchmark(SmallGptConfig()), sim::Platform1(), config);
  const PlanSearchResult r1 = s1.Run(PlanApproach::kFullProfiling);
  const PlanSearchResult r2 = s2.Run(PlanApproach::kFullProfiling);
  EXPECT_DOUBLE_EQ(r1.plan_true_latency_s, r2.plan_true_latency_s);
  EXPECT_DOUBLE_EQ(r1.optimization_cost_s, r2.optimization_cost_s);
  EXPECT_EQ(r1.plan.stages.size(), r2.plan.stages.size());
}

}  // namespace
}  // namespace predtop::core

file(REMOVE_RECURSE
  "CMakeFiles/table05_platform1.dir/table05_platform1.cpp.o"
  "CMakeFiles/table05_platform1.dir/table05_platform1.cpp.o.d"
  "table05_platform1"
  "table05_platform1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table05_platform1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

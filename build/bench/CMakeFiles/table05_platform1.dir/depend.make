# Empty dependencies file for table05_platform1.
# This may be replaced when dependencies are built.

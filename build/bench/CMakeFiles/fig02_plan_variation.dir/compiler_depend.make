# Empty compiler generated dependencies file for fig02_plan_variation.
# This may be replaced when dependencies are built.

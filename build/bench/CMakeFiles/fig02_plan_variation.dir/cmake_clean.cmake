file(REMOVE_RECURSE
  "CMakeFiles/fig02_plan_variation.dir/fig02_plan_variation.cpp.o"
  "CMakeFiles/fig02_plan_variation.dir/fig02_plan_variation.cpp.o.d"
  "fig02_plan_variation"
  "fig02_plan_variation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_plan_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

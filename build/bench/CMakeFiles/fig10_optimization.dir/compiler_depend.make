# Empty compiler generated dependencies file for fig10_optimization.
# This may be replaced when dependencies are built.

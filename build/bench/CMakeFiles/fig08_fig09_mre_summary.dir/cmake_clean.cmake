file(REMOVE_RECURSE
  "CMakeFiles/fig08_fig09_mre_summary.dir/fig08_fig09_mre_summary.cpp.o"
  "CMakeFiles/fig08_fig09_mre_summary.dir/fig08_fig09_mre_summary.cpp.o.d"
  "fig08_fig09_mre_summary"
  "fig08_fig09_mre_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_fig09_mre_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig08_fig09_mre_summary.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table06_platform2.cpp" "bench/CMakeFiles/table06_platform2.dir/table06_platform2.cpp.o" "gcc" "bench/CMakeFiles/table06_platform2.dir/table06_platform2.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/predtop_core.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/predtop_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/predtop_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/predtop_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/predtop_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/predtop_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/predtop_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/predtop_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/predtop_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/table06_platform2.dir/table06_platform2.cpp.o"
  "CMakeFiles/table06_platform2.dir/table06_platform2.cpp.o.d"
  "table06_platform2"
  "table06_platform2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table06_platform2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

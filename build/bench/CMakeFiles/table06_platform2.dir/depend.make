# Empty dependencies file for table06_platform2.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_dagt.dir/ablation_dagt.cpp.o"
  "CMakeFiles/ablation_dagt.dir/ablation_dagt.cpp.o.d"
  "ablation_dagt"
  "ablation_dagt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dagt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablation_dagt.
# This may be replaced when dependencies are built.

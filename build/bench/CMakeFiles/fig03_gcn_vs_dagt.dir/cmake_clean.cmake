file(REMOVE_RECURSE
  "CMakeFiles/fig03_gcn_vs_dagt.dir/fig03_gcn_vs_dagt.cpp.o"
  "CMakeFiles/fig03_gcn_vs_dagt.dir/fig03_gcn_vs_dagt.cpp.o.d"
  "fig03_gcn_vs_dagt"
  "fig03_gcn_vs_dagt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_gcn_vs_dagt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig03_gcn_vs_dagt.
# This may be replaced when dependencies are built.

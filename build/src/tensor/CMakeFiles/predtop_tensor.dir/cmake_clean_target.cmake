file(REMOVE_RECURSE
  "libpredtop_tensor.a"
)

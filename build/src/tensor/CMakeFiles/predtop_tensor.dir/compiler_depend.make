# Empty compiler generated dependencies file for predtop_tensor.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/predtop_tensor.dir/ops.cpp.o"
  "CMakeFiles/predtop_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/predtop_tensor.dir/sparse.cpp.o"
  "CMakeFiles/predtop_tensor.dir/sparse.cpp.o.d"
  "CMakeFiles/predtop_tensor.dir/tensor.cpp.o"
  "CMakeFiles/predtop_tensor.dir/tensor.cpp.o.d"
  "libpredtop_tensor.a"
  "libpredtop_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predtop_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

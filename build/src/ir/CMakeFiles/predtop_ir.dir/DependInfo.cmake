
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/builder_common.cpp" "src/ir/CMakeFiles/predtop_ir.dir/builder_common.cpp.o" "gcc" "src/ir/CMakeFiles/predtop_ir.dir/builder_common.cpp.o.d"
  "/root/repo/src/ir/liveness.cpp" "src/ir/CMakeFiles/predtop_ir.dir/liveness.cpp.o" "gcc" "src/ir/CMakeFiles/predtop_ir.dir/liveness.cpp.o.d"
  "/root/repo/src/ir/models.cpp" "src/ir/CMakeFiles/predtop_ir.dir/models.cpp.o" "gcc" "src/ir/CMakeFiles/predtop_ir.dir/models.cpp.o.d"
  "/root/repo/src/ir/printer.cpp" "src/ir/CMakeFiles/predtop_ir.dir/printer.cpp.o" "gcc" "src/ir/CMakeFiles/predtop_ir.dir/printer.cpp.o.d"
  "/root/repo/src/ir/program.cpp" "src/ir/CMakeFiles/predtop_ir.dir/program.cpp.o" "gcc" "src/ir/CMakeFiles/predtop_ir.dir/program.cpp.o.d"
  "/root/repo/src/ir/resnet.cpp" "src/ir/CMakeFiles/predtop_ir.dir/resnet.cpp.o" "gcc" "src/ir/CMakeFiles/predtop_ir.dir/resnet.cpp.o.d"
  "/root/repo/src/ir/stages.cpp" "src/ir/CMakeFiles/predtop_ir.dir/stages.cpp.o" "gcc" "src/ir/CMakeFiles/predtop_ir.dir/stages.cpp.o.d"
  "/root/repo/src/ir/to_dag.cpp" "src/ir/CMakeFiles/predtop_ir.dir/to_dag.cpp.o" "gcc" "src/ir/CMakeFiles/predtop_ir.dir/to_dag.cpp.o.d"
  "/root/repo/src/ir/types.cpp" "src/ir/CMakeFiles/predtop_ir.dir/types.cpp.o" "gcc" "src/ir/CMakeFiles/predtop_ir.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/predtop_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/predtop_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/predtop_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for predtop_ir.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/predtop_ir.dir/builder_common.cpp.o"
  "CMakeFiles/predtop_ir.dir/builder_common.cpp.o.d"
  "CMakeFiles/predtop_ir.dir/liveness.cpp.o"
  "CMakeFiles/predtop_ir.dir/liveness.cpp.o.d"
  "CMakeFiles/predtop_ir.dir/models.cpp.o"
  "CMakeFiles/predtop_ir.dir/models.cpp.o.d"
  "CMakeFiles/predtop_ir.dir/printer.cpp.o"
  "CMakeFiles/predtop_ir.dir/printer.cpp.o.d"
  "CMakeFiles/predtop_ir.dir/program.cpp.o"
  "CMakeFiles/predtop_ir.dir/program.cpp.o.d"
  "CMakeFiles/predtop_ir.dir/resnet.cpp.o"
  "CMakeFiles/predtop_ir.dir/resnet.cpp.o.d"
  "CMakeFiles/predtop_ir.dir/stages.cpp.o"
  "CMakeFiles/predtop_ir.dir/stages.cpp.o.d"
  "CMakeFiles/predtop_ir.dir/to_dag.cpp.o"
  "CMakeFiles/predtop_ir.dir/to_dag.cpp.o.d"
  "CMakeFiles/predtop_ir.dir/types.cpp.o"
  "CMakeFiles/predtop_ir.dir/types.cpp.o.d"
  "libpredtop_ir.a"
  "libpredtop_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predtop_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

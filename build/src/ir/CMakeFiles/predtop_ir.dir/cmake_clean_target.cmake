file(REMOVE_RECURSE
  "libpredtop_ir.a"
)

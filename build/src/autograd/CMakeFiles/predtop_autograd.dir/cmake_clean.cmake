file(REMOVE_RECURSE
  "CMakeFiles/predtop_autograd.dir/functions.cpp.o"
  "CMakeFiles/predtop_autograd.dir/functions.cpp.o.d"
  "CMakeFiles/predtop_autograd.dir/variable.cpp.o"
  "CMakeFiles/predtop_autograd.dir/variable.cpp.o.d"
  "libpredtop_autograd.a"
  "libpredtop_autograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predtop_autograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libpredtop_autograd.a"
)

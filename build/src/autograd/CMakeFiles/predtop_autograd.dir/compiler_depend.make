# Empty compiler generated dependencies file for predtop_autograd.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/predtop_parallel.dir/config.cpp.o"
  "CMakeFiles/predtop_parallel.dir/config.cpp.o.d"
  "CMakeFiles/predtop_parallel.dir/inter_op.cpp.o"
  "CMakeFiles/predtop_parallel.dir/inter_op.cpp.o.d"
  "CMakeFiles/predtop_parallel.dir/intra_op.cpp.o"
  "CMakeFiles/predtop_parallel.dir/intra_op.cpp.o.d"
  "CMakeFiles/predtop_parallel.dir/pipeline_executor.cpp.o"
  "CMakeFiles/predtop_parallel.dir/pipeline_executor.cpp.o.d"
  "CMakeFiles/predtop_parallel.dir/pipeline_model.cpp.o"
  "CMakeFiles/predtop_parallel.dir/pipeline_model.cpp.o.d"
  "libpredtop_parallel.a"
  "libpredtop_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predtop_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libpredtop_parallel.a"
)

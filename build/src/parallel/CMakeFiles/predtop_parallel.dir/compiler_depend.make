# Empty compiler generated dependencies file for predtop_parallel.
# This may be replaced when dependencies are built.

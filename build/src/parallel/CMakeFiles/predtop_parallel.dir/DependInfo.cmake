
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/parallel/config.cpp" "src/parallel/CMakeFiles/predtop_parallel.dir/config.cpp.o" "gcc" "src/parallel/CMakeFiles/predtop_parallel.dir/config.cpp.o.d"
  "/root/repo/src/parallel/inter_op.cpp" "src/parallel/CMakeFiles/predtop_parallel.dir/inter_op.cpp.o" "gcc" "src/parallel/CMakeFiles/predtop_parallel.dir/inter_op.cpp.o.d"
  "/root/repo/src/parallel/intra_op.cpp" "src/parallel/CMakeFiles/predtop_parallel.dir/intra_op.cpp.o" "gcc" "src/parallel/CMakeFiles/predtop_parallel.dir/intra_op.cpp.o.d"
  "/root/repo/src/parallel/pipeline_executor.cpp" "src/parallel/CMakeFiles/predtop_parallel.dir/pipeline_executor.cpp.o" "gcc" "src/parallel/CMakeFiles/predtop_parallel.dir/pipeline_executor.cpp.o.d"
  "/root/repo/src/parallel/pipeline_model.cpp" "src/parallel/CMakeFiles/predtop_parallel.dir/pipeline_model.cpp.o" "gcc" "src/parallel/CMakeFiles/predtop_parallel.dir/pipeline_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/predtop_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/predtop_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/predtop_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/predtop_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/predtop_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libpredtop_sim.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/predtop_sim.dir/cluster.cpp.o"
  "CMakeFiles/predtop_sim.dir/cluster.cpp.o.d"
  "CMakeFiles/predtop_sim.dir/collective.cpp.o"
  "CMakeFiles/predtop_sim.dir/collective.cpp.o.d"
  "CMakeFiles/predtop_sim.dir/cost_model.cpp.o"
  "CMakeFiles/predtop_sim.dir/cost_model.cpp.o.d"
  "CMakeFiles/predtop_sim.dir/profiler.cpp.o"
  "CMakeFiles/predtop_sim.dir/profiler.cpp.o.d"
  "libpredtop_sim.a"
  "libpredtop_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predtop_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

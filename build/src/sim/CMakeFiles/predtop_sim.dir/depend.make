# Empty dependencies file for predtop_sim.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cluster.cpp" "src/sim/CMakeFiles/predtop_sim.dir/cluster.cpp.o" "gcc" "src/sim/CMakeFiles/predtop_sim.dir/cluster.cpp.o.d"
  "/root/repo/src/sim/collective.cpp" "src/sim/CMakeFiles/predtop_sim.dir/collective.cpp.o" "gcc" "src/sim/CMakeFiles/predtop_sim.dir/collective.cpp.o.d"
  "/root/repo/src/sim/cost_model.cpp" "src/sim/CMakeFiles/predtop_sim.dir/cost_model.cpp.o" "gcc" "src/sim/CMakeFiles/predtop_sim.dir/cost_model.cpp.o.d"
  "/root/repo/src/sim/profiler.cpp" "src/sim/CMakeFiles/predtop_sim.dir/profiler.cpp.o" "gcc" "src/sim/CMakeFiles/predtop_sim.dir/profiler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/predtop_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/predtop_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/predtop_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/predtop_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

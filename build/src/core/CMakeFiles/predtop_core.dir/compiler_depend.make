# Empty compiler generated dependencies file for predtop_core.
# This may be replaced when dependencies are built.

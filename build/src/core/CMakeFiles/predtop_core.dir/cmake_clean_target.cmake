file(REMOVE_RECURSE
  "libpredtop_core.a"
)

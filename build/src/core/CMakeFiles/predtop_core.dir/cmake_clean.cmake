file(REMOVE_RECURSE
  "CMakeFiles/predtop_core.dir/analytical.cpp.o"
  "CMakeFiles/predtop_core.dir/analytical.cpp.o.d"
  "CMakeFiles/predtop_core.dir/dataset.cpp.o"
  "CMakeFiles/predtop_core.dir/dataset.cpp.o.d"
  "CMakeFiles/predtop_core.dir/greybox.cpp.o"
  "CMakeFiles/predtop_core.dir/greybox.cpp.o.d"
  "CMakeFiles/predtop_core.dir/plan_search.cpp.o"
  "CMakeFiles/predtop_core.dir/plan_search.cpp.o.d"
  "CMakeFiles/predtop_core.dir/predictors.cpp.o"
  "CMakeFiles/predtop_core.dir/predictors.cpp.o.d"
  "CMakeFiles/predtop_core.dir/regressor.cpp.o"
  "CMakeFiles/predtop_core.dir/regressor.cpp.o.d"
  "libpredtop_core.a"
  "libpredtop_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predtop_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

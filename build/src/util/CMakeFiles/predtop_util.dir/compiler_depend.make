# Empty compiler generated dependencies file for predtop_util.
# This may be replaced when dependencies are built.

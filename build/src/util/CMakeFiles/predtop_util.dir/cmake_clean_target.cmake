file(REMOVE_RECURSE
  "libpredtop_util.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/predtop_util.dir/env.cpp.o"
  "CMakeFiles/predtop_util.dir/env.cpp.o.d"
  "CMakeFiles/predtop_util.dir/logging.cpp.o"
  "CMakeFiles/predtop_util.dir/logging.cpp.o.d"
  "CMakeFiles/predtop_util.dir/rng.cpp.o"
  "CMakeFiles/predtop_util.dir/rng.cpp.o.d"
  "CMakeFiles/predtop_util.dir/stats.cpp.o"
  "CMakeFiles/predtop_util.dir/stats.cpp.o.d"
  "CMakeFiles/predtop_util.dir/table.cpp.o"
  "CMakeFiles/predtop_util.dir/table.cpp.o.d"
  "CMakeFiles/predtop_util.dir/thread_pool.cpp.o"
  "CMakeFiles/predtop_util.dir/thread_pool.cpp.o.d"
  "libpredtop_util.a"
  "libpredtop_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predtop_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

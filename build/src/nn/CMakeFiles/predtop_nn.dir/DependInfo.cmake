
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/attention.cpp" "src/nn/CMakeFiles/predtop_nn.dir/attention.cpp.o" "gcc" "src/nn/CMakeFiles/predtop_nn.dir/attention.cpp.o.d"
  "/root/repo/src/nn/dag_transformer.cpp" "src/nn/CMakeFiles/predtop_nn.dir/dag_transformer.cpp.o" "gcc" "src/nn/CMakeFiles/predtop_nn.dir/dag_transformer.cpp.o.d"
  "/root/repo/src/nn/gat.cpp" "src/nn/CMakeFiles/predtop_nn.dir/gat.cpp.o" "gcc" "src/nn/CMakeFiles/predtop_nn.dir/gat.cpp.o.d"
  "/root/repo/src/nn/gcn.cpp" "src/nn/CMakeFiles/predtop_nn.dir/gcn.cpp.o" "gcc" "src/nn/CMakeFiles/predtop_nn.dir/gcn.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/nn/CMakeFiles/predtop_nn.dir/linear.cpp.o" "gcc" "src/nn/CMakeFiles/predtop_nn.dir/linear.cpp.o.d"
  "/root/repo/src/nn/module.cpp" "src/nn/CMakeFiles/predtop_nn.dir/module.cpp.o" "gcc" "src/nn/CMakeFiles/predtop_nn.dir/module.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/predtop_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/predtop_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/nn/CMakeFiles/predtop_nn.dir/serialize.cpp.o" "gcc" "src/nn/CMakeFiles/predtop_nn.dir/serialize.cpp.o.d"
  "/root/repo/src/nn/trainer.cpp" "src/nn/CMakeFiles/predtop_nn.dir/trainer.cpp.o" "gcc" "src/nn/CMakeFiles/predtop_nn.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/autograd/CMakeFiles/predtop_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/predtop_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/predtop_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

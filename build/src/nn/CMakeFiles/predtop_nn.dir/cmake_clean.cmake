file(REMOVE_RECURSE
  "CMakeFiles/predtop_nn.dir/attention.cpp.o"
  "CMakeFiles/predtop_nn.dir/attention.cpp.o.d"
  "CMakeFiles/predtop_nn.dir/dag_transformer.cpp.o"
  "CMakeFiles/predtop_nn.dir/dag_transformer.cpp.o.d"
  "CMakeFiles/predtop_nn.dir/gat.cpp.o"
  "CMakeFiles/predtop_nn.dir/gat.cpp.o.d"
  "CMakeFiles/predtop_nn.dir/gcn.cpp.o"
  "CMakeFiles/predtop_nn.dir/gcn.cpp.o.d"
  "CMakeFiles/predtop_nn.dir/linear.cpp.o"
  "CMakeFiles/predtop_nn.dir/linear.cpp.o.d"
  "CMakeFiles/predtop_nn.dir/module.cpp.o"
  "CMakeFiles/predtop_nn.dir/module.cpp.o.d"
  "CMakeFiles/predtop_nn.dir/optimizer.cpp.o"
  "CMakeFiles/predtop_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/predtop_nn.dir/serialize.cpp.o"
  "CMakeFiles/predtop_nn.dir/serialize.cpp.o.d"
  "CMakeFiles/predtop_nn.dir/trainer.cpp.o"
  "CMakeFiles/predtop_nn.dir/trainer.cpp.o.d"
  "libpredtop_nn.a"
  "libpredtop_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predtop_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for predtop_nn.
# This may be replaced when dependencies are built.

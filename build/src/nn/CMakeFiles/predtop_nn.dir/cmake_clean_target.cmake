file(REMOVE_RECURSE
  "libpredtop_nn.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/predtop_graph.dir/depth.cpp.o"
  "CMakeFiles/predtop_graph.dir/depth.cpp.o.d"
  "CMakeFiles/predtop_graph.dir/dot.cpp.o"
  "CMakeFiles/predtop_graph.dir/dot.cpp.o.d"
  "CMakeFiles/predtop_graph.dir/encode.cpp.o"
  "CMakeFiles/predtop_graph.dir/encode.cpp.o.d"
  "CMakeFiles/predtop_graph.dir/op_dag.cpp.o"
  "CMakeFiles/predtop_graph.dir/op_dag.cpp.o.d"
  "CMakeFiles/predtop_graph.dir/prune.cpp.o"
  "CMakeFiles/predtop_graph.dir/prune.cpp.o.d"
  "CMakeFiles/predtop_graph.dir/reachability.cpp.o"
  "CMakeFiles/predtop_graph.dir/reachability.cpp.o.d"
  "libpredtop_graph.a"
  "libpredtop_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predtop_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

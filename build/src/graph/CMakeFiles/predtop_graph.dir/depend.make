# Empty dependencies file for predtop_graph.
# This may be replaced when dependencies are built.

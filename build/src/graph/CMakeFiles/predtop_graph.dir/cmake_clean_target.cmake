file(REMOVE_RECURSE
  "libpredtop_graph.a"
)

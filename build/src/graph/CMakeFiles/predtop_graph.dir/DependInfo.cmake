
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/depth.cpp" "src/graph/CMakeFiles/predtop_graph.dir/depth.cpp.o" "gcc" "src/graph/CMakeFiles/predtop_graph.dir/depth.cpp.o.d"
  "/root/repo/src/graph/dot.cpp" "src/graph/CMakeFiles/predtop_graph.dir/dot.cpp.o" "gcc" "src/graph/CMakeFiles/predtop_graph.dir/dot.cpp.o.d"
  "/root/repo/src/graph/encode.cpp" "src/graph/CMakeFiles/predtop_graph.dir/encode.cpp.o" "gcc" "src/graph/CMakeFiles/predtop_graph.dir/encode.cpp.o.d"
  "/root/repo/src/graph/op_dag.cpp" "src/graph/CMakeFiles/predtop_graph.dir/op_dag.cpp.o" "gcc" "src/graph/CMakeFiles/predtop_graph.dir/op_dag.cpp.o.d"
  "/root/repo/src/graph/prune.cpp" "src/graph/CMakeFiles/predtop_graph.dir/prune.cpp.o" "gcc" "src/graph/CMakeFiles/predtop_graph.dir/prune.cpp.o.d"
  "/root/repo/src/graph/reachability.cpp" "src/graph/CMakeFiles/predtop_graph.dir/reachability.cpp.o" "gcc" "src/graph/CMakeFiles/predtop_graph.dir/reachability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/predtop_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/predtop_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

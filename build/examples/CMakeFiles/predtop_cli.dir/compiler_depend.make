# Empty compiler generated dependencies file for predtop_cli.
# This may be replaced when dependencies are built.

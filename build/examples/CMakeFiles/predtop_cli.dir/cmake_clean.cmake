file(REMOVE_RECURSE
  "CMakeFiles/predtop_cli.dir/predtop_cli.cpp.o"
  "CMakeFiles/predtop_cli.dir/predtop_cli.cpp.o.d"
  "predtop_cli"
  "predtop_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predtop_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/plan_search.dir/plan_search.cpp.o"
  "CMakeFiles/plan_search.dir/plan_search.cpp.o.d"
  "plan_search"
  "plan_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for plan_search.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/whatif_cluster.dir/whatif_cluster.cpp.o"
  "CMakeFiles/whatif_cluster.dir/whatif_cluster.cpp.o.d"
  "whatif_cluster"
  "whatif_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whatif_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

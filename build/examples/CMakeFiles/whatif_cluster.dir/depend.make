# Empty dependencies file for whatif_cluster.
# This may be replaced when dependencies are built.

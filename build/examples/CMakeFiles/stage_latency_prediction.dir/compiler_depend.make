# Empty compiler generated dependencies file for stage_latency_prediction.
# This may be replaced when dependencies are built.

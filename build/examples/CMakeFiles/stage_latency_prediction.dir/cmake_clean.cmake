file(REMOVE_RECURSE
  "CMakeFiles/stage_latency_prediction.dir/stage_latency_prediction.cpp.o"
  "CMakeFiles/stage_latency_prediction.dir/stage_latency_prediction.cpp.o.d"
  "stage_latency_prediction"
  "stage_latency_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stage_latency_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "core/regressor.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include <fstream>
#include <istream>
#include <ostream>

#include "nn/serialize.h"
#include "util/stats.h"

namespace predtop::core {

LatencyRegressor::LatencyRegressor(PredictorKind kind, PredictorOptions options,
                                   TargetTransform transform)
    : kind_(kind),
      options_(options),
      model_(MakePredictor(kind, options)),
      transform_(transform) {}

namespace {

// `.ptck` framing: "PTCK" magic + format version, then the target transform
// and its normalization stats, then the predictor section (kind tag,
// architecture options, named state dict — see core::SavePredictor).
constexpr std::uint32_t kCheckpointMagic = 0x5054434b;  // "PTCK"
constexpr std::uint32_t kCheckpointVersion = 2;

template <typename T>
void WritePod(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
T ReadPod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof value);
  if (!in) throw std::runtime_error("LatencyRegressor: truncated checkpoint");
  return value;
}

}  // namespace

void LatencyRegressor::Save(std::ostream& out) {
  WritePod(out, kCheckpointMagic);
  WritePod(out, kCheckpointVersion);
  WritePod<std::int32_t>(out, static_cast<std::int32_t>(transform_));
  WritePod<double>(out, scale_);
  WritePod<double>(out, log_mean_);
  WritePod<double>(out, log_std_);
  SavePredictor(out, kind_, options_, *model_);
}

void LatencyRegressor::Save(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("LatencyRegressor::Save: cannot open " + path);
  Save(out);
  if (!out) throw std::runtime_error("LatencyRegressor::Save: write failed for " + path);
}

LatencyRegressor LatencyRegressor::Load(std::istream& in) {
  if (ReadPod<std::uint32_t>(in) != kCheckpointMagic) {
    throw std::runtime_error("LatencyRegressor::Load: bad checkpoint magic");
  }
  if (const auto version = ReadPod<std::uint32_t>(in); version != kCheckpointVersion) {
    throw std::runtime_error("LatencyRegressor::Load: unsupported checkpoint version " +
                             std::to_string(version));
  }
  const auto transform_tag = ReadPod<std::int32_t>(in);
  if (transform_tag < 0 ||
      transform_tag > static_cast<std::int32_t>(TargetTransform::kLogStandardized)) {
    throw std::runtime_error("LatencyRegressor::Load: unknown target transform");
  }
  const double scale = ReadPod<double>(in);
  const double log_mean = ReadPod<double>(in);
  const double log_std = ReadPod<double>(in);
  LoadedPredictor predictor = LoadPredictor(in);
  LatencyRegressor regressor(predictor.kind, predictor.options,
                             static_cast<TargetTransform>(transform_tag));
  regressor.model_ = std::move(predictor.model);
  regressor.scale_ = scale;
  regressor.log_mean_ = log_mean;
  regressor.log_std_ = log_std;
  return regressor;
}

LatencyRegressor LatencyRegressor::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("LatencyRegressor::Load: cannot open " + path);
  return Load(in);
}

float LatencyRegressor::Normalize(double latency_s) const noexcept {
  if (transform_ == TargetTransform::kLinearMeanScaled) {
    return static_cast<float>(latency_s / scale_);
  }
  return static_cast<float>((std::log(latency_s) - log_mean_) / log_std_);
}

double LatencyRegressor::Denormalize(float normalized) const noexcept {
  if (transform_ == TargetTransform::kLinearMeanScaled) {
    return static_cast<double>(normalized) * scale_;
  }
  return std::exp(static_cast<double>(normalized) * log_std_ + log_mean_);
}

nn::TrainResult LatencyRegressor::Fit(const StageDataset& dataset,
                                      std::span<const std::size_t> train_indices,
                                      std::span<const std::size_t> val_indices,
                                      const nn::TrainConfig& train_config) {
  if (train_indices.empty()) throw std::invalid_argument("LatencyRegressor::Fit: no samples");
  // Fit the target normalization to training labels only.
  std::vector<double> logs;
  double sum = 0.0;
  logs.reserve(train_indices.size());
  for (const std::size_t i : train_indices) {
    sum += static_cast<double>(dataset.labels[i]);
    logs.push_back(std::log(static_cast<double>(dataset.labels[i])));
  }
  scale_ = std::max(1e-12, sum / static_cast<double>(train_indices.size()));
  log_mean_ = util::Mean(logs);
  log_std_ = std::max(1e-6, util::StdDev(logs));

  std::vector<float> targets;
  targets.reserve(dataset.labels.size());
  for (const float label : dataset.labels) {
    targets.push_back(Normalize(static_cast<double>(label)));
  }
  const nn::Trainer trainer(train_config);
  return trainer.Fit(
      *model_,
      [&](std::size_t i) { return model_->Forward(dataset.samples[i].encoded); },
      targets, train_indices, val_indices);
}

double LatencyRegressor::PredictSeconds(const graph::EncodedGraph& g) {
  const autograd::Variable pred = model_->Forward(g);
  // Latencies are positive by definition; the linear head can extrapolate
  // below zero early in training, so clamp to a 1 us floor.
  return std::max(1e-6, Denormalize(pred.value().data()[0]));
}

double LatencyRegressor::MrePercent(const StageDataset& dataset,
                                    std::span<const std::size_t> indices) {
  std::vector<double> predicted;
  std::vector<double> actual;
  predicted.reserve(indices.size());
  actual.reserve(indices.size());
  for (const std::size_t i : indices) {
    predicted.push_back(PredictSeconds(dataset.samples[i].encoded));
    actual.push_back(dataset.samples[i].true_latency_s);
  }
  return util::MeanRelativeErrorPct(predicted, actual);
}

}  // namespace predtop::core

#include "core/regressor.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <utility>

#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "fault/crc32.h"
#include "fault/injector.h"
#include "fault/status.h"
#include "nn/serialize.h"
#include "util/env.h"
#include "util/stats.h"

namespace predtop::core {

LatencyRegressor::LatencyRegressor(PredictorKind kind, PredictorOptions options,
                                   TargetTransform transform)
    : kind_(kind),
      options_(options),
      model_(MakePredictor(kind, options)),
      transform_(transform) {}

namespace {

// `.ptck` framing, version 3 (hardened): "PTCK" magic, format version,
// payload length (u64), payload, CRC32 footer over the payload. The payload
// is the version-2 body — target transform + normalization stats, then the
// predictor section (kind tag, architecture options, named state dict — see
// core::SavePredictor). The length prefix is validated against the remaining
// stream size before the payload is buffered, and the CRC turns any bit rot
// or truncation inside the payload into a typed CorruptionError instead of
// subtly-wrong weights.
constexpr std::uint32_t kCheckpointMagic = 0x5054434b;  // "PTCK"
constexpr std::uint32_t kCheckpointVersion = 3;

template <typename T>
void WritePod(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
T ReadPod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof value);
  if (!in) throw fault::CorruptionError("LatencyRegressor: truncated checkpoint");
  return value;
}

}  // namespace

void LatencyRegressor::Save(std::ostream& out) {
  std::ostringstream payload_stream(std::ios::binary);
  WritePod<std::int32_t>(payload_stream, static_cast<std::int32_t>(transform_));
  WritePod<double>(payload_stream, scale_);
  WritePod<double>(payload_stream, log_mean_);
  WritePod<double>(payload_stream, log_std_);
  SavePredictor(payload_stream, kind_, options_, *model_);
  const std::string payload = payload_stream.str();

  WritePod(out, kCheckpointMagic);
  WritePod(out, kCheckpointVersion);
  WritePod<std::uint64_t>(out, payload.size());
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  WritePod<std::uint32_t>(out, fault::Crc32(payload));
  if (!out) throw fault::IoError("LatencyRegressor::Save: stream write failed");
}

void LatencyRegressor::Save(const std::string& path) {
  // Atomic save: write the full frame to a sibling temp file, then rename it
  // over the target. A crash (or an injected ckpt_write fault) mid-save
  // leaves either the previous checkpoint or nothing — never a torn frame
  // under the real name.
  namespace fs = std::filesystem;
  const std::string tmp = path + ".tmp";
  std::error_code discard;
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw fault::IoError("LatencyRegressor::Save: cannot open " + tmp);
    try {
      Save(out);
    } catch (...) {
      out.close();
      fs::remove(tmp, discard);
      throw;
    }
    out.flush();
    if (!out) {
      out.close();
      fs::remove(tmp, discard);
      throw fault::IoError("LatencyRegressor::Save: write failed for " + tmp);
    }
  }
  if (fault::Injector::Global().ShouldInject(fault::sites::kCkptWrite)) {
    fs::remove(tmp, discard);
    throw fault::IoError("LatencyRegressor::Save: injected ckpt_write fault for " + path);
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, discard);
    throw fault::IoError("LatencyRegressor::Save: rename to " + path +
                         " failed: " + ec.message());
  }
}

LatencyRegressor LatencyRegressor::Load(std::istream& in) {
  if (ReadPod<std::uint32_t>(in) != kCheckpointMagic) {
    throw fault::CorruptionError("LatencyRegressor::Load: bad checkpoint magic");
  }
  if (const auto version = ReadPod<std::uint32_t>(in); version != kCheckpointVersion) {
    throw fault::CorruptionError(
        "LatencyRegressor::Load: unsupported checkpoint version " +
        std::to_string(version));
  }
  const auto payload_size = ReadPod<std::uint64_t>(in);
  nn::CheckClaimedSize(in, payload_size, "checkpoint payload");
  std::string payload(payload_size, '\0');
  in.read(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!in) throw fault::CorruptionError("LatencyRegressor::Load: truncated payload");
  const auto stored_crc = ReadPod<std::uint32_t>(in);
  if (const std::uint32_t actual = fault::Crc32(payload); actual != stored_crc) {
    throw fault::CorruptionError("LatencyRegressor::Load: checkpoint CRC mismatch");
  }

  std::istringstream body(payload, std::ios::binary);
  const auto transform_tag = ReadPod<std::int32_t>(body);
  if (transform_tag < 0 ||
      transform_tag > static_cast<std::int32_t>(TargetTransform::kLogStandardized)) {
    throw fault::CorruptionError("LatencyRegressor::Load: unknown target transform");
  }
  const double scale = ReadPod<double>(body);
  const double log_mean = ReadPod<double>(body);
  const double log_std = ReadPod<double>(body);
  LoadedPredictor predictor = LoadPredictor(body);
  if (body.peek() != std::istringstream::traits_type::eof()) {
    throw fault::CorruptionError(
        "LatencyRegressor::Load: trailing bytes after checkpoint payload");
  }
  LatencyRegressor regressor(predictor.kind, predictor.options,
                             static_cast<TargetTransform>(transform_tag));
  regressor.model_ = std::move(predictor.model);
  regressor.scale_ = scale;
  regressor.log_mean_ = log_mean;
  regressor.log_std_ = log_std;
  return regressor;
}

LatencyRegressor LatencyRegressor::Load(const std::string& path) {
  if (fault::Injector::Global().ShouldInject(fault::sites::kCkptRead)) {
    throw fault::IoError("LatencyRegressor::Load: injected ckpt_read fault for " + path);
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) throw fault::IoError("LatencyRegressor::Load: cannot open " + path);
  return Load(in);
}

float LatencyRegressor::Normalize(double latency_s) const noexcept {
  if (transform_ == TargetTransform::kLinearMeanScaled) {
    return static_cast<float>(latency_s / scale_);
  }
  return static_cast<float>((std::log(latency_s) - log_mean_) / log_std_);
}

double LatencyRegressor::Denormalize(float normalized) const noexcept {
  if (transform_ == TargetTransform::kLinearMeanScaled) {
    return static_cast<double>(normalized) * scale_;
  }
  return std::exp(static_cast<double>(normalized) * log_std_ + log_mean_);
}

nn::TrainResult LatencyRegressor::Fit(const StageDataset& dataset,
                                      std::span<const std::size_t> train_indices,
                                      std::span<const std::size_t> val_indices,
                                      const nn::TrainConfig& train_config) {
  if (train_indices.empty()) throw std::invalid_argument("LatencyRegressor::Fit: no samples");
  // Fit the target normalization to training labels only.
  std::vector<double> logs;
  double sum = 0.0;
  logs.reserve(train_indices.size());
  for (const std::size_t i : train_indices) {
    sum += static_cast<double>(dataset.labels[i]);
    logs.push_back(std::log(static_cast<double>(dataset.labels[i])));
  }
  scale_ = std::max(1e-12, sum / static_cast<double>(train_indices.size()));
  log_mean_ = util::Mean(logs);
  log_std_ = std::max(1e-6, util::StdDev(logs));

  std::vector<float> targets;
  targets.reserve(dataset.labels.size());
  for (const float label : dataset.labels) {
    targets.push_back(Normalize(static_cast<double>(label)));
  }
  const nn::Trainer trainer(train_config);
  return trainer.Fit(
      *model_,
      [&](std::size_t i) { return model_->Forward(dataset.samples[i].encoded); },
      targets, train_indices, val_indices);
}

namespace {

bool FastInferEnabled() noexcept {
  static const bool enabled = util::EnvInt("PREDTOP_FAST_INFER", 1) != 0;
  return enabled;
}

}  // namespace

bool LatencyRegressor::FastInferActive() noexcept { return FastInferEnabled(); }

double LatencyRegressor::PredictSeconds(const graph::EncodedGraph& g) {
  if (!FastInferEnabled()) return PredictSecondsTape(g);
  const float pred = model_->InferScalar(g, nn::ThreadLocalInferenceContext());
  // Latencies are positive by definition; the linear head can extrapolate
  // below zero early in training, so clamp to a 1 us floor.
  return std::max(1e-6, Denormalize(pred));
}

double LatencyRegressor::PredictSecondsTape(const graph::EncodedGraph& g) {
  const autograd::Variable pred = model_->Forward(g);
  return std::max(1e-6, Denormalize(pred.value().data()[0]));
}

std::vector<double> LatencyRegressor::PredictBatch(std::span<const graph::EncodedGraph> graphs) {
  std::vector<const graph::EncodedGraph*> ptrs;
  ptrs.reserve(graphs.size());
  for (const graph::EncodedGraph& g : graphs) ptrs.push_back(&g);
  return PredictBatch(std::span<const graph::EncodedGraph* const>(ptrs));
}

std::vector<double> LatencyRegressor::PredictBatch(
    std::span<const graph::EncodedGraph* const> graphs) {
  std::vector<double> out(graphs.size(), 0.0);
  if (graphs.empty()) return out;
  if (!FastInferEnabled() || !compile::CompileEnabled() ||
      !compile::BatchCompileEnabled()) {
    for (std::size_t i = 0; i < graphs.size(); ++i) out[i] = PredictSeconds(*graphs[i]);
    return out;
  }

  // Group by shape class — one compiled program serves one (nodes, edges)
  // pair — preserving arrival order within each group.
  std::map<std::pair<std::int64_t, std::int64_t>, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    groups[{graphs[i]->num_nodes,
            static_cast<std::int64_t>(graphs[i]->edge_src.size())}]
        .push_back(i);
  }

  std::vector<const graph::EncodedGraph*> members;
  std::vector<float> preds;
  for (const auto& [shape, indices] : groups) {
    members.clear();
    for (const std::size_t i : indices) members.push_back(graphs[i]);
    preds.assign(indices.size(), 0.0f);
    if (model_->TryInferCompiledBatch(members.data(), members.size(), preds.data())) {
      for (std::size_t j = 0; j < indices.size(); ++j) {
        out[indices[j]] = std::max(1e-6, Denormalize(preds[j]));
      }
    } else {
      // Shape class not compilable: per-graph fast path (same clamp).
      for (const std::size_t i : indices) out[i] = PredictSeconds(*graphs[i]);
    }
  }
  return out;
}

double LatencyRegressor::MrePercent(const StageDataset& dataset,
                                    std::span<const std::size_t> indices) {
  std::vector<double> predicted;
  std::vector<double> actual;
  predicted.reserve(indices.size());
  actual.reserve(indices.size());
  for (const std::size_t i : indices) {
    predicted.push_back(PredictSeconds(dataset.samples[i].encoded));
    actual.push_back(dataset.samples[i].true_latency_s);
  }
  return util::MeanRelativeErrorPct(predicted, actual);
}

}  // namespace predtop::core

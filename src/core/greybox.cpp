#include "core/greybox.h"

#include <stdexcept>

#include "parallel/pipeline_model.h"

namespace predtop::core {

GreyBoxEstimator::GreyBoxEstimator(
    BenchmarkModel benchmark,
    std::vector<std::pair<sim::Mesh, std::shared_ptr<LatencyRegressor>>> regressors)
    : benchmark_(std::move(benchmark)), regressors_(std::move(regressors)) {
  if (regressors_.empty()) {
    throw std::invalid_argument("GreyBoxEstimator: at least one regressor required");
  }
}

double GreyBoxEstimator::EstimateStageLatency(ir::StageSlice slice, sim::Mesh mesh) {
  for (auto& [regressor_mesh, regressor] : regressors_) {
    if (regressor_mesh == mesh) {
      const auto key = std::make_pair(slice.first_layer, slice.last_layer);
      auto it = encoded_cache_.find(key);
      if (it == encoded_cache_.end()) {
        it = encoded_cache_.emplace(key, EncodeStage(benchmark_.build_stage(slice))).first;
      }
      return regressor->PredictSeconds(it->second);
    }
  }
  throw std::invalid_argument("GreyBoxEstimator: no regressor for the requested mesh");
}

double GreyBoxEstimator::EstimateIterationLatency(const parallel::PipelinePlan& plan) {
  std::vector<double> stage_latencies;
  stage_latencies.reserve(plan.stages.size());
  for (const parallel::PipelineStageChoice& stage : plan.stages) {
    stage_latencies.push_back(EstimateStageLatency(stage.slice, stage.mesh));
  }
  return parallel::PipelineLatency(stage_latencies, plan.num_microbatches);
}

}  // namespace predtop::core

#pragma once
// GreyBoxEstimator — the paper's headline abstraction (§III): black-box
// per-stage latency prediction composed with the white-box pipeline formula
// (Eqn. 4) to estimate the end-to-end iteration latency of any hybrid
// parallelization plan without profiling it.

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "core/regressor.h"
#include "parallel/plan.h"

namespace predtop::core {

class GreyBoxEstimator {
 public:
  /// One trained regressor per mesh the plan may place stages on.
  GreyBoxEstimator(BenchmarkModel benchmark,
                   std::vector<std::pair<sim::Mesh, std::shared_ptr<LatencyRegressor>>> regressors);

  /// Black-box phase: predicted optimal intra-stage latency (seconds).
  [[nodiscard]] double EstimateStageLatency(ir::StageSlice slice, sim::Mesh mesh);

  /// Grey-box composition: predict every stage, then apply the white-box
  /// 1F1B formula with the plan's microbatch count.
  [[nodiscard]] double EstimateIterationLatency(const parallel::PipelinePlan& plan);

 private:
  BenchmarkModel benchmark_;
  std::vector<std::pair<sim::Mesh, std::shared_ptr<LatencyRegressor>>> regressors_;
  std::map<std::pair<std::int32_t, std::int32_t>, graph::EncodedGraph> encoded_cache_;
};

}  // namespace predtop::core

#include "core/predictors.h"

#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>

#include <array>
#include <mutex>
#include <unordered_map>

#include "autograd/functions.h"
#include "fault/status.h"
#include "graph/depth.h"
#include "graph/fingerprint.h"
#include "graph/reachability.h"
#include "nn/serialize.h"

namespace predtop::core {

using autograd::Variable;

StagePredictor::~StagePredictor() {
  compile::ProgramCache::Global().EvictOwner(instance_id_);
}

float StagePredictor::InferScalar(const graph::EncodedGraph& g, nn::InferenceContext& ctx) {
  (void)ctx;
  return Forward(g).value().data()[0];
}

std::shared_ptr<compile::InferProgram> StagePredictor::CachedProgram(
    const graph::EncodedGraph& g) {
  auto& cache = compile::ProgramCache::Global();
  const auto ne = static_cast<std::int64_t>(g.edge_src.size());
  if (auto hit = cache.Lookup(instance_id_, g.num_nodes, ne)) return *hit;
  std::shared_ptr<compile::InferProgram> program = BuildProgram(g);
  cache.Insert(instance_id_, g.num_nodes, ne, program);
  return program;
}

void StagePredictor::FillExecInputs(const graph::EncodedGraph& g,
                                    compile::ExecInputs& inputs,
                                    std::shared_ptr<const tensor::Tensor>& keepalive) {
  (void)keepalive;
  inputs = compile::ExecInputs{};
  inputs.g = &g;
}

bool StagePredictor::TryInferCompiled(const graph::EncodedGraph& g, float* out) {
  const auto program = CachedProgram(g);
  if (program == nullptr) return false;
  compile::ExecInputs inputs;
  std::shared_ptr<const tensor::Tensor> keepalive;
  FillExecInputs(g, inputs, keepalive);
  return compile::Execute(*program, inputs, out);
}

bool StagePredictor::TryInferCompiledBatch(const graph::EncodedGraph* const* graphs,
                                           std::size_t count, float* out,
                                           const compile::BatchOptions& opts) {
  if (count == 0) return true;
  if (graphs == nullptr || out == nullptr) return false;
  const auto program = CachedProgram(*graphs[0]);
  if (program == nullptr) return false;
  std::vector<compile::ExecInputs> inputs(count);
  std::vector<std::shared_ptr<const tensor::Tensor>> keepalive(count);
  for (std::size_t i = 0; i < count; ++i) {
    FillExecInputs(*graphs[i], inputs[i], keepalive[i]);
  }
  return compile::ExecuteBatch(*program, inputs.data(), count, out, opts);
}

const char* PredictorKindName(PredictorKind kind) noexcept {
  switch (kind) {
    case PredictorKind::kDagTransformer: return "Tran";
    case PredictorKind::kGcn: return "GCN";
    case PredictorKind::kGat: return "GAT";
  }
  return "?";
}

namespace {

/// Paper §IV-B5: DAG Transformer layers -> global add pool -> linear layers
/// with ReLU -> scalar output. DAGPE sinusoidal depth encodings are added to
/// the projected input embedding; DAGRA masks restrict attention.
class DagTransformerPredictor final : public StagePredictor {
 public:
  explicit DagTransformerPredictor(const PredictorOptions& options)
      : options_(options), rng_(options.seed), input_proj_(options.feature_dim, options.dagt_dim, rng_) {
    for (std::int64_t i = 0; i < options.dagt_layers; ++i) {
      layers_.push_back(std::make_unique<nn::DagTransformerLayer>(
          options.dagt_dim, options.dagt_heads, options.dagt_ffn_mult, rng_));
    }
    // The head sees the pooled transformer embedding concatenated with the
    // pooled *raw* node features: layer norm inside the transformer blocks
    // squashes magnitude information, and this residual pathway restores the
    // additive cost signal (sum of per-op features) that stage latency
    // carries, which matters most in the low-training-sample regime.
    const std::int64_t head_in = options.dagt_dim + options.feature_dim;
    head_ = std::make_unique<nn::Mlp>(
        std::vector<std::int64_t>{head_in, options.dagt_dim, 1}, rng_);
  }

  Variable Forward(const graph::EncodedGraph& g) override {
    const Variable features(g.features);
    Variable h = input_proj_.Forward(features);
    if (options_.use_dagpe) {
      const tensor::Tensor pe = graph::SinusoidalEncoding(g.depths, options_.dagt_dim);
      h = autograd::Add(h, Variable(pe));
    }
    const tensor::Tensor* mask = &g.dagra_mask;
    tensor::Tensor full_mask;
    if (!options_.use_dagra) {  // ablation: unrestricted attention
      full_mask = graph::BuildFullAttentionMask(g.num_nodes);
      mask = &full_mask;
    }
    for (const auto& layer : layers_) h = layer->Forward(h, *mask);
    // Raw-feature sums grow with node count and log-dim magnitude; scale
    // them to O(1) so they do not swamp Adam's updates.
    const std::vector<Variable> pooled{
        autograd::GlobalAddPool(h),
        autograd::Scale(autograd::GlobalAddPool(features), 1.0f / 256.0f)};
    return head_->Forward(autograd::ConcatCols(pooled));
  }

  float InferScalar(const graph::EncodedGraph& g, nn::InferenceContext& ctx) override {
    if (compile::CompileEnabled()) {
      float y = 0.0f;
      if (TryInferCompiled(g, &y)) return y;
    }
    ctx.BeginForward();
    const tensor::ConstMat features = nn::infer::View(g.features);
    tensor::MatRef h = input_proj_.InferForward(features, ctx);
    if (options_.use_dagpe) {
      const auto pe = CachedDepthEncoding(g);
      nn::infer::AddInPlace(h, nn::infer::View(*pe));
    }
    // DAGRA masks are precomputed per graph (g.dagra_mask); the ablation's
    // all-zero mask is numerically a no-op, so pass no mask at all.
    const tensor::Tensor* mask = options_.use_dagra ? &g.dagra_mask : nullptr;
    for (const auto& layer : layers_) h = layer->InferForward(h, mask, ctx);
    const tensor::MatRef pooled_h = nn::infer::GlobalAddPool(ctx, h);
    tensor::MatRef pooled_f = nn::infer::GlobalAddPool(ctx, features);
    nn::infer::ScaleInPlace(pooled_f, 1.0f / 256.0f);
    const std::array<tensor::ConstMat, 2> pooled{pooled_h, pooled_f};
    const tensor::MatRef cat = nn::infer::ConcatCols(ctx, pooled);
    return head_->InferForward(cat, ctx).data[0];
  }

  std::string Name() const override { return "DagTransformer"; }

  /// Record InferScalar's op sequence: input projection (+DAGPE), the four
  /// steps per transformer layer the fuser produces, pooled head. The fusion
  /// pass turns each layer into kFusedAttention + two kLinearResidualNorm +
  /// one kLinearAct step.
  std::shared_ptr<compile::InferProgram> BuildProgram(
      const graph::EncodedGraph& g) const override {
    if (g.num_nodes <= 0 || g.features.rank() != 2 ||
        g.features.dim(1) != options_.feature_dim) {
      return nullptr;
    }
    const std::int64_t n = g.num_nodes;
    compile::ProgramBuilder b(n, static_cast<std::int64_t>(g.edge_src.size()),
                              options_.feature_dim);
    const compile::ValueId x = b.Input(compile::External::kFeatures, n, options_.feature_dim);
    compile::ValueId h = b.Linear(input_proj_, x);
    if (options_.use_dagpe) {
      b.Add(h, b.Input(compile::External::kDepthPe, n, options_.dagt_dim));
    }
    for (const auto& layer : layers_) {
      const nn::MultiheadMaskedAttention& at = layer->Attention();
      const compile::ValueId q = b.Linear(at.Wq(), h);
      const compile::ValueId k = b.Linear(at.Wk(), h);
      const compile::ValueId v = b.Linear(at.Wv(), h);
      b.Scale(q, 1.0f / std::sqrt(static_cast<float>(at.HeadDim())));
      const compile::ValueId merged = b.AttnHeads(at, q, k, v, options_.use_dagra);
      const compile::ValueId o = b.Linear(at.Wo(), merged);
      b.Add(o, h);
      const compile::ValueId h1 = b.LayerNorm(o, layer->Norm1Gain(), layer->Norm1Bias());
      const compile::ValueId f = b.Linear(layer->FfnIn(), h1);
      b.Relu(f);
      const compile::ValueId ffn = b.Linear(layer->FfnOut(), f);
      b.Add(ffn, h1);
      h = b.LayerNorm(ffn, layer->Norm2Gain(), layer->Norm2Bias());
    }
    const compile::ValueId pooled_h = b.Pool(h);
    const compile::ValueId pooled_f = b.Pool(x);
    b.Scale(pooled_f, 1.0f / 256.0f);
    compile::ValueId t = b.Concat2(pooled_h, pooled_f);
    const std::vector<nn::Linear>& head_layers = head_->Layers();
    for (std::size_t i = 0; i < head_layers.size(); ++i) {
      t = b.Linear(head_layers[i], t);
      if (i + 1 < head_layers.size()) b.Relu(t);
    }
    return b.Finish(t);
  }

  /// Compiled-path externals: the DAGRA mask and the fingerprint-cached
  /// depth encoding (kept alive through `keepalive` for the call).
  void FillExecInputs(const graph::EncodedGraph& g, compile::ExecInputs& inputs,
                      std::shared_ptr<const tensor::Tensor>& keepalive) override {
    inputs = compile::ExecInputs{};
    inputs.g = &g;
    if (options_.use_dagra) inputs.mask = &g.dagra_mask;
    if (options_.use_dagpe) {
      keepalive = CachedDepthEncoding(g);
      inputs.pe = keepalive->data().data();
    }
  }

  std::vector<Variable*> Parameters() override {
    std::vector<Variable*> out = input_proj_.Parameters();
    for (const auto& layer : layers_) {
      for (auto* p : layer->Parameters()) out.push_back(p);
    }
    for (auto* p : head_->Parameters()) out.push_back(p);
    return out;
  }

  std::vector<nn::NamedParameter> NamedParameters() override {
    std::vector<nn::NamedParameter> out;
    nn::AppendNamedParameters(out, "input_proj", input_proj_);
    for (std::size_t i = 0; i < layers_.size(); ++i) {
      nn::AppendNamedParameters(out, "layers." + std::to_string(i), *layers_[i]);
    }
    nn::AppendNamedParameters(out, "head", *head_);
    return out;
  }

 private:
  /// Depth positional encodings are pure functions of the graph topology, so
  /// repeated predictions for the same DAG (the common case when searching
  /// plans) reuse one tensor keyed by the graph fingerprint. The encoding is
  /// computed outside the lock; the map only ever stores immutable tensors
  /// behind shared_ptr, so readers are safe against a concurrent clear.
  std::shared_ptr<const tensor::Tensor> CachedDepthEncoding(const graph::EncodedGraph& g) {
    const std::uint64_t key = graph::EncodedGraphFingerprint(g);
    {
      std::lock_guard<std::mutex> lock(pe_mutex_);
      const auto it = pe_cache_.find(key);
      if (it != pe_cache_.end()) return it->second;
    }
    auto pe = std::make_shared<const tensor::Tensor>(
        graph::SinusoidalEncoding(g.depths, options_.dagt_dim));
    std::lock_guard<std::mutex> lock(pe_mutex_);
    if (pe_cache_.size() >= kPeCacheCapacity) pe_cache_.clear();
    return pe_cache_.try_emplace(key, std::move(pe)).first->second;
  }

  static constexpr std::size_t kPeCacheCapacity = 1024;

  PredictorOptions options_;
  util::Rng rng_;
  nn::Linear input_proj_;
  std::vector<std::unique_ptr<nn::DagTransformerLayer>> layers_;
  std::unique_ptr<nn::Mlp> head_;
  std::mutex pe_mutex_;
  std::unordered_map<std::uint64_t, std::shared_ptr<const tensor::Tensor>> pe_cache_;
};

/// GCN baseline (paper §VII-D): stacked GcnConv + ReLU, add pool, MLP head.
class GcnPredictor final : public StagePredictor {
 public:
  explicit GcnPredictor(const PredictorOptions& options) : rng_(options.seed) {
    std::int64_t in = options.feature_dim;
    for (std::int64_t i = 0; i < options.gcn_layers; ++i) {
      layers_.push_back(std::make_unique<nn::GcnConv>(in, options.gcn_dim, rng_));
      in = options.gcn_dim;
    }
    head_ = std::make_unique<nn::Mlp>(std::vector<std::int64_t>{in, in / 2, 1}, rng_);
  }

  Variable Forward(const graph::EncodedGraph& g) override {
    Variable h(g.features);
    for (const auto& layer : layers_) {
      h = autograd::Relu(layer->Forward(h, g.adj_norm, g.adj_norm_t));
    }
    return head_->Forward(autograd::GlobalAddPool(h));
  }

  float InferScalar(const graph::EncodedGraph& g, nn::InferenceContext& ctx) override {
    if (compile::CompileEnabled()) {
      float y = 0.0f;
      if (TryInferCompiled(g, &y)) return y;
    }
    ctx.BeginForward();
    tensor::ConstMat h = nn::infer::View(g.features);
    for (const auto& layer : layers_) {
      tensor::MatRef t = layer->InferForward(h, *g.adj_norm, ctx);
      nn::infer::ReluInPlace(t);
      h = t;
    }
    const tensor::MatRef pooled = nn::infer::GlobalAddPool(ctx, h);
    return head_->InferForward(pooled, ctx).data[0];
  }

  std::string Name() const override { return "GCN"; }

  std::shared_ptr<compile::InferProgram> BuildProgram(
      const graph::EncodedGraph& g) const override {
    if (layers_.empty()) return nullptr;
    const std::int64_t feature_dim = layers_.front()->Projection().InFeatures();
    if (g.num_nodes <= 0 || g.features.rank() != 2 || g.features.dim(1) != feature_dim ||
        g.adj_norm == nullptr) {
      return nullptr;
    }
    compile::ProgramBuilder b(g.num_nodes, static_cast<std::int64_t>(g.edge_src.size()),
                              feature_dim);
    compile::ValueId h =
        b.Input(compile::External::kFeatures, g.num_nodes, feature_dim);
    for (const auto& layer : layers_) {
      const compile::ValueId t = b.Linear(layer->Projection(), h);
      h = b.Spmm(t);
      b.Relu(h);
    }
    compile::ValueId t = b.Pool(h);
    const std::vector<nn::Linear>& head_layers = head_->Layers();
    for (std::size_t i = 0; i < head_layers.size(); ++i) {
      t = b.Linear(head_layers[i], t);
      if (i + 1 < head_layers.size()) b.Relu(t);
    }
    return b.Finish(t);
  }

  std::vector<Variable*> Parameters() override {
    std::vector<Variable*> out;
    for (const auto& layer : layers_) {
      for (auto* p : layer->Parameters()) out.push_back(p);
    }
    for (auto* p : head_->Parameters()) out.push_back(p);
    return out;
  }

  std::vector<nn::NamedParameter> NamedParameters() override {
    std::vector<nn::NamedParameter> out;
    for (std::size_t i = 0; i < layers_.size(); ++i) {
      nn::AppendNamedParameters(out, "layers." + std::to_string(i), *layers_[i]);
    }
    nn::AppendNamedParameters(out, "head", *head_);
    return out;
  }

 private:
  util::Rng rng_;
  std::vector<std::unique_ptr<nn::GcnConv>> layers_;
  std::unique_ptr<nn::Mlp> head_;
};

/// GAT baseline (paper §VII-D): stacked GatConv + ReLU, add pool, MLP head.
class GatPredictor final : public StagePredictor {
 public:
  explicit GatPredictor(const PredictorOptions& options) : rng_(options.seed) {
    std::int64_t in = options.feature_dim;
    for (std::int64_t i = 0; i < options.gat_layers; ++i) {
      layers_.push_back(std::make_unique<nn::GatConv>(in, options.gat_dim, rng_));
      in = options.gat_dim;
    }
    head_ = std::make_unique<nn::Mlp>(std::vector<std::int64_t>{in, in, 1}, rng_);
  }

  Variable Forward(const graph::EncodedGraph& g) override {
    Variable h(g.features);
    for (const auto& layer : layers_) {
      h = autograd::Relu(layer->Forward(h, g.edge_src, g.edge_dst));
    }
    return head_->Forward(autograd::GlobalAddPool(h));
  }

  float InferScalar(const graph::EncodedGraph& g, nn::InferenceContext& ctx) override {
    if (compile::CompileEnabled()) {
      float y = 0.0f;
      if (TryInferCompiled(g, &y)) return y;
    }
    ctx.BeginForward();
    tensor::ConstMat h = nn::infer::View(g.features);
    for (const auto& layer : layers_) {
      tensor::MatRef t = layer->InferForward(h, g.edge_src, g.edge_dst, ctx);
      nn::infer::ReluInPlace(t);
      h = t;
    }
    const tensor::MatRef pooled = nn::infer::GlobalAddPool(ctx, h);
    return head_->InferForward(pooled, ctx).data[0];
  }

  std::string Name() const override { return "GAT"; }

  std::shared_ptr<compile::InferProgram> BuildProgram(
      const graph::EncodedGraph& g) const override {
    if (layers_.empty()) return nullptr;
    const std::int64_t feature_dim = layers_.front()->Projection().InFeatures();
    if (g.num_nodes <= 0 || g.features.rank() != 2 || g.features.dim(1) != feature_dim ||
        g.edge_src.size() != g.edge_dst.size()) {
      return nullptr;
    }
    compile::ProgramBuilder b(g.num_nodes, static_cast<std::int64_t>(g.edge_src.size()),
                              feature_dim);
    compile::ValueId h =
        b.Input(compile::External::kFeatures, g.num_nodes, feature_dim);
    for (const auto& layer : layers_) {
      const compile::ValueId proj = b.Linear(layer->Projection(), h);
      const compile::ValueId src_scores = b.MatVec(proj, layer->AttnSrc());
      const compile::ValueId dst_scores = b.MatVec(proj, layer->AttnDst());
      const compile::ValueId e = b.EdgeScores(src_scores, dst_scores);
      b.LeakyRelu(e, layer->NegativeSlope());
      const compile::ValueId alpha = b.SegmentSoftmax(e);
      const compile::ValueId messages = b.GatherRows(proj, /*by_dst=*/false);
      b.RowScale(messages, alpha);
      const compile::ValueId agg = b.SegmentSum(messages);
      b.AddRowVector(agg, layer->BiasVar());
      b.Relu(agg);
      h = agg;
    }
    compile::ValueId t = b.Pool(h);
    const std::vector<nn::Linear>& head_layers = head_->Layers();
    for (std::size_t i = 0; i < head_layers.size(); ++i) {
      t = b.Linear(head_layers[i], t);
      if (i + 1 < head_layers.size()) b.Relu(t);
    }
    return b.Finish(t);
  }

  std::vector<Variable*> Parameters() override {
    std::vector<Variable*> out;
    for (const auto& layer : layers_) {
      for (auto* p : layer->Parameters()) out.push_back(p);
    }
    for (auto* p : head_->Parameters()) out.push_back(p);
    return out;
  }

  std::vector<nn::NamedParameter> NamedParameters() override {
    std::vector<nn::NamedParameter> out;
    for (std::size_t i = 0; i < layers_.size(); ++i) {
      nn::AppendNamedParameters(out, "layers." + std::to_string(i), *layers_[i]);
    }
    nn::AppendNamedParameters(out, "head", *head_);
    return out;
  }

 private:
  util::Rng rng_;
  std::vector<std::unique_ptr<nn::GatConv>> layers_;
  std::unique_ptr<nn::Mlp> head_;
};

}  // namespace

std::unique_ptr<StagePredictor> MakePredictor(PredictorKind kind,
                                              const PredictorOptions& options) {
  if (options.feature_dim <= 0) {
    throw std::invalid_argument("MakePredictor: feature_dim must be set");
  }
  switch (kind) {
    case PredictorKind::kDagTransformer:
      return std::make_unique<DagTransformerPredictor>(options);
    case PredictorKind::kGcn:
      return std::make_unique<GcnPredictor>(options);
    case PredictorKind::kGat:
      return std::make_unique<GatPredictor>(options);
  }
  throw std::invalid_argument("MakePredictor: unknown kind");
}

namespace {

template <typename T>
void WritePod(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
T ReadPod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof value);
  if (!in) throw fault::CorruptionError("predictor checkpoint: truncated stream");
  return value;
}

void WriteOptions(std::ostream& out, const PredictorOptions& o) {
  for (const std::int64_t v : {o.feature_dim, o.dagt_dim, o.dagt_layers, o.dagt_heads,
                               o.dagt_ffn_mult, o.gcn_dim, o.gcn_layers, o.gat_dim,
                               o.gat_layers}) {
    WritePod<std::int64_t>(out, v);
  }
  WritePod<std::uint8_t>(out, o.use_dagra ? 1 : 0);
  WritePod<std::uint8_t>(out, o.use_dagpe ? 1 : 0);
  WritePod<std::uint64_t>(out, o.seed);
}

PredictorOptions ReadOptions(std::istream& in) {
  PredictorOptions o;
  for (std::int64_t* field : {&o.feature_dim, &o.dagt_dim, &o.dagt_layers, &o.dagt_heads,
                              &o.dagt_ffn_mult, &o.gcn_dim, &o.gcn_layers, &o.gat_dim,
                              &o.gat_layers}) {
    *field = ReadPod<std::int64_t>(in);
  }
  o.use_dagra = ReadPod<std::uint8_t>(in) != 0;
  o.use_dagpe = ReadPod<std::uint8_t>(in) != 0;
  o.seed = ReadPod<std::uint64_t>(in);
  return o;
}

}  // namespace

void SavePredictor(std::ostream& out, PredictorKind kind, const PredictorOptions& options,
                   StagePredictor& model) {
  WritePod<std::int32_t>(out, static_cast<std::int32_t>(kind));
  WriteOptions(out, options);
  nn::WriteStateDict(out, model);
}

LoadedPredictor LoadPredictor(std::istream& in) {
  const auto tag = ReadPod<std::int32_t>(in);
  if (tag < 0 || tag > static_cast<std::int32_t>(PredictorKind::kGat)) {
    throw fault::CorruptionError("predictor checkpoint: unknown model kind tag " +
                             std::to_string(tag));
  }
  LoadedPredictor loaded;
  loaded.kind = static_cast<PredictorKind>(tag);
  loaded.options = ReadOptions(in);
  if (loaded.options.feature_dim <= 0 || loaded.options.feature_dim > (1 << 20)) {
    throw fault::CorruptionError("predictor checkpoint: implausible feature_dim");
  }
  loaded.model = MakePredictor(loaded.kind, loaded.options);
  nn::ReadStateDict(in, *loaded.model);
  return loaded;
}

}  // namespace predtop::core

#include "core/plan_search.h"

#include <cmath>
#include <stdexcept>

#include "ir/stages.h"
#include "nn/trainer.h"
#include "util/logging.h"
#include "util/timer.h"

namespace predtop::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::pair<std::int32_t, std::int32_t> SliceKey(ir::StageSlice slice) {
  return {slice.first_layer, slice.last_layer};
}

}  // namespace

const char* PlanApproachName(PlanApproach approach) noexcept {
  switch (approach) {
    case PlanApproach::kFullProfiling: return "Alpa full profiling";
    case PlanApproach::kPartialProfiling: return "Alpa partial profiling";
    case PlanApproach::kPredTopDagTransformer: return "PredTOP (DAG Transformer)";
    case PlanApproach::kPredTopGcn: return "PredTOP (GCN)";
    case PlanApproach::kPredTopGat: return "PredTOP (GAT)";
  }
  return "?";
}

PlanSearch::PlanSearch(BenchmarkModel benchmark, sim::ClusterSpec cluster,
                       PlanSearchConfig config)
    : benchmark_(std::move(benchmark)), cluster_(std::move(cluster)), config_(config) {
  config_.predictor.feature_dim = StageFeatureDim();
  meshes_ = sim::PaperMeshes(cluster_);
  compilers_.reserve(meshes_.size());
  for (const sim::Mesh mesh : meshes_) {
    compilers_.push_back(std::make_unique<parallel::IntraOpCompiler>(cluster_, mesh));
  }
}

std::int32_t PlanSearch::EffectiveMaxSpan() const noexcept {
  return config_.max_span > 0 ? config_.max_span : benchmark_.num_layers;
}

const ir::StageProgram& PlanSearch::ProgramFor(ir::StageSlice slice) {
  const auto key = SliceKey(slice);
  auto it = program_cache_.find(key);
  if (it == program_cache_.end()) {
    it = program_cache_.emplace(key, benchmark_.build_stage(slice)).first;
  }
  return it->second;
}

const graph::EncodedGraph& PlanSearch::EncodedFor(ir::StageSlice slice) {
  const auto key = SliceKey(slice);
  auto it = encoded_cache_.find(key);
  if (it == encoded_cache_.end()) {
    it = encoded_cache_.emplace(key, EncodeStage(ProgramFor(slice))).first;
  }
  return it->second;
}

parallel::StageLatencyResult PlanSearch::TrueStageLatency(ir::StageSlice slice, sim::Mesh mesh) {
  std::int32_t mesh_index = -1;
  for (std::size_t m = 0; m < meshes_.size(); ++m) {
    if (meshes_[m] == mesh) mesh_index = static_cast<std::int32_t>(m);
  }
  if (mesh_index < 0) throw std::invalid_argument("TrueStageLatency: unknown mesh");
  const auto key = std::make_tuple(slice.first_layer, slice.last_layer, mesh_index);
  auto it = truth_cache_.find(key);
  if (it == truth_cache_.end()) {
    const auto configs = parallel::PaperConfigs(mesh);
    const parallel::StagePlan plan =
        compilers_[static_cast<std::size_t>(mesh_index)]->CompileBest(ProgramFor(slice), configs);
    it = truth_cache_.emplace(key, parallel::StageLatencyResult{plan.latency_s, plan.config})
             .first;
  }
  return it->second;
}

PlanSearchResult PlanSearch::Run(PlanApproach approach) {
  switch (approach) {
    case PlanApproach::kFullProfiling:
    case PlanApproach::kPartialProfiling:
      return RunProfiling(approach);
    default:
      return RunPredTop(approach);
  }
}

PlanSearchResult PlanSearch::RunProfiling(PlanApproach approach) {
  PlanSearchResult result;
  result.approach = approach;
  sim::Profiler profiler(config_.profiler, config_.seed ^ 0xf00dULL);
  const std::int32_t max_span = EffectiveMaxSpan();
  const double total_devices = cluster_.TotalDevices();
  const bool partial = approach == PlanApproach::kPartialProfiling;

  const parallel::StageLatencyOracle oracle = [&](ir::StageSlice slice, sim::Mesh mesh) {
    if (slice.NumLayers() > max_span) return parallel::StageLatencyResult{kInf, {}};
    if (partial) {
      // Vanilla Alpa's heuristic: only profile stages whose share of the
      // model roughly matches the mesh's share of the cluster.
      const double layer_share =
          static_cast<double>(slice.NumLayers()) / benchmark_.num_layers;
      const double device_share = mesh.NumDevices() / total_devices;
      if (std::fabs(layer_share - device_share) > config_.partial_profiling_tolerance) {
        return parallel::StageLatencyResult{kInf, {}};
      }
    }
    const parallel::StageLatencyResult truth = TrueStageLatency(slice, mesh);
    if (!std::isfinite(truth.latency_s)) return parallel::StageLatencyResult{kInf, {}};
    const double measured =
        profiler.ProfileStage(truth.latency_s, ProgramFor(slice).NumEquations());
    return parallel::StageLatencyResult{measured, truth.config};
  };

  const parallel::InterOpOptimizer optimizer = MakeOptimizer();
  result.plan = optimizer.Optimize(oracle);
  result.plan_true_latency_s = optimizer.EvaluatePlan(
      result.plan, [&](ir::StageSlice s, sim::Mesh m) { return TrueStageLatency(s, m); });
  result.profiling_cost_s = profiler.TotalCostSeconds();
  result.optimization_cost_s = result.profiling_cost_s;
  result.stages_profiled = profiler.StagesProfiled();
  return result;
}

TrainedMeshPredictors PlanSearch::TrainPredictors(PredictorKind kind) {
  TrainedMeshPredictors trained;
  sim::Profiler profiler(config_.profiler, config_.seed ^ 0xbeefULL);
  const std::int32_t max_span = EffectiveMaxSpan();
  const auto all_slices = ir::EnumerateStageSlices(benchmark_.num_layers, max_span);
  const auto sample_count = static_cast<std::size_t>(
      std::ceil(config_.sample_fraction * static_cast<double>(all_slices.size())));

  trained.per_mesh.reserve(meshes_.size());
  for (std::size_t m = 0; m < meshes_.size(); ++m) {
    const auto configs = parallel::PaperConfigs(meshes_[m]);
    DatasetBuildConfig build;
    build.num_samples = sample_count;
    build.max_span = max_span;
    build.sample_seed = config_.seed + 31 * m;
    const StageDataset dataset = BuildStageDatasetBestConfig(
        benchmark_, *compilers_[m], configs, profiler, build);
    if (dataset.Size() < 4) {
      throw std::runtime_error("PlanSearch: not enough feasible stages to train on");
    }
    util::Rng split_rng(config_.seed + 977 * m);
    const double train_fraction = 1.0 - config_.val_fraction;
    const nn::DataSplit split =
        nn::SplitDataset(dataset.Size(), train_fraction, config_.val_fraction, split_rng);

    auto regressor =
        std::make_shared<LatencyRegressor>(kind, config_.predictor, config_.transform);
    util::Stopwatch train_watch;
    regressor->Fit(dataset, split.train, split.validation, config_.train);
    trained.training_wall_s += train_watch.ElapsedSeconds();
    trained.per_mesh.push_back(std::move(regressor));
  }
  trained.profiling_cost_s = profiler.TotalCostSeconds();
  trained.stages_profiled = profiler.StagesProfiled();
  return trained;
}

PlanSearchResult PlanSearch::RunPredTop(PlanApproach approach) {
  PlanSearchResult result;
  result.approach = approach;
  PredictorKind kind = PredictorKind::kDagTransformer;
  if (approach == PlanApproach::kPredTopGcn) kind = PredictorKind::kGcn;
  if (approach == PlanApproach::kPredTopGat) kind = PredictorKind::kGat;

  const std::int32_t max_span = EffectiveMaxSpan();
  const auto all_slices = ir::EnumerateStageSlices(benchmark_.num_layers, max_span);

  // Phase 1 + 2 per mesh: profile a sampled subset, train a regressor.
  // Phase 3: predict the optimal latency of every candidate stage.
  const TrainedMeshPredictors trained = TrainPredictors(kind);
  result.training_wall_s = trained.training_wall_s;

  std::vector<std::vector<double>> predicted(meshes_.size());
  for (std::size_t m = 0; m < meshes_.size(); ++m) {
    util::Stopwatch infer_watch;
    predicted[m].assign(all_slices.size(), kInf);
    for (std::size_t s = 0; s < all_slices.size(); ++s) {
      predicted[m][s] = trained.per_mesh[m]->PredictSeconds(EncodedFor(all_slices[s]));
    }
    result.inference_wall_s += infer_watch.ElapsedSeconds();
  }

  // Index predictions by slice for the oracle.
  std::map<std::pair<std::int32_t, std::int32_t>, std::size_t> slice_index;
  for (std::size_t s = 0; s < all_slices.size(); ++s) {
    slice_index[SliceKey(all_slices[s])] = s;
  }
  const parallel::StageLatencyOracle oracle = [&](ir::StageSlice slice, sim::Mesh mesh) {
    const auto it = slice_index.find(SliceKey(slice));
    if (it == slice_index.end()) return parallel::StageLatencyResult{kInf, {}};
    for (std::size_t m = 0; m < meshes_.size(); ++m) {
      if (meshes_[m] == mesh) {
        return parallel::StageLatencyResult{predicted[m][it->second], {}};
      }
    }
    return parallel::StageLatencyResult{kInf, {}};
  };

  const parallel::InterOpOptimizer optimizer = MakeOptimizer();
  result.plan = optimizer.Optimize(oracle);
  // The deployed system compiles the chosen stages for real; recover each
  // stage's actual config and latency from the ground-truth compiler.
  for (auto& stage : result.plan.stages) {
    const parallel::StageLatencyResult truth = TrueStageLatency(stage.slice, stage.mesh);
    stage.config = truth.config;
  }
  result.plan_true_latency_s = optimizer.EvaluatePlan(
      result.plan, [&](ir::StageSlice s, sim::Mesh m) { return TrueStageLatency(s, m); });
  result.profiling_cost_s = trained.profiling_cost_s;
  result.stages_profiled = trained.stages_profiled;
  result.optimization_cost_s =
      result.profiling_cost_s + result.training_wall_s + result.inference_wall_s;
  return result;
}

parallel::InterOpOptimizer PlanSearch::MakeOptimizer() const {
  parallel::InterOpOptions options;
  options.num_layers = benchmark_.num_layers;
  options.num_microbatches = config_.num_microbatches;
  options.submeshes = meshes_;
  return parallel::InterOpOptimizer(cluster_, options);
}

}  // namespace predtop::core

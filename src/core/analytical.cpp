#include "core/analytical.h"

#include <algorithm>

#include "sim/cost_model.h"

namespace predtop::core {

AnalyticalEstimator::AnalyticalEstimator(sim::DeviceSpec device,
                                         parallel::ParallelConfig config,
                                         double assumed_efficiency) noexcept
    : device_(std::move(device)), config_(config), efficiency_(assumed_efficiency) {}

double AnalyticalEstimator::EstimateStageSeconds(const ir::StageProgram& program) const {
  const double devices = config_.Degree();
  double total = 0.0;
  for (const ir::Equation& eqn : program.equations()) {
    const ir::TensorSpec& result = program.value(eqn.result).spec;
    const double peak =
        (result.dtype == ir::DType::kF16 || result.dtype == ir::DType::kBF16)
            ? device_.peak_tflops_f16 * 1e12
            : device_.peak_tflops_f32 * 1e12;
    const double compute_s =
        static_cast<double>(ir::EquationFlops(program, eqn)) / (peak * efficiency_);
    const double memory_s =
        static_cast<double>(ir::EquationBytes(program, eqn)) / (device_.hbm_gbps * 1e9);
    // Assume perfect strong scaling over all devices of the configuration —
    // the kind of optimistic simplification analytical models make.
    total += sim::OpCostModel::TrainingFactor(eqn.op) * std::max(compute_s, memory_s) / devices;
  }
  return total;
}

}  // namespace predtop::core

#pragma once
// LatencyRegressor: a StagePredictor plus target normalization and the
// training protocol of paper §IV-B (MAE loss, Adam with cosine decay, early
// stopping). Targets default to linear space scaled by the training-set mean
// — the paper regresses raw latency with MAE, and linear targets match the
// additive inductive bias of global-add pooling (pooled features grow with
// graph size the same way latency does). A standardized-log transform is
// available as an ablation.

#include <iosfwd>
#include <memory>
#include <span>
#include <vector>

#include "core/dataset.h"
#include "core/predictors.h"
#include "nn/trainer.h"

namespace predtop::core {

enum class TargetTransform { kLinearMeanScaled, kLogStandardized };

class LatencyRegressor {
 public:
  LatencyRegressor(PredictorKind kind, PredictorOptions options,
                   TargetTransform transform = TargetTransform::kLinearMeanScaled);

  /// Train on `train_indices` (early-stopping on `val_indices`), fitting the
  /// target normalization to the training labels.
  nn::TrainResult Fit(const StageDataset& dataset, std::span<const std::size_t> train_indices,
                      std::span<const std::size_t> val_indices,
                      const nn::TrainConfig& train_config);

  /// Predicted stage latency in seconds. Runs the tape-free fast path
  /// (per-thread arena, cached packed weights) unless PREDTOP_FAST_INFER=0;
  /// both paths share the same kernels, so results are bit-identical.
  [[nodiscard]] double PredictSeconds(const graph::EncodedGraph& g);

  /// Reference prediction through the autograd tape (always available; used
  /// by parity tests and benchmarks as the baseline).
  [[nodiscard]] double PredictSecondsTape(const graph::EncodedGraph& g);

  /// Fast-path predictions for a batch of graphs. Groups the batch by shape
  /// class ((num_nodes, num_edges)) and runs each same-shape group through
  /// the compiled batch executor — program, weight snapshot, and plan
  /// resolved once per group (see compile::ExecuteBatch) — falling back to
  /// per-graph PredictSeconds when a group is not compilable or the batch
  /// path is disabled (PREDTOP_BATCH_COMPILE=0). Results are bit-identical
  /// to calling PredictSeconds per graph either way.
  [[nodiscard]] std::vector<double> PredictBatch(std::span<const graph::EncodedGraph> graphs);
  /// Pointer-span overload (predtop::serve batches deduplicated queries that
  /// are not contiguous in memory).
  [[nodiscard]] std::vector<double> PredictBatch(
      std::span<const graph::EncodedGraph* const> graphs);

  /// Mean relative error (%) vs the samples' true latencies (paper Eqn. 5).
  [[nodiscard]] double MrePercent(const StageDataset& dataset,
                                  std::span<const std::size_t> indices);

  /// Whether the tape-free fast path is active (PREDTOP_FAST_INFER, default
  /// on). Exposed so serving layers can gate batch routing on it: the
  /// compiled batch executor only engages on the fast path.
  [[nodiscard]] static bool FastInferActive() noexcept;

  [[nodiscard]] PredictorKind Kind() const noexcept { return kind_; }
  [[nodiscard]] StagePredictor& Model() noexcept { return *model_; }
  [[nodiscard]] TargetTransform Transform() const noexcept { return transform_; }

  /// Persist the trained predictor as a versioned `.ptck` checkpoint —
  /// magic, format version, length-prefixed payload (model-kind tag,
  /// architecture options, target transform + normalization stats,
  /// named-parameter state dict) and a CRC32 footer — so one
  /// profiling+training pass serves many plan searches and a reload in a
  /// fresh process reproduces bit-identical predictions. The file overload
  /// saves atomically (write temp, then rename). Load throws
  /// fault::CorruptionError (a std::runtime_error) on bad magic, unsupported
  /// version, truncation, CRC mismatch, hostile length prefixes, or
  /// weight-name/shape mismatches, and fault::IoError on open/read failures
  /// (including injected ckpt_read/ckpt_write faults).
  void Save(std::ostream& out);
  void Save(const std::string& path);
  [[nodiscard]] static LatencyRegressor Load(std::istream& in);
  [[nodiscard]] static LatencyRegressor Load(const std::string& path);

 private:
  [[nodiscard]] float Normalize(double latency_s) const noexcept;
  [[nodiscard]] double Denormalize(float normalized) const noexcept;

  PredictorKind kind_;
  PredictorOptions options_;
  std::unique_ptr<StagePredictor> model_;
  TargetTransform transform_;
  double scale_ = 1.0;     // linear transform: mean of training labels
  double log_mean_ = 0.0;  // log transform parameters
  double log_std_ = 1.0;
};

}  // namespace predtop::core

#pragma once
// Paleo-style analytical baseline (paper §IX "white-box operator-based
// modeling"): estimate stage latency as the sum of per-operator roofline
// costs from published device specs — no profiling, no learning. It knows
// nothing about kernel fusion, quantization quirks, scheduling overlap or
// the parallel configuration's collectives, which is exactly the gap the
// paper's black-box predictors close; tests and the ablation bench quantify
// it against the trained models.

#include "ir/program.h"
#include "parallel/config.h"
#include "sim/cluster.h"

namespace predtop::core {

class AnalyticalEstimator {
 public:
  /// `assumed_efficiency` is the flat utilization factor applied to peak
  /// FLOPs (Paleo's "platform percent of peak").
  AnalyticalEstimator(sim::DeviceSpec device, parallel::ParallelConfig config,
                      double assumed_efficiency = 0.5) noexcept;

  /// Naive roofline sum over all equations of a training iteration.
  [[nodiscard]] double EstimateStageSeconds(const ir::StageProgram& program) const;

 private:
  sim::DeviceSpec device_;
  parallel::ParallelConfig config_;
  double efficiency_;
};

}  // namespace predtop::core

#pragma once
// The black-box stage-latency predictor zoo (paper §IV + §VII-D): the DAG
// Transformer model and the GCN / GAT baselines, behind one interface so the
// training and evaluation harnesses are architecture-agnostic.

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "graph/encode.h"
#include "nn/dag_transformer.h"
#include "nn/infer.h"
#include "nn/gat.h"
#include "nn/gcn.h"
#include "nn/linear.h"

namespace predtop::core {

enum class PredictorKind { kDagTransformer, kGcn, kGat };
[[nodiscard]] const char* PredictorKindName(PredictorKind kind) noexcept;

struct PredictorOptions {
  /// Input feature width (graph::NodeFeatureWidth of the IR vocabularies).
  std::int64_t feature_dim = 0;
  /// DAG Transformer: paper §IV-B6 uses 4 layers of dim 64.
  std::int64_t dagt_dim = 64;
  std::int64_t dagt_layers = 4;
  std::int64_t dagt_heads = 4;
  std::int64_t dagt_ffn_mult = 2;
  /// GCN baseline: paper §VII-D uses 6 layers of 256.
  std::int64_t gcn_dim = 256;
  std::int64_t gcn_layers = 6;
  /// GAT baseline: paper §VII-D uses 6 layers of hidden 32.
  std::int64_t gat_dim = 32;
  std::int64_t gat_layers = 6;
  /// Ablations (paper's DAG-specific biases).
  bool use_dagra = true;  // reachability attention mask
  bool use_dagpe = true;  // depth positional encoding
  std::uint64_t seed = 0x12345ULL;
};

/// A graph-in, scalar-out regressor over encoded stage DAGs.
class StagePredictor : public nn::Module {
 public:
  /// Prediction in normalized target space, shape (1, 1).
  [[nodiscard]] virtual autograd::Variable Forward(const graph::EncodedGraph& g) = 0;

  /// Tape-free prediction (same normalized scalar as Forward) running on
  /// ctx's arena with cached packed weights and fingerprint-keyed per-graph
  /// encodings. Mirrors Forward's kernels exactly; safe to call from many
  /// threads concurrently (one ctx per thread), but not concurrently with
  /// parameter mutation. The base implementation falls back to the autograd
  /// tape so predictors without a fast path stay correct.
  [[nodiscard]] virtual float InferScalar(const graph::EncodedGraph& g,
                                          nn::InferenceContext& ctx);

  [[nodiscard]] virtual std::string Name() const = 0;
};

[[nodiscard]] std::unique_ptr<StagePredictor> MakePredictor(PredictorKind kind,
                                                            const PredictorOptions& options);

// ---- predictor checkpoint section (the payload of *.ptck files) ----
//
// Layout: kind tag (i32), PredictorOptions, named-parameter state dict.
// The loader reconstructs the architecture from (kind, options) and then
// restores weights by name, so a load into the wrong architecture is
// rejected instead of silently misassigning tensors. Framing (magic,
// format version, normalization stats) is added by the callers
// (core::LatencyRegressor, predtop::serve).

/// Serialize a trained predictor (architecture tag + options + weights).
void SavePredictor(std::ostream& out, PredictorKind kind, const PredictorOptions& options,
                   StagePredictor& model);

struct LoadedPredictor {
  PredictorKind kind{};
  PredictorOptions options;
  std::unique_ptr<StagePredictor> model;
};

/// Rebuild a predictor from a checkpoint section written by SavePredictor.
/// Throws std::runtime_error on truncation, unknown kind, or weight-name /
/// shape mismatches.
[[nodiscard]] LoadedPredictor LoadPredictor(std::istream& in);

}  // namespace predtop::core

#pragma once
// The black-box stage-latency predictor zoo (paper §IV + §VII-D): the DAG
// Transformer model and the GCN / GAT baselines, behind one interface so the
// training and evaluation harnesses are architecture-agnostic.

#include <cstdint>
#include <memory>
#include <string>

#include "graph/encode.h"
#include "nn/dag_transformer.h"
#include "nn/gat.h"
#include "nn/gcn.h"
#include "nn/linear.h"

namespace predtop::core {

enum class PredictorKind { kDagTransformer, kGcn, kGat };
[[nodiscard]] const char* PredictorKindName(PredictorKind kind) noexcept;

struct PredictorOptions {
  /// Input feature width (graph::NodeFeatureWidth of the IR vocabularies).
  std::int64_t feature_dim = 0;
  /// DAG Transformer: paper §IV-B6 uses 4 layers of dim 64.
  std::int64_t dagt_dim = 64;
  std::int64_t dagt_layers = 4;
  std::int64_t dagt_heads = 4;
  std::int64_t dagt_ffn_mult = 2;
  /// GCN baseline: paper §VII-D uses 6 layers of 256.
  std::int64_t gcn_dim = 256;
  std::int64_t gcn_layers = 6;
  /// GAT baseline: paper §VII-D uses 6 layers of hidden 32.
  std::int64_t gat_dim = 32;
  std::int64_t gat_layers = 6;
  /// Ablations (paper's DAG-specific biases).
  bool use_dagra = true;  // reachability attention mask
  bool use_dagpe = true;  // depth positional encoding
  std::uint64_t seed = 0x12345ULL;
};

/// A graph-in, scalar-out regressor over encoded stage DAGs.
class StagePredictor : public nn::Module {
 public:
  /// Prediction in normalized target space, shape (1, 1).
  [[nodiscard]] virtual autograd::Variable Forward(const graph::EncodedGraph& g) = 0;
  [[nodiscard]] virtual std::string Name() const = 0;
};

[[nodiscard]] std::unique_ptr<StagePredictor> MakePredictor(PredictorKind kind,
                                                            const PredictorOptions& options);

}  // namespace predtop::core

#pragma once
// The black-box stage-latency predictor zoo (paper §IV + §VII-D): the DAG
// Transformer model and the GCN / GAT baselines, behind one interface so the
// training and evaluation harnesses are architecture-agnostic.

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "compile/batch.h"
#include "compile/cache.h"
#include "compile/program.h"
#include "graph/encode.h"
#include "nn/dag_transformer.h"
#include "nn/infer.h"
#include "nn/gat.h"
#include "nn/gcn.h"
#include "nn/linear.h"

namespace predtop::core {

enum class PredictorKind { kDagTransformer, kGcn, kGat };
[[nodiscard]] const char* PredictorKindName(PredictorKind kind) noexcept;

struct PredictorOptions {
  /// Input feature width (graph::NodeFeatureWidth of the IR vocabularies).
  std::int64_t feature_dim = 0;
  /// DAG Transformer: paper §IV-B6 uses 4 layers of dim 64.
  std::int64_t dagt_dim = 64;
  std::int64_t dagt_layers = 4;
  std::int64_t dagt_heads = 4;
  std::int64_t dagt_ffn_mult = 2;
  /// GCN baseline: paper §VII-D uses 6 layers of 256.
  std::int64_t gcn_dim = 256;
  std::int64_t gcn_layers = 6;
  /// GAT baseline: paper §VII-D uses 6 layers of hidden 32.
  std::int64_t gat_dim = 32;
  std::int64_t gat_layers = 6;
  /// Ablations (paper's DAG-specific biases).
  bool use_dagra = true;  // reachability attention mask
  bool use_dagpe = true;  // depth positional encoding
  std::uint64_t seed = 0x12345ULL;
};

/// A graph-in, scalar-out regressor over encoded stage DAGs.
class StagePredictor : public nn::Module {
 public:
  /// Evicts this instance's compiled programs from the global cache, so a
  /// hot-swapped model releases both the programs and the packed-weight
  /// snapshots they pin (the registry-swap leak fix).
  ~StagePredictor() override;

  /// Prediction in normalized target space, shape (1, 1).
  [[nodiscard]] virtual autograd::Variable Forward(const graph::EncodedGraph& g) = 0;

  /// Tape-free prediction (same normalized scalar as Forward) running on
  /// ctx's arena with cached packed weights and fingerprint-keyed per-graph
  /// encodings. Mirrors Forward's kernels exactly; safe to call from many
  /// threads concurrently (one ctx per thread), but not concurrently with
  /// parameter mutation. The base implementation falls back to the autograd
  /// tape so predictors without a fast path stay correct. Concrete
  /// predictors first try the compiled program for g's shape class (see
  /// compile::InferProgram) unless PREDTOP_COMPILE disables it.
  [[nodiscard]] virtual float InferScalar(const graph::EncodedGraph& g,
                                          nn::InferenceContext& ctx);

  [[nodiscard]] virtual std::string Name() const = 0;

  /// Program-cache owner key of this instance.
  [[nodiscard]] std::uint64_t InstanceId() const noexcept { return instance_id_; }

  /// Compiled batch execution: run `count` graphs of ONE shape class (same
  /// (num_nodes, num_edges) — the caller groups) through this instance's
  /// program for that shape, writing one normalized scalar per graph.
  /// Resolves the program, weight snapshot, and plan once for the whole
  /// batch; results are bit-identical to `count` TryInferCompiled calls.
  /// False = not compiled / shape mismatch: the caller falls back to
  /// sequential prediction.
  [[nodiscard]] bool TryInferCompiledBatch(const graph::EncodedGraph* const* graphs,
                                           std::size_t count, float* out,
                                           const compile::BatchOptions& opts = {});

 protected:
  /// Compiled program for g's shape class: LRU-cached globally, recorded via
  /// BuildProgram on a miss (null results are cached too, so uncompilable
  /// shapes pay the builder once). nullptr = fall back to the op-by-op path.
  [[nodiscard]] std::shared_ptr<compile::InferProgram> CachedProgram(
      const graph::EncodedGraph& g);

  /// Record this predictor's forward as a compilable program; base: none.
  [[nodiscard]] virtual std::shared_ptr<compile::InferProgram> BuildProgram(
      const graph::EncodedGraph& g) const {
    (void)g;
    return nullptr;
  }

  /// Execute the compiled program for g, writing the normalized prediction
  /// to *out. False = not compiled / shape mismatch: fall back. Externals
  /// come from FillExecInputs, so both this and the batch path see the same
  /// predictor-specific inputs.
  [[nodiscard]] bool TryInferCompiled(const graph::EncodedGraph& g, float* out);

  /// Resolve g's execution inputs for the compiled path. Overrides supply
  /// predictor-specific externals (DAGRA mask, depth encodings); `keepalive`
  /// pins any cached tensor the inputs point into for the call's duration.
  /// Base: just the graph.
  virtual void FillExecInputs(const graph::EncodedGraph& g, compile::ExecInputs& inputs,
                              std::shared_ptr<const tensor::Tensor>& keepalive);

 private:
  std::uint64_t instance_id_ = compile::NextOwnerId();
};

[[nodiscard]] std::unique_ptr<StagePredictor> MakePredictor(PredictorKind kind,
                                                            const PredictorOptions& options);

// ---- predictor checkpoint section (the payload of *.ptck files) ----
//
// Layout: kind tag (i32), PredictorOptions, named-parameter state dict.
// The loader reconstructs the architecture from (kind, options) and then
// restores weights by name, so a load into the wrong architecture is
// rejected instead of silently misassigning tensors. Framing (magic,
// format version, normalization stats) is added by the callers
// (core::LatencyRegressor, predtop::serve).

/// Serialize a trained predictor (architecture tag + options + weights).
void SavePredictor(std::ostream& out, PredictorKind kind, const PredictorOptions& options,
                   StagePredictor& model);

struct LoadedPredictor {
  PredictorKind kind{};
  PredictorOptions options;
  std::unique_ptr<StagePredictor> model;
};

/// Rebuild a predictor from a checkpoint section written by SavePredictor.
/// Throws std::runtime_error on truncation, unknown kind, or weight-name /
/// shape mismatches.
[[nodiscard]] LoadedPredictor LoadPredictor(std::istream& in);

}  // namespace predtop::core

#include "core/dataset.h"

#include <cmath>

#include "ir/stages.h"
#include "ir/to_dag.h"
#include "util/logging.h"

namespace predtop::core {

BenchmarkModel Gpt3Benchmark(ir::Gpt3Config config) {
  BenchmarkModel model;
  model.name = "GPT-3";
  model.num_layers = static_cast<std::int32_t>(config.num_layers);
  model.build_stage = [config](ir::StageSlice slice) { return ir::BuildGpt3Stage(config, slice); };
  return model;
}

BenchmarkModel MoeBenchmark(ir::MoeConfig config) {
  BenchmarkModel model;
  model.name = "MoE";
  model.num_layers = static_cast<std::int32_t>(config.num_layers);
  model.build_stage = [config](ir::StageSlice slice) { return ir::BuildMoeStage(config, slice); };
  return model;
}

graph::EncodedGraph EncodeStage(const ir::StageProgram& program) {
  return graph::EncodeGraph(ir::BuildPrunedOpDag(program), ir::kNumOpTypes, ir::kNumDTypes);
}

std::int64_t StageFeatureDim() noexcept {
  return graph::NodeFeatureWidth(ir::kNumOpTypes, ir::kNumDTypes);
}

namespace {

/// Shared builder: `compile` maps a stage program to its (possibly +inf)
/// latency label.
StageDataset BuildDatasetImpl(
    const BenchmarkModel& benchmark, sim::Profiler& profiler, const DatasetBuildConfig& build,
    const std::function<double(const ir::StageProgram&)>& compile) {
  const std::int32_t max_span =
      build.max_span > 0 ? build.max_span : benchmark.num_layers;
  const auto all = ir::EnumerateStageSlices(benchmark.num_layers, max_span);
  util::Rng rng(build.sample_seed);
  const auto selected = build.num_samples > 0
                            ? ir::SampleStageSlices(all, build.num_samples, rng)
                            : all;

  StageDataset dataset;
  dataset.samples.reserve(selected.size());
  for (const ir::StageSlice slice : selected) {
    const ir::StageProgram program = benchmark.build_stage(slice);
    const double latency = compile(program);
    if (!std::isfinite(latency)) {
      PREDTOP_LOG_DEBUG << "skipping " << program.name << ": out of device memory";
      continue;
    }
    StageSample sample;
    sample.slice = slice;
    sample.name = program.name;
    sample.num_equations = program.NumEquations();
    sample.true_latency_s = latency;
    sample.measured_latency_s =
        static_cast<float>(profiler.ProfileStage(latency, program.NumEquations()));
    sample.encoded = EncodeStage(program);
    dataset.labels.push_back(sample.measured_latency_s);
    dataset.samples.push_back(std::move(sample));
  }
  return dataset;
}

}  // namespace

StageDataset BuildStageDataset(const BenchmarkModel& benchmark,
                               const parallel::IntraOpCompiler& compiler,
                               parallel::ParallelConfig config, sim::Profiler& profiler,
                               const DatasetBuildConfig& build) {
  return BuildDatasetImpl(benchmark, profiler, build, [&](const ir::StageProgram& program) {
    return compiler.Compile(program, config).latency_s;
  });
}

StageDataset BuildStageDatasetBestConfig(const BenchmarkModel& benchmark,
                                         const parallel::IntraOpCompiler& compiler,
                                         std::span<const parallel::ParallelConfig> configs,
                                         sim::Profiler& profiler,
                                         const DatasetBuildConfig& build) {
  return BuildDatasetImpl(benchmark, profiler, build, [&](const ir::StageProgram& program) {
    return compiler.CompileBest(program, configs).latency_s;
  });
}

}  // namespace predtop::core

#pragma once
// Profiling-phase dataset construction (paper §VI phase 1): sample stages of
// different sizes, run the intra-stage compiler to obtain each stage's
// optimal parallel latency on the target mesh, profile it (noisily, with
// cost charged to the ledger), and encode the pruned operator DAG as
// predictor input.

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "graph/encode.h"
#include "ir/models.h"
#include "parallel/intra_op.h"
#include "sim/profiler.h"

namespace predtop::core {

/// A benchmark model the workflow slices into stages (GPT-3 or MoE).
struct BenchmarkModel {
  std::string name;
  std::int32_t num_layers = 0;
  std::function<ir::StageProgram(ir::StageSlice)> build_stage;
};

[[nodiscard]] BenchmarkModel Gpt3Benchmark(ir::Gpt3Config config = {});
[[nodiscard]] BenchmarkModel MoeBenchmark(ir::MoeConfig config = {});

struct StageSample {
  ir::StageSlice slice;
  std::string name;
  graph::EncodedGraph encoded;
  std::int64_t num_equations = 0;
  /// Noiseless simulated optimal intra-stage latency (evaluation ground truth).
  double true_latency_s = 0.0;
  /// Noisy profiled latency (the training label, paper §IV-B1).
  float measured_latency_s = 0.0f;
};

struct StageDataset {
  std::vector<StageSample> samples;
  /// Training targets: measured latencies, parallel to `samples`.
  std::vector<float> labels;

  [[nodiscard]] std::size_t Size() const noexcept { return samples.size(); }
};

struct DatasetBuildConfig {
  /// Number of stages to sample (0 = all enumerable stages).
  std::size_t num_samples = 0;
  /// Bound on stage span in layers (0 = unbounded). Lets small machines cap
  /// graph sizes; the paper's grid uses unbounded spans.
  std::int32_t max_span = 0;
  std::uint64_t sample_seed = 0xda7aULL;
};

/// Build the dataset for one (benchmark, mesh, parallel-config) scenario.
/// Every profiled stage charges compile + measurement cost to `profiler`.
/// Stages that do not fit in device memory are skipped.
[[nodiscard]] StageDataset BuildStageDataset(const BenchmarkModel& benchmark,
                                             const parallel::IntraOpCompiler& compiler,
                                             parallel::ParallelConfig config,
                                             sim::Profiler& profiler,
                                             const DatasetBuildConfig& build);

/// As above, but each stage's label is its latency under the *best* paper
/// configuration for the mesh — the "optimal intra-stage execution latency"
/// PredTOP's plan-search predictor regresses (paper §III).
[[nodiscard]] StageDataset BuildStageDatasetBestConfig(
    const BenchmarkModel& benchmark, const parallel::IntraOpCompiler& compiler,
    std::span<const parallel::ParallelConfig> configs, sim::Profiler& profiler,
    const DatasetBuildConfig& build);

/// Encode one stage program into a predictor input (pruned DAG -> features).
[[nodiscard]] graph::EncodedGraph EncodeStage(const ir::StageProgram& program);

/// Feature width the predictors must be configured with.
[[nodiscard]] std::int64_t StageFeatureDim() noexcept;

}  // namespace predtop::core

#pragma once
// The plan-search use case (paper §VIII-B, Fig. 10): generate an optimal
// pipeline-parallel execution plan for a benchmark model on a cluster, with
// stage latencies supplied by one of five approaches —
//   1. full profiling            (vanilla Alpa)
//   2. partial profiling         (vanilla Alpa's stage-imbalance heuristic)
//   3-5. PredTOP with a DAG Transformer / GCN / GAT stage predictor.
// Each run reports the chosen plan's ground-truth iteration latency and the
// optimization cost: modeled profiling cost (compile + measure on the
// simulated cluster) plus measured wall time for predictor training and
// inference.

#include <map>
#include <memory>

#include "core/regressor.h"
#include "parallel/inter_op.h"

namespace predtop::core {

enum class PlanApproach {
  kFullProfiling,
  kPartialProfiling,
  kPredTopDagTransformer,
  kPredTopGcn,
  kPredTopGat,
};
[[nodiscard]] const char* PlanApproachName(PlanApproach approach) noexcept;

struct PlanSearchConfig {
  std::int32_t num_microbatches = 8;
  /// Fraction of enumerable stages profiled per mesh to train PredTOP.
  double sample_fraction = 0.15;
  double val_fraction = 0.10;
  /// Bound on stage span in layers (0 = unbounded).
  std::int32_t max_span = 0;
  /// Vanilla Alpa partial profiling: skip stages whose layer share deviates
  /// from the mesh's device share by more than this tolerance.
  double partial_profiling_tolerance = 0.35;
  nn::TrainConfig train;
  PredictorOptions predictor;  // feature_dim is filled automatically
  TargetTransform transform = TargetTransform::kLinearMeanScaled;
  sim::ProfilerConfig profiler;
  std::uint64_t seed = 0x91aULL;
};

struct PlanSearchResult {
  PlanApproach approach{};
  parallel::PipelinePlan plan;
  /// Plan scored under the noiseless ground-truth oracle.
  double plan_true_latency_s = 0.0;
  /// Total optimization cost and its breakdown.
  double optimization_cost_s = 0.0;
  double profiling_cost_s = 0.0;
  double training_wall_s = 0.0;
  double inference_wall_s = 0.0;
  std::int64_t stages_profiled = 0;
};

/// Per-mesh predictors trained by one profiling+training pass (paper §VI
/// phases 1+2), plus the cost ledger of producing them. The regressors are
/// shared_ptr so callers can hand them to a serving registry without
/// retraining.
struct TrainedMeshPredictors {
  std::vector<std::shared_ptr<LatencyRegressor>> per_mesh;  // parallel to Meshes()
  double profiling_cost_s = 0.0;
  double training_wall_s = 0.0;
  std::int64_t stages_profiled = 0;
};

class PlanSearch {
 public:
  PlanSearch(BenchmarkModel benchmark, sim::ClusterSpec cluster, PlanSearchConfig config);

  [[nodiscard]] PlanSearchResult Run(PlanApproach approach);

  /// Phases 1+2 only: profile a sampled stage subset per mesh and train one
  /// regressor per mesh. Exposed so a serving layer can checkpoint/register
  /// the trained predictors and drive phase 3 through a PredictionService.
  [[nodiscard]] TrainedMeshPredictors TrainPredictors(PredictorKind kind);

  /// Noiseless optimal intra-stage latency of (slice, mesh) — the scoring
  /// oracle (memoized).
  [[nodiscard]] parallel::StageLatencyResult TrueStageLatency(ir::StageSlice slice,
                                                              sim::Mesh mesh);

  [[nodiscard]] const BenchmarkModel& Benchmark() const noexcept { return benchmark_; }
  [[nodiscard]] const std::vector<sim::Mesh>& Meshes() const noexcept { return meshes_; }
  [[nodiscard]] const PlanSearchConfig& Config() const noexcept { return config_; }
  [[nodiscard]] std::int32_t EffectiveMaxSpan() const noexcept;

  /// Stage program / encoded predictor input of a slice (memoized — shared
  /// by the plan-search oracles and the serving integration).
  [[nodiscard]] const ir::StageProgram& ProgramFor(ir::StageSlice slice);
  [[nodiscard]] const graph::EncodedGraph& EncodedFor(ir::StageSlice slice);

  /// Build the inter-op optimizer this search's plans are produced with.
  [[nodiscard]] parallel::InterOpOptimizer MakeOptimizer() const;

 private:
  [[nodiscard]] PlanSearchResult RunProfiling(PlanApproach approach);
  [[nodiscard]] PlanSearchResult RunPredTop(PlanApproach approach);

  BenchmarkModel benchmark_;
  sim::ClusterSpec cluster_;
  PlanSearchConfig config_;
  std::vector<sim::Mesh> meshes_;
  std::vector<std::unique_ptr<parallel::IntraOpCompiler>> compilers_;  // per mesh
  std::map<std::pair<std::int32_t, std::int32_t>, ir::StageProgram> program_cache_;
  std::map<std::pair<std::int32_t, std::int32_t>, graph::EncodedGraph> encoded_cache_;
  /// (slice key, mesh index) -> true latency result.
  std::map<std::tuple<std::int32_t, std::int32_t, std::int32_t>, parallel::StageLatencyResult>
      truth_cache_;
};

}  // namespace predtop::core

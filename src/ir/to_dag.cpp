#include "ir/to_dag.h"

#include <algorithm>

#include "graph/prune.h"

namespace predtop::ir {

namespace {

graph::DagNode MakeNode(graph::NodeKind kind, OpType op, const TensorSpec& spec) {
  graph::DagNode node;
  node.kind = kind;
  node.op_type = static_cast<std::int32_t>(op);
  node.dtype = static_cast<std::int32_t>(spec.dtype);
  node.out_dims = {1, 1, 1, 1};
  // Right-align trailing dims into the fixed feature slots; fold any leading
  // overflow into slot 0 so the element count is preserved.
  const std::size_t rank = spec.dims.size();
  if (rank <= graph::kMaxFeatureDims) {
    for (std::size_t i = 0; i < rank; ++i) {
      node.out_dims[graph::kMaxFeatureDims - rank + i] = spec.dims[i];
    }
  } else {
    const std::size_t overflow = rank - graph::kMaxFeatureDims;
    for (std::size_t i = 0; i <= overflow; ++i) node.out_dims[0] *= spec.dims[i];
    for (std::size_t i = 1; i < graph::kMaxFeatureDims; ++i) {
      node.out_dims[i] = spec.dims[overflow + i];
    }
  }
  return node;
}

}  // namespace

graph::OpDag BuildOpDag(const StageProgram& program) {
  graph::OpDag dag;
  std::vector<std::int32_t> value_node(static_cast<std::size_t>(program.NumValues()), -1);

  for (ValueId v = 0; v < program.NumValues(); ++v) {
    const Value& value = program.value(v);
    switch (value.kind) {
      case ValueKind::kInput:
        value_node[static_cast<std::size_t>(v)] =
            dag.AddNode(MakeNode(graph::NodeKind::kInput, OpType::kNone, value.spec));
        break;
      case ValueKind::kLiteral:
        value_node[static_cast<std::size_t>(v)] =
            dag.AddNode(MakeNode(graph::NodeKind::kLiteral, OpType::kNone, value.spec));
        break;
      case ValueKind::kEquationResult: {
        const Equation& eqn =
            program.equations()[static_cast<std::size_t>(value.defining_equation)];
        const std::int32_t node =
            dag.AddNode(MakeNode(graph::NodeKind::kOperator, eqn.op, value.spec));
        value_node[static_cast<std::size_t>(v)] = node;
        for (const ValueId operand : eqn.operands) {
          dag.AddEdge(value_node[static_cast<std::size_t>(operand)], node);
        }
        break;
      }
    }
  }
  for (const ValueId out : program.outputs()) {
    const std::int32_t marker =
        dag.AddNode(MakeNode(graph::NodeKind::kOutput, OpType::kNone, program.value(out).spec));
    dag.AddEdge(value_node[static_cast<std::size_t>(out)], marker);
  }
  return dag;
}

graph::OpDag BuildPrunedOpDag(const StageProgram& program) {
  const graph::OpDag raw = BuildOpDag(program);
  auto result = graph::PruneDag(raw, [](const graph::DagNode& node) {
    return node.kind == graph::NodeKind::kOperator &&
           IsPrunableOp(static_cast<OpType>(node.op_type));
  });
  return std::move(result.dag);
}

}  // namespace predtop::ir

#include "ir/program.h"

#include <stdexcept>

namespace predtop::ir {

ValueId StageProgram::AddInput(TensorSpec spec) {
  values_.push_back({std::move(spec), ValueKind::kInput, -1});
  return static_cast<ValueId>(values_.size() - 1);
}

ValueId StageProgram::AddLiteral(TensorSpec spec) {
  values_.push_back({std::move(spec), ValueKind::kLiteral, -1});
  return static_cast<ValueId>(values_.size() - 1);
}

ValueId StageProgram::AddEquation(OpType op, std::vector<ValueId> operands, TensorSpec result,
                                  std::int64_t contraction_dim) {
  for (const ValueId v : operands) {
    if (v < 0 || v >= NumValues()) {
      throw std::out_of_range("StageProgram::AddEquation: operand id out of range");
    }
  }
  values_.push_back({std::move(result), ValueKind::kEquationResult,
                     static_cast<std::int32_t>(equations_.size())});
  const auto result_id = static_cast<ValueId>(values_.size() - 1);
  equations_.push_back({op, std::move(operands), result_id, contraction_dim});
  return result_id;
}

void StageProgram::MarkOutput(ValueId id) {
  if (id < 0 || id >= NumValues()) {
    throw std::out_of_range("StageProgram::MarkOutput: id out of range");
  }
  outputs_.push_back(id);
}

std::int64_t StageProgram::LiteralBytes() const noexcept {
  std::int64_t total = 0;
  for (const Value& v : values_) {
    if (v.kind == ValueKind::kLiteral) total += v.spec.Bytes();
  }
  return total;
}

std::int64_t EquationFlops(const StageProgram& program, const Equation& eqn) {
  const TensorSpec& result = program.value(eqn.result).spec;
  const std::int64_t out_elems = result.NumElements();
  switch (eqn.op) {
    case OpType::kDot:
    case OpType::kBatchedDot:
    case OpType::kConv2d:  // contraction_dim carries K*K*Cin
      // 2 * output elements * contraction size (multiply + add).
      return 2 * out_elems * std::max<std::int64_t>(1, eqn.contraction_dim);
    case OpType::kGelu:
    case OpType::kTanh:
    case OpType::kExp:
    case OpType::kRsqrt:
      return 8 * out_elems;  // transcendental cost factor
    case OpType::kSoftmaxXent:
      return 10 * out_elems;
    case OpType::kReduceSum:
    case OpType::kReduceMax: {
      std::int64_t in_elems = 0;
      for (const ValueId v : eqn.operands) in_elems += program.value(v).spec.NumElements();
      return in_elems;
    }
    case OpType::kAdd:
    case OpType::kSub:
    case OpType::kMul:
    case OpType::kDiv:
    case OpType::kMax:
    case OpType::kTopK:
    case OpType::kOneHot:
      return out_elems;
    case OpType::kTranspose:
    case OpType::kReshape:
    case OpType::kBroadcast:
    case OpType::kConvert:
    case OpType::kGather:
    case OpType::kNone:
      return 0;  // data movement only
  }
  return 0;
}

std::int64_t EquationBytes(const StageProgram& program, const Equation& eqn) {
  std::int64_t total = program.value(eqn.result).spec.Bytes();
  for (const ValueId v : eqn.operands) total += program.value(v).spec.Bytes();
  return total;
}

std::int64_t TotalFlops(const StageProgram& program) {
  std::int64_t total = 0;
  for (const Equation& eqn : program.equations()) total += EquationFlops(program, eqn);
  return total;
}

}  // namespace predtop::ir

#include "ir/models.h"

#include <sstream>
#include <stdexcept>

#include "ir/builder_common.h"

namespace predtop::ir {

namespace {

void ValidateSlice(StageSlice slice, std::int64_t num_layers) {
  if (slice.first_layer < 0 || slice.last_layer > num_layers ||
      slice.first_layer >= slice.last_layer) {
    throw std::invalid_argument("StageSlice: invalid layer range");
  }
}

/// Embedding prologue: token gather + positional add, with a convert node
/// (f32 master embedding cast to the compute dtype) for pruning to remove.
ValueId EmbeddingPrologue(GraphBuilder& gb, std::int64_t b, std::int64_t s, std::int64_t h,
                          std::int64_t vocab) {
  auto& p = gb.program();
  const ValueId tokens = p.AddInput({DType::kI32, {b, s}});
  const ValueId table = p.AddLiteral({DType::kF32, {vocab, h}});
  const ValueId gathered = p.AddEquation(OpType::kGather, {table, tokens}, {DType::kF32, {b, s, h}});
  const ValueId casted = gb.Convert(gathered, gb.dtype());
  const ValueId pos = p.AddLiteral({gb.dtype(), {s, h}});
  return p.AddEquation(OpType::kAdd, {casted, pos}, {gb.dtype(), {b, s, h}});
}

/// LM-head epilogue: final norm, vocabulary projection, fused softmax +
/// cross-entropy against the labels.
ValueId LmHeadEpilogue(GraphBuilder& gb, ValueId x, std::int64_t b, std::int64_t s,
                       std::int64_t h, std::int64_t vocab) {
  auto& p = gb.program();
  const ValueId normed = gb.LayerNorm(x, b, s, h);
  const ValueId proj = p.AddLiteral({gb.dtype(), {h, vocab}});
  const ValueId logits =
      p.AddEquation(OpType::kDot, {normed, proj}, {gb.dtype(), {b, s, vocab}}, h);
  const ValueId labels = p.AddInput({DType::kI32, {b, s}});
  const ValueId logits32 = gb.Convert(logits, DType::kF32);
  return p.AddEquation(OpType::kSoftmaxXent, {logits32, labels}, {DType::kF32, {b, s}});
}

/// Multi-head self-attention block (pre-LN) shared by both models.
ValueId AttentionBlock(GraphBuilder& gb, ValueId x, std::int64_t b, std::int64_t s,
                       std::int64_t h, std::int64_t heads) {
  auto& p = gb.program();
  const std::int64_t dh = h / heads;
  const ValueId normed = gb.LayerNorm(x, b, s, h);
  const ValueId q = gb.Linear(normed, b, s, h, h);
  const ValueId k = gb.Linear(normed, b, s, h, h);
  const ValueId v = gb.Linear(normed, b, s, h, h);
  const ValueId qh = gb.Reshape(q, {b, heads, s, dh});
  const ValueId kh = gb.Reshape(k, {b, heads, s, dh});
  const ValueId vh = gb.Reshape(v, {b, heads, s, dh});
  const ValueId scores =
      p.AddEquation(OpType::kBatchedDot, {qh, kh}, {gb.dtype(), {b, heads, s, s}}, dh);
  const ValueId scale = p.AddLiteral({gb.dtype(), {}});
  const ValueId scaled =
      p.AddEquation(OpType::kMul, {scores, scale}, {gb.dtype(), {b, heads, s, s}});
  const ValueId probs = gb.Softmax(scaled);
  const ValueId context =
      p.AddEquation(OpType::kBatchedDot, {probs, vh}, {gb.dtype(), {b, heads, s, dh}}, s);
  const ValueId merged = gb.Reshape(context, {b, s, h});
  const ValueId out = gb.Linear(merged, b, s, h, h);
  return gb.Residual(x, out);
}

/// Dense feed-forward block (pre-LN).
ValueId DenseFfnBlock(GraphBuilder& gb, ValueId x, std::int64_t b, std::int64_t s,
                      std::int64_t h, std::int64_t ffn_hidden) {
  const ValueId normed = gb.LayerNorm(x, b, s, h);
  const ValueId up = gb.Linear(normed, b, s, h, ffn_hidden);
  const ValueId act = gb.Gelu(up);
  const ValueId down = gb.Linear(act, b, s, ffn_hidden, h);
  return gb.Residual(x, down);
}

/// GShard-style MoE feed-forward: gate softmax + top-k routing, dispatch to
/// experts, per-expert FFN, weighted combine.
ValueId MoeFfnBlock(GraphBuilder& gb, ValueId x, const MoeConfig& cfg, std::int64_t b,
                    std::int64_t s) {
  auto& p = gb.program();
  const std::int64_t h = cfg.hidden;
  const std::int64_t e = cfg.num_experts;
  const std::int64_t capacity = (b * s * cfg.capacity_factor_x100) / (100 * e);
  const ValueId normed = gb.LayerNorm(x, b, s, h);
  // Gating network.
  const ValueId gate_w = p.AddLiteral({gb.dtype(), {h, e}});
  const ValueId gate_logits =
      p.AddEquation(OpType::kDot, {normed, gate_w}, {gb.dtype(), {b, s, e}}, h);
  const ValueId gate_probs = gb.Softmax(gate_logits);
  const ValueId top = p.AddEquation(OpType::kTopK, {gate_probs}, {gb.dtype(), {b, s, 2}});
  const ValueId mask = p.AddEquation(OpType::kOneHot, {top}, {gb.dtype(), {b, s, e}});
  // Dispatch tokens to expert buffers.
  const ValueId dispatch =
      p.AddEquation(OpType::kBatchedDot, {mask, normed}, {gb.dtype(), {e, capacity, h}}, b * s);
  // Per-expert FFN (weights stacked across experts).
  const ValueId w_up = p.AddLiteral({gb.dtype(), {e, h, cfg.expert_hidden}});
  const ValueId up = p.AddEquation(OpType::kBatchedDot, {dispatch, w_up},
                                   {gb.dtype(), {e, capacity, cfg.expert_hidden}}, h);
  const ValueId act = gb.Gelu(up);
  const ValueId w_down = p.AddLiteral({gb.dtype(), {e, cfg.expert_hidden, h}});
  const ValueId down = p.AddEquation(OpType::kBatchedDot, {act, w_down},
                                     {gb.dtype(), {e, capacity, h}}, cfg.expert_hidden);
  // Combine expert outputs back to token order, weighted by gate scores.
  const ValueId combined =
      p.AddEquation(OpType::kBatchedDot, {mask, down}, {gb.dtype(), {b, s, h}}, e * capacity);
  const ValueId weighted = p.AddEquation(OpType::kMul, {combined, gate_probs},
                                         {gb.dtype(), {b, s, h}});
  return gb.Residual(x, weighted);
}

}  // namespace

StageProgram BuildGpt3Stage(const Gpt3Config& config, StageSlice slice) {
  ValidateSlice(slice, config.num_layers);
  StageProgram program;
  program.name = StageName("gpt3", slice, static_cast<std::int32_t>(config.num_layers));
  program.first_layer = slice.first_layer;
  program.last_layer = slice.last_layer;
  program.has_embedding = slice.first_layer == 0;
  program.has_lm_head = slice.last_layer == config.num_layers;
  program.microbatch = config.microbatch;

  GraphBuilder gb(program);
  const std::int64_t b = config.microbatch, s = config.seq_len, h = config.hidden;
  ValueId x = program.has_embedding
                  ? EmbeddingPrologue(gb, b, s, h, config.vocab)
                  : program.AddInput({gb.dtype(), {b, s, h}});
  for (std::int32_t layer = slice.first_layer; layer < slice.last_layer; ++layer) {
    x = AttentionBlock(gb, x, b, s, h, config.num_heads);
    x = DenseFfnBlock(gb, x, b, s, h, config.ffn_mult * h);
  }
  if (program.has_lm_head) {
    x = LmHeadEpilogue(gb, x, b, s, h, config.vocab);
  }
  program.MarkOutput(x);
  return program;
}

StageProgram BuildMoeStage(const MoeConfig& config, StageSlice slice) {
  ValidateSlice(slice, config.num_layers);
  StageProgram program;
  program.name = StageName("moe", slice, static_cast<std::int32_t>(config.num_layers));
  program.first_layer = slice.first_layer;
  program.last_layer = slice.last_layer;
  program.has_embedding = slice.first_layer == 0;
  program.has_lm_head = slice.last_layer == config.num_layers;
  program.microbatch = config.microbatch;

  GraphBuilder gb(program);
  const std::int64_t b = config.microbatch, s = config.seq_len, h = config.hidden;
  ValueId x = program.has_embedding
                  ? EmbeddingPrologue(gb, b, s, h, config.vocab)
                  : program.AddInput({gb.dtype(), {b, s, h}});
  for (std::int32_t layer = slice.first_layer; layer < slice.last_layer; ++layer) {
    x = AttentionBlock(gb, x, b, s, h, config.num_heads);
    // GShard alternates dense and MoE feed-forward layers.
    if (layer % 2 == 1) {
      x = MoeFfnBlock(gb, x, config, b, s);
    } else {
      x = DenseFfnBlock(gb, x, b, s, h, 4 * h);
    }
  }
  if (program.has_lm_head) {
    x = LmHeadEpilogue(gb, x, b, s, h, config.vocab);
  }
  program.MarkOutput(x);
  return program;
}

std::string StageName(const std::string& model, StageSlice slice, std::int32_t num_layers) {
  std::ostringstream os;
  os << model << '[' << slice.first_layer << ',' << slice.last_layer << ')';
  if (slice.first_layer == 0) os << "+embed";
  if (slice.last_layer == num_layers) os << "+head";
  return os.str();
}

}  // namespace predtop::ir

#pragma once
// Bridge from the IR to the predictor-facing graph representation (paper
// §IV-B2/§IV-B4): one DAG node per input/literal value and per equation,
// plus explicit output nodes, then optional pruning of shape-only ops.

#include "graph/op_dag.h"
#include "ir/program.h"

namespace predtop::ir {

/// Convert a stage program into an operator DAG carrying the Tbl. I node
/// features. Nodes: inputs and literals (kind input/literal, op "none"),
/// one node per equation (kind operator), and one output node per program
/// output.
[[nodiscard]] graph::OpDag BuildOpDag(const StageProgram& program);

/// BuildOpDag followed by pruning of reshape / broadcast /
/// convert_element_type nodes (paper §IV-B4).
[[nodiscard]] graph::OpDag BuildPrunedOpDag(const StageProgram& program);

}  // namespace predtop::ir

#include "ir/stages.h"

#include <algorithm>
#include <map>

namespace predtop::ir {

std::vector<StageSlice> EnumerateStageSlices(std::int32_t num_layers) {
  return EnumerateStageSlices(num_layers, num_layers);
}

std::vector<StageSlice> EnumerateStageSlices(std::int32_t num_layers, std::int32_t max_span) {
  std::vector<StageSlice> out;
  for (std::int32_t i = 0; i < num_layers; ++i) {
    for (std::int32_t j = i + 1; j <= num_layers && j - i <= max_span; ++j) {
      out.push_back({i, j});
    }
  }
  return out;
}

std::vector<StageSlice> SampleStageSlices(const std::vector<StageSlice>& all, std::size_t count,
                                          util::Rng& rng) {
  if (count >= all.size()) return all;
  // Group by span, then round-robin draw from spans so small and large
  // stages are all represented.
  std::map<std::int32_t, std::vector<StageSlice>> by_span;
  for (const StageSlice& s : all) by_span[s.NumLayers()].push_back(s);
  for (auto& [span, slices] : by_span) {
    rng.Shuffle(std::span<StageSlice>(slices));
  }
  std::vector<StageSlice> out;
  out.reserve(count);
  std::size_t round = 0;
  while (out.size() < count) {
    bool drew_any = false;
    for (auto& [span, slices] : by_span) {
      if (round < slices.size()) {
        out.push_back(slices[round]);
        drew_any = true;
        if (out.size() == count) break;
      }
    }
    if (!drew_any) break;
    ++round;
  }
  return out;
}

}  // namespace predtop::ir

#pragma once
// Activation liveness analysis over a stage program: a value is live from
// its definition (or program start for inputs/literals) until its last use.
// Peak live bytes drives the memory-feasibility check of the intra-operator
// compiler and supports what-if memory questions (can this stage ever fit on
// a 24 GiB device under any sharding?).

#include <cstdint>
#include <vector>

#include "ir/program.h"

namespace predtop::ir {

struct LiveInterval {
  /// Equation indices [def, last_use]; -1 def means live from entry
  /// (inputs / literals).
  std::int32_t def = -1;
  std::int32_t last_use = -1;
};

/// One interval per value (values never used have last_use = def).
[[nodiscard]] std::vector<LiveInterval> ComputeLiveIntervals(const StageProgram& program);

/// Peak bytes of simultaneously live *activation* values (equation results
/// and inputs; literals are resident weights accounted separately), swept
/// over equation boundaries.
[[nodiscard]] std::int64_t PeakActivationBytes(const StageProgram& program);

}  // namespace predtop::ir

#pragma once
// Core types of the Jaxpr-like tensor-level IR. A stage of a DL model is a
// StageProgram: a list of single-result equations over typed tensor values,
// mirroring how JAX's jaxpr represents DL computations (paper §IV-B2).

#include <cstdint>
#include <string>
#include <vector>

namespace predtop::ir {

enum class DType : std::int32_t { kF32 = 0, kF16, kBF16, kI32, kBool };
inline constexpr std::int32_t kNumDTypes = 5;

[[nodiscard]] std::int64_t DTypeBytes(DType dtype) noexcept;
[[nodiscard]] const char* DTypeName(DType dtype) noexcept;

/// Tensor-level operator vocabulary (a pragmatic subset of XLA/jaxpr
/// primitives plus a few composites that keep graphs tractable).
enum class OpType : std::int32_t {
  kNone = 0,       // non-operator nodes (inputs / literals / outputs)
  kDot,            // 2-D matmul
  kBatchedDot,     // batched matmul (attention scores / context)
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMax,            // elementwise max (ReLU against a literal)
  kExp,
  kRsqrt,
  kTanh,
  kGelu,           // composite activation
  kReduceSum,
  kReduceMax,
  kTranspose,
  kReshape,        // prunable
  kBroadcast,      // prunable
  kConvert,        // convert_element_type, prunable
  kGather,         // embedding lookup / MoE dispatch select
  kTopK,           // MoE gating
  kOneHot,         // MoE dispatch mask
  kSoftmaxXent,    // composite LM-head loss
  kConv2d,         // 2-D convolution (CNN extension benchmark)
};
inline constexpr std::int32_t kNumOpTypes = 23;

[[nodiscard]] const char* OpTypeName(OpType op) noexcept;

/// True for shape-only ops removed by graph pruning (paper §IV-B4).
[[nodiscard]] bool IsPrunableOp(OpType op) noexcept;

struct TensorSpec {
  DType dtype = DType::kF32;
  std::vector<std::int64_t> dims;

  [[nodiscard]] std::int64_t NumElements() const noexcept {
    std::int64_t n = 1;
    for (const std::int64_t d : dims) n *= d;
    return dims.empty() ? 1 : n;
  }
  [[nodiscard]] std::int64_t Bytes() const noexcept { return NumElements() * DTypeBytes(dtype); }
  [[nodiscard]] std::string ToString() const;

  bool operator==(const TensorSpec&) const = default;
};

}  // namespace predtop::ir

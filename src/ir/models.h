#pragma once
// Benchmark model builders (paper Tbl. IV): GPT-3 (1.3B configuration) and
// GShard MoE (alternating dense / mixture-of-experts layers). Each builder
// emits the forward tensor-level program of a contiguous stage — a layer
// range plus optional embedding prologue and LM-head epilogue — which is
// exactly what Alpa's inter-operator pass enumerates as pipeline-stage
// candidates.

#include <cstdint>
#include <string>

#include "ir/program.h"

namespace predtop::ir {

struct Gpt3Config {
  std::int64_t seq_len = 1024;
  std::int64_t hidden = 2048;
  std::int64_t num_layers = 24;
  std::int64_t num_heads = 32;
  std::int64_t vocab = 51200;
  std::int64_t ffn_mult = 4;
  std::int64_t microbatch = 8;  // per-microbatch rows fed through the stage
};

struct MoeConfig {
  std::int64_t seq_len = 1024;
  std::int64_t hidden = 768;
  std::int64_t num_layers = 32;
  std::int64_t num_heads = 16;
  std::int64_t vocab = 32000;
  std::int64_t num_experts = 16;
  std::int64_t expert_hidden = 2048;
  /// Expert capacity per microbatch (tokens routed to each expert).
  std::int64_t capacity_factor_x100 = 125;  // 1.25x even split
  std::int64_t microbatch = 8;
};

/// Stage identity inside a model: layers [first_layer, last_layer), with the
/// embedding prologue iff first_layer == 0 and the LM head iff last_layer ==
/// num_layers (Alpa's stage slicing convention).
struct StageSlice {
  std::int32_t first_layer = 0;
  std::int32_t last_layer = 0;  // exclusive

  [[nodiscard]] std::int32_t NumLayers() const noexcept { return last_layer - first_layer; }
  bool operator==(const StageSlice&) const = default;
};

[[nodiscard]] StageProgram BuildGpt3Stage(const Gpt3Config& config, StageSlice slice);
[[nodiscard]] StageProgram BuildMoeStage(const MoeConfig& config, StageSlice slice);

/// Human-readable stage name, e.g. "gpt3[4,9)+head".
[[nodiscard]] std::string StageName(const std::string& model, StageSlice slice,
                                    std::int32_t num_layers);

}  // namespace predtop::ir

#include "ir/printer.h"

#include <sstream>

namespace predtop::ir {

namespace {

std::string ValueName(ValueId id) { return "v" + std::to_string(id); }

}  // namespace

std::string PrintEquation(const StageProgram& program, const Equation& eqn) {
  std::ostringstream os;
  os << ValueName(eqn.result) << ':' << program.value(eqn.result).spec.ToString() << " = "
     << OpTypeName(eqn.op);
  for (const ValueId operand : eqn.operands) os << ' ' << ValueName(operand);
  if (eqn.contraction_dim > 0) os << "  {k=" << eqn.contraction_dim << '}';
  return os.str();
}

std::string PrintProgram(const StageProgram& program, std::int64_t max_equations) {
  std::ostringstream os;
  os << "{ lambda ;";
  bool first = true;
  for (ValueId v = 0; v < program.NumValues(); ++v) {
    if (program.value(v).kind != ValueKind::kInput) continue;
    os << (first ? " " : " ") << ValueName(v) << ':' << program.value(v).spec.ToString();
    first = false;
  }
  os << ". let\n";
  std::int64_t printed = 0;
  for (const Equation& eqn : program.equations()) {
    if (max_equations > 0 && printed >= max_equations) {
      os << "    ... (" << (program.NumEquations() - printed) << " more equations)\n";
      break;
    }
    os << "    " << PrintEquation(program, eqn) << '\n';
    ++printed;
  }
  os << "  in (";
  for (std::size_t i = 0; i < program.outputs().size(); ++i) {
    if (i) os << ", ";
    os << ValueName(program.outputs()[i]);
  }
  os << ",) }";
  if (!program.name.empty()) os << "  # " << program.name;
  os << '\n';
  return os.str();
}

}  // namespace predtop::ir

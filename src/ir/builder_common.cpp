#include "ir/builder_common.h"

namespace predtop::ir {

ValueId GraphBuilder::LayerNorm(ValueId x, std::int64_t b, std::int64_t s, std::int64_t h) {
  auto& p = program_;
  const ValueId mean = p.AddEquation(OpType::kReduceSum, {x}, Make({b, s}));
  const ValueId centered = p.AddEquation(OpType::kSub, {x, mean}, Make({b, s, h}));
  const ValueId sq = p.AddEquation(OpType::kMul, {centered, centered}, Make({b, s, h}));
  const ValueId var = p.AddEquation(OpType::kReduceSum, {sq}, Make({b, s}));
  const ValueId inv = p.AddEquation(OpType::kRsqrt, {var}, Make({b, s}));
  const ValueId normed = p.AddEquation(OpType::kMul, {centered, inv}, Make({b, s, h}));
  const ValueId gain = p.AddLiteral(Make({h}));
  const ValueId scaled = p.AddEquation(OpType::kMul, {normed, gain}, Make({b, s, h}));
  const ValueId bias = p.AddLiteral(Make({h}));
  return p.AddEquation(OpType::kAdd, {scaled, bias}, Make({b, s, h}));
}

ValueId GraphBuilder::Linear(ValueId x, std::int64_t b, std::int64_t s, std::int64_t in,
                             std::int64_t out) {
  auto& p = program_;
  const ValueId weight = p.AddLiteral(Make({in, out}));
  const ValueId y = p.AddEquation(OpType::kDot, {x, weight}, Make({b, s, out}), in);
  const ValueId bias = p.AddLiteral(Make({out}));
  return p.AddEquation(OpType::kAdd, {y, bias}, Make({b, s, out}));
}

ValueId GraphBuilder::Softmax(ValueId x) {
  auto& p = program_;
  const TensorSpec spec = SpecOf(x);
  std::vector<std::int64_t> reduced(spec.dims.begin(), spec.dims.end() - 1);
  const ValueId maxv = p.AddEquation(OpType::kReduceMax, {x}, Make(reduced));
  const ValueId shifted = p.AddEquation(OpType::kSub, {x, maxv}, Make(spec.dims));
  const ValueId ex = p.AddEquation(OpType::kExp, {shifted}, Make(spec.dims));
  const ValueId denom = p.AddEquation(OpType::kReduceSum, {ex}, Make(reduced));
  return p.AddEquation(OpType::kDiv, {ex, denom}, Make(spec.dims));
}

ValueId GraphBuilder::Gelu(ValueId x) {
  return program_.AddEquation(OpType::kGelu, {x}, SpecOf(x));
}

ValueId GraphBuilder::Residual(ValueId a, ValueId b) {
  return program_.AddEquation(OpType::kAdd, {a, b}, SpecOf(a));
}

ValueId GraphBuilder::Convert(ValueId x, DType to) {
  TensorSpec spec = SpecOf(x);
  spec.dtype = to;
  return program_.AddEquation(OpType::kConvert, {x}, std::move(spec));
}

ValueId GraphBuilder::Reshape(ValueId x, std::vector<std::int64_t> dims) {
  TensorSpec spec = SpecOf(x);
  spec.dims = std::move(dims);
  return program_.AddEquation(OpType::kReshape, {x}, std::move(spec));
}

}  // namespace predtop::ir

#pragma once
// StageProgram: the computation of one candidate pipeline stage as a list of
// tensor-level equations in SSA form (each equation defines one value).

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ir/types.h"

namespace predtop::ir {

using ValueId = std::int32_t;

enum class ValueKind : std::uint8_t { kInput = 0, kLiteral = 1, kEquationResult = 2 };

struct Value {
  TensorSpec spec;
  ValueKind kind = ValueKind::kEquationResult;
  /// Index into equations() for kEquationResult values; -1 otherwise.
  std::int32_t defining_equation = -1;
};

struct Equation {
  OpType op = OpType::kNone;
  std::vector<ValueId> operands;
  ValueId result = -1;
  /// Contraction size for dot-like ops (the K dimension); 0 otherwise.
  std::int64_t contraction_dim = 0;
};

class StageProgram {
 public:
  /// Activation tensors arriving from the previous stage / data loader.
  ValueId AddInput(TensorSpec spec);
  /// Weights and constants resident on the stage's mesh.
  ValueId AddLiteral(TensorSpec spec);
  /// Append an equation; returns the id of its result value. For dot-like
  /// ops pass the contraction (K) dimension so FLOP accounting is exact.
  ValueId AddEquation(OpType op, std::vector<ValueId> operands, TensorSpec result,
                      std::int64_t contraction_dim = 0);
  /// Mark a value as a stage output (activation handed to the next stage).
  void MarkOutput(ValueId id);

  [[nodiscard]] const std::vector<Value>& values() const noexcept { return values_; }
  [[nodiscard]] const std::vector<Equation>& equations() const noexcept { return equations_; }
  [[nodiscard]] std::span<const ValueId> outputs() const noexcept { return outputs_; }
  [[nodiscard]] const Value& value(ValueId id) const { return values_[static_cast<std::size_t>(id)]; }

  [[nodiscard]] std::int64_t NumValues() const noexcept {
    return static_cast<std::int64_t>(values_.size());
  }
  [[nodiscard]] std::int64_t NumEquations() const noexcept {
    return static_cast<std::int64_t>(equations_.size());
  }

  /// Total bytes of literal (weight) values — the stage's parameter memory.
  [[nodiscard]] std::int64_t LiteralBytes() const noexcept;

  std::string name;
  /// Descriptive metadata (used by samplers / reports).
  std::int32_t first_layer = 0;
  std::int32_t last_layer = 0;  // exclusive
  bool has_embedding = false;
  bool has_lm_head = false;
  std::int64_t microbatch = 0;

 private:
  std::vector<Value> values_;
  std::vector<Equation> equations_;
  std::vector<ValueId> outputs_;
};

/// FLOPs of one equation (forward pass; multiply-adds count as 2).
[[nodiscard]] std::int64_t EquationFlops(const StageProgram& program, const Equation& eqn);
/// Bytes moved by one equation (operands read + result written).
[[nodiscard]] std::int64_t EquationBytes(const StageProgram& program, const Equation& eqn);
/// Sum of EquationFlops over the program.
[[nodiscard]] std::int64_t TotalFlops(const StageProgram& program);

}  // namespace predtop::ir

#include "ir/types.h"

#include <sstream>

namespace predtop::ir {

std::int64_t DTypeBytes(DType dtype) noexcept {
  switch (dtype) {
    case DType::kF32: return 4;
    case DType::kF16: return 2;
    case DType::kBF16: return 2;
    case DType::kI32: return 4;
    case DType::kBool: return 1;
  }
  return 4;
}

const char* DTypeName(DType dtype) noexcept {
  switch (dtype) {
    case DType::kF32: return "f32";
    case DType::kF16: return "f16";
    case DType::kBF16: return "bf16";
    case DType::kI32: return "i32";
    case DType::kBool: return "bool";
  }
  return "?";
}

const char* OpTypeName(OpType op) noexcept {
  switch (op) {
    case OpType::kNone: return "none";
    case OpType::kDot: return "dot";
    case OpType::kBatchedDot: return "batched_dot";
    case OpType::kAdd: return "add";
    case OpType::kSub: return "sub";
    case OpType::kMul: return "mul";
    case OpType::kDiv: return "div";
    case OpType::kMax: return "max";
    case OpType::kExp: return "exp";
    case OpType::kRsqrt: return "rsqrt";
    case OpType::kTanh: return "tanh";
    case OpType::kGelu: return "gelu";
    case OpType::kReduceSum: return "reduce_sum";
    case OpType::kReduceMax: return "reduce_max";
    case OpType::kTranspose: return "transpose";
    case OpType::kReshape: return "reshape";
    case OpType::kBroadcast: return "broadcast_in_dim";
    case OpType::kConvert: return "convert_element_type";
    case OpType::kGather: return "gather";
    case OpType::kTopK: return "top_k";
    case OpType::kOneHot: return "one_hot";
    case OpType::kSoftmaxXent: return "softmax_cross_entropy";
    case OpType::kConv2d: return "conv2d";
  }
  return "?";
}

bool IsPrunableOp(OpType op) noexcept {
  return op == OpType::kReshape || op == OpType::kBroadcast || op == OpType::kConvert;
}

std::string TensorSpec::ToString() const {
  std::ostringstream os;
  os << DTypeName(dtype) << '[';
  for (std::size_t i = 0; i < dims.size(); ++i) {
    if (i) os << ',';
    os << dims[i];
  }
  os << ']';
  return os.str();
}

}  // namespace predtop::ir

#pragma once
// Human-readable rendering of a StageProgram in jaxpr-like syntax — the
// representation the paper's Fig. 5 sketches. Invaluable when debugging
// builders and sharding decisions:
//
//   { lambda ; v0:f16[8,1024,2048]. let
//       v3:f16[8,1024] = reduce_sum v0
//       v4:f16[8,1024,2048] = sub v0 v3
//       ...
//     in (v41,) }

#include <string>

#include "ir/program.h"

namespace predtop::ir {

/// Full program listing. `max_equations` truncates long programs (0 = all).
[[nodiscard]] std::string PrintProgram(const StageProgram& program,
                                       std::int64_t max_equations = 0);

/// One-line rendering of a single equation, e.g. "v7:f16[8,64] = dot v3 v6".
[[nodiscard]] std::string PrintEquation(const StageProgram& program, const Equation& eqn);

}  // namespace predtop::ir

#pragma once
// Extension benchmark beyond the paper's two models: a Wide-ResNet-style
// CNN. Its stage DAGs differ structurally from transformer stages (conv
// chains, skip connections with 1x1 projections, stage-wise downsampling),
// exercising the conv2d operator and giving the predictors out-of-family
// graphs to generalize over.

#include "ir/models.h"

namespace predtop::ir {

struct WideResNetConfig {
  std::int64_t image_size = 32;
  std::int64_t in_channels = 3;
  std::int64_t base_channels = 64;
  /// Residual blocks — the unit of pipeline-stage slicing, split into three
  /// width groups (channels x1 / x2 / x4 with spatial downsampling).
  std::int64_t num_blocks = 12;
  std::int64_t num_classes = 100;
  std::int64_t microbatch = 32;
};

/// Stage over residual blocks [slice.first_layer, slice.last_layer); the
/// stem conv attaches to block 0 and the pool + classifier head to the last
/// block (mirroring the transformer builders' convention).
[[nodiscard]] StageProgram BuildWideResNetStage(const WideResNetConfig& config,
                                                StageSlice slice);

}  // namespace predtop::ir

#include "ir/liveness.h"

#include <algorithm>

namespace predtop::ir {

std::vector<LiveInterval> ComputeLiveIntervals(const StageProgram& program) {
  std::vector<LiveInterval> intervals(static_cast<std::size_t>(program.NumValues()));
  for (ValueId v = 0; v < program.NumValues(); ++v) {
    const Value& value = program.value(v);
    intervals[static_cast<std::size_t>(v)].def = value.defining_equation;
    intervals[static_cast<std::size_t>(v)].last_use = value.defining_equation;
  }
  const auto eqn_count = static_cast<std::int32_t>(program.NumEquations());
  for (std::int32_t e = 0; e < eqn_count; ++e) {
    for (const ValueId operand : program.equations()[static_cast<std::size_t>(e)].operands) {
      auto& interval = intervals[static_cast<std::size_t>(operand)];
      interval.last_use = std::max(interval.last_use, e);
    }
  }
  // Program outputs stay live to the end of the stage.
  for (const ValueId out : program.outputs()) {
    intervals[static_cast<std::size_t>(out)].last_use = eqn_count - 1;
  }
  return intervals;
}

std::int64_t PeakActivationBytes(const StageProgram& program) {
  const auto intervals = ComputeLiveIntervals(program);
  const auto eqn_count = static_cast<std::int32_t>(program.NumEquations());
  if (eqn_count == 0) return 0;
  // Sweep: delta array of bytes becoming live / dead at each equation index.
  std::vector<std::int64_t> delta(static_cast<std::size_t>(eqn_count) + 1, 0);
  for (ValueId v = 0; v < program.NumValues(); ++v) {
    const Value& value = program.value(v);
    if (value.kind == ValueKind::kLiteral) continue;  // resident weights
    const LiveInterval& interval = intervals[static_cast<std::size_t>(v)];
    const std::int32_t start = std::max<std::int32_t>(0, interval.def);
    const std::int32_t end = std::max(interval.last_use, start);
    delta[static_cast<std::size_t>(start)] += value.spec.Bytes();
    delta[static_cast<std::size_t>(end) + 1] -= value.spec.Bytes();
  }
  std::int64_t live = 0;
  std::int64_t peak = 0;
  for (std::int32_t e = 0; e < eqn_count; ++e) {
    live += delta[static_cast<std::size_t>(e)];
    peak = std::max(peak, live);
  }
  return peak;
}

}  // namespace predtop::ir

#pragma once
// Shared building blocks for emitting transformer stage programs: layer
// norm, linear projections, and row softmax decomposed to tensor-level
// equations the way JAX traces them (with prunable reshape/convert nodes
// interspersed, so graph pruning has realistic work to do).

#include "ir/program.h"

namespace predtop::ir {

class GraphBuilder {
 public:
  explicit GraphBuilder(StageProgram& program, DType compute_dtype = DType::kF16)
      : program_(program), dtype_(compute_dtype) {}

  [[nodiscard]] StageProgram& program() noexcept { return program_; }
  [[nodiscard]] DType dtype() const noexcept { return dtype_; }

  /// Decomposed layer norm over the last axis of (b, s, h): reduce_sum,
  /// sub, mul, reduce_sum, rsqrt, mul, mul(gain), add(bias).
  ValueId LayerNorm(ValueId x, std::int64_t b, std::int64_t s, std::int64_t h);

  /// Dense projection (b, s, in) -> (b, s, out): dot + bias add, weights as
  /// literal values.
  ValueId Linear(ValueId x, std::int64_t b, std::int64_t s, std::int64_t in, std::int64_t out);

  /// Row softmax over the last axis: reduce_max, sub, exp, reduce_sum, div.
  ValueId Softmax(ValueId x);

  /// Elementwise GELU (composite op).
  ValueId Gelu(ValueId x);

  /// Elementwise residual add of two same-shape values.
  ValueId Residual(ValueId a, ValueId b);

  /// Prunable convert_element_type node.
  ValueId Convert(ValueId x, DType to);

  /// Prunable reshape node.
  ValueId Reshape(ValueId x, std::vector<std::int64_t> dims);

  [[nodiscard]] TensorSpec SpecOf(ValueId v) const { return program_.value(v).spec; }

 private:
  [[nodiscard]] TensorSpec Make(std::vector<std::int64_t> dims) const {
    return TensorSpec{dtype_, std::move(dims)};
  }

  StageProgram& program_;
  DType dtype_;
};

}  // namespace predtop::ir

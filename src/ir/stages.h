#pragma once
// Stage enumeration and sampling (paper §VI phase 1): Alpa's inter-operator
// pass considers every contiguous layer range as a candidate stage; PredTOP
// randomly samples a subset "of different sizes" for profiling / training
// and predicts the rest.

#include <cstdint>
#include <vector>

#include "ir/models.h"
#include "util/rng.h"

namespace predtop::ir {

/// All contiguous layer ranges [i, j) of a model with `num_layers` layers —
/// num_layers * (num_layers + 1) / 2 candidates.
[[nodiscard]] std::vector<StageSlice> EnumerateStageSlices(std::int32_t num_layers);

/// As above, but stages never exceed `max_span` layers (used to bound the
/// experiment cost on small machines; max_span >= num_layers disables it).
[[nodiscard]] std::vector<StageSlice> EnumerateStageSlices(std::int32_t num_layers,
                                                           std::int32_t max_span);

/// Random subset of `count` distinct slices, stratified by span so every
/// stage size contributes samples (paper: "stages of different sizes").
[[nodiscard]] std::vector<StageSlice> SampleStageSlices(const std::vector<StageSlice>& all,
                                                        std::size_t count, util::Rng& rng);

}  // namespace predtop::ir

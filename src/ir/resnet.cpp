#include "ir/resnet.h"

#include <stdexcept>

#include "ir/builder_common.h"

namespace predtop::ir {

namespace {

struct BlockShape {
  std::int64_t channels = 0;
  std::int64_t spatial = 0;   // H == W
  bool downsamples = false;   // first block of a wider group
};

/// Width/spatial schedule: three equal groups, channels x1/x2/x4 of base,
/// spatial halved at each group boundary.
BlockShape ShapeOfBlock(const WideResNetConfig& config, std::int64_t block) {
  const std::int64_t group_size = std::max<std::int64_t>(1, config.num_blocks / 3);
  const std::int64_t group = std::min<std::int64_t>(2, block / group_size);
  BlockShape shape;
  shape.channels = config.base_channels << group;
  shape.spatial = config.image_size >> group;
  shape.downsamples = group > 0 && block == group * group_size;
  return shape;
}

/// conv2d + decomposed norm + ReLU. `stride2` halves the spatial size.
ValueId ConvNormRelu(GraphBuilder& gb, ValueId x, std::int64_t b, std::int64_t cin,
                     std::int64_t cout, std::int64_t spatial_out, std::int64_t kernel,
                     bool relu) {
  auto& p = gb.program();
  const ValueId weight = p.AddLiteral({gb.dtype(), {cout, cin, kernel, kernel}});
  const ValueId conv =
      p.AddEquation(OpType::kConv2d, {x, weight},
                    {gb.dtype(), {b, cout, spatial_out, spatial_out}}, kernel * kernel * cin);
  // BatchNorm at inference-style decomposition: scale + shift per channel.
  const ValueId gamma = p.AddLiteral({gb.dtype(), {cout}});
  const ValueId scaled = p.AddEquation(OpType::kMul, {conv, gamma},
                                       {gb.dtype(), {b, cout, spatial_out, spatial_out}});
  const ValueId beta = p.AddLiteral({gb.dtype(), {cout}});
  ValueId y = p.AddEquation(OpType::kAdd, {scaled, beta},
                            {gb.dtype(), {b, cout, spatial_out, spatial_out}});
  if (relu) {
    const ValueId zero = p.AddLiteral({gb.dtype(), {}});
    y = p.AddEquation(OpType::kMax, {y, zero},
                      {gb.dtype(), {b, cout, spatial_out, spatial_out}});
  }
  return y;
}

ValueId ResidualBlock(GraphBuilder& gb, ValueId x, const WideResNetConfig& config,
                      std::int64_t block) {
  auto& p = gb.program();
  const std::int64_t b = config.microbatch;
  const BlockShape shape = ShapeOfBlock(config, block);
  const BlockShape prev = block > 0 ? ShapeOfBlock(config, block - 1)
                                    : BlockShape{shape.channels, shape.spatial, false};
  const std::int64_t cin = block > 0 ? prev.channels : shape.channels;

  const ValueId h1 = ConvNormRelu(gb, x, b, cin, shape.channels, shape.spatial, 3, true);
  const ValueId h2 = ConvNormRelu(gb, h1, b, shape.channels, shape.channels, shape.spatial, 3,
                                  /*relu=*/false);
  // Skip path: identity, or 1x1 projection when shape changes.
  ValueId skip = x;
  if (shape.downsamples || cin != shape.channels) {
    skip = ConvNormRelu(gb, x, b, cin, shape.channels, shape.spatial, 1, /*relu=*/false);
  }
  const ValueId sum = p.AddEquation(OpType::kAdd, {h2, skip},
                                    {gb.dtype(), {b, shape.channels, shape.spatial, shape.spatial}});
  const ValueId zero = p.AddLiteral({gb.dtype(), {}});
  return p.AddEquation(OpType::kMax, {sum, zero},
                       {gb.dtype(), {b, shape.channels, shape.spatial, shape.spatial}});
}

}  // namespace

StageProgram BuildWideResNetStage(const WideResNetConfig& config, StageSlice slice) {
  if (slice.first_layer < 0 || slice.last_layer > config.num_blocks ||
      slice.first_layer >= slice.last_layer) {
    throw std::invalid_argument("BuildWideResNetStage: invalid block range");
  }
  StageProgram program;
  program.name = StageName("wrn", slice, static_cast<std::int32_t>(config.num_blocks));
  program.first_layer = slice.first_layer;
  program.last_layer = slice.last_layer;
  program.has_embedding = slice.first_layer == 0;
  program.has_lm_head = slice.last_layer == config.num_blocks;
  program.microbatch = config.microbatch;

  GraphBuilder gb(program);
  const std::int64_t b = config.microbatch;
  ValueId x;
  if (program.has_embedding) {
    // Stem: image input + 3x3 conv to base channels.
    const ValueId image = program.AddInput(
        {DType::kF16, {b, config.in_channels, config.image_size, config.image_size}});
    x = ConvNormRelu(gb, image, b, config.in_channels, config.base_channels,
                     config.image_size, 3, true);
  } else {
    const BlockShape entry = ShapeOfBlock(config, slice.first_layer - 1);
    x = program.AddInput({DType::kF16, {b, entry.channels, entry.spatial, entry.spatial}});
  }
  for (std::int32_t block = slice.first_layer; block < slice.last_layer; ++block) {
    x = ResidualBlock(gb, x, config, block);
  }
  if (program.has_lm_head) {
    const BlockShape last = ShapeOfBlock(config, config.num_blocks - 1);
    // Global average pool (reduce) + classifier + loss.
    const ValueId pooled = program.AddEquation(OpType::kReduceSum, {x},
                                               {DType::kF16, {b, last.channels}});
    const ValueId fc = program.AddLiteral({DType::kF16, {last.channels, config.num_classes}});
    const ValueId logits = program.AddEquation(OpType::kDot, {pooled, fc},
                                               {DType::kF16, {b, config.num_classes}},
                                               last.channels);
    const ValueId labels = program.AddInput({DType::kI32, {b}});
    const ValueId logits32 = gb.Convert(logits, DType::kF32);
    x = program.AddEquation(OpType::kSoftmaxXent, {logits32, labels}, {DType::kF32, {b}});
  }
  program.MarkOutput(x);
  return program;
}

}  // namespace predtop::ir

#include "cluster/wire.h"

#include <cstring>
#include <limits>

#include "fault/crc32.h"

namespace predtop::cluster {

namespace {

// ---- little-endian byte writer / bounds-checked reader ----
// The codec mirrors nn::serialize's hardening rules (validate every claimed
// length before allocating) but writes into a string instead of a stream —
// a frame is assembled in memory so the CRC can cover it in one pass.

class Writer {
 public:
  void U8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U16(std::uint16_t v) { Raw(&v, sizeof v); }
  void U32(std::uint32_t v) { Raw(&v, sizeof v); }
  void U64(std::uint64_t v) { Raw(&v, sizeof v); }
  void I32(std::int32_t v) { Raw(&v, sizeof v); }
  void F64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    U64(bits);
  }
  void Str(const std::string& s) {
    U32(static_cast<std::uint32_t>(s.size()));
    buf_.append(s);
  }
  [[nodiscard]] std::string Take() { return std::move(buf_); }

 private:
  void Raw(const void* p, std::size_t n) {
    buf_.append(static_cast<const char*>(p), n);
  }
  std::string buf_;
};

class Reader {
 public:
  Reader(std::string_view bytes, const char* what) : bytes_(bytes), what_(what) {}

  std::uint8_t U8() { return Fixed<std::uint8_t>(); }
  std::uint16_t U16() { return Fixed<std::uint16_t>(); }
  std::uint32_t U32() { return Fixed<std::uint32_t>(); }
  std::uint64_t U64() { return Fixed<std::uint64_t>(); }
  std::int32_t I32() { return Fixed<std::int32_t>(); }
  double F64() {
    const std::uint64_t bits = U64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string Str() {
    const std::uint32_t n = U32();
    Need(n, "string");
    std::string s(bytes_.substr(pos_, n));
    pos_ += n;
    return s;
  }
  /// Claimed element count for a vector of elements >= `min_elem_bytes`
  /// each; rejected before any allocation if the remaining payload cannot
  /// possibly hold it.
  std::size_t Count(std::size_t min_elem_bytes) {
    const std::uint32_t n = U32();
    if (min_elem_bytes > 0 &&
        static_cast<std::uint64_t>(n) * min_elem_bytes > bytes_.size() - pos_) {
      throw fault::CorruptionError(std::string(what_) + ": claimed count " +
                                   std::to_string(n) + " exceeds remaining payload");
    }
    return n;
  }
  void ExpectEnd() const {
    if (pos_ != bytes_.size()) {
      throw fault::CorruptionError(std::string(what_) + ": " +
                                   std::to_string(bytes_.size() - pos_) +
                                   " trailing bytes after payload");
    }
  }

 private:
  template <typename T>
  T Fixed() {
    Need(sizeof(T), "field");
    T v;
    std::memcpy(&v, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  void Need(std::size_t n, const char* piece) const {
    if (bytes_.size() - pos_ < n) {
      throw fault::CorruptionError(std::string(what_) + ": truncated " + piece + " (need " +
                                   std::to_string(n) + " bytes, have " +
                                   std::to_string(bytes_.size() - pos_) + ")");
    }
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
  const char* what_;
};

void WriteMesh(Writer& w, sim::Mesh mesh) {
  w.I32(mesh.num_nodes);
  w.I32(mesh.gpus_per_node);
}
sim::Mesh ReadMesh(Reader& r) { return {r.I32(), r.I32()}; }

void WriteConfig(Writer& w, const parallel::ParallelConfig& config) {
  w.I32(config.dp);
  w.I32(config.mp);
  w.I32(config.tp);
}
parallel::ParallelConfig ReadConfig(Reader& r) { return {r.I32(), r.I32(), r.I32()}; }

}  // namespace

const char* MessageTypeName(MessageType type) noexcept {
  switch (type) {
    case MessageType::kError: return "error";
    case MessageType::kPredictRequest: return "predict_request";
    case MessageType::kPredictResponse: return "predict_response";
    case MessageType::kHealthRequest: return "health_request";
    case MessageType::kHealthResponse: return "health_response";
    case MessageType::kStatsRequest: return "stats_request";
    case MessageType::kStatsResponse: return "stats_response";
    case MessageType::kShutdownRequest: return "shutdown_request";
    case MessageType::kShutdownResponse: return "shutdown_response";
  }
  return "unknown";
}

std::string EncodeFrame(const Frame& frame) {
  Writer w;
  w.U32(kFrameMagic);
  // Deadline-free frames stay byte-identical to the legacy v1 protocol; a
  // nonzero deadline upgrades the frame to v2 (8 extra header bytes).
  w.U16(frame.deadline_us == 0 ? kWireVersion : kWireVersionDeadline);
  w.U16(static_cast<std::uint16_t>(frame.type));
  w.U64(frame.request_id);
  w.U64(frame.payload.size());
  if (frame.deadline_us != 0) w.U64(frame.deadline_us);
  std::string bytes = w.Take();
  bytes.append(frame.payload);
  const std::uint32_t crc = fault::Crc32(bytes.data(), bytes.size());
  bytes.append(reinterpret_cast<const char*>(&crc), sizeof crc);
  return bytes;
}

FrameHeader DecodeFrameHeader(std::string_view header_bytes) {
  Reader r(header_bytes, "cluster frame header");
  const std::uint32_t magic = r.U32();
  if (magic != kFrameMagic) {
    throw fault::CorruptionError("cluster frame: bad magic 0x" +
                                 std::to_string(magic));
  }
  const std::uint16_t version = r.U16();
  if (version != kWireVersion && version != kWireVersionDeadline) {
    throw fault::CorruptionError("cluster frame: unsupported wire version " +
                                 std::to_string(version));
  }
  FrameHeader header;
  header.version = version;
  const std::uint16_t type = r.U16();
  if (type > static_cast<std::uint16_t>(MessageType::kShutdownResponse)) {
    throw fault::CorruptionError("cluster frame: unknown message type " +
                                 std::to_string(type));
  }
  header.type = static_cast<MessageType>(type);
  header.request_id = r.U64();
  header.payload_size = r.U64();
  if (header.payload_size > kMaxPayloadBytes) {
    throw fault::CorruptionError("cluster frame: payload length " +
                                 std::to_string(header.payload_size) +
                                 " exceeds the " + std::to_string(kMaxPayloadBytes) +
                                 "-byte bound");
  }
  return header;
}

std::uint64_t DecodeFrameDeadline(std::string_view deadline_bytes) {
  Reader r(deadline_bytes, "cluster frame deadline");
  return r.U64();
}

std::pair<Frame, std::size_t> DecodeFrame(std::string_view bytes) {
  if (bytes.size() < kFrameHeaderBytes) {
    throw fault::CorruptionError("cluster frame: truncated header (" +
                                 std::to_string(bytes.size()) + " bytes)");
  }
  const FrameHeader header = DecodeFrameHeader(bytes.substr(0, kFrameHeaderBytes));
  const std::size_t extra = header.ExtraHeaderBytes();
  const std::size_t total = kFrameHeaderBytes + extra +
                            static_cast<std::size_t>(header.payload_size) +
                            kFrameFooterBytes;
  if (bytes.size() < total) {
    throw fault::CorruptionError("cluster frame: truncated body (need " +
                                 std::to_string(total) + " bytes, have " +
                                 std::to_string(bytes.size()) + ")");
  }
  const std::size_t crc_at = total - kFrameFooterBytes;
  std::uint32_t stored_crc;
  std::memcpy(&stored_crc, bytes.data() + crc_at, sizeof stored_crc);
  const std::uint32_t computed = fault::Crc32(bytes.data(), crc_at);
  if (stored_crc != computed) {
    throw fault::CorruptionError("cluster frame: CRC mismatch (stored " +
                                 std::to_string(stored_crc) + ", computed " +
                                 std::to_string(computed) + ")");
  }
  Frame frame;
  frame.type = header.type;
  frame.request_id = header.request_id;
  if (extra > 0) {
    frame.deadline_us =
        DecodeFrameDeadline(bytes.substr(kFrameHeaderBytes, extra));
  }
  frame.payload.assign(bytes.data() + kFrameHeaderBytes + extra,
                       static_cast<std::size_t>(header.payload_size));
  return {std::move(frame), total};
}

std::string EncodePredictRequest(const PredictRequest& request) {
  Writer w;
  w.Str(request.key.benchmark);
  w.Str(request.key.platform);
  WriteMesh(w, request.key.mesh);
  WriteConfig(w, request.key.config);
  w.U32(static_cast<std::uint32_t>(request.queries.size()));
  for (const parallel::StageQuery& q : request.queries) {
    w.I32(q.slice.first_layer);
    w.I32(q.slice.last_layer);
    WriteMesh(w, q.mesh);
  }
  return w.Take();
}

PredictRequest DecodePredictRequest(std::string_view payload) {
  Reader r(payload, "predict request");
  PredictRequest request;
  request.key.benchmark = r.Str();
  request.key.platform = r.Str();
  request.key.mesh = ReadMesh(r);
  request.key.config = ReadConfig(r);
  const std::size_t n = r.Count(16);  // 4 x i32 per query
  request.queries.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    parallel::StageQuery q;
    q.slice.first_layer = r.I32();
    q.slice.last_layer = r.I32();
    q.mesh = ReadMesh(r);
    request.queries.push_back(q);
  }
  r.ExpectEnd();
  return request;
}

std::string EncodePredictResponse(const PredictResponse& response) {
  Writer w;
  w.U32(static_cast<std::uint32_t>(response.results.size()));
  for (const WireLatency& result : response.results) {
    w.F64(result.latency_s);
    WriteConfig(w, result.config);
    w.U8(result.degraded ? 1 : 0);
  }
  return w.Take();
}

PredictResponse DecodePredictResponse(std::string_view payload) {
  Reader r(payload, "predict response");
  PredictResponse response;
  const std::size_t n = r.Count(21);  // f64 + 3 x i32 + u8
  response.results.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    WireLatency result;
    result.latency_s = r.F64();
    result.config = ReadConfig(r);
    result.degraded = r.U8() != 0;
    response.results.push_back(result);
  }
  r.ExpectEnd();
  return response;
}

std::string EncodeHealthBody(const HealthBody& body) {
  Writer w;
  w.U8(body.ok ? 1 : 0);
  w.U32(body.num_models);
  w.Str(body.detail);
  return w.Take();
}

HealthBody DecodeHealthBody(std::string_view payload) {
  Reader r(payload, "health body");
  HealthBody body;
  body.ok = r.U8() != 0;
  body.num_models = r.U32();
  body.detail = r.Str();
  r.ExpectEnd();
  return body;
}

std::string EncodeStatsBody(const StatsBody& body) {
  Writer w;
  w.U64(body.requests);
  w.U64(body.queries);
  w.U64(body.forwards);
  w.U64(body.coalesced);
  w.U64(body.batches);
  w.U64(body.batched_queries);
  w.U64(body.cache_hits);
  w.U64(body.cache_misses);
  w.U64(body.shed_expired);
  w.U64(body.shed_overload);
  w.U64(body.late_completions);
  w.U64(body.svc_p50_us);
  w.U64(body.svc_p99_us);
  w.U64(body.program_cache_hits);
  w.U64(body.program_cache_misses);
  w.U64(body.batched_forwards);
  w.U64(body.interleaved_forwards);
  w.U64(body.autotune_sweeps);
  return w.Take();
}

StatsBody DecodeStatsBody(std::string_view payload) {
  Reader r(payload, "stats body");
  StatsBody body;
  body.requests = r.U64();
  body.queries = r.U64();
  body.forwards = r.U64();
  body.coalesced = r.U64();
  body.batches = r.U64();
  body.batched_queries = r.U64();
  body.cache_hits = r.U64();
  body.cache_misses = r.U64();
  body.shed_expired = r.U64();
  body.shed_overload = r.U64();
  body.late_completions = r.U64();
  body.svc_p50_us = r.U64();
  body.svc_p99_us = r.U64();
  body.program_cache_hits = r.U64();
  body.program_cache_misses = r.U64();
  body.batched_forwards = r.U64();
  body.interleaved_forwards = r.U64();
  body.autotune_sweeps = r.U64();
  r.ExpectEnd();
  return body;
}

std::string EncodeErrorBody(const ErrorBody& body) {
  Writer w;
  w.U32(static_cast<std::uint32_t>(body.code));
  w.Str(body.message);
  return w.Take();
}

ErrorBody DecodeErrorBody(std::string_view payload) {
  Reader r(payload, "error body");
  ErrorBody body;
  const std::uint32_t code = r.U32();
  if (code > static_cast<std::uint32_t>(fault::StatusCode::kOverloaded)) {
    throw fault::CorruptionError("error body: unknown status code " + std::to_string(code));
  }
  body.code = static_cast<fault::StatusCode>(code);
  body.message = r.Str();
  r.ExpectEnd();
  return body;
}

}  // namespace predtop::cluster

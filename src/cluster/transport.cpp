#include "cluster/transport.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "fault/crc32.h"
#include "fault/injector.h"

namespace predtop::cluster {

namespace {

using Clock = std::chrono::steady_clock;

[[noreturn]] void ThrowErrno(const std::string& what) {
  throw fault::IoError(what + ": " + std::strerror(errno));
}

double RemainingMs(Clock::time_point start, double deadline_ms) {
  if (deadline_ms <= 0.0) return 0.0;  // 0 = infinite for poll helpers below
  const double elapsed =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  return deadline_ms - elapsed;
}

/// Wait for readability; `timeout_ms <= 0` waits forever. Returns false on
/// timeout; throws fault::IoError on poll failure or socket error/hangup
/// without pending data.
bool WaitReadable(int fd, double timeout_ms) {
  pollfd pfd{fd, POLLIN, 0};
  for (;;) {
    const int poll_timeout =
        timeout_ms <= 0.0 ? -1 : std::max(1, static_cast<int>(timeout_ms));
    const int rc = ::poll(&pfd, 1, poll_timeout);
    if (rc > 0) return true;  // POLLIN/POLLHUP/POLLERR: recv() reports the truth
    if (rc == 0) return false;
    if (errno == EINTR) continue;
    ThrowErrno("poll");
  }
}

/// The net_drop / net_delay injection shared by SendFrame and RecvFrame.
/// A dropped frame closes the socket first so the connection state matches
/// the story ("the peer died"), then throws IoError — exactly what a
/// failover path must handle.
void MaybeInjectNetFault(Socket& socket, const char* direction) {
  fault::Injector& injector = fault::Injector::Global();
  if (!injector.Enabled()) return;
  const double delay =
      injector.FireDelayMs(fault::sites::kNetDelayMs, fault::sites::kNetDelayP);
  if (delay > 0.0) fault::SleepForMs(delay);
  if (injector.ShouldInject(fault::sites::kNetDrop)) {
    socket.Close();
    throw fault::IoError(std::string("injected net_drop on ") + direction);
  }
}

}  // namespace

// ---- Endpoint ----

Endpoint Endpoint::Unix(std::string socket_path) {
  Endpoint e;
  e.kind = Kind::kUnix;
  e.path = std::move(socket_path);
  return e;
}

Endpoint Endpoint::Tcp(std::string host, std::uint16_t port) {
  Endpoint e;
  e.kind = Kind::kTcp;
  e.host = std::move(host);
  e.port = port;
  return e;
}

Endpoint Endpoint::Parse(const std::string& spec) {
  if (spec.rfind("unix:", 0) == 0) {
    const std::string path = spec.substr(5);
    if (path.empty()) throw std::invalid_argument("empty unix socket path in '" + spec + "'");
    return Unix(path);
  }
  if (spec.rfind("tcp:", 0) == 0) {
    const std::string rest = spec.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 == rest.size()) {
      throw std::invalid_argument("tcp endpoint '" + spec + "' is not tcp:host:port");
    }
    const long port = std::strtol(rest.c_str() + colon + 1, nullptr, 10);
    if (port < 0 || port > 65535) {
      throw std::invalid_argument("tcp endpoint '" + spec + "' has an invalid port");
    }
    return Tcp(rest.substr(0, colon), static_cast<std::uint16_t>(port));
  }
  throw std::invalid_argument("endpoint '" + spec + "' must start with unix: or tcp:");
}

std::string Endpoint::ToString() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

// ---- Socket ----

Socket::~Socket() { Close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::SendAll(const void* bytes, std::size_t size) {
  if (fd_ < 0) throw fault::IoError("send on closed socket");
  const char* p = static_cast<const char*>(bytes);
  while (size > 0) {
    const ssize_t n = ::send(fd_, p, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      ThrowErrno("send");
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
}

void Socket::RecvAll(void* bytes, std::size_t size, double deadline_ms) {
  if (fd_ < 0) throw fault::IoError("recv on closed socket");
  char* p = static_cast<char*>(bytes);
  const Clock::time_point start = Clock::now();
  while (size > 0) {
    if (deadline_ms > 0.0) {
      const double remaining = RemainingMs(start, deadline_ms);
      if (remaining <= 0.0 || !WaitReadable(fd_, remaining)) {
        throw fault::FaultError(fault::StatusCode::kDeadlineExceeded,
                                "recv overran its " + std::to_string(deadline_ms) +
                                    " ms deadline");
      }
    }
    const ssize_t n = ::recv(fd_, p, size, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      ThrowErrno("recv");
    }
    if (n == 0) throw fault::IoError("peer closed the connection mid-frame");
    p += n;
    size -= static_cast<std::size_t>(n);
  }
}

// ---- Listener ----

Listener::Listener(const Endpoint& endpoint) : endpoint_(endpoint) {
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) ThrowErrno("socket(AF_UNIX)");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (endpoint.path.size() >= sizeof(addr.sun_path)) {
      ::close(fd_);
      fd_ = -1;
      throw std::invalid_argument("unix socket path too long: " + endpoint.path);
    }
    std::strncpy(addr.sun_path, endpoint.path.c_str(), sizeof(addr.sun_path) - 1);
    ::unlink(endpoint.path.c_str());  // stale socket file from a dead worker
    if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
      ::close(fd_);
      fd_ = -1;
      ThrowErrno("bind(" + endpoint.path + ")");
    }
  } else {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) ThrowErrno("socket(AF_INET)");
    const int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(endpoint.port);
    addr.sin_addr.s_addr =
        endpoint.host.empty() ? htonl(INADDR_LOOPBACK) : ::inet_addr(endpoint.host.c_str());
    if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
      ::close(fd_);
      fd_ = -1;
      ThrowErrno("bind(tcp:" + endpoint.host + ":" + std::to_string(endpoint.port) + ")");
    }
    if (endpoint.port == 0) {  // report the kernel-chosen port
      sockaddr_in bound{};
      socklen_t len = sizeof bound;
      if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
        endpoint_.port = ntohs(bound.sin_port);
      }
    }
  }
  if (::listen(fd_, 64) < 0) {
    const int saved = errno;
    Close();
    errno = saved;
    ThrowErrno("listen(" + endpoint_.ToString() + ")");
  }
}

Listener::~Listener() { Close(); }

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_.exchange(-1, std::memory_order_acq_rel)),
      endpoint_(std::move(other.endpoint_)) {}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    Close();
    endpoint_ = std::move(other.endpoint_);
    fd_.store(other.fd_.exchange(-1, std::memory_order_acq_rel),
              std::memory_order_release);
  }
  return *this;
}

Socket Listener::Accept(double timeout_ms) {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0) return Socket();
  try {
    if (!WaitReadable(fd, timeout_ms)) return Socket();
  } catch (const fault::IoError&) {
    return Socket();  // listener closed concurrently
  }
  const int client = ::accept(fd, nullptr, nullptr);
  if (client < 0) return Socket();  // raced with Close()
  return Socket(client);
}

void Listener::Close() noexcept {
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
    if (endpoint_.kind == Endpoint::Kind::kUnix) ::unlink(endpoint_.path.c_str());
  }
}

// ---- connect / frame IO ----

Socket ConnectTo(const Endpoint& endpoint, double timeout_ms) {
  const Clock::time_point start = Clock::now();
  std::string last_error = "connect timed out";
  for (;;) {
    int fd = -1;
    int rc = -1;
    if (endpoint.kind == Endpoint::Kind::kUnix) {
      fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (fd < 0) ThrowErrno("socket(AF_UNIX)");
      sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      std::strncpy(addr.sun_path, endpoint.path.c_str(), sizeof(addr.sun_path) - 1);
      rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
    } else {
      fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) ThrowErrno("socket(AF_INET)");
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(endpoint.port);
      addr.sin_addr.s_addr = endpoint.host.empty()
                                 ? htonl(INADDR_LOOPBACK)
                                 : ::inet_addr(endpoint.host.c_str());
      rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
    }
    if (rc == 0) {
      if (endpoint.kind == Endpoint::Kind::kTcp) {
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      }
      return Socket(fd);
    }
    last_error = std::strerror(errno);
    ::close(fd);
    // ENOENT/ECONNREFUSED: the worker may still be starting; retry inside
    // the budget instead of failing the first race.
    const double elapsed =
        std::chrono::duration<double, std::milli>(Clock::now() - start).count();
    if (elapsed >= timeout_ms) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  throw fault::IoError("connect(" + endpoint.ToString() + ") failed: " + last_error);
}

void SendFrame(Socket& socket, const Frame& frame) {
  MaybeInjectNetFault(socket, "send");
  const std::string bytes = EncodeFrame(frame);
  socket.SendAll(bytes.data(), bytes.size());
}

Frame RecvFrame(Socket& socket, double deadline_ms) {
  MaybeInjectNetFault(socket, "recv");
  char header_bytes[kFrameHeaderBytes];
  socket.RecvAll(header_bytes, sizeof header_bytes, deadline_ms);
  const FrameHeader header =
      DecodeFrameHeader(std::string_view(header_bytes, sizeof header_bytes));
  // A v2 frame carries its deadline between the fixed header and the
  // payload; the extra bytes are covered by the CRC footer like the rest.
  char deadline_bytes[kFrameDeadlineBytes];
  const std::size_t extra = header.ExtraHeaderBytes();
  if (extra > 0) socket.RecvAll(deadline_bytes, extra, deadline_ms);
  std::string body(static_cast<std::size_t>(header.payload_size) + kFrameFooterBytes, '\0');
  socket.RecvAll(body.data(), body.size(), deadline_ms);

  // Validate the CRC footer over header (incl. deadline) + payload.
  std::uint32_t stored_crc;
  std::memcpy(&stored_crc, body.data() + body.size() - kFrameFooterBytes, sizeof stored_crc);
  std::uint32_t crc = fault::Crc32(header_bytes, sizeof header_bytes);
  if (extra > 0) crc = fault::Crc32(deadline_bytes, extra, crc);
  crc = fault::Crc32(body.data(), body.size() - kFrameFooterBytes, crc);
  if (crc != stored_crc) {
    throw fault::CorruptionError("cluster frame: CRC mismatch on " +
                                 std::string(MessageTypeName(header.type)));
  }
  Frame frame;
  frame.type = header.type;
  frame.request_id = header.request_id;
  if (extra > 0) {
    frame.deadline_us =
        DecodeFrameDeadline(std::string_view(deadline_bytes, extra));
  }
  body.resize(body.size() - kFrameFooterBytes);
  frame.payload = std::move(body);
  return frame;
}

}  // namespace predtop::cluster

#pragma once
// In-process cluster harness: N Worker instances on background threads,
// each listening on its own Unix socket under /tmp. The wire protocol,
// routing, coalescing and failover paths are identical to a multi-process
// deployment — only process isolation is missing — which makes this the
// right harness for benches, demos and TSan runs (fork/exec and TSan do
// not mix). True process isolation is exercised by cluster_test, which
// re-execs itself as worker processes, and by examples/cluster_worker.

#include <memory>
#include <string>
#include <vector>

#include "cluster/worker.h"

namespace predtop::cluster {

struct LocalClusterOptions {
  std::size_t num_workers = 2;
  /// Service options of every worker replica (threads, cache capacity).
  serve::ServiceOptions service;
  serve::ModelRegistry::RetryPolicy retry;
  /// Admission control applied to every worker (0 = unbounded); see
  /// WorkerOptions::max_inflight / max_connections.
  std::size_t max_inflight = 0;
  std::size_t max_connections = 0;
};

class LocalCluster {
 public:
  /// Spin up `options.num_workers` workers, each serving `registry`'s
  /// models for `benchmark` (the registry is shared — replicas of the same
  /// checkpointed weights, exactly like N processes loading one `.ptck`
  /// set). Throws on startup failure.
  LocalCluster(core::BenchmarkModel benchmark,
               std::shared_ptr<serve::ModelRegistry> registry,
               LocalClusterOptions options = {});
  ~LocalCluster();
  LocalCluster(const LocalCluster&) = delete;
  LocalCluster& operator=(const LocalCluster&) = delete;

  [[nodiscard]] const std::vector<Endpoint>& Endpoints() const noexcept {
    return endpoints_;
  }
  [[nodiscard]] std::size_t NumWorkers() const noexcept { return workers_.size(); }
  [[nodiscard]] Worker& WorkerAt(std::size_t index) { return *workers_.at(index); }

  /// Kill one replica (closes its listener and connections mid-request) —
  /// the in-process analogue of SIGKILLing a worker process.
  void StopWorker(std::size_t index);

  void StopAll();

 private:
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<Endpoint> endpoints_;
};

}  // namespace predtop::cluster

#pragma once
// Consistent-hash ring over the cluster's workers. DagFingerprints are
// placed on a 64-bit ring; each worker owns many virtual points so load
// stays balanced for small worker counts, and a query's replica set is the
// first R *distinct* workers clockwise from its fingerprint. Consistency is
// the point: the same fingerprint always routes to the same shard (so each
// worker's LRU cache concentrates on its slice of the query space), and
// adding a worker only remaps ~1/N of the space instead of reshuffling
// everything.

#include <cstdint>
#include <vector>

namespace predtop::cluster {

class HashRing {
 public:
  /// `vnodes_per_worker` virtual points per worker; more points = smoother
  /// balance at the cost of a larger (still tiny) sorted array.
  explicit HashRing(std::size_t num_workers, std::size_t vnodes_per_worker = 64);

  /// The query's ordered candidate workers: the owning shard first, then up
  /// to `replicas - 1` distinct successors (fewer when the cluster is
  /// smaller than the replication factor). Deterministic in `fingerprint`.
  [[nodiscard]] std::vector<std::size_t> Route(std::uint64_t fingerprint,
                                               std::size_t replicas) const;

  /// Owning shard only — Route(fp, 1)[0] without the vector.
  [[nodiscard]] std::size_t Owner(std::uint64_t fingerprint) const;

  [[nodiscard]] std::size_t NumWorkers() const noexcept { return num_workers_; }

 private:
  [[nodiscard]] std::size_t FirstPointAtOrAfter(std::uint64_t hash) const;

  std::size_t num_workers_;
  /// (point hash, worker id), sorted by hash.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> points_;
};

}  // namespace predtop::cluster

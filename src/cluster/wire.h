#pragma once
// Framed wire protocol of the prediction cluster. Every message is one
// frame:
//
//   magic    u32   'PTCW' (0x50544357)
//   version  u16   kWireVersion (1) or kWireVersionDeadline (2)
//   type     u16   MessageType
//   id       u64   request id (echoed verbatim in the response)
//   length   u64   payload byte count (bounded by kMaxPayloadBytes *before*
//                  any allocation — a hostile length prefix cannot size a
//                  multi-GB buffer)
//   deadline u64   [version >= 2 only] absolute steady-clock deadline in
//                  microseconds (util::SteadyNowUs time base; 0 = none).
//                  The encoder emits a version-1 frame when the deadline is
//                  zero, so deadline-free traffic is byte-identical to the
//                  legacy protocol and either end can be old or new.
//   payload  ...   type-specific body (codecs below)
//   crc      u32   fault::Crc32 over header (incl. deadline) + payload
//
// The CRC footer turns a flipped bit anywhere in a frame into a typed
// fault::CorruptionError at decode time instead of a silently wrong latency
// — the same contract the `.ptck` checkpoint footer gives disk bytes, here
// applied to socket bytes. All integers are little-endian (the only
// platforms this repo targets); doubles travel as their IEEE-754 bit
// pattern, so a latency survives the wire bit-identically and a
// cluster-served plan can be compared `==` against an in-process one.
//
// Payloads deliberately carry *compact* stage identities (StageQuery =
// layer slice + mesh, 16 bytes) rather than encoded feature tensors: both
// ends of the wire own the benchmark model, so the worker re-encodes the
// slice locally (memoized) and a predict round-trip for a hundred DP table
// cells fits in a couple of KB.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "fault/status.h"
#include "parallel/inter_op.h"
#include "serve/registry.h"

namespace predtop::cluster {

inline constexpr std::uint32_t kFrameMagic = 0x50544357u;  // "PTCW"
inline constexpr std::uint16_t kWireVersion = 1;
/// Version 2 appends an 8-byte absolute deadline to the header. Decoders
/// accept both; encoders emit v1 whenever deadline_us == 0.
inline constexpr std::uint16_t kWireVersionDeadline = 2;
/// Upper bound a decoder will believe for one payload. Far above any real
/// message (a 10k-query batch is ~160 KB) but far below anything that could
/// pressure memory.
inline constexpr std::uint64_t kMaxPayloadBytes = 64ull << 20;
/// Bytes before the payload in a version-1 frame: magic + version + type +
/// id + length. A version-2 frame adds kFrameDeadlineBytes after these.
inline constexpr std::size_t kFrameHeaderBytes = 4 + 2 + 2 + 8 + 8;
inline constexpr std::size_t kFrameDeadlineBytes = 8;  // v2 deadline_us
inline constexpr std::size_t kFrameFooterBytes = 4;    // crc32

enum class MessageType : std::uint16_t {
  kError = 0,             // ErrorBody — a typed Status crossing the wire
  kPredictRequest = 1,    // PredictRequest (one query or a whole batch)
  kPredictResponse = 2,   // PredictResponse
  kHealthRequest = 3,     // empty payload
  kHealthResponse = 4,    // HealthBody
  kStatsRequest = 5,      // empty payload
  kStatsResponse = 6,     // StatsBody
  kShutdownRequest = 7,   // empty payload; worker stops after responding
  kShutdownResponse = 8,  // empty payload
};
[[nodiscard]] const char* MessageTypeName(MessageType type) noexcept;

struct Frame {
  MessageType type = MessageType::kError;
  std::uint64_t request_id = 0;
  std::string payload;
  /// Absolute steady-clock deadline in microseconds (util::SteadyNowUs time
  /// base); 0 = no deadline. Nonzero deadlines upgrade the frame to wire
  /// version 2 on encode. Last member so existing aggregate initializers
  /// keep their meaning.
  std::uint64_t deadline_us = 0;
};

/// Serialize a frame (header + payload + CRC footer).
[[nodiscard]] std::string EncodeFrame(const Frame& frame);

/// Decode one complete frame from `bytes`. Throws fault::CorruptionError on
/// bad magic/version/length/CRC or truncation. Returns the frame and the
/// bytes consumed (for callers that buffer a stream; the socket transport
/// reads header and body separately instead).
[[nodiscard]] std::pair<Frame, std::size_t> DecodeFrame(std::string_view bytes);

/// Header-only decode used by the streaming transport: validates magic /
/// version / payload bound and returns (version, type, id, payload length).
struct FrameHeader {
  std::uint16_t version = kWireVersion;
  MessageType type = MessageType::kError;
  std::uint64_t request_id = 0;
  std::uint64_t payload_size = 0;

  /// Header bytes that follow the fixed 24-byte prefix (8 for a v2 frame's
  /// deadline, 0 for v1) — the streaming transport reads exactly this many
  /// extra bytes before the payload.
  [[nodiscard]] std::size_t ExtraHeaderBytes() const noexcept {
    return version >= kWireVersionDeadline ? kFrameDeadlineBytes : 0;
  }
};
[[nodiscard]] FrameHeader DecodeFrameHeader(std::string_view header_bytes);

/// Decode the v2 deadline extension (kFrameDeadlineBytes little-endian
/// bytes). Throws fault::CorruptionError on truncation.
[[nodiscard]] std::uint64_t DecodeFrameDeadline(std::string_view deadline_bytes);

// ---- payload bodies ----

/// Predict one batch of stage queries under one served model. The worker
/// answers queries in order; `PredictResponse::results[i]` prices
/// `queries[i]`.
struct PredictRequest {
  serve::ModelKey key;
  std::vector<parallel::StageQuery> queries;
};

struct WireLatency {
  double latency_s = 0.0;
  parallel::ParallelConfig config;
  bool degraded = false;
};

struct PredictResponse {
  std::vector<WireLatency> results;
};

struct HealthBody {
  bool ok = false;
  std::uint32_t num_models = 0;
  std::string detail;
};

struct StatsBody {
  std::uint64_t requests = 0;  // frames served by this worker
  std::uint64_t queries = 0;
  std::uint64_t forwards = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t batches = 0;
  std::uint64_t batched_queries = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  // Overload-protection counters (PR 8): requests shed because their
  // deadline had already passed, requests fast-rejected by admission
  // control, and forwards that completed after their deadline anyway
  // (the drill asserts this last one stays zero).
  std::uint64_t shed_expired = 0;
  std::uint64_t shed_overload = 0;
  std::uint64_t late_completions = 0;
  // Service latency of *admitted* predict requests (time from frame decode
  // to reply encode inside the worker), from a fixed histogram. This is
  // the latency the worker's overload protection actually controls —
  // client-observed round trips additionally include client-side
  // scheduling the server cannot bound.
  std::uint64_t svc_p50_us = 0;
  std::uint64_t svc_p99_us = 0;
  // Compiled-path counters (PR 10): program-cache outcomes, queries run
  // through the stacked / interleaved batch executors, and autotuner timing
  // sweeps — process-wide in the worker, surfaced so the overload/cluster
  // benches can measure the batch path's coverage.
  std::uint64_t program_cache_hits = 0;
  std::uint64_t program_cache_misses = 0;
  std::uint64_t batched_forwards = 0;
  std::uint64_t interleaved_forwards = 0;
  std::uint64_t autotune_sweeps = 0;
};

struct ErrorBody {
  fault::StatusCode code = fault::StatusCode::kInternal;
  std::string message;

  [[nodiscard]] fault::Status ToStatus() const { return {code, message}; }
};

[[nodiscard]] std::string EncodePredictRequest(const PredictRequest& request);
[[nodiscard]] PredictRequest DecodePredictRequest(std::string_view payload);

[[nodiscard]] std::string EncodePredictResponse(const PredictResponse& response);
[[nodiscard]] PredictResponse DecodePredictResponse(std::string_view payload);

[[nodiscard]] std::string EncodeHealthBody(const HealthBody& body);
[[nodiscard]] HealthBody DecodeHealthBody(std::string_view payload);

[[nodiscard]] std::string EncodeStatsBody(const StatsBody& body);
[[nodiscard]] StatsBody DecodeStatsBody(std::string_view payload);

[[nodiscard]] std::string EncodeErrorBody(const ErrorBody& body);
[[nodiscard]] ErrorBody DecodeErrorBody(std::string_view payload);

}  // namespace predtop::cluster

#pragma once
// Cluster worker: one process (or thread, in tests/benches) owning a
// PredictionService replica and serving the wire protocol over a listening
// socket. The THD master-worker shape: an accept loop hands each connection
// to a thread that reads frames and routes them through a dispatch table —
//   kPredictRequest  -> encode slices locally, PredictMany, latency vector
//   kHealthRequest   -> liveness + model count
//   kStatsRequest    -> service counters (cache hits, forwards, coalescing)
//   kShutdownRequest -> acknowledge, then stop serving
// Anything that fails server-side crosses back as a kError frame carrying a
// typed fault::Status — the router decides whether that is a failover (IO)
// or a definitive answer (model not found everywhere).
//
// Overload protection (PR 8):
//  - a v2 frame's absolute deadline is honored end-to-end: an
//    already-expired predict is shed with kDeadlineExceeded before any
//    decode or forward work, and the deadline rides into the
//    PredictionService so expiry mid-batch sheds the remaining forwards;
//  - admission control bounds concurrent predict work (`max_inflight`) and
//    connections (`max_connections`); over budget, predicts fast-reject
//    with typed kOverloaded — health/stats/shutdown always serve, so an
//    overloaded worker still looks alive to its supervisor;
//  - shed/expired counters surface through the Stats message.
// Finished connection threads are reaped by the accept loop as connections
// close (they used to accumulate until shutdown).
//
// Startup is fail-fast with a typed Status, never an abort: models load via
// ModelRegistry::TryRegisterFromFile, so a missing or corrupt `.ptck` path
// returns kNotFound/kCorruption from Init() (and quarantines the path)
// instead of taking the process down with an uncaught exception.

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/transport.h"
#include "cluster/wire.h"
#include "core/dataset.h"
#include "fault/status.h"
#include "serve/registry.h"
#include "serve/service.h"

namespace predtop::cluster {

/// One model replica the worker serves, loaded from a checkpoint.
struct WorkerModelSpec {
  serve::ModelKey key;
  std::string ptck_path;
};

struct WorkerOptions {
  Endpoint listen;
  /// Benchmark whose stage slices this worker can encode (both ends of the
  /// wire own the model; only compact slices travel).
  core::BenchmarkModel benchmark;
  /// Checkpointed models to load at Init (satellite: each loads through the
  /// registry's retry + quarantine path and failures surface as Status).
  std::vector<WorkerModelSpec> models;
  /// Preloaded registry for in-process workers (tests, benches); specs in
  /// `models` are loaded on top of it. Null = fresh registry.
  std::shared_ptr<serve::ModelRegistry> registry;
  serve::ServiceOptions service;
  serve::ModelRegistry::RetryPolicy retry;
  /// Admission control: max concurrently-served predict requests (0 = no
  /// bound). Beyond the budget a predict fast-rejects with kOverloaded
  /// instead of queueing unbounded work behind a saturated service pool.
  std::size_t max_inflight = 0;
  /// Max connections served concurrently (0 = no bound). Over-budget
  /// connections are still accepted but serve only health/stats/shutdown —
  /// predicts on them fast-reject with kOverloaded.
  std::size_t max_connections = 0;
};

class Worker {
 public:
  explicit Worker(WorkerOptions options);
  ~Worker();
  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  /// Load models and bind the listening socket. Returns the first failure
  /// as a typed Status (kNotFound / kCorruption / kIoError / kUnavailable
  /// when quarantined) without aborting; the worker must not be Run after a
  /// failed Init.
  [[nodiscard]] fault::Status Init();

  /// Serve until Stop() (or a shutdown frame). Blocking; call Start() for a
  /// background thread instead.
  void Run();

  /// Run() on a background thread (in-process cluster for tests/benches).
  void Start();

  /// Unblock the accept loop and all connection reads, then join.
  void Stop();

  /// Endpoint actually bound (resolves tcp port 0). Valid after Init.
  [[nodiscard]] const Endpoint& BoundEndpoint() const noexcept {
    return listener_.BoundEndpoint();
  }

  [[nodiscard]] std::uint64_t RequestsServed() const noexcept {
    return requests_.load(std::memory_order_relaxed);
  }
  /// Connection threads currently tracked (live + not yet reaped). The
  /// many-short-connections regression test asserts this stays bounded.
  [[nodiscard]] std::size_t ActiveConnectionThreads() const;
  [[nodiscard]] std::uint64_t ShedExpired() const noexcept {
    return shed_expired_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t ShedOverload() const noexcept {
    return shed_overload_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] serve::PredictionService* Service() noexcept { return service_.get(); }
  /// Approximate percentile (0..1) of admitted predict service latency, in
  /// microseconds, from the fixed 50 us-bucket histogram. 0 when nothing
  /// has been served yet.
  [[nodiscard]] std::uint64_t ServiceLatencyPercentileUs(double p) const;

 private:
  void ServeConnection(Socket socket, std::uint64_t serial, bool over_budget);
  /// Join and forget connection threads whose ServeConnection has returned.
  void ReapFinishedConnections();
  [[nodiscard]] Frame Dispatch(const Frame& request);
  [[nodiscard]] Frame HandlePredict(const Frame& request);
  [[nodiscard]] Frame HandleHealth(const Frame& request);
  [[nodiscard]] Frame HandleStats(const Frame& request);
  /// Memoized slice -> encoded predictor input (mutex-serialized; the
  /// encoder is shared by all connection threads).
  [[nodiscard]] const graph::EncodedGraph& EncodedFor(ir::StageSlice slice);
  void RequestStop() noexcept;

  WorkerOptions options_;
  std::shared_ptr<serve::ModelRegistry> registry_;
  std::unique_ptr<serve::PredictionService> service_;
  Listener listener_;
  bool initialized_ = false;

  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::size_t> inflight_predicts_{0};
  std::atomic<std::uint64_t> shed_expired_{0};
  std::atomic<std::uint64_t> shed_overload_{0};
  // Admitted predict service latency (frame decode -> reply encode),
  // 50 us buckets, last bucket = overflow. Lock-free so the predict hot
  // path never serializes on stats readers.
  static constexpr std::size_t kSvcBuckets = 2048;
  static constexpr std::uint64_t kSvcBucketUs = 50;
  std::array<std::atomic<std::uint32_t>, kSvcBuckets> svc_histogram_{};
  std::thread accept_thread_;
  mutable std::mutex threads_mutex_;
  std::uint64_t next_connection_serial_ = 0;              // under threads_mutex_
  std::map<std::uint64_t, std::thread> connection_threads_;
  std::vector<std::uint64_t> finished_connections_;       // reaped by accept loop
  std::vector<int> live_fds_;  // shut down by RequestStop to unblock reads

  std::mutex encode_mutex_;
  std::map<std::pair<std::int32_t, std::int32_t>, graph::EncodedGraph> encoded_;
};

/// Process entry point of the standalone worker binary (and of test child
/// processes re-exec'ed with --cluster-worker). Flags:
///   --listen unix:/path | tcp:host:port
///   --benchmark gpt3|moe   --platform <name>
///   --layers/--seq/--hidden/--heads/--vocab/--micro N   (model geometry;
///   defaults match ir::Gpt3Config / ir::MoeConfig)
///   --model mesh=NxM,path=/x.ptck   (repeatable; one served replica each)
///   --threads N  --cache N
///   --max-inflight N  --max-conns N  --deadline-margin-us N   (admission /
///   shed knobs; env fallbacks PREDTOP_WORKER_MAX_INFLIGHT,
///   PREDTOP_WORKER_MAX_CONNS, PREDTOP_DEADLINE_MARGIN_US)
/// Exits nonzero with the typed Status on stderr when Init fails.
[[nodiscard]] int WorkerMain(int argc, char** argv);

}  // namespace predtop::cluster

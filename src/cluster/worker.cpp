#include "cluster/worker.h"

#include <sys/socket.h>

#include <algorithm>
#include <cstring>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "ir/models.h"
#include "util/env.h"
#include "util/timer.h"

namespace predtop::cluster {

Worker::Worker(WorkerOptions options) : options_(std::move(options)) {}

Worker::~Worker() { Stop(); }

fault::Status Worker::Init() {
  registry_ = options_.registry ? options_.registry
                                : std::make_shared<serve::ModelRegistry>();
  for (const WorkerModelSpec& spec : options_.models) {
    // Fail fast, but typed: a missing/corrupt checkpoint quarantines the
    // path and surfaces as the Status instead of an uncaught exception.
    const fault::Status status =
        registry_->TryRegisterFromFile(spec.key, spec.ptck_path, options_.retry);
    if (!status.ok()) return status;
  }
  if (registry_->Size() == 0) {
    return {fault::StatusCode::kInvalidArgument, "cluster worker has no models to serve"};
  }
  service_ = std::make_unique<serve::PredictionService>(registry_, options_.service);
  try {
    listener_ = Listener(options_.listen);
  } catch (...) {
    return fault::StatusFromCurrentException();
  }
  initialized_ = true;
  return fault::Status::Ok();
}

void Worker::Run() {
  if (!initialized_) throw std::logic_error("Worker::Run before a successful Init");
  while (!stop_.load(std::memory_order_acquire)) {
    Socket client = listener_.Accept(/*timeout_ms=*/100.0);
    // Reap threads of connections that have closed — without this the
    // thread table (and its stacks) grows monotonically until shutdown.
    ReapFinishedConnections();
    if (!client.Valid()) continue;
    const std::scoped_lock lock(threads_mutex_);
    if (stop_.load(std::memory_order_acquire)) break;
    // Register the fd under the same lock that spawns the thread, so a
    // concurrent RequestStop() can never miss an in-flight connection.
    live_fds_.push_back(client.Fd());
    const std::uint64_t serial = next_connection_serial_++;
    // Connection admission: over budget the connection still serves (the
    // supervisor's health probes must get through) but predicts on it
    // fast-reject with kOverloaded.
    const bool over_budget = options_.max_connections > 0 &&
                             connection_threads_.size() >= options_.max_connections;
    connection_threads_.emplace(
        serial, std::thread(
                    [this, serial, over_budget](Socket socket) {
                      ServeConnection(std::move(socket), serial, over_budget);
                    },
                    std::move(client)));
  }
  std::vector<std::thread> connections;
  {
    const std::scoped_lock lock(threads_mutex_);
    for (auto& [serial, thread] : connection_threads_) connections.push_back(std::move(thread));
    connection_threads_.clear();
    finished_connections_.clear();
  }
  for (std::thread& t : connections) {
    if (t.joinable()) t.join();
  }
}

void Worker::ReapFinishedConnections() {
  std::vector<std::thread> done;
  {
    const std::scoped_lock lock(threads_mutex_);
    for (const std::uint64_t serial : finished_connections_) {
      if (const auto it = connection_threads_.find(serial); it != connection_threads_.end()) {
        done.push_back(std::move(it->second));
        connection_threads_.erase(it);
      }
    }
    finished_connections_.clear();
  }
  // Join outside the lock: the thread may still be on its last instructions
  // between announcing itself finished and returning.
  for (std::thread& t : done) {
    if (t.joinable()) t.join();
  }
}

std::size_t Worker::ActiveConnectionThreads() const {
  const std::scoped_lock lock(threads_mutex_);
  return connection_threads_.size();
}

void Worker::Start() {
  if (!initialized_) throw std::logic_error("Worker::Start before a successful Init");
  accept_thread_ = std::thread([this] { Run(); });
}

void Worker::RequestStop() noexcept {
  stop_.store(true, std::memory_order_release);
  listener_.Close();
  const std::scoped_lock lock(threads_mutex_);
  for (const int fd : live_fds_) ::shutdown(fd, SHUT_RDWR);
}

void Worker::Stop() {
  RequestStop();
  if (accept_thread_.joinable()) accept_thread_.join();
  // Run() joins connection threads on exit; when Run() was never entered
  // (or is on the caller's stack) there may still be stragglers.
  std::map<std::uint64_t, std::thread> connections;
  {
    const std::scoped_lock lock(threads_mutex_);
    connections.swap(connection_threads_);
    finished_connections_.clear();
  }
  for (auto& [serial, t] : connections) {
    if (t.joinable()) t.join();
  }
}

void Worker::ServeConnection(Socket socket, std::uint64_t serial, bool over_budget) {
  const int my_fd = socket.Fd();  // registered in live_fds_ by the accept loop
  while (!stop_.load(std::memory_order_acquire)) {
    Frame request;
    try {
      request = RecvFrame(socket);
    } catch (const std::exception&) {
      break;  // peer hung up, stop was requested, or the frame was corrupt
    }
    requests_.fetch_add(1, std::memory_order_relaxed);
    Frame response;
    if (over_budget && request.type == MessageType::kPredictRequest) {
      shed_overload_.fetch_add(1, std::memory_order_relaxed);
      response = {MessageType::kError, request.request_id,
                  EncodeErrorBody({fault::StatusCode::kOverloaded,
                                   "worker over its connection budget; predicts shed"})};
    } else {
      response = Dispatch(request);
    }
    const bool shutting_down = request.type == MessageType::kShutdownRequest &&
                               response.type == MessageType::kShutdownResponse;
    try {
      SendFrame(socket, response);
    } catch (const std::exception&) {
      break;
    }
    if (shutting_down) {
      RequestStop();
      break;
    }
  }
  const std::scoped_lock lock(threads_mutex_);
  live_fds_.erase(std::remove(live_fds_.begin(), live_fds_.end(), my_fd), live_fds_.end());
  // Announce this thread reapable; the accept loop joins it on its next tick.
  finished_connections_.push_back(serial);
}

Frame Worker::Dispatch(const Frame& request) {
  // THD-style dispatch table: every request type maps to a handler; the
  // handler returns the response frame (possibly kError) and never throws.
  try {
    switch (request.type) {
      case MessageType::kPredictRequest:
        return HandlePredict(request);
      case MessageType::kHealthRequest:
        return HandleHealth(request);
      case MessageType::kStatsRequest:
        return HandleStats(request);
      case MessageType::kShutdownRequest:
        return {MessageType::kShutdownResponse, request.request_id, {}};
      default: {
        ErrorBody error{fault::StatusCode::kInvalidArgument,
                        std::string("worker cannot serve message type ") +
                            MessageTypeName(request.type)};
        return {MessageType::kError, request.request_id, EncodeErrorBody(error)};
      }
    }
  } catch (...) {
    const fault::Status status = fault::StatusFromCurrentException();
    return {MessageType::kError, request.request_id,
            EncodeErrorBody({status.code(), status.message()})};
  }
}

const graph::EncodedGraph& Worker::EncodedFor(ir::StageSlice slice) {
  const std::scoped_lock lock(encode_mutex_);
  const auto key = std::make_pair(slice.first_layer, slice.last_layer);
  if (const auto it = encoded_.find(key); it != encoded_.end()) return it->second;
  return encoded_.emplace(key, core::EncodeStage(options_.benchmark.build_stage(slice)))
      .first->second;
}

Frame Worker::HandlePredict(const Frame& request) {
  // Shed before decode: a request whose deadline has already passed is
  // abandoned on the client side — any CPU spent on it is pure waste.
  if (util::DeadlineExpired(request.deadline_us)) {
    shed_expired_.fetch_add(1, std::memory_order_relaxed);
    return {MessageType::kError, request.request_id,
            EncodeErrorBody({fault::StatusCode::kDeadlineExceeded,
                             "request deadline passed before the worker started it"})};
  }
  // Admission control: bound concurrent predict work so a flood queues at
  // the client (which can fail over or shed) instead of inside this process.
  struct InflightGuard {
    std::atomic<std::size_t>& counter;
    ~InflightGuard() { counter.fetch_sub(1, std::memory_order_release); }
  };
  const std::size_t inflight = inflight_predicts_.fetch_add(1, std::memory_order_acquire) + 1;
  const InflightGuard guard{inflight_predicts_};
  if (options_.max_inflight > 0 && inflight > options_.max_inflight) {
    shed_overload_.fetch_add(1, std::memory_order_relaxed);
    return {MessageType::kError, request.request_id,
            EncodeErrorBody({fault::StatusCode::kOverloaded,
                             "worker predict budget exhausted (" +
                                 std::to_string(options_.max_inflight) + " in flight)"})};
  }
  const PredictRequest predict = DecodePredictRequest(request.payload);
  if (!registry_->Find(predict.key)) {
    ErrorBody error{fault::StatusCode::kNotFound,
                    "no model registered for " + predict.key.ToString()};
    return {MessageType::kError, request.request_id, EncodeErrorBody(error)};
  }
  for (const parallel::StageQuery& q : predict.queries) {
    if (q.slice.first_layer < 0 || q.slice.last_layer <= q.slice.first_layer ||
        q.slice.last_layer > options_.benchmark.num_layers) {
      ErrorBody error{fault::StatusCode::kInvalidArgument,
                      "stage slice [" + std::to_string(q.slice.first_layer) + "," +
                          std::to_string(q.slice.last_layer) + ") is outside " +
                          options_.benchmark.name + "'s " +
                          std::to_string(options_.benchmark.num_layers) + " layers"};
      return {MessageType::kError, request.request_id, EncodeErrorBody(error)};
    }
  }
  std::vector<const graph::EncodedGraph*> graphs;
  graphs.reserve(predict.queries.size());
  for (const parallel::StageQuery& q : predict.queries) graphs.push_back(&EncodedFor(q.slice));
  const std::uint64_t started_us = util::SteadyNowUs();
  const std::vector<double> latencies =
      service_->PredictMany(predict.key, graphs, request.deadline_us);
  // Only *served* requests land in the histogram — shed/expired/errored ones
  // are counted by their own counters, not mixed into the latency profile.
  const std::uint64_t elapsed_us = util::SteadyNowUs() - started_us;
  const std::size_t bucket =
      std::min<std::uint64_t>(elapsed_us / kSvcBucketUs, kSvcBuckets - 1);
  svc_histogram_[bucket].fetch_add(1, std::memory_order_relaxed);
  PredictResponse response;
  response.results.reserve(latencies.size());
  for (const double latency : latencies) response.results.push_back({latency, {}, false});
  return {MessageType::kPredictResponse, request.request_id,
          EncodePredictResponse(response)};
}

std::uint64_t Worker::ServiceLatencyPercentileUs(double p) const {
  std::uint64_t total = 0;
  for (const auto& bucket : svc_histogram_) {
    total += bucket.load(std::memory_order_relaxed);
  }
  if (total == 0) return 0;
  const auto rank = static_cast<std::uint64_t>(p * static_cast<double>(total - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kSvcBuckets; ++b) {
    seen += svc_histogram_[b].load(std::memory_order_relaxed);
    if (seen >= rank) return (b + 1) * kSvcBucketUs;  // bucket upper bound
  }
  return kSvcBuckets * kSvcBucketUs;
}

Frame Worker::HandleHealth(const Frame& request) {
  HealthBody body;
  body.ok = true;
  body.num_models = static_cast<std::uint32_t>(registry_->Size());
  body.detail = options_.benchmark.name + " worker at " + BoundEndpoint().ToString();
  return {MessageType::kHealthResponse, request.request_id, EncodeHealthBody(body)};
}

Frame Worker::HandleStats(const Frame& request) {
  const serve::ServiceStats stats = service_->Stats();
  StatsBody body;
  body.requests = requests_.load(std::memory_order_relaxed);
  body.queries = stats.queries;
  body.forwards = stats.forwards;
  body.coalesced = stats.coalesced;
  body.batches = stats.batches;
  body.batched_queries = stats.batched_queries;
  body.cache_hits = stats.cache.hits;
  body.cache_misses = stats.cache.misses;
  // Worker-level sheds (frame deadline, admission) plus service-level sheds
  // (deadline expired mid-batch, before a forward).
  body.shed_expired = shed_expired_.load(std::memory_order_relaxed) + stats.expired;
  body.shed_overload = shed_overload_.load(std::memory_order_relaxed);
  body.late_completions = stats.late;
  body.svc_p50_us = ServiceLatencyPercentileUs(0.50);
  body.svc_p99_us = ServiceLatencyPercentileUs(0.99);
  body.program_cache_hits = stats.program_cache_hits;
  body.program_cache_misses = stats.program_cache_misses;
  body.batched_forwards = stats.batched_forwards;
  body.interleaved_forwards = stats.interleaved_forwards;
  body.autotune_sweeps = stats.autotune_sweeps;
  return {MessageType::kStatsResponse, request.request_id, EncodeStatsBody(body)};
}

// ---- standalone worker entry point ----

namespace {

[[noreturn]] void UsageError(const std::string& message) {
  std::cerr << "cluster worker: " << message << "\n"
            << "usage: --listen <unix:/path|tcp:host:port> --benchmark <gpt3|moe>\n"
            << "       [--platform <name>] [--layers N] [--seq N] [--hidden N]\n"
            << "       [--heads N] [--vocab N] [--micro N] [--experts N]\n"
            << "       [--expert-hidden N] [--threads N] [--cache N]\n"
            << "       [--max-inflight N] [--max-conns N] [--deadline-margin-us N]\n"
            << "       --model mesh=NxM,path=/ckpt.ptck [--model ...]\n";
  std::exit(2);
}

sim::Mesh ParseMeshSpec(const std::string& spec) {
  const std::size_t x = spec.find('x');
  if (x == std::string::npos || x == 0 || x + 1 == spec.size()) {
    UsageError("mesh '" + spec + "' is not NxM");
  }
  return {static_cast<std::int32_t>(std::stol(spec.substr(0, x))),
          static_cast<std::int32_t>(std::stol(spec.substr(x + 1)))};
}

}  // namespace

int WorkerMain(int argc, char** argv) {
  std::string listen_spec;
  std::string benchmark_name = "gpt3";
  std::string platform = "platform1";
  long layers = 0, seq = 0, hidden = 0, heads = 0, vocab = 0, micro = 0;
  long experts = 0, expert_hidden = 0;
  long threads = 1, cache = 0;
  long max_inflight = util::EnvInt("PREDTOP_WORKER_MAX_INFLIGHT", 0);
  long max_conns = util::EnvInt("PREDTOP_WORKER_MAX_CONNS", 0);
  long deadline_margin_us = util::EnvInt("PREDTOP_DEADLINE_MARGIN_US", 0);
  struct RawModel {
    sim::Mesh mesh;
    std::string path;
  };
  std::vector<RawModel> raw_models;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--cluster-worker") continue;  // re-exec marker of test children
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) UsageError(arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--listen") listen_spec = next();
    else if (arg == "--benchmark") benchmark_name = next();
    else if (arg == "--platform") platform = next();
    else if (arg == "--layers") layers = std::stol(next());
    else if (arg == "--seq") seq = std::stol(next());
    else if (arg == "--hidden") hidden = std::stol(next());
    else if (arg == "--heads") heads = std::stol(next());
    else if (arg == "--vocab") vocab = std::stol(next());
    else if (arg == "--micro") micro = std::stol(next());
    else if (arg == "--experts") experts = std::stol(next());
    else if (arg == "--expert-hidden") expert_hidden = std::stol(next());
    else if (arg == "--threads") threads = std::stol(next());
    else if (arg == "--cache") cache = std::stol(next());
    else if (arg == "--max-inflight") max_inflight = std::stol(next());
    else if (arg == "--max-conns") max_conns = std::stol(next());
    else if (arg == "--deadline-margin-us") deadline_margin_us = std::stol(next());
    else if (arg == "--model") {
      RawModel model;
      std::stringstream entries(next());
      std::string entry;
      while (std::getline(entries, entry, ',')) {
        const std::size_t eq = entry.find('=');
        if (eq == std::string::npos) UsageError("--model entry '" + entry + "' is not k=v");
        const std::string k = entry.substr(0, eq), v = entry.substr(eq + 1);
        if (k == "mesh") model.mesh = ParseMeshSpec(v);
        else if (k == "path") model.path = v;
        else UsageError("unknown --model key '" + k + "'");
      }
      if (model.path.empty()) UsageError("--model needs path=");
      raw_models.push_back(std::move(model));
    } else {
      UsageError("unknown flag '" + arg + "'");
    }
  }
  if (listen_spec.empty()) UsageError("--listen is required");
  if (raw_models.empty()) UsageError("at least one --model is required");

  WorkerOptions options;
  try {
    options.listen = Endpoint::Parse(listen_spec);
  } catch (const std::exception& e) {
    UsageError(e.what());
  }
  if (benchmark_name == "gpt3") {
    ir::Gpt3Config config;
    if (seq) config.seq_len = seq;
    if (hidden) config.hidden = hidden;
    if (layers) config.num_layers = layers;
    if (heads) config.num_heads = heads;
    if (vocab) config.vocab = vocab;
    if (micro) config.microbatch = micro;
    options.benchmark = core::Gpt3Benchmark(config);
  } else if (benchmark_name == "moe") {
    ir::MoeConfig config;
    if (seq) config.seq_len = seq;
    if (hidden) config.hidden = hidden;
    if (layers) config.num_layers = layers;
    if (heads) config.num_heads = heads;
    if (vocab) config.vocab = vocab;
    if (micro) config.microbatch = micro;
    if (experts) config.num_experts = experts;
    if (expert_hidden) config.expert_hidden = expert_hidden;
    options.benchmark = core::MoeBenchmark(config);
  } else {
    UsageError("unknown benchmark '" + benchmark_name + "'");
  }
  for (const RawModel& model : raw_models) {
    options.models.push_back(
        {serve::ModelKey{benchmark_name, platform, model.mesh, {}}, model.path});
  }
  options.service.threads = static_cast<std::size_t>(std::max(1L, threads));
  if (cache > 0) options.service.cache_capacity = static_cast<std::size_t>(cache);
  if (max_inflight > 0) options.max_inflight = static_cast<std::size_t>(max_inflight);
  if (max_conns > 0) options.max_connections = static_cast<std::size_t>(max_conns);
  if (deadline_margin_us > 0) {
    options.service.deadline_margin_us = static_cast<std::uint64_t>(deadline_margin_us);
  }

  Worker worker(std::move(options));
  const fault::Status status = worker.Init();
  if (!status.ok()) {
    // The satellite contract: startup failures are typed and fail fast —
    // the exit code maps the StatusCode so a supervisor can tell a corrupt
    // checkpoint (no point restarting) from a transient IO failure.
    std::cerr << "cluster worker failed to start: " << status.ToString() << "\n";
    return 10 + static_cast<int>(status.code());
  }
  std::cout << "PREDTOP_WORKER_READY " << worker.BoundEndpoint().ToString() << std::endl;
  worker.Run();
  return 0;
}

}  // namespace predtop::cluster

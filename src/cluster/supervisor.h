#pragma once
// Self-healing worker supervision. The router can only route *around* a
// dead or hung worker; the Supervisor is the component that brings it
// back: it fork/execs each worker process, watches it two ways —
//   - waitpid(WNOHANG): catches crashes and kills, with the exit status
//     mapped back into the fault::Status vocabulary (workers exit
//     `10 + StatusCode` on typed startup failures, so a corrupt checkpoint
//     is distinguishable from a transient IO error);
//   - periodic Health heartbeats over a one-shot connection: catches *hung*
//     workers (e.g. SIGSTOPped or deadlocked) that the kernel still
//     considers alive — the connect lands in the listen backlog but the
//     health reply never comes, so consecutive probe misses past the
//     threshold declare the worker hung and it is killed and restarted.
// Restarts back off exponentially, and a crash loop (too many restarts
// inside a window) parks the worker in quarantine before trying again;
// exits whose typed status says retrying is pointless (kCorruption /
// kNotFound / kInvalidArgument — the checkpoint or config is wrong, not
// the weather) mark the worker permanently failed.
//
// Deterministic drills: the `hb_drop` injection site (fault::Injector)
// makes a heartbeat probe report a miss without touching the socket, so
// hung-worker detection is testable without SIGSTOP timing games; SIGSTOP
// itself is exercised by the process-level tests.
//
// The on_up/on_down callbacks close the loop with the Router: on_up of a
// restarted worker calls Router::MarkRevived so routing returns to it
// immediately instead of waiting out the breaker backoff.

#include <sys/types.h>

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/transport.h"
#include "fault/status.h"

namespace predtop::cluster {

/// One worker process under supervision: where it listens and how to exec
/// it. `args` is the full argv tail (everything after the executable path,
/// e.g. {"--cluster-worker", "--listen", "unix:/tmp/w0.sock", ...}); the
/// endpoint must match the --listen argument so heartbeats reach it.
struct SupervisedWorkerSpec {
  Endpoint endpoint;
  std::vector<std::string> args;
  /// Extra "KEY=VALUE" entries appended to the inherited environment.
  std::vector<std::string> extra_env;
};

struct SupervisorOptions {
  /// Executable to spawn; /proc/self/exe re-execs the current binary (the
  /// pattern the process-level tests use with a --cluster-worker argv
  /// marker).
  std::string exe = "/proc/self/exe";
  double heartbeat_interval_ms = 200.0;
  /// Budget of one probe's connect+reply; a SIGSTOPped worker accepts the
  /// connection into its backlog but never answers inside this.
  double heartbeat_timeout_ms = 300.0;
  /// Consecutive probe misses before a live-looking worker is declared
  /// hung, killed and restarted.
  int max_heartbeat_misses = 3;
  /// A freshly-spawned worker gets this long to answer its first heartbeat
  /// (model loading happens before the listener binds).
  double startup_grace_ms = 10000.0;
  double backoff_initial_ms = 100.0;
  double backoff_max_ms = 2000.0;
  double backoff_multiplier = 2.0;
  /// `crash_loop_threshold` restarts inside `crash_loop_window_ms` park the
  /// worker in quarantine for `quarantine_ms` before the next attempt.
  int crash_loop_threshold = 3;
  double crash_loop_window_ms = 10000.0;
  double quarantine_ms = 1000.0;
  /// Monitor loop tick.
  double poll_interval_ms = 20.0;
};

/// Lifecycle of one supervised worker.
enum class WorkerPhase {
  kStarting,     // spawned, waiting for its first heartbeat
  kUp,           // heartbeating
  kBackoff,      // died/hung; restart scheduled
  kQuarantined,  // crash-looping; parked before the next restart
  kFailed,       // typed exit says retrying is pointless
  kStopped,      // clean exit (or Supervisor::Stop)
};
[[nodiscard]] const char* WorkerPhaseName(WorkerPhase phase) noexcept;

struct SupervisedWorkerStatus {
  WorkerPhase phase = WorkerPhase::kStopped;
  pid_t pid = -1;                 // current process (-1 when not running)
  std::uint64_t restarts = 0;     // respawns after the initial start
  int heartbeat_misses = 0;       // consecutive misses of the current run
  std::uint64_t hung_kills = 0;   // restarts caused by heartbeat loss
  fault::Status last_exit;        // classification of the last exit
};

class Supervisor {
 public:
  /// Called with the worker index on lifecycle edges, from the monitor
  /// thread. Set before Start(); must not call back into the Supervisor.
  using Callback = std::function<void(std::size_t)>;

  Supervisor(std::vector<SupervisedWorkerSpec> specs, SupervisorOptions options = {});
  ~Supervisor();
  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  void SetOnWorkerUp(Callback callback) { on_up_ = std::move(callback); }
  void SetOnWorkerDown(Callback callback) { on_down_ = std::move(callback); }

  /// Spawn every worker and start the monitor thread.
  void Start();
  /// Kill every running worker and join the monitor thread. Idempotent.
  void Stop();

  /// Block until every worker reports kUp (true) or the timeout passes.
  [[nodiscard]] bool WaitAllUp(double timeout_ms);
  /// Block until one worker reports kUp.
  [[nodiscard]] bool WaitUntilUp(std::size_t index, double timeout_ms);

  [[nodiscard]] SupervisedWorkerStatus Status(std::size_t index) const;
  [[nodiscard]] std::size_t NumWorkers() const noexcept { return workers_.size(); }
  [[nodiscard]] std::vector<Endpoint> Endpoints() const;

 private:
  struct Supervised {
    SupervisedWorkerSpec spec;
    WorkerPhase phase = WorkerPhase::kStopped;
    pid_t pid = -1;
    std::uint64_t restarts = 0;
    int heartbeat_misses = 0;
    std::uint64_t hung_kills = 0;
    fault::Status last_exit;
    double backoff_ms = 0.0;          // next restart delay
    std::int64_t resume_at_us = 0;    // when kBackoff/kQuarantined ends
    std::int64_t deadline_at_us = 0;  // startup grace / next heartbeat due
    std::vector<std::int64_t> restart_times_us;  // crash-loop window
  };

  void MonitorLoop();
  void SpawnLocked(std::size_t index);                    // holds mutex_
  void ScheduleRestartLocked(std::size_t index);          // holds mutex_
  void HandleExitLocked(std::size_t index, int wstatus);  // holds mutex_
  /// One-shot health probe (own connection; never the router's). Returns
  /// true on a healthy reply inside the heartbeat budget.
  [[nodiscard]] bool ProbeHealth(const Endpoint& endpoint);

  SupervisorOptions options_;
  std::vector<Supervised> workers_;
  Callback on_up_;
  Callback on_down_;

  mutable std::mutex mutex_;
  std::condition_variable phase_cv_;
  std::thread monitor_;
  bool running_ = false;
  std::atomic<bool> stop_{false};
};

}  // namespace predtop::cluster

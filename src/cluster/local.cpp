#include "cluster/local.h"

#include <unistd.h>

#include <atomic>
#include <stdexcept>

namespace predtop::cluster {

namespace {
std::string UniqueSocketPath(std::size_t index) {
  static std::atomic<std::uint64_t> counter{0};
  return "/tmp/predtop_cluster_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + "_" + std::to_string(index) + ".sock";
}
}  // namespace

LocalCluster::LocalCluster(core::BenchmarkModel benchmark,
                           std::shared_ptr<serve::ModelRegistry> registry,
                           LocalClusterOptions options) {
  if (options.num_workers == 0) throw std::invalid_argument("LocalCluster: no workers");
  if (!registry) throw std::invalid_argument("LocalCluster: null registry");
  for (std::size_t w = 0; w < options.num_workers; ++w) {
    WorkerOptions worker_options;
    worker_options.listen = Endpoint::Unix(UniqueSocketPath(w));
    worker_options.benchmark = benchmark;
    worker_options.registry = registry;
    worker_options.service = options.service;
    worker_options.retry = options.retry;
    worker_options.max_inflight = options.max_inflight;
    worker_options.max_connections = options.max_connections;
    auto worker = std::make_unique<Worker>(std::move(worker_options));
    const fault::Status status = worker->Init();
    if (!status.ok()) {
      StopAll();
      throw std::runtime_error("LocalCluster worker " + std::to_string(w) +
                               " failed to start: " + status.ToString());
    }
    endpoints_.push_back(worker->BoundEndpoint());
    worker->Start();
    workers_.push_back(std::move(worker));
  }
}

LocalCluster::~LocalCluster() { StopAll(); }

void LocalCluster::StopWorker(std::size_t index) { workers_.at(index)->Stop(); }

void LocalCluster::StopAll() {
  for (const auto& worker : workers_) {
    if (worker) worker->Stop();
  }
}

}  // namespace predtop::cluster

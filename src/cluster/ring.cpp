#include "cluster/ring.h"

#include <algorithm>
#include <stdexcept>

#include "util/rng.h"

namespace predtop::cluster {

HashRing::HashRing(std::size_t num_workers, std::size_t vnodes_per_worker)
    : num_workers_(num_workers) {
  if (num_workers == 0) throw std::invalid_argument("HashRing: no workers");
  if (vnodes_per_worker == 0) throw std::invalid_argument("HashRing: zero vnodes");
  points_.reserve(num_workers * vnodes_per_worker);
  for (std::size_t w = 0; w < num_workers; ++w) {
    for (std::size_t v = 0; v < vnodes_per_worker; ++v) {
      // Two mixing rounds decorrelate (worker, vnode) from the point hash.
      const std::uint64_t point =
          util::SplitMix64(util::SplitMix64(static_cast<std::uint64_t>(w) << 32 | v) ^
                           0x9d7c1fab53cfULL);
      points_.emplace_back(point, static_cast<std::uint32_t>(w));
    }
  }
  std::sort(points_.begin(), points_.end());
}

std::size_t HashRing::FirstPointAtOrAfter(std::uint64_t hash) const {
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), hash,
      [](const std::pair<std::uint64_t, std::uint32_t>& p, std::uint64_t h) {
        return p.first < h;
      });
  return it == points_.end() ? 0 : static_cast<std::size_t>(it - points_.begin());
}

std::size_t HashRing::Owner(std::uint64_t fingerprint) const {
  return points_[FirstPointAtOrAfter(util::SplitMix64(fingerprint))].second;
}

std::vector<std::size_t> HashRing::Route(std::uint64_t fingerprint,
                                         std::size_t replicas) const {
  replicas = std::min(replicas == 0 ? std::size_t{1} : replicas, num_workers_);
  std::vector<std::size_t> route;
  route.reserve(replicas);
  std::size_t at = FirstPointAtOrAfter(util::SplitMix64(fingerprint));
  for (std::size_t step = 0; step < points_.size() && route.size() < replicas; ++step) {
    const std::size_t worker = points_[(at + step) % points_.size()].second;
    if (std::find(route.begin(), route.end(), worker) == route.end()) {
      route.push_back(worker);
    }
  }
  return route;
}

}  // namespace predtop::cluster

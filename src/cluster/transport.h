#pragma once
// Socket transport of the prediction cluster: Unix-domain or TCP stream
// sockets carrying the framed wire protocol (cluster/wire.h). POSIX-only by
// design — the repo targets Linux, and the container has no other transport
// dependency to lean on.
//
// Failure vocabulary: every transport failure is a typed fault exception —
// fault::IoError for a dead/refusing/slow peer (retryable: the router fails
// over to a replica), fault::FaultError(kDeadlineExceeded) for a recv that
// overran its budget, fault::CorruptionError for a frame that arrived but
// failed magic/length/CRC validation (not retryable on the same bytes).
//
// Fault injection: SendFrame/RecvFrame thread the `net_drop` and
// `net_delay_ms`/`net_delay_p` sites from fault::Injector through the hot
// path, so a drill can kill or delay cluster traffic deterministically
// without touching kernel state (same contract as the ckpt_*/predict_*
// sites in PR 3).

#include <atomic>
#include <cstdint>
#include <string>

#include "cluster/wire.h"

namespace predtop::cluster {

/// Worker address: "unix:/path/to.sock" or "tcp:host:port".
struct Endpoint {
  enum class Kind { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;  // unix socket path
  std::string host;  // tcp host
  std::uint16_t port = 0;

  [[nodiscard]] static Endpoint Unix(std::string socket_path);
  [[nodiscard]] static Endpoint Tcp(std::string host, std::uint16_t port);
  /// Parse "unix:/path" / "tcp:host:port"; throws std::invalid_argument.
  [[nodiscard]] static Endpoint Parse(const std::string& spec);
  [[nodiscard]] std::string ToString() const;
};

/// Move-only RAII wrapper of one connected stream socket.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket();
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] bool Valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int Fd() const noexcept { return fd_; }
  void Close() noexcept;

  /// Send all of `bytes` (loops over partial sends; MSG_NOSIGNAL, so a dead
  /// peer raises fault::IoError instead of SIGPIPE).
  void SendAll(const void* bytes, std::size_t size);

  /// Receive exactly `size` bytes. `deadline_ms <= 0` blocks indefinitely;
  /// otherwise the whole read must finish inside the budget or
  /// fault::FaultError(kDeadlineExceeded) is thrown. EOF mid-read throws
  /// fault::IoError.
  void RecvAll(void* bytes, std::size_t size, double deadline_ms = 0.0);

 private:
  int fd_ = -1;
};

/// Listening socket bound to an endpoint. For tcp with port 0 the kernel
/// picks a free port, readable from BoundEndpoint().
class Listener {
 public:
  Listener() = default;
  explicit Listener(const Endpoint& endpoint);
  ~Listener();
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  [[nodiscard]] bool Valid() const noexcept {
    return fd_.load(std::memory_order_acquire) >= 0;
  }
  [[nodiscard]] const Endpoint& BoundEndpoint() const noexcept { return endpoint_; }

  /// Accept one connection; `timeout_ms <= 0` blocks. Returns an invalid
  /// Socket on timeout or when the listener was Closed from another thread.
  [[nodiscard]] Socket Accept(double timeout_ms = 0.0);

  /// Unblock any Accept in flight and release the fd (and unix socket file).
  /// Safe to call from a different thread than the one blocked in Accept —
  /// the fd is claimed atomically, so the pair races only at the kernel
  /// level Accept is written to tolerate (accept on a closed fd fails).
  void Close() noexcept;

 private:
  // Atomic because Close() is the cross-thread stop signal of a worker's
  // accept loop (Worker::RequestStop runs on the controller thread).
  std::atomic<int> fd_{-1};
  Endpoint endpoint_;
};

/// Connect to a worker, retrying refused connections (the worker may still
/// be binding) until `timeout_ms` elapses. Throws fault::IoError on failure.
[[nodiscard]] Socket ConnectTo(const Endpoint& endpoint, double timeout_ms = 2000.0);

/// Frame a message onto the socket (one SendAll of header+payload+CRC).
/// Injection point for net_drop / net_delay.
void SendFrame(Socket& socket, const Frame& frame);

/// Read one frame off the socket, validating header bounds before the
/// payload allocation and the CRC after. Injection point for net_drop /
/// net_delay. `deadline_ms <= 0` blocks indefinitely.
[[nodiscard]] Frame RecvFrame(Socket& socket, double deadline_ms = 0.0);

}  // namespace predtop::cluster

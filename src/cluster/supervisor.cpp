#include "cluster/supervisor.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "fault/injector.h"
#include "util/timer.h"

extern char** environ;

namespace predtop::cluster {

namespace {

std::int64_t NowUs() { return static_cast<std::int64_t>(util::SteadyNowUs()); }

std::int64_t MsToUs(double ms) { return static_cast<std::int64_t>(ms * 1000.0); }

/// Typed exits where a restart would fail identically: the checkpoint or
/// configuration is wrong, not the weather.
bool PermanentStatus(fault::StatusCode code) noexcept {
  return code == fault::StatusCode::kCorruption ||
         code == fault::StatusCode::kNotFound ||
         code == fault::StatusCode::kInvalidArgument;
}

}  // namespace

const char* WorkerPhaseName(WorkerPhase phase) noexcept {
  switch (phase) {
    case WorkerPhase::kStarting: return "starting";
    case WorkerPhase::kUp: return "up";
    case WorkerPhase::kBackoff: return "backoff";
    case WorkerPhase::kQuarantined: return "quarantined";
    case WorkerPhase::kFailed: return "failed";
    case WorkerPhase::kStopped: return "stopped";
  }
  return "unknown";
}

Supervisor::Supervisor(std::vector<SupervisedWorkerSpec> specs, SupervisorOptions options)
    : options_(std::move(options)) {
  if (specs.empty()) throw std::invalid_argument("Supervisor: no workers");
  workers_.reserve(specs.size());
  for (SupervisedWorkerSpec& spec : specs) {
    Supervised worker;
    worker.spec = std::move(spec);
    workers_.push_back(std::move(worker));
  }
}

Supervisor::~Supervisor() { Stop(); }

std::vector<Endpoint> Supervisor::Endpoints() const {
  std::vector<Endpoint> endpoints;
  endpoints.reserve(workers_.size());
  for (const Supervised& worker : workers_) endpoints.push_back(worker.spec.endpoint);
  return endpoints;
}

void Supervisor::Start() {
  const std::scoped_lock lock(mutex_);
  if (running_) throw std::logic_error("Supervisor::Start called twice");
  stop_.store(false, std::memory_order_release);
  for (std::size_t i = 0; i < workers_.size(); ++i) SpawnLocked(i);
  monitor_ = std::thread([this] { MonitorLoop(); });
  running_ = true;
}

void Supervisor::Stop() {
  {
    const std::scoped_lock lock(mutex_);
    if (!running_) return;
    stop_.store(true, std::memory_order_release);
  }
  phase_cv_.notify_all();
  if (monitor_.joinable()) monitor_.join();
  const std::scoped_lock lock(mutex_);
  for (Supervised& worker : workers_) {
    if (worker.pid > 0) {
      // SIGKILL reaches even a SIGSTOPped process; reap the zombie here so
      // no supervised child outlives its supervisor.
      ::kill(worker.pid, SIGKILL);
      int wstatus = 0;
      ::waitpid(worker.pid, &wstatus, 0);
      worker.pid = -1;
    }
    worker.phase = WorkerPhase::kStopped;
  }
  running_ = false;
}

bool Supervisor::WaitAllUp(double timeout_ms) {
  std::unique_lock lock(mutex_);
  return phase_cv_.wait_for(lock, std::chrono::duration<double, std::milli>(timeout_ms),
                            [this] {
                              return std::all_of(
                                  workers_.begin(), workers_.end(),
                                  [](const Supervised& w) { return w.phase == WorkerPhase::kUp; });
                            });
}

bool Supervisor::WaitUntilUp(std::size_t index, double timeout_ms) {
  std::unique_lock lock(mutex_);
  return phase_cv_.wait_for(
      lock, std::chrono::duration<double, std::milli>(timeout_ms),
      [this, index] { return workers_.at(index).phase == WorkerPhase::kUp; });
}

SupervisedWorkerStatus Supervisor::Status(std::size_t index) const {
  const std::scoped_lock lock(mutex_);
  const Supervised& worker = workers_.at(index);
  SupervisedWorkerStatus status;
  status.phase = worker.phase;
  status.pid = worker.pid;
  status.restarts = worker.restarts;
  status.heartbeat_misses = worker.heartbeat_misses;
  status.hung_kills = worker.hung_kills;
  status.last_exit = worker.last_exit;
  return status;
}

void Supervisor::SpawnLocked(std::size_t index) {
  Supervised& worker = workers_[index];
  // argv: exe + spec args. envp: inherited environment + spec extras. The
  // storage stays alive through fork (the child sees a copy-on-write
  // snapshot of this frame until execve replaces the image).
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>(options_.exe.c_str()));
  for (const std::string& arg : worker.spec.args) {
    argv.push_back(const_cast<char*>(arg.c_str()));
  }
  argv.push_back(nullptr);
  std::vector<char*> envp;
  for (char** e = environ; *e != nullptr; ++e) envp.push_back(*e);
  for (const std::string& kv : worker.spec.extra_env) {
    envp.push_back(const_cast<char*>(kv.c_str()));
  }
  envp.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execve(options_.exe.c_str(), argv.data(), envp.data());
    _exit(127);  // exec failed; classified as permanent by HandleExitLocked
  }
  if (pid < 0) {
    // fork failed (transient resource pressure): try again after a backoff.
    worker.last_exit = {fault::StatusCode::kIoError,
                        std::string("fork failed: ") + std::strerror(errno)};
    ScheduleRestartLocked(index);
    return;
  }
  worker.pid = pid;
  worker.phase = WorkerPhase::kStarting;
  worker.heartbeat_misses = 0;
  worker.deadline_at_us = NowUs() + MsToUs(options_.startup_grace_ms);
  phase_cv_.notify_all();
}

void Supervisor::ScheduleRestartLocked(std::size_t index) {
  Supervised& worker = workers_[index];
  const std::int64_t now = NowUs();
  // Crash-loop detection: count restarts inside the rolling window.
  worker.restart_times_us.push_back(now);
  const std::int64_t window_floor = now - MsToUs(options_.crash_loop_window_ms);
  worker.restart_times_us.erase(
      std::remove_if(worker.restart_times_us.begin(), worker.restart_times_us.end(),
                     [&](std::int64_t t) { return t < window_floor; }),
      worker.restart_times_us.end());
  worker.backoff_ms = worker.backoff_ms <= 0.0
                          ? options_.backoff_initial_ms
                          : std::min(options_.backoff_max_ms,
                                     worker.backoff_ms * options_.backoff_multiplier);
  if (static_cast<int>(worker.restart_times_us.size()) >= options_.crash_loop_threshold) {
    worker.phase = WorkerPhase::kQuarantined;
    worker.resume_at_us = now + MsToUs(options_.quarantine_ms);
    worker.restart_times_us.clear();
  } else {
    worker.phase = WorkerPhase::kBackoff;
    worker.resume_at_us = now + MsToUs(worker.backoff_ms);
  }
  worker.restarts++;
  phase_cv_.notify_all();
}

void Supervisor::HandleExitLocked(std::size_t index, int wstatus) {
  Supervised& worker = workers_[index];
  worker.pid = -1;  // reaped
  if (stop_.load(std::memory_order_acquire)) {
    worker.phase = WorkerPhase::kStopped;
    return;
  }
  if (worker.phase == WorkerPhase::kBackoff || worker.phase == WorkerPhase::kQuarantined) {
    return;  // we killed it (hung); the restart is already scheduled
  }
  if (WIFEXITED(wstatus)) {
    const int code = WEXITSTATUS(wstatus);
    if (code == 0) {
      worker.phase = WorkerPhase::kStopped;  // clean shutdown; not ours to undo
      worker.last_exit = fault::Status::Ok();
      phase_cv_.notify_all();
      return;
    }
    if (code >= 10 && code <= 10 + static_cast<int>(fault::StatusCode::kOverloaded)) {
      // The worker's fail-fast startup contract: exit 10 + StatusCode.
      const auto status_code = static_cast<fault::StatusCode>(code - 10);
      worker.last_exit = {status_code, std::string("worker exited with typed status ") +
                                           fault::StatusCodeName(status_code)};
      if (PermanentStatus(status_code)) {
        worker.phase = WorkerPhase::kFailed;  // restarting cannot help
        phase_cv_.notify_all();
        return;
      }
      ScheduleRestartLocked(index);
      return;
    }
    if (code == 2 || code == 127) {  // usage error / exec failure
      worker.last_exit = {fault::StatusCode::kInvalidArgument,
                          "worker exited " + std::to_string(code) + " (bad argv or exec)"};
      worker.phase = WorkerPhase::kFailed;
      phase_cv_.notify_all();
      return;
    }
    worker.last_exit = {fault::StatusCode::kInternal,
                        "worker exited " + std::to_string(code)};
    ScheduleRestartLocked(index);
    return;
  }
  if (WIFSIGNALED(wstatus)) {
    worker.last_exit = {fault::StatusCode::kUnavailable,
                        "worker killed by signal " + std::to_string(WTERMSIG(wstatus))};
    ScheduleRestartLocked(index);
    return;
  }
  worker.last_exit = {fault::StatusCode::kInternal, "unrecognized wait status"};
  ScheduleRestartLocked(index);
}

bool Supervisor::ProbeHealth(const Endpoint& endpoint) {
  // Deterministic hung-worker drills: hb_drop makes the probe miss without
  // touching the socket.
  if (auto& injector = fault::Injector::Global();
      injector.Enabled() && injector.ShouldInject(fault::sites::kHbDrop)) {
    return false;
  }
  try {
    // One-shot connection: never the router's (a probe must not queue
    // behind a slow predict on a shared stream). Health frames bypass the
    // worker's admission control, so an overloaded-but-live worker still
    // heartbeats.
    Socket socket = ConnectTo(endpoint, options_.heartbeat_timeout_ms);
    SendFrame(socket, Frame{MessageType::kHealthRequest, 1, {}});
    const Frame reply = RecvFrame(socket, options_.heartbeat_timeout_ms);
    return reply.type == MessageType::kHealthResponse && DecodeHealthBody(reply.payload).ok;
  } catch (...) {
    return false;
  }
}

void Supervisor::MonitorLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    // Phase 1 (locked): reap exits, restart due workers, pick probe targets.
    struct Probe {
      std::size_t index;
      Endpoint endpoint;
      pid_t pid;
    };
    std::vector<Probe> probes;
    std::vector<std::size_t> went_down;
    {
      const std::scoped_lock lock(mutex_);
      const std::int64_t now = NowUs();
      for (std::size_t i = 0; i < workers_.size(); ++i) {
        Supervised& worker = workers_[i];
        if (worker.pid > 0) {
          int wstatus = 0;
          const pid_t reaped = ::waitpid(worker.pid, &wstatus, WNOHANG);
          if (reaped == worker.pid) {
            const bool was_up = worker.phase == WorkerPhase::kUp;
            HandleExitLocked(i, wstatus);
            if (was_up) went_down.push_back(i);
          }
        }
        switch (worker.phase) {
          case WorkerPhase::kBackoff:
          case WorkerPhase::kQuarantined:
            if (worker.pid < 0 && now >= worker.resume_at_us) SpawnLocked(i);
            break;
          case WorkerPhase::kStarting:
            if (worker.pid > 0) probes.push_back({i, worker.spec.endpoint, worker.pid});
            break;
          case WorkerPhase::kUp:
            if (worker.pid > 0 && now >= worker.deadline_at_us) {
              probes.push_back({i, worker.spec.endpoint, worker.pid});
            }
            break;
          default:
            break;
        }
      }
    }
    for (const std::size_t i : went_down) {
      if (on_down_) on_down_(i);
    }

    // Phase 2 (unlocked): probe — a probe can block for the whole heartbeat
    // budget, and Status()/WaitUntilUp() must stay responsive meanwhile.
    // Only this thread mutates worker state, so the snapshot stays valid;
    // the pid guard below discards results that raced an exit.
    for (const Probe& probe : probes) {
      const bool healthy = ProbeHealth(probe.endpoint);
      std::vector<std::size_t> notify_up;
      std::vector<std::size_t> notify_down;
      {
        const std::scoped_lock lock(mutex_);
        Supervised& worker = workers_[probe.index];
        if (worker.pid != probe.pid ||
            (worker.phase != WorkerPhase::kStarting && worker.phase != WorkerPhase::kUp)) {
          continue;  // exited (and was reaped) while we probed
        }
        const std::int64_t now = NowUs();
        if (healthy) {
          const bool came_up = worker.phase == WorkerPhase::kStarting;
          worker.phase = WorkerPhase::kUp;
          worker.heartbeat_misses = 0;
          worker.backoff_ms = 0.0;  // a healthy worker earns a fresh backoff
          worker.deadline_at_us = now + MsToUs(options_.heartbeat_interval_ms);
          if (came_up) notify_up.push_back(probe.index);
          phase_cv_.notify_all();
        } else if (worker.phase == WorkerPhase::kStarting) {
          if (now >= worker.deadline_at_us) {
            // Never came up inside the grace period: treat as hung.
            worker.last_exit = {fault::StatusCode::kUnavailable,
                                "worker never heartbeated inside the startup grace"};
            worker.hung_kills++;
            ::kill(worker.pid, SIGKILL);
            ScheduleRestartLocked(probe.index);
          }
        } else {
          worker.heartbeat_misses++;
          worker.deadline_at_us = now + MsToUs(options_.heartbeat_interval_ms);
          if (worker.heartbeat_misses >= options_.max_heartbeat_misses) {
            // Alive to the kernel, dead to us: SIGSTOPped or deadlocked.
            // SIGKILL is delivered even to a stopped process; the exit is
            // reaped on the next tick (phase is already kBackoff then).
            worker.last_exit = {fault::StatusCode::kUnavailable,
                                "worker hung: missed " +
                                    std::to_string(worker.heartbeat_misses) +
                                    " heartbeats"};
            worker.hung_kills++;
            ::kill(worker.pid, SIGKILL);
            ScheduleRestartLocked(probe.index);
            notify_down.push_back(probe.index);
          }
        }
      }
      for (const std::size_t i : notify_up) {
        if (on_up_) on_up_(i);
      }
      for (const std::size_t i : notify_down) {
        if (on_down_) on_down_(i);
      }
      if (stop_.load(std::memory_order_acquire)) break;
    }

    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(options_.poll_interval_ms));
  }
}

}  // namespace predtop::cluster

#pragma once
// ClusterOracle: the batch-oracle face of the prediction cluster. It
// implements exactly the interface serve::ServingOracle gives the inter-op
// DP — operator()(slice, mesh), PredictBatch, AsOracle/AsBatchOracle — but
// answers through a cluster::Router instead of an in-process
// PredictionService, so `fig10_optimization` (and any plan search) can run
// end-to-end against real worker processes and the resulting plan can be
// compared `==` against the in-process one.
//
// Degradation ladder (mirrors ServingOracleOptions semantics): a query the
// router could not answer from any replica — or that answered non-finite —
// retries up to max_attempts, then drops to the analytical FallbackOracle
// and is tagged degraded. With no fallback configured the cell surrenders
// as +inf (degraded), and the DP completes on the remaining cells.

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/router.h"
#include "serve/fallback.h"
#include "serve/oracle.h"

namespace predtop::cluster {

struct ClusterOracleOptions {
  /// Router round-trips per query before degrading (failover inside the
  /// router does not count — this is full-ladder retries).
  int max_attempts = 1;
  /// Bottom of the ladder; null = failed cells become +inf (degraded).
  std::shared_ptr<serve::FallbackOracle> fallback;
};

class ClusterOracle {
 public:
  /// `mesh_keys[i]` names the served model of `meshes[i]` (the same keys the
  /// workers registered their checkpoints under). `encoder` resolves slices
  /// locally — it feeds the routing fingerprint, never the wire.
  ClusterOracle(Router& router, std::vector<sim::Mesh> meshes,
                std::vector<serve::ModelKey> mesh_keys, serve::StageEncoder encoder,
                std::int32_t max_span = 0, ClusterOracleOptions options = {});

  [[nodiscard]] parallel::StageLatencyResult operator()(ir::StageSlice slice,
                                                        sim::Mesh mesh) const;

  /// Whole stage-latency table at once: bucketed per mesh model, one
  /// Router::PredictMany per bucket (which shards, batches and coalesces
  /// cluster-wide), failed cells re-priced down the ladder.
  [[nodiscard]] std::vector<parallel::StageLatencyResult> PredictBatch(
      std::span<const parallel::StageQuery> queries) const;

  [[nodiscard]] parallel::StageLatencyOracle AsOracle() const;
  [[nodiscard]] parallel::StageLatencyBatchOracle AsBatchOracle() const;

  [[nodiscard]] serve::OracleStats Stats() const;
  void ResetStats();

 private:
  /// Fingerprint used for routing/coalescing: the encoded graph's cached
  /// WL fingerprint (computed on demand when a hand-built EncodedGraph left
  /// it unset).
  [[nodiscard]] std::uint64_t FingerprintFor(ir::StageSlice slice) const;
  [[nodiscard]] parallel::StageLatencyResult Degrade(ir::StageSlice slice,
                                                     sim::Mesh mesh) const;
  [[nodiscard]] parallel::StageLatencyResult PredictOne(std::size_t mesh_index,
                                                        ir::StageSlice slice,
                                                        sim::Mesh mesh) const;

  Router& router_;
  std::vector<sim::Mesh> meshes_;
  std::vector<serve::ModelKey> mesh_keys_;
  serve::StageEncoder encoder_;
  std::int32_t max_span_;
  ClusterOracleOptions options_;
  mutable std::atomic<std::uint64_t> queries_{0};
  mutable std::atomic<std::uint64_t> degraded_{0};
};

}  // namespace predtop::cluster

#include "cluster/router.h"

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "util/rng.h"

namespace predtop::cluster {

namespace {

using Clock = std::chrono::steady_clock;

/// Cluster-wide coalescing key of one (model, stage) query.
std::uint64_t CoalesceKey(const serve::ModelKey& key, std::uint64_t fingerprint) {
  return key.Hash() ^ util::SplitMix64(fingerprint);
}

}  // namespace

Router::Router(std::vector<Endpoint> workers, RouterOptions options)
    : ring_(workers.size(), options.vnodes_per_worker), options_(options) {
  if (workers.empty()) throw std::invalid_argument("Router: no workers");
  if (options_.replicas == 0) throw std::invalid_argument("Router: zero replicas");
  workers_.reserve(workers.size());
  for (Endpoint& endpoint : workers) {
    auto state = std::make_unique<WorkerState>();
    state->endpoint = std::move(endpoint);
    workers_.push_back(std::move(state));
  }
}

Router::~Router() = default;

bool Router::Usable(const WorkerState& worker) const {
  if (worker.alive.load(std::memory_order_acquire)) return true;
  const double down_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - worker.died_at).count();
  return down_ms >= options_.revive_after_ms;
}

void Router::MarkDead(WorkerState& worker) {
  worker.died_at = Clock::now();
  worker.alive.store(false, std::memory_order_release);
  worker_failures_.fetch_add(1, std::memory_order_relaxed);
}

bool Router::WorkerAlive(std::size_t worker) const {
  return workers_.at(worker)->alive.load(std::memory_order_acquire);
}

Frame Router::Call(WorkerState& worker, MessageType type, std::string payload) {
  const std::scoped_lock lock(worker.mutex);
  try {
    if (!worker.socket.Valid()) {
      worker.socket = ConnectTo(worker.endpoint, options_.connect_timeout_ms);
    }
    Frame request{type, worker.next_request_id++, std::move(payload)};
    SendFrame(worker.socket, request);
    Frame response = RecvFrame(worker.socket, options_.request_timeout_ms);
    if (response.request_id != request.request_id) {
      // The stream lost sync (e.g. a previous deadline abandoned a reply
      // mid-flight); the connection is useless from here on.
      throw fault::IoError("worker " + worker.endpoint.ToString() +
                           " answered request " + std::to_string(response.request_id) +
                           " instead of " + std::to_string(request.request_id));
    }
    worker.alive.store(true, std::memory_order_release);
    return response;
  } catch (...) {
    // Transport failure or corrupt/out-of-sync frame: drop the connection
    // so the next attempt reconnects cleanly, and let routing fail over.
    worker.socket.Close();
    MarkDead(worker);
    throw;
  }
}

std::vector<Router::Reply> Router::PredictMany(const serve::ModelKey& key,
                                               std::span<const parallel::StageQuery> queries,
                                               std::span<const std::uint64_t> fingerprints) {
  if (queries.size() != fingerprints.size()) {
    throw std::invalid_argument("Router::PredictMany: queries/fingerprints size mismatch");
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
  queries_.fetch_add(queries.size(), std::memory_order_relaxed);

  // One slot per *distinct* (model, fingerprint) in the batch; indices map
  // every query onto its slot.
  struct Slot {
    parallel::StageQuery query;
    std::uint64_t fingerprint = 0;
    std::uint64_t coalesce_key = 0;
    bool owner = false;                  // this call performs the RPC
    std::promise<Reply> promise;         // owner slots fulfill this
    std::shared_future<Reply> future;    // everyone reads this
    std::vector<std::size_t> route;      // candidate workers, owner first
    std::size_t tried = 0;               // candidates burned by failovers
  };
  std::vector<Slot> slots;
  std::vector<std::size_t> slot_of_query(queries.size());
  {
    std::unordered_map<std::uint64_t, std::size_t> slot_index;
    const std::scoped_lock lock(inflight_mutex_);
    for (std::size_t q = 0; q < queries.size(); ++q) {
      const std::uint64_t ck = CoalesceKey(key, fingerprints[q]);
      if (const auto it = slot_index.find(ck); it != slot_index.end()) {
        slot_of_query[q] = it->second;  // duplicate within this batch
        continue;
      }
      Slot slot;
      slot.query = queries[q];
      slot.fingerprint = fingerprints[q];
      slot.coalesce_key = ck;
      if (const auto inflight = inflight_.find(ck); inflight != inflight_.end()) {
        // Another thread's RPC is already pricing this query cluster-wide.
        slot.owner = false;
        slot.future = inflight->second;
        coalesced_.fetch_add(1, std::memory_order_relaxed);
      } else {
        slot.owner = true;
        slot.future = slot.promise.get_future().share();
        inflight_.emplace(ck, slot.future);
        slot.route = ring_.Route(fingerprints[q], options_.replicas);
      }
      slot_index.emplace(ck, slots.size());
      slot_of_query[q] = slots.size();
      slots.push_back(std::move(slot));
    }
  }

  // Round-based failover dispatch of the owned slots: each round groups the
  // still-unanswered slots by their next candidate worker, issues one
  // PredictRequest frame per worker (concurrently when several shards are
  // involved), and moves transport-failed slots to their next replica.
  std::vector<std::size_t> remaining;
  for (std::size_t s = 0; s < slots.size(); ++s) {
    if (slots[s].owner) remaining.push_back(s);
  }
  while (!remaining.empty()) {
    // Pick each slot's candidate for this round: the first untried worker
    // that looks usable, else the first untried one at all (gives a dead
    // worker its half-open revival probe when no alternative is left).
    std::unordered_map<std::size_t, std::vector<std::size_t>> by_worker;
    std::vector<std::size_t> exhausted;
    for (const std::size_t s : remaining) {
      Slot& slot = slots[s];
      std::size_t candidate = slot.route.size();
      for (std::size_t r = slot.tried; r < slot.route.size(); ++r) {
        if (Usable(*workers_[slot.route[r]])) {
          if (r != slot.tried) std::swap(slot.route[slot.tried], slot.route[r]);
          candidate = slot.route[slot.tried];
          break;
        }
      }
      if (candidate == slot.route.size() && slot.tried < slot.route.size()) {
        candidate = slot.route[slot.tried];
      }
      if (slot.tried >= slot.route.size()) {
        exhausted.push_back(s);
      } else {
        by_worker[candidate].push_back(s);
      }
    }
    for (const std::size_t s : exhausted) {
      unanswered_.fetch_add(1, std::memory_order_relaxed);
      slots[s].promise.set_value(Reply{});  // ok == false: every replica failed
    }
    remaining.clear();
    if (by_worker.empty()) break;

    std::mutex retry_mutex;
    std::vector<std::size_t> retry;
    auto run_group = [&](std::size_t worker_index, const std::vector<std::size_t>& group) {
      PredictRequest request;
      request.key = key;
      request.queries.reserve(group.size());
      for (const std::size_t s : group) request.queries.push_back(slots[s].query);
      bool transport_failed = false;
      ErrorBody worker_error;
      PredictResponse response;
      try {
        Frame reply = Call(*workers_[worker_index], MessageType::kPredictRequest,
                           EncodePredictRequest(request));
        if (reply.type == MessageType::kError) {
          worker_error = DecodeErrorBody(reply.payload);
        } else if (reply.type == MessageType::kPredictResponse) {
          response = DecodePredictResponse(reply.payload);
          if (response.results.size() != group.size()) {
            throw fault::CorruptionError("worker answered " +
                                         std::to_string(response.results.size()) +
                                         " results for " + std::to_string(group.size()) +
                                         " queries");
          }
        } else {
          throw fault::CorruptionError(std::string("unexpected response type ") +
                                       MessageTypeName(reply.type));
        }
      } catch (...) {
        transport_failed = true;
      }
      if (transport_failed) {
        const std::scoped_lock lock(retry_mutex);
        for (const std::size_t s : group) {
          slots[s].tried++;
          failovers_.fetch_add(1, std::memory_order_relaxed);
          retry.push_back(s);
        }
        return;
      }
      if (!response.results.empty()) {
        for (std::size_t i = 0; i < group.size(); ++i) {
          const WireLatency& w = response.results[i];
          slots[group[i]].promise.set_value(
              Reply{true, w.latency_s, w.config, w.degraded});
        }
        return;
      }
      // Typed worker error. kNotFound / kInvalidArgument would fail the
      // same way on every replica (homogeneous model set) — definitive.
      // Anything else (an injected forward fault, an internal error) may be
      // transient, so it burns the candidate and fails over.
      if (worker_error.code == fault::StatusCode::kNotFound ||
          worker_error.code == fault::StatusCode::kInvalidArgument) {
        const std::scoped_lock lock(retry_mutex);
        for (const std::size_t s : group) {
          unanswered_.fetch_add(1, std::memory_order_relaxed);
          slots[s].promise.set_value(Reply{});
        }
        return;
      }
      const std::scoped_lock lock(retry_mutex);
      for (const std::size_t s : group) {
        slots[s].tried++;
        failovers_.fetch_add(1, std::memory_order_relaxed);
        retry.push_back(s);
      }
    };

    if (by_worker.size() == 1) {
      const auto& [worker_index, group] = *by_worker.begin();
      run_group(worker_index, group);
    } else {
      std::vector<std::thread> threads;
      threads.reserve(by_worker.size());
      for (const auto& [worker_index, group] : by_worker) {
        threads.emplace_back(run_group, worker_index, std::cref(group));
      }
      for (std::thread& t : threads) t.join();
    }
    remaining.swap(retry);
  }

  // Owned slots are resolved; drop them from the cluster-wide in-flight map
  // before waiting on joined ones (which another thread resolves).
  {
    const std::scoped_lock lock(inflight_mutex_);
    for (const Slot& slot : slots) {
      if (slot.owner) inflight_.erase(slot.coalesce_key);
    }
  }

  std::vector<Reply> replies(queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    replies[q] = slots[slot_of_query[q]].future.get();
  }
  return replies;
}

Router::Reply Router::Predict(const serve::ModelKey& key, parallel::StageQuery query,
                              std::uint64_t fingerprint) {
  const parallel::StageQuery queries[]{query};
  const std::uint64_t fingerprints[]{fingerprint};
  return PredictMany(key, queries, fingerprints)[0];
}

std::vector<bool> Router::Health() {
  std::vector<bool> healthy(workers_.size(), false);
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    try {
      const Frame reply = Call(*workers_[w], MessageType::kHealthRequest, {});
      healthy[w] = reply.type == MessageType::kHealthResponse &&
                   DecodeHealthBody(reply.payload).ok;
    } catch (...) {
      healthy[w] = false;
    }
  }
  return healthy;
}

std::vector<std::optional<StatsBody>> Router::WorkerStats() {
  std::vector<std::optional<StatsBody>> stats(workers_.size());
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    try {
      const Frame reply = Call(*workers_[w], MessageType::kStatsRequest, {});
      if (reply.type == MessageType::kStatsResponse) {
        stats[w] = DecodeStatsBody(reply.payload);
      }
    } catch (...) {
      stats[w] = std::nullopt;
    }
  }
  return stats;
}

void Router::ShutdownWorkers() {
  for (const auto& worker : workers_) {
    try {
      (void)Call(*worker, MessageType::kShutdownRequest, {});
    } catch (...) {
      // Already gone — which is the goal.
    }
  }
}

RouterStats Router::Stats() const {
  return {requests_.load(std::memory_order_relaxed),
          queries_.load(std::memory_order_relaxed),
          coalesced_.load(std::memory_order_relaxed),
          failovers_.load(std::memory_order_relaxed),
          worker_failures_.load(std::memory_order_relaxed),
          unanswered_.load(std::memory_order_relaxed)};
}

}  // namespace predtop::cluster

#include "cluster/router.h"

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "util/env.h"
#include "util/rng.h"
#include "util/timer.h"

namespace predtop::cluster {

namespace {

/// Cluster-wide coalescing key of one (model, stage) query.
std::uint64_t CoalesceKey(const serve::ModelKey& key, std::uint64_t fingerprint) {
  return key.Hash() ^ util::SplitMix64(fingerprint);
}

Router::Reply FailedReply(fault::StatusCode code) {
  Router::Reply reply;
  reply.code = code;
  return reply;
}

}  // namespace

RouterOptions RouterOptions::FromEnv() {
  RouterOptions options;
  options.default_deadline_ms = util::EnvDouble("PREDTOP_DEADLINE_MS", 0.0);
  return options;
}

const char* BreakerStateName(BreakerState state) noexcept {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "unknown";
}

Router::Router(std::vector<Endpoint> workers, RouterOptions options)
    : ring_(workers.size(), options.vnodes_per_worker), options_(options) {
  if (workers.empty()) throw std::invalid_argument("Router: no workers");
  if (options_.replicas == 0) throw std::invalid_argument("Router: zero replicas");
  workers_.reserve(workers.size());
  for (Endpoint& endpoint : workers) {
    auto state = std::make_unique<WorkerState>();
    state->endpoint = std::move(endpoint);
    workers_.push_back(std::move(state));
  }
  retry_tokens_milli_.store(
      static_cast<std::int64_t>(options_.retry_budget_initial * 1000.0),
      std::memory_order_relaxed);
}

Router::~Router() = default;

bool Router::Usable(const WorkerState& worker) const {
  if (worker.alive.load(std::memory_order_acquire)) return true;
  const double down_ms =
      static_cast<double>(static_cast<std::int64_t>(util::SteadyNowUs()) -
                          worker.died_at_us.load(std::memory_order_acquire)) /
      1000.0;
  return down_ms >= options_.revive_after_ms;  // half-open: allow one probe
}

void Router::MarkDead(WorkerState& worker) {
  worker.died_at_us.store(static_cast<std::int64_t>(util::SteadyNowUs()),
                          std::memory_order_release);
  // Count the closed->open transition once; repeated failures of an
  // already-open breaker only refresh the backoff clock.
  if (worker.alive.exchange(false, std::memory_order_acq_rel)) {
    breaker_trips_.fetch_add(1, std::memory_order_relaxed);
  }
  worker_failures_.fetch_add(1, std::memory_order_relaxed);
  const std::scoped_lock lock(worker.window_mutex);
  worker.window_samples = worker.window_errors = 0;
}

void Router::RecordTyped(WorkerState& worker, bool error) {
  bool trip = false;
  {
    const std::scoped_lock lock(worker.window_mutex);
    const std::int64_t now_us = static_cast<std::int64_t>(util::SteadyNowUs());
    if (worker.window_samples == 0 ||
        static_cast<double>(now_us - worker.window_start_us) / 1000.0 >
            options_.breaker_window_ms) {
      worker.window_start_us = now_us;
      worker.window_samples = worker.window_errors = 0;
    }
    worker.window_samples++;
    if (error) worker.window_errors++;
    trip = worker.window_samples >= options_.breaker_min_samples &&
           static_cast<double>(worker.window_errors) >=
               options_.breaker_error_rate * static_cast<double>(worker.window_samples);
  }
  if (trip) MarkDead(worker);
}

bool Router::WorkerAlive(std::size_t worker) const {
  return workers_.at(worker)->alive.load(std::memory_order_acquire);
}

BreakerState Router::WorkerBreaker(std::size_t worker) const {
  const WorkerState& state = *workers_.at(worker);
  if (state.alive.load(std::memory_order_acquire)) return BreakerState::kClosed;
  return Usable(state) ? BreakerState::kHalfOpen : BreakerState::kOpen;
}

void Router::MarkRevived(std::size_t worker) {
  WorkerState& state = *workers_.at(worker);
  {
    // Under the connection mutex: a stale socket to the dead incarnation of
    // the process must not serve the revived one's first request.
    const std::scoped_lock lock(state.mutex);
    state.socket.Close();
  }
  {
    const std::scoped_lock lock(state.window_mutex);
    state.window_samples = state.window_errors = 0;
  }
  state.alive.store(true, std::memory_order_release);
}

void Router::EarnRetryTokens(std::size_t dispatched_queries) {
  const std::int64_t cap = static_cast<std::int64_t>(options_.retry_budget_cap * 1000.0);
  const std::int64_t earned = static_cast<std::int64_t>(
      options_.retry_budget_per_query * 1000.0 * static_cast<double>(dispatched_queries));
  std::int64_t current = retry_tokens_milli_.load(std::memory_order_relaxed);
  while (true) {
    const std::int64_t next = std::min(cap, current + earned);
    if (retry_tokens_milli_.compare_exchange_weak(current, next, std::memory_order_relaxed)) {
      return;
    }
  }
}

bool Router::TrySpendRetryToken() {
  std::int64_t current = retry_tokens_milli_.load(std::memory_order_relaxed);
  while (current >= 1000) {
    if (retry_tokens_milli_.compare_exchange_weak(current, current - 1000,
                                                  std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

Frame Router::Call(WorkerState& worker, MessageType type, std::string payload,
                   std::uint64_t deadline_us) {
  const std::scoped_lock lock(worker.mutex);
  try {
    if (!worker.socket.Valid()) {
      worker.socket = ConnectTo(worker.endpoint, options_.connect_timeout_ms);
    }
    Frame request{type, worker.next_request_id++, std::move(payload), deadline_us};
    SendFrame(worker.socket, request);
    // The recv budget is the per-attempt timeout, further capped by the
    // caller's end-to-end deadline: waiting past either wastes time a
    // replica could be using.
    double budget_ms = options_.request_timeout_ms;
    if (deadline_us != 0) {
      const double remaining = util::DeadlineRemainingMs(deadline_us);
      budget_ms = budget_ms > 0.0 ? std::min(budget_ms, remaining) : remaining;
    }
    Frame response = RecvFrame(worker.socket, budget_ms);
    if (response.request_id != request.request_id) {
      // The stream lost sync (a stale reply from before a reconnect); the
      // connection is useless from here on.
      throw fault::IoError("worker " + worker.endpoint.ToString() +
                           " answered request " + std::to_string(response.request_id) +
                           " instead of " + std::to_string(request.request_id));
    }
    worker.alive.store(true, std::memory_order_release);
    return response;
  } catch (...) {
    // Transport failure, per-attempt timeout, or corrupt/out-of-sync frame:
    // drop the connection so the next attempt reconnects on a fresh stream
    // (an abandoned reply must never arrive as the answer to a later
    // request), trip the breaker, and let routing fail over.
    worker.socket.Close();
    MarkDead(worker);
    throw;
  }
}

std::vector<Router::Reply> Router::PredictMany(const serve::ModelKey& key,
                                               std::span<const parallel::StageQuery> queries,
                                               std::span<const std::uint64_t> fingerprints,
                                               std::uint64_t deadline_us) {
  if (queries.size() != fingerprints.size()) {
    throw std::invalid_argument("Router::PredictMany: queries/fingerprints size mismatch");
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
  queries_.fetch_add(queries.size(), std::memory_order_relaxed);
  if (deadline_us == 0 && options_.default_deadline_ms > 0.0) {
    deadline_us = util::DeadlineAfterMs(options_.default_deadline_ms);
  }

  // One slot per *distinct* (model, fingerprint) in the batch; indices map
  // every query onto its slot.
  struct Slot {
    parallel::StageQuery query;
    std::uint64_t fingerprint = 0;
    std::uint64_t coalesce_key = 0;
    bool owner = false;                  // this call performs the RPC
    std::promise<Reply> promise;         // owner slots fulfill this
    std::shared_future<Reply> future;    // everyone reads this
    std::vector<std::size_t> route;      // candidate workers, owner first
    std::size_t tried = 0;               // candidates burned by failovers
  };
  std::vector<Slot> slots;
  std::vector<std::size_t> slot_of_query(queries.size());
  std::size_t owned = 0;
  {
    std::unordered_map<std::uint64_t, std::size_t> slot_index;
    const std::scoped_lock lock(inflight_mutex_);
    for (std::size_t q = 0; q < queries.size(); ++q) {
      const std::uint64_t ck = CoalesceKey(key, fingerprints[q]);
      if (const auto it = slot_index.find(ck); it != slot_index.end()) {
        slot_of_query[q] = it->second;  // duplicate within this batch
        continue;
      }
      Slot slot;
      slot.query = queries[q];
      slot.fingerprint = fingerprints[q];
      slot.coalesce_key = ck;
      if (const auto inflight = inflight_.find(ck); inflight != inflight_.end()) {
        // Another thread's RPC is already pricing this query cluster-wide.
        slot.owner = false;
        slot.future = inflight->second;
        coalesced_.fetch_add(1, std::memory_order_relaxed);
      } else {
        slot.owner = true;
        owned++;
        slot.future = slot.promise.get_future().share();
        inflight_.emplace(ck, slot.future);
        slot.route = ring_.Route(fingerprints[q], options_.replicas);
      }
      slot_index.emplace(ck, slots.size());
      slot_of_query[q] = slots.size();
      slots.push_back(std::move(slot));
    }
  }
  // Useful work funds future retries (capped); retries below spend from it.
  EarnRetryTokens(owned);

  // Round-based failover dispatch of the owned slots: each round groups the
  // still-unanswered slots by their next candidate worker, issues one
  // PredictRequest frame per worker (concurrently when several shards are
  // involved), and moves transport-failed slots to their next replica.
  std::vector<std::size_t> remaining;
  for (std::size_t s = 0; s < slots.size(); ++s) {
    if (slots[s].owner) remaining.push_back(s);
  }
  while (!remaining.empty()) {
    // Deadline gate between rounds: once the budget is spent, every
    // still-unanswered slot fails typed instead of burning more attempts
    // the caller has already abandoned.
    if (util::DeadlineExpired(deadline_us)) {
      for (const std::size_t s : remaining) {
        expired_.fetch_add(1, std::memory_order_relaxed);
        unanswered_.fetch_add(1, std::memory_order_relaxed);
        slots[s].promise.set_value(FailedReply(fault::StatusCode::kDeadlineExceeded));
      }
      remaining.clear();
      break;
    }
    // Pick each slot's candidate for this round: the first untried worker
    // that looks usable, else the first untried one at all (gives an open
    // breaker its half-open probe when no alternative is left).
    std::unordered_map<std::size_t, std::vector<std::size_t>> by_worker;
    std::vector<std::size_t> exhausted;
    for (const std::size_t s : remaining) {
      Slot& slot = slots[s];
      std::size_t candidate = slot.route.size();
      for (std::size_t r = slot.tried; r < slot.route.size(); ++r) {
        if (Usable(*workers_[slot.route[r]])) {
          if (r != slot.tried) std::swap(slot.route[slot.tried], slot.route[r]);
          candidate = slot.route[slot.tried];
          break;
        }
      }
      if (candidate == slot.route.size() && slot.tried < slot.route.size()) {
        candidate = slot.route[slot.tried];
      }
      if (slot.tried >= slot.route.size()) {
        exhausted.push_back(s);
      } else {
        by_worker[candidate].push_back(s);
      }
    }
    for (const std::size_t s : exhausted) {
      unanswered_.fetch_add(1, std::memory_order_relaxed);
      slots[s].promise.set_value(
          FailedReply(fault::StatusCode::kUnavailable));  // every replica failed
    }
    remaining.clear();
    if (by_worker.empty()) break;

    std::mutex retry_mutex;
    std::vector<std::size_t> retry;
    // Move a failed group toward its next replica, spending one retry token
    // per slot; a dry bucket fails the slot fast (typed kUnavailable) so
    // failover storms cannot amplify an overload. Callers hold retry_mutex.
    auto fail_over_group = [&](const std::vector<std::size_t>& group) {
      for (const std::size_t s : group) {
        if (!TrySpendRetryToken()) {
          retries_denied_.fetch_add(1, std::memory_order_relaxed);
          unanswered_.fetch_add(1, std::memory_order_relaxed);
          slots[s].promise.set_value(FailedReply(fault::StatusCode::kUnavailable));
          continue;
        }
        slots[s].tried++;
        failovers_.fetch_add(1, std::memory_order_relaxed);
        retry.push_back(s);
      }
    };
    auto run_group = [&](std::size_t worker_index, const std::vector<std::size_t>& group) {
      PredictRequest request;
      request.key = key;
      request.queries.reserve(group.size());
      for (const std::size_t s : group) request.queries.push_back(slots[s].query);
      bool transport_failed = false;
      ErrorBody worker_error;
      PredictResponse response;
      try {
        Frame reply = Call(*workers_[worker_index], MessageType::kPredictRequest,
                           EncodePredictRequest(request), deadline_us);
        if (reply.type == MessageType::kError) {
          worker_error = DecodeErrorBody(reply.payload);
        } else if (reply.type == MessageType::kPredictResponse) {
          response = DecodePredictResponse(reply.payload);
          if (response.results.size() != group.size()) {
            throw fault::CorruptionError("worker answered " +
                                         std::to_string(response.results.size()) +
                                         " results for " + std::to_string(group.size()) +
                                         " queries");
          }
        } else {
          throw fault::CorruptionError(std::string("unexpected response type ") +
                                       MessageTypeName(reply.type));
        }
      } catch (...) {
        transport_failed = true;
      }
      if (transport_failed) {
        const std::scoped_lock lock(retry_mutex);
        fail_over_group(group);
        return;
      }
      if (!response.results.empty()) {
        RecordTyped(*workers_[worker_index], /*error=*/false);
        for (std::size_t i = 0; i < group.size(); ++i) {
          const WireLatency& w = response.results[i];
          slots[group[i]].promise.set_value(
              Reply{true, w.latency_s, w.config, w.degraded});
        }
        return;
      }
      // Typed worker error. kNotFound / kInvalidArgument would fail the
      // same way on every replica (homogeneous model set), and a deadline
      // is no fresher on a replica — all three are definitive. Anything
      // else (kOverloaded, an injected forward fault, an internal error)
      // may be transient: it feeds the breaker's error window, burns the
      // candidate and fails over.
      if (worker_error.code == fault::StatusCode::kNotFound ||
          worker_error.code == fault::StatusCode::kInvalidArgument ||
          worker_error.code == fault::StatusCode::kDeadlineExceeded) {
        if (worker_error.code == fault::StatusCode::kDeadlineExceeded) {
          expired_.fetch_add(group.size(), std::memory_order_relaxed);
        }
        const std::scoped_lock lock(retry_mutex);
        for (const std::size_t s : group) {
          unanswered_.fetch_add(1, std::memory_order_relaxed);
          slots[s].promise.set_value(FailedReply(worker_error.code));
        }
        return;
      }
      if (worker_error.code == fault::StatusCode::kOverloaded) {
        overloaded_.fetch_add(group.size(), std::memory_order_relaxed);
      }
      RecordTyped(*workers_[worker_index], /*error=*/true);
      const std::scoped_lock lock(retry_mutex);
      fail_over_group(group);
    };

    if (by_worker.size() == 1) {
      const auto& [worker_index, group] = *by_worker.begin();
      run_group(worker_index, group);
    } else {
      std::vector<std::thread> threads;
      threads.reserve(by_worker.size());
      for (const auto& [worker_index, group] : by_worker) {
        threads.emplace_back(run_group, worker_index, std::cref(group));
      }
      for (std::thread& t : threads) t.join();
    }
    remaining.swap(retry);
  }

  // Owned slots are resolved; drop them from the cluster-wide in-flight map
  // before waiting on joined ones (which another thread resolves).
  {
    const std::scoped_lock lock(inflight_mutex_);
    for (const Slot& slot : slots) {
      if (slot.owner) inflight_.erase(slot.coalesce_key);
    }
  }

  std::vector<Reply> replies(queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    replies[q] = slots[slot_of_query[q]].future.get();
  }
  return replies;
}

Router::Reply Router::Predict(const serve::ModelKey& key, parallel::StageQuery query,
                              std::uint64_t fingerprint, std::uint64_t deadline_us) {
  const parallel::StageQuery queries[]{query};
  const std::uint64_t fingerprints[]{fingerprint};
  return PredictMany(key, queries, fingerprints, deadline_us)[0];
}

std::vector<bool> Router::Health() {
  std::vector<bool> healthy(workers_.size(), false);
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    try {
      const Frame reply = Call(*workers_[w], MessageType::kHealthRequest, {});
      healthy[w] = reply.type == MessageType::kHealthResponse &&
                   DecodeHealthBody(reply.payload).ok;
    } catch (...) {
      healthy[w] = false;
    }
  }
  return healthy;
}

std::vector<std::optional<StatsBody>> Router::WorkerStats() {
  std::vector<std::optional<StatsBody>> stats(workers_.size());
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    try {
      const Frame reply = Call(*workers_[w], MessageType::kStatsRequest, {});
      if (reply.type == MessageType::kStatsResponse) {
        stats[w] = DecodeStatsBody(reply.payload);
      }
    } catch (...) {
      stats[w] = std::nullopt;
    }
  }
  return stats;
}

void Router::ShutdownWorkers() {
  for (const auto& worker : workers_) {
    try {
      (void)Call(*worker, MessageType::kShutdownRequest, {});
    } catch (...) {
      // Already gone — which is the goal.
    }
  }
}

RouterStats Router::Stats() const {
  RouterStats stats;
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.queries = queries_.load(std::memory_order_relaxed);
  stats.coalesced = coalesced_.load(std::memory_order_relaxed);
  stats.failovers = failovers_.load(std::memory_order_relaxed);
  stats.worker_failures = worker_failures_.load(std::memory_order_relaxed);
  stats.unanswered = unanswered_.load(std::memory_order_relaxed);
  stats.breaker_trips = breaker_trips_.load(std::memory_order_relaxed);
  stats.retries_denied = retries_denied_.load(std::memory_order_relaxed);
  stats.expired = expired_.load(std::memory_order_relaxed);
  stats.overloaded = overloaded_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace predtop::cluster

#include "cluster/oracle.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "graph/fingerprint.h"

namespace predtop::cluster {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

ClusterOracle::ClusterOracle(Router& router, std::vector<sim::Mesh> meshes,
                             std::vector<serve::ModelKey> mesh_keys,
                             serve::StageEncoder encoder, std::int32_t max_span,
                             ClusterOracleOptions options)
    : router_(router),
      meshes_(std::move(meshes)),
      mesh_keys_(std::move(mesh_keys)),
      encoder_(std::move(encoder)),
      max_span_(max_span),
      options_(std::move(options)) {
  if (meshes_.size() != mesh_keys_.size()) {
    throw std::invalid_argument("ClusterOracle: meshes/mesh_keys size mismatch");
  }
  if (!encoder_) throw std::invalid_argument("ClusterOracle: null encoder");
  if (options_.max_attempts < 1) {
    throw std::invalid_argument("ClusterOracle: max_attempts must be >= 1");
  }
}

std::uint64_t ClusterOracle::FingerprintFor(ir::StageSlice slice) const {
  const graph::EncodedGraph& g = encoder_(slice);
  return g.fingerprint != 0 ? g.fingerprint : graph::EncodedGraphFingerprint(g);
}

parallel::StageLatencyResult ClusterOracle::Degrade(ir::StageSlice slice,
                                                    sim::Mesh mesh) const {
  degraded_.fetch_add(1, std::memory_order_relaxed);
  if (options_.fallback) return options_.fallback->Estimate(slice, mesh);
  return {kInf, {}, true};
}

parallel::StageLatencyResult ClusterOracle::PredictOne(std::size_t mesh_index,
                                                       ir::StageSlice slice,
                                                       sim::Mesh mesh) const {
  queries_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t fingerprint = FingerprintFor(slice);
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    const Router::Reply reply =
        router_.Predict(mesh_keys_[mesh_index], {slice, mesh}, fingerprint);
    if (reply.ok && std::isfinite(reply.latency_s)) {
      return {reply.latency_s, reply.config, reply.degraded};
    }
  }
  return Degrade(slice, mesh);
}

parallel::StageLatencyResult ClusterOracle::operator()(ir::StageSlice slice,
                                                       sim::Mesh mesh) const {
  if (max_span_ > 0 && slice.NumLayers() > max_span_) return {kInf, {}};
  for (std::size_t m = 0; m < meshes_.size(); ++m) {
    if (meshes_[m] == mesh) return PredictOne(m, slice, mesh);
  }
  return {kInf, {}};
}

std::vector<parallel::StageLatencyResult> ClusterOracle::PredictBatch(
    std::span<const parallel::StageQuery> queries) const {
  std::vector<parallel::StageLatencyResult> results(queries.size(),
                                                    parallel::StageLatencyResult{kInf, {}});
  std::vector<std::vector<std::size_t>> by_mesh(meshes_.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    if (max_span_ > 0 && queries[q].slice.NumLayers() > max_span_) continue;
    for (std::size_t m = 0; m < meshes_.size(); ++m) {
      if (meshes_[m] == queries[q].mesh) {
        by_mesh[m].push_back(q);
        break;
      }
    }
  }
  for (std::size_t m = 0; m < meshes_.size(); ++m) {
    if (by_mesh[m].empty()) continue;
    std::vector<parallel::StageQuery> bucket;
    std::vector<std::uint64_t> fingerprints;
    bucket.reserve(by_mesh[m].size());
    fingerprints.reserve(by_mesh[m].size());
    for (const std::size_t q : by_mesh[m]) {
      bucket.push_back(queries[q]);
      fingerprints.push_back(FingerprintFor(queries[q].slice));
    }
    const std::vector<Router::Reply> replies =
        router_.PredictMany(mesh_keys_[m], bucket, fingerprints);
    for (std::size_t i = 0; i < by_mesh[m].size(); ++i) {
      const std::size_t q = by_mesh[m][i];
      const Router::Reply& reply = replies[i];
      if (reply.ok && std::isfinite(reply.latency_s)) {
        queries_.fetch_add(1, std::memory_order_relaxed);
        results[q] = {reply.latency_s, reply.config, reply.degraded};
      } else {
        // Unanswered (every replica failed) or non-finite: walk the ladder
        // query-by-query — retries first (the cluster may have revived),
        // then the analytical fallback.
        results[q] = PredictOne(m, queries[q].slice, queries[q].mesh);
      }
    }
  }
  return results;
}

parallel::StageLatencyOracle ClusterOracle::AsOracle() const {
  return [this](ir::StageSlice slice, sim::Mesh mesh) { return (*this)(slice, mesh); };
}

parallel::StageLatencyBatchOracle ClusterOracle::AsBatchOracle() const {
  return [this](std::span<const parallel::StageQuery> queries) {
    return PredictBatch(queries);
  };
}

serve::OracleStats ClusterOracle::Stats() const {
  return {queries_.load(std::memory_order_relaxed), degraded_.load(std::memory_order_relaxed)};
}

void ClusterOracle::ResetStats() {
  queries_.store(0, std::memory_order_relaxed);
  degraded_.store(0, std::memory_order_relaxed);
}

}  // namespace predtop::cluster

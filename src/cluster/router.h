#pragma once
// Cluster front-end. The router owns one connection per worker and answers
// latency queries by:
//   1. consistent-hashing each query's DagFingerprint onto the worker ring
//      (cluster/ring.h) — R distinct candidate workers per query, owner
//      first, so each shard's cache concentrates on its slice of the space;
//   2. coalescing duplicate in-flight queries *cluster-wide*: concurrent
//      requests for the same (model, fingerprint) join one in-flight RPC
//      instead of issuing their own (same contract PredictionService gives
//      forwards inside one process, lifted to the cluster);
//   3. batching per shard: one PredictRequest frame per worker per round
//      carries every query routed to it;
//   4. failing over: a worker that refuses/loses its connection or overruns
//      the per-attempt deadline is marked dead (revived after a backoff)
//      and the affected queries retry on their next replica. Only when
//      every replica has failed does a query come back `ok == false` — at
//      which point ClusterOracle walks the predtop::fault degradation
//      ladder down to the analytical FallbackOracle.
//
// Worker-side *typed* errors are not failovers: kNotFound / kInvalidArgument
// mean the same request would fail identically on every replica (the model
// set is homogeneous), so the router fails those queries immediately.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "cluster/ring.h"
#include "cluster/transport.h"
#include "cluster/wire.h"
#include "parallel/inter_op.h"
#include "serve/registry.h"

namespace predtop::cluster {

struct RouterOptions {
  /// Candidate workers per query (owner + R-1 replicas, capped at the
  /// cluster size).
  std::size_t replicas = 2;
  std::size_t vnodes_per_worker = 64;
  double connect_timeout_ms = 2000.0;
  /// Per-attempt response deadline, ms (0 = wait forever). An overrun marks
  /// the worker dead and fails the attempt over to the next replica.
  double request_timeout_ms = 10000.0;
  /// A dead worker is retried this long after its failure (half-open
  /// probe); until then routing skips it when an alternative exists.
  double revive_after_ms = 500.0;
};

struct RouterStats {
  std::uint64_t requests = 0;         // PredictMany/Predict calls
  std::uint64_t queries = 0;          // individual stage queries routed
  std::uint64_t coalesced = 0;        // joined an in-flight duplicate
  std::uint64_t failovers = 0;        // query attempts moved to a replica
  std::uint64_t worker_failures = 0;  // transport-level worker failures
  std::uint64_t unanswered = 0;       // queries every replica failed
};

class Router {
 public:
  /// One answered (or exhausted) query. `ok == false` means every replica
  /// failed — the caller decides whether to degrade or propagate.
  struct Reply {
    bool ok = false;
    double latency_s = 0.0;
    parallel::ParallelConfig config;
    bool degraded = false;  // worker-side degradation flag, carried through
  };

  Router(std::vector<Endpoint> workers, RouterOptions options = {});
  ~Router();
  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Route, batch, coalesce and answer a whole query set under one model.
  /// `fingerprints[i]` is the DagFingerprint of `queries[i]` (the routing
  /// and coalescing key). Returns one Reply per query, in order.
  [[nodiscard]] std::vector<Reply> PredictMany(
      const serve::ModelKey& key, std::span<const parallel::StageQuery> queries,
      std::span<const std::uint64_t> fingerprints);

  [[nodiscard]] Reply Predict(const serve::ModelKey& key, parallel::StageQuery query,
                              std::uint64_t fingerprint);

  /// Ping every worker; true per worker that answered a health frame.
  [[nodiscard]] std::vector<bool> Health();

  /// Per-worker serving counters (nullopt for unreachable workers).
  [[nodiscard]] std::vector<std::optional<StatsBody>> WorkerStats();

  /// Ask every reachable worker to stop serving (clean teardown of demos
  /// and in-process clusters).
  void ShutdownWorkers();

  [[nodiscard]] RouterStats Stats() const;
  [[nodiscard]] std::size_t NumWorkers() const noexcept { return workers_.size(); }
  [[nodiscard]] bool WorkerAlive(std::size_t worker) const;
  [[nodiscard]] const HashRing& Ring() const noexcept { return ring_; }

 private:
  struct WorkerState {
    Endpoint endpoint;
    std::mutex mutex;  // serializes the connection (one RPC at a time)
    Socket socket;
    std::atomic<bool> alive{true};
    std::chrono::steady_clock::time_point died_at{};
    std::uint64_t next_request_id = 1;
  };

  /// One request/response RPC against a worker, connecting lazily. Throws
  /// a fault exception on transport failure (after marking the worker dead
  /// and dropping the connection).
  [[nodiscard]] Frame Call(WorkerState& worker, MessageType type, std::string payload);
  [[nodiscard]] bool Usable(const WorkerState& worker) const;
  void MarkDead(WorkerState& worker);

  HashRing ring_;
  RouterOptions options_;
  std::vector<std::unique_ptr<WorkerState>> workers_;

  std::mutex inflight_mutex_;
  std::unordered_map<std::uint64_t, std::shared_future<Reply>> inflight_;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> queries_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<std::uint64_t> worker_failures_{0};
  std::atomic<std::uint64_t> unanswered_{0};
};

}  // namespace predtop::cluster

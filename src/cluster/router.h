#pragma once
// Cluster front-end. The router owns one connection per worker and answers
// latency queries by:
//   1. consistent-hashing each query's DagFingerprint onto the worker ring
//      (cluster/ring.h) — R distinct candidate workers per query, owner
//      first, so each shard's cache concentrates on its slice of the space;
//   2. coalescing duplicate in-flight queries *cluster-wide*: concurrent
//      requests for the same (model, fingerprint) join one in-flight RPC
//      instead of issuing their own (same contract PredictionService gives
//      forwards inside one process, lifted to the cluster);
//   3. batching per shard: one PredictRequest frame per worker per round
//      carries every query routed to it;
//   4. failing over: a worker that refuses/loses its connection or overruns
//      the per-attempt deadline trips its circuit breaker (half-open probe
//      after a backoff) and the affected queries retry on their next
//      replica. Only when every replica has failed does a query come back
//      `ok == false` — at which point ClusterOracle walks the predtop::fault
//      degradation ladder down to the analytical FallbackOracle.
//
// Worker-side *typed* errors are not failovers: kNotFound / kInvalidArgument
// mean the same request would fail identically on every replica (the model
// set is homogeneous), so the router fails those queries immediately; so
// does kDeadlineExceeded (the deadline is no fresher on a replica).
//
// Overload protection (PR 8):
//  - every batch can carry an absolute deadline (explicitly, or defaulted
//    from PREDTOP_DEADLINE_MS). The deadline rides inside each frame, caps
//    the per-attempt recv budget, and expires still-unanswered slots
//    between failover rounds;
//  - the per-worker dead-marking is generalized into a circuit breaker:
//    transport failures trip it immediately (the legacy behavior), while
//    typed retryable worker errors (kOverloaded, kInternal, injected
//    faults) feed a rolling error-rate window that trips it once the rate
//    crosses `breaker_error_rate` over at least `breaker_min_samples`
//    samples. An open breaker skips the worker while alternatives exist;
//    after `revive_after_ms` it half-opens and one probe closes or re-trips
//    it;
//  - retries draw from a token bucket earned by useful work
//    (`retry_budget_per_query` tokens per dispatched query), so a cluster
//    melting down cannot amplify its own overload with failover storms —
//    when the bucket runs dry the retry is denied and the query fails fast.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "cluster/ring.h"
#include "cluster/transport.h"
#include "cluster/wire.h"
#include "parallel/inter_op.h"
#include "serve/registry.h"

namespace predtop::cluster {

struct RouterOptions {
  /// Candidate workers per query (owner + R-1 replicas, capped at the
  /// cluster size).
  std::size_t replicas = 2;
  std::size_t vnodes_per_worker = 64;
  double connect_timeout_ms = 2000.0;
  /// Per-attempt response deadline, ms (0 = wait forever). An overrun drops
  /// the connection (reconnect on the next attempt — a late reply must
  /// never desync the stream), trips the breaker and fails the attempt over
  /// to the next replica.
  double request_timeout_ms = 10000.0;
  /// An open breaker half-opens this long after it tripped; until then
  /// routing skips the worker when an alternative exists.
  double revive_after_ms = 500.0;
  /// Default end-to-end deadline budget applied to PredictMany calls that
  /// do not pass one explicitly (ms; 0 = none). Overridable via the
  /// PREDTOP_DEADLINE_MS environment variable at construction.
  double default_deadline_ms = 0.0;
  /// Read PREDTOP_DEADLINE_MS into default_deadline_ms (kept out of the
  /// default member initializer so plain RouterOptions{} stays env-free).
  [[nodiscard]] static RouterOptions FromEnv();

  /// Circuit breaker: trip when >= `breaker_error_rate` of the last window
  /// of typed replies failed, over at least `breaker_min_samples` samples
  /// inside `breaker_window_ms`. Transport failures trip immediately.
  double breaker_error_rate = 0.5;
  std::size_t breaker_min_samples = 8;
  double breaker_window_ms = 2000.0;

  /// Retry token bucket: the bucket starts with `retry_budget_initial`
  /// tokens, earns `retry_budget_per_query` per dispatched query (capped at
  /// `retry_budget_cap`), and every failover retry of one slot spends one
  /// token. A dry bucket denies the retry (the query fails fast instead of
  /// amplifying the overload).
  double retry_budget_per_query = 1.0;
  double retry_budget_initial = 16.0;
  double retry_budget_cap = 256.0;
};

struct RouterStats {
  std::uint64_t requests = 0;         // PredictMany/Predict calls
  std::uint64_t queries = 0;          // individual stage queries routed
  std::uint64_t coalesced = 0;        // joined an in-flight duplicate
  std::uint64_t failovers = 0;        // query attempts moved to a replica
  std::uint64_t worker_failures = 0;  // transport-level worker failures
  std::uint64_t unanswered = 0;       // queries every replica failed
  std::uint64_t breaker_trips = 0;    // closed->open transitions
  std::uint64_t retries_denied = 0;   // failovers refused by the token bucket
  std::uint64_t expired = 0;          // queries failed on their deadline
  std::uint64_t overloaded = 0;       // typed kOverloaded replies from workers
};

/// Observable breaker state of one worker.
enum class BreakerState { kClosed, kOpen, kHalfOpen };
[[nodiscard]] const char* BreakerStateName(BreakerState state) noexcept;

class Router {
 public:
  /// One answered (or exhausted) query. `ok == false` means every replica
  /// failed (or the deadline expired / the retry budget ran dry) — `code`
  /// carries the typed reason; the caller decides whether to degrade.
  struct Reply {
    bool ok = false;
    double latency_s = 0.0;
    parallel::ParallelConfig config;
    bool degraded = false;  // worker-side degradation flag, carried through
    fault::StatusCode code = fault::StatusCode::kOk;
  };

  Router(std::vector<Endpoint> workers, RouterOptions options = {});
  ~Router();
  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Route, batch, coalesce and answer a whole query set under one model.
  /// `fingerprints[i]` is the DagFingerprint of `queries[i]` (the routing
  /// and coalescing key). Returns one Reply per query, in order.
  /// `deadline_us` is an absolute steady-clock deadline (util::SteadyNowUs
  /// base; 0 = use the configured default budget, if any).
  [[nodiscard]] std::vector<Reply> PredictMany(
      const serve::ModelKey& key, std::span<const parallel::StageQuery> queries,
      std::span<const std::uint64_t> fingerprints, std::uint64_t deadline_us = 0);

  [[nodiscard]] Reply Predict(const serve::ModelKey& key, parallel::StageQuery query,
                              std::uint64_t fingerprint, std::uint64_t deadline_us = 0);

  /// Ping every worker; true per worker that answered a health frame.
  [[nodiscard]] std::vector<bool> Health();

  /// Per-worker serving counters (nullopt for unreachable workers).
  [[nodiscard]] std::vector<std::optional<StatsBody>> WorkerStats();

  /// Ask every reachable worker to stop serving (clean teardown of demos
  /// and in-process clusters).
  void ShutdownWorkers();

  [[nodiscard]] RouterStats Stats() const;
  [[nodiscard]] std::size_t NumWorkers() const noexcept { return workers_.size(); }
  [[nodiscard]] bool WorkerAlive(std::size_t worker) const;
  [[nodiscard]] BreakerState WorkerBreaker(std::size_t worker) const;
  /// Supervisor hook: a restarted worker process is live again — close the
  /// stale breaker (and any stale connection) so routing returns to it
  /// immediately instead of waiting out the backoff.
  void MarkRevived(std::size_t worker);
  [[nodiscard]] const HashRing& Ring() const noexcept { return ring_; }

 private:
  struct WorkerState {
    Endpoint endpoint;
    std::mutex mutex;  // serializes the connection (one RPC at a time)
    Socket socket;
    std::atomic<bool> alive{true};
    std::atomic<std::int64_t> died_at_us{0};  // steady us at the last trip
    std::uint64_t next_request_id = 1;
    // Rolling typed-error window feeding the breaker (under window_mutex).
    std::mutex window_mutex;
    std::int64_t window_start_us = 0;
    std::size_t window_samples = 0;
    std::size_t window_errors = 0;
  };

  /// One request/response RPC against a worker, connecting lazily. Throws
  /// a fault exception on transport failure (after dropping the connection
  /// and tripping the breaker). A nonzero `deadline_us` caps the recv
  /// budget at the time remaining.
  [[nodiscard]] Frame Call(WorkerState& worker, MessageType type, std::string payload,
                           std::uint64_t deadline_us = 0);
  [[nodiscard]] bool Usable(const WorkerState& worker) const;
  void MarkDead(WorkerState& worker);
  /// Feed one typed worker reply into the breaker window; trips the breaker
  /// when the windowed error rate crosses the configured threshold.
  void RecordTyped(WorkerState& worker, bool error);
  /// Token bucket: earn per dispatched query / spend one per retry.
  void EarnRetryTokens(std::size_t dispatched_queries);
  [[nodiscard]] bool TrySpendRetryToken();

  HashRing ring_;
  RouterOptions options_;
  std::vector<std::unique_ptr<WorkerState>> workers_;

  std::mutex inflight_mutex_;
  std::unordered_map<std::uint64_t, std::shared_future<Reply>> inflight_;

  std::atomic<std::int64_t> retry_tokens_milli_{0};  // bucket, in 1/1000 tokens

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> queries_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<std::uint64_t> worker_failures_{0};
  std::atomic<std::uint64_t> unanswered_{0};
  std::atomic<std::uint64_t> breaker_trips_{0};
  std::atomic<std::uint64_t> retries_denied_{0};
  std::atomic<std::uint64_t> expired_{0};
  std::atomic<std::uint64_t> overloaded_{0};
};

}  // namespace predtop::cluster

#include "fault/crc32.h"

#include <array>

namespace predtop::fault {

namespace {

constexpr std::array<std::uint32_t, 256> MakeTable() noexcept {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = MakeTable();

}  // namespace

std::uint32_t Crc32(const void* bytes, std::size_t size, std::uint32_t crc) noexcept {
  const auto* p = static_cast<const unsigned char*>(bytes);
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = kTable[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace predtop::fault

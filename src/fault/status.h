#pragma once
// Recoverable-error vocabulary for the serving path. The seed code reported
// every failure by throwing std::runtime_error, which is the right call deep
// inside a parser (nn::serialize cannot continue past a truncated stream) but
// the wrong call at subsystem boundaries: a corrupt checkpoint on disk must
// not take down a registry that is serving a hundred healthy models.
//
// Two layers:
//  - typed exceptions (`FaultError` and subclasses) thrown by the low-level
//    readers/writers — all derive from std::runtime_error so pre-existing
//    callers and tests keep working;
//  - `Status`, the value type boundaries return instead of throwing. A
//    FaultError caught at a boundary converts losslessly via ToStatus();
//    anything else maps to kInternal.

#include <exception>
#include <stdexcept>
#include <string>

namespace predtop::fault {

enum class StatusCode {
  kOk = 0,
  kIoError,            // open/read/write/rename failed (possibly transient)
  kCorruption,         // bytes present but wrong: bad magic/CRC/length/shape
  kNotFound,           // no such model/file
  kDeadlineExceeded,   // query answered too late to be useful
  kUnavailable,        // quarantined or otherwise refused without retrying
  kInvalidArgument,
  kInternal,           // unexpected exception type crossed the boundary
  kOverloaded,         // admission control shed the request; retry elsewhere
};

[[nodiscard]] const char* StatusCodeName(StatusCode code) noexcept;

class Status {
 public:
  Status() noexcept = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status Ok() noexcept { return {}; }

  [[nodiscard]] bool ok() const noexcept { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }
  [[nodiscard]] std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Base of the typed exceptions thrown by checkpoint IO. Derives from
/// std::runtime_error so existing catch sites (and EXPECT_THROW assertions)
/// are unaffected; boundaries that want a Status catch this type.
class FaultError : public std::runtime_error {
 public:
  FaultError(StatusCode code, const std::string& message)
      : std::runtime_error(message), code_(code) {}

  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] Status ToStatus() const { return Status(code_, what()); }

 private:
  StatusCode code_;
};

/// Bytes are present but wrong: bad magic, bad CRC, hostile length prefix,
/// shape/name mismatch, truncation mid-frame.
class CorruptionError : public FaultError {
 public:
  explicit CorruptionError(const std::string& message)
      : FaultError(StatusCode::kCorruption, message) {}
};

/// The byte transport itself failed: cannot open/read/write/rename. Unlike
/// corruption this may be transient, so retry loops treat it as retryable.
class IoError : public FaultError {
 public:
  explicit IoError(const std::string& message)
      : FaultError(StatusCode::kIoError, message) {}
};

/// Convert the in-flight exception into a Status (FaultError keeps its code,
/// everything else becomes kInternal). Call from inside a catch block.
[[nodiscard]] Status StatusFromCurrentException();

}  // namespace predtop::fault

#include "fault/injector.h"

#include <algorithm>
#include <chrono>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/env.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace predtop::fault {

namespace {

const char* const kKnownSites[] = {
    sites::kCkptRead,      sites::kCkptWrite,    sites::kPredictNan,
    sites::kPredictDelayMs, sites::kPredictDelayP, sites::kPoolDelayMs,
    sites::kPoolDelayP,    sites::kNetDrop,      sites::kNetDelayMs,
    sites::kNetDelayP,     sites::kHbDrop,
};

bool IsKnownSite(const std::string& name) {
  for (const char* s : kKnownSites) {
    if (name == s) return true;
  }
  return false;
}

std::uint64_t HashSiteName(const std::string& s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a 64
  for (const char c : s) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string Trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

}  // namespace

struct Injector::Config {
  struct Site {
    std::string name;
    double value = 0.0;
    std::uint64_t name_hash = 0;
    mutable std::atomic<std::uint64_t> evaluations{0};
    mutable std::atomic<std::uint64_t> fires{0};
  };
  std::uint64_t seed = Injector::kDefaultSeed;
  // A handful of sites at most: linear scan beats hashing small strings.
  std::vector<std::unique_ptr<Site>> sites;

  [[nodiscard]] const Site* Find(const char* name) const noexcept {
    for (const auto& s : sites) {
      if (s->name == name) return s.get();
    }
    return nullptr;
  }
};

Injector& Injector::Global() {
  static Injector* instance = [] {
    auto* injector = new Injector();
    if (const auto spec = util::EnvString("PREDTOP_FAULT")) {
      const auto seed = static_cast<std::uint64_t>(
          util::EnvInt("PREDTOP_FAULT_SEED", static_cast<long>(kDefaultSeed)));
      try {
        injector->Configure(*spec, seed);
      } catch (const std::exception& e) {
        std::cerr << "[predtop::fault] ignoring malformed PREDTOP_FAULT: " << e.what()
                  << "\n";
      }
    }
    return injector;
  }();
  return *instance;
}

void Injector::Configure(const std::string& spec, std::uint64_t seed) {
  auto config = std::make_shared<Config>();
  config->seed = seed;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t end = std::min(spec.find(';', pos), spec.size());
    const std::string entry = Trim(spec.substr(pos, end - pos));
    pos = end + 1;
    if (entry.empty()) continue;
    const std::size_t colon = entry.find(':');
    if (colon == std::string::npos) {
      throw std::invalid_argument("fault spec entry '" + entry + "' is not site:value");
    }
    const std::string name = Trim(entry.substr(0, colon));
    const std::string value_str = Trim(entry.substr(colon + 1));
    if (!IsKnownSite(name)) {
      throw std::invalid_argument("unknown fault site '" + name + "'");
    }
    char* parse_end = nullptr;
    const double value = std::strtod(value_str.c_str(), &parse_end);
    if (value_str.empty() || parse_end == nullptr || *parse_end != '\0' || value < 0.0) {
      throw std::invalid_argument("bad value '" + value_str + "' for fault site " + name);
    }
    if (config->Find(name.c_str()) != nullptr) {
      throw std::invalid_argument("fault site '" + name + "' configured twice");
    }
    auto site = std::make_unique<Config::Site>();
    site->name = name;
    site->value = value;
    site->name_hash = HashSiteName(name);
    config->sites.push_back(std::move(site));
  }

  const bool has_pool_site = config->Find(sites::kPoolDelayMs) != nullptr;
  const bool any = !config->sites.empty();
  {
    const std::scoped_lock lock(mutex_);
    config_ = any ? std::move(config) : nullptr;
    enabled_.store(any, std::memory_order_release);
  }
  if (has_pool_site) {
    util::ThreadPool::SetTaskHook([] {
      const double ms =
          Injector::Global().FireDelayMs(sites::kPoolDelayMs, sites::kPoolDelayP);
      if (ms > 0.0) SleepForMs(ms);
    });
  } else {
    util::ThreadPool::SetTaskHook(nullptr);
  }
}

void Injector::Disable() { Configure(""); }

bool Injector::Enabled() const noexcept {
  return enabled_.load(std::memory_order_acquire);
}

std::shared_ptr<const Injector::Config> Injector::Snapshot() const {
  if (!Enabled()) return nullptr;
  const std::scoped_lock lock(mutex_);
  return config_;
}

bool Injector::ShouldInject(const char* site) {
  const auto config = Snapshot();
  if (!config) return false;
  const Config::Site* s = config->Find(site);
  if (s == nullptr) return false;
  const std::uint64_t k = s->evaluations.fetch_add(1, std::memory_order_relaxed);
  // Deterministic Bernoulli: mix (seed, site, call index) to a u64, take the
  // top 53 bits as a uniform double in [0, 1).
  const std::uint64_t mixed =
      util::SplitMix64(config->seed ^ s->name_hash ^ (k * 0x9e3779b97f4a7c15ULL));
  const double u = static_cast<double>(mixed >> 11) * 0x1.0p-53;
  const bool fire = u < s->value;
  if (fire) s->fires.fetch_add(1, std::memory_order_relaxed);
  return fire;
}

double Injector::Value(const char* site, double fallback) const {
  const auto config = Snapshot();
  if (!config) return fallback;
  const Config::Site* s = config->Find(site);
  return s != nullptr ? s->value : fallback;
}

double Injector::FireDelayMs(const char* delay_site, const char* prob_site) {
  const auto config = Snapshot();
  if (!config) return 0.0;
  const Config::Site* delay = config->Find(delay_site);
  if (delay == nullptr || delay->value <= 0.0) return 0.0;
  // Absent companion probability site = fire every time. The delay site's
  // own counters always record the outcome, so drills can read fire rates
  // off the *_ms site regardless of how the companion is configured.
  const bool fire = config->Find(prob_site) == nullptr || ShouldInject(prob_site);
  delay->evaluations.fetch_add(1, std::memory_order_relaxed);
  if (fire) delay->fires.fetch_add(1, std::memory_order_relaxed);
  return fire ? delay->value : 0.0;
}

SiteStats Injector::Stats(const char* site) const {
  SiteStats stats;
  const auto config = Snapshot();
  if (!config) return stats;
  if (const Config::Site* s = config->Find(site)) {
    stats.evaluations = s->evaluations.load(std::memory_order_relaxed);
    stats.fires = s->fires.load(std::memory_order_relaxed);
  }
  return stats;
}

void Injector::ResetCounters() {
  const auto config = Snapshot();
  if (!config) return;
  for (const auto& s : config->sites) {
    s->evaluations.store(0, std::memory_order_relaxed);
    s->fires.store(0, std::memory_order_relaxed);
  }
}

std::string Injector::SpecString() const {
  const auto config = Snapshot();
  if (!config) return "";
  std::ostringstream out;  // default float formatting: "0.25", not "0.250000"
  for (const auto& s : config->sites) {
    if (out.tellp() > 0) out << ';';
    out << s->name << ':' << s->value;
  }
  return out.str();
}

void SleepForMs(double ms) {
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

}  // namespace predtop::fault

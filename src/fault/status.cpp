#include "fault/status.h"

namespace predtop::fault {

const char* StatusCodeName(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kIoError: return "IO_ERROR";
    case StatusCode::kCorruption: return "CORRUPTION";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kOverloaded: return "OVERLOADED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  return std::string(StatusCodeName(code_)) + ": " + message_;
}

Status StatusFromCurrentException() {
  try {
    throw;
  } catch (const FaultError& e) {
    return e.ToStatus();
  } catch (const std::exception& e) {
    return Status(StatusCode::kInternal, e.what());
  } catch (...) {
    return Status(StatusCode::kInternal, "unknown exception");
  }
}

}  // namespace predtop::fault

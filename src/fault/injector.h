#pragma once
// Deterministic, seed-driven fault injection for robustness drills. The
// serving path has three places where production failures concentrate —
// checkpoint IO, predictor forwards, and thread-pool task dispatch — and
// each gets a named injection site. A drill turns sites on via the
// PREDTOP_FAULT environment variable, e.g.
//
//   PREDTOP_FAULT="ckpt_read:0.3;predict_nan:0.05;predict_delay_ms:50"
//   PREDTOP_FAULT_SEED=7   (optional; decisions derive from this seed)
//
// Probability sites (ckpt_read, ckpt_write, predict_nan) fire with the given
// probability; *_ms sites carry a magnitude (delay in milliseconds) and fire
// on every evaluation unless a companion *_p site caps the fraction
// (predict_delay_p, pool_delay_p).
//
// Decisions are deterministic: the k-th evaluation of a site hashes
// (seed, site name, k) through SplitMix64, so a failing drill replays
// exactly from its seed regardless of thread interleaving *per site*. With
// no sites configured every probe is a single relaxed atomic load — the
// subsystem costs nothing when idle, and results are bit-identical to a
// build without it.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

namespace predtop::fault {

/// Canonical site names, threaded through the serving path:
///  - ckpt_read / ckpt_write: checkpoint load/save throws fault::IoError;
///  - predict_nan: a PredictionService forward returns NaN;
///  - predict_delay_ms (+ predict_delay_p): a forward sleeps first;
///  - pool_delay_ms (+ pool_delay_p): a ThreadPool task sleeps at dispatch;
///  - net_drop: a cluster transport frame send/recv fails as if the peer
///    died (throws fault::IoError after closing the connection);
///  - net_delay_ms (+ net_delay_p): a transport frame is delayed in flight;
///  - hb_drop: a supervisor heartbeat probe fails as if the worker hung
///    (the probe reports a miss without touching the socket), so hung-worker
///    detection can be drilled deterministically without SIGSTOP.
namespace sites {
inline constexpr const char* kCkptRead = "ckpt_read";
inline constexpr const char* kCkptWrite = "ckpt_write";
inline constexpr const char* kPredictNan = "predict_nan";
inline constexpr const char* kPredictDelayMs = "predict_delay_ms";
inline constexpr const char* kPredictDelayP = "predict_delay_p";
inline constexpr const char* kPoolDelayMs = "pool_delay_ms";
inline constexpr const char* kPoolDelayP = "pool_delay_p";
inline constexpr const char* kNetDrop = "net_drop";
inline constexpr const char* kNetDelayMs = "net_delay_ms";
inline constexpr const char* kNetDelayP = "net_delay_p";
inline constexpr const char* kHbDrop = "hb_drop";
}  // namespace sites

struct SiteStats {
  std::uint64_t evaluations = 0;  // times the site's dice were rolled
  std::uint64_t fires = 0;        // times it injected
};

class Injector {
 public:
  static constexpr std::uint64_t kDefaultSeed = 0x5eedfa17ULL;

  /// Process-wide injector. First use bootstraps from PREDTOP_FAULT /
  /// PREDTOP_FAULT_SEED; a malformed env spec warns and leaves injection off
  /// (a typo in a drill knob must not crash the server being drilled).
  [[nodiscard]] static Injector& Global();

  /// (Re)configure from a spec string ("site:value;site:value"); empty spec
  /// disables. Throws std::invalid_argument on malformed entries or unknown
  /// site names. Installs/clears the ThreadPool dispatch hook as needed.
  /// Not safe to call while other threads are mid-drill.
  void Configure(const std::string& spec, std::uint64_t seed = kDefaultSeed);

  /// Turn all sites off (equivalent to Configure("")).
  void Disable();

  /// Fast path: false means no site is configured anywhere.
  [[nodiscard]] bool Enabled() const noexcept;

  /// Roll the site's dice: true with the configured probability, false
  /// always when the site is absent (absent sites don't count evaluations).
  [[nodiscard]] bool ShouldInject(const char* site);

  /// Configured magnitude of a site (e.g. delay ms), or `fallback`.
  [[nodiscard]] double Value(const char* site, double fallback = 0.0) const;

  /// Delay-site helper: when `delay_site` is configured and its companion
  /// probability site fires (absent companion = always), returns the delay
  /// in milliseconds; otherwise 0.
  [[nodiscard]] double FireDelayMs(const char* delay_site, const char* prob_site);

  [[nodiscard]] SiteStats Stats(const char* site) const;
  void ResetCounters();

  /// Canonical "site:value;..." form of the active config ("" when off).
  [[nodiscard]] std::string SpecString() const;

  Injector(const Injector&) = delete;
  Injector& operator=(const Injector&) = delete;

 private:
  Injector() = default;
  struct Config;
  [[nodiscard]] std::shared_ptr<const Config> Snapshot() const;

  mutable std::mutex mutex_;
  std::shared_ptr<const Config> config_;
  std::atomic<bool> enabled_{false};
};

/// Sleep helper shared by the delay sites (plain this_thread::sleep_for).
void SleepForMs(double ms);

}  // namespace predtop::fault

#pragma once
// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the integrity
// footer of `.ptck` checkpoint frames. A bit flip anywhere in a multi-KB
// payload would otherwise load as slightly-wrong weights and serve silently
// skewed latencies; the CRC turns it into a typed corruption error at load
// time. Not cryptographic — it defends against rot and truncation, not
// adversaries.

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace predtop::fault {

/// CRC of `bytes`, continuing from `crc` (pass 0 to start; feed chunks by
/// threading the return value back in).
[[nodiscard]] std::uint32_t Crc32(const void* bytes, std::size_t size,
                                  std::uint32_t crc = 0) noexcept;

[[nodiscard]] inline std::uint32_t Crc32(std::string_view bytes,
                                         std::uint32_t crc = 0) noexcept {
  return Crc32(bytes.data(), bytes.size(), crc);
}

}  // namespace predtop::fault

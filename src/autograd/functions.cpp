#include "autograd/functions.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "tensor/ops.h"
#include "tensor/simd.h"

namespace predtop::autograd {

namespace {

using detail::Node;
using tensor::Tensor;

/// Build an op node: value, parents, backward closure. The node participates
/// in gradient flow iff any parent does.
Variable MakeOp(Tensor value, std::vector<Variable> inputs,
                std::function<void(Node&)> backward) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->id = detail::NextNodeId();
  node->parents.reserve(inputs.size());
  bool any_grad = false;
  for (const auto& in : inputs) {
    node->parents.push_back(in.node());
    any_grad = any_grad || in.node()->requires_grad;
  }
  node->requires_grad = any_grad;
  if (any_grad) node->backward = std::move(backward);
  return Variable::FromNode(std::move(node));
}

bool Needs(const Node& n, std::size_t parent) { return n.parents[parent]->requires_grad; }

}  // namespace

Variable MatMul(const Variable& a, const Variable& b) {
  Tensor out = tensor::MatMul(a.value(), b.value());
  return MakeOp(std::move(out), {a, b}, [](Node& n) {
    const Tensor& av = n.parents[0]->value;
    const Tensor& bv = n.parents[1]->value;
    if (Needs(n, 0)) n.parents[0]->AccumulateGrad(tensor::MatMulTransB(n.grad, bv));
    if (Needs(n, 1)) n.parents[1]->AccumulateGrad(tensor::MatMulTransA(av, n.grad));
  });
}

Variable Transpose(const Variable& a) {
  return MakeOp(tensor::Transpose2D(a.value()), {a}, [](Node& n) {
    if (Needs(n, 0)) n.parents[0]->AccumulateGrad(tensor::Transpose2D(n.grad));
  });
}

Variable Add(const Variable& a, const Variable& b) {
  return MakeOp(tensor::Add(a.value(), b.value()), {a, b}, [](Node& n) {
    if (Needs(n, 0)) n.parents[0]->AccumulateGrad(n.grad);
    if (Needs(n, 1)) n.parents[1]->AccumulateGrad(n.grad);
  });
}

Variable Sub(const Variable& a, const Variable& b) {
  return MakeOp(tensor::Sub(a.value(), b.value()), {a, b}, [](Node& n) {
    if (Needs(n, 0)) n.parents[0]->AccumulateGrad(n.grad);
    if (Needs(n, 1)) n.parents[1]->AccumulateGrad(tensor::Scale(n.grad, -1.0f));
  });
}

Variable Mul(const Variable& a, const Variable& b) {
  return MakeOp(tensor::Mul(a.value(), b.value()), {a, b}, [](Node& n) {
    if (Needs(n, 0)) n.parents[0]->AccumulateGrad(tensor::Mul(n.grad, n.parents[1]->value));
    if (Needs(n, 1)) n.parents[1]->AccumulateGrad(tensor::Mul(n.grad, n.parents[0]->value));
  });
}

Variable Scale(const Variable& a, float s) {
  return MakeOp(tensor::Scale(a.value(), s), {a}, [s](Node& n) {
    if (Needs(n, 0)) n.parents[0]->AccumulateGrad(tensor::Scale(n.grad, s));
  });
}

Variable AddRowVector(const Variable& m, const Variable& bias) {
  return MakeOp(tensor::AddRowVector(m.value(), bias.value()), {m, bias}, [](Node& n) {
    if (Needs(n, 0)) n.parents[0]->AccumulateGrad(n.grad);
    if (Needs(n, 1)) n.parents[1]->AccumulateGrad(tensor::SumRows(n.grad));
  });
}

namespace {

template <typename FwdFn, typename DervFn>
Variable UnaryElementwise(const Variable& a, FwdFn&& fwd, DervFn&& derv) {
  Tensor out = fwd(a.value());
  return MakeOp(std::move(out), {a}, [derv](Node& n) {
    if (!Needs(n, 0)) return;
    const Tensor& x = n.parents[0]->value;
    Tensor g(n.grad.shape());
    const auto gx = x.data();
    const auto gy = n.value.data();
    const auto gg = n.grad.data();
    auto go = g.data();
    for (std::size_t i = 0; i < go.size(); ++i) go[i] = gg[i] * derv(gx[i], gy[i]);
    n.parents[0]->AccumulateGrad(g);
  });
}

}  // namespace

Variable Relu(const Variable& a) {
  return UnaryElementwise(
      a, [](const Tensor& t) { return tensor::Relu(t); },
      [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; });
}

Variable LeakyRelu(const Variable& a, float negative_slope) {
  return UnaryElementwise(
      a, [negative_slope](const Tensor& t) { return tensor::LeakyRelu(t, negative_slope); },
      [negative_slope](float x, float) { return x > 0.0f ? 1.0f : negative_slope; });
}

Variable Gelu(const Variable& a) {
  return UnaryElementwise(
      a, [](const Tensor& t) { return tensor::Gelu(t); },
      [](float x, float) {
        constexpr float kC = 0.7978845608f;  // sqrt(2/pi)
        const float x3 = x * x * x;
        const float inner = kC * (x + 0.044715f * x3);
        const float t = std::tanh(inner);
        const float sech2 = 1.0f - t * t;
        return 0.5f * (1.0f + t) + 0.5f * x * sech2 * kC * (1.0f + 3.0f * 0.044715f * x * x);
      });
}

Variable Tanh(const Variable& a) {
  return UnaryElementwise(
      a, [](const Tensor& t) { return tensor::Tanh(t); },
      [](float, float y) { return 1.0f - y * y; });
}

namespace {

Variable SoftmaxImpl(const Variable& logits, const Tensor* mask) {
  Tensor out = tensor::RowSoftmax(logits.value(), mask);
  return MakeOp(std::move(out), {logits}, [](Node& n) {
    if (!Needs(n, 0)) return;
    // dX = S o (dS - rowsum(dS o S)), rows fully masked stay zero.
    const Tensor& s = n.value;
    const std::int64_t rows = s.dim(0), cols = s.dim(1);
    Tensor g(s.shape());
    const float* ps = s.data().data();
    const float* pg = n.grad.data().data();
    float* po = g.data().data();
    for (std::int64_t i = 0; i < rows; ++i) {
      const float dot = tensor::simd::Dot(pg + i * cols, ps + i * cols, cols);
      for (std::int64_t j = 0; j < cols; ++j) {
        po[i * cols + j] = ps[i * cols + j] * (pg[i * cols + j] - dot);
      }
    }
    n.parents[0]->AccumulateGrad(g);
  });
}

}  // namespace

Variable MaskedRowSoftmax(const Variable& logits, const Tensor& additive_mask) {
  return SoftmaxImpl(logits, &additive_mask);
}

Variable RowSoftmax(const Variable& logits) { return SoftmaxImpl(logits, nullptr); }

Variable LayerNorm(const Variable& x, const Variable& gain, const Variable& bias, float eps) {
  const Tensor& xv = x.value();
  if (xv.rank() != 2) throw std::invalid_argument("LayerNorm: x must be 2-D");
  const std::int64_t rows = xv.dim(0), cols = xv.dim(1);
  if (gain.value().rank() != 1 || gain.value().dim(0) != cols ||
      bias.value().rank() != 1 || bias.value().dim(0) != cols) {
    throw std::invalid_argument("LayerNorm: gain/bias must be 1-D of width cols");
  }
  Tensor xhat({rows, cols});
  Tensor inv_sigma({rows});
  Tensor out({rows, cols});
  const float* px = xv.data().data();
  const float* pgain = gain.value().data().data();
  const float* pbias = bias.value().data().data();
  for (std::int64_t i = 0; i < rows; ++i) {
    float mean = 0.0f;
    for (std::int64_t j = 0; j < cols; ++j) mean += px[i * cols + j];
    mean /= static_cast<float>(cols);
    float var = 0.0f;
    for (std::int64_t j = 0; j < cols; ++j) {
      const float d = px[i * cols + j] - mean;
      var += d * d;
    }
    var /= static_cast<float>(cols);
    const float inv = 1.0f / std::sqrt(var + eps);
    inv_sigma[i] = inv;
    for (std::int64_t j = 0; j < cols; ++j) {
      const float xh = (px[i * cols + j] - mean) * inv;
      xhat.at(i, j) = xh;
      out.at(i, j) = xh * pgain[j] + pbias[j];
    }
  }
  return MakeOp(std::move(out), {x, gain, bias},
                [xhat = std::move(xhat), inv_sigma = std::move(inv_sigma)](Node& n) {
    const std::int64_t rows = xhat.dim(0), cols = xhat.dim(1);
    const Tensor& gainv = n.parents[1]->value;
    const float* pg = n.grad.data().data();
    const float* pxh = xhat.data().data();
    const float* pgain = gainv.data().data();
    if (Needs(n, 0)) {
      Tensor dx({rows, cols});
      float* pdx = dx.data().data();
      for (std::int64_t i = 0; i < rows; ++i) {
        // dxhat = dy o gain; dx = inv_sigma * (dxhat - mean(dxhat)
        //                                      - xhat * mean(dxhat o xhat))
        float m1 = 0.0f, m2 = 0.0f;
        for (std::int64_t j = 0; j < cols; ++j) {
          const float dxh = pg[i * cols + j] * pgain[j];
          m1 += dxh;
          m2 += dxh * pxh[i * cols + j];
        }
        m1 /= static_cast<float>(cols);
        m2 /= static_cast<float>(cols);
        const float inv = inv_sigma[i];
        for (std::int64_t j = 0; j < cols; ++j) {
          const float dxh = pg[i * cols + j] * pgain[j];
          pdx[i * cols + j] = inv * (dxh - m1 - pxh[i * cols + j] * m2);
        }
      }
      n.parents[0]->AccumulateGrad(dx);
    }
    if (Needs(n, 1)) {
      Tensor dgain({cols});
      for (std::int64_t i = 0; i < rows; ++i) {
        for (std::int64_t j = 0; j < cols; ++j) {
          dgain[j] += pg[i * cols + j] * pxh[i * cols + j];
        }
      }
      n.parents[1]->AccumulateGrad(dgain);
    }
    if (Needs(n, 2)) n.parents[2]->AccumulateGrad(tensor::SumRows(n.grad));
  });
}

Variable SliceCols(const Variable& x, std::int64_t start, std::int64_t count) {
  const Tensor& xv = x.value();
  if (xv.rank() != 2) throw std::invalid_argument("SliceCols: x must be 2-D");
  const std::int64_t rows = xv.dim(0), cols = xv.dim(1);
  if (start < 0 || count <= 0 || start + count > cols) {
    throw std::invalid_argument("SliceCols: range out of bounds");
  }
  Tensor out({rows, count});
  for (std::int64_t i = 0; i < rows; ++i) {
    for (std::int64_t j = 0; j < count; ++j) out.at(i, j) = xv.at(i, start + j);
  }
  return MakeOp(std::move(out), {x}, [start, count, rows, cols](Node& n) {
    if (!Needs(n, 0)) return;
    Tensor dx({rows, cols});
    for (std::int64_t i = 0; i < rows; ++i) {
      for (std::int64_t j = 0; j < count; ++j) dx.at(i, start + j) = n.grad.at(i, j);
    }
    n.parents[0]->AccumulateGrad(dx);
  });
}

Variable ConcatCols(std::span<const Variable> parts) {
  if (parts.empty()) throw std::invalid_argument("ConcatCols: no inputs");
  const std::int64_t rows = parts[0].value().dim(0);
  std::int64_t total = 0;
  std::vector<std::int64_t> widths;
  widths.reserve(parts.size());
  for (const auto& p : parts) {
    if (p.value().rank() != 2 || p.value().dim(0) != rows) {
      throw std::invalid_argument("ConcatCols: row count mismatch");
    }
    widths.push_back(p.value().dim(1));
    total += p.value().dim(1);
  }
  Tensor out({rows, total});
  std::int64_t off = 0;
  for (const auto& p : parts) {
    const Tensor& pv = p.value();
    for (std::int64_t i = 0; i < rows; ++i) {
      for (std::int64_t j = 0; j < pv.dim(1); ++j) out.at(i, off + j) = pv.at(i, j);
    }
    off += pv.dim(1);
  }
  std::vector<Variable> inputs(parts.begin(), parts.end());
  return MakeOp(std::move(out), std::move(inputs),
                [widths = std::move(widths), rows](Node& n) {
    std::int64_t off = 0;
    for (std::size_t p = 0; p < n.parents.size(); ++p) {
      const std::int64_t w = widths[p];
      if (n.parents[p]->requires_grad) {
        Tensor dp({rows, w});
        for (std::int64_t i = 0; i < rows; ++i) {
          for (std::int64_t j = 0; j < w; ++j) dp.at(i, j) = n.grad.at(i, off + j);
        }
        n.parents[p]->AccumulateGrad(dp);
      }
      off += w;
    }
  });
}

Variable RowScale(const Variable& x, const Variable& s) {
  const Tensor& xv = x.value();
  const Tensor& sv = s.value();
  if (xv.rank() != 2 || sv.rank() != 2 || sv.dim(1) != 1 || sv.dim(0) != xv.dim(0)) {
    throw std::invalid_argument("RowScale: expected x(m,c) and s(m,1)");
  }
  const std::int64_t rows = xv.dim(0), cols = xv.dim(1);
  Tensor out({rows, cols});
  for (std::int64_t i = 0; i < rows; ++i) {
    const float sc = sv.at(i, 0);
    for (std::int64_t j = 0; j < cols; ++j) out.at(i, j) = xv.at(i, j) * sc;
  }
  return MakeOp(std::move(out), {x, s}, [rows, cols](Node& n) {
    const Tensor& xv = n.parents[0]->value;
    const Tensor& sv = n.parents[1]->value;
    if (Needs(n, 0)) {
      Tensor dx({rows, cols});
      for (std::int64_t i = 0; i < rows; ++i) {
        const float sc = sv.at(i, 0);
        for (std::int64_t j = 0; j < cols; ++j) dx.at(i, j) = n.grad.at(i, j) * sc;
      }
      n.parents[0]->AccumulateGrad(dx);
    }
    if (Needs(n, 1)) {
      Tensor ds({rows, 1});
      for (std::int64_t i = 0; i < rows; ++i) {
        float acc = 0.0f;
        for (std::int64_t j = 0; j < cols; ++j) acc += n.grad.at(i, j) * xv.at(i, j);
        ds.at(i, 0) = acc;
      }
      n.parents[1]->AccumulateGrad(ds);
    }
  });
}

Variable SpMM(std::shared_ptr<const tensor::Csr> a,
              std::shared_ptr<const tensor::Csr> a_transposed, const Variable& x) {
  if (!a || !a_transposed) throw std::invalid_argument("SpMM: null adjacency");
  Tensor out = tensor::SpMM(*a, x.value());
  return MakeOp(std::move(out), {x}, [at = std::move(a_transposed)](Node& n) {
    if (Needs(n, 0)) n.parents[0]->AccumulateGrad(tensor::SpMM(*at, n.grad));
  });
}

Variable IndexSelectRows(const Variable& x, std::vector<std::int32_t> indices) {
  const Tensor& xv = x.value();
  if (xv.rank() != 2) throw std::invalid_argument("IndexSelectRows: x must be 2-D");
  const std::int64_t rows = xv.dim(0), cols = xv.dim(1);
  const auto m = static_cast<std::int64_t>(indices.size());
  Tensor out({m, cols});
  for (std::int64_t i = 0; i < m; ++i) {
    const std::int32_t src = indices[static_cast<std::size_t>(i)];
    if (src < 0 || src >= rows) throw std::out_of_range("IndexSelectRows: index out of range");
    for (std::int64_t j = 0; j < cols; ++j) out.at(i, j) = xv.at(src, j);
  }
  return MakeOp(std::move(out), {x}, [indices = std::move(indices), rows, cols](Node& n) {
    if (!Needs(n, 0)) return;
    Tensor dx({rows, cols});
    for (std::size_t i = 0; i < indices.size(); ++i) {
      const std::int32_t dst = indices[i];
      for (std::int64_t j = 0; j < cols; ++j) {
        dx.at(dst, j) += n.grad.at(static_cast<std::int64_t>(i), j);
      }
    }
    n.parents[0]->AccumulateGrad(dx);
  });
}

Variable SegmentSum(const Variable& x, std::vector<std::int32_t> segment_ids,
                    std::int64_t num_segments) {
  const Tensor& xv = x.value();
  if (xv.rank() != 2) throw std::invalid_argument("SegmentSum: x must be 2-D");
  if (static_cast<std::int64_t>(segment_ids.size()) != xv.dim(0)) {
    throw std::invalid_argument("SegmentSum: one segment id per row required");
  }
  const std::int64_t cols = xv.dim(1);
  Tensor out({num_segments, cols});
  for (std::size_t i = 0; i < segment_ids.size(); ++i) {
    const std::int32_t s = segment_ids[i];
    if (s < 0 || s >= num_segments) throw std::out_of_range("SegmentSum: segment id out of range");
    for (std::int64_t j = 0; j < cols; ++j) {
      out.at(s, j) += xv.at(static_cast<std::int64_t>(i), j);
    }
  }
  return MakeOp(std::move(out), {x},
                [segment_ids = std::move(segment_ids), cols](Node& n) {
    if (!Needs(n, 0)) return;
    Tensor dx({static_cast<std::int64_t>(segment_ids.size()), cols});
    for (std::size_t i = 0; i < segment_ids.size(); ++i) {
      for (std::int64_t j = 0; j < cols; ++j) {
        dx.at(static_cast<std::int64_t>(i), j) = n.grad.at(segment_ids[i], j);
      }
    }
    n.parents[0]->AccumulateGrad(dx);
  });
}

Variable SegmentSoftmax(const Variable& x, std::vector<std::int32_t> segment_ids,
                        std::int64_t num_segments) {
  const Tensor& xv = x.value();
  if (xv.rank() != 2) throw std::invalid_argument("SegmentSoftmax: x must be 2-D");
  if (static_cast<std::int64_t>(segment_ids.size()) != xv.dim(0)) {
    throw std::invalid_argument("SegmentSoftmax: one segment id per row required");
  }
  const std::int64_t rows = xv.dim(0), cols = xv.dim(1);
  // Numerically stable: subtract the per-(segment, column) max first.
  Tensor maxv({num_segments, cols});
  maxv.Fill(-std::numeric_limits<float>::infinity());
  for (std::int64_t i = 0; i < rows; ++i) {
    const std::int32_t s = segment_ids[static_cast<std::size_t>(i)];
    if (s < 0 || s >= num_segments) {
      throw std::out_of_range("SegmentSoftmax: segment id out of range");
    }
    for (std::int64_t j = 0; j < cols; ++j) {
      maxv.at(s, j) = std::max(maxv.at(s, j), xv.at(i, j));
    }
  }
  Tensor expd({rows, cols});
  Tensor denom({num_segments, cols});
  for (std::int64_t i = 0; i < rows; ++i) {
    const std::int32_t s = segment_ids[static_cast<std::size_t>(i)];
    for (std::int64_t j = 0; j < cols; ++j) {
      const float e = std::exp(xv.at(i, j) - maxv.at(s, j));
      expd.at(i, j) = e;
      denom.at(s, j) += e;
    }
  }
  Tensor out({rows, cols});
  for (std::int64_t i = 0; i < rows; ++i) {
    const std::int32_t s = segment_ids[static_cast<std::size_t>(i)];
    for (std::int64_t j = 0; j < cols; ++j) out.at(i, j) = expd.at(i, j) / denom.at(s, j);
  }
  return MakeOp(std::move(out), {x},
                [segment_ids = std::move(segment_ids), num_segments, cols](Node& n) {
    if (!Needs(n, 0)) return;
    const Tensor& s = n.value;
    const std::int64_t rows = s.dim(0);
    // Per (segment, column): dot = sum_e g_e * s_e; dx_e = s_e * (g_e - dot).
    Tensor dots({num_segments, cols});
    for (std::int64_t i = 0; i < rows; ++i) {
      const std::int32_t seg = segment_ids[static_cast<std::size_t>(i)];
      for (std::int64_t j = 0; j < cols; ++j) dots.at(seg, j) += n.grad.at(i, j) * s.at(i, j);
    }
    Tensor dx({rows, cols});
    for (std::int64_t i = 0; i < rows; ++i) {
      const std::int32_t seg = segment_ids[static_cast<std::size_t>(i)];
      for (std::int64_t j = 0; j < cols; ++j) {
        dx.at(i, j) = s.at(i, j) * (n.grad.at(i, j) - dots.at(seg, j));
      }
    }
    n.parents[0]->AccumulateGrad(dx);
  });
}

Variable GlobalAddPool(const Variable& x) {
  const Tensor& xv = x.value();
  if (xv.rank() != 2) throw std::invalid_argument("GlobalAddPool: x must be 2-D");
  const std::int64_t rows = xv.dim(0), cols = xv.dim(1);
  Tensor out({1, cols});
  for (std::int64_t i = 0; i < rows; ++i) {
    for (std::int64_t j = 0; j < cols; ++j) out.at(0, j) += xv.at(i, j);
  }
  return MakeOp(std::move(out), {x}, [rows, cols](Node& n) {
    if (!Needs(n, 0)) return;
    Tensor dx({rows, cols});
    for (std::int64_t i = 0; i < rows; ++i) {
      for (std::int64_t j = 0; j < cols; ++j) dx.at(i, j) = n.grad.at(0, j);
    }
    n.parents[0]->AccumulateGrad(dx);
  });
}

namespace {

Variable ScalarError(const Variable& pred, float target, bool absolute) {
  const Tensor& pv = pred.value();
  if (pv.numel() != 1) throw std::invalid_argument("loss: prediction must be scalar (1 element)");
  const float diff = pv.data()[0] - target;
  Tensor out({1, 1});
  out[0] = absolute ? std::fabs(diff) : diff * diff;
  return MakeOp(std::move(out), {pred}, [diff, absolute](Node& n) {
    if (!Needs(n, 0)) return;
    Tensor dp(n.parents[0]->value.shape());
    const float d = absolute ? (diff > 0.0f ? 1.0f : (diff < 0.0f ? -1.0f : 0.0f)) : 2.0f * diff;
    dp.data()[0] = d * n.grad.data()[0];
    n.parents[0]->AccumulateGrad(dp);
  });
}

}  // namespace

Variable AbsError(const Variable& pred, float target) { return ScalarError(pred, target, true); }

Variable SquaredError(const Variable& pred, float target) {
  return ScalarError(pred, target, false);
}

}  // namespace predtop::autograd

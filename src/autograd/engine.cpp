#include "autograd/engine.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/thread_pool.h"

namespace predtop::autograd {

namespace {

using detail::Node;
using tensor::Tensor;

/// Child id of the d(root)/d(root) seed. Larger than every real node id so
/// it reduces first, exactly where the serial replay adds it.
constexpr std::uint64_t kSeedChildId = ~0ULL;

/// Identity of the closure currently running on this thread: contributions
/// it stages are tagged (child_id, seq) so each target node can replay them
/// in the serial order (children descending by id; within one closure, call
/// order).
struct ClosureCtx {
  std::uint64_t child_id = kSeedChildId;
  std::uint32_t seq = 0;
};
thread_local ClosureCtx t_closure;

struct Contribution {
  std::uint64_t child_id = 0;
  std::uint32_t seq = 0;
  Tensor grad;
};

struct Task {
  Node* node = nullptr;
  /// Reachable consumers (counted with multiplicity) still to finish.
  std::atomic<std::size_t> pending{0};
  std::mutex mu;
  std::vector<Contribution> contributions;
  /// Index into the external leaf-gradient buffers, or -1.
  std::ptrdiff_t leaf = -1;
};

class Engine final : public detail::GradSink, public std::enable_shared_from_this<Engine> {
 public:
  Engine(const Variable& root, std::span<Variable* const> leaves,
         std::span<Tensor> leaf_grads)
      : leaf_grads_(leaf_grads) {
    Node* root_node = root.node().get();
    // Collect the reachable tape (same traversal as the serial Backward).
    index_.emplace(root_node, tasks_.size());
    tasks_.push_back(std::make_unique<Task>());
    tasks_.back()->node = root_node;
    std::vector<Node*> stack{root_node};
    while (!stack.empty()) {
      Node* n = stack.back();
      stack.pop_back();
      for (const auto& p : n->parents) {
        if (index_.emplace(p.get(), tasks_.size()).second) {
          tasks_.push_back(std::make_unique<Task>());
          tasks_.back()->node = p.get();
          stack.push_back(p.get());
        }
      }
    }
    // Dependency counts: one per consumer edge.
    for (const auto& t : tasks_) {
      for (const auto& p : t->node->parents) {
        tasks_[index_.at(p.get())]->pending.fetch_add(1, std::memory_order_relaxed);
      }
    }
    for (std::size_t i = 0; i < leaves.size(); ++i) {
      const auto it = index_.find(leaves[i]->node().get());
      if (it != index_.end()) tasks_[it->second]->leaf = static_cast<std::ptrdiff_t>(i);
    }
    remaining_ = tasks_.size();
    // Seed d(root)/d(root) with ones.
    Tensor seed(root_node->value.shape());
    seed.Fill(1.0f);
    tasks_[0]->contributions.push_back({kSeedChildId, 0, std::move(seed)});
    for (const auto& t : tasks_) {
      if (t->pending.load(std::memory_order_relaxed) == 0) ready_.push_back(t.get());
    }
  }

  void Stage(Node* target, const Tensor& g) override {
    const auto it = index_.find(target);
    if (it == index_.end()) {
      throw std::logic_error("autograd::Engine: contribution to a node outside the tape");
    }
    Task& t = *tasks_[it->second];
    const std::scoped_lock lock(t.mu);
    t.contributions.push_back({t_closure.child_id, t_closure.seq++, g});
  }

  void Run(util::ThreadPool* pool) {
    const std::size_t helpers =
        pool == nullptr ? 0 : std::min(pool->ThreadCount(), tasks_.size());
    for (std::size_t h = 0; h < helpers; ++h) {
      // Helpers hold shared ownership, so one that only runs after this call
      // returned (open_ == false by then) is a safe no-op. The caller never
      // waits for unstarted helpers — same protocol as ParallelFor, which is
      // what makes nested use (an engine inside a pool task) deadlock-free.
      auto fut = pool->Submit([self = shared_from_this()] {
        {
          const std::scoped_lock lock(self->qmu_);
          if (!self->open_) return;
          ++self->active_;
        }
        self->Drain();
        {
          const std::scoped_lock lock(self->qmu_);
          --self->active_;
        }
        self->qcv_.notify_all();
      });
      (void)fut;  // completion is tracked by open_/active_, not the future
    }
    Drain();  // the calling thread participates
    std::exception_ptr error;
    {
      std::unique_lock lock(qmu_);
      open_ = false;
      qcv_.wait(lock, [&] { return active_ == 0; });
      error = error_;
    }
    if (error) std::rethrow_exception(error);
  }

 private:
  /// Pop-and-process loop shared by the caller and every helper. Installs
  /// this engine as the thread's gradient sink so closure-side
  /// AccumulateGrad calls stage with us.
  void Drain() {
    struct SinkGuard {
      explicit SinkGuard(Engine* e) { detail::SetActiveGradSink(e); }
      ~SinkGuard() { detail::SetActiveGradSink(nullptr); }
    } guard(this);
    for (;;) {
      Task* task = nullptr;
      {
        std::unique_lock lock(qmu_);
        qcv_.wait(lock, [&] { return failed_ || remaining_ == 0 || !ready_.empty(); });
        if (failed_ || ready_.empty()) return;  // ready empty => all done
        task = ready_.back();
        ready_.pop_back();
      }
      try {
        Process(*task);
      } catch (...) {
        const std::scoped_lock lock(qmu_);
        if (!error_) error_ = std::current_exception();
        failed_ = true;
        qcv_.notify_all();
        return;
      }
      Complete(*task);
    }
  }

  void Process(Task& task) {
    std::vector<Contribution> contributions;
    {
      const std::scoped_lock lock(task.mu);
      contributions = std::move(task.contributions);
    }
    // Serial-replay order: children descending by creation id (the seed's
    // sentinel id sorts first), calls within one closure in program order.
    std::sort(contributions.begin(), contributions.end(),
              [](const Contribution& a, const Contribution& b) {
                if (a.child_id != b.child_id) return a.child_id > b.child_id;
                return a.seq < b.seq;
              });
    Node* n = task.node;
    if (task.leaf >= 0) {
      // External capture: the shared leaf's own grad is never touched.
      Tensor& out = leaf_grads_[static_cast<std::size_t>(task.leaf)];
      for (Contribution& c : contributions) {
        if (out.numel() == 0) {
          out = std::move(c.grad);
        } else {
          out.AddInPlace(c.grad);
        }
      }
      return;
    }
    for (Contribution& c : contributions) {
      if (n->grad.numel() == 0) {
        n->grad = std::move(c.grad);
      } else {
        n->grad.AddInPlace(c.grad);
      }
    }
    if (n->backward && n->grad.numel() != 0) {
      struct CtxGuard {
        ~CtxGuard() { t_closure = ClosureCtx{}; }
      } ctx_guard;
      t_closure.child_id = n->id;
      t_closure.seq = 0;
      n->backward(*n);
    }
  }

  void Complete(Task& task) {
    std::vector<Task*> newly_ready;
    for (const auto& p : task.node->parents) {
      Task& pt = *tasks_[index_.at(p.get())];
      if (pt.pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        newly_ready.push_back(&pt);
      }
    }
    bool all_done = false;
    {
      const std::scoped_lock lock(qmu_);
      for (Task* t : newly_ready) ready_.push_back(t);
      all_done = --remaining_ == 0;
    }
    if (all_done) {
      qcv_.notify_all();
    } else {
      for (std::size_t i = 0; i < newly_ready.size(); ++i) qcv_.notify_one();
    }
  }

  std::unordered_map<const Node*, std::size_t> index_;
  std::vector<std::unique_ptr<Task>> tasks_;
  std::span<Tensor> leaf_grads_;

  std::mutex qmu_;
  std::condition_variable qcv_;
  std::vector<Task*> ready_;
  std::size_t remaining_ = 0;
  bool failed_ = false;
  std::exception_ptr error_;
  bool open_ = true;  // cleared when Run() is over; late helpers no-op
  int active_ = 0;    // helpers inside Drain()
};

void RunEngine(const Variable& root, std::span<Variable* const> leaves,
               std::span<Tensor> leaf_grads, const BackwardOptions& options) {
  if (!root.defined()) throw std::invalid_argument("Backward: undefined variable");
  if (leaves.size() != leaf_grads.size()) {
    throw std::invalid_argument("BackwardInto: leaves/leaf_grads size mismatch");
  }
  auto engine = std::make_shared<Engine>(root, leaves, leaf_grads);
  engine->Run(options.pool);
}

}  // namespace

void BackwardParallel(const Variable& root, const BackwardOptions& options) {
  RunEngine(root, {}, {}, options);
}

void BackwardInto(const Variable& root, std::span<Variable* const> leaves,
                  std::span<Tensor> leaf_grads, const BackwardOptions& options) {
  RunEngine(root, leaves, leaf_grads, options);
}

}  // namespace predtop::autograd

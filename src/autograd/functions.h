#pragma once
// Differentiable operations over Variable. Each op computes its forward
// value eagerly with the kernels in tensor/ops.h and records a backward
// closure implementing the analytic vector-Jacobian product. Every op here
// has a central-difference gradient check in tests/autograd_test.cpp.

#include <cstdint>
#include <span>
#include <vector>

#include <memory>

#include "autograd/variable.h"
#include "tensor/sparse.h"

namespace predtop::autograd {

// ---- linear algebra ----
Variable MatMul(const Variable& a, const Variable& b);
Variable Transpose(const Variable& a);

// ---- elementwise / broadcast ----
Variable Add(const Variable& a, const Variable& b);
Variable Sub(const Variable& a, const Variable& b);
Variable Mul(const Variable& a, const Variable& b);
Variable Scale(const Variable& a, float s);
/// rows(m,n) + bias(n) broadcast over rows.
Variable AddRowVector(const Variable& m, const Variable& bias);

// ---- activations ----
Variable Relu(const Variable& a);
Variable LeakyRelu(const Variable& a, float negative_slope);
Variable Gelu(const Variable& a);
Variable Tanh(const Variable& a);

// ---- normalization / attention ----
/// Row-wise softmax with a constant additive mask (-inf blocks attention);
/// the mask is data, not a differentiable input.
Variable MaskedRowSoftmax(const Variable& logits, const tensor::Tensor& additive_mask);
Variable RowSoftmax(const Variable& logits);
/// Row-wise layer normalization with affine parameters gain/bias of shape
/// (cols).
Variable LayerNorm(const Variable& x, const Variable& gain, const Variable& bias,
                   float eps = 1e-5f);

// ---- shape surgery ----
/// Columns [start, start+count) of a 2-D input.
Variable SliceCols(const Variable& x, std::int64_t start, std::int64_t count);
/// Horizontal concatenation of 2-D inputs with equal row counts.
Variable ConcatCols(std::span<const Variable> parts);

/// Scale each row of x(m,c) by the scalar in s(m,1).
Variable RowScale(const Variable& x, const Variable& s);

/// Y = A * X for a constant sparse adjacency A (GCN message passing). A is
/// data, not a differentiable input; `a_transposed` must be A^T and is used
/// by the backward pass.
Variable SpMM(std::shared_ptr<const tensor::Csr> a,
              std::shared_ptr<const tensor::Csr> a_transposed, const Variable& x);

// ---- gather / scatter (graph ops) ----
/// out[i] = x[indices[i]] (row gather); backward scatter-adds.
Variable IndexSelectRows(const Variable& x, std::vector<std::int32_t> indices);
/// Sum rows of x into `num_segments` output rows keyed by segment id.
Variable SegmentSum(const Variable& x, std::vector<std::int32_t> segment_ids,
                    std::int64_t num_segments);
/// Column-independent softmax within each segment of rows (GAT edge
/// normalization). Empty segments produce no contribution.
Variable SegmentSoftmax(const Variable& x, std::vector<std::int32_t> segment_ids,
                        std::int64_t num_segments);
/// (m,d) -> (1,d): sum over nodes (paper Eqn. 2 global add pool).
Variable GlobalAddPool(const Variable& x);

// ---- losses (scalar outputs, shape (1,1)) ----
/// |pred - target| for a (1,1) prediction (paper Eqn. 3 per-sample term).
Variable AbsError(const Variable& pred, float target);
/// (pred - target)^2 for a (1,1) prediction.
Variable SquaredError(const Variable& pred, float target);

}  // namespace predtop::autograd

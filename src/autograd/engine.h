#pragma once
// Multi-threaded backward executor over the autograd tape.
//
// The serial Backward() in variable.cpp replays closures in reverse creation
// order on one thread. This engine instead runs a topological ready-queue
// with per-node dependency counting (the design of pytorch's
// torch/csrc/autograd/engine.cpp, specialized to this project's tape): a
// node's backward closure becomes runnable once every reachable consumer of
// its output has finished, so independent branches of the graph execute
// concurrently.
//
// Determinism contract. Backward closures do not write parents' gradients
// directly while the engine runs; each contribution is *staged* with the
// node it targets, tagged by the contributing child's creation id. When a
// node becomes ready, its staged contributions are reduced in fixed order —
// descending child id, which is exactly the order the serial replay produces
// them in — before its own closure fires. The executed schedule may differ
// run to run, but every float addition happens in the same order, so the
// resulting gradients are bit-identical to serial Backward() for ANY worker
// count (this is asserted by tests/autograd_test.cpp).
//
// BackwardInto additionally redirects the gradients of a chosen set of leaf
// Variables into caller-owned buffers, leaving Node::grad of those leaves
// untouched. That is what makes data-parallel training sound: many threads
// can differentiate independent tapes that SHARE parameter leaves, each
// accumulating into its own buffer, with no write ever landing on the shared
// nodes. (Any shared leaf NOT listed would be written concurrently — the
// trainer always lists the full parameter set.)

#include <span>

#include "autograd/variable.h"

namespace predtop::util {
class ThreadPool;
}

namespace predtop::autograd {

struct BackwardOptions {
  /// Helper workers are borrowed from this pool; the calling thread always
  /// participates, so nullptr (or a busy pool) degrades to single-threaded
  /// execution with identical results. Safe to call from inside a pool task:
  /// like ThreadPool::ParallelFor, the caller never blocks on helpers that
  /// were queued but never started.
  util::ThreadPool* pool = nullptr;
};

/// Engine-scheduled equivalent of Backward(root): seeds d(root)/d(root) with
/// ones and accumulates into every reachable node's grad. Bit-identical to
/// the serial replay regardless of worker count.
void BackwardParallel(const Variable& root, const BackwardOptions& options = {});

/// As BackwardParallel, but gradients of `leaves[i]` are accumulated into
/// `leaf_grads[i]` (assigned when empty, added in place otherwise — so one
/// buffer can accumulate across several calls) and the leaves' own
/// Node::grad stays untouched. `leaf_grads` must be parallel to `leaves`.
void BackwardInto(const Variable& root, std::span<Variable* const> leaves,
                  std::span<tensor::Tensor> leaf_grads, const BackwardOptions& options = {});

}  // namespace predtop::autograd

#include "autograd/variable.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace predtop::autograd {

namespace detail {

void Node::AccumulateGrad(const tensor::Tensor& g) {
  if (GradSink* sink = ActiveGradSink()) {
    sink->Stage(this, g);
    return;
  }
  if (grad.numel() == 0) {
    grad = g;
  } else {
    grad.AddInPlace(g);
  }
}

std::uint64_t NextNodeId() noexcept {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

namespace {
thread_local GradSink* t_grad_sink = nullptr;
}  // namespace

GradSink* ActiveGradSink() noexcept { return t_grad_sink; }
void SetActiveGradSink(GradSink* sink) noexcept { t_grad_sink = sink; }

}  // namespace detail

Variable::Variable(tensor::Tensor value, bool requires_grad) {
  node_ = std::make_shared<detail::Node>();
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
  node_->id = detail::NextNodeId();
}

const tensor::Tensor& Variable::grad() const {
  if (node_->grad.numel() == 0) {
    // Lazily materialize a zero gradient so callers always see a tensor of
    // the right shape.
    node_->grad = tensor::Tensor(node_->value.shape());
  }
  return node_->grad;
}

Variable Variable::FromNode(std::shared_ptr<detail::Node> node) {
  Variable v;
  v.node_ = std::move(node);
  return v;
}

void Backward(const Variable& root) {
  if (!root.defined()) throw std::invalid_argument("Backward: undefined variable");
  auto* root_node = root.node().get();
  // Seed with ones (works for scalar losses; for non-scalars this computes
  // the gradient of the sum of outputs, which is what tests rely on).
  tensor::Tensor seed(root_node->value.shape());
  seed.Fill(1.0f);
  root_node->AccumulateGrad(seed);

  // Collect the reachable tape and replay in reverse creation order.
  std::vector<detail::Node*> order;
  std::unordered_set<detail::Node*> seen;
  std::vector<detail::Node*> stack{root_node};
  seen.insert(root_node);
  while (!stack.empty()) {
    detail::Node* n = stack.back();
    stack.pop_back();
    order.push_back(n);
    for (const auto& p : n->parents) {
      if (seen.insert(p.get()).second) stack.push_back(p.get());
    }
  }
  std::sort(order.begin(), order.end(),
            [](const detail::Node* a, const detail::Node* b) { return a->id > b->id; });
  for (detail::Node* n : order) {
    if (n->backward && n->grad.numel() != 0) n->backward(*n);
  }
}

}  // namespace predtop::autograd

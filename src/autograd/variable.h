#pragma once
// Tape-based reverse-mode automatic differentiation.
//
// A Variable wraps a Tensor plus a node in a dynamically-built computation
// graph. Each differentiable op (see functions.h) creates a node that holds
// its inputs (shared ownership keeps the tape alive) and a backward closure
// computing vector-Jacobian products. Backward() runs the closures in
// reverse creation order, which is a valid topological order because ops
// always construct outputs after their inputs.
//
// The tape is not thread-safe across a single graph; independent graphs may
// be built concurrently (the node id counter is atomic).

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace predtop::autograd {

namespace detail {

struct Node {
  tensor::Tensor value;
  tensor::Tensor grad;  // allocated lazily on first accumulation
  bool requires_grad = false;
  std::uint64_t id = 0;
  std::vector<std::shared_ptr<Node>> parents;
  /// Propagates this->grad into parents' grads. Empty for leaves.
  std::function<void(Node&)> backward;

  /// Accumulate `g` into this node's gradient (allocating if needed). While
  /// an engine backward is running on the calling thread, the contribution
  /// is staged with the engine instead (see GradSink below), which is what
  /// makes per-node accumulation both race-free and deterministic.
  void AccumulateGrad(const tensor::Tensor& g);
};

std::uint64_t NextNodeId() noexcept;

/// Destination for gradient contributions produced by backward closures.
/// engine.cpp installs one per thread while it runs closures so that
/// AccumulateGrad calls route into its staging buffers (ordered, per-child)
/// instead of mutating Node::grad directly.
class GradSink {
 public:
  virtual ~GradSink() = default;
  virtual void Stage(Node* target, const tensor::Tensor& g) = 0;
};

/// The calling thread's active sink (nullptr outside engine backwards).
[[nodiscard]] GradSink* ActiveGradSink() noexcept;
void SetActiveGradSink(GradSink* sink) noexcept;

}  // namespace detail

class Variable {
 public:
  /// Empty variable (no node); only assignable.
  Variable() = default;

  /// Wrap a value; `requires_grad` marks a trainable leaf.
  explicit Variable(tensor::Tensor value, bool requires_grad = false);

  [[nodiscard]] bool defined() const noexcept { return node_ != nullptr; }
  [[nodiscard]] const tensor::Tensor& value() const noexcept { return node_->value; }
  /// Mutable access for optimizers (in-place parameter updates).
  [[nodiscard]] tensor::Tensor& mutable_value() noexcept { return node_->value; }
  /// Gradient accumulated by Backward(); zero tensor if none was propagated.
  [[nodiscard]] const tensor::Tensor& grad() const;
  [[nodiscard]] bool requires_grad() const noexcept { return node_->requires_grad; }

  /// Reset accumulated gradient to "none" (next Backward starts fresh).
  void ZeroGrad() noexcept { node_->grad = tensor::Tensor(); }

  /// Replace the accumulated gradient wholesale (the data-parallel trainer
  /// installs externally reduced gradients before the optimizer step).
  void SetGrad(tensor::Tensor g) noexcept { node_->grad = std::move(g); }

  /// Internal: used by op implementations.
  [[nodiscard]] const std::shared_ptr<detail::Node>& node() const noexcept { return node_; }
  [[nodiscard]] static Variable FromNode(std::shared_ptr<detail::Node> node);

 private:
  std::shared_ptr<detail::Node> node_;
};

/// Run reverse-mode accumulation from `root`, seeding d(root)/d(root) with
/// ones (root is typically a scalar loss). Gradients accumulate into every
/// reachable node with requires_grad set (directly or transitively).
void Backward(const Variable& root);

}  // namespace predtop::autograd

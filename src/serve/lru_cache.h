#pragma once
// Sharded LRU cache for predicted stage latencies. Keys are 64-bit
// fingerprints (model key hash mixed with the stage-DAG fingerprint); values
// are predicted latencies in seconds. Sharding by key bits keeps lock
// contention bounded when many service threads hit the cache concurrently —
// each shard has its own mutex, intrusive LRU list, and index.
//
// Shard selection uses key bits 48-63 (`(key >> 48) & mask`), NOT the low
// bits: callers must pass well-mixed keys (PredictionService::CacheKey runs
// a splitmix64 finalizer) or every entry lands in shard 0 and the per-shard
// budgets below silently shrink the effective capacity.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

namespace predtop::serve {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t entries = 0;

  [[nodiscard]] double HitRate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class ShardedLruCache {
 public:
  /// `capacity` is the total entry budget, split across shards (a shard
  /// never gets a budget below one entry, so the effective total is
  /// max(capacity, shard count) — exactly what Capacity() reports).
  /// `shards` is rounded up to a power of two (key bits 48-63 select the
  /// shard — see the class comment).
  explicit ShardedLruCache(std::size_t capacity, std::size_t shards = 8);

  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  [[nodiscard]] std::optional<double> Get(std::uint64_t key);
  void Put(std::uint64_t key, double value);

  /// Drop every entry (stats for hits/misses are kept; use ResetStats too
  /// for a cold-start measurement).
  void Clear();
  void ResetStats();

  [[nodiscard]] CacheStats Stats() const;
  /// Total entry budget actually enforced: the sum of per-shard budgets.
  /// Equals max(requested capacity, shard count) — the requested budget is
  /// no longer rounded up per shard and then multiplied back.
  [[nodiscard]] std::size_t Capacity() const noexcept { return capacity_; }

 private:
  struct Entry {
    std::uint64_t key = 0;
    double value = 0.0;
  };
  struct Shard {
    std::mutex mutex;
    std::size_t capacity = 1;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  [[nodiscard]] Shard& ShardFor(std::uint64_t key) noexcept {
    return *shards_[(key >> 48) & shard_mask_];
  }

  std::size_t capacity_;
  std::uint64_t shard_mask_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace predtop::serve

#pragma once
// Sharded LRU cache for predicted stage latencies. Keys are 64-bit
// fingerprints (model key hash mixed with the stage-DAG fingerprint); values
// are predicted latencies in seconds. Sharding by key bits keeps lock
// contention bounded when many service threads hit the cache concurrently —
// each shard has its own mutex, intrusive LRU list, and index.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

namespace predtop::serve {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t entries = 0;

  [[nodiscard]] double HitRate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class ShardedLruCache {
 public:
  /// `capacity` is the total entry budget, split evenly across shards.
  /// `shards` is rounded up to a power of two (key bits select the shard).
  explicit ShardedLruCache(std::size_t capacity, std::size_t shards = 8);

  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  [[nodiscard]] std::optional<double> Get(std::uint64_t key);
  void Put(std::uint64_t key, double value);

  /// Drop every entry (stats for hits/misses are kept; use ResetStats too
  /// for a cold-start measurement).
  void Clear();
  void ResetStats();

  [[nodiscard]] CacheStats Stats() const;
  [[nodiscard]] std::size_t Capacity() const noexcept { return per_shard_capacity_ * shards_.size(); }

 private:
  struct Entry {
    std::uint64_t key = 0;
    double value = 0.0;
  };
  struct Shard {
    std::mutex mutex;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  [[nodiscard]] Shard& ShardFor(std::uint64_t key) noexcept {
    return *shards_[(key >> 48) & shard_mask_];
  }

  std::size_t per_shard_capacity_;
  std::uint64_t shard_mask_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace predtop::serve

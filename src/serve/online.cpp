#include "serve/online.h"

#include <cmath>
#include <numeric>
#include <sstream>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace predtop::serve {

OnlineTrainer::OnlineTrainer(std::shared_ptr<ModelRegistry> registry, ModelKey key,
                             SampleSource source, OnlineTrainerOptions options)
    : registry_(std::move(registry)),
      key_(std::move(key)),
      source_(std::move(source)),
      options_(std::move(options)),
      rng_(options_.seed) {}

OnlineTrainer::~OnlineTrainer() { Stop(); }

void OnlineTrainer::OnSwap(std::function<void()> hook) {
  const std::scoped_lock lock(mutex_);
  on_swap_ = std::move(hook);
}

OnlineTrainerStats OnlineTrainer::Stats() const {
  const std::scoped_lock lock(mutex_);
  return stats_;
}

bool OnlineTrainer::RunRound() {
  util::Rng round_rng = [&] {
    const std::scoped_lock lock(mutex_);
    ++stats_.rounds;
    return rng_.Fork();
  }();
  const std::shared_ptr<core::LatencyRegressor> current = registry_->Find(key_);
  if (current == nullptr) return false;

  core::StageDataset fresh = source_(options_.samples_per_round, round_rng);
  const std::size_t n = fresh.Size();
  if (n == 0) return false;
  std::vector<std::size_t> all(n);
  std::iota(all.begin(), all.end(), std::size_t{0});

  // Drift test: served model's error on samples it has never seen, against
  // the baseline recorded at the previous refresh (first round seeds it).
  const double fresh_mre = current->MrePercent(fresh, all);
  bool drift = false;
  {
    const std::scoped_lock lock(mutex_);
    stats_.last_fresh_mre = fresh_mre;
    if (!has_baseline_) {
      has_baseline_ = true;
      stats_.baseline_mre = fresh_mre;
    } else if (std::isfinite(fresh_mre) &&
               fresh_mre > stats_.baseline_mre * options_.drift_threshold) {
      drift = true;
      ++stats_.drift_detected;
    }
  }
  if (!drift && !options_.refresh_always) return false;

  // Head of the round trains, tail validates; always >= 1 training sample.
  std::size_t n_val =
      static_cast<std::size_t>(std::llround(options_.val_fraction * static_cast<double>(n)));
  if (n_val >= n) n_val = n - 1;
  const std::size_t n_train = n - n_val;
  const std::vector<std::size_t> train_idx(all.begin(),
                                           all.begin() + static_cast<std::ptrdiff_t>(n_train));
  const std::vector<std::size_t> val_idx(all.begin() + static_cast<std::ptrdiff_t>(n_train),
                                         all.end());

  // Fine-tune a clone so the served model is untouched until the swap: a
  // checkpoint round-trip through memory reproduces weights, architecture,
  // and target normalization exactly.
  std::stringstream buffer;
  current->Save(buffer);
  core::LatencyRegressor candidate = core::LatencyRegressor::Load(buffer);
  const nn::TrainResult tuned = candidate.Fit(fresh, train_idx, val_idx, options_.train);
  {
    const std::scoped_lock lock(mutex_);
    stats_.skipped_steps += tuned.skipped_steps;
  }

  const double tuned_mre = candidate.MrePercent(fresh, all);
  if (!std::isfinite(tuned_mre)) {
    // A broken candidate must never reach serving, drill mode or not.
    const std::scoped_lock lock(mutex_);
    ++stats_.failed_swaps;
    return false;
  }
  if (!options_.refresh_always && tuned_mre > fresh_mre) {
    return false;  // fine-tune didn't help; keep serving the old version
  }

  // Publish through the durable path: atomic checkpoint write, then a
  // CRC-verified load + registry replacement. In-flight predictions hold the
  // old shared_ptr and finish safely; the load bumps the parameter epoch so
  // packed-weight caches repack.
  try {
    candidate.Save(options_.checkpoint_path);
  } catch (const std::exception& e) {
    PREDTOP_LOG_WARN << "online refresh: checkpoint write failed: " << e.what();
    const std::scoped_lock lock(mutex_);
    ++stats_.failed_swaps;
    return false;
  }
  // The checkpoint file is rewritten every round, so a quarantine earned by
  // an earlier (now overwritten) version of this path must not block it.
  for (const auto& [path, status] : registry_->Quarantined()) {
    if (path == options_.checkpoint_path) {
      registry_->ClearQuarantine();
      break;
    }
  }
  const fault::Status status = registry_->TryRegisterFromFile(key_, options_.checkpoint_path);
  if (!status.ok()) {
    PREDTOP_LOG_WARN << "online refresh: hot swap failed: " << status.ToString();
    const std::scoped_lock lock(mutex_);
    ++stats_.failed_swaps;
    return false;
  }

  std::function<void()> hook;
  {
    const std::scoped_lock lock(mutex_);
    ++stats_.refreshes;
    stats_.baseline_mre = tuned_mre;  // next rounds drift against the new model
    hook = on_swap_;
  }
  if (hook) hook();
  return true;
}

void OnlineTrainer::Start() {
  const std::scoped_lock lock(loop_mutex_);
  if (thread_.joinable()) return;
  stop_requested_ = false;
  thread_ = std::thread([this] { Loop(); });
}

void OnlineTrainer::Stop() {
  {
    const std::scoped_lock lock(loop_mutex_);
    stop_requested_ = true;
  }
  loop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void OnlineTrainer::Loop() {
  for (;;) {
    {
      std::unique_lock lock(loop_mutex_);
      if (loop_cv_.wait_for(lock, options_.poll_interval, [&] { return stop_requested_; })) {
        return;
      }
    }
    try {
      RunRound();
    } catch (const std::exception& e) {
      // The background loop must survive transient failures (fault
      // injection, IO): record and keep polling.
      PREDTOP_LOG_WARN << "online refresh round failed: " << e.what();
      const std::scoped_lock lock(mutex_);
      ++stats_.failed_swaps;
    }
  }
}

}  // namespace predtop::serve

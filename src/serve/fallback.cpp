#include "serve/fallback.h"

#include <limits>
#include <stdexcept>
#include <utility>

#include "core/analytical.h"
#include "parallel/config.h"

namespace predtop::serve {

FallbackOracle::FallbackOracle(sim::DeviceSpec device, ProgramResolver programs,
                               double assumed_efficiency)
    : device_(std::move(device)),
      programs_(std::move(programs)),
      efficiency_(assumed_efficiency) {
  if (!programs_) throw std::invalid_argument("FallbackOracle: null program resolver");
}

parallel::StageLatencyResult FallbackOracle::Estimate(ir::StageSlice slice, sim::Mesh mesh) {
  const std::scoped_lock lock(mutex_);
  const ir::StageProgram& program = programs_(slice);
  parallel::StageLatencyResult best{std::numeric_limits<double>::infinity(), {}, true};
  for (const parallel::ParallelConfig& config : parallel::PaperConfigs(mesh)) {
    const core::AnalyticalEstimator estimator(device_, config, efficiency_);
    const double latency = estimator.EstimateStageSeconds(program);
    if (latency < best.latency_s) best = {latency, config, true};
  }
  return best;
}

}  // namespace predtop::serve

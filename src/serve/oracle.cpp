#include "serve/oracle.h"

#include <limits>
#include <stdexcept>

namespace predtop::serve {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

ServingOracle::ServingOracle(PredictionService& service, std::vector<sim::Mesh> meshes,
                             std::vector<ModelKey> mesh_keys, StageEncoder encoder,
                             std::int32_t max_span)
    : service_(service),
      meshes_(std::move(meshes)),
      mesh_keys_(std::move(mesh_keys)),
      encoder_(std::move(encoder)),
      max_span_(max_span) {
  if (meshes_.size() != mesh_keys_.size()) {
    throw std::invalid_argument("ServingOracle: meshes/mesh_keys size mismatch");
  }
  if (!encoder_) throw std::invalid_argument("ServingOracle: null encoder");
}

parallel::StageLatencyResult ServingOracle::operator()(ir::StageSlice slice,
                                                       sim::Mesh mesh) const {
  if (max_span_ > 0 && slice.NumLayers() > max_span_) return {kInf, {}};
  for (std::size_t m = 0; m < meshes_.size(); ++m) {
    if (meshes_[m] == mesh) {
      return {service_.Predict(mesh_keys_[m], encoder_(slice)), {}};
    }
  }
  return {kInf, {}};
}

std::vector<parallel::StageLatencyResult> ServingOracle::PredictBatch(
    std::span<const parallel::StageQuery> queries) const {
  std::vector<parallel::StageLatencyResult> results(queries.size(),
                                                    parallel::StageLatencyResult{kInf, {}});
  // Bucket resolvable queries per mesh model; the rest stay at +inf.
  std::vector<std::vector<std::size_t>> by_mesh(meshes_.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    if (max_span_ > 0 && queries[q].slice.NumLayers() > max_span_) continue;
    for (std::size_t m = 0; m < meshes_.size(); ++m) {
      if (meshes_[m] == queries[q].mesh) {
        by_mesh[m].push_back(q);
        break;
      }
    }
  }
  for (std::size_t m = 0; m < meshes_.size(); ++m) {
    if (by_mesh[m].empty()) continue;
    std::vector<const graph::EncodedGraph*> graphs;
    graphs.reserve(by_mesh[m].size());
    for (const std::size_t q : by_mesh[m]) graphs.push_back(&encoder_(queries[q].slice));
    const std::vector<double> latencies = service_.PredictMany(mesh_keys_[m], graphs);
    for (std::size_t i = 0; i < by_mesh[m].size(); ++i) {
      results[by_mesh[m][i]].latency_s = latencies[i];
    }
  }
  return results;
}

parallel::StageLatencyOracle ServingOracle::AsOracle() const {
  return [this](ir::StageSlice slice, sim::Mesh mesh) { return (*this)(slice, mesh); };
}

parallel::StageLatencyBatchOracle ServingOracle::AsBatchOracle() const {
  return [this](std::span<const parallel::StageQuery> queries) {
    return PredictBatch(queries);
  };
}

std::vector<ModelKey> RegisterMeshPredictors(ModelRegistry& registry,
                                             const std::string& benchmark,
                                             const std::string& platform,
                                             const std::vector<sim::Mesh>& meshes,
                                             const core::TrainedMeshPredictors& trained) {
  if (meshes.size() != trained.per_mesh.size()) {
    throw std::invalid_argument("RegisterMeshPredictors: meshes/predictors size mismatch");
  }
  std::vector<ModelKey> keys;
  keys.reserve(meshes.size());
  for (std::size_t m = 0; m < meshes.size(); ++m) {
    ModelKey key{benchmark, platform, meshes[m], {}};
    registry.Register(key, trained.per_mesh[m]);
    keys.push_back(std::move(key));
  }
  return keys;
}

}  // namespace predtop::serve

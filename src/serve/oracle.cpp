#include "serve/oracle.h"

#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace predtop::serve {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}
}  // namespace

ServingOracle::ServingOracle(PredictionService& service, std::vector<sim::Mesh> meshes,
                             std::vector<ModelKey> mesh_keys, StageEncoder encoder,
                             std::int32_t max_span, ServingOracleOptions options)
    : service_(service),
      meshes_(std::move(meshes)),
      mesh_keys_(std::move(mesh_keys)),
      encoder_(std::move(encoder)),
      max_span_(max_span),
      options_(std::move(options)) {
  if (meshes_.size() != mesh_keys_.size()) {
    throw std::invalid_argument("ServingOracle: meshes/mesh_keys size mismatch");
  }
  if (!encoder_) throw std::invalid_argument("ServingOracle: null encoder");
  if (options_.max_attempts < 1) {
    throw std::invalid_argument("ServingOracle: max_attempts must be >= 1");
  }
}

parallel::StageLatencyResult ServingOracle::PredictOne(std::size_t mesh_index,
                                                       ir::StageSlice slice,
                                                       sim::Mesh mesh) const {
  queries_.fetch_add(1, std::memory_order_relaxed);
  const graph::EncodedGraph& g = encoder_(slice);
  if (!Hardened()) {
    // Legacy pass-through: no retries, no deadline, exceptions propagate.
    return {service_.Predict(mesh_keys_[mesh_index], g), {}};
  }

  // Ladder rung 1: the learned predictor, up to max_attempts times. Retrying
  // is worthwhile because the service does not cache non-finite answers.
  double late_value = kInf;  // finite answer that missed the deadline, if any
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    try {
      const auto start = std::chrono::steady_clock::now();
      const double value = service_.Predict(mesh_keys_[mesh_index], g);
      const bool late = options_.deadline_ms > 0.0 && ElapsedMs(start) > options_.deadline_ms;
      if (std::isfinite(value) && !late) return {value, {}, false};
      if (late) {
        // The answer is now cached, so a retry would "beat" the deadline
        // vacuously; degrade instead, but remember the value in case there
        // is no fallback to degrade to.
        if (std::isfinite(value)) late_value = value;
        break;
      }
      // Non-finite: fall through and retry.
    } catch (...) {
      // Missing/quarantined model or a (possibly injected) IO failure;
      // retry, then degrade.
    }
  }

  // Ladder rung 2: the analytical fallback. Always finite, tagged degraded.
  degraded_.fetch_add(1, std::memory_order_relaxed);
  if (options_.fallback) return options_.fallback->Estimate(slice, mesh);
  // No fallback configured: a late-but-finite learned answer is still the
  // best available; otherwise surrender the cell to the DP as +inf so the
  // search completes on the remaining cells.
  return {late_value, {}, true};
}

parallel::StageLatencyResult ServingOracle::operator()(ir::StageSlice slice,
                                                       sim::Mesh mesh) const {
  if (max_span_ > 0 && slice.NumLayers() > max_span_) return {kInf, {}};
  for (std::size_t m = 0; m < meshes_.size(); ++m) {
    if (meshes_[m] == mesh) return PredictOne(m, slice, mesh);
  }
  return {kInf, {}};
}

std::vector<parallel::StageLatencyResult> ServingOracle::PredictBatch(
    std::span<const parallel::StageQuery> queries) const {
  std::vector<parallel::StageLatencyResult> results(queries.size(),
                                                    parallel::StageLatencyResult{kInf, {}});
  // Bucket resolvable queries per mesh model; the rest stay at +inf.
  std::vector<std::vector<std::size_t>> by_mesh(meshes_.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    if (max_span_ > 0 && queries[q].slice.NumLayers() > max_span_) continue;
    for (std::size_t m = 0; m < meshes_.size(); ++m) {
      if (meshes_[m] == queries[q].mesh) {
        by_mesh[m].push_back(q);
        break;
      }
    }
  }
  for (std::size_t m = 0; m < meshes_.size(); ++m) {
    if (by_mesh[m].empty()) continue;
    std::vector<const graph::EncodedGraph*> graphs;
    graphs.reserve(by_mesh[m].size());
    for (const std::size_t q : by_mesh[m]) graphs.push_back(&encoder_(queries[q].slice));
    if (!Hardened()) {
      queries_.fetch_add(by_mesh[m].size(), std::memory_order_relaxed);
      const std::vector<double> latencies = service_.PredictMany(mesh_keys_[m], graphs);
      for (std::size_t i = 0; i < by_mesh[m].size(); ++i) {
        results[by_mesh[m][i]].latency_s = latencies[i];
      }
      continue;
    }
    // Hardened batch path: one PredictMany per bucket; a failed bucket (or
    // any individual non-finite answer) is re-priced query-by-query down the
    // scalar ladder. PredictOne counts those queries itself; only the
    // batch-satisfied remainder is counted here.
    std::vector<double> latencies;
    bool batch_ok = true;
    try {
      latencies = service_.PredictMany(mesh_keys_[m], graphs);
    } catch (...) {
      batch_ok = false;
    }
    for (std::size_t i = 0; i < by_mesh[m].size(); ++i) {
      const std::size_t q = by_mesh[m][i];
      if (batch_ok && std::isfinite(latencies[i])) {
        queries_.fetch_add(1, std::memory_order_relaxed);
        results[q] = {latencies[i], {}, false};
      } else {
        results[q] = PredictOne(m, queries[q].slice, queries[q].mesh);
      }
    }
  }
  return results;
}

parallel::StageLatencyOracle ServingOracle::AsOracle() const {
  return [this](ir::StageSlice slice, sim::Mesh mesh) { return (*this)(slice, mesh); };
}

parallel::StageLatencyBatchOracle ServingOracle::AsBatchOracle() const {
  return [this](std::span<const parallel::StageQuery> queries) {
    return PredictBatch(queries);
  };
}

OracleStats ServingOracle::Stats() const {
  return {queries_.load(std::memory_order_relaxed), degraded_.load(std::memory_order_relaxed)};
}

void ServingOracle::ResetStats() {
  queries_.store(0, std::memory_order_relaxed);
  degraded_.store(0, std::memory_order_relaxed);
}

std::vector<ModelKey> RegisterMeshPredictors(ModelRegistry& registry,
                                             const std::string& benchmark,
                                             const std::string& platform,
                                             const std::vector<sim::Mesh>& meshes,
                                             const core::TrainedMeshPredictors& trained) {
  if (meshes.size() != trained.per_mesh.size()) {
    throw std::invalid_argument("RegisterMeshPredictors: meshes/predictors size mismatch");
  }
  std::vector<ModelKey> keys;
  keys.reserve(meshes.size());
  for (std::size_t m = 0; m < meshes.size(); ++m) {
    ModelKey key{benchmark, platform, meshes[m], {}};
    registry.Register(key, trained.per_mesh[m]);
    keys.push_back(std::move(key));
  }
  return keys;
}

}  // namespace predtop::serve

#include "serve/oracle.h"

#include <limits>
#include <stdexcept>

namespace predtop::serve {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

ServingOracle::ServingOracle(PredictionService& service, std::vector<sim::Mesh> meshes,
                             std::vector<ModelKey> mesh_keys, StageEncoder encoder,
                             std::int32_t max_span)
    : service_(service),
      meshes_(std::move(meshes)),
      mesh_keys_(std::move(mesh_keys)),
      encoder_(std::move(encoder)),
      max_span_(max_span) {
  if (meshes_.size() != mesh_keys_.size()) {
    throw std::invalid_argument("ServingOracle: meshes/mesh_keys size mismatch");
  }
  if (!encoder_) throw std::invalid_argument("ServingOracle: null encoder");
}

parallel::StageLatencyResult ServingOracle::operator()(ir::StageSlice slice,
                                                       sim::Mesh mesh) const {
  if (max_span_ > 0 && slice.NumLayers() > max_span_) return {kInf, {}};
  for (std::size_t m = 0; m < meshes_.size(); ++m) {
    if (meshes_[m] == mesh) {
      return {service_.Predict(mesh_keys_[m], encoder_(slice)), {}};
    }
  }
  return {kInf, {}};
}

parallel::StageLatencyOracle ServingOracle::AsOracle() const {
  return [this](ir::StageSlice slice, sim::Mesh mesh) { return (*this)(slice, mesh); };
}

std::vector<ModelKey> RegisterMeshPredictors(ModelRegistry& registry,
                                             const std::string& benchmark,
                                             const std::string& platform,
                                             const std::vector<sim::Mesh>& meshes,
                                             const core::TrainedMeshPredictors& trained) {
  if (meshes.size() != trained.per_mesh.size()) {
    throw std::invalid_argument("RegisterMeshPredictors: meshes/predictors size mismatch");
  }
  std::vector<ModelKey> keys;
  keys.reserve(meshes.size());
  for (std::size_t m = 0; m < meshes.size(); ++m) {
    ModelKey key{benchmark, platform, meshes[m], {}};
    registry.Register(key, trained.per_mesh[m]);
    keys.push_back(std::move(key));
  }
  return keys;
}

}  // namespace predtop::serve

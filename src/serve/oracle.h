#pragma once
// Plan-search integration: adapt a PredictionService to the
// parallel::StageLatencyOracle interface, so the Alpa-style inter-op DP
// consults the serving layer instead of a raw predictor. The DP queries the
// same (stage, mesh) pair from many enumeration branches; the service's
// fingerprint cache turns those repeats into O(1) hits, which is where the
// optimization-cost reduction beyond plain prediction comes from.
//
// The oracle is also where the serving path degrades instead of failing
// (ServingOracleOptions): a query that throws (model missing or quarantined),
// returns a non-finite latency, or overruns its deadline walks the ladder
//   learned predictor -> bounded retries -> analytical FallbackOracle
// and the answer is tagged degraded so the chosen plan reports which stages
// were priced by the fallback. With default options the oracle is a plain
// pass-through — exceptions propagate and no deadline is enforced — so
// existing callers see bit-identical behavior.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/plan_search.h"
#include "parallel/inter_op.h"
#include "serve/fallback.h"
#include "serve/service.h"

namespace predtop::serve {

/// Resolves a stage slice to its encoded predictor input (memoization is the
/// resolver's business — core::PlanSearch::EncodedFor already caches).
using StageEncoder = std::function<const graph::EncodedGraph&(ir::StageSlice)>;

struct ServingOracleOptions {
  /// Per-query wall-clock budget for the scalar path, milliseconds (0 = no
  /// deadline). A forward that answers later than this is treated as failed
  /// and the query degrades. The batch path is not deadline-checked — it
  /// degrades on errors and non-finite answers only, since one PredictMany
  /// call prices hundreds of cells and has no per-cell wall clock.
  double deadline_ms = 0.0;
  /// Forward attempts before degrading. Retries make sense because the
  /// service never caches non-finite answers — a transient injected NaN can
  /// succeed on the next attempt.
  int max_attempts = 1;
  /// Bottom of the ladder; null = legacy behavior (exceptions propagate).
  std::shared_ptr<FallbackOracle> fallback;
};

struct OracleStats {
  std::uint64_t queries = 0;   // queries that resolved to a mesh model
  std::uint64_t degraded = 0;  // of those, answered below the top rung
};

class ServingOracle {
 public:
  /// `mesh_keys[i]` names the registered model serving mesh `meshes[i]`.
  /// Slices longer than `max_span` layers (0 = unbounded) and unknown meshes
  /// yield +inf, matching the direct-predictor oracle's pruning (that is
  /// search-space semantics, not degradation — those cells are never counted
  /// degraded).
  ServingOracle(PredictionService& service, std::vector<sim::Mesh> meshes,
                std::vector<ModelKey> mesh_keys, StageEncoder encoder,
                std::int32_t max_span = 0, ServingOracleOptions options = {});

  [[nodiscard]] parallel::StageLatencyResult operator()(ir::StageSlice slice,
                                                        sim::Mesh mesh) const;

  /// Answer a whole stage-latency table at once: queries are encoded on the
  /// calling thread (the encoder may memoize and need not be thread-safe),
  /// grouped per mesh model, and handed to PredictionService::PredictMany,
  /// which dedupes repeated stages and fans the distinct misses across the
  /// service pool. Unknown meshes / over-span slices yield +inf, exactly
  /// like operator(). When degradation is configured, a bucket whose batch
  /// call fails — and any individual non-finite answer — is re-priced
  /// query-by-query down the ladder.
  [[nodiscard]] std::vector<parallel::StageLatencyResult> PredictBatch(
      std::span<const parallel::StageQuery> queries) const;

  /// Wrap as the std::function the inter-op optimizer consumes. The oracle
  /// must outlive the returned function.
  [[nodiscard]] parallel::StageLatencyOracle AsOracle() const;

  /// Batched counterpart of AsOracle() for InterOpOptimizer::Optimize's
  /// batch overload. The oracle must outlive the returned function.
  [[nodiscard]] parallel::StageLatencyBatchOracle AsBatchOracle() const;

  [[nodiscard]] OracleStats Stats() const;
  void ResetStats();

 private:
  /// The degradation ladder for one mesh-resolved query.
  [[nodiscard]] parallel::StageLatencyResult PredictOne(std::size_t mesh_index,
                                                        ir::StageSlice slice,
                                                        sim::Mesh mesh) const;
  [[nodiscard]] bool Hardened() const noexcept {
    return options_.fallback != nullptr || options_.max_attempts > 1 ||
           options_.deadline_ms > 0.0;
  }

  PredictionService& service_;
  std::vector<sim::Mesh> meshes_;
  std::vector<ModelKey> mesh_keys_;
  StageEncoder encoder_;
  std::int32_t max_span_;
  ServingOracleOptions options_;
  mutable std::atomic<std::uint64_t> queries_{0};
  mutable std::atomic<std::uint64_t> degraded_{0};
};

/// Register one trained regressor per mesh of `search` under
/// (benchmark, platform) coordinates and return the per-mesh keys.
[[nodiscard]] std::vector<ModelKey> RegisterMeshPredictors(
    ModelRegistry& registry, const std::string& benchmark, const std::string& platform,
    const std::vector<sim::Mesh>& meshes, const core::TrainedMeshPredictors& trained);

}  // namespace predtop::serve

#pragma once
// Plan-search integration: adapt a PredictionService to the
// parallel::StageLatencyOracle interface, so the Alpa-style inter-op DP
// consults the serving layer instead of a raw predictor. The DP queries the
// same (stage, mesh) pair from many enumeration branches; the service's
// fingerprint cache turns those repeats into O(1) hits, which is where the
// optimization-cost reduction beyond plain prediction comes from.

#include <functional>
#include <vector>

#include "core/plan_search.h"
#include "parallel/inter_op.h"
#include "serve/service.h"

namespace predtop::serve {

/// Resolves a stage slice to its encoded predictor input (memoization is the
/// resolver's business — core::PlanSearch::EncodedFor already caches).
using StageEncoder = std::function<const graph::EncodedGraph&(ir::StageSlice)>;

class ServingOracle {
 public:
  /// `mesh_keys[i]` names the registered model serving mesh `meshes[i]`.
  /// Slices longer than `max_span` layers (0 = unbounded) and unknown meshes
  /// yield +inf, matching the direct-predictor oracle's pruning.
  ServingOracle(PredictionService& service, std::vector<sim::Mesh> meshes,
                std::vector<ModelKey> mesh_keys, StageEncoder encoder,
                std::int32_t max_span = 0);

  [[nodiscard]] parallel::StageLatencyResult operator()(ir::StageSlice slice,
                                                        sim::Mesh mesh) const;

  /// Answer a whole stage-latency table at once: queries are encoded on the
  /// calling thread (the encoder may memoize and need not be thread-safe),
  /// grouped per mesh model, and handed to PredictionService::PredictMany,
  /// which dedupes repeated stages and fans the distinct misses across the
  /// service pool. Unknown meshes / over-span slices yield +inf, exactly
  /// like operator().
  [[nodiscard]] std::vector<parallel::StageLatencyResult> PredictBatch(
      std::span<const parallel::StageQuery> queries) const;

  /// Wrap as the std::function the inter-op optimizer consumes. The oracle
  /// must outlive the returned function.
  [[nodiscard]] parallel::StageLatencyOracle AsOracle() const;

  /// Batched counterpart of AsOracle() for InterOpOptimizer::Optimize's
  /// batch overload. The oracle must outlive the returned function.
  [[nodiscard]] parallel::StageLatencyBatchOracle AsBatchOracle() const;

 private:
  PredictionService& service_;
  std::vector<sim::Mesh> meshes_;
  std::vector<ModelKey> mesh_keys_;
  StageEncoder encoder_;
  std::int32_t max_span_;
};

/// Register one trained regressor per mesh of `search` under
/// (benchmark, platform) coordinates and return the per-mesh keys.
[[nodiscard]] std::vector<ModelKey> RegisterMeshPredictors(
    ModelRegistry& registry, const std::string& benchmark, const std::string& platform,
    const std::vector<sim::Mesh>& meshes, const core::TrainedMeshPredictors& trained);

}  // namespace predtop::serve

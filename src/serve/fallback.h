#pragma once
// FallbackOracle: the bottom rung of the serving path's degradation ladder.
// When the learned predictor cannot answer — model missing from the registry,
// checkpoint quarantined, prediction deadline blown, or a forward returned a
// non-finite latency — the ServingOracle answers from this oracle instead: a
// Paleo-style analytical roofline estimate (core::AnalyticalEstimator) that
// needs no trained weights, only device specs. The estimate is worse than a
// trained predictor (that gap is the paper's whole point) but it is always
// finite and always available, which is what keeps a plan search completing
// with a valid plan instead of failing outright.

#include <functional>
#include <mutex>

#include "ir/program.h"
#include "parallel/inter_op.h"
#include "sim/cluster.h"

namespace predtop::serve {

/// Resolves a stage slice to its lowered stage program. Typically bound to
/// core::PlanSearch::ProgramFor, whose memoization is NOT thread-safe — the
/// oracle serializes all resolver calls behind a mutex for exactly that
/// reason.
using ProgramResolver = std::function<const ir::StageProgram&(ir::StageSlice)>;

class FallbackOracle {
 public:
  /// `assumed_efficiency` is the analytical model's flat percent-of-peak
  /// utilization factor (see core::AnalyticalEstimator).
  FallbackOracle(sim::DeviceSpec device, ProgramResolver programs,
                 double assumed_efficiency = 0.5);

  /// Analytical stage latency, minimized over the mesh's paper parallel
  /// configurations; the winning config rides along so a degraded plan stage
  /// still names a concrete (mesh, config) assignment. Always finite.
  /// Thread-safe (serialized internally).
  [[nodiscard]] parallel::StageLatencyResult Estimate(ir::StageSlice slice, sim::Mesh mesh);

 private:
  mutable std::mutex mutex_;
  sim::DeviceSpec device_;
  ProgramResolver programs_;
  double efficiency_;
};

}  // namespace predtop::serve

#include "serve/registry.h"

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <utility>

namespace predtop::serve {

namespace {

constexpr std::uint64_t Mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t HashString(const std::string& s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a 64
  for (const char c : s) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

std::uint64_t ModelKey::Hash() const noexcept {
  std::uint64_t h = Mix(HashString(benchmark));
  h = Mix(h ^ HashString(platform));
  h = Mix(h ^ static_cast<std::uint64_t>(mesh.num_nodes) << 32 ^
          static_cast<std::uint64_t>(mesh.gpus_per_node));
  h = Mix(h ^ static_cast<std::uint64_t>(config.dp) << 42 ^
          static_cast<std::uint64_t>(config.mp) << 21 ^ static_cast<std::uint64_t>(config.tp));
  return h;
}

std::string ModelKey::ToString() const {
  return benchmark + "/" + platform + "/mesh" + std::to_string(mesh.num_nodes) + "x" +
         std::to_string(mesh.gpus_per_node) + "/" + config.ToString();
}

void ModelRegistry::Register(const ModelKey& key,
                             std::shared_ptr<core::LatencyRegressor> model) {
  if (!model) throw std::invalid_argument("ModelRegistry::Register: null model");
  const std::scoped_lock lock(mutex_);
  const std::uint64_t h = key.Hash();
  if (const auto it = models_.find(h); it != models_.end() && !(it->second.key == key)) {
    throw std::runtime_error("ModelRegistry: hash collision between " + key.ToString() +
                             " and " + it->second.key.ToString());
  }
  models_[h] = Entry{key, std::move(model)};
}

void ModelRegistry::RegisterFromFile(const ModelKey& key, const std::string& path) {
  // Strong guarantee by construction: Load() fully materializes the model (or
  // throws) before Register() touches the map, and Register() itself only
  // mutates on its final assignment.
  Register(key, std::make_shared<core::LatencyRegressor>(core::LatencyRegressor::Load(path)));
}

fault::Status ModelRegistry::TryRegisterFromFile(const ModelKey& key, const std::string& path,
                                                 const RetryPolicy& retry) {
  {
    const std::scoped_lock lock(mutex_);
    if (const auto it = quarantine_.find(path); it != quarantine_.end()) {
      return fault::Status(fault::StatusCode::kUnavailable,
                           "ModelRegistry: " + path + " is quarantined after: " +
                               it->second.ToString());
    }
  }
  const int attempts = std::max(1, retry.max_attempts);
  std::chrono::milliseconds backoff = retry.initial_backoff;
  fault::Status last;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(backoff);
      backoff = std::min(retry.max_backoff,
                         std::chrono::milliseconds(static_cast<long long>(
                             static_cast<double>(backoff.count()) * retry.multiplier)));
    }
    try {
      RegisterFromFile(key, path);
      return fault::Status::Ok();
    } catch (...) {
      last = fault::StatusFromCurrentException();
    }
  }
  const std::scoped_lock lock(mutex_);
  quarantine_.emplace(path, last);
  return last;
}

std::vector<std::pair<std::string, fault::Status>> ModelRegistry::Quarantined() const {
  const std::scoped_lock lock(mutex_);
  std::vector<std::pair<std::string, fault::Status>> out;
  out.reserve(quarantine_.size());
  for (const auto& [path, status] : quarantine_) out.emplace_back(path, status);
  return out;
}

void ModelRegistry::ClearQuarantine() {
  const std::scoped_lock lock(mutex_);
  quarantine_.clear();
}

void ModelRegistry::SaveToFile(const ModelKey& key, const std::string& path) const {
  const auto model = Find(key);
  if (!model) {
    throw std::runtime_error("ModelRegistry::SaveToFile: no model for " + key.ToString());
  }
  model->Save(path);
}

std::shared_ptr<core::LatencyRegressor> ModelRegistry::Find(const ModelKey& key) const {
  const std::scoped_lock lock(mutex_);
  const auto it = models_.find(key.Hash());
  if (it == models_.end() || !(it->second.key == key)) return nullptr;
  return it->second.model;
}

std::vector<ModelKey> ModelRegistry::Keys() const {
  const std::scoped_lock lock(mutex_);
  std::vector<ModelKey> keys;
  keys.reserve(models_.size());
  for (const auto& [hash, entry] : models_) keys.push_back(entry.key);
  return keys;
}

std::size_t ModelRegistry::Size() const {
  const std::scoped_lock lock(mutex_);
  return models_.size();
}

}  // namespace predtop::serve

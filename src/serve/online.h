#pragma once
// OnlineTrainer: continual fine-tuning for a served latency predictor.
//
// PredTOP trains predictors offline on profiled stages; in a long-lived
// serving process the workload drifts (new stage shapes, changed efficiency
// curves), so this component periodically (a) simulates a fresh batch of
// (stage, mesh, latency) samples through a caller-supplied SampleSource, (b)
// measures the served model's MRE on them against a stored baseline to
// detect drift, (c) fine-tunes a CLONE of the served model on the fresh
// samples with the data-parallel trainer, and (d) atomically writes a new
// `.ptck` checkpoint and hot-swaps it into the ModelRegistry.
//
// The swap path deliberately goes through the checkpoint file
// (Save -> TryRegisterFromFile) rather than registering the in-memory clone:
// it exercises the exact durability machinery production reloads use (atomic
// temp+rename write, CRC-verified load, retry/quarantine on bad files), and
// the registry's shared_ptr replacement means in-flight predictions against
// the old model finish safely while new queries see the new version.
// Loading bumps the global parameter epoch, which invalidates every cached
// packed-weight block, so the tape-free fast path can never serve stale
// weights. Serving-side *result* caches (PredictionService's LRU) are the
// caller's to clear — wire OnSwap to PredictionService::ClearCache.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "core/dataset.h"
#include "nn/trainer.h"
#include "serve/registry.h"
#include "util/rng.h"

namespace predtop::serve {

/// Produces `count` freshly simulated training samples (stage DAG + measured
/// latency), drawing any randomness from `rng` so rounds are reproducible.
/// Called on the trainer thread; must be safe to run concurrently with
/// serving reads of the registry.
using SampleSource = std::function<core::StageDataset(std::size_t count, util::Rng& rng)>;

struct OnlineTrainerOptions {
  /// Fresh samples simulated per round.
  std::size_t samples_per_round = 32;
  /// Tail fraction of each round's samples held out for validation /
  /// drift measurement (at least one sample stays in training).
  double val_fraction = 0.25;
  /// Fine-tune configuration (typically few epochs, threads > 1 for the
  /// data-parallel path).
  nn::TrainConfig train;
  /// Drift trips when fresh-sample MRE exceeds baseline * this factor.
  double drift_threshold = 1.25;
  /// Fine-tune and swap every round even without drift (refresh drills).
  bool refresh_always = false;
  /// Where new checkpoint versions are written (atomic temp + rename).
  std::string checkpoint_path;
  /// Background-loop cadence between rounds.
  std::chrono::milliseconds poll_interval{50};
  std::uint64_t seed = 0x0e11e5eedULL;
};

struct OnlineTrainerStats {
  std::uint64_t rounds = 0;
  std::uint64_t drift_detected = 0;
  std::uint64_t refreshes = 0;     // successful hot swaps
  std::uint64_t failed_swaps = 0;  // checkpoint write/load/register failures
  /// Non-finite optimizer steps skipped across all fine-tune runs.
  std::int64_t skipped_steps = 0;
  double baseline_mre = 0.0;   // MRE (%) the drift test compares against
  double last_fresh_mre = 0.0; // served model's MRE (%) on the latest round
};

class OnlineTrainer {
 public:
  OnlineTrainer(std::shared_ptr<ModelRegistry> registry, ModelKey key,
                SampleSource source, OnlineTrainerOptions options);
  ~OnlineTrainer();

  OnlineTrainer(const OnlineTrainer&) = delete;
  OnlineTrainer& operator=(const OnlineTrainer&) = delete;

  /// One synchronous round: simulate, measure drift, maybe fine-tune +
  /// hot-swap. Returns true when a new model version was swapped in. The
  /// background loop runs exactly this.
  bool RunRound();

  /// Start/stop the background fine-tuning thread (idempotent).
  void Start();
  void Stop();

  /// Hook invoked on the trainer thread immediately after each successful
  /// swap — serving layers clear stale result caches here.
  void OnSwap(std::function<void()> hook);

  [[nodiscard]] OnlineTrainerStats Stats() const;

 private:
  void Loop();

  std::shared_ptr<ModelRegistry> registry_;
  ModelKey key_;
  SampleSource source_;
  OnlineTrainerOptions options_;

  mutable std::mutex mutex_;  // guards rng_, stats_, on_swap_, baseline state
  util::Rng rng_;
  OnlineTrainerStats stats_;
  std::function<void()> on_swap_;
  bool has_baseline_ = false;

  std::mutex loop_mutex_;
  std::condition_variable loop_cv_;
  bool stop_requested_ = false;
  std::thread thread_;
};

}  // namespace predtop::serve

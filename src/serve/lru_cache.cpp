#include "serve/lru_cache.h"

#include <algorithm>
#include <bit>

namespace predtop::serve {

ShardedLruCache::ShardedLruCache(std::size_t capacity, std::size_t shards) {
  const std::size_t shard_count = std::bit_ceil(std::max<std::size_t>(1, shards));
  shard_mask_ = shard_count - 1;
  // Split the budget without inflating it: the first (capacity % shards)
  // shards take the remainder, and every shard keeps at least one entry.
  // Rounding every shard up used to make Capacity() over-report by up to
  // shard_count - 1 entries versus what eviction actually allowed.
  const std::size_t base = capacity / shard_count;
  const std::size_t remainder = capacity % shard_count;
  capacity_ = 0;
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->capacity = std::max<std::size_t>(1, base + (i < remainder ? 1 : 0));
    capacity_ += shard->capacity;
    shards_.push_back(std::move(shard));
  }
}

std::optional<double> ShardedLruCache::Get(std::uint64_t key) {
  Shard& shard = ShardFor(key);
  const std::scoped_lock lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return std::nullopt;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);  // touch
  return it->second->value;
}

void ShardedLruCache::Put(std::uint64_t key, double value) {
  Shard& shard = ShardFor(key);
  const std::scoped_lock lock(shard.mutex);
  if (const auto it = shard.index.find(key); it != shard.index.end()) {
    it->second->value = value;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front({key, value});
  shard.index.emplace(key, shard.lru.begin());
  if (shard.index.size() > shard.capacity) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

void ShardedLruCache::Clear() {
  for (auto& shard : shards_) {
    const std::scoped_lock lock(shard->mutex);
    shard->lru.clear();
    shard->index.clear();
  }
}

void ShardedLruCache::ResetStats() {
  for (auto& shard : shards_) {
    const std::scoped_lock lock(shard->mutex);
    shard->hits = shard->misses = shard->evictions = 0;
  }
}

CacheStats ShardedLruCache::Stats() const {
  CacheStats stats;
  for (const auto& shard : shards_) {
    const std::scoped_lock lock(shard->mutex);
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.evictions += shard->evictions;
    stats.entries += shard->index.size();
  }
  return stats;
}

}  // namespace predtop::serve

#pragma once
// ModelRegistry: the serving-side catalog of trained stage predictors.
// PredTOP trains one predictor per (benchmark, platform, mesh, parallel
// config) scenario; the registry keys each checkpointed LatencyRegressor by
// that tuple so a plan search (or any latency query stream) can look up the
// right model without knowing how or when it was trained. Thread-safe;
// models register from memory (just trained) or from `.ptck` checkpoint
// files (trained in an earlier process).

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/regressor.h"
#include "fault/status.h"
#include "parallel/config.h"
#include "sim/cluster.h"

namespace predtop::serve {

/// Identity of one served predictor (paper Tbls. II/III scenario coordinates).
struct ModelKey {
  std::string benchmark;  // e.g. "gpt3"
  std::string platform;   // e.g. "platform2"
  sim::Mesh mesh;
  parallel::ParallelConfig config;  // {} when the model predicts best-config latency

  bool operator==(const ModelKey&) const = default;

  /// Stable 64-bit hash (mixed into cache keys alongside DAG fingerprints).
  [[nodiscard]] std::uint64_t Hash() const noexcept;
  [[nodiscard]] std::string ToString() const;
};

class ModelRegistry {
 public:
  ModelRegistry() = default;
  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Bounded-retry policy for checkpoint reloads: `max_attempts` total tries
  /// with exponential backoff between them (initial_backoff doubling via
  /// `multiplier`, capped at `max_backoff`). Defaults keep drill/test wall
  /// time negligible; production deployments raise the backoff.
  struct RetryPolicy {
    int max_attempts = 3;
    std::chrono::milliseconds initial_backoff{1};
    double multiplier = 2.0;
    std::chrono::milliseconds max_backoff{100};
  };

  /// Register a trained (or freshly loaded) regressor; replaces any previous
  /// model under the same key.
  void Register(const ModelKey& key, std::shared_ptr<core::LatencyRegressor> model);

  /// Load a `.ptck` checkpoint from disk and register it. Strong exception
  /// guarantee: a load that fails mid-read (truncation, corruption, IO
  /// error) throws and leaves the registry untouched — a previous model
  /// under `key` stays registered and findable.
  void RegisterFromFile(const ModelKey& key, const std::string& path);

  /// Recoverable-load variant: retries transient failures per `retry`
  /// (exponential backoff) and returns a fault::Status instead of throwing.
  /// After the attempts are exhausted the path is *quarantined* — further
  /// calls for it return kUnavailable immediately (no disk IO, no retries)
  /// until ClearQuarantine(). Same strong guarantee as RegisterFromFile: on
  /// any non-OK status the previously registered model (if any) remains.
  [[nodiscard]] fault::Status TryRegisterFromFile(const ModelKey& key,
                                                  const std::string& path,
                                                  const RetryPolicy& retry);
  [[nodiscard]] fault::Status TryRegisterFromFile(const ModelKey& key,
                                                  const std::string& path) {
    return TryRegisterFromFile(key, path, RetryPolicy{});
  }

  /// Paths currently quarantined by TryRegisterFromFile, with the failure
  /// that quarantined them.
  [[nodiscard]] std::vector<std::pair<std::string, fault::Status>> Quarantined() const;
  void ClearQuarantine();

  /// Checkpoint a registered model to disk (throws if the key is unknown).
  void SaveToFile(const ModelKey& key, const std::string& path) const;

  /// nullptr when no model is registered under `key`.
  [[nodiscard]] std::shared_ptr<core::LatencyRegressor> Find(const ModelKey& key) const;

  [[nodiscard]] std::vector<ModelKey> Keys() const;
  [[nodiscard]] std::size_t Size() const;

 private:
  mutable std::mutex mutex_;
  struct Entry {
    ModelKey key;
    std::shared_ptr<core::LatencyRegressor> model;
  };
  std::unordered_map<std::uint64_t, Entry> models_;  // key.Hash() -> entry
  std::unordered_map<std::string, fault::Status> quarantine_;  // path -> failure
};

}  // namespace predtop::serve

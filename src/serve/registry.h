#pragma once
// ModelRegistry: the serving-side catalog of trained stage predictors.
// PredTOP trains one predictor per (benchmark, platform, mesh, parallel
// config) scenario; the registry keys each checkpointed LatencyRegressor by
// that tuple so a plan search (or any latency query stream) can look up the
// right model without knowing how or when it was trained. Thread-safe;
// models register from memory (just trained) or from `.ptck` checkpoint
// files (trained in an earlier process).

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/regressor.h"
#include "parallel/config.h"
#include "sim/cluster.h"

namespace predtop::serve {

/// Identity of one served predictor (paper Tbls. II/III scenario coordinates).
struct ModelKey {
  std::string benchmark;  // e.g. "gpt3"
  std::string platform;   // e.g. "platform2"
  sim::Mesh mesh;
  parallel::ParallelConfig config;  // {} when the model predicts best-config latency

  bool operator==(const ModelKey&) const = default;

  /// Stable 64-bit hash (mixed into cache keys alongside DAG fingerprints).
  [[nodiscard]] std::uint64_t Hash() const noexcept;
  [[nodiscard]] std::string ToString() const;
};

class ModelRegistry {
 public:
  ModelRegistry() = default;
  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Register a trained (or freshly loaded) regressor; replaces any previous
  /// model under the same key.
  void Register(const ModelKey& key, std::shared_ptr<core::LatencyRegressor> model);

  /// Load a `.ptck` checkpoint from disk and register it.
  void RegisterFromFile(const ModelKey& key, const std::string& path);

  /// Checkpoint a registered model to disk (throws if the key is unknown).
  void SaveToFile(const ModelKey& key, const std::string& path) const;

  /// nullptr when no model is registered under `key`.
  [[nodiscard]] std::shared_ptr<core::LatencyRegressor> Find(const ModelKey& key) const;

  [[nodiscard]] std::vector<ModelKey> Keys() const;
  [[nodiscard]] std::size_t Size() const;

 private:
  mutable std::mutex mutex_;
  struct Entry {
    ModelKey key;
    std::shared_ptr<core::LatencyRegressor> model;
  };
  std::unordered_map<std::uint64_t, Entry> models_;  // key.Hash() -> entry
};

}  // namespace predtop::serve

#pragma once
// PredictionService: the in-process serving layer between a plan search (or
// any other latency-query stream) and the trained predictors.
//
// Query path, fastest first:
//   1. sharded LRU cache keyed by Mix(model-key hash, DAG fingerprint) —
//      identical stages queried from different plan-search branches hit here
//      without touching a model;
//   2. in-flight coalescing — concurrent requests for the same (model,
//      stage) join one computation instead of duplicating the forward pass
//      (micro-batching of an identical-query burst into a single forward);
//   3. a predictor forward pass — by default the tape-free fast path
//      (LatencyRegressor::PredictSeconds → StagePredictor::InferScalar),
//      which allocates activations from a per-thread tensor arena and
//      multiplies against per-layer cached packed weights. Safe to run
//      concurrently across requests: each worker thread owns its arena
//      (nn::ThreadLocalInferenceContext), the packed-weight caches are
//      immutable snapshots swapped under a per-layer mutex, and the DAG
//      Transformer's fingerprint-keyed positional-encoding cache takes a
//      short per-model lock only around map lookup/insert (the encoding
//      itself is computed outside the lock).
//
// PredictMany additionally batches a caller-provided query set: duplicates
// inside the batch collapse to one forward each, and the distinct misses fan
// out across the service's ThreadPool — one inference arena per worker falls
// out of the thread_local context, no per-request allocation churn. Failures
// propagate to every waiter (never swallowed) via the pool's exception
// plumbing. The inter-op plan search feeds its whole stage-latency table
// through this path via serve::ServingOracle::AsBatchOracle — one
// PredictMany call per mesh model instead of one Predict per DP table cell.

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/encode.h"
#include "serve/lru_cache.h"
#include "serve/registry.h"
#include "util/thread_pool.h"

namespace predtop::serve {

struct ServiceOptions {
  std::size_t cache_capacity = 1 << 16;
  std::size_t cache_shards = 8;
  /// Worker threads for PredictMany fan-out (0 = hardware_concurrency).
  std::size_t threads = 1;
  /// Shed headroom for deadline-carrying queries: a forward is skipped (and
  /// the query fails typed kDeadlineExceeded) unless at least this many
  /// microseconds remain before the deadline — a forward that cannot finish
  /// in time is wasted CPU that an overloaded server cannot spare.
  std::uint64_t deadline_margin_us = 0;
};

struct ServiceStats {
  std::uint64_t queries = 0;
  std::uint64_t forwards = 0;   // actual model forward passes
  std::uint64_t coalesced = 0;  // requests that joined an in-flight forward
  std::uint64_t batches = 0;    // PredictMany calls
  std::uint64_t batched_queries = 0;
  std::uint64_t expired = 0;    // queries shed before the forward (deadline)
  std::uint64_t late = 0;       // forwards that finished past their deadline
  CacheStats cache;
  // Compiled-path counters, snapshotted from the process-wide compile layer
  // (they are not per-service and stay monotonic across ResetStats): program
  // cache outcomes, queries run through the stacked / interleaved batch
  // executors, and autotuner timing sweeps.
  std::uint64_t program_cache_hits = 0;
  std::uint64_t program_cache_misses = 0;
  std::uint64_t batched_forwards = 0;
  std::uint64_t interleaved_forwards = 0;
  std::uint64_t autotune_sweeps = 0;
};

class PredictionService {
 public:
  PredictionService(std::shared_ptr<ModelRegistry> registry, ServiceOptions options = {});

  PredictionService(const PredictionService&) = delete;
  PredictionService& operator=(const PredictionService&) = delete;

  /// Predict the stage latency (seconds) of one encoded stage DAG under the
  /// model registered for `key`. Throws std::runtime_error when no model is
  /// registered. `deadline_us` is an absolute steady-clock deadline
  /// (util::SteadyNowUs base; 0 = none): an already-expired query is shed
  /// with fault::FaultError(kDeadlineExceeded) *before* the forward runs —
  /// cache hits still serve (they are effectively free).
  [[nodiscard]] double Predict(const ModelKey& key, const graph::EncodedGraph& g,
                               std::uint64_t deadline_us = 0);

  /// Micro-batched query: duplicate stages inside the batch are predicted
  /// once, distinct misses run concurrently on the service pool. Returns
  /// latencies parallel to `graphs`. A nonzero `deadline_us` sheds every
  /// not-yet-forwarded query once the deadline (minus the configured margin)
  /// passes; the batch fails as a whole with kDeadlineExceeded.
  [[nodiscard]] std::vector<double> PredictMany(
      const ModelKey& key, std::span<const graph::EncodedGraph* const> graphs,
      std::uint64_t deadline_us = 0);

  /// Cache key of one (model, stage) query — exposed for tests and for
  /// callers that precompute fingerprints.
  [[nodiscard]] static std::uint64_t CacheKey(const ModelKey& key,
                                              const graph::EncodedGraph& g);

  [[nodiscard]] ServiceStats Stats() const;
  void ResetStats();
  /// Drop all cached predictions (cold-start measurements).
  void ClearCache();

  [[nodiscard]] ModelRegistry& Registry() noexcept { return *registry_; }
  [[nodiscard]] util::ThreadPool& Pool() noexcept { return pool_; }

 private:
  [[nodiscard]] double PredictWithKey(const ModelKey& key, const graph::EncodedGraph& g,
                                      std::uint64_t cache_key,
                                      std::uint64_t deadline_us = 0);

  /// PredictMany's batch-compiled miss path: probe/shed/claim each distinct
  /// query, then run ALL owned misses through one LatencyRegressor::
  /// PredictBatch call on the calling thread (one plan buffer per worker for
  /// the whole call), fulfilling every promise with per-query cache-put,
  /// fault-injection, and late accounting identical to PredictWithKey.
  void PredictDistinctBatched(const ModelKey& key,
                              std::span<const graph::EncodedGraph* const> graphs,
                              const std::vector<std::uint64_t>& cache_keys,
                              const std::vector<std::size_t>& distinct,
                              std::vector<double>& distinct_values,
                              std::uint64_t deadline_us);

  std::shared_ptr<ModelRegistry> registry_;
  ShardedLruCache cache_;
  util::ThreadPool pool_;
  std::uint64_t deadline_margin_us_ = 0;

  std::mutex inflight_mutex_;
  std::unordered_map<std::uint64_t, std::shared_future<double>> inflight_;

  std::atomic<std::uint64_t> queries_{0};
  std::atomic<std::uint64_t> forwards_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batched_queries_{0};
  std::atomic<std::uint64_t> expired_{0};
  std::atomic<std::uint64_t> late_{0};
};

}  // namespace predtop::serve

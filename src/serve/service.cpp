#include "serve/service.h"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "compile/batch.h"
#include "compile/cache.h"
#include "compile/tune.h"
#include "fault/injector.h"
#include "fault/status.h"
#include "graph/fingerprint.h"
#include "util/timer.h"

namespace predtop::serve {

namespace {

constexpr std::uint64_t Mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

PredictionService::PredictionService(std::shared_ptr<ModelRegistry> registry,
                                     ServiceOptions options)
    : registry_(std::move(registry)),
      cache_(options.cache_capacity, options.cache_shards),
      pool_(options.threads),
      deadline_margin_us_(options.deadline_margin_us) {
  if (!registry_) throw std::invalid_argument("PredictionService: null registry");
}

std::uint64_t PredictionService::CacheKey(const ModelKey& key, const graph::EncodedGraph& g) {
  return Mix(key.Hash() ^ graph::EncodedGraphFingerprint(g));
}

double PredictionService::Predict(const ModelKey& key, const graph::EncodedGraph& g,
                                  std::uint64_t deadline_us) {
  return PredictWithKey(key, g, CacheKey(key, g), deadline_us);
}

double PredictionService::PredictWithKey(const ModelKey& key, const graph::EncodedGraph& g,
                                         std::uint64_t cache_key,
                                         std::uint64_t deadline_us) {
  queries_.fetch_add(1, std::memory_order_relaxed);
  if (const auto hit = cache_.Get(cache_key)) return *hit;

  // Shed before any real work: an expired query (or one that cannot finish
  // inside the margin) must not burn a forward pass the caller has already
  // abandoned. Cache hits above still serve — they are effectively free.
  if (util::DeadlineExpired(deadline_us, deadline_margin_us_)) {
    expired_.fetch_add(1, std::memory_order_relaxed);
    throw fault::FaultError(fault::StatusCode::kDeadlineExceeded,
                            "query shed: deadline already passed before the forward");
  }

  // Join an in-flight computation of the same query, or become its owner.
  std::promise<double> promise;
  std::shared_future<double> joined;
  {
    const std::scoped_lock lock(inflight_mutex_);
    if (const auto it = inflight_.find(cache_key); it != inflight_.end()) {
      joined = it->second;
      coalesced_.fetch_add(1, std::memory_order_relaxed);
    } else {
      inflight_.emplace(cache_key, promise.get_future().share());
    }
  }
  // Wait outside the lock so unrelated queries keep flowing; get() rethrows
  // the owner's exception, if any.
  if (joined.valid()) return joined.get();

  double value = 0.0;
  try {
    // Double-checked probe: a finisher puts into the cache *before* erasing
    // its in-flight entry, so a requester racing that gap can miss the cache
    // and then find no computation to join. Re-probing after winning
    // ownership turns that race into a hit instead of a duplicate forward.
    if (const auto cached = cache_.Get(cache_key)) {
      value = *cached;
    } else {
      const auto model = registry_->Find(key);
      if (!model) {
        throw std::runtime_error("PredictionService: no model registered for " +
                                 key.ToString());
      }
      value = model->PredictSeconds(g);
      forwards_.fetch_add(1, std::memory_order_relaxed);
      if (auto& injector = fault::Injector::Global(); injector.Enabled()) {
        if (const double delay_ms = injector.FireDelayMs(fault::sites::kPredictDelayMs,
                                                         fault::sites::kPredictDelayP);
            delay_ms > 0.0) {
          fault::SleepForMs(delay_ms);
        }
        if (injector.ShouldInject(fault::sites::kPredictNan)) {
          value = std::numeric_limits<double>::quiet_NaN();
        }
      }
      // The overload drill's core invariant is "zero requests computed after
      // their deadline" — count any forward that finished late (the shed
      // margin above is sized to make this impossible; the counter proves it).
      if (deadline_us != 0 && util::SteadyNowUs() > deadline_us) {
        late_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  } catch (...) {
    promise.set_exception(std::current_exception());
    const std::scoped_lock lock(inflight_mutex_);
    inflight_.erase(cache_key);
    throw;
  }
  // Never cache a non-finite answer: a NaN/inf forward (injected or from a
  // corrupted model) must stay retryable, not become a sticky cache hit that
  // poisons every later query of the same stage.
  if (std::isfinite(value)) cache_.Put(cache_key, value);
  promise.set_value(value);
  {
    const std::scoped_lock lock(inflight_mutex_);
    inflight_.erase(cache_key);
  }
  return value;
}

std::vector<double> PredictionService::PredictMany(
    const ModelKey& key, std::span<const graph::EncodedGraph* const> graphs,
    std::uint64_t deadline_us) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_queries_.fetch_add(graphs.size(), std::memory_order_relaxed);

  // Micro-batch: collapse duplicate stages to one computation each.
  std::vector<std::uint64_t> cache_keys(graphs.size());
  std::unordered_map<std::uint64_t, std::size_t> first_of;  // cache key -> distinct slot
  std::vector<std::size_t> distinct;                        // positions of first occurrences
  first_of.reserve(graphs.size());
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    cache_keys[i] = CacheKey(key, *graphs[i]);
    if (first_of.emplace(cache_keys[i], distinct.size()).second) distinct.push_back(i);
  }

  std::vector<double> distinct_values(distinct.size(), 0.0);
  if (compile::BatchCompileEnabled() && compile::CompileEnabled() &&
      core::LatencyRegressor::FastInferActive()) {
    // Batch-compiled path: all owned misses run through ONE PredictBatch
    // call, which groups by shape class and amortizes program/snapshot/plan
    // resolution per group (and one plan buffer serves the whole call).
    PredictDistinctBatched(key, graphs, cache_keys, distinct, distinct_values,
                           deadline_us);
  } else {
    // Legacy path (PREDTOP_BATCH_COMPILE=0 or no compiled fast path):
    // distinct misses fan out across the service pool, one sequential
    // forward each.
    pool_.ParallelFor(distinct.size(), [&](std::size_t d) {
      const std::size_t i = distinct[d];
      distinct_values[d] = PredictWithKey(key, *graphs[i], cache_keys[i], deadline_us);
    });
  }

  std::vector<double> results(graphs.size(), 0.0);
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    results[i] = distinct_values[first_of.at(cache_keys[i])];
  }
  return results;
}

void PredictionService::PredictDistinctBatched(
    const ModelKey& key, std::span<const graph::EncodedGraph* const> graphs,
    const std::vector<std::uint64_t>& cache_keys, const std::vector<std::size_t>& distinct,
    std::vector<double>& distinct_values, std::uint64_t deadline_us) {
  struct OwnedMiss {
    std::size_t d = 0;  // distinct slot
    std::size_t i = 0;  // position in graphs
    std::promise<double> promise;
  };
  std::vector<OwnedMiss> owned;
  std::vector<std::pair<std::size_t, std::shared_future<double>>> joins;
  // Promises fulfilled so far; on exception the rest fail with it so no
  // coalesced waiter hangs.
  std::size_t done = 0;

  try {
    for (std::size_t d = 0; d < distinct.size(); ++d) {
      const std::size_t i = distinct[d];
      const std::uint64_t ck = cache_keys[i];
      queries_.fetch_add(1, std::memory_order_relaxed);
      if (const auto hit = cache_.Get(ck)) {
        distinct_values[d] = *hit;
        continue;
      }
      if (util::DeadlineExpired(deadline_us, deadline_margin_us_)) {
        expired_.fetch_add(1, std::memory_order_relaxed);
        throw fault::FaultError(fault::StatusCode::kDeadlineExceeded,
                                "query shed: deadline already passed before the forward");
      }
      std::promise<double> promise;
      std::shared_future<double> joined;
      {
        const std::scoped_lock lock(inflight_mutex_);
        if (const auto it = inflight_.find(ck); it != inflight_.end()) {
          joined = it->second;
          coalesced_.fetch_add(1, std::memory_order_relaxed);
        } else {
          inflight_.emplace(ck, promise.get_future().share());
        }
      }
      if (joined.valid()) {
        joins.emplace_back(d, std::move(joined));
        continue;
      }
      // Ownership won. Double-checked probe, same reasoning as PredictWithKey:
      // a finisher puts before erasing its in-flight entry.
      if (const auto cached = cache_.Get(ck)) {
        distinct_values[d] = *cached;
        promise.set_value(*cached);
        const std::scoped_lock lock(inflight_mutex_);
        inflight_.erase(ck);
        continue;
      }
      owned.push_back({d, i, std::move(promise)});
    }

    if (!owned.empty()) {
      // Shed the whole remaining miss set if the deadline passed during the
      // scan — the batched forward below is exactly the work shedding saves.
      if (util::DeadlineExpired(deadline_us, deadline_margin_us_)) {
        expired_.fetch_add(owned.size(), std::memory_order_relaxed);
        throw fault::FaultError(fault::StatusCode::kDeadlineExceeded,
                                "batch shed: deadline passed before the batched forward");
      }
      const auto model = registry_->Find(key);
      if (!model) {
        throw std::runtime_error("PredictionService: no model registered for " +
                                 key.ToString());
      }
      std::vector<const graph::EncodedGraph*> miss_graphs;
      miss_graphs.reserve(owned.size());
      for (const OwnedMiss& o : owned) miss_graphs.push_back(graphs[o.i]);
      const std::vector<double> values =
          model->PredictBatch(std::span<const graph::EncodedGraph* const>(miss_graphs));
      forwards_.fetch_add(owned.size(), std::memory_order_relaxed);

      auto& injector = fault::Injector::Global();
      for (; done < owned.size(); ++done) {
        OwnedMiss& o = owned[done];
        double value = values[done];
        if (injector.Enabled()) {
          if (const double delay_ms = injector.FireDelayMs(fault::sites::kPredictDelayMs,
                                                           fault::sites::kPredictDelayP);
              delay_ms > 0.0) {
            fault::SleepForMs(delay_ms);
          }
          if (injector.ShouldInject(fault::sites::kPredictNan)) {
            value = std::numeric_limits<double>::quiet_NaN();
          }
        }
        if (deadline_us != 0 && util::SteadyNowUs() > deadline_us) {
          late_.fetch_add(1, std::memory_order_relaxed);
        }
        // Same finite-only rule as PredictWithKey: non-finite answers stay
        // retryable instead of becoming sticky cache hits.
        if (std::isfinite(value)) cache_.Put(cache_keys[o.i], value);
        distinct_values[o.d] = value;
        o.promise.set_value(value);
        const std::scoped_lock lock(inflight_mutex_);
        inflight_.erase(cache_keys[o.i]);
      }
    }
  } catch (...) {
    const auto ex = std::current_exception();
    for (std::size_t j = done; j < owned.size(); ++j) {
      owned[j].promise.set_exception(ex);
      const std::scoped_lock lock(inflight_mutex_);
      inflight_.erase(cache_keys[owned[j].i]);
    }
    throw;
  }

  // Wait on coalesced computations last (outside any lock); get() rethrows
  // the owner's exception, matching the sequential path.
  for (auto& [d, fut] : joins) distinct_values[d] = fut.get();
}

ServiceStats PredictionService::Stats() const {
  ServiceStats stats;
  stats.queries = queries_.load(std::memory_order_relaxed);
  stats.forwards = forwards_.load(std::memory_order_relaxed);
  stats.coalesced = coalesced_.load(std::memory_order_relaxed);
  stats.batches = batches_.load(std::memory_order_relaxed);
  stats.batched_queries = batched_queries_.load(std::memory_order_relaxed);
  stats.expired = expired_.load(std::memory_order_relaxed);
  stats.late = late_.load(std::memory_order_relaxed);
  stats.cache = cache_.Stats();
  auto& programs = compile::ProgramCache::Global();
  stats.program_cache_hits = programs.Hits();
  stats.program_cache_misses = programs.Misses();
  stats.batched_forwards = compile::BatchedForwards();
  stats.interleaved_forwards = compile::InterleavedForwards();
  stats.autotune_sweeps = compile::AutotuneSweeps();
  return stats;
}

void PredictionService::ResetStats() {
  queries_ = forwards_ = coalesced_ = batches_ = batched_queries_ = 0;
  expired_ = late_ = 0;
  cache_.ResetStats();
}

void PredictionService::ClearCache() { cache_.Clear(); }

}  // namespace predtop::serve

#include "compile/cache.h"

#include <atomic>
#include <list>
#include <map>
#include <mutex>
#include <tuple>

#include "util/env.h"

namespace predtop::compile {

namespace {

std::atomic<bool>& CompileFlag() noexcept {
  static std::atomic<bool> enabled{util::EnvInt("PREDTOP_COMPILE", 1) != 0};
  return enabled;
}

}  // namespace

bool CompileEnabled() noexcept { return CompileFlag().load(std::memory_order_relaxed); }

void SetCompileEnabled(bool enabled) noexcept {
  CompileFlag().store(enabled, std::memory_order_relaxed);
}

std::uint64_t NextOwnerId() noexcept {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

struct ProgramCache::Impl {
  using Key = std::tuple<std::uint64_t, std::int64_t, std::int64_t>;
  struct Entry {
    Key key;
    std::shared_ptr<InferProgram> program;
  };

  mutable std::mutex mutex;
  std::list<Entry> lru;  // front = most recent
  std::map<Key, std::list<Entry>::iterator> index;
  std::size_t capacity = 128;
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
};

ProgramCache::ProgramCache() : impl_(std::make_unique<Impl>()) {
  const long cap = util::EnvInt("PREDTOP_COMPILE_CACHE", 128);
  impl_->capacity = cap > 0 ? static_cast<std::size_t>(cap) : 1;
}

ProgramCache& ProgramCache::Global() {
  // Deliberately immortal. Owners can be function-local statics (a test
  // fixture's trained predictors, a long-lived service singleton) whose
  // destructors run after this translation unit's exit-time destructors;
  // ~StagePredictor must still find a live cache to EvictOwner from, so the
  // cache is never destroyed. The object stays reachable through this
  // pointer, so LeakSanitizer does not count it.
  static ProgramCache* cache = new ProgramCache;
  return *cache;
}

std::optional<std::shared_ptr<InferProgram>> ProgramCache::Lookup(std::uint64_t owner,
                                                                  std::int64_t num_nodes,
                                                                  std::int64_t num_edges) {
  const Impl::Key key{owner, num_nodes, num_edges};
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto it = impl_->index.find(key);
  if (it == impl_->index.end()) {
    impl_->misses.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  impl_->hits.fetch_add(1, std::memory_order_relaxed);
  impl_->lru.splice(impl_->lru.begin(), impl_->lru, it->second);
  return it->second->program;
}

void ProgramCache::Insert(std::uint64_t owner, std::int64_t num_nodes,
                          std::int64_t num_edges, std::shared_ptr<InferProgram> program) {
  const Impl::Key key{owner, num_nodes, num_edges};
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto it = impl_->index.find(key);
  if (it != impl_->index.end()) {
    it->second->program = std::move(program);
    impl_->lru.splice(impl_->lru.begin(), impl_->lru, it->second);
    return;
  }
  impl_->lru.push_front({key, std::move(program)});
  impl_->index.emplace(key, impl_->lru.begin());
  while (impl_->index.size() > impl_->capacity) {
    impl_->index.erase(impl_->lru.back().key);
    impl_->lru.pop_back();
  }
}

void ProgramCache::EvictOwner(std::uint64_t owner) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (auto it = impl_->lru.begin(); it != impl_->lru.end();) {
    if (std::get<0>(it->key) == owner) {
      impl_->index.erase(it->key);
      it = impl_->lru.erase(it);
    } else {
      ++it;
    }
  }
}

std::size_t ProgramCache::Size() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->index.size();
}

void ProgramCache::Clear() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->lru.clear();
  impl_->index.clear();
}

std::uint64_t ProgramCache::Hits() const noexcept {
  return impl_->hits.load(std::memory_order_relaxed);
}

std::uint64_t ProgramCache::Misses() const noexcept {
  return impl_->misses.load(std::memory_order_relaxed);
}

void ProgramCache::SetCapacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->capacity = capacity > 0 ? capacity : 1;
  while (impl_->index.size() > impl_->capacity) {
    impl_->index.erase(impl_->lru.back().key);
    impl_->lru.pop_back();
  }
}

}  // namespace predtop::compile

#pragma once
// Fusion pass over a recorded (unfused) InferProgram. Patterns, in order:
//
//  1. attention chain   [Linear(Wq), Linear(Wk), Linear(Wv), Scale(q),
//                        AttnHeads]            -> kFusedAttention
//     (combined q|k|v pack + folded 1/sqrt(dk); requires dim to be a
//     kGemmPanel multiple so the combined pack is bit-identical to three
//     separate packs, and requires every GEMM in the chain to take the
//     packed tier — the fused kernel is all-packed, so fusing a shape the
//     op-by-op path would run naive/narrow would change the float bits)
//  2. residual norm     [Linear -> y, Add(y, r), LayerNorm(y)]
//                                              -> kLinearResidualNorm
//  3. activation        [Linear -> y, Relu(y)] -> kLinearAct
//
// Each match is validated with value use counts (the fused intermediate must
// have no other reader), so a pattern that merely *looks* adjacent is never
// fused incorrectly. Matching is intentionally conservative: a miss leaves
// the unfused steps in place, which stays correct — the executor runs an
// unfused kAttnHeads through the same slice-based kernels as the op-by-op
// fast path.

#include "compile/program.h"

namespace predtop::compile {

/// Rewrites `p.steps` in place and assigns snapshot slots to the fused
/// attention steps.
void FusePatterns(InferProgram& p);

}  // namespace predtop::compile

#include "compile/fuse.h"

#include <algorithm>
#include <vector>

#include "tensor/ops.h"

namespace predtop::compile {

namespace {

/// Steps reading value v (as a, b, or c). Defining writes (out) with
/// out == a count as reads too, which is what in-place ops are.
[[nodiscard]] std::vector<std::size_t> ReadersOf(const std::vector<Step>& steps, ValueId v) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const Step& s = steps[i];
    if (s.a == v || s.b == v || s.c == v) out.push_back(i);
  }
  return out;
}

[[nodiscard]] bool IsLinearOf(const Step& s, const nn::Linear* lin, ValueId out) {
  return s.kind == OpKind::kLinear && s.linear == lin && s.out == out;
}

void Erase(std::vector<Step>& steps, const std::vector<std::size_t>& sorted_indices) {
  for (auto it = sorted_indices.rbegin(); it != sorted_indices.rend(); ++it) {
    steps.erase(steps.begin() + static_cast<std::ptrdiff_t>(*it));
  }
}

/// Pattern 1: the five-step attention chain ending in kAttnHeads.
void FuseAttention(std::vector<Step>& steps, std::int64_t num_nodes) {
  for (std::size_t i = 4; i < steps.size(); ++i) {
    Step& s = steps[i];
    if (s.kind != OpKind::kAttnHeads || s.attn == nullptr) continue;
    // The combined pack is bit-identical to three separate packs only when
    // each projection's columns land on whole panels.
    if (s.attn->Dim() % tensor::kGemmPanel != 0) continue;
    // The fused kernel runs every GEMM packed; fuse only the shape classes
    // where the op-by-op path would pick the packed tier for the q/k/v
    // projections AND both per-head multiplies (the same gates
    // MultiheadMaskedAttention::InferForward dispatches its strided fast
    // path on). Below these floors the unfused kAttnHeads executor mirrors
    // the slice-based kernels bit for bit instead.
    const std::int64_t n = num_nodes;
    const std::int64_t d = s.attn->Dim();
    const std::int64_t hd = s.attn->HeadDim();
    if (!tensor::UsePackedGemm(n, d, d) || !tensor::UsePackedGemm(n, hd, n) ||
        !tensor::UsePackedGemm(n, n, hd)) {
      continue;
    }
    const Step& lq = steps[i - 4];
    const Step& lk = steps[i - 3];
    const Step& lv = steps[i - 2];
    const Step& sc = steps[i - 1];
    if (!IsLinearOf(lq, &s.attn->Wq(), s.a) || !IsLinearOf(lk, &s.attn->Wk(), s.b) ||
        !IsLinearOf(lv, &s.attn->Wv(), s.c)) {
      continue;
    }
    if (sc.kind != OpKind::kScale || sc.out != s.a) continue;
    if (lq.a != lk.a || lq.a != lv.a) continue;  // one shared input x
    // q is read only by its scale and the attention; k/v only by the
    // attention — otherwise eliding them would change some other step.
    if (ReadersOf(steps, s.a) != std::vector<std::size_t>{i - 1, i}) continue;
    if (ReadersOf(steps, s.b) != std::vector<std::size_t>{i}) continue;
    if (ReadersOf(steps, s.c) != std::vector<std::size_t>{i}) continue;

    s.kind = OpKind::kFusedAttention;
    s.a = lq.a;
    s.b = kNoValue;
    s.c = kNoValue;
    s.scalar = sc.scalar;  // 1/sqrt(dk), applied to the q columns post-bias
    Erase(steps, {i - 4, i - 3, i - 2, i - 1});
    i -= 4;
  }
}

/// Pattern 2: Linear -> in-place residual Add -> LayerNorm.
void FuseResidualNorm(std::vector<Step>& steps) {
  for (std::size_t i = 2; i < steps.size(); ++i) {
    Step& ln = steps[i];
    if (ln.kind != OpKind::kLayerNorm) continue;
    const Step& add = steps[i - 1];
    const Step& lin = steps[i - 2];
    if (add.kind != OpKind::kAdd || add.out != ln.a) continue;
    if (lin.kind != OpKind::kLinear || lin.out != ln.a) continue;
    if (ReadersOf(steps, ln.a) != std::vector<std::size_t>{i - 1, i}) continue;

    ln.kind = OpKind::kLinearResidualNorm;
    ln.linear = lin.linear;
    ln.a = lin.a;      // GEMM input
    ln.b = add.b;      // residual
    Erase(steps, {i - 2, i - 1});
    i -= 2;
  }
}

/// Pattern 3: Linear -> in-place activation.
void FuseLinearAct(std::vector<Step>& steps) {
  for (std::size_t i = 1; i < steps.size(); ++i) {
    const Step& act = steps[i];
    if (act.kind != OpKind::kRelu) continue;
    Step& lin = steps[i - 1];
    if (lin.kind != OpKind::kLinear || lin.out != act.out) continue;
    // The activated value may have any number of later readers; only the
    // *pre-activation* value must be unobserved, and it is: the in-place
    // Relu is its sole possible reader before this step rewrites it.
    if (ReadersOf(steps, act.out).front() != i) continue;

    lin.kind = OpKind::kLinearAct;
    lin.act = tensor::fused::Act::kRelu;
    Erase(steps, {i});
    --i;
  }
}

}  // namespace

void FusePatterns(InferProgram& p) {
  FuseAttention(p.steps, p.num_nodes);
  FuseResidualNorm(p.steps);
  FuseLinearAct(p.steps);
  // Assign snapshot slots to the surviving fused attention steps.
  std::int32_t attn_count = 0;
  for (Step& s : p.steps) {
    if (s.kind == OpKind::kFusedAttention) s.aux = attn_count++;
  }
}

}  // namespace predtop::compile

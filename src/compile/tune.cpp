#include "compile/tune.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <vector>

#include "tensor/ops.h"
#include "util/env.h"
#include "util/thread_pool.h"

namespace predtop::compile {

namespace {

struct TuneState {
  std::mutex mu;
  bool resolved = false;
  TuneTable table;
};

TuneState& State() {
  static TuneState s;
  return s;
}

std::atomic<std::uint64_t>& SweepCounter() noexcept {
  static std::atomic<std::uint64_t> n{0};
  return n;
}

/// Best-of-`reps` wall time of `fn` in nanoseconds; one timed candidate.
template <typename Fn>
double SweepNs(int reps, Fn&& fn) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, static_cast<double>(
                  std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count()));
  }
  SweepCounter().fetch_add(1, std::memory_order_relaxed);
  return std::max(best, 1.0);
}

/// Deterministic pseudo-random fill in [-0.5, 0.5) (fixed LCG seed — the
/// sweep's inputs never vary run to run).
void FillDet(std::vector<float>& v, std::uint32_t seed) {
  std::uint32_t s = seed;
  for (float& x : v) {
    s = s * 1664525u + 1013904223u;
    x = static_cast<float>(s >> 8) * (1.0f / 16777216.0f) - 0.5f;
  }
}

/// Time the packed GEMM with both register tiles and derive the machine's
/// single-core MAC throughput; then (on multi-core hosts) time one pool
/// dispatch to place the parallel-split and interleave crossovers. All
/// candidates are bit-identical, so this only ever changes speed.
void Measure(TuneTable& t) {
  constexpr std::int64_t m = 96, k = 128, n = 128;  // ~1.6M MACs, sub-ms
  std::vector<float> a(static_cast<std::size_t>(m * k));
  std::vector<float> b(static_cast<std::size_t>(k * n));
  std::vector<float> c(static_cast<std::size_t>(m * n));
  FillDet(a, 0x9e3779b9u);
  FillDet(b, 0x85ebca6bu);
  tensor::PackedB pb;
  tensor::PackBInto(b.data(), k, n, pb);
  const auto gemm = [&] { tensor::MatMulPackedInto(a.data(), m, pb, c.data(), false); };

  const bool saved_wide = tensor::GemmWideTiles();
  tensor::SetGemmWideTiles(true);
  gemm();  // warm the pack/page state before timing
  const double wide_ns = SweepNs(3, gemm);
  tensor::SetGemmWideTiles(false);
  const double narrow_ns = SweepNs(3, gemm);
  tensor::SetGemmWideTiles(saved_wide);
  t.wide_tiles = wide_ns <= narrow_ns;
  const double macs_per_ns =
      static_cast<double>(m * k * n) / std::min(wide_ns, narrow_ns);

  const std::size_t threads = tensor::GemmThreads();
  if (threads > 1) {
    // One ParallelFor over the worker count measures the fork/join cost a
    // threaded GEMM (or one interleaved forward) must amortize.
    util::ThreadPool pool(threads);
    const double dispatch_ns =
        SweepNs(3, [&] { pool.ParallelFor(threads * 4, [](std::size_t) {}); });
    // Fan out only when the serial time dwarfs the dispatch: work >= 8x the
    // fork/join cost, i.e. m*k*n >= dispatch_ns * macs/ns * 8.
    t.par_min_elems = std::clamp<std::int64_t>(
        static_cast<std::int64_t>(dispatch_ns * macs_per_ns * 8.0), 1l << 18, 1l << 26);
    // Interleaving pays one task dispatch per query; require the per-query
    // linear FLOPs (2 * MACs) to be >= 8x that dispatch.
    t.interleave_min_flops = std::clamp<std::int64_t>(
        static_cast<std::int64_t>(dispatch_ns * macs_per_ns * 2.0 * 8.0), 1l << 18,
        1l << 28);
  }
  t.autotuned = true;
}

/// Env knob as an optional bool ("0"/"false"/"off" = false, else true).
bool EnvOverride(const char* name, bool* out) {
  const auto v = util::EnvString(name);
  if (!v.has_value()) return false;
  *out = !(*v == "0" || *v == "false" || *v == "off");
  return true;
}

void Resolve(TuneTable& t) {
  // Defaults start from the tensor layer's current (env-initialized) state so
  // resolution without autotune never moves a knob a test or user already set.
  t.wide_tiles = tensor::GemmWideTiles();
  t.par_min_elems = tensor::GemmParMinElems();
  t.interleave_min_batch = 2;
  t.interleave_min_flops = 1l << 22;
  t.autotuned = false;

  if (AutotuneEnabled()) Measure(t);

  // Explicit PREDTOP_TUNE_* overrides win over both defaults and measurement.
  bool wide = t.wide_tiles;
  const bool wide_set = EnvOverride("PREDTOP_TUNE_WIDE_TILES", &wide);
  if (wide_set) t.wide_tiles = wide;
  const long pme = util::EnvInt("PREDTOP_TUNE_PAR_MIN_ELEMS", 0);
  if (pme > 0) t.par_min_elems = pme;
  const long imb = util::EnvInt("PREDTOP_TUNE_INTERLEAVE_MIN_BATCH", 0);
  if (imb > 0) t.interleave_min_batch = imb;
  const long imf = util::EnvInt("PREDTOP_TUNE_INTERLEAVE_MIN_FLOPS", 0);
  if (imf > 0) t.interleave_min_flops = imf;

  // Apply to the tensor layer only when something actively chose a value
  // (measurement or override) — a default resolution must not stomp globals
  // tests or callers manage directly via the Set* API.
  if (t.autotuned || wide_set) tensor::SetGemmWideTiles(t.wide_tiles);
  if (t.autotuned || pme > 0) tensor::SetGemmParMinElems(t.par_min_elems);
}

}  // namespace

const TuneTable& ResolvedTuneTable() {
  TuneState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  if (!s.resolved) {
    Resolve(s.table);
    s.resolved = true;
  }
  return s.table;
}

bool AutotuneEnabled() {
  return util::EnvInt("PREDTOP_AUTOTUNE", 0) != 0;
}

std::uint64_t AutotuneSweeps() noexcept {
  return SweepCounter().load(std::memory_order_relaxed);
}

namespace detail {
void ResetTuneTableForTest() {
  TuneState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  s.resolved = false;
  s.table = TuneTable{};
}
}  // namespace detail

}  // namespace predtop::compile

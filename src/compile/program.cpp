#include "compile/program.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "compile/fuse.h"
#include "compile/planner.h"
#include "nn/infer.h"
#include "tensor/ops.h"

namespace predtop::compile {

namespace {

/// The same tier predicates nn::Linear::InferForward evaluates per call,
/// resolved once at build time from the row count the step will always see.
[[nodiscard]] GemmTier ResolveLinearTier(std::int64_t m, std::int64_t k, std::int64_t n) {
  if (tensor::UsePackedGemm(m, k, n)) return GemmTier::kPacked;
  if (n < 16 && k >= 16) return GemmTier::kNarrow;
  return GemmTier::kNaive;
}

/// Scratch floats a step needs while it runs (lifetime = that one step, so
/// one shared region sized for the hungriest step serves the whole program).
[[nodiscard]] std::int64_t StepScratchFloats(const InferProgram& p, const Step& s) {
  switch (s.kind) {
    case OpKind::kFusedAttention: {
      const std::int64_t n = p.num_nodes;
      const std::int64_t d = s.attn->Dim();
      const std::int64_t hd = s.attn->HeadDim();
      const std::int64_t pack = std::max(tensor::PackedBFloats(hd, n),   // k^T pack
                                         tensor::PackedBFloats(n, hd));  // v pack
      return n * 3 * d  // combined q|k|v activation block
             + n * n    // per-head logits / deferred softmax weights
             + n        // per-row 1/sum factors
             + pack;
    }
    case OpKind::kAttnHeads: {
      // Covers both executor branches: slice-based (per-head q/k/v slices, a
      // transpose temp for the non-packed tiers) and strided-deferred (a
      // second (n, n) region so the softmax retry can reread pristine
      // logits), plus the pack buffer for the packed tiers.
      const std::int64_t n = p.num_nodes;
      const std::int64_t hd = s.attn->HeadDim();
      const std::int64_t pack = std::max(tensor::PackedBFloats(hd, n),
                                         tensor::PackedBFloats(n, hd));
      return 4 * n * hd + 2 * n * n + 2 * n + pack;
    }
    case OpKind::kSegmentSoftmax:
      // Per-segment max and denominator accumulators.
      return 2 * p.num_nodes * p.values[static_cast<std::size_t>(s.a)].cols;
    default:
      return 0;
  }
}

}  // namespace

ProgramBuilder::ProgramBuilder(std::int64_t num_nodes, std::int64_t num_edges,
                               std::int64_t feature_dim)
    : p_(std::make_shared<InferProgram>()) {
  p_->num_nodes = num_nodes;
  p_->num_edges = num_edges;
  p_->feature_dim = feature_dim;
}

ValueId ProgramBuilder::NewValue(std::int64_t rows, std::int64_t cols, External external) {
  p_->values.push_back({rows, cols, external});
  return static_cast<ValueId>(p_->values.size() - 1);
}

const ValueInfo& ProgramBuilder::Info(ValueId v) const {
  return p_->values.at(static_cast<std::size_t>(v));
}

ValueId ProgramBuilder::Input(External slot, std::int64_t rows, std::int64_t cols) {
  return NewValue(rows, cols, slot);
}

ValueId ProgramBuilder::Linear(const nn::Linear& layer, ValueId x) {
  const ValueInfo& xi = Info(x);
  if (xi.cols != layer.InFeatures()) {
    throw std::invalid_argument("ProgramBuilder::Linear: feature width mismatch");
  }
  const ValueId out = NewValue(xi.rows, layer.OutFeatures());
  p_->steps.push_back({.kind = OpKind::kLinear, .out = out, .a = x, .linear = &layer});
  return out;
}

void ProgramBuilder::Scale(ValueId a, float s) {
  p_->steps.push_back({.kind = OpKind::kScale, .out = a, .a = a, .scalar = s});
}

void ProgramBuilder::Add(ValueId a, ValueId b) {
  if (Info(a).rows != Info(b).rows || Info(a).cols != Info(b).cols) {
    throw std::invalid_argument("ProgramBuilder::Add: shape mismatch");
  }
  p_->steps.push_back({.kind = OpKind::kAdd, .out = a, .a = a, .b = b});
}

void ProgramBuilder::Relu(ValueId a) {
  p_->steps.push_back({.kind = OpKind::kRelu, .out = a, .a = a});
}

void ProgramBuilder::LeakyRelu(ValueId a, float negative_slope) {
  p_->steps.push_back(
      {.kind = OpKind::kLeakyRelu, .out = a, .a = a, .scalar = negative_slope});
}

ValueId ProgramBuilder::LayerNorm(ValueId x, const autograd::Variable& gain,
                                  const autograd::Variable& bias) {
  const ValueInfo& xi = Info(x);
  const ValueId out = NewValue(xi.rows, xi.cols);
  p_->steps.push_back(
      {.kind = OpKind::kLayerNorm, .out = out, .a = x, .gain = &gain, .bias = &bias});
  return out;
}

ValueId ProgramBuilder::AttnHeads(const nn::MultiheadMaskedAttention& attn, ValueId q,
                                  ValueId k, ValueId v, bool use_mask) {
  const std::int64_t n = Info(q).rows;
  if (Info(q).cols != attn.Dim() || Info(k).cols != attn.Dim() ||
      Info(v).cols != attn.Dim() || Info(k).rows != n || Info(v).rows != n) {
    throw std::invalid_argument("ProgramBuilder::AttnHeads: shape mismatch");
  }
  const ValueId out = NewValue(n, attn.Dim());
  p_->steps.push_back({.kind = OpKind::kAttnHeads,
                       .out = out,
                       .a = q,
                       .b = k,
                       .c = v,
                       .attn = &attn,
                       .use_mask = use_mask});
  return out;
}

ValueId ProgramBuilder::Spmm(ValueId x) {
  if (Info(x).rows != p_->num_nodes) {
    throw std::invalid_argument("ProgramBuilder::Spmm: operand must have one row per node");
  }
  const ValueId out = NewValue(p_->num_nodes, Info(x).cols);
  p_->steps.push_back({.kind = OpKind::kSpmm, .out = out, .a = x});
  return out;
}

ValueId ProgramBuilder::Pool(ValueId x) {
  const ValueId out = NewValue(1, Info(x).cols);
  p_->steps.push_back({.kind = OpKind::kPool, .out = out, .a = x});
  return out;
}

ValueId ProgramBuilder::Concat2(ValueId a, ValueId b) {
  if (Info(a).rows != Info(b).rows) {
    throw std::invalid_argument("ProgramBuilder::Concat2: row count mismatch");
  }
  const ValueId out = NewValue(Info(a).rows, Info(a).cols + Info(b).cols);
  p_->steps.push_back({.kind = OpKind::kConcat2, .out = out, .a = a, .b = b});
  return out;
}

ValueId ProgramBuilder::MatVec(ValueId x, const autograd::Variable& vec) {
  if (vec.value().rank() != 2 || vec.value().dim(0) != Info(x).cols ||
      vec.value().dim(1) != 1) {
    throw std::invalid_argument("ProgramBuilder::MatVec: vector must be (cols, 1)");
  }
  const ValueId out = NewValue(Info(x).rows, 1);
  p_->steps.push_back({.kind = OpKind::kMatVec, .out = out, .a = x, .gain = &vec});
  return out;
}

ValueId ProgramBuilder::EdgeScores(ValueId src_scores, ValueId dst_scores) {
  if (Info(src_scores).cols != 1 || Info(dst_scores).cols != 1) {
    throw std::invalid_argument("ProgramBuilder::EdgeScores: scores must be (n, 1)");
  }
  const ValueId out = NewValue(p_->num_edges, 1);
  p_->steps.push_back(
      {.kind = OpKind::kEdgeScores, .out = out, .a = src_scores, .b = dst_scores});
  return out;
}

ValueId ProgramBuilder::SegmentSoftmax(ValueId e) {
  const ValueInfo& ei = Info(e);
  const ValueId out = NewValue(ei.rows, ei.cols);
  p_->steps.push_back({.kind = OpKind::kSegmentSoftmax, .out = out, .a = e});
  return out;
}

ValueId ProgramBuilder::GatherRows(ValueId x, bool by_dst) {
  const ValueId out = NewValue(p_->num_edges, Info(x).cols);
  p_->steps.push_back({.kind = OpKind::kGatherRows,
                       .out = out,
                       .a = x,
                       .edge_sel = static_cast<std::uint8_t>(by_dst ? 1 : 0)});
  return out;
}

void ProgramBuilder::RowScale(ValueId x, ValueId s) {
  if (Info(s).cols != 1 || Info(s).rows != Info(x).rows) {
    throw std::invalid_argument("ProgramBuilder::RowScale: expected x(m,c) and s(m,1)");
  }
  p_->steps.push_back({.kind = OpKind::kRowScale, .out = x, .a = x, .b = s});
}

ValueId ProgramBuilder::SegmentSum(ValueId x) {
  const ValueId out = NewValue(p_->num_nodes, Info(x).cols);
  p_->steps.push_back({.kind = OpKind::kSegmentSum, .out = out, .a = x});
  return out;
}

void ProgramBuilder::AddRowVector(ValueId x, const autograd::Variable& bias) {
  if (bias.value().rank() != 1 || bias.value().dim(0) != Info(x).cols) {
    throw std::invalid_argument("ProgramBuilder::AddRowVector: bias width mismatch");
  }
  p_->steps.push_back({.kind = OpKind::kAddRowVector, .out = x, .a = x, .gain = &bias});
}

std::shared_ptr<InferProgram> ProgramBuilder::Finish(ValueId output) {
  InferProgram& p = *p_;
  p.output = output;
  FusePatterns(p);

  // Resolve GEMM tiers now that the step list is final.
  for (Step& s : p.steps) {
    if (s.linear == nullptr) continue;
    const std::int64_t m = p.values[static_cast<std::size_t>(s.a)].rows;
    s.tier = ResolveLinearTier(m, s.linear->InFeatures(), s.linear->OutFeatures());
  }

  // Live ranges: a value is born at its first defining write and dies at its
  // last read. In-place steps (out == a) both read and write, so they extend
  // the range naturally. Externals and fusion-orphaned values get no range
  // and are never planned.
  const std::int32_t num_steps = static_cast<std::int32_t>(p.steps.size());
  std::vector<Lifetime> lifetimes(p.values.size());
  std::vector<bool> defined(p.values.size(), false);
  for (std::int32_t i = 0; i < num_steps; ++i) {
    const Step& s = p.steps[static_cast<std::size_t>(i)];
    for (const ValueId v : {s.out, s.a, s.b, s.c}) {
      if (v == kNoValue) continue;
      const auto vi = static_cast<std::size_t>(v);
      if (p.values[vi].external != External::kNone) continue;
      if (!defined[vi]) {
        defined[vi] = true;
        lifetimes[vi].first = i;
        lifetimes[vi].floats = p.values[vi].size();
      }
      lifetimes[vi].last = i;
    }
  }
  // The program output must survive past the final step so Execute can read
  // it after the loop.
  if (output != kNoValue && defined[static_cast<std::size_t>(output)]) {
    lifetimes[static_cast<std::size_t>(output)].last = num_steps;
  }
  for (std::size_t v = 0; v < lifetimes.size(); ++v) {
    if (!defined[v]) lifetimes[v].floats = 0;
  }

  const PlanLayout layout = PlanOffsets(lifetimes);
  p.offsets.assign(p.values.size(), InferProgram::kNoOffset);
  for (std::size_t v = 0; v < p.values.size(); ++v) {
    if (defined[v] && lifetimes[v].floats > 0) p.offsets[v] = layout.offsets[v];
  }
  p.arena_floats = layout.total_floats;

  for (const Step& s : p.steps) {
    p.scratch_floats = std::max(p.scratch_floats, StepScratchFloats(p, s));
  }
  return std::move(p_);
}

std::shared_ptr<const InferProgram::Snapshot> InferProgram::CurrentSnapshot() const {
  const std::uint64_t epoch = nn::ParameterEpoch();
  const tensor::GemmPrec prec = tensor::WeightPrec();
  {
    std::lock_guard<std::mutex> lock(snap_mutex_);
    if (snap_ != nullptr && snap_->epoch == epoch && snap_->prec == prec) return snap_;
  }
  // Rebuild outside the lock: snapshots are immutable, so a racing rebuild
  // just wastes one pack pass and the last writer wins.
  auto fresh = std::make_shared<Snapshot>();
  fresh->epoch = epoch;
  fresh->prec = prec;
  fresh->lin.resize(steps.size());
  std::int32_t attn_slots = 0;
  for (const Step& s : steps) {
    if (s.kind == OpKind::kFusedAttention) attn_slots = std::max(attn_slots, s.aux + 1);
  }
  fresh->attn.resize(static_cast<std::size_t>(attn_slots));
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const Step& s = steps[i];
    if (s.linear != nullptr) fresh->lin[i] = s.linear->SnapshotInferWeights();
    if (s.kind != OpKind::kFusedAttention) continue;
    // Combined [Wq | Wk | Wv] pack: column-concatenating the three (d, d)
    // weights before packing yields the identical panel stream as three
    // separate packs (d is a panel multiple, enforced by the fuser), and the
    // int8 per-column scales are column-local, so the reduced-precision
    // combined packs match the per-Linear ones bit for bit.
    AttnSnap& as = fresh->attn[static_cast<std::size_t>(s.aux)];
    const std::int64_t d = s.attn->Dim();
    const nn::Linear* proj[3] = {&s.attn->Wq(), &s.attn->Wk(), &s.attn->Wv()};
    std::vector<float> combined(static_cast<std::size_t>(d * 3 * d));
    for (int w = 0; w < 3; ++w) {
      const float* src = proj[w]->Weight().value().data().data();
      for (std::int64_t r = 0; r < d; ++r) {
        std::memcpy(combined.data() + r * 3 * d + w * d, src + r * d,
                    static_cast<std::size_t>(d) * sizeof(float));
      }
    }
    tensor::PackBInto(combined.data(), d, 3 * d, as.qkv);
    if (prec == tensor::GemmPrec::kBf16) {
      tensor::PackB16Into(combined.data(), d, 3 * d, as.qkv16);
    } else if (prec == tensor::GemmPrec::kInt8) {
      tensor::PackB8Into(combined.data(), d, 3 * d, as.qkv8);
    }
    as.bias.resize(static_cast<std::size_t>(3 * d));
    for (int w = 0; w < 3; ++w) {
      const autograd::Variable* bv = proj[w]->Bias();
      if (bv != nullptr) {
        std::memcpy(as.bias.data() + w * d, bv->value().data().data(),
                    static_cast<std::size_t>(d) * sizeof(float));
      } else {
        std::fill(as.bias.begin() + w * d, as.bias.begin() + (w + 1) * d, 0.0f);
      }
    }
  }
  std::lock_guard<std::mutex> lock(snap_mutex_);
  snap_ = std::move(fresh);
  return snap_;
}

}  // namespace predtop::compile

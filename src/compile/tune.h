#pragma once
// Runtime GEMM/batch autotuner. The compiled executors' crossover knobs
// (packed tile shape, parallel-split threshold, batch-vs-interleave
// crossover) are machine-dependent; this module resolves them ONCE per
// process into a TuneTable, either from environment overrides, from a
// first-use timing sweep on the actual machine (PREDTOP_AUTOTUNE=1), or
// from the built-in defaults.
//
// Determinism: every candidate the sweep selects between is bit-identical
// to the others (tile shape and threading never change a result bit — each
// output element always accumulates in ascending-k order in its own lane),
// and the table is immutable after first resolution, so prediction results
// never depend on what the autotuner picked or when it ran. Only speed does.

#include <cstdint>

namespace predtop::compile {

/// Machine-resolved execution thresholds, fixed for the process lifetime.
struct TuneTable {
  /// Packed GEMM register tile: 12x16 single-vector (true) vs 6x16
  /// two-vector (false). Mirrors tensor::GemmWideTiles.
  bool wide_tiles = true;
  /// m*k*n at which the packed GEMM fans row panels across the shared pool
  /// (mirrors PREDTOP_GEMM_PAR_MIN_ELEMS).
  std::int64_t par_min_elems = 4l << 20;
  /// Minimum same-shape batch size at which ExecuteBatch prefers
  /// interleaving independent forwards over one stacked-GEMM pass.
  std::int64_t interleave_min_batch = 2;
  /// Minimum per-query linear-step FLOPs for interleaving: below this a
  /// forward is too small to amortize one pool task dispatch.
  std::int64_t interleave_min_flops = 1l << 22;
  /// True when the timing sweep ran (vs env/default resolution).
  bool autotuned = false;
};

/// The process-wide table. First call resolves it (timing sweeps only when
/// PREDTOP_AUTOTUNE=1) and applies wide_tiles / par_min_elems to the tensor
/// layer; later calls return the same table. Thread-safe.
[[nodiscard]] const TuneTable& ResolvedTuneTable();

/// Whether first-use timing sweeps are enabled (PREDTOP_AUTOTUNE, default
/// off: unit tests A/B the tile/threshold globals directly and must not have
/// the autotuner stomp them mid-run; benches and the batch CI lane opt in).
[[nodiscard]] bool AutotuneEnabled();

/// Total timed candidate sweeps performed by this process (0 unless
/// autotune ran). Surfaced through ServiceStats / cluster StatsBody.
[[nodiscard]] std::uint64_t AutotuneSweeps() noexcept;

namespace detail {
/// Test hook: drop the resolved table so the next ResolvedTuneTable() call
/// re-resolves (e.g. under a different env). Not for production use.
void ResetTuneTableForTest();
}  // namespace detail

}  // namespace predtop::compile

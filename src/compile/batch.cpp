#include "compile/batch.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <vector>

#include "compile/exec_detail.h"
#include "compile/tune.h"
#include "tensor/ops.h"
#include "util/env.h"
#include "util/thread_pool.h"

namespace predtop::compile {

namespace {

std::atomic<bool>& BatchFlag() noexcept {
  static std::atomic<bool> enabled{util::EnvInt("PREDTOP_BATCH_COMPILE", 1) != 0};
  return enabled;
}

std::atomic<std::uint64_t>& BatchedCounter() noexcept {
  static std::atomic<std::uint64_t> n{0};
  return n;
}

std::atomic<std::uint64_t>& InterleavedCounter() noexcept {
  static std::atomic<std::uint64_t> n{0};
  return n;
}

/// Interleave pool of last resort (immortal: workers may outlive static
/// destruction order, matching the shared GEMM pool's lifetime posture).
util::ThreadPool& SharedBatchPool() {
  static util::ThreadPool* pool = new util::ThreadPool(tensor::GemmThreads());
  return *pool;
}

/// Thread-local batched execution state; grow-only so warm batches of the
/// same (shape, count) never allocate.
struct BatchExecState {
  std::vector<float> buf;
  std::vector<detail::MaskRuns> runs;
  std::vector<std::int64_t> ext_off;  // per-value staging offsets (externals)
};

BatchExecState& ThreadBatchState() {
  thread_local BatchExecState state;
  return state;
}

/// Per-query FLOPs of the program's linear steps (2*m*k*n each) — the
/// dominant cost, used by the kAuto crossover against the TuneTable.
std::int64_t LinearFlops(const InferProgram& p) {
  std::int64_t flops = 0;
  for (const Step& s : p.steps) {
    if (s.kind != OpKind::kLinear && s.kind != OpKind::kLinearAct &&
        s.kind != OpKind::kLinearResidualNorm) {
      continue;
    }
    const ValueInfo& ov = p.values[static_cast<std::size_t>(s.out)];
    flops += 2 * ov.rows * s.linear->InFeatures() * s.linear->OutFeatures();
  }
  return flops;
}

/// Independent sequential forwards fanned across `pool`, one per query, each
/// on its worker thread's own plan buffer. Bit-identical trivially: it IS
/// the sequential executor.
bool RunInterleaved(const InferProgram& p, const ExecInputs* in, std::size_t count,
                    float* out, util::ThreadPool& pool) {
  std::atomic<bool> ok{true};
  pool.ParallelFor(count, [&](std::size_t q) {
    float v = 0.0f;
    if (Execute(p, in[q], &v)) {
      out[q] = v;
    } else {
      ok.store(false, std::memory_order_relaxed);
    }
  });
  if (!ok.load(std::memory_order_relaxed)) return false;
  InterleavedCounter().fetch_add(count, std::memory_order_relaxed);
  return true;
}

/// One pass over the step list for the whole batch. The plan buffer is the
/// sequential plan scaled by count: value v's query-q block sits at
/// offsets[v]*B + q*size(v). Scaling every offset and size by the same B
/// preserves the planner's disjointness (a + size_a <= b implies
/// a*B + size_a*B <= b*B), and the step-outer loop keeps all queries'
/// lifetimes in lockstep, so no block is clobbered early. External inputs
/// (features, depth PE) are per-query tensors, so they are staged into
/// stacked regions appended after the arena; the copy is O(rows*cols) per
/// query against the O(rows*cols*out) GEMM that reads it.
bool RunBatched(const InferProgram& p, const ExecInputs* in, std::size_t count,
                float* out) {
  const std::int64_t B = static_cast<std::int64_t>(count);
  BatchExecState& state = ThreadBatchState();

  // Staging offsets for external values (cumulative sizes).
  if (state.ext_off.size() < p.values.size()) state.ext_off.resize(p.values.size());
  std::int64_t ext_floats = 0;
  for (std::size_t v = 0; v < p.values.size(); ++v) {
    if (p.values[v].external == External::kNone) {
      state.ext_off[v] = InferProgram::kNoOffset;
      continue;
    }
    state.ext_off[v] = ext_floats;
    ext_floats += p.values[v].size();
  }

  const std::int64_t need = p.arena_floats * B + ext_floats * B + p.scratch_floats;
  if (static_cast<std::int64_t>(state.buf.size()) < need) {
    state.buf.resize(static_cast<std::size_t>(need));
  }
  float* base = state.buf.data();
  float* ext_base = base + p.arena_floats * B;
  float* scratch = ext_base + ext_floats * B;

  // Stage the external inputs: query q's block of external value v is
  // ext_base + ext_off[v]*B + q*size(v), contiguous across q for stacked
  // GEMMs exactly like planned values.
  for (std::size_t v = 0; v < p.values.size(); ++v) {
    const ValueInfo& vi = p.values[v];
    if (vi.external == External::kNone) continue;
    const std::int64_t sz = vi.size();
    float* dst0 = ext_base + state.ext_off[v] * B;
    for (std::int64_t q = 0; q < B; ++q) {
      const float* src = vi.external == External::kFeatures
                             ? in[q].g->features.data().data()
                             : in[q].pe;
      std::memcpy(dst0 + q * sz, src, static_cast<std::size_t>(sz) * sizeof(float));
    }
  }

  // Per-query mask-run CSRs (masks differ per query even at one shape class).
  const bool needs_runs = detail::NeedsMaskRuns(p);
  if (needs_runs) {
    if (state.runs.size() < count) state.runs.resize(count);
    for (std::int64_t q = 0; q < B; ++q) {
      detail::BuildMaskRuns(p, in[q], state.runs[static_cast<std::size_t>(q)]);
    }
  }

  const auto snap = p.CurrentSnapshot();

  const auto q_ptr = [&](ValueId v, std::int64_t q) -> const float* {
    if (v == kNoValue) return nullptr;
    const ValueInfo& vi = p.values[static_cast<std::size_t>(v)];
    const std::int64_t sz = vi.size();
    if (vi.external != External::kNone) {
      return ext_base + state.ext_off[static_cast<std::size_t>(v)] * B + q * sz;
    }
    return base + p.offsets[static_cast<std::size_t>(v)] * B + q * sz;
  };
  const auto q_mut = [&](ValueId v, std::int64_t q) -> float* {
    const ValueInfo& vi = p.values[static_cast<std::size_t>(v)];
    return base + p.offsets[static_cast<std::size_t>(v)] * B + q * vi.size();
  };

  for (std::size_t si = 0; si < p.steps.size(); ++si) {
    const Step& s = p.steps[si];
    const std::int64_t rows = p.values[static_cast<std::size_t>(s.out)].rows;
    if (detail::RowwiseBatchable(s.kind)) {
      // One stacked call over all B queries' rows: operand blocks are
      // contiguous across q (planned and staged values alike), and each of
      // these kinds computes rows independently, so the stacked result is
      // bit-identical per row to B separate calls. For the Linear family
      // this is where the batch amortization lives — packed weight panels
      // stream through the cache once for B*rows rows instead of B times.
      const detail::StepOperands ops{q_ptr(s.a, 0), q_ptr(s.b, 0), q_ptr(s.c, 0),
                                     q_mut(s.out, 0)};
      detail::RunStep(p, si, *snap, in[0], ops, B * rows, scratch, nullptr);
    } else {
      // Graph-structured step: per-query math (adjacency, edges, masks, and
      // pooling semantics are per graph).
      for (std::int64_t q = 0; q < B; ++q) {
        const detail::StepOperands ops{q_ptr(s.a, q), q_ptr(s.b, q), q_ptr(s.c, q),
                                       q_mut(s.out, q)};
        detail::RunStep(p, si, *snap, in[q], ops, rows, scratch,
                        needs_runs ? &state.runs[static_cast<std::size_t>(q)] : nullptr);
      }
    }
  }

  const std::int64_t out_off = p.offsets[static_cast<std::size_t>(p.output)] * B;
  for (std::int64_t q = 0; q < B; ++q) out[q] = base[out_off + q];
  BatchedCounter().fetch_add(count, std::memory_order_relaxed);
  return true;
}

}  // namespace

bool BatchCompileEnabled() noexcept {
  return BatchFlag().load(std::memory_order_relaxed);
}

void SetBatchCompileEnabled(bool enabled) noexcept {
  BatchFlag().store(enabled, std::memory_order_relaxed);
}

std::int64_t ThreadBatchBufferFloats() noexcept {
  return static_cast<std::int64_t>(ThreadBatchState().buf.size());
}

std::uint64_t BatchedForwards() noexcept {
  return BatchedCounter().load(std::memory_order_relaxed);
}

std::uint64_t InterleavedForwards() noexcept {
  return InterleavedCounter().load(std::memory_order_relaxed);
}

bool ExecuteBatch(const InferProgram& p, const ExecInputs* in, std::size_t count,
                  float* out, const BatchOptions& opts) {
  if (count == 0) return true;
  if (in == nullptr || out == nullptr) return false;
  for (std::size_t q = 0; q < count; ++q) {
    if (!detail::ValidateInputs(p, in[q])) return false;
  }
  if (count == 1) {
    if (!Execute(p, in[0], out)) return false;
    BatchedCounter().fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  BatchMode mode = opts.mode;
  util::ThreadPool* pool = opts.pool;
  if (mode == BatchMode::kAuto) {
    const TuneTable& tune = ResolvedTuneTable();
    const std::size_t threads =
        pool != nullptr ? pool->ThreadCount() + 1 : tensor::GemmThreads();
    // Interleave only when there are cores to spread across AND each forward
    // is heavy enough to amortize its task dispatch; otherwise the stacked
    // pass wins (it amortizes snapshot/pack streaming and its large GEMMs
    // still fan out through the tensor layer's own threading).
    mode = (threads > 1 &&
            static_cast<std::int64_t>(count) >= tune.interleave_min_batch &&
            LinearFlops(p) >= tune.interleave_min_flops)
               ? BatchMode::kInterleaved
               : BatchMode::kBatched;
  }

  if (mode == BatchMode::kInterleaved) {
    return RunInterleaved(p, in, count, out,
                          pool != nullptr ? *pool : SharedBatchPool());
  }
  return RunBatched(p, in, count, out);
}

}  // namespace predtop::compile

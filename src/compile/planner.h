#pragma once
// Static memory planner for compiled inference programs: given each
// intermediate's size and [first_def, last_use] step interval, assign fixed
// offsets in one flat buffer such that values with intersecting live ranges
// never overlap, while values whose lifetimes are disjoint share storage.
//
// Exposed separately from the program builder so the planner's invariant
// (interval intersection => byte-range disjointness) can be property-tested
// on randomized DAG shapes without constructing full programs.

#include <cstdint>
#include <vector>

namespace predtop::compile {

struct Lifetime {
  std::int64_t floats = 0;  // payload size (the planner aligns it up)
  std::int32_t first = 0;   // step index of the defining write
  std::int32_t last = 0;    // step index of the final read (>= first)
};

struct PlanLayout {
  std::vector<std::int64_t> offsets;  // parallel to the input lifetimes
  std::int64_t total_floats = 0;      // high-water mark of the layout
};

/// Offsets stay 16-float (64-byte) aligned so planned GEMM destinations keep
/// the arena's alignment guarantees.
inline constexpr std::int64_t kPlanAlign = 16;

/// Greedy best-fit over lifetimes in first-def order: each value takes the
/// lowest aligned offset whose byte range is disjoint from every already
/// placed value with an intersecting interval. Deterministic (pure function
/// of the input), O(V^2) in the value count — programs have tens of values.
/// Entries with floats == 0 receive offset 0 and occupy nothing.
[[nodiscard]] PlanLayout PlanOffsets(const std::vector<Lifetime>& lifetimes);

}  // namespace predtop::compile

#pragma once
// Compiled inference programs (the tentpole of predtop::compile).
//
// A predictor's tape-free forward is a fixed op sequence once the graph's
// shape class (node count, edge count) is known. Instead of re-deciding
// kernel tiers, taking per-layer weight-cache locks, and bump-allocating
// dozens of arena intermediates on every call, we *record* that sequence once
// into an InferProgram:
//
//  - ProgramBuilder records the unfused module-level ops exactly as the
//    InferForward paths execute them (one Step per Linear / activation /
//    norm / graph op);
//  - the fusion pass (fuse.h) pattern-matches Linear+activation,
//    Linear+residual+LayerNorm, and the attention projection chain into
//    single fused steps backed by the kernels in tensor/fused.h;
//  - the static planner (planner.h) computes first-use/last-use intervals
//    per intermediate and assigns fixed offsets in one flat buffer, so a
//    warm forward performs zero allocation and zero cursor arithmetic;
//  - weight snapshots (per-step shared_ptr into nn::Linear's epoch-keyed
//    packs, plus a combined q|k|v pack per attention) are revalidated with a
//    single epoch check per forward instead of one mutex per Linear.
//
// Programs are cached per (predictor instance, shape class) in a global LRU
// (cache.h) and invalidated by nn::ParameterEpoch / the PREDTOP_GEMM_PREC
// tier exactly like the per-Linear packs. PREDTOP_COMPILE=0 reverts every
// caller to the op-by-op fast path.

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "graph/encode.h"
#include "nn/attention.h"
#include "nn/linear.h"
#include "tensor/fused.h"
#include "tensor/quant.h"

namespace predtop::compile {

/// Index into InferProgram::values. Values are SSA-ish: each is defined by
/// exactly one step; in-place steps (kScale, kAdd, ...) reuse their input id
/// as `out`, which extends the value's live range instead of minting a new
/// one.
using ValueId = std::int32_t;
inline constexpr ValueId kNoValue = -1;

/// External input slots resolved at execution time (never planned).
enum class External : std::int8_t {
  kNone = -1,
  kFeatures = 0,  // g.features, (n, feature_dim)
  kDepthPe = 1,   // ExecInputs::pe, (n, dagt_dim)
};

struct ValueInfo {
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  External external = External::kNone;

  [[nodiscard]] std::int64_t size() const noexcept { return rows * cols; }
};

enum class OpKind : std::uint8_t {
  // Linear family (weight snapshots; tier resolved at build time).
  kLinear,             // out = a W + b(ias)
  kLinearAct,          // fused: out = act(a W + bias)
  kLinearResidualNorm, // fused: out = LayerNorm(a W + bias + b, gain, beta)
  kFusedAttention,     // fused: out = multihead(a) pre-W_o (combined qkv pack)
  // Unfused building blocks (in-place ops keep out == a).
  kScale,         // a *= scalar
  kAdd,           // a += b
  kRelu,          // a = relu(a)
  kLeakyRelu,     // a = leaky_relu(a, scalar)
  kLayerNorm,     // out = LayerNorm(a, gain, bias)
  kAttnHeads,     // out = per-head softmax(q k^T + mask) v; a=q, b=k, c=v
  // Graph / pooling ops.
  kSpmm,          // out = g.adj_norm * a
  kPool,          // out = column sums of a, (1, cols)
  kConcat2,       // out = [a | b], rows must match
  kMatVec,        // out(i, 0) = dot(a.row(i), gain)   [GAT attention scores]
  kEdgeScores,    // out(e, 0) = a[edge_src[e]] + b[edge_dst[e]]
  kSegmentSoftmax,// out = softmax of a grouped by edge_dst (rows = edges)
  kGatherRows,    // out = a[edge list selected by edge_sel]
  kRowScale,      // a(i, :) *= b(i, 0)
  kSegmentSum,    // out = sum of a rows grouped by edge_dst
  kAddRowVector,  // a += gain broadcast over rows
};

/// GEMM tier resolved at build time from the (m, k, n) the step will always
/// see — the same predicates nn::Linear::InferForward evaluates per call.
enum class GemmTier : std::uint8_t { kPacked, kNarrow, kNaive };

struct Step {
  OpKind kind{};
  ValueId out = kNoValue;
  ValueId a = kNoValue;
  ValueId b = kNoValue;
  ValueId c = kNoValue;
  const nn::Linear* linear = nullptr;
  const nn::MultiheadMaskedAttention* attn = nullptr;
  /// LayerNorm gain / MatVec vector / AddRowVector bias, depending on kind.
  const autograd::Variable* gain = nullptr;
  const autograd::Variable* bias = nullptr;
  tensor::fused::Act act = tensor::fused::Act::kNone;
  float scalar = 0.0f;
  GemmTier tier = GemmTier::kNaive;
  bool use_mask = false;
  std::uint8_t edge_sel = 0;  // kGatherRows: 0 = edge_src, 1 = edge_dst
  std::int32_t aux = -1;      // kFusedAttention: index into Snapshot::attn
};

/// Execution-time inputs. `mask` / `pe` are supplied by the predictor that
/// owns the program (it knows its ablation flags and per-graph caches).
struct ExecInputs {
  const graph::EncodedGraph* g = nullptr;
  const tensor::Tensor* mask = nullptr;  // additive (n, n) reachability mask
  const float* pe = nullptr;             // depth positional encoding rows
};

class InferProgram {
 public:
  /// Shape class the program was recorded for; Execute() refuses others.
  std::int64_t num_nodes = 0;
  std::int64_t num_edges = 0;
  std::int64_t feature_dim = 0;

  std::vector<ValueInfo> values;
  std::vector<Step> steps;
  ValueId output = kNoValue;

  /// Static plan: per-value offsets into one flat buffer (kNoOffset for
  /// externals and dead values), the planned activation floats, the shared
  /// scratch region appended after them, and the buffer total.
  static constexpr std::int64_t kNoOffset = -1;
  std::vector<std::int64_t> offsets;
  std::int64_t arena_floats = 0;
  std::int64_t scratch_floats = 0;
  [[nodiscard]] std::int64_t PlanFloats() const noexcept {
    return arena_floats + scratch_floats;
  }

  /// Per-epoch weight snapshot shared by every thread executing the program.
  struct AttnSnap {
    tensor::PackedB qkv;        // combined [Wq | Wk | Wv] pack, fp32
    tensor::PackedB16 qkv16;    // bf16 combined pack (prec == kBf16)
    tensor::PackedB8 qkv8;      // int8 combined pack (prec == kInt8)
    std::vector<float> bias;    // bq | bk | bv, 3 * dim
  };
  struct Snapshot {
    std::uint64_t epoch = 0;
    tensor::GemmPrec prec = tensor::GemmPrec::kFp32;
    std::vector<std::shared_ptr<const nn::Linear::InferWeights>> lin;  // per step
    std::vector<AttnSnap> attn;  // indexed by Step::aux
  };

  /// Current snapshot, rebuilt when ParameterEpoch or the precision tier
  /// moved since the last call (one lock + one atomic check per forward).
  [[nodiscard]] std::shared_ptr<const Snapshot> CurrentSnapshot() const;

 private:
  mutable std::mutex snap_mutex_;
  mutable std::shared_ptr<const Snapshot> snap_;
};

/// Records the unfused op sequence for one predictor forward. The builder
/// validates shapes as it goes (mirroring the checks the live kernels throw
/// on), so a recorded program never faults at execution time.
class ProgramBuilder {
 public:
  ProgramBuilder(std::int64_t num_nodes, std::int64_t num_edges, std::int64_t feature_dim);

  [[nodiscard]] ValueId Input(External slot, std::int64_t rows, std::int64_t cols);
  [[nodiscard]] ValueId Linear(const nn::Linear& layer, ValueId x);
  void Scale(ValueId a, float s);
  void Add(ValueId a, ValueId b);
  void Relu(ValueId a);
  void LeakyRelu(ValueId a, float negative_slope);
  [[nodiscard]] ValueId LayerNorm(ValueId x, const autograd::Variable& gain,
                                  const autograd::Variable& bias);
  [[nodiscard]] ValueId AttnHeads(const nn::MultiheadMaskedAttention& attn, ValueId q,
                                  ValueId k, ValueId v, bool use_mask);
  [[nodiscard]] ValueId Spmm(ValueId x);
  [[nodiscard]] ValueId Pool(ValueId x);
  [[nodiscard]] ValueId Concat2(ValueId a, ValueId b);
  [[nodiscard]] ValueId MatVec(ValueId x, const autograd::Variable& vec);
  [[nodiscard]] ValueId EdgeScores(ValueId src_scores, ValueId dst_scores);
  [[nodiscard]] ValueId SegmentSoftmax(ValueId e);
  [[nodiscard]] ValueId GatherRows(ValueId x, bool by_dst);
  void RowScale(ValueId x, ValueId s);
  [[nodiscard]] ValueId SegmentSum(ValueId x);
  void AddRowVector(ValueId x, const autograd::Variable& bias);

  /// Run the fusion pass, resolve GEMM tiers, plan the buffer, and seal the
  /// program. Returns nullptr when the recorded ops cannot be compiled (an
  /// attention block the fuser refused, e.g. dim not a panel multiple) — the
  /// caller falls back to the op-by-op path.
  [[nodiscard]] std::shared_ptr<InferProgram> Finish(ValueId output);

 private:
  [[nodiscard]] ValueId NewValue(std::int64_t rows, std::int64_t cols,
                                 External external = External::kNone);
  [[nodiscard]] const ValueInfo& Info(ValueId v) const;

  std::shared_ptr<InferProgram> p_;
};

/// Run the program. Returns false (without touching `out`) when the inputs'
/// shape class does not match the program; the caller falls back. A warm call
/// performs no allocation: activations and scratch live in a thread-local
/// grow-only buffer at the planner's fixed offsets.
[[nodiscard]] bool Execute(const InferProgram& p, const ExecInputs& in, float* out);

/// Size in floats of the calling thread's plan buffer (test hook: warm
/// forwards must never grow it).
[[nodiscard]] std::int64_t ThreadPlanBufferFloats() noexcept;

}  // namespace predtop::compile

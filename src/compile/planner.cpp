#include "compile/planner.h"

#include <algorithm>
#include <numeric>

namespace predtop::compile {

namespace {

[[nodiscard]] std::int64_t AlignUp(std::int64_t v) noexcept {
  return (v + kPlanAlign - 1) / kPlanAlign * kPlanAlign;
}

}  // namespace

PlanLayout PlanOffsets(const std::vector<Lifetime>& lifetimes) {
  PlanLayout layout;
  layout.offsets.assign(lifetimes.size(), 0);

  // Place in first-def order (ties by index for determinism): the order
  // activations are produced, which keeps concurrently-live values adjacent
  // and lets later short-lived values slot into freed gaps.
  std::vector<std::size_t> order(lifetimes.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return lifetimes[x].first < lifetimes[y].first;
  });

  struct Placed {
    std::int64_t begin = 0;
    std::int64_t end = 0;
    std::int32_t first = 0;
    std::int32_t last = 0;
  };
  std::vector<Placed> placed;
  placed.reserve(lifetimes.size());

  for (const std::size_t i : order) {
    const Lifetime& lt = lifetimes[i];
    if (lt.floats <= 0) continue;
    const std::int64_t size = AlignUp(lt.floats);
    // Candidate offsets: 0 and one past the end of every interval-conflicting
    // placement. Best fit = the lowest candidate free of conflicts.
    std::int64_t best = -1;
    std::vector<std::int64_t> candidates{0};
    for (const Placed& q : placed) {
      if (q.last < lt.first || q.first > lt.last) continue;  // lifetimes disjoint
      candidates.push_back(q.end);
    }
    std::sort(candidates.begin(), candidates.end());
    for (const std::int64_t cand : candidates) {
      bool ok = true;
      for (const Placed& q : placed) {
        if (q.last < lt.first || q.first > lt.last) continue;
        if (cand < q.end && cand + size > q.begin) {
          ok = false;
          break;
        }
      }
      if (ok) {
        best = cand;
        break;
      }
    }
    // The past-the-end candidate of the highest conflicting placement always
    // fits, so `best` is set by construction.
    layout.offsets[i] = best;
    placed.push_back({best, best + size, lt.first, lt.last});
    layout.total_floats = std::max(layout.total_floats, best + size);
  }
  return layout;
}

}  // namespace predtop::compile
